package runtime

import "sync"

// This file is the scheduler's load signal: a point-in-time saturation
// estimate an admission controller (lhws/internal/admit) samples to
// decide between admitting, degrading, and rejecting new work. The
// inputs are the three symptoms of overload the paper's server scenario
// exhibits when requests outpace P workers: ready work piling up on
// deques, thieves failing to find anything stealable (everything is
// running or suspended), and external completions backing up.
//
// Sampling is pull-based and O(P): the admission path asks at request
// granularity, so the scheduler hot paths pay nothing to maintain the
// signal beyond counters they already keep.

// Load is one sample of the runtime's saturation state.
type Load struct {
	// ReadyTasks is the number of runnable-but-not-running tasks across
	// all workers: queued deque items plus resumed tasks awaiting
	// re-injection by their owner. A pfor-tree batch counts as one item,
	// so this undercounts resumed storms slightly; it is a load signal,
	// not an exact census. The resumed component matters under CPU
	// saturation: that is where woken work piles up while every worker
	// slot is busy, and an admission signal that ignored it would keep
	// reading "idle" straight through a collapse.
	ReadyTasks int
	// ReadyDeques is the number of deques holding at least one queued
	// item.
	ReadyDeques int
	// Running is the number of workers currently granting their slot to
	// a task.
	Running int
	// PendingExternal is the number of tasks suspended on external
	// completions (socket readiness, callbacks): admitted work parked in
	// the I/O layer that will come back as CPU demand.
	PendingExternal int
	// StealFailRate is the fraction of steal attempts since the previous
	// sample that found nothing to steal. Under light load steals fail
	// because there is no work; combined with high ReadyTasks it instead
	// indicates work trapped in running/suspended subtrees. When no
	// attempts happened in the window the previous rate is carried over.
	StealFailRate float64
	// Saturation is the headline estimate: (ReadyTasks + Running) / P.
	// ~0 means idle capacity, ~1 means exactly busy, >1 means queueing —
	// each admitted request waits for roughly Saturation service times.
	Saturation float64
}

// loadSampler holds the across-sample state for rate computation.
type loadSampler struct {
	mu           sync.Mutex
	lastAttempts int64
	lastSteals   int64
	lastRate     float64
}

// LoadSignal samples the runtime's current load. It is safe to call from
// any task at any time; the cost is O(P) leaf-mutex acquisitions.
func (c *Ctx) LoadSignal() Load { return c.t.rt.loadSignal() }

func (rt *runtimeState) loadSignal() Load {
	var ld Load
	var resumedDq []*rdeque
	for _, w := range rt.workers {
		w.mu.Lock()
		if a := w.active; a != nil {
			if n := a.q.Len(); n > 0 {
				ld.ReadyTasks += n
				ld.ReadyDeques++
			}
		}
		for _, d := range w.ready {
			if n := d.q.Len(); n > 0 {
				ld.ReadyTasks += n
				ld.ReadyDeques++
			}
		}
		resumedDq = append(resumedDq, w.resumedDq...)
		w.mu.Unlock()
	}
	// Count pending resumptions outside the worker locks (each deque's
	// resumed list has its own leaf mutex). Entries are unique: a deque
	// registers with its owner once per resumed batch.
	for _, d := range resumedDq {
		d.mu.Lock()
		ld.ReadyTasks += len(d.resumed)
		d.mu.Unlock()
	}
	ld.Running = int(rt.runningTotal())
	ld.PendingExternal = int(rt.extPending.Load())

	var attempts, steals int64
	for i := range rt.shards {
		attempts += rt.shards[i].stealAttempts.Load()
		steals += rt.shards[i].steals.Load()
	}
	s := &rt.loadSamp
	s.mu.Lock()
	dA, dS := attempts-s.lastAttempts, steals-s.lastSteals
	if dA > 0 {
		s.lastRate = float64(dA-dS) / float64(dA)
	}
	ld.StealFailRate = s.lastRate
	s.lastAttempts, s.lastSteals = attempts, steals
	s.mu.Unlock()

	if p := rt.cfg.Workers; p > 0 {
		ld.Saturation = float64(ld.ReadyTasks+ld.Running) / float64(p)
	}
	return ld
}
