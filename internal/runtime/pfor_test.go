package runtime

import (
	"testing"

	"lhws/internal/rng"
)

// Tests for pfor-tree bulk resume injection (pfor.go): the lazy split
// must be observably equivalent to per-task injection for the owner, give
// thieves half-range granularity, and recycle its batch bookkeeping once
// every task is extracted.

// harnessWorkers builds n workers sharing one runtimeState, each with an
// adopted active deque, without starting worker loops — the test
// goroutine plays every owner role serially, which is legal because the
// owner role is a discipline, not a goroutine identity.
func harnessWorkers(n int) []*worker {
	rt := &runtimeState{cfg: Config{Workers: n}}
	rt.maxSteal = DefaultStealBatch
	rt.shardCount = 1
	rt.shards = make([]statShard, n)
	rt.workers = make([]*worker, n)
	seeds := rng.New(1)
	for i := range rt.workers {
		rt.workers[i] = newWorker(rt, i, seeds.Split())
		rt.workers[i].adoptDeque(newRdeque(rt.workers[i]))
	}
	assignStealShards(rt.workers, rt.shardCount)
	return rt.workers
}

// drainOwner pops the worker's active deque dry, resolving every item.
func drainOwner(w *worker) []*task {
	var got []*task
	for {
		it, ok := w.active.q.PopBottom()
		if !ok {
			return got
		}
		got = append(got, w.resolveItem(it))
	}
}

// TestPforSplitOrderMatchesPerTaskInjection locks in the equivalence the
// batch push relies on: popping a batch node of t_0..t_{n-1} through
// resolveItem yields exactly the order that pushing each task as its own
// item would have yielded (t_{n-1} down to t_0). Odd, even, power-of-two,
// and single-task batch sizes all go through the same check.
func TestPforSplitOrderMatchesPerTaskInjection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 32, 33} {
		ws := harnessWorkers(2)
		tasks := make([]*task, n)
		for i := range tasks {
			tasks[i] = &task{}
		}

		// Reference: per-task injection in resume order, then drain.
		ref := ws[0]
		for _, tk := range tasks {
			ref.active.q.PushBottom(ref.newTaskNode(tk))
		}
		want := drainOwner(ref)

		// Batch: one push of a pfor node over the same tasks.
		bw := ws[1]
		bw.active.q.PushBottom(bw.newBatchNode(append([]*task(nil), tasks...)))
		got := drainOwner(bw)

		if len(got) != n || len(want) != n {
			t.Fatalf("n=%d: drained %d tasks via batch, %d via per-task, want %d", n, len(got), len(want), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: pop %d: batch injection yielded task %d, per-task yielded task %d",
					n, i, taskIndex(tasks, got[i]), taskIndex(tasks, want[i]))
			}
		}
	}
}

func taskIndex(tasks []*task, tk *task) int {
	for i, c := range tasks {
		if c == tk {
			return i
		}
	}
	return -1
}

// TestPforStealLeavesHalfRange checks the thief-side contract: stealing a
// batch node over [0,n) and resolving it on the thief's fresh deque must
// leave a node over [0,n/2) as the thief's topmost item — the half range
// the next thief can take — with the thief executing t_{n-1}.
func TestPforStealLeavesHalfRange(t *testing.T) {
	const n = 8
	ws := harnessWorkers(2)
	victim, thief := ws[0], ws[1]
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
	}
	victim.active.q.PushBottom(victim.newBatchNode(append([]*task(nil), tasks...)))

	it, ok := victim.active.q.PopTop()
	if !ok {
		t.Fatal("steal from victim failed")
	}
	got := thief.resolveItem(it)
	if got != tasks[n-1] {
		t.Fatalf("thief executes task %d, want %d (the range's last task)", taskIndex(tasks, got), n-1)
	}
	if left, ok := victim.active.q.PopBottom(); ok {
		t.Fatalf("victim deque still holds %v after the batch node was stolen", left)
	}

	top, ok := thief.active.q.PopTop()
	if !ok {
		t.Fatal("thief deque empty after resolving a stolen batch node")
	}
	nd := top.(*pforNode)
	if nd.t != nil || nd.lo != 0 || nd.hi != n/2 {
		t.Fatalf("thief's topmost item is [%d,%d) (singleton=%v), want the half range [0,%d)", nd.lo, nd.hi, nd.t != nil, n/2)
	}
	// Put it back and drain: every remaining task must surface exactly once.
	thief.active.q.PushBottom(top)
	rest := drainOwner(thief)
	seen := map[*task]bool{got: true}
	for _, tk := range rest {
		if seen[tk] {
			t.Fatalf("task %d extracted twice", taskIndex(tasks, tk))
		}
		seen[tk] = true
	}
	if len(seen) != n {
		t.Fatalf("extracted %d distinct tasks, want %d", len(seen), n)
	}
}

// TestPforBatchRecycledAfterLastExtract checks the live-counter release:
// the extractor that takes the batch's live count to zero returns the
// batch header and its task slice to the worker caches, with every task
// entry nil'd first.
func TestPforBatchRecycledAfterLastExtract(t *testing.T) {
	const n = 5
	ws := harnessWorkers(1)
	w := ws[0]
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
	}
	w.active.q.PushBottom(w.newBatchNode(append([]*task(nil), tasks...)))
	if got := len(drainOwner(w)); got != n {
		t.Fatalf("drained %d tasks, want %d", got, n)
	}
	if len(w.batchCache) != 1 {
		t.Fatalf("batch header not recycled: batchCache has %d entries, want 1", len(w.batchCache))
	}
	if b := w.batchCache[0]; b.tasks != nil || b.live.Load() != 0 {
		t.Fatalf("recycled batch not reset: tasks=%v live=%d", b.tasks, b.live.Load())
	}
	if len(w.sliceCache) != 1 {
		t.Fatalf("batch task slice not recycled: sliceCache has %d entries, want 1", len(w.sliceCache))
	}
	if s := w.sliceCache[0]; len(s) != 0 || cap(s) < n {
		t.Fatalf("recycled slice has len=%d cap=%d, want empty with cap>=%d", len(s), cap(s), n)
	}
}
