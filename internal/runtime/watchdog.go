package runtime

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ErrStalled reports that the suspension watchdog detected a
// no-progress interval: live tasks remained, no worker was running
// anything, and no wakeup was pending. Errors returned for stalls are
// *StallError values wrapping ErrStalled.
var ErrStalled = errors.New("runtime: stalled (suspended tasks with no pending wakeup)")

// StallWait describes one suspension outstanding at stall time.
type StallWait struct {
	// Site names the suspending operation: "latency", "await",
	// "chan-recv", "chan-send", or an external-await site such as
	// "io-read".
	Site string
	// Kind classifies what the task was stuck on — timer, future,
	// channel, fd, or generic external completion — so a stall report
	// distinguishes a never-ready fd from a lost timer wakeup.
	Kind WaitKind
	// Age is how long the task had been suspended when the stall was
	// declared.
	Age time.Duration
	// Worker is the worker that owned the task's deque at suspension.
	Worker int
	// DequeLen is the number of runnable tasks on the owning deque.
	DequeLen int
	// DequeSuspended is the owning deque's suspension counter (Table 1).
	DequeSuspended int
	// DequeResumed is the number of tasks re-injected onto the owning
	// deque but not yet drained by its owner.
	DequeResumed int
}

func (w StallWait) String() string {
	return fmt.Sprintf("%s [%s] on worker %d (age %v, deque: %d runnable, %d suspended, %d resumed-pending)",
		w.Site, w.Kind, w.Worker, w.Age.Round(time.Millisecond), w.DequeLen, w.DequeSuspended, w.DequeResumed)
}

// StallError is the structured deadlock / lost-wakeup diagnostic the
// watchdog produces instead of letting the runtime hang: which tasks
// were suspended, where, for how long, and on whose deques. It unwraps
// to ErrStalled.
type StallError struct {
	// NoProgress is the observed no-progress interval.
	NoProgress time.Duration
	// Live is the number of live (incomplete) tasks at stall time.
	Live int64
	// Waits lists outstanding suspensions, oldest first, capped at
	// maxStallWaits entries.
	Waits []StallWait
	// Truncated is the number of suspensions omitted from Waits.
	Truncated int
}

// maxStallWaits bounds the diagnostic for runs with huge suspension
// counts; Truncated reports what was dropped.
const maxStallWaits = 32

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: no progress for %v, %d live task(s), %d suspension(s) outstanding",
		ErrStalled, e.NoProgress.Round(time.Millisecond), e.Live, len(e.Waits)+e.Truncated)
	for _, w := range e.Waits {
		fmt.Fprintf(&b, "\n  suspended: %s", w)
	}
	if e.Truncated > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more", e.Truncated)
	}
	return b.String()
}

func (e *StallError) Unwrap() error { return ErrStalled }

// watchdog is the suspension monitor: it samples scheduler progress and
// declares a stall when, for a full StallTimeout window, live tasks
// remain but no task slice runs, no worker holds a task, and no wakeup
// (timer or fault-delayed) is pending. That conjunction separates a
// genuine lost wakeup or deadlock from the benign quiet of a long
// Latency: an armed timer counts as pending progress.
//
// On detection the watchdog cancels the root scope with a *StallError,
// which aborts every registered wait — so the diagnosis itself unblocks
// the run and Run returns the typed error instead of hanging. It runs
// on its own goroutine, off the worker hot paths, and exits when the
// run completes or after firing once.
func (rt *runtimeState) watchdog(stop <-chan struct{}) {
	interval := rt.cfg.StallTimeout / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastRun := int64(-1)
	var quiet time.Duration
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		run := rt.tasksRunTotal()
		progressed := run != lastRun ||
			rt.runningTotal() > 0 ||
			rt.pendingWakes.Load() > 0 ||
			rt.liveTasks.Load() == 0
		lastRun = run
		if progressed {
			quiet = 0
			continue
		}
		quiet += interval
		if quiet < rt.cfg.StallTimeout {
			continue
		}
		rt.stalled.Store(true)
		rt.root.cancel(rt.stallError(quiet))
		return
	}
}

// stallError snapshots the suspension registry into a diagnostic.
func (rt *runtimeState) stallError(quiet time.Duration) *StallError {
	e := &StallError{NoProgress: quiet, Live: rt.liveTasks.Load()}
	now := time.Now()
	rt.susReg.mu.Lock()
	waits := make([]StallWait, 0, len(rt.susReg.m))
	for _, info := range rt.susReg.m {
		suspended, resumed := info.home.snapshot()
		waits = append(waits, StallWait{
			Site:           info.site,
			Kind:           info.kind,
			Age:            now.Sub(info.since),
			Worker:         info.worker,
			DequeLen:       info.home.q.Len(),
			DequeSuspended: suspended,
			DequeResumed:   resumed,
		})
	}
	rt.susReg.mu.Unlock()
	sort.Slice(waits, func(i, j int) bool { return waits[i].Age > waits[j].Age })
	if len(waits) > maxStallWaits {
		e.Truncated = len(waits) - maxStallWaits
		waits = waits[:maxStallWaits]
	}
	e.Waits = waits
	return e
}
