package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testExtOp is a minimal ExternalOp for tests: Arm hands the completion
// token to a completer goroutine over a channel; CancelExternal records
// the interrupt. The struct is reused across awaits (handles are
// one-shot, the op is not), which is exactly the pooled shape the I/O
// layer uses.
type testExtOp struct {
	armed    chan ExternalHandle
	canceled atomic.Int64
}

func newTestExtOp(buf int) *testExtOp {
	return &testExtOp{armed: make(chan ExternalHandle, buf)}
}

func (op *testExtOp) Arm(h ExternalHandle) { op.armed <- h }

func (op *testExtOp) CancelExternal(h ExternalHandle, cause error) {
	op.canceled.Add(1)
}

// TestAwaitExternalOpBasic checks payload delivery through both modes:
// the completer's (n, err) pair must surface verbatim from the await.
func TestAwaitExternalOpBasic(t *testing.T) {
	sentinel := errors.New("short read")
	for _, m := range modes() {
		op := newTestExtOp(1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for h := range op.armed {
				h.Complete(42, sentinel)
			}
		}()
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			for i := 0; i < 3; i++ {
				n, werr := c.AwaitExternalOp("test-ext", KindExternal, op)
				if n != 42 || !errors.Is(werr, sentinel) {
					t.Errorf("%v: got (%d, %v), want (42, %v)", m, n, werr, sentinel)
				}
			}
		})
		close(op.armed)
		<-done
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

// TestAwaitExternalCancelCompletionRace races scope cancellation against
// the completer's Complete on the same suspension, many times, in both
// modes. Exactly one side may claim the task: it must either observe the
// payload or unwind with the cancellation cause — never hang, never
// double-resume (the epoch CAS; -race patrols the payload handoff).
func TestAwaitExternalCancelCompletionRace(t *testing.T) {
	for _, m := range modes() {
		const rounds = 200
		op := newTestExtOp(1)
		var wg sync.WaitGroup
		completed := 0
		unwound := 0
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			for i := 0; i < rounds; i++ {
				cc, cancel := c.WithCancel()
				fut := cc.Spawn(func(child *Ctx) {
					n, werr := child.AwaitExternalOp("race-ext", KindExternal, op)
					if werr != nil || n != 7 {
						panic("completion payload corrupted")
					}
				})
				h := <-op.armed
				wg.Add(1)
				go func() {
					defer wg.Done()
					h.Complete(7, nil)
				}()
				if i%2 == 0 {
					cancel()
				}
				werr := fut.AwaitErr(c)
				switch {
				case werr == nil:
					completed++
				case errors.Is(werr, ErrCanceled):
					unwound++
				default:
					t.Errorf("%v round %d: unexpected error %v", m, i, werr)
				}
				cancel()
			}
		})
		wg.Wait()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if completed+unwound != rounds {
			t.Fatalf("%v: %d completed + %d unwound != %d rounds", m, completed, unwound, rounds)
		}
		if completed == 0 {
			t.Errorf("%v: cancellation won every race; completion path untested", m)
		}
	}
}

// TestAwaitExternalDeadlineDuringBulkReinjection fires a deadline while a
// burst of external completions is being re-injected: every child must
// resolve to either its payload or ErrDeadline, and the run must drain.
func TestAwaitExternalDeadlineDuringBulkReinjection(t *testing.T) {
	const fleet = 24
	for round := 0; round < 10; round++ {
		op := newTestExtOp(fleet)
		_, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
			cc, cancel := c.WithDeadline(2 * time.Millisecond)
			defer cancel()
			futs := make([]*Future, fleet)
			for i := range futs {
				futs[i] = cc.Spawn(func(child *Ctx) {
					child.AwaitExternalOp("burst-ext", KindExternal, op)
				})
			}
			go func() {
				// Complete whatever armed, racing the deadline callback.
				for i := 0; i < fleet; i++ {
					select {
					case h := <-op.armed:
						h.Complete(1, nil)
					case <-time.After(50 * time.Millisecond):
						return
					}
				}
			}()
			for _, f := range futs {
				if werr := f.AwaitErr(c); werr != nil &&
					!errors.Is(werr, ErrDeadline) && !errors.Is(werr, ErrCanceled) {
					t.Errorf("child error %v", werr)
				}
			}
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestAwaitExternalBlockingCancel pins the Blocking-mode abort path: a
// canceled blocking await must unwind the task with the cause even when
// the completer is slow, and CancelExternal must have been consulted.
func TestAwaitExternalBlockingCancel(t *testing.T) {
	op := newTestExtOp(1)
	_, err := Run(Config{Workers: 2, Mode: Blocking}, func(c *Ctx) {
		cc, cancel := c.WithCancel()
		defer cancel()
		fut := cc.Spawn(func(child *Ctx) {
			child.AwaitExternalOp("blocking-ext", KindExternal, op)
		})
		h := <-op.armed
		cancel()
		// Contract: exactly one Complete per Arm, even after cancellation.
		h.Complete(0, nil)
		if werr := fut.AwaitErr(c); werr == nil {
			// The completion legitimately beat the cancel to the rendezvous.
			return
		} else if !errors.Is(werr, ErrCanceled) {
			t.Fatalf("child error = %v, want ErrCanceled", werr)
		}
		if op.canceled.Load() == 0 {
			t.Error("CancelExternal never consulted on canceled blocking await")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAwaitExternalStallKind checks the watchdog side of the external
// contract: an external completion deliberately does not count as a
// pending wake, so an op that never completes must surface as a
// *StallError whose oldest wait is classified KindExternal.
func TestAwaitExternalStallKind(t *testing.T) {
	op := newTestExtOp(1)
	_, err := Run(Config{Workers: 2, Mode: LatencyHiding, StallTimeout: 50 * time.Millisecond},
		func(c *Ctx) {
			c.AwaitExternalOp("never-ready", KindExternal, op)
		})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("Run error = %v, want *StallError", err)
	}
	found := false
	for _, w := range se.Waits {
		if w.Site == "never-ready" && w.Kind == KindExternal {
			found = true
		}
	}
	if !found {
		t.Fatalf("stall report lacks the never-ready external wait: %v", se)
	}
	h := <-op.armed
	h.Complete(0, nil) // release the event reference (stale after the abort)
}

// TestAllocsAwaitExternalSteadyState is the I/O-readiness allocation
// gate: once the waiter pool is warm, a full external await round trip —
// arm, suspend, complete from another goroutine, re-inject, resume —
// must not allocate. This is the property that lets the io poller sleep
// and wake thousands of connections without GC pressure.
func TestAllocsAwaitExternalSteadyState(t *testing.T) {
	op := newTestExtOp(1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case h := <-op.armed:
				h.Complete(1, nil)
			case <-stop:
				return
			}
		}
	}()
	_, err := Run(benchConfig(1), func(c *Ctx) {
		for i := 0; i < 64; i++ { // warm the waiter pool and resumed buffers
			c.AwaitExternalOp("alloc-ext", KindExternal, op)
		}
		if avg := testing.AllocsPerRun(200, func() {
			if n, werr := c.AwaitExternalOp("alloc-ext", KindExternal, op); n != 1 || werr != nil {
				t.Fatalf("await: (%d, %v)", n, werr)
			}
		}); avg != 0 {
			t.Errorf("external await allocates %.2f objects/op at steady state, want 0", avg)
		}
	})
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestExternalSingleInjectionPerDrain pins the acceptance property that
// poller completions ride the pfor-tree bulk path: 32 external
// completions delivered while the only worker is busy must re-enter the
// deque as ONE batch injection carrying all 32 tasks.
func TestExternalSingleInjectionPerDrain(t *testing.T) {
	const fleet = 32
	op := newTestExtOp(fleet)
	rootOp := newTestExtOp(1)
	var rootRunning, delivered atomic.Bool
	go func() {
		// Phase 1: children arm while the root is suspended; root resumes
		// first so the worker is busy when the fleet completes.
		handles := make([]ExternalHandle, 0, fleet)
		for i := 0; i < fleet; i++ {
			handles = append(handles, <-op.armed)
		}
		h := <-rootOp.armed
		h.Complete(0, nil)
		for !rootRunning.Load() {
			// Wait until the worker has actually granted the root again —
			// otherwise the root's own wake would join the fleet's batch.
		}
		// Phase 2: complete the whole fleet while the root spins on the
		// worker; the resumed set accumulates without a drain.
		for _, ch := range handles {
			ch.Complete(1, nil)
		}
		delivered.Store(true)
	}()
	st, err := Run(Config{Workers: 1, Mode: LatencyHiding}, func(c *Ctx) {
		futs := make([]*Future, fleet)
		for i := range futs {
			futs[i] = c.Spawn(func(child *Ctx) {
				child.AwaitExternalOp("fleet-ext", KindExternal, op)
			})
		}
		// Suspend so the single worker runs (and suspends) all children.
		c.AwaitExternalOp("root-ext", KindExternal, rootOp)
		rootRunning.Store(true)
		for !delivered.Load() {
			// Busy-hold the worker until every completion is in the
			// resumed set; the next yield below drains them all at once.
		}
		for _, f := range futs {
			if werr := f.AwaitErr(c); werr != nil {
				t.Errorf("child: %v", werr)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.ResumeBatches != 1 {
		t.Errorf("ResumeBatches = %d, want exactly 1 (one pfor-tree injection per drain)", st.ResumeBatches)
	}
	if st.ResumeBatchTasks != fleet {
		t.Errorf("ResumeBatchTasks = %d, want %d", st.ResumeBatchTasks, fleet)
	}
}

// TestAwaitExternalGeneric exercises the typed convenience wrapper.
func TestAwaitExternalGeneric(t *testing.T) {
	for _, m := range modes() {
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			v, werr := AwaitExternal(c, "typed-ext", func(complete func(string, error)) func(error) {
				go complete("payload", nil)
				return nil
			})
			if v != "payload" || werr != nil {
				t.Errorf("%v: got (%q, %v)", m, v, werr)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

// TestAwaitChan covers the Go-channel bridge: value delivery, closed
// channel, and cancellation releasing the bridge goroutine.
func TestAwaitChan(t *testing.T) {
	for _, m := range modes() {
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			ch := make(chan int, 1)
			ch <- 99
			v, werr := AwaitChan(c, ch)
			if v != 99 || werr != nil {
				t.Errorf("%v: got (%d, %v), want (99, nil)", m, v, werr)
			}
			closed := make(chan int)
			close(closed)
			if _, werr := AwaitChan(c, closed); !errors.Is(werr, ErrChanClosed) {
				t.Errorf("%v: closed chan error = %v, want ErrChanClosed", m, werr)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestAwaitChanCancel(t *testing.T) {
	for _, m := range modes() {
		never := make(chan int)
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			cc, cancel := c.WithDeadline(2 * time.Millisecond)
			defer cancel()
			fut := cc.Spawn(func(child *Ctx) {
				AwaitChan(child, never)
			})
			if werr := fut.AwaitErr(c); !errors.Is(werr, ErrDeadline) {
				t.Errorf("%v: child error = %v, want ErrDeadline", m, werr)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}
