// Package runtime is a real (wall-clock) latency-hiding work-stealing task
// runtime: the Go counterpart of the paper's Standard ML prototype (§6).
//
// The simulated schedulers in package sched execute abstract weighted dags
// under the unit-cost round model used by the analysis; this package runs
// actual Go code. User-level tasks are multiplexed over a fixed pool of
// worker goroutines. As in §6 of the paper, scheduling happens at task
// granularity: the scheduler runs when a task ends, spawns, awaits another
// task, or performs a latency-incurring operation.
//
// Two modes implement the paper's comparison:
//
//   - LatencyHiding: the LHWS algorithm. Each worker owns a set of deques,
//     one active at a time. A task that suspends (Latency or Await on an
//     incomplete Future) is paired with its worker's active deque; when it
//     resumes, a callback returns it to that deque, and the owner injects
//     it back at the next scheduling point. Workers with an empty active
//     deque first switch to another owned ready deque, then steal — per §6,
//     steals target a random victim worker and then one of its ready
//     deques.
//
//   - Blocking: standard work stealing. Latency operations block the
//     worker for their full duration (time.Sleep on the worker's
//     goroutine); Await helps by running queued tasks inline and otherwise
//     blocks the worker until the future completes.
//
// Tasks are goroutines, but scheduled cooperatively: a task runs only while
// it holds its worker's slot, and control passes back to the worker loop at
// every scheduling point. This is the standard way to build a user-level
// scheduler above the Go runtime, which does not expose its own scheduler
// for replacement.
//
// On top of the scheduler sits a resilience layer:
//
//   - Cancellation and deadlines: Ctx.WithCancel / Ctx.WithDeadline derive
//     cancelable subtrees; Config.Deadline bounds the whole run.
//     Cancellation unwinds tasks cooperatively at scheduling points and
//     aborts suspended waits so it never depends on a wakeup arriving.
//
//   - Unified error path: task panics, cancellations, deadlines, and
//     watchdog stalls all flow through one first-error-wins channel; Run
//     returns the first fatal error (ErrTaskPanic, ErrCanceled,
//     ErrDeadline, or a *StallError) and records the rest in Stats.
//
//   - Suspension watchdog: with Config.StallTimeout set, a monitor
//     goroutine detects lost-wakeup / deadlock conditions — live tasks, no
//     running work, no pending wakeups — and converts the would-be hang
//     into a structured *StallError diagnostic (see watchdog.go).
//
//   - Fault injection: Config.Faults wires an internal/faultpoint.Injector
//     into the scheduler hot paths (steals, suspensions, resume injection,
//     channel wakeups, task bodies) for chaos testing; nil costs one
//     pointer check per fault point.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/deque"
	"lhws/internal/faultpoint"
	"lhws/internal/rng"
	"lhws/internal/timerwheel"
)

// DefaultStealBatch is the per-steal item cap when Config.MaxStealBatch
// is zero. Sixteen keeps one batch well under the claim-word limit
// (deque.MaxBatch) while still amortizing the steal handshake over
// enough items to clear the steal-economics gates.
const DefaultStealBatch = 16

// stealShardCount resolves Config.StealShards: 0 defaults to shards of
// about four workers (the adjacent-cores granularity the Gast et al.
// near/far latency split models), and the count never exceeds the
// worker count.
func stealShardCount(shards, workers int) int {
	if shards == 0 {
		shards = (workers + 3) / 4
	}
	if shards > workers {
		shards = workers
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// assignStealShards gives each worker its contiguous locality shard
// [shardLo, shardHi): worker i belongs to shard i*count/P, which splits
// P workers into count near-equal contiguous groups.
func assignStealShards(workers []*worker, count int) {
	p := len(workers)
	lo := 0
	for s := 0; s < count; s++ {
		hi := (s + 1) * p / count
		for i := lo; i < hi; i++ {
			workers[i].shardLo, workers[i].shardHi = lo, hi
		}
		lo = hi
	}
}

// Mode selects the scheduling algorithm.
type Mode int

const (
	// LatencyHiding runs the LHWS algorithm (multi-deque, suspending).
	LatencyHiding Mode = iota
	// Blocking runs standard work stealing with blocking latency ops.
	Blocking
)

func (m Mode) String() string {
	switch m {
	case LatencyHiding:
		return "latency-hiding"
	case Blocking:
		return "blocking"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config configures a runtime execution.
type Config struct {
	// Workers is the number of worker goroutines (P). Must be ≥ 1.
	Workers int
	// Mode selects latency-hiding or blocking scheduling.
	Mode Mode
	// Seed drives steal-victim selection. Unlike the simulator, wall-clock
	// executions are not bit-reproducible, but seeding keeps victim
	// sequences stable.
	Seed uint64
	// Deadline, when positive, bounds the whole run: if it elapses the
	// root scope is canceled, every task unwinds, and Run returns
	// ErrDeadline.
	Deadline time.Duration
	// StallTimeout, when positive, arms the suspension watchdog: if no
	// task makes progress for this long while live tasks remain and no
	// wakeup is pending, the run is canceled and Run returns a
	// *StallError naming the stuck suspensions. Zero disables the
	// watchdog. The watchdog observes latency-hiding suspensions;
	// Blocking-mode waits hold their worker inside a task and are
	// deliberately out of scope.
	StallTimeout time.Duration
	// Faults, when non-nil, injects scheduler faults for chaos testing;
	// see lhws/internal/faultpoint. Runs with dropped wakeups should
	// also set StallTimeout (or Deadline) so lost wakeups surface as
	// typed errors instead of hangs.
	Faults *faultpoint.Injector
	// ShedBlownTargets activates overload shedding in the scheduler:
	// a steal attempt that lands on a deque whose latency target
	// (WithTarget/WithDeadline) has already passed cancels that subtree
	// with ErrTargetMissed instead of stealing from it, returning its
	// workers to work that can still meet its target. Off by default —
	// without it targets only steer deque selection and never cancel.
	ShedBlownTargets bool
	// StealShards groups workers into locality shards for two-level
	// victim selection: a thief probes victims inside its own shard
	// first (modeling cheap near steals per Gast et al.,
	// arXiv:1805.00857) and escalates to uniform-over-all selection
	// after a few failed local attempts. 0 picks a default sized by
	// Workers (shards of ~4 workers); 1 disables locality (uniform
	// victim selection everywhere). Values above Workers are clamped.
	StealShards int
	// MaxStealBatch caps how many items one successful steal may
	// transfer (a steal never takes more than half the victim deque
	// regardless). 0 picks the default (DefaultStealBatch); 1 restores
	// classic single-item stealing — the baseline the steal-economics
	// experiment compares against. Values above deque.MaxBatch are
	// clamped.
	MaxStealBatch int
	// OnSteal, when non-nil, observes every successful steal from the
	// thief's goroutine, on the steal path itself. It must be cheap,
	// must not block, and must not call back into the runtime; it
	// exists to feed external collectors (the internal/trace steal
	// log).
	OnSteal func(StealEvent)
}

// StealEvent describes one successful steal for Config.OnSteal.
type StealEvent struct {
	Thief  int  // stealing worker id
	Victim int  // victim worker id
	Items  int  // items transferred (≥ 1)
	Local  bool // victim was in the thief's locality shard
}

// Stats reports counters from one execution. All counts are totals across
// workers.
type Stats struct {
	TasksRun           int64         // task run slices (resumptions included)
	TasksSpawned       int64         // tasks created
	TasksCanceled      int64         // tasks unwound by cancellation, deadline, or stall
	TasksPanicked      int64         // tasks that panicked
	Suspensions        int64         // task suspensions (latency + await + channels + external)
	Switches           int64         // deque switches
	StealAttempts      int64         // steal attempts
	Steals             int64         // successful steals
	StealsLocal        int64         // successful steals from a same-shard victim
	StealsRemote       int64         // successful steals that escalated beyond the shard
	BatchItems         int64         // items transferred by successful steals (≥ Steals)
	ResumeBatches      int64         // multi-task pfor-tree injections by drainResumed
	ResumeBatchTasks   int64         // tasks re-injected inside those batches
	MaxDequesPerWorker int32         // high-water mark of live deques on one worker
	TasksLate          int64         // tasks that completed after their scope's latency target
	TargetCancels      int64         // subtrees shed by steal gating (ShedBlownTargets)
	Stalled            bool          // the suspension watchdog fired
	SuppressedErrors   []string      // fatal errors after the first (first-error-wins)
	Wall               time.Duration // wall-clock duration of Run
}

// ErrConfig reports an invalid Config.
var ErrConfig = errors.New("runtime: invalid config")

// ErrTaskPanic wraps a panic raised inside a task; Run returns it with the
// panic value formatted into the message.
var ErrTaskPanic = errors.New("runtime: task panicked")

// maxSuppressedErrors bounds the Stats.SuppressedErrors record.
const maxSuppressedErrors = 16

// Run executes root (and everything it spawns) to completion on a fresh
// worker pool and returns execution statistics.
//
// Run fails with a typed error when the execution does: ErrTaskPanic for
// the first task panic (the panic value formatted in), ErrCanceled /
// ErrDeadline when the root scope is canceled or Config.Deadline elapses,
// and a *StallError when the suspension watchdog detects a lost wakeup or
// deadlock. Whatever the cause, the error path is the same: the root
// scope is canceled, suspended tasks are aborted and unwound, and Run
// returns only after every task has finished — no worker or task
// goroutines are leaked. Later fatal errors are recorded in
// Stats.SuppressedErrors. Stats are returned even when err is non-nil.
func Run(cfg Config, root func(*Ctx)) (*Stats, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("%w: Workers must be >= 1, got %d", ErrConfig, cfg.Workers)
	}
	if cfg.StealShards < 0 {
		return nil, fmt.Errorf("%w: StealShards must be >= 0, got %d", ErrConfig, cfg.StealShards)
	}
	if cfg.MaxStealBatch < 0 {
		return nil, fmt.Errorf("%w: MaxStealBatch must be >= 0, got %d", ErrConfig, cfg.MaxStealBatch)
	}
	rt := &runtimeState{cfg: cfg, done: make(chan struct{}), poolStop: make(chan struct{})}
	rt.trackSuspends = cfg.StallTimeout > 0
	rt.maxSteal = cfg.MaxStealBatch
	if rt.maxSteal == 0 {
		rt.maxSteal = DefaultStealBatch
	}
	if rt.maxSteal > deque.MaxBatch {
		rt.maxSteal = deque.MaxBatch
	}
	rt.shardCount = stealShardCount(cfg.StealShards, cfg.Workers)
	rt.wheel = timerwheel.New(0)
	rt.root = newCancelScope(rt, nil)
	seeds := rng.New(cfg.Seed)
	rt.shards = make([]statShard, cfg.Workers)
	rt.workers = make([]*worker, cfg.Workers)
	for i := range rt.workers {
		rt.workers[i] = newWorker(rt, i, seeds.Split())
	}
	assignStealShards(rt.workers, rt.shardCount)

	// The root task is never recycled (recycle=false from newTask): Run
	// reads rootTask.err after the pool drains.
	rootTask := newTask(rt, root)
	rootTask.scope = rt.root
	rt.liveTasks.Add(1)
	rt.shards[0].tasksSpawned.Add(1)
	w0 := rt.workers[0]
	w0.assigned = rootTask

	if cfg.Deadline > 0 {
		rt.root.setDeadline(cfg.Deadline)
	}
	watchStop := make(chan struct{})
	if cfg.StallTimeout > 0 {
		go rt.watchdog(watchStop)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range rt.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	// The run has drained: release every parked pooled task goroutine,
	// quiesce the timer wheel (after Shutdown returns no timer callback —
	// including the root deadline — can fire), and close run-scoped
	// auxiliaries (the I/O dispatcher's bridge pool, if one was created).
	close(rt.poolStop)
	close(watchStop)
	rt.wheel.Shutdown()
	rt.closeAux()

	rt.errMu.Lock()
	err := rt.firstErr
	suppressed := append([]string(nil), rt.suppressed...)
	rt.errMu.Unlock()
	if err == nil {
		// No run-wide fatal error: surface the root task's own outcome
		// (e.g. the root unwound under a derived deadline).
		err = rootTask.err
	}

	st := &Stats{
		TasksCanceled:      rt.stats.TasksCanceled.Load(),
		TasksPanicked:      rt.stats.TasksPanicked.Load(),
		TasksLate:          rt.stats.TasksLate.Load(),
		TargetCancels:      rt.stats.TargetCancels.Load(),
		MaxDequesPerWorker: rt.stats.MaxDeques.Load(),
		Stalled:            rt.stalled.Load(),
		SuppressedErrors:   suppressed,
		Wall:               wall,
	}
	for i := range rt.shards {
		s := &rt.shards[i]
		st.TasksRun += s.tasksRun.Load()
		st.TasksSpawned += s.tasksSpawned.Load()
		st.Suspensions += s.suspensions.Load()
		st.Switches += s.switches.Load()
		st.StealAttempts += s.stealAttempts.Load()
		st.Steals += s.steals.Load()
		st.StealsLocal += s.stealsLocal.Load()
		st.StealsRemote += s.stealsRemote.Load()
		st.BatchItems += s.batchItems.Load()
		st.ResumeBatches += s.resumeBatches.Load()
		st.ResumeBatchTasks += s.resumeBatchTasks.Load()
	}
	return st, err
}

// runtimeState is the shared state of one Run invocation.
type runtimeState struct {
	cfg       Config
	workers   []*worker
	root      *cancelScope
	liveTasks atomic.Int64
	// pendingWakes counts wakeups that are scheduled but not yet
	// delivered (armed Latency timers, derived-scope deadline timers,
	// fault-delayed re-injections): a run with pending wakes is waiting,
	// not stalled.
	pendingWakes atomic.Int64
	// extPending counts outstanding external suspensions (KindFD /
	// KindExternal): tasks parked on socket readiness or callback
	// completions. It feeds the load signal (see load.go), not the
	// watchdog — an fd that never fires is still a stall.
	extPending atomic.Int64
	// activeTargets counts deques whose targetNs is currently nonzero
	// (see rdeque.noteTarget). The steal path reads it to skip the
	// time.Now() call and EDF victim scan whenever no latency target
	// exists anywhere in the run — the common case for target-free
	// workloads.
	activeTargets atomic.Int64
	// shardCount and maxSteal are the resolved steal-policy knobs
	// (Config.StealShards / Config.MaxStealBatch after defaulting and
	// clamping), fixed for the run.
	shardCount int
	maxSteal   int
	stalled    atomic.Bool
	done       chan struct{}
	doneOnce   sync.Once
	stats      atomicStats
	shards     []statShard // per-worker hot counters (see stats.go)
	pools      runtimePools
	// poolStop, closed when the run drains, releases every pooled task
	// goroutine parked between lives (see task.main).
	poolStop chan struct{}
	// trackSuspends mirrors StallTimeout > 0: the suspension registry is
	// maintained only for the watchdog (see wait.go).
	trackSuspends bool
	susReg        suspendRegistry
	// loadSamp is the load signal's across-sample state (see load.go).
	loadSamp loadSampler
	// wheel is the run's shared hashed timer wheel: Latency expirations,
	// scope deadlines, and fault-delayed wakeups all ride it, so many
	// thousand sleeping tasks cost one timer goroutine.
	wheel *timerwheel.Wheel

	// aux holds run-scoped singletons created by subsystems layered on
	// the runtime (the I/O dispatcher); closers run after the pool
	// drains, in reverse creation order.
	auxMu      sync.Mutex
	aux        map[any]any
	auxClosers []func()

	errMu      sync.Mutex
	firstErr   error
	suppressed []string
}

// Aux returns the run-scoped singleton stored under key, creating it
// with ctor on first use. The optional closer returned by ctor runs when
// the run drains (after every task has finished, before Run returns).
// This is how package-level subsystems (lhws/internal/io) attach one
// instance per Run without the runtime importing them.
func (c *Ctx) Aux(key any, ctor func() (value any, closer func())) any {
	rt := c.t.rt
	rt.auxMu.Lock()
	defer rt.auxMu.Unlock()
	if v, ok := rt.aux[key]; ok {
		return v
	}
	v, closer := ctor()
	if rt.aux == nil {
		rt.aux = make(map[any]any)
	}
	rt.aux[key] = v
	if closer != nil {
		rt.auxClosers = append(rt.auxClosers, closer)
	}
	return v
}

// Mode reports the scheduling mode of the runtime executing the task, so
// layered subsystems can pick the suspending or the blocking (baseline)
// implementation of an operation.
func (c *Ctx) Mode() Mode { return c.t.rt.cfg.Mode }

// NumWorkers reports the runtime's worker count P; layered subsystems
// size their helper pools from it (O(P), never O(connections)).
func (c *Ctx) NumWorkers() int { return c.t.rt.cfg.Workers }

// Wheel returns the run's shared hashed timer wheel — the same one that
// drives Latency expirations and scope deadlines. Run-scoped subsystems
// (the I/O dispatcher's per-op deadlines) arm their timers here instead
// of keeping a second wheel goroutine per run: a million pending I/O
// deadlines are a million O(1) list inserts on one wheel, and timers
// expiring in the same tick complete together, so their wakeups batch
// into drainResumed's single pfor-tree injection like every other
// same-drain completion. The wheel is shut down after the pool drains
// and before run-scoped auxiliaries close (see Run), so an aux closer
// never races a firing callback.
func (c *Ctx) Wheel() *timerwheel.Wheel { return c.t.rt.wheel }

func (rt *runtimeState) closeAux() {
	rt.auxMu.Lock()
	closers := rt.auxClosers
	rt.auxClosers = nil
	rt.auxMu.Unlock()
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
}

// noteFatal records a run-fatal error: the first one wins and becomes
// Run's return value, later ones are kept (bounded) for Stats. The same
// error value arriving twice — e.g. recordFatal's cancel echoing back
// through the root-scope hook — is recorded once.
func (rt *runtimeState) noteFatal(err error) {
	rt.errMu.Lock()
	switch {
	case rt.firstErr == nil:
		rt.firstErr = err
	case rt.firstErr != err && len(rt.suppressed) < maxSuppressedErrors:
		rt.suppressed = append(rt.suppressed, err.Error())
	}
	rt.errMu.Unlock()
}

// recordFatal is the unified failure path for panics and run-level
// faults: record the error, then cancel the root scope so every task —
// running, queued, or suspended — unwinds and the run drains cleanly
// instead of leaking goroutines.
func (rt *runtimeState) recordFatal(err error) {
	rt.noteFatal(err)
	rt.root.cancel(err)
}

// atomicStats holds the cold global counters; the per-quantum hot
// counters are sharded per worker in statShard (see stats.go).
type atomicStats struct {
	TasksCanceled atomic.Int64
	TasksPanicked atomic.Int64
	TasksLate     atomic.Int64
	TargetCancels atomic.Int64
	MaxDeques     atomic.Int32
}

// taskDone decrements the live-task count and signals completion when it
// reaches zero.
func (rt *runtimeState) taskDone() {
	if rt.liveTasks.Add(-1) == 0 {
		rt.doneOnce.Do(func() { close(rt.done) })
	}
}

// finished polls the done channel; the default case keeps it
// non-parking.
//
//lhws:nonblocking
func (rt *runtimeState) finished() bool {
	select {
	case <-rt.done:
		return true
	default:
		return false
	}
}

// failSteal consults the fault injector's steal point. One nil check
// when chaos is off; the Decide call itself takes only a leaf mutex.
// Fail aborts the attempt; Delay models steal-latency inflation — the
// nonzero steal latency of the Gast et al. analyses — by stalling the
// thief before the attempt proceeds.
//
//lhws:nonblocking
func (rt *runtimeState) failSteal() bool {
	inj := rt.cfg.Faults
	if inj == nil {
		return false
	}
	switch act, d := inj.Decide(faultpoint.Steal); act {
	case faultpoint.Fail:
		return true
	case faultpoint.Delay:
		time.Sleep(d) //lhws:allowblock chaos-only bounded stall modeling steal latency; unreachable without an injector
		return false
	default:
		return false
	}
}
