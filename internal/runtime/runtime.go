// Package runtime is a real (wall-clock) latency-hiding work-stealing task
// runtime: the Go counterpart of the paper's Standard ML prototype (§6).
//
// The simulated schedulers in package sched execute abstract weighted dags
// under the unit-cost round model used by the analysis; this package runs
// actual Go code. User-level tasks are multiplexed over a fixed pool of
// worker goroutines. As in §6 of the paper, scheduling happens at task
// granularity: the scheduler runs when a task ends, spawns, awaits another
// task, or performs a latency-incurring operation.
//
// Two modes implement the paper's comparison:
//
//   - LatencyHiding: the LHWS algorithm. Each worker owns a set of deques,
//     one active at a time. A task that suspends (Latency or Await on an
//     incomplete Future) is paired with its worker's active deque; when it
//     resumes, a callback returns it to that deque, and the owner injects
//     it back at the next scheduling point. Workers with an empty active
//     deque first switch to another owned ready deque, then steal — per §6,
//     steals target a random victim worker and then one of its ready
//     deques.
//
//   - Blocking: standard work stealing. Latency operations block the
//     worker for their full duration (time.Sleep on the worker's
//     goroutine); Await helps by running queued tasks inline and otherwise
//     blocks the worker until the future completes.
//
// Tasks are goroutines, but scheduled cooperatively: a task runs only while
// it holds its worker's slot, and control passes back to the worker loop at
// every scheduling point. This is the standard way to build a user-level
// scheduler above the Go runtime, which does not expose its own scheduler
// for replacement.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/rng"
)

// Mode selects the scheduling algorithm.
type Mode int

const (
	// LatencyHiding runs the LHWS algorithm (multi-deque, suspending).
	LatencyHiding Mode = iota
	// Blocking runs standard work stealing with blocking latency ops.
	Blocking
)

func (m Mode) String() string {
	switch m {
	case LatencyHiding:
		return "latency-hiding"
	case Blocking:
		return "blocking"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config configures a runtime execution.
type Config struct {
	// Workers is the number of worker goroutines (P). Must be ≥ 1.
	Workers int
	// Mode selects latency-hiding or blocking scheduling.
	Mode Mode
	// Seed drives steal-victim selection. Unlike the simulator, wall-clock
	// executions are not bit-reproducible, but seeding keeps victim
	// sequences stable.
	Seed uint64
}

// Stats reports counters from one execution. All counts are totals across
// workers.
type Stats struct {
	TasksRun           int64         // task run slices (resumptions included)
	TasksSpawned       int64         // tasks created
	Suspensions        int64         // task suspensions (latency + await)
	Switches           int64         // deque switches
	StealAttempts      int64         // steal attempts
	Steals             int64         // successful steals
	MaxDequesPerWorker int32         // high-water mark of live deques on one worker
	Wall               time.Duration // wall-clock duration of Run
}

// ErrConfig reports an invalid Config.
var ErrConfig = errors.New("runtime: invalid config")

// ErrTaskPanic wraps a panic raised inside a task; Run returns it with the
// panic value formatted into the message.
var ErrTaskPanic = errors.New("runtime: task panicked")

// Run executes root (and everything it spawns) to completion on a fresh
// worker pool and returns execution statistics.
func Run(cfg Config, root func(*Ctx)) (*Stats, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("%w: Workers must be >= 1, got %d", ErrConfig, cfg.Workers)
	}
	rt := &runtimeState{cfg: cfg, done: make(chan struct{})}
	seeds := rng.New(cfg.Seed)
	rt.workers = make([]*worker, cfg.Workers)
	for i := range rt.workers {
		rt.workers[i] = newWorker(rt, i, seeds.Split())
	}

	rootTask := newTask(rt, func(c *Ctx) { root(c) })
	rt.liveTasks.Add(1)
	rt.stats.TasksSpawned.Add(1)
	w0 := rt.workers[0]
	w0.assigned = rootTask

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range rt.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	rt.panicMu.Lock()
	panicked, panicVal := rt.panicked, rt.panicVal
	rt.panicMu.Unlock()
	if panicked {
		return nil, fmt.Errorf("%w: %v", ErrTaskPanic, panicVal)
	}

	st := &Stats{
		TasksRun:           rt.stats.TasksRun.Load(),
		TasksSpawned:       rt.stats.TasksSpawned.Load(),
		Suspensions:        rt.stats.Suspensions.Load(),
		Switches:           rt.stats.Switches.Load(),
		StealAttempts:      rt.stats.StealAttempts.Load(),
		Steals:             rt.stats.Steals.Load(),
		MaxDequesPerWorker: rt.stats.MaxDeques.Load(),
		Wall:               wall,
	}
	return st, nil
}

// runtimeState is the shared state of one Run invocation.
type runtimeState struct {
	cfg       Config
	workers   []*worker
	liveTasks atomic.Int64
	done      chan struct{}
	doneOnce  sync.Once
	stats     atomicStats

	panicMu  sync.Mutex
	panicVal any
	panicked bool
}

// recordPanic stores the first task panic and forces shutdown so Run can
// return it as an error.
func (rt *runtimeState) recordPanic(v any) {
	rt.panicMu.Lock()
	if !rt.panicked {
		rt.panicked = true
		rt.panicVal = v
	}
	rt.panicMu.Unlock()
	rt.doneOnce.Do(func() { close(rt.done) })
}

type atomicStats struct {
	TasksRun      atomic.Int64
	TasksSpawned  atomic.Int64
	Suspensions   atomic.Int64
	Switches      atomic.Int64
	StealAttempts atomic.Int64
	Steals        atomic.Int64
	MaxDeques     atomic.Int32
}

// taskDone decrements the live-task count and signals completion when it
// reaches zero.
func (rt *runtimeState) taskDone() {
	if rt.liveTasks.Add(-1) == 0 {
		rt.doneOnce.Do(func() { close(rt.done) })
	}
}

// finished polls the done channel; the default case keeps it
// non-parking.
//
//lhws:nonblocking
func (rt *runtimeState) finished() bool {
	select {
	case <-rt.done:
		return true
	default:
		return false
	}
}
