package runtime

import (
	"sync"

	"lhws/internal/faultpoint"
)

// This file is the external-completion primitive: the bridge between the
// scheduler's heavy-edge suspension machinery and event sources outside
// the runtime — socket readiness, timers, Go channels, subprocess exits.
// The paper's model (§2) draws a heavy edge wherever a thread waits on
// the world; Latency simulates such an edge with a timer, and
// AwaitExternalOp realizes it for real events: the task suspends through
// the same epoch-claimed waiter token as Latency/Await/Chan, the
// completer calls ExternalHandle.Complete from any goroutine, and the
// wakeup re-injects the task through the owner's drainResumed batch (one
// pfor-tree deque item per drain, Figure 3 lines 7-14).

// WaitKind classifies what a suspension is waiting for. The watchdog
// reports it in StallWait so an I/O hang is distinguishable from a lost
// timer or an abandoned channel peer.
type WaitKind int8

const (
	// KindOther is an unclassified suspension.
	KindOther WaitKind = iota
	// KindTimer waits on a Latency timer.
	KindTimer
	// KindFuture waits on a task completion (Await).
	KindFuture
	// KindChan waits on a runtime channel operation.
	KindChan
	// KindFD waits on socket readiness or I/O completion (lhws/internal/io).
	KindFD
	// KindExternal waits on a generic external completion (AwaitExternal).
	KindExternal
)

func (k WaitKind) String() string {
	switch k {
	case KindTimer:
		return "timer"
	case KindFuture:
		return "future"
	case KindChan:
		return "chan"
	case KindFD:
		return "fd"
	case KindExternal:
		return "external"
	default:
		return "other"
	}
}

// ExternalHandle is the one-shot completion token for one external
// await. It is a small value (safe to copy, comparable) handed to
// ExternalOp.Arm; whoever observes the event calls Complete, from any
// goroutine. Exactly one Complete must eventually be made per Arm —
// even after CancelExternal, whose wake the late Complete then loses to
// the epoch claim and falls away harmlessly.
type ExternalHandle struct {
	wt *waiter
	bk *extBlock
}

// Complete delivers the operation's result (a byte count and an error,
// both passed through to the awaiting task) and wakes the task. In
// latency-hiding mode the wakeup routes through the PollComplete fault
// point, so chaos runs can delay, duplicate, or drop poller completions
// like any other resume.
//
// The return reports whether the payload was handed to the awaiting
// task: false means a cancellation claimed the suspension first and the
// result was discarded. A completer whose result carries state that
// must not be lost (bytes consumed off a socket, an accepted conn) uses
// this to salvage it — see internal/io's unread stash.
//
//lhws:nosuspend
func (h ExternalHandle) Complete(n int, err error) bool {
	if h.bk != nil {
		return h.bk.complete(n, err)
	}
	wt := h.wt
	// Publish the payload before the wake: the claiming CAS orders these
	// writes before the task reads them, and an abort winner never reads
	// them at all.
	wt.extN, wt.extErr = n, err
	return wt.deliver(faultpoint.PollComplete)
}

// Discard releases the completer's claim on the await without waking
// the task. It is the correct completion for an attempt that observed
// its operation canceled: the abort that interrupted it wakes the task
// itself (abortWait), so a normal Complete would race that wake for the
// epoch claim — and, on winning, hand the unwinding task a kicked
// attempt's payload as if the operation had succeeded. In Blocking mode
// there is no separate abort wake (the worker parks on the completion
// rendezvous itself, and the scope's registration decides the unwind),
// so Discard still completes the rendezvous there.
//
//lhws:nosuspend
func (h ExternalHandle) Discard(err error) {
	if h.bk != nil {
		h.bk.complete(0, err)
		return
	}
	h.wt.release()
}

// ExternalOp is an external operation a task can await. Arm runs
// task-side, before the task yields: it must publish the operation to
// its completer (poller, goroutine, callback registry) and arrange for
// exactly one eventual h.Complete. CancelExternal is called by the
// runtime when the awaiting task's scope is canceled: it should
// interrupt or deregister the operation so the completer's Complete
// comes promptly; it must not block, and it must tolerate the operation
// having already completed (the handle lets the completer correlate).
// The runtime wakes the task itself after CancelExternal returns.
type ExternalOp interface {
	Arm(h ExternalHandle)
	CancelExternal(h ExternalHandle, cause error)
}

// AwaitExternalOp suspends the task until op completes and returns the
// completion's payload. site and kind label the suspension for watchdog
// diagnostics. The non-generic int payload keeps the I/O hot path
// allocation-free: op is typically a pooled pointer, and converting a
// pointer to an interface does not allocate.
//
// In Blocking mode the worker blocks until the completion arrives — the
// block-the-worker baseline the paper's evaluation compares against.
//
// If the task's scope is canceled during the wait, the runtime calls
// op.CancelExternal and the task unwinds (cancellation is an unwind, not
// an error return, matching Latency and Await).
//
// External completions deliberately do not count as pending wakes for
// the suspension watchdog: an fd that never becomes ready is exactly the
// hang the watchdog exists to diagnose. Configure StallTimeout above the
// I/O latencies the workload legitimately expects.
func (c *Ctx) AwaitExternalOp(site string, kind WaitKind, op ExternalOp) (int, error) {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		return c.awaitExternalBlocking(op)
	}
	c.injectFault(faultpoint.Suspend)
	t := c.t
	home := t.w.active
	home.suspend()
	wt := t.beginWait(site, kind, home, nil)
	wt.refs.Add(1) // the completer's event reference, consumed by Complete
	wt.ext = op
	op.Arm(ExternalHandle{wt: wt})
	c.armScope(wt)
	c.finishWait(wt)
	// The payload was copied onto the task by the claiming wake, so it
	// is readable after the waiter may already have been recycled.
	n, err := t.extN, t.extErr
	t.extN, t.extErr = 0, nil
	return n, err
}

// extBlock is the Blocking-mode completion rendezvous: the worker parks
// on done, holding its slot — the baseline's cost by construction.
type extBlock struct {
	mu        sync.Mutex
	completed bool
	n         int
	err       error
	done      chan struct{}
}

//lhws:nosuspend
func (bk *extBlock) complete(n int, err error) bool {
	bk.mu.Lock()
	first := !bk.completed
	if first {
		bk.completed = true
		bk.n, bk.err = n, err
		close(bk.done)
	}
	bk.mu.Unlock()
	// The rendezvous always consumes the first completion (the blocking
	// awaiter reads it even after an abort kicked the op), so only a
	// duplicate's payload is discarded.
	return first
}

func (c *Ctx) awaitExternalBlocking(op ExternalOp) (int, error) {
	bk := &extBlock{done: make(chan struct{})}
	h := ExternalHandle{bk: bk}
	key := new(int)
	// Arm before registering the abort: addWait and the canceling scope
	// both take scope.mu, so this order is what publishes Arm's writes
	// (e.g. an op's stored cancel hook) to a concurrent CancelExternal.
	op.Arm(h)
	if err := c.scope.addWait(key, abortFunc(func(err error) {
		op.CancelExternal(h, err)
	})); err != nil {
		// Born canceled: interrupt the operation we just armed (its late
		// Complete hits the rendezvous harmlessly) and unwind.
		op.CancelExternal(h, err)
		panic(cancelPanic{err: err})
	}
	<-bk.done
	if !c.scope.removeWait(key) {
		// A cancel claimed the registration: unwind like every other
		// blocking-mode wait, whatever the completer managed to deliver.
		if err := c.scope.Err(); err != nil {
			panic(cancelPanic{err: err})
		}
	}
	return bk.n, bk.err
}

// AwaitExternal adapts any callback-style completion into a heavy-edge
// suspension with a typed payload: arm must start the operation and
// return a cancel function (called on scope cancellation; may be nil if
// the operation cannot be interrupted). The completion callback passed
// to arm is idempotent — the first call wins, and exactly one call must
// eventually be made. This is the convenience layer; it allocates per
// await. Latency-critical completers implement ExternalOp against
// AwaitExternalOp instead.
func AwaitExternal[T any](c *Ctx, site string, arm func(complete func(T, error)) (cancel func(error))) (T, error) {
	return awaitExternalGeneric(c, site, KindExternal, arm)
}

func awaitExternalGeneric[T any](c *Ctx, site string, kind WaitKind, arm func(complete func(T, error)) (cancel func(error))) (T, error) {
	b := &extBox[T]{arm: arm}
	_, _ = c.AwaitExternalOp(site, kind, b)
	return b.v, b.err
}

// extBox adapts the generic arm/complete shape onto ExternalOp, carrying
// the typed payload alongside the waiter's int/error channel.
type extBox[T any] struct {
	arm      func(complete func(T, error)) (cancel func(error))
	mu       sync.Mutex
	done     bool
	canceled bool
	v        T
	err      error
	cancel   func(error)
}

func (b *extBox[T]) Arm(h ExternalHandle) {
	b.cancel = b.arm(func(v T, err error) {
		b.mu.Lock()
		if b.done {
			b.mu.Unlock()
			return
		}
		b.done = true
		canceled := b.canceled
		b.v, b.err = v, err
		b.mu.Unlock()
		if canceled {
			// The abort that canceled this box owns the wake; completing
			// normally would race it for the claim and could surface the
			// canceled operation's payload as a successful return.
			h.Discard(err)
			return
		}
		h.Complete(0, err)
	})
}

func (b *extBox[T]) CancelExternal(h ExternalHandle, cause error) {
	b.mu.Lock()
	b.canceled = true
	b.mu.Unlock()
	if b.cancel != nil {
		b.cancel(cause)
	}
}

// AwaitChan suspends the task until a value arrives on a plain Go
// channel, turning the receive into a heavy edge instead of blocking the
// worker. A bridge goroutine performs the receive; scope cancellation
// releases it, so an abandoned channel does not leak the bridge. The
// returned error is ErrChanClosed if ch was closed; cancellation unwinds
// the task rather than returning an error.
func AwaitChan[T any](c *Ctx, ch <-chan T) (T, error) {
	return awaitExternalGeneric(c, "await-chan", KindChan,
		func(complete func(T, error)) func(error) {
			stop := make(chan struct{})
			go func() {
				var zero T
				select {
				case v, ok := <-ch:
					if !ok {
						complete(zero, ErrChanClosed)
						return
					}
					complete(v, nil)
				case <-stop:
					// The runtime aborts the wait itself; this completion
					// only releases the event reference (stale wake).
					complete(zero, ErrCanceled)
				}
			}()
			var once sync.Once
			return func(error) { once.Do(func() { close(stop) }) }
		})
}
