package runtime

import (
	"errors"
	"testing"
	"time"

	"lhws/internal/faultpoint"
)

// chaosSeeds are the fixed seeds the chaos suite replays (make chaos).
// 99 and 4242 were added with the pooled hot path / pfor bulk injection
// so the recycling and batch-split paths see more victim/injection
// interleavings.
var chaosSeeds = []uint64{1, 7, 42, 99, 4242}

// chaosTasks and chaosWant parameterize the chaos workload: a fork-join
// producer/consumer computation exercising every suspension path (Latency,
// channel send with backpressure, channel receive, Await) whose result is
// checkable.
const chaosTasks = 24

const chaosWant = chaosTasks * (chaosTasks + 1) / 2

// chaosWorkload spawns chaosTasks producers that hide latency and push
// through a bounded channel into a consumer; the root joins on the
// consumer's sum. Returns the sum so callers can verify correctness.
func chaosWorkload(c *Ctx) int {
	ch := NewChan[int](4)
	total := SpawnValue(c, func(cc *Ctx) int {
		sum := 0
		for i := 0; i < chaosTasks; i++ {
			sum += ch.Recv(cc)
		}
		return sum
	})
	for i := 0; i < chaosTasks; i++ {
		i := i
		c.Spawn(func(cc *Ctx) {
			cc.Latency(time.Millisecond)
			ch.Send(cc, i+1)
		})
	}
	return total.Await(c)
}

// chaosConfig bounds every chaos run: a run-wide deadline and the stall
// watchdog guarantee termination no matter which wakeups the injector
// loses, so a scenario either computes the right answer or returns a
// typed error — never hangs.
func chaosConfig(seed uint64, inj *faultpoint.Injector) Config {
	return Config{
		Workers:      4,
		Mode:         LatencyHiding,
		Seed:         seed,
		Deadline:     30 * time.Second,
		StallTimeout: 300 * time.Millisecond,
		Faults:       inj,
		// Two shards over four workers keep the two-tier victim policy
		// and the batched transfer path under fault injection for every
		// chaos scenario (batching itself is on by default).
		StealShards: 2,
	}
}

// mustBeCorrect asserts the scenario cannot fail: the injected fault only
// slows the schedule down (failed steals, delays, duplicate wakeups).
func mustBeCorrect(t *testing.T, seed uint64, inj *faultpoint.Injector) {
	t.Helper()
	var got int
	st, err := Run(chaosConfig(seed, inj), func(c *Ctx) { got = chaosWorkload(c) })
	if err != nil {
		t.Fatalf("seed %d: Run: %v (faults: %s)", seed, err, inj.Summary())
	}
	if got != chaosWant {
		t.Fatalf("seed %d: sum = %d, want %d (faults: %s)", seed, got, chaosWant, inj.Summary())
	}
	if st.Stalled {
		t.Fatalf("seed %d: watchdog fired on a recoverable fault", seed)
	}
}

// correctOrTyped asserts the run either computes the right answer or
// fails with one of the allowed typed errors — the lost-wakeup scenarios,
// where the watchdog or deadline converts a would-be hang into a
// diagnostic.
func correctOrTyped(t *testing.T, seed uint64, inj *faultpoint.Injector, allowed ...error) {
	t.Helper()
	var got int
	_, err := Run(chaosConfig(seed, inj), func(c *Ctx) { got = chaosWorkload(c) })
	if err == nil {
		if got != chaosWant {
			t.Fatalf("seed %d: err nil but sum = %d, want %d (faults: %s)",
				seed, got, chaosWant, inj.Summary())
		}
		return
	}
	for _, a := range allowed {
		if errors.Is(err, a) {
			return
		}
	}
	t.Fatalf("seed %d: Run err = %v, want nil or one of %v (faults: %s)",
		seed, err, allowed, inj.Summary())
}

// TestChaosStealFail fails 10% of steal attempts: pure slowdown, the
// result must be exact.
func TestChaosStealFail(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.Steal, faultpoint.Rule{
			Action: faultpoint.Fail, Rate: 0.10,
		})
		mustBeCorrect(t, seed, inj)
	}
}

// TestChaosResumeDelay delays 20% of resume injections by 2ms: wakeups
// arrive late but are never lost, so the result must be exact and the
// watchdog must stay quiet (delayed wakes count as pending progress).
func TestChaosResumeDelay(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.ResumeInject, faultpoint.Rule{
			Action: faultpoint.Delay, Rate: 0.20, Delay: 2 * time.Millisecond,
		})
		mustBeCorrect(t, seed, inj)
	}
}

// TestChaosResumeDup duplicates 20% of resume injections 2ms apart: the
// epoch claim must discard every duplicate, so the result is exact.
func TestChaosResumeDup(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.ResumeInject, faultpoint.Rule{
			Action: faultpoint.Dup, Rate: 0.20, Delay: 2 * time.Millisecond,
		})
		mustBeCorrect(t, seed, inj)
	}
}

// TestChaosChanDup duplicates 20% of channel wakeups: a duplicated
// handoff must not deliver a value twice or re-inject a task twice.
func TestChaosChanDup(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.ChanWakeup, faultpoint.Rule{
			Action: faultpoint.Dup, Rate: 0.20, Delay: time.Millisecond,
		})
		mustBeCorrect(t, seed, inj)
	}
}

// TestChaosSuspendDelay jitters 10% of suspension entries by 2ms,
// widening the suspend/wakeup race window the epoch claim closes.
func TestChaosSuspendDelay(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.Suspend, faultpoint.Rule{
			Action: faultpoint.Delay, Rate: 0.10, Delay: 2 * time.Millisecond,
		})
		mustBeCorrect(t, seed, inj)
	}
}

// TestChaosResumeDrop loses 5% of resume injections: lost wakeups must
// surface as a watchdog stall (or the run-wide deadline), never a hang.
func TestChaosResumeDrop(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.ResumeInject, faultpoint.Rule{
			Action: faultpoint.Drop, Rate: 0.05,
		})
		correctOrTyped(t, seed, inj, ErrStalled, ErrDeadline)
	}
}

// TestChaosChanDrop loses 5% of channel wakeups: dropped handoffs strand
// a receiver or sender; the watchdog must name the stuck site.
func TestChaosChanDrop(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.ChanWakeup, faultpoint.Rule{
			Action: faultpoint.Drop, Rate: 0.05,
		})
		correctOrTyped(t, seed, inj, ErrStalled, ErrDeadline)
	}
}

// TestChaosTaskPanic panics 2% of task bodies: the run must fail with
// ErrTaskPanic (or finish exactly right when no panic fired), with
// suspended siblings aborted rather than leaked.
func TestChaosTaskPanic(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.TaskBody, faultpoint.Rule{
			Action: faultpoint.Panic, Rate: 0.02,
		})
		correctOrTyped(t, seed, inj, ErrTaskPanic)
	}
}

// TestChaosCombined arms several fault points at once — failed steals,
// delayed resumes, duplicated channel wakeups, and rare task panics —
// and still demands a correct result or a typed error.
func TestChaosCombined(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).
			Set(faultpoint.Steal, faultpoint.Rule{Action: faultpoint.Fail, Rate: 0.05}).
			Set(faultpoint.ResumeInject, faultpoint.Rule{Action: faultpoint.Delay, Rate: 0.10, Delay: time.Millisecond}).
			Set(faultpoint.ChanWakeup, faultpoint.Rule{Action: faultpoint.Dup, Rate: 0.10, Delay: time.Millisecond}).
			Set(faultpoint.TaskBody, faultpoint.Rule{Action: faultpoint.Panic, Rate: 0.01})
		correctOrTyped(t, seed, inj, ErrTaskPanic)
	}
}

// chaosStormWorkload is the bulk-injection shape: stormWidth consumers
// all park on one channel, so every broadcast round re-injects a wide
// batch through drainResumed's single pfor push, and the consumers' pooled
// shells cycle through suspension every round. Faults landing inside a
// batch (dropped, delayed, duplicated wakeups) therefore hit the pfor
// split and shell-recycling paths specifically.
func chaosStormWorkload(c *Ctx) int {
	const width, rounds = 16, 8
	work := NewChan[int](0)
	ack := NewChan[int](0)
	for i := 0; i < width; i++ {
		c.Spawn(func(cc *Ctx) {
			for {
				v, ok := work.RecvOK(cc)
				if !ok {
					return
				}
				ack.Send(cc, v)
			}
		})
	}
	sum := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < width; i++ {
			work.Send(c, r*width+i+1)
		}
		for i := 0; i < width; i++ {
			sum += ack.Recv(c)
		}
	}
	work.Close()
	return sum
}

const chaosStormWant = (16 * 8) * (16*8 + 1) / 2

// TestChaosStormResumeFaults runs the storm shape under delayed resume
// injections plus duplicated channel wakeups: batches split and recycle
// out of order, but no value may be lost or delivered twice.
func TestChaosStormResumeFaults(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).
			Set(faultpoint.ResumeInject, faultpoint.Rule{Action: faultpoint.Delay, Rate: 0.20, Delay: 2 * time.Millisecond}).
			Set(faultpoint.ChanWakeup, faultpoint.Rule{Action: faultpoint.Dup, Rate: 0.20, Delay: time.Millisecond})
		var got int
		st, err := Run(chaosConfig(seed, inj), func(c *Ctx) { got = chaosStormWorkload(c) })
		if err != nil {
			t.Fatalf("seed %d: Run: %v (faults: %s)", seed, err, inj.Summary())
		}
		if got != chaosStormWant {
			t.Fatalf("seed %d: sum = %d, want %d (faults: %s)", seed, got, chaosStormWant, inj.Summary())
		}
		if st.Stalled {
			t.Fatalf("seed %d: watchdog fired on a recoverable fault", seed)
		}
	}
}

// TestChaosStormDrop loses 5% of channel wakeups under the storm shape:
// a drop strands part of a re-injected batch, and the watchdog (or the
// run deadline) must convert that into a typed error, never a hang.
func TestChaosStormDrop(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.ChanWakeup, faultpoint.Rule{
			Action: faultpoint.Drop, Rate: 0.05,
		})
		var got int
		_, err := Run(chaosConfig(seed, inj), func(c *Ctx) { got = chaosStormWorkload(c) })
		if err == nil {
			if got != chaosStormWant {
				t.Fatalf("seed %d: err nil but sum = %d, want %d (faults: %s)",
					seed, got, chaosStormWant, inj.Summary())
			}
			continue
		}
		if !errors.Is(err, ErrStalled) && !errors.Is(err, ErrDeadline) && !errors.Is(err, ErrCanceled) {
			t.Fatalf("seed %d: Run err = %v, want nil, stall, deadline, or cancel (faults: %s)",
				seed, err, inj.Summary())
		}
	}
}
