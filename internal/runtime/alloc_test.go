package runtime

import (
	"testing"
)

// Allocation-regression gates for the pooled hot paths. These are the
// contract the pool layer exists to uphold: once the free lists are warm,
// a scheduling quantum costs zero heap allocations — spawn, suspension,
// resume injection, pfor split, and shell recycling all run on recycled
// objects. testing.AllocsPerRun pins GOMAXPROCS to 1 for the measured
// runs, which the cooperative handoff protocol tolerates (every wait
// below is a channel handoff, not a spin).

// TestAllocsSpawnAwaitSteadyState gates the internal spawn/await quantum
// (spawnPooled + awaitConsume, the path For and MapReduce ride) at zero
// steady-state allocations per spawn-suspend-run-resume cycle.
func TestAllocsSpawnAwaitSteadyState(t *testing.T) {
	_, err := Run(benchConfig(1), func(c *Ctx) {
		for i := 0; i < 64; i++ { // warm the shell, future, waiter, and node pools
			c.spawnPooled(benchLeaf).awaitConsume(c)
		}
		if avg := testing.AllocsPerRun(200, func() {
			if werr := c.spawnPooled(benchLeaf).awaitConsume(c); werr != nil {
				t.Fatalf("await: %v", werr)
			}
		}); avg != 0 {
			t.Errorf("pooled spawn/await allocates %.2f objects/op at steady state, want 0", avg)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAllocsPublicSpawnSteadyState gates the public Spawn/Await quantum at
// exactly its documented cost: the one user-visible *Future per Spawn
// (never pooled — it may outlive the await), and nothing else.
func TestAllocsPublicSpawnSteadyState(t *testing.T) {
	_, err := Run(benchConfig(1), func(c *Ctx) {
		for i := 0; i < 64; i++ {
			c.Spawn(benchLeaf).Await(c)
		}
		if avg := testing.AllocsPerRun(200, func() {
			c.Spawn(benchLeaf).Await(c)
		}); avg > 1 {
			t.Errorf("public Spawn/Await allocates %.2f objects/op at steady state, want <= 1 (the Future)", avg)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAllocsResumeInjectionSteadyState gates the bulk resume-injection
// path: a storm round wakes 32 channel-suspended consumers (their
// re-injections batching into single pfor pushes on the home deque) and
// drains their replies — and must allocate nothing once warm.
func TestAllocsResumeInjectionSteadyState(t *testing.T) {
	const storm = 32
	_, err := Run(benchConfig(1), func(c *Ctx) {
		work := NewChan[int](0)
		ack := NewChan[int](0)
		futs := make([]*Future, storm)
		for i := 0; i < storm; i++ {
			futs[i] = c.Spawn(func(cc *Ctx) {
				for {
					v, ok := work.RecvOK(cc)
					if !ok {
						return
					}
					ack.Send(cc, v)
				}
			})
		}
		round := func() {
			for i := 0; i < storm; i++ {
				work.Send(c, i)
			}
			for i := 0; i < storm; i++ {
				ack.Recv(c)
			}
		}
		round() // warm: park every consumer, size the queues and buffers
		round()
		if avg := testing.AllocsPerRun(50, round); avg != 0 {
			t.Errorf("resume-injection round allocates %.2f objects/round at steady state, want 0", avg)
		}
		work.Close()
		for i := 0; i < storm; i++ {
			futs[i].Await(c)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
