package runtime

import (
	"errors"
	"os"
	goruntime "runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMain raises GOMAXPROCS so worker goroutines genuinely interleave even
// on single-core hosts: the scheduler under test multiplexes user-level
// tasks over OS-thread-backed workers, and steals require the workers to
// actually run concurrently.
func TestMain(m *testing.M) {
	if goruntime.GOMAXPROCS(0) < 4 {
		goruntime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func modes() []Mode { return []Mode{LatencyHiding, Blocking} }

func TestRunSimple(t *testing.T) {
	for _, m := range modes() {
		var ran atomic.Bool
		st, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			ran.Store(true)
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !ran.Load() {
			t.Fatalf("%v: root did not run", m)
		}
		if st.TasksSpawned != 1 {
			t.Errorf("%v: TasksSpawned = %d, want 1", m, st.TasksSpawned)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Run(Config{Workers: 0}, func(c *Ctx) {}); err == nil {
		t.Fatal("accepted 0 workers")
	}
}

func TestSpawnAwait(t *testing.T) {
	for _, m := range modes() {
		for _, p := range []int{1, 2, 4} {
			var sum atomic.Int64
			_, err := Run(Config{Workers: p, Mode: m}, func(c *Ctx) {
				futs := make([]*Future, 10)
				for i := range futs {
					i := i
					futs[i] = c.Spawn(func(cc *Ctx) { sum.Add(int64(i)) })
				}
				for _, f := range futs {
					f.Await(c)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Load() != 45 {
				t.Fatalf("%v P=%d: sum = %d, want 45", m, p, sum.Load())
			}
		}
	}
}

func TestSpawnValue(t *testing.T) {
	for _, m := range modes() {
		got, err := runFib(m, 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got != 55 {
			t.Fatalf("%v: fib(10) = %d, want 55", m, got)
		}
	}
}

// runFib computes Fibonacci with the naive parallel recursion, spawning the
// n-2 branch and computing the n-1 branch inline.
func runFib(m Mode, workers, n int) (int64, error) {
	var out int64
	_, err := Run(Config{Workers: workers, Mode: m}, func(c *Ctx) {
		out = fib(c, n)
	})
	return out, err
}

func fib(c *Ctx, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	right := SpawnValue(c, func(cc *Ctx) int64 { return fib(cc, n-2) })
	left := fib(c, n-1)
	return left + right.Await(c)
}

func TestFibParallelDeep(t *testing.T) {
	for _, m := range modes() {
		for _, p := range []int{1, 3} {
			got, err := runFib(m, p, 16)
			if err != nil {
				t.Fatal(err)
			}
			if got != 987 {
				t.Fatalf("%v P=%d: fib(16) = %d, want 987", m, p, got)
			}
		}
	}
}

func TestNestedSpawns(t *testing.T) {
	for _, m := range modes() {
		var count atomic.Int64
		_, err := Run(Config{Workers: 3, Mode: m}, func(c *Ctx) {
			var outer []*Future
			for i := 0; i < 4; i++ {
				outer = append(outer, c.Spawn(func(cc *Ctx) {
					var inner []*Future
					for j := 0; j < 4; j++ {
						inner = append(inner, cc.Spawn(func(ccc *Ctx) {
							count.Add(1)
						}))
					}
					for _, f := range inner {
						f.Await(cc)
					}
				}))
			}
			for _, f := range outer {
				f.Await(c)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if count.Load() != 16 {
			t.Fatalf("%v: count = %d, want 16", m, count.Load())
		}
	}
}

func TestLatencyCompletes(t *testing.T) {
	for _, m := range modes() {
		var after atomic.Bool
		_, err := Run(Config{Workers: 1, Mode: m}, func(c *Ctx) {
			c.Latency(2 * time.Millisecond)
			after.Store(true)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !after.Load() {
			t.Fatalf("%v: code after Latency did not run", m)
		}
	}
}

// TestLatencyHidingOverlapsWaits is the headline behaviour: N tasks each
// incurring latency d on one worker finish in ~d wall time under
// LatencyHiding and ~N·d under Blocking.
func TestLatencyHidingOverlapsWaits(t *testing.T) {
	const (
		n = 8
		d = 20 * time.Millisecond
	)
	run := func(m Mode) time.Duration {
		st, err := Run(Config{Workers: 1, Mode: m}, func(c *Ctx) {
			var futs []*Future
			for i := 0; i < n; i++ {
				futs = append(futs, c.Spawn(func(cc *Ctx) {
					cc.Latency(d)
				}))
			}
			for _, f := range futs {
				f.Await(c)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Wall
	}
	lh := run(LatencyHiding)
	bl := run(Blocking)
	if lh > time.Duration(n)*d/2 {
		t.Errorf("latency-hiding wall %v; want well under %v (n·d/2)", lh, time.Duration(n)*d/2)
	}
	if bl < time.Duration(n)*d {
		t.Errorf("blocking wall %v; want >= %v (serialized latency)", bl, time.Duration(n)*d)
	}
	if lh*3 > bl {
		t.Errorf("latency hiding (%v) not at least 3x faster than blocking (%v)", lh, bl)
	}
}

// TestSuspensionStats: latency-hiding mode records suspensions; blocking
// mode records none (it blocks instead).
func TestSuspensionStats(t *testing.T) {
	body := func(c *Ctx) {
		var futs []*Future
		for i := 0; i < 5; i++ {
			futs = append(futs, c.Spawn(func(cc *Ctx) { cc.Latency(time.Millisecond) }))
		}
		for _, f := range futs {
			f.Await(c)
		}
	}
	lh, err := Run(Config{Workers: 2, Mode: LatencyHiding}, body)
	if err != nil {
		t.Fatal(err)
	}
	if lh.Suspensions < 5 {
		t.Errorf("latency-hiding suspensions = %d, want >= 5", lh.Suspensions)
	}
	bl, err := Run(Config{Workers: 2, Mode: Blocking}, body)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Suspensions != 0 {
		t.Errorf("blocking suspensions = %d, want 0", bl.Suspensions)
	}
}

// TestMultiDequeGrowth: many concurrent suspensions grow per-worker deque
// counts beyond one in latency-hiding mode.
func TestMultiDequeGrowth(t *testing.T) {
	// A worker's deque count grows when it steals while already owning a
	// suspended deque; give thieves enough compute-then-suspend tasks to
	// make that happen.
	var st *Stats
	for attempt := 0; attempt < 20 && (st == nil || st.MaxDequesPerWorker < 2); attempt++ {
		var err error
		st, err = Run(Config{Workers: 3, Mode: LatencyHiding, Seed: uint64(attempt)}, func(c *Ctx) {
			var futs []*Future
			for i := 0; i < 50; i++ {
				futs = append(futs, c.Spawn(func(cc *Ctx) {
					busyWork(20000)
					cc.Latency(10 * time.Millisecond)
				}))
			}
			for _, f := range futs {
				f.Await(c)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.MaxDequesPerWorker < 2 {
		t.Errorf("MaxDequesPerWorker = %d, want >= 2", st.MaxDequesPerWorker)
	}
}

func TestStealsHappen(t *testing.T) {
	for _, m := range modes() {
		var st *Stats
		for attempt := 0; attempt < 20 && (st == nil || st.Steals == 0); attempt++ {
			var err error
			st, err = Run(Config{Workers: 4, Mode: m, Seed: uint64(attempt)}, func(c *Ctx) {
				var futs []*Future
				for i := 0; i < 64; i++ {
					futs = append(futs, c.Spawn(func(cc *Ctx) {
						busyWork(100000)
					}))
				}
				for _, f := range futs {
					f.Await(c)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if st.Steals == 0 {
			t.Errorf("%v: no steals despite 64 tasks on 4 workers", m)
		}
	}
}

// busyWork spins for roughly n iterations of integer work so tasks have
// measurable CPU cost.
var busySink int64

func busyWork(n int) {
	var acc int64
	for i := 0; i < n; i++ {
		acc += int64(i ^ (i >> 3))
	}
	atomic.AddInt64(&busySink, acc)
}

func TestAwaitAlreadyDone(t *testing.T) {
	for _, m := range modes() {
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			f := c.Spawn(func(cc *Ctx) {})
			time.Sleep(5 * time.Millisecond) // let the child finish
			f.Await(c)                       // fast path
			f.Await(c)                       // double await is safe
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDoneNonBlocking(t *testing.T) {
	_, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
		f := c.Spawn(func(cc *Ctx) { cc.Latency(5 * time.Millisecond) })
		_ = f.Done() // must not block regardless of state
		f.Await(c)
		if !f.Done() {
			panic("future not done after await")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkerIndexValid(t *testing.T) {
	_, err := Run(Config{Workers: 3, Mode: LatencyHiding}, func(c *Ctx) {
		if c.Worker() < 0 || c.Worker() >= 3 {
			panic("worker index out of range")
		}
		c.Latency(time.Millisecond)
		if c.Worker() < 0 || c.Worker() >= 3 {
			panic("worker index out of range after resume")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManySuspendedTasks mirrors the paper's observation that the
// scheduler handles computations with large numbers of suspended threads.
func TestManySuspendedTasks(t *testing.T) {
	const n = 500
	var done atomic.Int64
	st, err := Run(Config{Workers: 4, Mode: LatencyHiding}, func(c *Ctx) {
		var futs []*Future
		for i := 0; i < n; i++ {
			futs = append(futs, c.Spawn(func(cc *Ctx) {
				cc.Latency(10 * time.Millisecond)
				done.Add(1)
			}))
		}
		for _, f := range futs {
			f.Await(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.Load() != n {
		t.Fatalf("completed %d of %d latency tasks", done.Load(), n)
	}
	// All fetches should overlap: wall time well under n×10ms.
	if st.Wall > n*10*time.Millisecond/10 {
		t.Errorf("wall %v suggests latency was not hidden", st.Wall)
	}
}

// TestMapReduceWorkload runs the §5 distributed map-reduce end to end on
// the real runtime.
func TestMapReduceWorkload(t *testing.T) {
	sumTo := func(m Mode) int64 {
		var rec func(c *Ctx, lo, hi int) int64
		rec = func(c *Ctx, lo, hi int) int64 {
			if hi-lo == 1 {
				c.Latency(time.Millisecond) // getValue
				return int64(lo)            // f(x) = x
			}
			mid := (lo + hi) / 2
			right := SpawnValue(c, func(cc *Ctx) int64 { return rec(cc, mid, hi) })
			left := rec(c, lo, mid)
			return left + right.Await(c)
		}
		var out int64
		if _, err := Run(Config{Workers: 3, Mode: m}, func(c *Ctx) {
			out = rec(c, 0, 64)
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := int64(64 * 63 / 2)
	for _, m := range modes() {
		if got := sumTo(m); got != want {
			t.Fatalf("%v: mapreduce sum = %d, want %d", m, got, want)
		}
	}
}

func TestModeString(t *testing.T) {
	if LatencyHiding.String() != "latency-hiding" || Blocking.String() != "blocking" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}

func BenchmarkSpawnJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
			f := c.Spawn(func(cc *Ctx) {})
			f.Await(c)
		})
	}
}

func BenchmarkFibRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runFib(LatencyHiding, 2, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTaskPanicBecomesError: a panic inside a task surfaces as ErrTaskPanic
// from Run rather than crashing the process, and joins on the panicked
// task's future unwind instead of hanging.
func TestTaskPanicBecomesError(t *testing.T) {
	for _, m := range modes() {
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			f := c.Spawn(func(cc *Ctx) {
				panic("boom")
			})
			f.Await(c) // must not hang
		})
		if !errors.Is(err, ErrTaskPanic) {
			t.Fatalf("%v: err = %v, want ErrTaskPanic", m, err)
		}
		if err != nil && !strings.Contains(err.Error(), "boom") {
			t.Errorf("%v: panic value lost: %v", m, err)
		}
	}
}

// TestRootPanicBecomesError: a panic in the root task is also caught.
func TestRootPanicBecomesError(t *testing.T) {
	_, err := Run(Config{Workers: 1, Mode: LatencyHiding}, func(c *Ctx) {
		panic("root boom")
	})
	if !errors.Is(err, ErrTaskPanic) {
		t.Fatalf("err = %v, want ErrTaskPanic", err)
	}
}

// TestFirstPanicWins: concurrent panics report one of them, and Run still
// returns.
func TestFirstPanicWins(t *testing.T) {
	_, err := Run(Config{Workers: 4, Mode: LatencyHiding}, func(c *Ctx) {
		var futs []*Future
		for i := 0; i < 8; i++ {
			futs = append(futs, c.Spawn(func(cc *Ctx) { panic("multi") }))
		}
		for _, f := range futs {
			f.Await(c)
		}
	})
	if !errors.Is(err, ErrTaskPanic) {
		t.Fatalf("err = %v, want ErrTaskPanic", err)
	}
}
