package runtime

import (
	"sync"
	"time"

	"lhws/internal/faultpoint"
)

// waiter represents one suspension of one task: a claimable wakeup
// token. Wakeups for a suspended task can arrive from several
// goroutines — the Latency timer, a channel peer, a future completion,
// a cancellation abort, and (under fault injection) duplicates of any
// of those. Exactly one of them may re-inject the task; the rest must
// be no-ops. The claim is a CAS on the task's suspension epoch: the
// epoch captured at suspension time is only valid until someone
// advances it, so duplicated or stale wakeups — including a delayed
// duplicate arriving after the task has already suspended again
// elsewhere — fail the CAS and fall away harmlessly.
type waiter struct {
	t     *task
	epoch uint64
	home  *rdeque
	timer *time.Timer // pending Latency timer, stopped on abort
}

// beginWait opens a suspension: it advances the task's epoch (odd =
// waiting), pins the home deque for the resume, and records the
// suspension in the runtime's registry for watchdog diagnostics. It
// runs task-side, before the waiter is published to any wakeup source.
// The caller has already called home.suspend().
func (t *task) beginWait(site string, home *rdeque) *waiter {
	t.home = home
	e := t.epoch.Add(1)
	wt := &waiter{t: t, epoch: e, home: home}
	t.rt.noteSuspend(t, site, t.w.id, home)
	t.rt.stats.Suspensions.Add(1)
	return wt
}

// wake claims the suspension and re-injects the task onto its deque's
// resumed set. abortErr non-nil marks a cancellation wake: the task
// will unwind with that error instead of continuing its operation.
// Returns false if another wakeup already claimed this suspension.
func (wt *waiter) wake(abortErr error) bool {
	t := wt.t
	if !t.epoch.CompareAndSwap(wt.epoch, wt.epoch+1) {
		return false
	}
	// The claim is won: this goroutine is the unique resumer. Writes
	// below are published to the task by the resume handoff chain
	// (deque mutex, then the task's resume channel).
	t.wakeErr = abortErr
	t.rt.dropSuspend(t)
	wt.home.addResumed(t)
	return true
}

// abort is the cancellation wake: it stops a pending Latency timer
// (reclaiming its pending-wake accounting) and wakes the task with err.
func (wt *waiter) abort(err error) {
	if wt.timer != nil && wt.timer.Stop() {
		wt.t.rt.pendingWakes.Add(-1)
	}
	wt.wake(err)
}

// deliver passes a normal wakeup through the configured fault injector:
// Drop loses it, Delay defers it, Dup delivers it twice. Aborts bypass
// deliver entirely so cancellation and watchdog recovery stay reliable
// even under 100% fault rates.
func (wt *waiter) deliver(p faultpoint.Point) {
	rt := wt.t.rt
	inj := rt.cfg.Faults
	if inj == nil {
		wt.wake(nil)
		return
	}
	switch act, d := inj.Decide(p); act {
	case faultpoint.Drop:
		// Lost wakeup: the task stays suspended until the watchdog or a
		// cancellation aborts it.
	case faultpoint.Delay:
		rt.pendingWakes.Add(1)
		time.AfterFunc(d, func() {
			defer rt.pendingWakes.Add(-1)
			wt.wake(nil)
		})
	case faultpoint.Dup:
		wt.wake(nil)
		rt.pendingWakes.Add(1)
		time.AfterFunc(d, func() {
			defer rt.pendingWakes.Add(-1)
			wt.wake(nil) // stale epoch: discarded by the claim CAS
		})
	default:
		wt.wake(nil)
	}
}

// finishWait yields to the worker loop and, once resumed, deregisters
// the wait from the scope and unwinds if the wake was an abort.
func (c *Ctx) finishWait(wt *waiter) {
	c.yield()
	c.scope.removeWait(wt)
	if err := c.t.wakeErr; err != nil {
		c.t.wakeErr = nil
		panic(cancelPanic{err: err})
	}
}

// suspendInfo is the watchdog's view of one outstanding suspension.
// worker and home are captured task-side at suspension time so the
// watchdog never reads task fields concurrently with the task.
type suspendInfo struct {
	site   string
	since  time.Time
	worker int
	home   *rdeque
}

// suspendRegistry tracks every outstanding suspension for stall
// diagnostics. The map is touched once on suspend and once on wake —
// suspensions already pay for timer or queue bookkeeping, so the extra
// leaf mutex is noise next to the latency being hidden.
type suspendRegistry struct {
	mu sync.Mutex
	m  map[*task]suspendInfo
}

func (rt *runtimeState) noteSuspend(t *task, site string, worker int, home *rdeque) {
	rt.susReg.mu.Lock()
	if rt.susReg.m == nil {
		rt.susReg.m = make(map[*task]suspendInfo)
	}
	rt.susReg.m[t] = suspendInfo{site: site, since: time.Now(), worker: worker, home: home}
	rt.susReg.mu.Unlock()
}

func (rt *runtimeState) dropSuspend(t *task) {
	rt.susReg.mu.Lock()
	delete(rt.susReg.m, t)
	rt.susReg.mu.Unlock()
}
