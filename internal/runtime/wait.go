package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/faultpoint"
	"lhws/internal/timerwheel"
)

// waiter represents one suspension of one task: a claimable wakeup
// token. Wakeups for a suspended task can arrive from several
// goroutines — the Latency timer, a channel peer, a future completion,
// a cancellation abort, and (under fault injection) duplicates of any
// of those. Exactly one of them may re-inject the task; the rest must
// be no-ops. The claim is a CAS on the task's suspension epoch: the
// epoch captured at suspension time is only valid until someone
// advances it, so duplicated or stale wakeups — including a delayed
// duplicate arriving after the task has already suspended again
// elsewhere, or after the task's pooled shell has been reused for a new
// life — fail the CAS and fall away harmlessly (shell epochs are never
// reset; see task).
//
// Waiters are pooled. Recycling is reference-counted: refs counts the
// parties that may still dereference the waiter — the suspending task
// (through finishWait), the registered cancellation abort, and each
// armed event delivery (timer, queue entry, future waiter entry,
// fault-injected duplicate). A waiter returns to the pool only at
// refcount zero, so a late waker always sees the frozen epoch of the
// suspension it was armed for, never a recycled waiter's.
type waiter struct {
	t     *task
	epoch uint64
	home  *rdeque
	timer *timerwheel.Timer // pending Latency timer, stopped on abort
	// src, when non-nil, is the queue the waiter is parked on (a Future
	// or a Chan); the cancellation abort asks it to dequeue the waiter
	// before waking it.
	src wakeSource
	// ext, when non-nil, is the external operation this waiter awaits
	// (AwaitExternalOp); the cancellation abort interrupts it before
	// waking the task.
	ext  ExternalOp
	kind WaitKind
	refs atomic.Int32
	// extN/extErr are the external completion's payload, written by
	// Complete before the wake and copied onto the task by the winning
	// claim (so the task can read them after the waiter is recycled).
	extN   int
	extErr error
}

// wakeSource is a wakeup queue a waiter can be parked on. cancelWait
// must remove wt from the queue if still present (releasing the event
// reference the queue held) and then wake wt with err.
type wakeSource interface {
	cancelWait(wt *waiter, err error)
}

// beginWait opens a suspension: it advances the task's epoch (odd =
// waiting), pins the home deque for the resume, and records the
// suspension in the runtime's registry for watchdog diagnostics. It
// runs task-side, before the waiter is published to any wakeup source.
// The caller has already called home.suspend().
//
// The returned waiter starts with two references: the task's own
// (released at the end of finishWait) and the cancellation scope's
// (consumed by abortWait, or released by finishWait when the wait
// deregisters cleanly). Event sources add their own before publishing.
//
//lhws:nosuspend
func (t *task) beginWait(site string, kind WaitKind, home *rdeque, src wakeSource) *waiter {
	t.home = home
	e := t.epoch.Add(1)
	wt := t.rt.getWaiter()
	wt.t = t
	wt.epoch = e
	wt.home = home
	wt.timer = nil
	wt.src = src
	wt.ext = nil
	wt.kind = kind
	wt.extN, wt.extErr = 0, nil
	wt.refs.Store(2)
	// A suspending task pins its target to the home deque it will resume
	// to, so deadline-aware selection keeps following the request across
	// suspensions (and across steals that moved it off its spawn deque).
	// The nil check covers harness-built shells that never ran a life.
	if s := t.scope; s != nil && s.target != 0 {
		home.noteTarget(s.target, s)
	}
	if kind == KindFD || kind == KindExternal {
		t.rt.extPending.Add(1)
	}
	t.rt.noteSuspend(t, site, kind, t.w.id, home)
	t.w.stat.suspensions.Add(1)
	return wt
}

// release drops one reference; the party dropping the last one returns
// the waiter to the pool.
//
//lhws:nosuspend
func (wt *waiter) release() {
	rt := wt.t.rt
	if wt.refs.Add(-1) == 0 {
		wt.t = nil
		wt.home = nil
		wt.timer = nil
		wt.src = nil
		wt.ext = nil
		wt.extErr = nil
		rt.pools.waiters.Put(wt)
	}
}

// wake claims the suspension and re-injects the task onto its deque's
// resumed set. abortErr non-nil marks a cancellation wake: the task
// will unwind with that error instead of continuing its operation.
// Returns false if another wakeup already claimed this suspension. The
// caller must hold a reference; wake itself does not release one.
//
//lhws:nosuspend
func (wt *waiter) wake(abortErr error) bool {
	t := wt.t
	if !t.epoch.CompareAndSwap(wt.epoch, wt.epoch+1) {
		return false
	}
	// The claim is won: this goroutine is the unique resumer. Writes
	// below are published to the task by the resume handoff chain
	// (deque mutex, then the task's resume channel). The external
	// payload is copied onto the task here because the waiter may be
	// recycled before the task reads it.
	t.wakeErr = abortErr
	if wt.kind == KindFD || wt.kind == KindExternal {
		t.rt.extPending.Add(-1)
	}
	if abortErr == nil {
		// Only a completion wake carries a payload. An abort wake must not
		// read these fields: a stale Complete (about to lose this claim)
		// may still be writing them, and the unwinding task never looks.
		t.extN, t.extErr = wt.extN, wt.extErr
	}
	t.rt.dropSuspend(t)
	wt.home.addResumed(t)
	return true
}

// abortWait is the cancellation abort: it stops a pending Latency timer
// (reclaiming its pending-wake accounting), dequeues the waiter from its
// wake source if it is parked on one, interrupts an armed external
// operation, and wakes the task with err. It consumes the scope
// reference, so it must be called exactly once — by the canceling scope,
// or inline by armScope when registration finds the scope already
// canceled. waiter's abortWait implements the scope's aborter interface.
//
//lhws:nosuspend
func (wt *waiter) abortWait(err error) {
	if wt.timer != nil && wt.timer.Stop() {
		wt.t.rt.pendingWakes.Add(-1)
	}
	switch {
	case wt.ext != nil:
		// Interrupt the external operation, then wake the task directly:
		// the completer's own (now stale) Complete will lose the claim
		// and merely release its event reference.
		wt.ext.CancelExternal(ExternalHandle{wt: wt}, err)
		wt.wake(err)
	case wt.src != nil:
		wt.src.cancelWait(wt, err)
	default:
		wt.wake(err)
	}
	wt.release()
}

// deliver passes a normal wakeup through the configured fault injector:
// Drop loses it, Delay defers it, Dup delivers it twice. Aborts bypass
// deliver entirely so cancellation and watchdog recovery stay reliable
// even under 100% fault rates. deliver consumes the caller's event
// reference (transferring it into the delayed closure when the injector
// defers the wake).
//
//lhws:nosuspend
func (wt *waiter) deliver(p faultpoint.Point) bool {
	rt := wt.t.rt
	inj := rt.cfg.Faults
	if inj == nil {
		won := wt.wake(nil)
		wt.release()
		return won
	}
	switch act, d := inj.Decide(p); act {
	case faultpoint.Drop:
		// Lost wakeup: the task stays suspended until the watchdog or a
		// cancellation aborts it. The payload was never handed over.
		wt.release()
		return false
	case faultpoint.Delay:
		rt.pendingWakes.Add(1)
		rt.wheel.AfterFunc(d, deliverDelayed, wt)
		// The claim is decided later; report delivered so the completer
		// treats the payload as handed over (chaos-mode semantics).
		return true
	case faultpoint.Dup:
		wt.refs.Add(1) // the duplicate delivery's reference
		won := wt.wake(nil)
		rt.pendingWakes.Add(1)
		rt.wheel.AfterFunc(d, deliverDelayed, wt) // stale epoch: discarded by the claim CAS
		wt.release()
		return won
	default:
		won := wt.wake(nil)
		wt.release()
		return won
	}
}

// deliverDelayed is the wheel callback for fault-delayed (and
// fault-duplicated) wakeups; the waiter reference was transferred into
// the timer when it was armed.
//
//lhws:nosuspend
func deliverDelayed(arg any) {
	wt := arg.(*waiter)
	wt.t.rt.pendingWakes.Add(-1)
	wt.wake(nil)
	wt.release()
}

// finishWait yields to the worker loop and, once resumed, deregisters
// the wait from the scope, releases the task's references, and unwinds
// if the wake was an abort.
func (c *Ctx) finishWait(wt *waiter) {
	c.yield()
	if c.scope.removeWait(wt) {
		// Deregistered before the scope fired: the scope's abort will
		// never run, so its reference is released here. If removeWait
		// found nothing, a concurrent (or past) cancel owns the abort
		// path and consumes that reference itself; the refcount keeps
		// the waiter alive — with its stale epoch — until it has.
		wt.release()
	}
	err := c.t.wakeErr
	c.t.wakeErr = nil
	wt.release() // the task's own reference
	if err != nil {
		panic(cancelPanic{err: err})
	}
}

// suspendInfo is the watchdog's view of one outstanding suspension.
// worker and home are captured task-side at suspension time so the
// watchdog never reads task fields concurrently with the task.
type suspendInfo struct {
	site   string
	kind   WaitKind
	since  time.Time
	worker int
	home   *rdeque
}

// suspendRegistry tracks every outstanding suspension for stall
// diagnostics. It is maintained only when the watchdog is armed
// (Config.StallTimeout > 0) — its sole consumer — so runs without a
// watchdog pay one predictable branch per suspension instead of two
// mutex acquisitions and two map operations.
type suspendRegistry struct {
	mu sync.Mutex
	m  map[*task]suspendInfo
}

func (rt *runtimeState) noteSuspend(t *task, site string, kind WaitKind, worker int, home *rdeque) {
	if !rt.trackSuspends {
		return
	}
	rt.susReg.mu.Lock()
	if rt.susReg.m == nil {
		rt.susReg.m = make(map[*task]suspendInfo)
	}
	rt.susReg.m[t] = suspendInfo{site: site, kind: kind, since: time.Now(), worker: worker, home: home}
	rt.susReg.mu.Unlock()
}

func (rt *runtimeState) dropSuspend(t *task) {
	if !rt.trackSuspends {
		return
	}
	rt.susReg.mu.Lock()
	delete(rt.susReg.m, t)
	rt.susReg.mu.Unlock()
}
