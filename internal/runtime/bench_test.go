package runtime

import (
	"fmt"
	"testing"
)

// Microbenchmarks for the per-quantum hot path: spawn/await ladders, wide
// fan-outs, resume storms through channels, and steal-heavy skew. Each
// benchmark runs its measured loop inside the root task of a single Run so
// worker-pool setup is outside the timed region; ReportAllocs makes
// allocs/op part of the regression record (see EXPERIMENTS.md "Runtime
// overheads" and make bench-runtime).

func benchConfig(workers int) Config {
	return Config{Workers: workers, Mode: LatencyHiding, Seed: 1}
}

// benchLeaf is package-level so spawning it never allocates a closure;
// ladder and fan-out benchmarks measure runtime overhead, not user work.
var benchLeaf = func(*Ctx) {}

// benchSpin is a small CPU-bound leaf for steal benchmarks: enough work
// that thieves keep up with the spawner, little enough that scheduling
// cost still dominates.
var benchSpin = func(*Ctx) {
	x := uint64(88172645463325252)
	for i := 0; i < 64; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink = x
}

var spinSink uint64

// BenchmarkSpawnAwaitLadder is the serial spawn/await ladder: one rung
// spawns a leaf child and immediately awaits it, so every rung pays one
// spawn, one parent suspension, one task slice, one resume injection, and
// one resumption. This is the paper's per-quantum cost in isolation.
func BenchmarkSpawnAwaitLadder(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			_, err := Run(benchConfig(p), func(c *Ctx) {
				for i := 0; i < 64; i++ { // warm pools before measuring
					c.Spawn(benchLeaf).Await(c)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Spawn(benchLeaf).Await(c)
				}
				b.StopTimer()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchFanout spawns batches of `fan` leaves and joins the whole batch,
// reusing one future slice; an op is one spawned task.
func benchFanout(b *testing.B, workers, fan int, leaf func(*Ctx)) {
	b.ReportAllocs()
	_, err := Run(benchConfig(workers), func(c *Ctx) {
		futs := make([]*Future, fan)
		for i := 0; i < fan; i++ { // warm pools before measuring
			futs[i] = c.Spawn(leaf)
		}
		for i := 0; i < fan; i++ {
			futs[i].Await(c)
		}
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := fan
			if b.N-done < n {
				n = b.N - done
			}
			for i := 0; i < n; i++ {
				futs[i] = c.Spawn(leaf)
			}
			for i := 0; i < n; i++ {
				futs[i].Await(c)
			}
			done += n
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWideFanout measures bulk spawning: 256-wide batches of empty
// leaves, joined batch-at-a-time.
func BenchmarkWideFanout(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			benchFanout(b, p, 256, benchLeaf)
		})
	}
}

// BenchmarkStealHeavySkew skews all spawning onto worker 0 with leaves
// that spin briefly, so the other workers live on the steal path: victim
// snapshot, PopTop, deque adoption.
func BenchmarkStealHeavySkew(b *testing.B) {
	b.Run("workers=4", func(b *testing.B) {
		benchFanout(b, 4, 512, benchSpin)
	})
}

// BenchmarkResumeStorm is the bulk-injection workload: stormWidth consumer
// tasks sit suspended on a channel; an op delivers stormWidth values —
// waking every consumer, whose re-injections batch on their home deques —
// then drains the consumers' acks. Consumers are spawned once, outside the
// timed region.
func BenchmarkResumeStorm(b *testing.B) {
	const storm = 32
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			_, err := Run(benchConfig(p), func(c *Ctx) {
				work := NewChan[int](0)
				ack := NewChan[int](0)
				futs := make([]*Future, storm)
				for i := 0; i < storm; i++ {
					futs[i] = c.Spawn(func(cc *Ctx) {
						for {
							v, ok := work.RecvOK(cc)
							if !ok {
								return
							}
							ack.Send(cc, v)
						}
					})
				}
				round := func() {
					for i := 0; i < storm; i++ {
						work.Send(c, i)
					}
					for i := 0; i < storm; i++ {
						ack.Recv(c)
					}
				}
				round() // warm pools and park every consumer
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round()
				}
				b.StopTimer()
				work.Close()
				for i := 0; i < storm; i++ {
					futs[i].Await(c)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
