package runtime

import (
	"errors"
	goruntime "runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the process goroutine count drops to at
// most want, tolerating stragglers (timer goroutines, the runtime's own
// background workers) that need a beat to exit.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		goruntime.GC() // finalize dead timers promptly
		n := goruntime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:goruntime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d running, want <= %d\n%s", n, want, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A panicking run must not leak the goroutines of tasks that were
// suspended when the panic struck: the fatal path aborts their waits so
// every task goroutine unwinds before Run returns.
func TestNoGoroutineLeakAfterPanic(t *testing.T) {
	base := goruntime.NumGoroutine()
	for i := 0; i < 5; i++ {
		_, err := Run(Config{Workers: 4}, func(c *Ctx) {
			ch := NewChan[int](0)
			for j := 0; j < 4; j++ {
				c.Spawn(func(c2 *Ctx) { ch.Recv(c2) }) // suspended forever
			}
			for j := 0; j < 4; j++ {
				c.Spawn(func(c2 *Ctx) { c2.Latency(time.Hour) })
			}
			c.Latency(2 * time.Millisecond)
			panic("boom")
		})
		if !errors.Is(err, ErrTaskPanic) {
			t.Fatalf("Run err = %v, want ErrTaskPanic", err)
		}
	}
	// Allow a small cushion over the baseline for unrelated runtime
	// housekeeping; a real leak here is 8+ task goroutines per iteration.
	waitGoroutines(t, base+3)
}

// Blocking mode reaches the same guarantee through the condition-variable
// abort path: receivers blocked inside cond.Wait are nudged out.
func TestNoGoroutineLeakAfterPanicBlocking(t *testing.T) {
	base := goruntime.NumGoroutine()
	for i := 0; i < 5; i++ {
		_, err := Run(Config{Workers: 4, Mode: Blocking}, func(c *Ctx) {
			ch := NewChan[int](0)
			for j := 0; j < 3; j++ {
				c.Spawn(func(c2 *Ctx) { ch.Recv(c2) }) // blocks a worker each
			}
			c.Latency(5 * time.Millisecond) // let receivers park first
			panic("boom")
		})
		if !errors.Is(err, ErrTaskPanic) {
			t.Fatalf("Run err = %v, want ErrTaskPanic", err)
		}
	}
	waitGoroutines(t, base+3)
}

// An overload-shed request parked in a channel Recv — the admission
// controller's drain calls the request's bound scope cancel while the
// request waits for data that will never come — must unblock with the
// scope's typed error, and the dead waiter must not linger in the
// channel's queues: a later send/recv pair on the same channel must
// still rendezvous (a leaked claim would swallow the send), and no task
// goroutine may survive the runs. Iterating churns the waiter pool so a
// missed refcount release would also surface as goroutine growth.
func TestNoWaiterLeakAfterShedRecv(t *testing.T) {
	base := goruntime.NumGoroutine()
	for i := 0; i < 25; i++ {
		_, err := Run(Config{Workers: 2, Deadline: 30 * time.Second}, func(c *Ctx) {
			ch := NewChan[int](0)
			rc, cancel := c.WithTarget(time.Second)
			req := rc.Spawn(func(cc *Ctx) { ch.Recv(cc) })
			c.Latency(2 * time.Millisecond) // let the request park in Recv
			cancel()                        // the shed: drain cancels the bound scope
			if e := req.AwaitErr(c); !errors.Is(e, ErrCanceled) {
				t.Errorf("shed request err = %v, want ErrCanceled", e)
			}
			// The channel must have forgotten the shed receiver entirely.
			sender := c.Spawn(func(cc *Ctx) { ch.Send(cc, 7) })
			if got := ch.Recv(c); got != 7 {
				t.Errorf("post-shed Recv = %d, want 7", got)
			}
			sender.Await(c)
		})
		if err != nil {
			t.Fatalf("iteration %d: Run: %v", i, err)
		}
	}
	waitGoroutines(t, base+3)
}

// A watchdog-recovered stall must likewise drain every task goroutine.
func TestNoGoroutineLeakAfterStall(t *testing.T) {
	base := goruntime.NumGoroutine()
	for i := 0; i < 3; i++ {
		_, err := Run(Config{Workers: 2, StallTimeout: 50 * time.Millisecond}, func(c *Ctx) {
			ch := NewChan[int](0)
			fut := c.Spawn(func(c2 *Ctx) { ch.Recv(c2) }) // deadlock
			fut.Await(c)
		})
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("Run err = %v, want ErrStalled", err)
		}
	}
	waitGoroutines(t, base+3)
}
