package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests for the batched, locality-aware steal path (worker.trySteal):
// a successful steal transfers the oldest prefix of the victim deque —
// up to half, capped by maxSteal — onto the thief's deque with order
// preserved, migrates the victim deque's target marker once per batch,
// and records the transfer in the locality-split steal counters.

// stealOnce drives thief.trySteal until it succeeds, resetting the
// failed-steal counter so victim selection stays in the first tier.
func stealOnce(t *testing.T, thief *worker) {
	t.Helper()
	for i := 0; i < 100; i++ {
		thief.failedSteals = 0
		if thief.trySteal() {
			return
		}
	}
	t.Fatal("trySteal did not succeed in 100 attempts")
}

// TestBatchStealPrefixTransfer pins the transfer contract on plain task
// items: with 8 tasks on the victim, one steal moves the oldest 4; the
// thief runs the very oldest and its deque drains the rest newest-first
// (per-task LIFO preserved), while the victim keeps the bottom half.
func TestBatchStealPrefixTransfer(t *testing.T) {
	ws := harnessWorkers(2)
	victim, thief := ws[0], ws[1]
	const n = 8
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
		victim.active.q.PushBottom(victim.newTaskNode(tasks[i]))
	}
	stealOnce(t, thief)

	if thief.assigned != tasks[0] {
		t.Fatalf("thief runs task %d, want 0 (the oldest)", taskIndex(tasks, thief.assigned))
	}
	got := drainOwner(thief)
	want := []int{3, 2, 1} // LIFO over the transferred prefix t1..t3
	if len(got) != len(want) {
		t.Fatalf("thief deque drained %d tasks, want %d", len(got), len(want))
	}
	for i, tk := range got {
		if tk != tasks[want[i]] {
			t.Fatalf("thief pop %d = task %d, want %d", i, taskIndex(tasks, tk), want[i])
		}
	}
	rest := drainOwner(victim)
	for i, tk := range rest {
		if want := n - 1 - i; tk != tasks[want] {
			t.Fatalf("victim pop %d = task %d, want %d", i, taskIndex(tasks, tk), want)
		}
	}
	if len(rest) != n/2 {
		t.Fatalf("victim retained %d tasks, want %d (the bottom half)", len(rest), n/2)
	}

	st := thief.stat
	if st.steals.Load() != 1 || st.batchItems.Load() != 4 {
		t.Fatalf("steals=%d batchItems=%d, want 1 and 4", st.steals.Load(), st.batchItems.Load())
	}
	if st.stealsLocal.Load()+st.stealsRemote.Load() != 1 {
		t.Fatalf("stealsLocal+stealsRemote = %d, want 1",
			st.stealsLocal.Load()+st.stealsRemote.Load())
	}
}

// TestBatchStealSingleItemCap pins the baseline: maxSteal == 1 restores
// classic one-item stealing regardless of victim depth.
func TestBatchStealSingleItemCap(t *testing.T) {
	ws := harnessWorkers(2)
	victim, thief := ws[0], ws[1]
	victim.rt.maxSteal = 1
	const n = 8
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
		victim.active.q.PushBottom(victim.newTaskNode(tasks[i]))
	}
	stealOnce(t, thief)
	if thief.assigned != tasks[0] {
		t.Fatalf("thief runs task %d, want 0", taskIndex(tasks, thief.assigned))
	}
	if got := drainOwner(thief); len(got) != 0 {
		t.Fatalf("thief deque holds %d extra tasks with maxSteal=1, want 0", len(got))
	}
	if rest := drainOwner(victim); len(rest) != n-1 {
		t.Fatalf("victim retained %d tasks, want %d", len(rest), n-1)
	}
	if bi := thief.stat.batchItems.Load(); bi != 1 {
		t.Fatalf("batchItems = %d, want 1", bi)
	}
}

// TestBatchStealMigratesTarget checks that the victim deque's latency
// target (and the scope that set it) follows the stolen batch onto the
// thief's fresh deque — once per batch, not per item.
func TestBatchStealMigratesTarget(t *testing.T) {
	ws := harnessWorkers(2)
	victim, thief := ws[0], ws[1]
	sc := newCancelScope(victim.rt, nil)
	tgt := time.Now().Add(time.Hour).UnixNano()
	victim.active.noteTarget(tgt, sc)
	if victim.rt.activeTargets.Load() != 1 {
		t.Fatalf("activeTargets = %d after noteTarget, want 1", victim.rt.activeTargets.Load())
	}
	for i := 0; i < 4; i++ {
		victim.active.q.PushBottom(victim.newTaskNode(&task{}))
	}
	stealOnce(t, thief)
	if got := thief.active.targetNs.Load(); got != tgt {
		t.Fatalf("thief deque target = %d, want %d (migrated with the batch)", got, tgt)
	}
	if got := thief.active.targetScope.Load(); got != sc {
		t.Fatalf("thief deque target scope did not follow the batch")
	}
	if victim.rt.activeTargets.Load() != 2 {
		t.Fatalf("activeTargets = %d after migration, want 2 (victim + thief)", victim.rt.activeTargets.Load())
	}
}

// TestBatchStealPforNodeKeepsHalfRangeSplit checks that a pfor batch
// node crossing as part of a steal still resolves by the lazy half-range
// split: the thief executes the range's last task and its deque keeps
// the left half stealable, exactly as with a single-item steal.
func TestBatchStealPforNodeKeepsHalfRangeSplit(t *testing.T) {
	ws := harnessWorkers(2)
	victim, thief := ws[0], ws[1]
	const n = 8
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
	}
	victim.active.q.PushBottom(victim.newBatchNode(append([]*task(nil), tasks...)))
	stealOnce(t, thief)
	if thief.assigned != tasks[n-1] {
		t.Fatalf("thief runs task %d, want %d (the range's last)", taskIndex(tasks, thief.assigned), n-1)
	}
	seen := map[*task]bool{thief.assigned: true}
	for _, tk := range drainOwner(thief) {
		if seen[tk] {
			t.Fatalf("task %d extracted twice", taskIndex(tasks, tk))
		}
		seen[tk] = true
	}
	if len(seen) != n {
		t.Fatalf("thief extracted %d distinct tasks, want %d (batch node moved whole)", len(seen), n)
	}
	if bi := thief.stat.batchItems.Load(); bi != 1 {
		t.Fatalf("batchItems = %d, want 1 (a pfor node is one item)", bi)
	}
}

// TestStealShardAssignment pins the shard topology: contiguous
// near-equal groups covering every worker, sizes within one of each
// other, and the documented defaults.
func TestStealShardAssignment(t *testing.T) {
	for _, tc := range []struct{ shards, workers, want int }{
		{0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 8, 2}, {0, 16, 4},
		{1, 8, 1}, {3, 8, 3}, {16, 8, 8},
	} {
		if got := stealShardCount(tc.shards, tc.workers); got != tc.want {
			t.Errorf("stealShardCount(%d, %d) = %d, want %d", tc.shards, tc.workers, got, tc.want)
		}
	}
	for _, p := range []int{1, 2, 5, 8, 13} {
		for count := 1; count <= p; count++ {
			ws := harnessWorkers(p)
			assignStealShards(ws, count)
			minSpan, maxSpan, shards := p+1, 0, 0
			for i := 0; i < p; {
				w := ws[i]
				if w.shardLo != i {
					t.Fatalf("p=%d count=%d: worker %d shardLo=%d, shards not contiguous", p, count, i, w.shardLo)
				}
				span := w.shardHi - w.shardLo
				for j := i; j < w.shardHi; j++ {
					if ws[j].shardLo != w.shardLo || ws[j].shardHi != w.shardHi {
						t.Fatalf("p=%d count=%d: workers %d and %d disagree on their shard", p, count, i, j)
					}
				}
				if span < minSpan {
					minSpan = span
				}
				if span > maxSpan {
					maxSpan = span
				}
				shards++
				i = w.shardHi
			}
			if shards != count || maxSpan-minSpan > 1 {
				t.Fatalf("p=%d count=%d: got %d shards with spans in [%d,%d]", p, count, shards, minSpan, maxSpan)
			}
		}
	}
}

// TestPickVictimLocalTier checks the two-level policy: inside the local
// tier every probe lands in the thief's shard (flagged local); once
// failedSteals crosses the tier boundary, probes reach other shards too.
func TestPickVictimLocalTier(t *testing.T) {
	ws := harnessWorkers(8)
	rt := ws[0].rt
	rt.shardCount = 2
	assignStealShards(ws, 2)
	thief := ws[1]

	thief.failedSteals = 0
	for i := 0; i < 200; i++ {
		v, local := thief.pickVictim()
		if v == nil || v.id == thief.id {
			t.Fatal("pickVictim returned nil or self")
		}
		if !local || v.id >= 4 {
			t.Fatalf("local-tier probe hit worker %d (local=%v), want same-shard victim", v.id, local)
		}
	}

	thief.failedSteals = localStealAttempts
	sawRemote := false
	for i := 0; i < 200; i++ {
		v, local := thief.pickVictim()
		if wantLocal := v.id < 4; local != wantLocal {
			t.Fatalf("victim %d flagged local=%v, want %v", v.id, local, wantLocal)
		}
		sawRemote = sawRemote || !local
	}
	if !sawRemote {
		t.Fatal("escalated tier never probed outside the shard in 200 draws")
	}
}

// TestRunStealStatsConsistency runs a steal-heavy workload end to end
// and checks the new counters' invariants: the locality split sums to
// Steals, every steal moves at least one item, and the OnSteal stream
// agrees with the counters.
func TestRunStealStatsConsistency(t *testing.T) {
	for _, m := range modes() {
		var (
			mu     sync.Mutex
			events int64
			items  int64
		)
		var st *Stats
		for attempt := 0; attempt < 20 && (st == nil || st.Steals == 0); attempt++ {
			mu.Lock()
			events, items = 0, 0
			mu.Unlock()
			var err error
			st, err = Run(Config{
				Workers: 4, Mode: m, Seed: uint64(attempt), StealShards: 2,
				OnSteal: func(ev StealEvent) {
					if ev.Items < 1 || ev.Thief == ev.Victim {
						t.Errorf("bad steal event %+v", ev)
					}
					mu.Lock()
					events++
					items += int64(ev.Items)
					mu.Unlock()
				},
			}, func(c *Ctx) {
				var futs []*Future
				for i := 0; i < 64; i++ {
					futs = append(futs, c.Spawn(func(cc *Ctx) { busyWork(100000) }))
				}
				for _, f := range futs {
					f.Await(c)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if st.Steals == 0 {
			t.Errorf("%v: no steals despite 64 tasks on 4 workers", m)
			continue
		}
		if st.StealsLocal+st.StealsRemote != st.Steals {
			t.Errorf("%v: StealsLocal(%d)+StealsRemote(%d) != Steals(%d)",
				m, st.StealsLocal, st.StealsRemote, st.Steals)
		}
		if st.BatchItems < st.Steals {
			t.Errorf("%v: BatchItems = %d < Steals = %d", m, st.BatchItems, st.Steals)
		}
		mu.Lock()
		if events != st.Steals || items != st.BatchItems {
			t.Errorf("%v: OnSteal saw %d events/%d items, counters say %d/%d",
				m, events, items, st.Steals, st.BatchItems)
		}
		mu.Unlock()
	}
}

// TestStealConfigValidation pins the new knobs' validation.
func TestStealConfigValidation(t *testing.T) {
	if _, err := Run(Config{Workers: 1, StealShards: -1}, func(c *Ctx) {}); !errors.Is(err, ErrConfig) {
		t.Fatalf("StealShards=-1: err = %v, want ErrConfig", err)
	}
	if _, err := Run(Config{Workers: 1, MaxStealBatch: -1}, func(c *Ctx) {}); !errors.Is(err, ErrConfig) {
		t.Fatalf("MaxStealBatch=-1: err = %v, want ErrConfig", err)
	}
	if _, err := Run(Config{Workers: 2, StealShards: 99, MaxStealBatch: 99999}, func(c *Ctx) {}); err != nil {
		t.Fatalf("oversized knobs should clamp, got %v", err)
	}
}
