package runtime

import (
	goruntime "runtime"
	"sync"
	"time"

	"lhws/internal/rng"
)

// worker is one scheduling loop. In latency-hiding mode it owns a dynamic
// collection of deques (one active); in blocking mode it owns exactly one.
type worker struct {
	rt   *runtimeState
	id   int
	rnd  *rng.RNG
	stat *statShard // this worker's hot-counter shard (see stats)

	// mu guards the fields thieves and resume callbacks touch: the active
	// pointer, the ready-deque list, and the resumed-deque list.
	mu        sync.Mutex
	active    *rdeque
	ready     []*rdeque
	resumedDq []*rdeque

	assigned     *task
	live         int32 // allocated deques owned (Lemma 7 observable)
	failedSteals int

	// Worker-local free lists (owner-role access only; see pool.go).
	taskCache  []*task
	futCache   []*Future
	dqCache    []*rdeque
	nodeCache  []*pforNode
	batchCache []*pforBatch
	sliceCache [][]*task
	drainBuf   []*rdeque // spare resumedDq buffer, ping-ponged by drainResumed
}

func newWorker(rt *runtimeState, id int, r *rng.RNG) *worker {
	return &worker{rt: rt, id: id, rnd: r, stat: &rt.shards[id]}
}

// loop is the latency-hiding scheduling loop (Figure 3). It must never
// park: a blocked worker neither executes ready work nor steals, which
// is the idle time Theorem 2's bound assumes away. The only sanctioned
// waits are the task-grant handoff in runTask and the escalating
// backoff, both justified at their call sites.
//
//lhws:nonblocking
//lhws:owner the worker-loop goroutine is the unique owner of its active deque
func (w *worker) loop() {
	w.adoptDeque(newRdeque(w))
	if w.rt.cfg.Mode == Blocking {
		w.loopBlocking()
		return
	}
	for {
		w.drainResumed()
		t := w.assigned
		w.assigned = nil
		if t == nil && w.active != nil {
			if it, ok := w.active.q.PopBottom(); ok {
				t = w.resolveItem(it)
			}
		}
		if t != nil {
			w.failedSteals = 0
			w.runTask(t) //lhws:allowblock the grant handoff parks the loop only while its task runs; the task yields back at every scheduling point
			continue
		}
		w.retireActive()
		if w.trySwitch() {
			continue
		}
		if w.trySteal() {
			continue
		}
		if w.rt.finished() {
			return
		}
		w.backoff()
	}
}

// loopBlocking is the baseline work-stealing loop. It is held to the
// same no-parking discipline as loop: in Blocking mode the latency cost
// lands inside tasks (time.Sleep on the worker's goroutine during
// runTask), not in the scheduling loop itself.
//
//lhws:nonblocking
//lhws:owner the worker-loop goroutine is the unique owner of its single deque
func (w *worker) loopBlocking() {
	for {
		t := w.assigned
		w.assigned = nil
		if t == nil {
			if it, ok := w.active.q.PopBottom(); ok {
				t = w.resolveItem(it)
			}
		}
		if t != nil {
			w.failedSteals = 0
			//lhws:allowblock blocking-mode tasks run to completion on the grant; that cost is the baseline being measured
			w.runTask(t)
			continue
		}
		if w.tryStealBlocking() {
			continue
		}
		if w.rt.finished() {
			return
		}
		w.backoff()
	}
}

// runTask grants the worker's slot to the task and waits for it to either
// finish or suspend. Also used inline by blocking-mode Await to help run
// queued tasks. The running counter brackets the grant so the watchdog can
// tell an actively executing run from a stalled one. A finished shell is
// returned to the task free list here: the report-channel receive orders
// every task-side write before the recycle.
func (w *worker) runTask(t *task) reportKind {
	w.stat.tasksRun.Add(1)
	w.stat.running.Add(1)
	if !t.started {
		t.started = true
		go t.main()
	}
	t.resume <- w
	r := <-t.report
	w.stat.running.Add(-1)
	if r == reportDone && t.recycle {
		w.releaseTask(t)
	}
	return r
}

// drainResumed implements addResumedVertices (Figure 3, lines 7-14): for
// each deque with pending resumed tasks, inject the whole batch as ONE
// deque item — a pfor-tree node over the batch (see pfor.go) — and mark
// non-active deques ready. Injection is O(1) per deque in the batch size;
// the tree splits lazily as it is popped or stolen. A batch of one skips
// the tree and pushes the task directly.
//
//lhws:nonblocking
//lhws:owner runs on the worker-loop goroutine, which owns every deque it drains
func (w *worker) drainResumed() {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical sections, never held across a wait
	dqs := w.resumedDq
	if len(dqs) == 0 {
		w.mu.Unlock()
		return
	}
	w.resumedDq = w.drainBuf
	w.drainBuf = nil
	w.mu.Unlock()
	for i, d := range dqs {
		dqs[i] = nil
		ts := d.takeResumed(w.getSlice())
		switch len(ts) {
		case 0:
			// Raced with a previous drain; nothing pending after all.
			w.putSlice(ts)
		case 1:
			t := ts[0]
			ts[0] = nil
			d.q.PushBottom(w.newTaskNode(t))
			w.putSlice(ts[:0])
		default:
			w.stat.resumeBatches.Add(1)
			w.stat.resumeBatchTasks.Add(int64(len(ts)))
			d.q.PushBottom(w.newBatchNode(ts))
		}
		if d != w.active {
			w.addReady(d)
		}
	}
	w.drainBuf = dqs[:0]
}

// noteResumedDeque registers a deque whose first resumed task just
// arrived. Called from timer and completion goroutines.
func (w *worker) noteResumedDeque(d *rdeque) {
	w.mu.Lock()
	w.resumedDq = append(w.resumedDq, d)
	w.mu.Unlock()
}

// addReady appends d to the ready list; the inReadySet flag (guarded by
// w.mu) makes membership O(1) instead of a list scan.
//
//lhws:nonblocking
func (w *worker) addReady(d *rdeque) {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	if !d.inReadySet {
		d.inReadySet = true
		w.ready = append(w.ready, d)
	}
	w.mu.Unlock()
}

// retireActive drops an exhausted active deque — recycling it through the
// worker's free list — or abandons it (keeping ownership for pending
// callbacks) when tasks belonging to it are still suspended. Recycling an
// idle deque is safe even against a thief still holding a pointer to it:
// the Chase–Lev indices are never reset, so the stale thief performs an
// ordinary steal against the deque's next contents (see pool.go).
//
//lhws:nonblocking
func (w *worker) retireActive() {
	a := w.active
	if a == nil {
		return
	}
	drop := a.idle()
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	w.active = nil
	if drop {
		w.live--
	}
	w.mu.Unlock()
	if drop {
		w.putRdeque(a)
	}
}

// trySwitch activates one of the worker's ready deques (Figure 3,
// lines 46-48). Selection is deadline-aware: if any ready deque carries
// a latency target (WithTarget/WithDeadline), the earliest-target deque
// wins — EDF among the worker's own deques — so a request that can still
// meet its target is not starved behind later-arriving target-free work.
// With no targets in play the scan finds nothing and selection stays
// LIFO, preserving the locality the paper's §6 policy relies on.
//
//lhws:nonblocking
func (w *worker) trySwitch() bool {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	n := len(w.ready)
	if n == 0 {
		w.mu.Unlock()
		return false
	}
	pick := n - 1
	best := int64(0)
	for i := n - 1; i >= 0; i-- {
		if tgt := w.ready[i].targetNs.Load(); tgt != 0 && (best == 0 || tgt < best) {
			best, pick = tgt, i
		}
	}
	d := w.ready[pick]
	w.ready[pick] = w.ready[n-1]
	w.ready[n-1] = nil
	w.ready = w.ready[:n-1]
	d.inReadySet = false
	w.active = d
	w.mu.Unlock()
	w.stat.switches.Add(1)
	return true
}

// trySteal performs one steal attempt under the §6 policy: choose a random
// victim worker, then a random deque among its active and ready deques.
// The candidate is indexed directly under the victim's lock — no candidate
// slice is materialized on this path.
//
// Two deadline-aware refinements layer on top (both no-ops for workloads
// without targets). First, preference: if any of the victim's deques
// carries a still-feasible latency target, the thief takes the
// earliest-target one instead of a random pick, spreading workers onto
// the request closest to its deadline. Second, gating: when
// Config.ShedBlownTargets is set and the chosen deque's target has
// already passed, the thief does not steal from it — pulling more
// workers into a subtree that will miss its target anyway is the
// overload collapse mode — and instead sheds the subtree by canceling
// its scope with ErrTargetMissed, so its tasks unwind and capacity
// returns to feasible work.
//
//lhws:nonblocking
func (w *worker) trySteal() bool {
	w.stat.stealAttempts.Add(1)
	if w.rt.failSteal() {
		return false
	}
	victim := w.pickVictim()
	if victim == nil {
		return false
	}
	now := time.Now().UnixNano()
	victim.mu.Lock() //lhws:allowblock leaf mutex on the victim, O(1) critical section, never held across a wait
	var target *rdeque
	var bestTgt int64
	nready := len(victim.ready)
	total := nready
	if victim.active != nil {
		total++
	}
	for _, d := range victim.ready {
		if tgt := d.targetNs.Load(); tgt != 0 && tgt > now && (bestTgt == 0 || tgt < bestTgt) {
			target, bestTgt = d, tgt
		}
	}
	if a := victim.active; a != nil {
		if tgt := a.targetNs.Load(); tgt != 0 && tgt > now && (bestTgt == 0 || tgt < bestTgt) {
			target, bestTgt = a, tgt
		}
	}
	if target == nil && total > 0 {
		if i := w.rnd.Intn(total); i < nready {
			target = victim.ready[i]
		} else {
			target = victim.active
		}
	}
	victim.mu.Unlock()
	if target == nil {
		return false
	}
	if w.rt.cfg.ShedBlownTargets {
		if sc, tgt, blown := target.blownTarget(now); blown {
			if sc != nil && sc.cancel(ErrTargetMissed) { //lhws:allowblock shed path, not a steal hot path: scope-tree leaf mutexes with O(children) critical sections, never held across a wait
				w.rt.stats.TargetCancels.Add(1)
				return false
			}
			// The scope that set the target is already canceled or done:
			// the marker is stale. Retire it and steal normally instead of
			// repelling thieves from a deque that has moved on to
			// unrelated work.
			target.clearBlownTarget(tgt)
		}
	}
	it, ok := target.q.PopTop()
	if !ok {
		return false
	}
	w.stat.steals.Add(1)
	w.adoptDeque(w.getRdeque())
	// The stolen work carries the victim deque's target with it, so EDF
	// preference and steal gating keep following the subtree on the
	// thief's side.
	if tgt := target.targetNs.Load(); tgt != 0 {
		w.active.noteTarget(tgt, target.targetScope.Load())
	}
	// Resolve after adopting: a stolen pfor node splits onto the thief's
	// fresh deque, leaving its left half-ranges stealable here.
	w.assigned = w.resolveItem(it)
	return true
}

//lhws:nonblocking
func (w *worker) tryStealBlocking() bool {
	w.stat.stealAttempts.Add(1)
	if w.rt.failSteal() {
		return false
	}
	victim := w.pickVictim()
	if victim == nil {
		return false
	}
	victim.mu.Lock() //lhws:allowblock leaf mutex on the victim, O(1) critical section, never held across a wait
	target := victim.active
	victim.mu.Unlock()
	if target == nil {
		return false // victim loop not yet started
	}
	it, ok := target.q.PopTop()
	if !ok {
		return false
	}
	w.stat.steals.Add(1)
	w.assigned = w.resolveItem(it)
	return true
}

//lhws:nonblocking
func (w *worker) pickVictim() *worker {
	n := len(w.rt.workers)
	if n == 1 {
		return nil
	}
	vi := w.rnd.Intn(n - 1)
	if vi >= w.id {
		vi++
	}
	return w.rt.workers[vi]
}

// adoptDeque installs a fresh deque as the active deque and updates the
// per-worker allocation high-water mark.
//
//lhws:nonblocking
func (w *worker) adoptDeque(d *rdeque) {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	w.active = d
	w.live++
	live := w.live
	w.mu.Unlock()
	for {
		cur := w.rt.stats.MaxDeques.Load()
		if live <= cur || w.rt.stats.MaxDeques.CompareAndSwap(cur, live) {
			break
		}
	}
}

// backoff yields the processor between failed steal attempts, then
// escalates through a capped exponential sleep ladder (1µs doubling to
// 100µs) so timer goroutines can run even on GOMAXPROCS=1 while an idle
// worker's spin cost stays bounded. Reset on any successful pop or steal.
//
//lhws:nonblocking
func (w *worker) backoff() {
	w.failedSteals++
	if w.failedSteals <= 8 {
		goruntime.Gosched()
		return
	}
	shift := w.failedSteals - 9
	if shift > 7 {
		shift = 7
	}
	d := time.Microsecond << uint(shift)
	if d > 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	time.Sleep(d) //lhws:allowblock deliberate bounded backoff after repeated failed steals; yields the P so timers fire on GOMAXPROCS=1
}
