package runtime

import (
	goruntime "runtime"
	"sync"
	"time"

	"lhws/internal/rng"
)

// worker is one scheduling loop. In latency-hiding mode it owns a dynamic
// collection of deques (one active); in blocking mode it owns exactly one.
type worker struct {
	rt  *runtimeState
	id  int
	rnd *rng.RNG

	// mu guards the fields thieves and resume callbacks touch: the active
	// pointer, the ready-deque list, and the resumed-deque list.
	mu        sync.Mutex
	active    *rdeque
	ready     []*rdeque
	resumedDq []*rdeque

	assigned     *task
	live         int32 // allocated deques owned (Lemma 7 observable)
	failedSteals int
}

func newWorker(rt *runtimeState, id int, r *rng.RNG) *worker {
	return &worker{rt: rt, id: id, rnd: r}
}

// loop is the latency-hiding scheduling loop (Figure 3). It must never
// park: a blocked worker neither executes ready work nor steals, which
// is the idle time Theorem 2's bound assumes away. The only sanctioned
// waits are the task-grant handoff in runTask and the escalating
// backoff, both justified at their call sites.
//
//lhws:nonblocking
//lhws:owner the worker-loop goroutine is the unique owner of its active deque
func (w *worker) loop() {
	w.adoptDeque(newRdeque(w))
	if w.rt.cfg.Mode == Blocking {
		w.loopBlocking()
		return
	}
	for {
		w.drainResumed()
		t := w.assigned
		w.assigned = nil
		if t == nil && w.active != nil {
			if it, ok := w.active.q.PopBottom(); ok {
				t = it.(*task)
			}
		}
		if t != nil {
			w.failedSteals = 0
			w.runTask(t) //lhws:allowblock the grant handoff parks the loop only while its task runs; the task yields back at every scheduling point
			continue
		}
		w.retireActive()
		if w.trySwitch() {
			continue
		}
		if w.trySteal() {
			continue
		}
		if w.rt.finished() {
			return
		}
		w.backoff()
	}
}

// loopBlocking is the baseline work-stealing loop. It is held to the
// same no-parking discipline as loop: in Blocking mode the latency cost
// lands inside tasks (time.Sleep on the worker's goroutine during
// runTask), not in the scheduling loop itself.
//
//lhws:nonblocking
//lhws:owner the worker-loop goroutine is the unique owner of its single deque
func (w *worker) loopBlocking() {
	for {
		t := w.assigned
		w.assigned = nil
		if t == nil {
			if it, ok := w.active.q.PopBottom(); ok {
				t = it.(*task)
			}
		}
		if t != nil {
			w.failedSteals = 0
			//lhws:allowblock blocking-mode tasks run to completion on the grant; that cost is the baseline being measured
			w.runTask(t)
			continue
		}
		if w.tryStealBlocking() {
			continue
		}
		if w.rt.finished() {
			return
		}
		w.backoff()
	}
}

// runTask grants the worker's slot to the task and waits for it to either
// finish or suspend. Also used inline by blocking-mode Await to help run
// queued tasks. The running counter brackets the grant so the watchdog can
// tell an actively executing run from a stalled one.
func (w *worker) runTask(t *task) reportKind {
	w.rt.stats.TasksRun.Add(1)
	w.rt.running.Add(1)
	if !t.started {
		t.started = true
		go t.main()
	}
	t.resume <- w
	r := <-t.report
	w.rt.running.Add(-1)
	return r
}

// drainResumed implements addResumedVertices (Figure 3, lines 7-14) at
// task granularity: push every resumed task back onto its owning deque and
// mark non-active deques ready. Per §6's simplifications, resumed tasks
// are pushed individually rather than wrapped in a pfor closure.
//
//lhws:nonblocking
//lhws:owner runs on the worker-loop goroutine, which owns every deque it drains
func (w *worker) drainResumed() {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical sections, never held across a wait
	dqs := w.resumedDq
	w.resumedDq = nil
	w.mu.Unlock()
	if len(dqs) == 0 {
		return
	}
	for _, d := range dqs {
		for _, t := range d.takeResumed() {
			d.q.PushBottom(t)
		}
		if d != w.active {
			w.addReady(d)
		}
	}
}

// noteResumedDeque registers a deque whose first resumed task just
// arrived. Called from timer and completion goroutines.
func (w *worker) noteResumedDeque(d *rdeque) {
	w.mu.Lock()
	w.resumedDq = append(w.resumedDq, d)
	w.mu.Unlock()
}

//lhws:nonblocking
func (w *worker) addReady(d *rdeque) {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(ready) critical section, never held across a wait
	found := false
	for _, q := range w.ready {
		if q == d {
			found = true
			break
		}
	}
	if !found {
		w.ready = append(w.ready, d)
	}
	w.mu.Unlock()
}

// retireActive drops an exhausted active deque, or abandons it (keeping
// ownership for pending callbacks) when tasks belonging to it are still
// suspended.
//
//lhws:nonblocking
func (w *worker) retireActive() {
	a := w.active
	if a == nil {
		return
	}
	drop := a.idle()
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	w.active = nil
	if drop {
		w.live--
	}
	w.mu.Unlock()
}

// trySwitch activates one of the worker's ready deques (Figure 3,
// lines 46-48).
//
//lhws:nonblocking
func (w *worker) trySwitch() bool {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	n := len(w.ready)
	if n == 0 {
		w.mu.Unlock()
		return false
	}
	d := w.ready[n-1]
	w.ready = w.ready[:n-1]
	w.active = d
	w.mu.Unlock()
	w.rt.stats.Switches.Add(1)
	return true
}

// trySteal performs one steal attempt under the §6 policy: choose a random
// victim worker, then a random deque among its active and ready deques.
//
//lhws:nonblocking
func (w *worker) trySteal() bool {
	w.rt.stats.StealAttempts.Add(1)
	if w.rt.failSteal() {
		return false
	}
	victim := w.pickVictim()
	if victim == nil {
		return false
	}
	victim.mu.Lock() //lhws:allowblock leaf mutex on the victim, O(deques) critical section, never held across a wait
	var cands []*rdeque
	if victim.active != nil {
		cands = append(cands, victim.active)
	}
	cands = append(cands, victim.ready...)
	var target *rdeque
	if len(cands) > 0 {
		target = cands[w.rnd.Intn(len(cands))]
	}
	victim.mu.Unlock()
	if target == nil {
		return false
	}
	it, ok := target.q.PopTop()
	if !ok {
		return false
	}
	w.rt.stats.Steals.Add(1)
	w.adoptDeque(newRdeque(w))
	w.assigned = it.(*task)
	return true
}

//lhws:nonblocking
func (w *worker) tryStealBlocking() bool {
	w.rt.stats.StealAttempts.Add(1)
	if w.rt.failSteal() {
		return false
	}
	victim := w.pickVictim()
	if victim == nil {
		return false
	}
	victim.mu.Lock() //lhws:allowblock leaf mutex on the victim, O(1) critical section, never held across a wait
	target := victim.active
	victim.mu.Unlock()
	if target == nil {
		return false // victim loop not yet started
	}
	it, ok := target.q.PopTop()
	if !ok {
		return false
	}
	w.rt.stats.Steals.Add(1)
	w.assigned = it.(*task)
	return true
}

//lhws:nonblocking
func (w *worker) pickVictim() *worker {
	n := len(w.rt.workers)
	if n == 1 {
		return nil
	}
	vi := w.rnd.Intn(n - 1)
	if vi >= w.id {
		vi++
	}
	return w.rt.workers[vi]
}

// adoptDeque installs a fresh deque as the active deque and updates the
// per-worker allocation high-water mark.
//
//lhws:nonblocking
func (w *worker) adoptDeque(d *rdeque) {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	w.active = d
	w.live++
	live := w.live
	w.mu.Unlock()
	for {
		cur := w.rt.stats.MaxDeques.Load()
		if live <= cur || w.rt.stats.MaxDeques.CompareAndSwap(cur, live) {
			break
		}
	}
}

// backoff yields the processor between failed steal attempts, escalating
// to short sleeps so timer goroutines can run even on GOMAXPROCS=1.
//
//lhws:nonblocking
func (w *worker) backoff() {
	w.failedSteals++
	if w.failedSteals < 8 {
		goruntime.Gosched()
		return
	}
	time.Sleep(50 * time.Microsecond) //lhws:allowblock deliberate bounded backoff after repeated failed steals; yields the P so timers fire on GOMAXPROCS=1
}
