package runtime

import (
	goruntime "runtime"
	"sync"
	"time"

	"lhws/internal/deque"
	"lhws/internal/rng"
)

// worker is one scheduling loop. In latency-hiding mode it owns a dynamic
// collection of deques (one active); in blocking mode it owns exactly one.
type worker struct {
	rt   *runtimeState
	id   int
	rnd  *rng.RNG
	stat *statShard // this worker's hot-counter shard (see stats)

	// shardLo/shardHi bound this worker's locality shard [lo, hi) for
	// two-level victim selection (see pickVictim); fixed at Run setup.
	shardLo, shardHi int
	// stealBuf receives PopTopBatch transfers; owner-role access only,
	// entries nil'd after every transfer so no stolen item is retained.
	stealBuf []deque.Item

	// mu guards the fields thieves and resume callbacks touch: the active
	// pointer, the ready-deque list, and the resumed-deque list.
	mu        sync.Mutex
	active    *rdeque
	ready     []*rdeque
	resumedDq []*rdeque

	assigned     *task
	live         int32 // allocated deques owned (Lemma 7 observable)
	failedSteals int

	// Worker-local free lists (owner-role access only; see pool.go).
	taskCache  []*task
	futCache   []*Future
	dqCache    []*rdeque
	nodeCache  []*pforNode
	batchCache []*pforBatch
	sliceCache [][]*task
	drainBuf   []*rdeque // spare resumedDq buffer, ping-ponged by drainResumed
}

func newWorker(rt *runtimeState, id int, r *rng.RNG) *worker {
	n := rt.maxSteal
	if n < 1 {
		n = 1 // runtimeState built outside Run (test harnesses)
	}
	return &worker{rt: rt, id: id, rnd: r, stat: &rt.shards[id],
		stealBuf: make([]deque.Item, n)}
}

// loop is the latency-hiding scheduling loop (Figure 3). It must never
// park: a blocked worker neither executes ready work nor steals, which
// is the idle time Theorem 2's bound assumes away. The only sanctioned
// waits are the task-grant handoff in runTask and the escalating
// backoff, both justified at their call sites.
//
//lhws:nonblocking
//lhws:owner the worker-loop goroutine is the unique owner of its active deque
func (w *worker) loop() {
	w.adoptDeque(newRdeque(w))
	if w.rt.cfg.Mode == Blocking {
		w.loopBlocking()
		return
	}
	for {
		w.drainResumed()
		t := w.assigned
		w.assigned = nil
		if t == nil && w.active != nil {
			if it, ok := w.active.q.PopBottom(); ok {
				t = w.resolveItem(it)
			}
		}
		if t != nil {
			w.failedSteals = 0
			w.runTask(t) //lhws:allowblock the grant handoff parks the loop only while its task runs; the task yields back at every scheduling point
			continue
		}
		w.retireActive()
		if w.trySwitch() {
			continue
		}
		if w.trySteal() {
			continue
		}
		if w.rt.finished() {
			return
		}
		w.backoff()
	}
}

// loopBlocking is the baseline work-stealing loop. It is held to the
// same no-parking discipline as loop: in Blocking mode the latency cost
// lands inside tasks (time.Sleep on the worker's goroutine during
// runTask), not in the scheduling loop itself.
//
//lhws:nonblocking
//lhws:owner the worker-loop goroutine is the unique owner of its single deque
func (w *worker) loopBlocking() {
	for {
		t := w.assigned
		w.assigned = nil
		if t == nil {
			if it, ok := w.active.q.PopBottom(); ok {
				t = w.resolveItem(it)
			}
		}
		if t != nil {
			w.failedSteals = 0
			//lhws:allowblock blocking-mode tasks run to completion on the grant; that cost is the baseline being measured
			w.runTask(t)
			continue
		}
		if w.trySteal() {
			continue
		}
		if w.rt.finished() {
			return
		}
		w.backoff()
	}
}

// runTask grants the worker's slot to the task and waits for it to either
// finish or suspend. Also used inline by blocking-mode Await to help run
// queued tasks. The running counter brackets the grant so the watchdog can
// tell an actively executing run from a stalled one. A finished shell is
// returned to the task free list here: the report-channel receive orders
// every task-side write before the recycle.
func (w *worker) runTask(t *task) reportKind {
	w.stat.tasksRun.Add(1)
	w.stat.running.Add(1)
	if !t.started {
		t.started = true
		go t.main()
	}
	t.resume <- w
	r := <-t.report
	w.stat.running.Add(-1)
	if r == reportDone && t.recycle {
		w.releaseTask(t)
	}
	return r
}

// drainResumed implements addResumedVertices (Figure 3, lines 7-14): for
// each deque with pending resumed tasks, inject the whole batch as ONE
// deque item — a pfor-tree node over the batch (see pfor.go) — and mark
// non-active deques ready. Injection is O(1) per deque in the batch size;
// the tree splits lazily as it is popped or stolen. A batch of one skips
// the tree and pushes the task directly.
//
//lhws:nonblocking
//lhws:owner runs on the worker-loop goroutine, which owns every deque it drains
func (w *worker) drainResumed() {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical sections, never held across a wait
	dqs := w.resumedDq
	if len(dqs) == 0 {
		w.mu.Unlock()
		return
	}
	w.resumedDq = w.drainBuf
	w.drainBuf = nil
	w.mu.Unlock()
	for i, d := range dqs {
		dqs[i] = nil
		ts := d.takeResumed(w.getSlice())
		switch len(ts) {
		case 0:
			// Raced with a previous drain; nothing pending after all.
			w.putSlice(ts)
		case 1:
			t := ts[0]
			ts[0] = nil
			d.q.PushBottom(w.newTaskNode(t))
			w.putSlice(ts[:0])
		default:
			w.stat.resumeBatches.Add(1)
			w.stat.resumeBatchTasks.Add(int64(len(ts)))
			d.q.PushBottom(w.newBatchNode(ts))
		}
		if d != w.active {
			w.addReady(d)
		}
	}
	w.drainBuf = dqs[:0]
}

// noteResumedDeque registers a deque whose first resumed task just
// arrived. Called from timer and completion goroutines.
func (w *worker) noteResumedDeque(d *rdeque) {
	w.mu.Lock()
	w.resumedDq = append(w.resumedDq, d)
	w.mu.Unlock()
}

// addReady appends d to the ready list; the inReadySet flag (guarded by
// w.mu) makes membership O(1) instead of a list scan.
//
//lhws:nonblocking
func (w *worker) addReady(d *rdeque) {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	if !d.inReadySet {
		d.inReadySet = true
		w.ready = append(w.ready, d)
	}
	w.mu.Unlock()
}

// retireActive drops an exhausted active deque — recycling it through the
// worker's free list — or abandons it (keeping ownership for pending
// callbacks) when tasks belonging to it are still suspended. Recycling an
// idle deque is safe even against a thief still holding a pointer to it:
// the Chase–Lev indices are never reset, so the stale thief performs an
// ordinary steal against the deque's next contents (see pool.go).
//
//lhws:nonblocking
func (w *worker) retireActive() {
	a := w.active
	if a == nil {
		return
	}
	drop := a.idle()
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	w.active = nil
	if drop {
		w.live--
	}
	w.mu.Unlock()
	if drop {
		w.putRdeque(a)
	}
}

// trySwitch activates one of the worker's ready deques (Figure 3,
// lines 46-48). Selection is deadline-aware: if any ready deque carries
// a latency target (WithTarget/WithDeadline), the earliest-target deque
// wins — EDF among the worker's own deques — so a request that can still
// meet its target is not starved behind later-arriving target-free work.
// With no targets in play the scan finds nothing and selection stays
// LIFO, preserving the locality the paper's §6 policy relies on.
//
//lhws:nonblocking
func (w *worker) trySwitch() bool {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	n := len(w.ready)
	if n == 0 {
		w.mu.Unlock()
		return false
	}
	pick := n - 1
	best := int64(0)
	for i := n - 1; i >= 0; i-- {
		if tgt := w.ready[i].targetNs.Load(); tgt != 0 && (best == 0 || tgt < best) {
			best, pick = tgt, i
		}
	}
	d := w.ready[pick]
	w.ready[pick] = w.ready[n-1]
	w.ready[n-1] = nil
	w.ready = w.ready[:n-1]
	d.inReadySet = false
	w.active = d
	w.mu.Unlock()
	w.stat.switches.Add(1)
	return true
}

// trySteal is the shared steal core for both scheduling modes: one
// attempt under the §6 policy — choose a victim worker (two-level
// locality selection, see pickVictim), then a deque among its active and
// ready deques — followed by a batched transfer. The candidate is indexed
// directly under the victim's lock; no candidate slice is materialized.
// In Blocking mode the victim's ready list is always empty and the thief
// keeps its single permanent deque, so the same code degenerates to
// classic single-deque stealing with batching.
//
// Two deadline-aware refinements layer on top. Both are skipped — along
// with the time.Now() call that prices them — unless some deque in the
// run currently carries a latency target (rt.activeTargets), so
// target-free workloads pay zero clock reads per attempt. First,
// preference: if any of the victim's deques carries a still-feasible
// target, the thief takes the earliest-target one instead of a random
// pick, spreading workers onto the request closest to its deadline.
// Second, gating: when Config.ShedBlownTargets is set and the chosen
// deque's target has already passed, the thief does not steal from it —
// pulling more workers into a subtree that will miss its target anyway
// is the overload collapse mode — and instead sheds the subtree by
// canceling its scope with ErrTargetMissed, so its tasks unwind and
// capacity returns to feasible work.
//
// The transfer itself is the steal-half batching of Rito & Paulino
// (arXiv:1810.10615): PopTopBatch moves up to half the victim deque —
// capped by Config.MaxStealBatch — under one claim + one committing CAS,
// so synchronization is paid per transfer, not per item. The batch tail
// is re-pushed onto the thief's deque oldest-first, making the thief's
// deque the stolen range verbatim: the topmost item is the oldest
// (stealable onward by the next thief), the bottom the deepest, and the
// thief runs the very oldest item first — observably a single classic
// steal of the top item plus a prefix transfer. The victim deque's
// target marker migrates once per batch, not per item.
//
//lhws:owner runs on the worker-loop goroutine; the batch tail is pushed onto w.active, which this thief owns (freshly adopted in latency-hiding mode, the permanent single deque in blocking mode)
//lhws:nonblocking
func (w *worker) trySteal() bool {
	w.stat.stealAttempts.Add(1)
	if w.rt.failSteal() {
		return false
	}
	victim, local := w.pickVictim()
	if victim == nil {
		return false
	}
	var now int64
	scanTargets := w.rt.activeTargets.Load() > 0
	if scanTargets {
		now = time.Now().UnixNano()
	}
	victim.mu.Lock() //lhws:allowblock leaf mutex on the victim, O(1) critical section, never held across a wait
	var target *rdeque
	var bestTgt int64
	nready := len(victim.ready)
	total := nready
	if victim.active != nil {
		total++
	}
	if scanTargets {
		for _, d := range victim.ready {
			if tgt := d.targetNs.Load(); tgt != 0 && tgt > now && (bestTgt == 0 || tgt < bestTgt) {
				target, bestTgt = d, tgt
			}
		}
		if a := victim.active; a != nil {
			if tgt := a.targetNs.Load(); tgt != 0 && tgt > now && (bestTgt == 0 || tgt < bestTgt) {
				target, bestTgt = a, tgt
			}
		}
	}
	if target == nil && total > 0 {
		if i := w.rnd.Intn(total); i < nready {
			target = victim.ready[i]
		} else {
			target = victim.active
		}
	}
	victim.mu.Unlock()
	if target == nil {
		return false
	}
	if scanTargets && w.rt.cfg.ShedBlownTargets {
		if sc, tgt, blown := target.blownTarget(now); blown {
			if sc != nil && sc.cancel(ErrTargetMissed) { //lhws:allowblock shed path, not a steal hot path: scope-tree leaf mutexes with O(children) critical sections, never held across a wait
				w.rt.stats.TargetCancels.Add(1)
				return false
			}
			// The scope that set the target is already canceled or done:
			// the marker is stale. Retire it and steal normally instead of
			// repelling thieves from a deque that has moved on to
			// unrelated work.
			target.clearBlownTarget(tgt)
		}
	}
	n := target.q.PopTopBatch(w.stealBuf, w.rt.maxSteal)
	if n == 0 {
		return false
	}
	w.noteSteal(victim, n, local)
	if w.rt.cfg.Mode != Blocking {
		w.adoptDeque(w.getRdeque())
		// The stolen work carries the victim deque's target with it —
		// once per batch — so EDF preference and steal gating keep
		// following the subtree on the thief's side. Blocking mode skips
		// the migration: its single permanent deque would accumulate
		// CAS-min markers it can never retire.
		if tgt := target.targetNs.Load(); tgt != 0 {
			w.active.noteTarget(tgt, target.targetScope.Load())
		}
	}
	it0 := w.stealBuf[0]
	for i := 1; i < n; i++ {
		w.active.q.PushBottom(w.stealBuf[i])
	}
	for i := 0; i < n; i++ {
		w.stealBuf[i] = nil
	}
	// Resolve after the tail transfer: a stolen pfor node splits onto the
	// thief's deque below the batch tail, keeping its left half-ranges
	// stealable here.
	w.assigned = w.resolveItem(it0)
	return true
}

// noteSteal records a successful transfer of items from victim in the
// thief's stat shard and feeds the Config.OnSteal observer.
//
//lhws:nonblocking
func (w *worker) noteSteal(victim *worker, items int, local bool) {
	w.stat.steals.Add(1)
	w.stat.batchItems.Add(int64(items))
	if local {
		w.stat.stealsLocal.Add(1)
	} else {
		w.stat.stealsRemote.Add(1)
	}
	if f := w.rt.cfg.OnSteal; f != nil {
		f(StealEvent{Thief: w.id, Victim: victim.id, Items: items, Local: local}) //lhws:allowblock user observer; Config.OnSteal documents it runs on the thief's steal path and must not block
	}
}

// localStealAttempts is how many consecutive failed steals a thief spends
// probing its own locality shard before escalating to uniform-over-all
// victim selection — the near/far tier split of the Gast et al.
// (arXiv:1805.00857) latency model. Reset on any successful pop or steal
// (see loop), so a thief that finds work locally stays local.
const localStealAttempts = 4

// pickVictim chooses a victim under the two-level locality policy:
// while the thief is in its local tier (fewer than localStealAttempts
// consecutive failures) and its shard holds another worker, it probes
// uniformly inside the shard; afterwards it probes uniformly over all
// other workers, which may still land locally. The returned flag reports
// whether the victim shares the thief's shard. With StealShards == 1 the
// whole pool is one shard and selection is the classic uniform policy.
//
//lhws:nonblocking
func (w *worker) pickVictim() (*worker, bool) {
	n := len(w.rt.workers)
	if n == 1 {
		return nil, false
	}
	if w.rt.shardCount > 1 && w.failedSteals < localStealAttempts {
		if span := w.shardHi - w.shardLo; span > 1 {
			vi := w.shardLo + w.rnd.Intn(span-1)
			if vi >= w.id {
				vi++
			}
			return w.rt.workers[vi], true
		}
		// The thief is alone in its shard: local probes could never
		// succeed, so fall through to the escalated tier immediately.
	}
	vi := w.rnd.Intn(n - 1)
	if vi >= w.id {
		vi++
	}
	return w.rt.workers[vi], vi >= w.shardLo && vi < w.shardHi
}

// adoptDeque installs a fresh deque as the active deque and updates the
// per-worker allocation high-water mark.
//
//lhws:nonblocking
func (w *worker) adoptDeque(d *rdeque) {
	w.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	w.active = d
	w.live++
	live := w.live
	w.mu.Unlock()
	for {
		cur := w.rt.stats.MaxDeques.Load()
		if live <= cur || w.rt.stats.MaxDeques.CompareAndSwap(cur, live) {
			break
		}
	}
}

// backoff yields the processor between failed steal attempts, escalating
// per steal tier. Local-tier probes (the first localStealAttempts
// failures) and the first few escalated probes only yield — near steals
// are cheap to retry, which is the point of probing them first — then
// the escalated tier climbs a capped exponential sleep ladder (1µs
// doubling to 100µs) so timer goroutines can run even on GOMAXPROCS=1
// while an idle worker's spin cost stays bounded. Reset on any
// successful pop or steal.
//
//lhws:nonblocking
func (w *worker) backoff() {
	w.failedSteals++
	if w.failedSteals <= localStealAttempts+4 {
		goruntime.Gosched()
		return
	}
	shift := w.failedSteals - (localStealAttempts + 5)
	if shift > 7 {
		shift = 7
	}
	d := time.Microsecond << uint(shift)
	if d > 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	time.Sleep(d) //lhws:allowblock deliberate bounded backoff after repeated failed steals; yields the P so timers fire on GOMAXPROCS=1
}
