package runtime

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestChanBasicHandoff(t *testing.T) {
	for _, m := range modes() {
		var got int64
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			ch := NewChan[int64](0)
			f := c.Spawn(func(cc *Ctx) { ch.Send(cc, 42) })
			got = ch.Recv(c)
			f.Await(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("%v: got %d, want 42", m, got)
		}
	}
}

func TestChanOrderPreserved(t *testing.T) {
	for _, m := range modes() {
		var out []int
		_, err := Run(Config{Workers: 2, Mode: m}, func(c *Ctx) {
			ch := NewChan[int](0)
			f := c.Spawn(func(cc *Ctx) {
				for i := 0; i < 100; i++ {
					ch.Send(cc, i)
				}
			})
			for i := 0; i < 100; i++ {
				out = append(out, ch.Recv(c))
			}
			f.Await(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i {
				t.Fatalf("%v: out[%d] = %d (single-producer order broken)", m, i, v)
			}
		}
	}
}

func TestChanSingleWorkerProducerConsumer(t *testing.T) {
	// The regression this guards: a consumer on the only worker must not
	// deadlock against a producer task sitting in its own deque.
	for _, m := range modes() {
		var sum int64
		_, err := Run(Config{Workers: 1, Mode: m}, func(c *Ctx) {
			ch := NewChan[int64](0)
			f := c.Spawn(func(cc *Ctx) {
				for i := int64(1); i <= 10; i++ {
					ch.Send(cc, i)
				}
			})
			for i := 0; i < 10; i++ {
				sum += ch.Recv(c)
			}
			f.Await(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum != 55 {
			t.Fatalf("%v: sum = %d, want 55", m, sum)
		}
	}
}

func TestChanBoundedBackpressure(t *testing.T) {
	// A capacity-2 channel with a slow consumer: the producer must suspend
	// rather than buffer everything.
	var maxLen atomic.Int64
	_, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
		ch := NewChan[int](2)
		f := c.Spawn(func(cc *Ctx) {
			for i := 0; i < 20; i++ {
				ch.Send(cc, i)
				if n := int64(ch.Len()); n > maxLen.Load() {
					maxLen.Store(n)
				}
			}
		})
		for i := 0; i < 20; i++ {
			c.Latency(time.Millisecond)
			if got := ch.Recv(c); got != i {
				panic("order broken")
			}
		}
		f.Await(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxLen.Load() > 2 {
		t.Fatalf("bounded channel grew to %d > capacity 2", maxLen.Load())
	}
}

func TestChanManyProducers(t *testing.T) {
	for _, m := range modes() {
		const producers, per = 8, 50
		var sum int64
		_, err := Run(Config{Workers: 4, Mode: m}, func(c *Ctx) {
			ch := NewChan[int64](0)
			var futs []*Future
			for p := 0; p < producers; p++ {
				futs = append(futs, c.Spawn(func(cc *Ctx) {
					for i := 0; i < per; i++ {
						ch.Send(cc, 1)
					}
				}))
			}
			for i := 0; i < producers*per; i++ {
				sum += ch.Recv(c)
			}
			for _, f := range futs {
				f.Await(c)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum != producers*per {
			t.Fatalf("%v: sum = %d, want %d", m, sum, producers*per)
		}
	}
}

func TestChanTryRecv(t *testing.T) {
	_, err := Run(Config{Workers: 1, Mode: LatencyHiding}, func(c *Ctx) {
		ch := NewChan[string](0)
		if _, ok := ch.TryRecv(); ok {
			panic("TryRecv on empty returned ok")
		}
		ch.Send(c, "x")
		v, ok := ch.TryRecv()
		if !ok || v != "x" {
			panic("TryRecv failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChanPipelineLatencyHiding: a 3-stage pipeline where each stage
// incurs latency per item; latency hiding should overlap the stages.
//
// The assertion compares against a serial baseline measured with the same
// machinery in the same process rather than against nominal sleep math:
// timer oversleep (loaded hosts, -race) inflates baseline and pipeline
// alike, so the ratio is stable where an absolute cutoff is flaky.
func TestChanPipelineLatencyHiding(t *testing.T) {
	const items = 16
	const lat = 2 * time.Millisecond
	pipeline := func() time.Duration {
		st, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
			a := NewChan[int](0)
			b := NewChan[int](0)
			s1 := c.Spawn(func(cc *Ctx) {
				for i := 0; i < items; i++ {
					cc.Latency(lat) // fetch
					a.Send(cc, i)
				}
			})
			s2 := c.Spawn(func(cc *Ctx) {
				for i := 0; i < items; i++ {
					v := a.Recv(cc)
					cc.Latency(lat) // transform via remote service
					b.Send(cc, v*2)
				}
			})
			for i := 0; i < items; i++ {
				if got := b.Recv(c); got != 2*i {
					panic("pipeline order broken")
				}
			}
			s1.Await(c)
			s2.Await(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Wall
	}
	// serial measures the same 2·items latency operations with nothing to
	// overlap them: the critical path the pipeline would take if latency
	// hiding hid nothing.
	serial := func() time.Duration {
		st, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
			for i := 0; i < 2*items; i++ {
				c.Latency(lat)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Wall
	}
	// Perfect overlap of the two latency stages halves the serial time;
	// require clearing 0.8× to leave margin for scheduling noise. Retry a
	// few times on loaded hosts, re-measuring the baseline each attempt so
	// both sides of the ratio see the same load.
	var hidden, base time.Duration
	for attempt := 0; attempt < 4; attempt++ {
		base = serial()
		hidden = pipeline()
		if hidden < base*4/5 {
			return
		}
	}
	t.Errorf("latency-hiding pipeline took %v vs serial baseline %v (ratio %.2f, want < 0.80)",
		hidden, base, float64(hidden)/float64(base))
}

func TestChanValuesNotLost(t *testing.T) {
	// Stress: concurrent senders and a consumer with random latency; every
	// value must arrive exactly once.
	var seen [400]atomic.Int32
	_, err := Run(Config{Workers: 4, Mode: LatencyHiding}, func(c *Ctx) {
		ch := NewChan[int](4)
		var futs []*Future
		for p := 0; p < 4; p++ {
			p := p
			futs = append(futs, c.Spawn(func(cc *Ctx) {
				for i := 0; i < 100; i++ {
					ch.Send(cc, p*100+i)
				}
			}))
		}
		for i := 0; i < 400; i++ {
			seen[ch.Recv(c)].Add(1)
		}
		for _, f := range futs {
			f.Await(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("value %d received %d times", i, got)
		}
	}
}
