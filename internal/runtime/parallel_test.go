package runtime

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversRange(t *testing.T) {
	for _, m := range modes() {
		for _, grain := range []int{1, 3, 16, 100} {
			var hits [97]atomic.Int32
			_, err := Run(Config{Workers: 3, Mode: m}, func(c *Ctx) {
				For(c, 0, len(hits), grain, func(cc *Ctx, i int) {
					hits[i].Add(1)
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("%v grain=%d: index %d visited %d times", m, grain, i, got)
				}
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	var n atomic.Int32
	_, err := Run(Config{Workers: 1, Mode: LatencyHiding}, func(c *Ctx) {
		For(c, 5, 5, 1, func(cc *Ctx, i int) { n.Add(1) }) // empty
		For(c, 7, 8, 1, func(cc *Ctx, i int) {
			if i != 7 {
				panic("wrong index")
			}
			n.Add(1)
		})
		For(c, 0, 3, 0, func(cc *Ctx, i int) { n.Add(1) }) // grain clamped to 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 4 {
		t.Fatalf("bodies ran %d times, want 4", n.Load())
	}
}

func TestForWithLatencyOverlaps(t *testing.T) {
	const n = 16
	st, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
		For(c, 0, n, 1, func(cc *Ctx, i int) {
			cc.Latency(10 * time.Millisecond)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Wall > n*10*time.Millisecond/4 {
		t.Errorf("For with latency took %v; waits did not overlap", st.Wall)
	}
}

func TestMapReduceSum(t *testing.T) {
	for _, m := range modes() {
		var got int64
		_, err := Run(Config{Workers: 3, Mode: m}, func(c *Ctx) {
			got = MapReduce(c, 0, 100, 0, func(cc *Ctx, i int) int64 {
				return int64(i)
			}, func(a, b int64) int64 { return a + b })
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 4950 {
			t.Fatalf("%v: sum = %d, want 4950", m, got)
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	_, err := Run(Config{Workers: 1, Mode: LatencyHiding}, func(c *Ctx) {
		if got := MapReduce(c, 3, 3, -1, func(cc *Ctx, i int) int { return i }, func(a, b int) int { return a + b }); got != -1 {
			panic("empty range should return identity")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapReduceWithSuspension(t *testing.T) {
	// The §5 distributed map-reduce, as one call: fetch with latency, map,
	// reduce.
	var got int64
	st, err := Run(Config{Workers: 4, Mode: LatencyHiding}, func(c *Ctx) {
		got = MapReduce(c, 0, 64, 0, func(cc *Ctx, i int) int64 {
			cc.Latency(2 * time.Millisecond) // getValue
			return int64(i * 2)              // f(x)
		}, func(a, b int64) int64 { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 64*63 {
		t.Fatalf("sum = %d, want %d", got, 64*63)
	}
	if st.Wall > 40*time.Millisecond {
		t.Errorf("64 overlapped 2ms fetches took %v", st.Wall)
	}
}

func TestMapReduceNonCommutativeOrder(t *testing.T) {
	// Concatenation: reduce must preserve left-to-right order regardless
	// of execution interleaving.
	var got string
	_, err := Run(Config{Workers: 4, Mode: LatencyHiding}, func(c *Ctx) {
		got = MapReduce(c, 0, 10, "", func(cc *Ctx, i int) string {
			return string(rune('a' + i))
		}, func(a, b string) string { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "abcdefghij" {
		t.Fatalf("order broken: %q", got)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
			For(c, 0, 256, 16, func(cc *Ctx, i int) { busyWork(100) })
		})
	}
}
