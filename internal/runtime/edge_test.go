package runtime

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestEmptyRoot: a root that does nothing still completes cleanly.
func TestEmptyRoot(t *testing.T) {
	for _, m := range modes() {
		st, err := Run(Config{Workers: 8, Mode: m}, func(c *Ctx) {})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if st.TasksRun < 1 {
			t.Errorf("%v: root not counted", m)
		}
	}
}

// TestSequentialRuns: runtimes are single-use but the package supports any
// number of consecutive Run invocations.
func TestSequentialRuns(t *testing.T) {
	var total atomic.Int64
	for i := 0; i < 10; i++ {
		_, err := Run(Config{Workers: 2, Mode: LatencyHiding, Seed: uint64(i)}, func(c *Ctx) {
			f := c.Spawn(func(cc *Ctx) { total.Add(1) })
			f.Await(c)
			total.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total.Load() != 20 {
		t.Fatalf("total = %d, want 20", total.Load())
	}
}

// TestDeepSpawnChain: a long chain of dependent spawns (each task spawns
// the next and awaits it) exercises deep suspension nesting without
// blowing goroutine stacks.
func TestDeepSpawnChain(t *testing.T) {
	const depth = 300
	var reached atomic.Int64
	var rec func(c *Ctx, d int)
	rec = func(c *Ctx, d int) {
		reached.Add(1)
		if d == 0 {
			return
		}
		f := c.Spawn(func(cc *Ctx) { rec(cc, d-1) })
		f.Await(c)
	}
	_, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
		rec(c, depth)
	})
	if err != nil {
		t.Fatal(err)
	}
	if reached.Load() != depth+1 {
		t.Fatalf("reached %d, want %d", reached.Load(), depth+1)
	}
}

// TestZeroLatency: Latency(0) must be a cheap no-op-ish suspension that
// still resumes correctly.
func TestZeroLatency(t *testing.T) {
	for _, m := range modes() {
		var after atomic.Bool
		_, err := Run(Config{Workers: 1, Mode: m}, func(c *Ctx) {
			c.Latency(0)
			after.Store(true)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !after.Load() {
			t.Fatalf("%v: continuation lost", m)
		}
	}
}

// TestMixedPrimitives: futures, channels, parallel-for, and latency all
// composed in one program.
func TestMixedPrimitives(t *testing.T) {
	for _, m := range modes() {
		var sum atomic.Int64
		_, err := Run(Config{Workers: 3, Mode: m}, func(c *Ctx) {
			ch := NewChan[int64](4)
			producer := c.Spawn(func(cc *Ctx) {
				For(cc, 0, 20, 4, func(ccc *Ctx, i int) {
					ccc.Latency(time.Millisecond / 2)
					ch.Send(ccc, int64(i))
				})
			})
			var consumed int64
			for i := 0; i < 20; i++ {
				consumed += ch.Recv(c)
			}
			fold := SpawnValue(c, func(cc *Ctx) int64 {
				return MapReduce(cc, 0, 10, 0,
					func(ccc *Ctx, i int) int64 { return int64(i) },
					func(a, b int64) int64 { return a + b })
			})
			producer.Await(c)
			sum.Store(consumed + fold.Await(c))
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(19*20/2 + 45)
		if sum.Load() != want {
			t.Fatalf("%v: sum = %d, want %d", m, sum.Load(), want)
		}
	}
}

// TestAwaitFromManyTasks: several tasks awaiting one future all resume.
func TestAwaitFromManyTasks(t *testing.T) {
	var resumed atomic.Int64
	_, err := Run(Config{Workers: 3, Mode: LatencyHiding}, func(c *Ctx) {
		slow := c.Spawn(func(cc *Ctx) { cc.Latency(5 * time.Millisecond) })
		var waiters []*Future
		for i := 0; i < 10; i++ {
			waiters = append(waiters, c.Spawn(func(cc *Ctx) {
				slow.Await(cc)
				resumed.Add(1)
			}))
		}
		for _, w := range waiters {
			w.Await(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Load() != 10 {
		t.Fatalf("resumed %d of 10 waiters", resumed.Load())
	}
}

// TestStatsConsistency: spawned tasks and run slices relate sensibly.
func TestStatsConsistency(t *testing.T) {
	st, err := Run(Config{Workers: 2, Mode: LatencyHiding}, func(c *Ctx) {
		var futs []*Future
		for i := 0; i < 30; i++ {
			futs = append(futs, c.Spawn(func(cc *Ctx) { cc.Latency(time.Millisecond) }))
		}
		for _, f := range futs {
			f.Await(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TasksSpawned != 31 { // root + 30
		t.Errorf("TasksSpawned = %d, want 31", st.TasksSpawned)
	}
	// Every suspension implies an extra run slice: runs ≥ spawned.
	if st.TasksRun < st.TasksSpawned {
		t.Errorf("TasksRun %d < TasksSpawned %d", st.TasksRun, st.TasksSpawned)
	}
	if st.Steals > st.StealAttempts {
		t.Errorf("Steals %d > StealAttempts %d", st.Steals, st.StealAttempts)
	}
	if st.Wall <= 0 {
		t.Error("Wall not measured")
	}
}

// TestWorkersScaleCompute: with GOMAXPROCS raised by TestMain, wall time
// for pure compute should not degrade with more workers.
func TestWorkersScaleCompute(t *testing.T) {
	run := func(p int) time.Duration {
		st, err := Run(Config{Workers: p, Mode: LatencyHiding}, func(c *Ctx) {
			For(c, 0, 64, 1, func(cc *Ctx, i int) { busyWork(200000) })
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Wall
	}
	w1 := run(1)
	w4 := run(4)
	// On a single hardware thread parallel speedup is not expected; just
	// guard against pathological slowdown from scheduling overhead.
	if w4 > 3*w1 {
		t.Errorf("4 workers (%v) much slower than 1 (%v)", w4, w1)
	}
}
