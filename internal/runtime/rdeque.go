package runtime

import (
	"sync"
	"sync/atomic"

	"lhws/internal/deque"
)

// rdeque is a worker-owned deque with the suspension bookkeeping of
// Table 1: a lock-free Chase–Lev deque of tasks plus a suspension counter
// and the set of resumed tasks awaiting re-injection.
//
// Concurrency contract: items are accessed through the lock-free deque
// (owner-side push/pop by whichever goroutine currently holds the owner
// role — the worker loop or the task it is running — and PopTop by any
// thief). suspendCtr, resumed, and inResumedSet are guarded by mu because
// resume callbacks fire on timer and completer goroutines.
type rdeque struct {
	q     *deque.ChaseLev
	owner *worker

	// inReadySet marks membership in the owner's ready list so addReady is
	// O(1) instead of scanning. Guarded by the owner's mu (not d.mu),
	// because it mirrors state of the owner's ready slice.
	inReadySet bool

	// suspendCtr is atomic (not under mu) so the suspend/unsuspend fast
	// paths — two per parked task — touch no lock. addResumed decrements
	// it only AFTER publishing the task to resumed, so an observer that
	// reads suspendCtr == 0 and then finds resumed empty under mu cannot
	// be missing an in-flight resumption (see idle).
	suspendCtr atomic.Int64

	// targetNs is the earliest latency target (UnixNano; 0 = none) of any
	// task spawned onto or suspended from this deque, maintained by
	// noteTarget (CAS-min) and read lock-free by deadline-aware deque
	// selection and steal gating. targetScope remembers which scope set it
	// so a blown target can be shed by canceling that subtree. Both are
	// best-effort: a target may outlive the tasks that carried it until
	// the deque is recycled (resetTarget), which costs at worst a spurious
	// idempotent cancel of an already-finished scope.
	targetNs    atomic.Int64
	targetScope atomic.Pointer[cancelScope]

	mu           sync.Mutex
	resumed      []*task
	inResumedSet bool
}

//lhws:nonblocking
func newRdeque(owner *worker) *rdeque {
	return &rdeque{q: deque.NewChaseLev(), owner: owner}
}

// suspend records that a task belonging to this deque has suspended.
//
//lhws:nonblocking
func (d *rdeque) suspend() {
	d.suspendCtr.Add(1)
}

// unsuspend reverses a suspend that never committed — the fast path of an
// Await that found the future already done after marking the suspension.
//
//lhws:nonblocking
func (d *rdeque) unsuspend() {
	d.suspendCtr.Add(-1)
}

// snapshot reads the suspension counter and pending-resume count for
// watchdog diagnostics.
//
//lhws:nonblocking
func (d *rdeque) snapshot() (suspended, resumed int) {
	suspended = int(d.suspendCtr.Load())
	d.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	resumed = len(d.resumed)
	d.mu.Unlock()
	return
}

// addResumed is the resume callback (Figure 3, lines 1-5): called by timer
// or future-completion goroutines when a suspended task becomes runnable
// again. It appends the task to the deque's resumed set and registers the
// deque with its owner. The suspension counter is decremented only after
// the append is published (see the field comment).
func (d *rdeque) addResumed(t *task) {
	d.mu.Lock()
	d.resumed = append(d.resumed, t)
	first := !d.inResumedSet
	if first {
		d.inResumedSet = true
	}
	d.mu.Unlock()
	d.suspendCtr.Add(-1)
	if first {
		d.owner.noteResumedDeque(d)
	}
}

// takeResumed removes and returns the resumed set, clearing the
// registration flag. Called by the owner when injecting resumed tasks.
// spare (possibly nil) becomes the deque's next resumed buffer, so the
// owner can ping-pong recycled buffers through the resume path instead of
// re-growing a fresh slice every storm.
//
//lhws:nonblocking
func (d *rdeque) takeResumed(spare []*task) []*task {
	d.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	ts := d.resumed
	d.resumed = spare
	d.inResumedSet = false
	d.mu.Unlock()
	return ts
}

// noteTarget records that work targeting tgt (UnixNano, non-zero) lives
// on this deque, keeping the earliest target. Called from the spawn and
// suspension paths only when the task's scope carries a target, so
// target-free workloads never reach it. The 0→nonzero transition bumps
// the run-wide activeTargets count, which lets the steal path skip the
// time.Now() + EDF scan entirely while no deque anywhere carries a
// target; every transition routes through the CAS here, through
// resetTarget's Swap, or through clearBlownTarget's CAS, so the count is
// exact, not advisory.
//
//lhws:nonblocking
func (d *rdeque) noteTarget(tgt int64, s *cancelScope) {
	for {
		cur := d.targetNs.Load()
		if cur != 0 && cur <= tgt {
			return
		}
		if d.targetNs.CompareAndSwap(cur, tgt) {
			d.targetScope.Store(s)
			if cur == 0 {
				d.owner.rt.activeTargets.Add(1)
			}
			return
		}
	}
}

// resetTarget clears target bookkeeping when the deque is recycled for
// an unrelated subtree.
//
//lhws:nonblocking
func (d *rdeque) resetTarget() {
	if d.targetNs.Swap(0) != 0 {
		d.owner.rt.activeTargets.Add(-1)
	}
	d.targetScope.Store(nil)
}

// blownTarget reports whether the deque's earliest target has already
// passed (relative to now, UnixNano), returning the scope that set it
// and the target value observed (for clearBlownTarget).
//
//lhws:nonblocking
func (d *rdeque) blownTarget(now int64) (*cancelScope, int64, bool) {
	tgt := d.targetNs.Load()
	if tgt == 0 || now <= tgt {
		return nil, 0, false
	}
	return d.targetScope.Load(), tgt, true
}

// clearBlownTarget retires a stale target marker observed by blownTarget:
// the subtree that set it is already canceled or finished, so the deque's
// remaining work is unrelated and thieves must not keep treating it as
// blown. The CAS yields to any concurrent noteTarget that installed a
// different target.
//
//lhws:nonblocking
func (d *rdeque) clearBlownTarget(tgt int64) {
	if d.targetNs.CompareAndSwap(tgt, 0) {
		d.targetScope.Store(nil)
		d.owner.rt.activeTargets.Add(-1)
	}
}

// idle reports whether the deque holds no items, no suspended tasks, and
// no pending resumed tasks — i.e. it can be dropped.
//
//lhws:nonblocking
func (d *rdeque) idle() bool {
	// Order matters: read suspendCtr before the resumed set. A resumption
	// in flight decrements the counter only after appending to resumed,
	// so counter == 0 first and resumed empty second cannot both hold
	// around a missed resumption.
	if d.suspendCtr.Load() != 0 {
		return false
	}
	d.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	ok := len(d.resumed) == 0 && !d.inResumedSet
	d.mu.Unlock()
	return ok && d.q.Empty()
}
