package runtime

import (
	"sync"

	"lhws/internal/deque"
)

// rdeque is a worker-owned deque with the suspension bookkeeping of
// Table 1: a lock-free Chase–Lev deque of tasks plus a suspension counter
// and the set of resumed tasks awaiting re-injection.
//
// Concurrency contract: items are accessed through the lock-free deque
// (owner-side push/pop by whichever goroutine currently holds the owner
// role — the worker loop or the task it is running — and PopTop by any
// thief). suspendCtr, resumed, and inResumedSet are guarded by mu because
// resume callbacks fire on timer and completer goroutines.
type rdeque struct {
	q     *deque.ChaseLev
	owner *worker

	mu           sync.Mutex
	suspendCtr   int
	resumed      []*task
	inResumedSet bool
}

//lhws:nonblocking
func newRdeque(owner *worker) *rdeque {
	return &rdeque{q: deque.NewChaseLev(), owner: owner}
}

// suspend records that a task belonging to this deque has suspended.
func (d *rdeque) suspend() {
	d.mu.Lock()
	d.suspendCtr++
	d.mu.Unlock()
}

// unsuspend reverses a suspend that never committed — the fast path of an
// Await that found the future already done after marking the suspension.
//
//lhws:nonblocking
func (d *rdeque) unsuspend() {
	d.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	d.suspendCtr--
	d.mu.Unlock()
}

// snapshot reads the suspension counter and pending-resume count for
// watchdog diagnostics.
//
//lhws:nonblocking
func (d *rdeque) snapshot() (suspended, resumed int) {
	d.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	suspended, resumed = d.suspendCtr, len(d.resumed)
	d.mu.Unlock()
	return
}

// addResumed is the resume callback (Figure 3, lines 1-5): called by timer
// or future-completion goroutines when a suspended task becomes runnable
// again. It appends the task to the deque's resumed set and registers the
// deque with its owner.
func (d *rdeque) addResumed(t *task) {
	d.mu.Lock()
	d.resumed = append(d.resumed, t)
	d.suspendCtr--
	first := !d.inResumedSet
	if first {
		d.inResumedSet = true
	}
	d.mu.Unlock()
	if first {
		d.owner.noteResumedDeque(d)
	}
}

// takeResumed removes and returns the resumed set, clearing the
// registration flag. Called by the owner when injecting resumed tasks.
//
//lhws:nonblocking
func (d *rdeque) takeResumed() []*task {
	d.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	ts := d.resumed
	d.resumed = nil
	d.inResumedSet = false
	d.mu.Unlock()
	return ts
}

// idle reports whether the deque holds no items, no suspended tasks, and
// no pending resumed tasks — i.e. it can be dropped.
//
//lhws:nonblocking
func (d *rdeque) idle() bool {
	d.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	ok := d.suspendCtr == 0 && len(d.resumed) == 0 && !d.inResumedSet
	d.mu.Unlock()
	return ok && d.q.Empty()
}
