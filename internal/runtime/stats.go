package runtime

import "sync/atomic"

// statShard holds one worker's hot scheduler counters. The counters that
// fire on every scheduling quantum (task run slices, spawns, suspensions,
// switches, steal attempts) used to live on shared atomics, so every
// quantum on every worker bounced the same cache line; sharding them
// per-worker makes each increment a local (usually cache-resident)
// atomic. Rare counters (cancellations, panics, the deque high-water
// mark) stay global in atomicStats.
//
// The pad keeps each shard on its own cache lines (two 64-byte lines, to
// defeat adjacent-line prefetching) so neighbouring workers never share.
type statShard struct {
	tasksRun      atomic.Int64
	tasksSpawned  atomic.Int64
	suspensions   atomic.Int64
	switches      atomic.Int64
	stealAttempts atomic.Int64
	steals        atomic.Int64
	// running is 1 while this worker is granting its slot to a task. It
	// lives on the shard — not a shared atomic — because it is written
	// twice per scheduling quantum; the watchdog sums it across shards.
	running atomic.Int64
	// resumeBatches / resumeBatchTasks count drainResumed's multi-task
	// pfor-tree injections: a drain of n>1 resumed tasks is one batch
	// (one PushBottom) carrying n tasks. Tests assert on these to pin
	// the single-injection-per-drain property.
	resumeBatches    atomic.Int64
	resumeBatchTasks atomic.Int64
	// stealsLocal / stealsRemote split successful steals by victim tier
	// (same locality shard vs escalated), and batchItems counts the items
	// those steals transferred; batchItems / (stealsLocal+stealsRemote)
	// is the steal-half amortization factor the steal-economics gates
	// check (steals == stealsLocal + stealsRemote always).
	stealsLocal  atomic.Int64
	stealsRemote atomic.Int64
	batchItems   atomic.Int64
	_            [128 - 12*8]byte
}

// tasksRunTotal sums the run-slice counter across shards; the watchdog
// polls it as its progress signal. A torn (non-instantaneous) sum is fine
// there: any increment between polls changes the total.
func (rt *runtimeState) tasksRunTotal() int64 {
	var n int64
	for i := range rt.shards {
		n += rt.shards[i].tasksRun.Load()
	}
	return n
}

// runningTotal reports how many workers are currently inside a task
// grant; like tasksRunTotal, a torn sum is acceptable for the watchdog's
// progress test.
func (rt *runtimeState) runningTotal() int64 {
	var n int64
	for i := range rt.shards {
		n += rt.shards[i].running.Load()
	}
	return n
}
