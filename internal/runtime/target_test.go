package runtime

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for latency targets (WithTarget/WithDeadline), deadline-aware
// deque selection, and steal gating (Config.ShedBlownTargets).

// TestWithTargetInheritance checks that targets propagate min-wise down
// derived scopes and into spawned subtrees.
func TestWithTargetInheritance(t *testing.T) {
	_, err := Run(Config{Workers: 1}, func(c *Ctx) {
		if c.Target() != 0 {
			t.Error("root context has a target before WithTarget")
		}
		tc, cancel := c.WithTarget(time.Hour)
		defer cancel()
		outer := tc.Target()
		if outer == 0 {
			t.Fatal("WithTarget installed no target")
		}
		// A longer child target must not relax the inherited one.
		loose, cancelLoose := tc.WithTarget(10 * time.Hour)
		defer cancelLoose()
		if got := loose.Target(); got != outer {
			t.Errorf("child target %d relaxed inherited %d", got, outer)
		}
		// A shorter child target tightens it.
		tight, cancelTight := tc.WithTarget(time.Minute)
		defer cancelTight()
		if got := tight.Target(); got >= outer {
			t.Errorf("child target %d did not tighten inherited %d", got, outer)
		}
		// Spawned children inherit through the scope.
		tc.Spawn(func(cc *Ctx) {
			if cc.Target() != outer {
				t.Errorf("spawned child target = %d, want %d", cc.Target(), outer)
			}
		}).Await(c)
		// WithDeadline is a target too.
		dc, cancelD := c.WithDeadline(time.Hour)
		defer cancelD()
		if dc.Target() == 0 {
			t.Error("WithDeadline installed no target")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestShedBlownTargets drives a subtree whose target is already blown and
// checks that a thief sheds it: the subtree is canceled with
// ErrTargetMissed instead of being stolen from, and the shed is counted.
func TestShedBlownTargets(t *testing.T) {
	var missed atomic.Int64
	// The children run until shed: if steal gating broke, the run hits the
	// backstop deadline and the test fails on ErrDeadline instead of
	// hanging.
	st, err := Run(Config{Workers: 2, ShedBlownTargets: true, Deadline: 10 * time.Second}, func(c *Ctx) {
		tc, cancel := c.WithTarget(time.Nanosecond)
		defer cancel()
		futs := make([]*Future, 0, 64)
		for i := 0; i < 64; i++ {
			futs = append(futs, tc.Spawn(func(cc *Ctx) {
				for {
					cc.Latency(500 * time.Microsecond)
				}
			}))
		}
		for _, f := range futs {
			if errors.Is(f.AwaitErr(c), ErrTargetMissed) {
				missed.Add(1)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.TargetCancels < 1 {
		t.Errorf("TargetCancels = %d, want >= 1", st.TargetCancels)
	}
	if missed.Load() == 0 {
		t.Error("no child unwound with ErrTargetMissed")
	}
	if st.TasksCanceled == 0 {
		t.Error("shedding canceled no tasks")
	}
}

// TestShedDisabledByDefault checks that without ShedBlownTargets a blown
// target never cancels anything — targets only steer scheduling.
func TestShedDisabledByDefault(t *testing.T) {
	st, err := Run(Config{Workers: 2}, func(c *Ctx) {
		tc, cancel := c.WithTarget(time.Nanosecond)
		defer cancel()
		futs := make([]*Future, 0, 16)
		for i := 0; i < 16; i++ {
			futs = append(futs, tc.Spawn(func(cc *Ctx) {
				cc.Latency(time.Millisecond)
			}))
		}
		for _, f := range futs {
			if err := f.AwaitErr(c); err != nil {
				t.Errorf("child failed under disabled shedding: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.TargetCancels != 0 {
		t.Errorf("TargetCancels = %d with shedding disabled", st.TargetCancels)
	}
}

// TestTasksLateCounted checks the goodput counter: a task finishing after
// its scope's target is recorded in Stats.TasksLate.
func TestTasksLateCounted(t *testing.T) {
	st, err := Run(Config{Workers: 2}, func(c *Ctx) {
		tc, cancel := c.WithTarget(time.Millisecond)
		defer cancel()
		tc.Spawn(func(cc *Ctx) {
			cc.Latency(20 * time.Millisecond)
		}).Await(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.TasksLate < 1 {
		t.Errorf("TasksLate = %d, want >= 1", st.TasksLate)
	}
}

// TestDeadlineBeatsWatchdog is the regression test for the
// deadline-vs-watchdog race: a request suspended under a derived
// WithDeadline longer than StallTimeout must be resolved by the deadline
// (exactly one typed ErrDeadline), not double-reported as a *StallError —
// the armed deadline timer is a pending wake, so the run is waiting, not
// stalled.
func TestDeadlineBeatsWatchdog(t *testing.T) {
	var childErr error
	st, err := Run(Config{Workers: 2, StallTimeout: 100 * time.Millisecond}, func(c *Ctx) {
		dc, cancel := c.WithDeadline(400 * time.Millisecond)
		defer cancel()
		ch := NewChan[int](0)
		f := dc.Spawn(func(cc *Ctx) {
			ch.Recv(cc) // no sender: only the deadline can end this wait
		})
		childErr = f.AwaitErr(c)
	})
	if err != nil {
		t.Fatalf("Run returned %v, want nil (deadline confined to derived scope)", err)
	}
	if !errors.Is(childErr, ErrDeadline) {
		t.Fatalf("child error = %v, want ErrDeadline", childErr)
	}
	if st.Stalled {
		t.Error("watchdog fired while a derived deadline was pending")
	}
	var stall *StallError
	if errors.As(childErr, &stall) {
		t.Errorf("deadline expiry reported as a stall: %v", childErr)
	}
	for _, s := range st.SuppressedErrors {
		if strings.Contains(s, "stall") {
			t.Errorf("suppressed stall error alongside deadline: %q", s)
		}
	}
}

// TestRootDeadlineStillBackstopsWatchdog pins the asymmetry: the root
// Config.Deadline must NOT count as a pending wake, or it would blind the
// watchdog for the whole run. A genuinely lost wakeup under a long root
// deadline must still surface as a *StallError.
func TestRootDeadlineStillBackstopsWatchdog(t *testing.T) {
	blackhole := make(chan int)
	_, err := Run(Config{
		Workers:      2,
		Deadline:     30 * time.Second,
		StallTimeout: 150 * time.Millisecond,
	}, func(c *Ctx) {
		AwaitChan(c, blackhole) // never completes: a real stall
	})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("Run error = %v, want *StallError despite root deadline", err)
	}
}
