package runtime

// For executes body(i) for every i in [lo, hi) with fork-join parallelism:
// the range splits recursively, spawning the right half and descending
// into the left, until ranges reach grain elements, which run sequentially.
// It is the runtime analogue of the pfor loops the scheduler uses to
// re-inject resumed vertices (§3), and composes with suspension: bodies may
// perform Latency, channel, and Await operations.
//
// For returns when every iteration has completed. grain < 1 is treated
// as 1.
func For(c *Ctx, lo, hi, grain int, body func(*Ctx, int)) {
	if grain < 1 {
		grain = 1
	}
	forRange(c, lo, hi, grain, body)
}

func forRange(c *Ctx, lo, hi, grain int, body func(*Ctx, int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		// Structured join: the future cannot escape this frame, so it may
		// come from (and return to) the worker's future free list.
		right := c.spawnPooled(func(cc *Ctx) { forRange(cc, mid, hi, grain, body) })
		forRange(c, lo, mid, grain, body)
		right.awaitConsume(c)
		return
	}
	for i := lo; i < hi; i++ {
		body(c, i)
	}
}

// MapReduce applies mapper to every index in [lo, hi) in parallel and
// folds the results with the associative function reduce, returning the
// fold of all results with id as identity — the Figure-8 pattern of §5 as
// a library primitive. Mappers may suspend (latency, channels, awaits).
func MapReduce[T any](c *Ctx, lo, hi int, id T, mapper func(*Ctx, int) T, reduce func(T, T) T) T {
	if hi <= lo {
		return id
	}
	if hi-lo == 1 {
		return mapper(c, lo)
	}
	mid := lo + (hi-lo)/2
	right := SpawnValue(c, func(cc *Ctx) T {
		return MapReduce(cc, mid, hi, id, mapper, reduce)
	})
	left := MapReduce(c, lo, mid, id, mapper, reduce)
	return reduce(left, right.Await(c))
}
