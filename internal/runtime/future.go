package runtime

import (
	"sync"

	"lhws/internal/faultpoint"
)

// Future is the completion handle of a spawned task.
//
// Futures returned by Spawn are heap-allocated once and never recycled —
// the caller may hold them indefinitely. The internal spawnPooled /
// awaitConsume pair (structured fork-join, benchmarks) recycles futures
// through the worker free lists instead; see pool.go for the contract.
type Future struct {
	mu   sync.Mutex
	cond sync.Cond // lazily targets mu; blocking-mode waits only
	done bool
	err  error // the child's outcome: nil, cancellation cause, or wrapped panic
	// w0 is the first suspended waiter, inlined because almost every
	// future has exactly one awaiter — the common case then registers
	// without touching the overflow slice (no allocation). overflow holds
	// any further waiters.
	w0       *waiter
	overflow []*waiter
}

//lhws:nonblocking
func newFuture() *Future {
	f := &Future{}
	f.cond.L = &f.mu
	return f
}

// complete marks the future done with the child's outcome, resumes
// suspended waiters (latency-hiding mode), and wakes blocked workers
// (blocking mode). Waiters are delivered while f.mu is held so the
// overflow backing array can be truncated and reused by a pooled future's
// next life; that is safe because deliver/wake take only leaf locks
// (injector, suspension registry, deque, worker) and never a Future's.
//
//lhws:nosuspend
func (f *Future) complete(err error) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	f.err = err
	f.cond.Broadcast()
	if wt := f.w0; wt != nil {
		f.w0 = nil
		wt.deliver(faultpoint.ResumeInject)
	}
	for i, wt := range f.overflow {
		f.overflow[i] = nil
		wt.deliver(faultpoint.ResumeInject)
	}
	f.overflow = f.overflow[:0]
	f.mu.Unlock()
}

// cancelWait implements wakeSource: a scope cancellation dequeues the
// waiter (if the completion has not already consumed it) and wakes the
// task with err so it unwinds instead of waiting on a completion that may
// never come.
//
//lhws:nosuspend
func (f *Future) cancelWait(wt *waiter, err error) {
	f.mu.Lock()
	removed := false
	if f.w0 == wt {
		f.w0 = nil
		removed = true
	} else {
		for i, w := range f.overflow {
			if w == wt {
				f.overflow = append(f.overflow[:i], f.overflow[i+1:]...)
				removed = true
				break
			}
		}
	}
	f.mu.Unlock()
	wt.wake(err)
	if removed {
		wt.release() // the event reference the waiter registration held
	}
}

// Done reports whether the future has completed. It never blocks.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Err returns the child's outcome once the future has completed: nil on
// success, ErrCanceled/ErrDeadline (possibly via a derived scope) if the
// child was unwound by cancellation, or an ErrTaskPanic-wrapped error if
// it panicked. Before completion Err returns nil; call it after Await,
// or use AwaitErr.
func (f *Future) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Await blocks the calling task until the spawned task completes,
// discarding the child's error (retrieve it with Err, or use AwaitErr).
//
// In LatencyHiding mode, an Await on an incomplete future suspends the
// task exactly like a latency operation: the task is paired with the
// worker's active deque and resumed by the completing task's callback.
//
// In Blocking mode, the worker first helps — repeatedly popping its own
// deque and running tasks inline (the conventional join protocol of
// blocking work-stealing runtimes; without it a single worker would
// deadlock on its own children) — and blocks on a condition variable once
// no local work remains.
//
// If the calling task's scope is canceled, Await unwinds it — before
// suspending, or early out of the wait.
func (f *Future) Await(c *Ctx) { _ = f.AwaitErr(c) }

// AwaitErr is Await returning the child's outcome: nil on success, or
// the error the child failed with (cancellation cause or wrapped panic).
func (f *Future) AwaitErr(c *Ctx) error {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		return f.awaitBlocking(c)
	}
	c.injectFault(faultpoint.Suspend)
	t := c.t
	home := c.t.w.active
	// Order matters: make the suspension visible on the deque before
	// registering as a waiter, so a completion racing with this Await sees
	// a consistent counter when it fires the resume.
	home.suspend()
	f.mu.Lock()
	if f.done {
		err := f.err
		f.mu.Unlock()
		home.unsuspend()
		return err
	}
	wt := t.beginWait("await", KindFuture, home, f)
	wt.refs.Add(1) // the registration's event reference
	if f.w0 == nil {
		f.w0 = wt
	} else {
		f.overflow = append(f.overflow, wt)
	}
	f.mu.Unlock()
	c.armScope(wt)
	c.finishWait(wt)
	return f.Err()
}

// awaitConsume awaits the future and returns it to the worker's free
// list. Only futures created by spawnPooled may be consumed, exactly
// once, by their single awaiter; see pool.go. If the await unwinds
// (cancellation), the future is simply not recycled — the child may
// still complete it safely.
func (f *Future) awaitConsume(c *Ctx) error {
	err := f.AwaitErr(c)
	c.t.w.releaseFuture(f)
	return err
}

//lhws:owner the awaiting task holds its worker's owner role and lends it to tasks it runs inline
func (f *Future) awaitBlocking(c *Ctx) error {
	// Register a cancellation nudge: canceling the scope broadcasts the
	// condition variable (under f.mu, so the wait loop below cannot miss
	// it between its check and cond.Wait).
	key := new(int)
	if err := c.scope.addWait(key, abortFunc(func(error) {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})); err != nil {
		panic(cancelPanic{err: err})
	}
	defer c.scope.removeWait(key)
	for {
		if f.Done() {
			return f.Err()
		}
		c.checkpoint()
		// Help: run tasks from the worker's own deque inline. The awaiting
		// task holds the worker's owner role, so it may pop and grant the
		// role to a sub-task for the duration of the inline run.
		if it, ok := c.t.w.active.q.PopBottom(); ok {
			c.t.w.runTask(c.t.w.resolveItem(it))
			continue
		}
		// Nothing local: block until completion or cancellation. Work
		// available elsewhere stays available to other workers — this
		// worker is blocked, which is precisely the baseline's cost.
		f.mu.Lock()
		for !f.done {
			if err := c.scope.Err(); err != nil {
				f.mu.Unlock()
				panic(cancelPanic{err: err})
			}
			f.cond.Wait()
		}
		err := f.err
		f.mu.Unlock()
		return err
	}
}

// Value is a Future carrying a result of type T. Create with SpawnValue.
type Value[T any] struct {
	fut *Future
	v   T
}

// SpawnValue spawns f as a child task and returns a handle from which the
// result can be awaited.
func SpawnValue[T any](c *Ctx, f func(*Ctx) T) *Value[T] {
	v := &Value[T]{}
	v.fut = c.Spawn(func(cc *Ctx) { v.v = f(cc) })
	return v
}

// Await blocks until the child completes and returns its result. If the
// child failed (panic or cancellation) the zero value is returned; use
// AwaitErr to distinguish.
func (v *Value[T]) Await(c *Ctx) T {
	v.fut.Await(c)
	return v.v
}

// AwaitErr blocks until the child completes and returns its result, or
// the error it failed with (in which case the result is the zero value).
func (v *Value[T]) AwaitErr(c *Ctx) (T, error) {
	if err := v.fut.AwaitErr(c); err != nil {
		var zero T
		return zero, err
	}
	return v.v, nil
}

// Done reports whether the result is available.
func (v *Value[T]) Done() bool { return v.fut.Done() }

// Err returns the child's outcome once complete; see Future.Err.
func (v *Value[T]) Err() error { return v.fut.Err() }
