package runtime

import (
	"sync"

	"lhws/internal/faultpoint"
)

// Future is the completion handle of a spawned task.
type Future struct {
	mu      sync.Mutex
	cond    *sync.Cond
	done    bool
	err     error     // the child's outcome: nil, cancellation cause, or wrapped panic
	waiters []*waiter // suspended tasks to resume on completion (LHWS mode)
}

func newFuture() *Future {
	f := &Future{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// complete marks the future done with the child's outcome, resumes
// suspended waiters (latency-hiding mode), and wakes blocked workers
// (blocking mode).
func (f *Future) complete(err error) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	f.err = err
	waiters := f.waiters
	f.waiters = nil
	f.cond.Broadcast()
	f.mu.Unlock()
	for _, wt := range waiters {
		wt.deliver(faultpoint.ResumeInject)
	}
}

// Done reports whether the future has completed. It never blocks.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Err returns the child's outcome once the future has completed: nil on
// success, ErrCanceled/ErrDeadline (possibly via a derived scope) if the
// child was unwound by cancellation, or an ErrTaskPanic-wrapped error if
// it panicked. Before completion Err returns nil; call it after Await,
// or use AwaitErr.
func (f *Future) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Await blocks the calling task until the spawned task completes,
// discarding the child's error (retrieve it with Err, or use AwaitErr).
//
// In LatencyHiding mode, an Await on an incomplete future suspends the
// task exactly like a latency operation: the task is paired with the
// worker's active deque and resumed by the completing task's callback.
//
// In Blocking mode, the worker first helps — repeatedly popping its own
// deque and running tasks inline (the conventional join protocol of
// blocking work-stealing runtimes; without it a single worker would
// deadlock on its own children) — and blocks on a condition variable once
// no local work remains.
//
// If the calling task's scope is canceled, Await unwinds it — before
// suspending, or early out of the wait.
func (f *Future) Await(c *Ctx) { _ = f.AwaitErr(c) }

// AwaitErr is Await returning the child's outcome: nil on success, or
// the error the child failed with (cancellation cause or wrapped panic).
func (f *Future) AwaitErr(c *Ctx) error {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		return f.awaitBlocking(c)
	}
	c.injectFault(faultpoint.Suspend)
	t := c.t
	home := c.t.w.active
	// Order matters: make the suspension visible on the deque before
	// registering as a waiter, so a completion racing with this Await sees
	// a consistent counter when it fires the resume.
	home.suspend()
	f.mu.Lock()
	if f.done {
		err := f.err
		f.mu.Unlock()
		home.unsuspend()
		return err
	}
	wt := t.beginWait("await", home)
	f.waiters = append(f.waiters, wt)
	f.mu.Unlock()
	abort := func(err error) {
		f.mu.Lock()
		for i, w := range f.waiters {
			if w == wt {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				break
			}
		}
		f.mu.Unlock()
		wt.wake(err)
	}
	if err := c.scope.addWait(wt, abort); err != nil {
		abort(err)
	}
	c.finishWait(wt)
	return f.Err()
}

//lhws:owner the awaiting task holds its worker's owner role and lends it to tasks it runs inline
func (f *Future) awaitBlocking(c *Ctx) error {
	// Register a cancellation nudge: canceling the scope broadcasts the
	// condition variable (under f.mu, so the wait loop below cannot miss
	// it between its check and cond.Wait).
	key := new(int)
	if err := c.scope.addWait(key, func(error) {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	}); err != nil {
		panic(cancelPanic{err: err})
	}
	defer c.scope.removeWait(key)
	for {
		if f.Done() {
			return f.Err()
		}
		c.checkpoint()
		// Help: run tasks from the worker's own deque inline. The awaiting
		// task holds the worker's owner role, so it may pop and grant the
		// role to a sub-task for the duration of the inline run.
		if it, ok := c.t.w.active.q.PopBottom(); ok {
			c.t.w.runTask(it.(*task))
			continue
		}
		// Nothing local: block until completion or cancellation. Work
		// available elsewhere stays available to other workers — this
		// worker is blocked, which is precisely the baseline's cost.
		f.mu.Lock()
		for !f.done {
			if err := c.scope.Err(); err != nil {
				f.mu.Unlock()
				panic(cancelPanic{err: err})
			}
			f.cond.Wait()
		}
		err := f.err
		f.mu.Unlock()
		return err
	}
}

// Value is a Future carrying a result of type T. Create with SpawnValue.
type Value[T any] struct {
	fut *Future
	v   T
}

// SpawnValue spawns f as a child task and returns a handle from which the
// result can be awaited.
func SpawnValue[T any](c *Ctx, f func(*Ctx) T) *Value[T] {
	v := &Value[T]{}
	v.fut = c.Spawn(func(cc *Ctx) { v.v = f(cc) })
	return v
}

// Await blocks until the child completes and returns its result. If the
// child failed (panic or cancellation) the zero value is returned; use
// AwaitErr to distinguish.
func (v *Value[T]) Await(c *Ctx) T {
	v.fut.Await(c)
	return v.v
}

// AwaitErr blocks until the child completes and returns its result, or
// the error it failed with (in which case the result is the zero value).
func (v *Value[T]) AwaitErr(c *Ctx) (T, error) {
	if err := v.fut.AwaitErr(c); err != nil {
		var zero T
		return zero, err
	}
	return v.v, nil
}

// Done reports whether the result is available.
func (v *Value[T]) Done() bool { return v.fut.Done() }

// Err returns the child's outcome once complete; see Future.Err.
func (v *Value[T]) Err() error { return v.fut.Err() }
