package runtime

import "sync"

// Future is the completion handle of a spawned task.
type Future struct {
	mu      sync.Mutex
	cond    *sync.Cond
	done    bool
	waiters []*task // suspended tasks to resume on completion (LHWS mode)
}

func newFuture() *Future {
	f := &Future{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// complete marks the future done, resumes suspended waiters (latency-hiding
// mode), and wakes blocked workers (blocking mode).
func (f *Future) complete() {
	f.mu.Lock()
	f.done = true
	waiters := f.waiters
	f.waiters = nil
	f.cond.Broadcast()
	f.mu.Unlock()
	for _, t := range waiters {
		t.home.addResumed(t)
	}
}

// Done reports whether the future has completed. It never blocks.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Await blocks the calling task until the spawned task completes.
//
// In LatencyHiding mode, an Await on an incomplete future suspends the
// task exactly like a latency operation: the task is paired with the
// worker's active deque and resumed by the completing task's callback.
//
// In Blocking mode, the worker first helps — repeatedly popping its own
// deque and running tasks inline (the conventional join protocol of
// blocking work-stealing runtimes; without it a single worker would
// deadlock on its own children) — and blocks on a condition variable once
// no local work remains.
func (f *Future) Await(c *Ctx) {
	if c.t.rt.cfg.Mode == Blocking {
		f.awaitBlocking(c)
		return
	}
	t := c.t
	home := c.w.active
	// Order matters: make the suspension visible on the deque before
	// registering as a waiter, so a completion racing with this Await sees
	// a consistent counter when it fires addResumed.
	home.suspend()
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		home.mu.Lock()
		home.suspendCtr--
		home.mu.Unlock()
		return
	}
	t.home = home
	f.waiters = append(f.waiters, t)
	f.mu.Unlock()
	t.rt.stats.Suspensions.Add(1)
	c.yield()
}

//lhws:owner the awaiting task holds its worker's owner role and lends it to tasks it runs inline
func (f *Future) awaitBlocking(c *Ctx) {
	for {
		if f.Done() {
			return
		}
		// Help: run tasks from the worker's own deque inline. The awaiting
		// task holds the worker's owner role, so it may pop and grant the
		// role to a sub-task for the duration of the inline run.
		if it, ok := c.w.active.q.PopBottom(); ok {
			c.w.runTask(it.(*task))
			continue
		}
		// Nothing local: block until completion. Work available elsewhere
		// stays available to other workers — this worker is blocked, which
		// is precisely the baseline's cost.
		f.mu.Lock()
		for !f.done {
			f.cond.Wait()
		}
		f.mu.Unlock()
		return
	}
}

// Value is a Future carrying a result of type T. Create with SpawnValue.
type Value[T any] struct {
	fut *Future
	v   T
}

// SpawnValue spawns f as a child task and returns a handle from which the
// result can be awaited.
func SpawnValue[T any](c *Ctx, f func(*Ctx) T) *Value[T] {
	v := &Value[T]{}
	v.fut = c.Spawn(func(cc *Ctx) { v.v = f(cc) })
	return v
}

// Await blocks until the child completes and returns its result.
func (v *Value[T]) Await(c *Ctx) T {
	v.fut.Await(c)
	return v.v
}

// Done reports whether the result is available.
func (v *Value[T]) Done() bool { return v.fut.Done() }
