package runtime

import (
	"sync/atomic"

	"lhws/internal/deque"
)

// Bulk resume injection (Figure 3, lines 7-14). When a worker drains a
// deque's resumed set it does not push the tasks one by one: it wraps the
// whole batch in a pfor tree node — "a parallel-for over the resumed
// vertices" in the paper's terms — and pushes that single item. The tree
// is materialized lazily: whoever pops (or steals) a node splits off its
// left halves as further nodes and executes the right-most task. This
// keeps injection O(1) in the batch size on the hot path and gives
// thieves half-range granularity: stealing a node over [0,n) yields the
// executing task plus a node over [0,n/2) left on top of the thief's
// deque for the next thief.
//
// Splitting order is chosen so the tree is observably equivalent to
// pushing the batch per-task in resume order t_0..t_{n-1}: the executor
// of [lo,hi) pushes [lo,mid), [mid,..), ... bottom-most last and runs
// t_{hi-1}, so owner pops yield t_{n-1}, t_{n-2}, ..., t_0 — exactly the
// LIFO order per-task injection would give (pfor_test.go locks this in).

// pforBatch is the shared header of one injected batch. live counts the
// not-yet-extracted tasks; the extractor that takes it to zero recycles
// the tasks buffer and the header. Extraction writes (nil-ing an entry)
// are ordered before the recycle by the atomic decrement chain.
type pforBatch struct {
	tasks []*task
	live  atomic.Int32
}

// pforNode is one deque item. Every item on a runtime deque is a
// *pforNode — the Chase–Lev cells are atomic.Values, which require one
// consistent concrete type — in one of two shapes:
//
//   - singleton: t non-nil, wrapping one spawned or resumed task;
//   - range: t nil, the half-open range [lo,hi) of batch b.
//
// Nodes are pooled (worker-local free lists); a node is on at most one
// deque and is consumed (recycled) by whoever pops or steals it.
type pforNode struct {
	t      *task // non-nil: a singleton, no batch
	b      *pforBatch
	lo, hi int32
}

// newTaskNode wraps a single task for the hot spawn/inject path.
// Owner-role access only.
//
//lhws:nonblocking
func (w *worker) newTaskNode(t *task) *pforNode {
	nd := w.getNode()
	nd.t = t
	return nd
}

// newBatchNode wraps a drained resumed set in a batch and returns its
// root node. Owner-role access only. ts must be non-empty; ownership of
// the slice transfers to the batch.
//
//lhws:nonblocking
func (w *worker) newBatchNode(ts []*task) *pforNode {
	b := w.getBatch()
	b.tasks = ts
	b.live.Store(int32(len(ts)))
	nd := w.getNode()
	nd.b = b
	nd.lo = 0
	nd.hi = int32(len(ts))
	return nd
}

// resolveItem turns a popped or stolen deque item into the task to run.
// Singletons unwrap directly; a range node is split lazily — left halves
// are pushed back onto the worker's active deque as nodes, and the
// range's last task is extracted and returned. The caller must hold w's
// owner role with w.active installed (thieves call this after adopting
// their new deque, so the split lands on the thief's side — the
// half-range steal).
//
//lhws:nonblocking
//lhws:owner callers hold the worker's owner role; pushes target w.active
func (w *worker) resolveItem(it deque.Item) *task {
	nd := it.(*pforNode)
	if t := nd.t; t != nil {
		nd.t = nil
		w.putNode(nd)
		return t
	}
	b := nd.b
	lo, hi := nd.lo, nd.hi
	w.putNode(nd)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		left := w.getNode()
		left.b = b
		left.lo = lo
		left.hi = mid
		w.active.q.PushBottom(left)
		lo = mid
	}
	t := b.tasks[lo]
	b.tasks[lo] = nil
	if b.live.Add(-1) == 0 {
		ts := b.tasks
		b.tasks = nil
		w.putSlice(ts[:0])
		w.putBatch(b)
	}
	return t
}
