package runtime

import (
	"testing"
	"time"

	"lhws/internal/rng"
)

// randomProgram is a seeded random fork-join computation: a tree where
// each node either computes a leaf value, spawns children and combines
// their results, or incurs a small latency before continuing. The same
// tree evaluates deterministically without the runtime (the oracle), so
// any scheduling bug that drops, duplicates, or reorders a join shows up
// as a wrong value.
type randomProgram struct {
	kind     int // 0: leaf, 1: fork, 2: latency-then-child
	value    int64
	children []*randomProgram
}

func genProgram(r *rng.RNG, depth int) *randomProgram {
	if depth == 0 || r.Float64() < 0.3 {
		return &randomProgram{kind: 0, value: int64(r.Intn(1000))}
	}
	if r.Float64() < 0.25 {
		return &randomProgram{kind: 2, children: []*randomProgram{genProgram(r, depth-1)}}
	}
	n := 1 + r.Intn(3)
	p := &randomProgram{kind: 1}
	for i := 0; i < n; i++ {
		p.children = append(p.children, genProgram(r, depth-1))
	}
	return p
}

// oracle evaluates the program sequentially.
func (p *randomProgram) oracle() int64 {
	switch p.kind {
	case 0:
		return p.value
	case 2:
		return 1 + p.children[0].oracle()
	default:
		// Non-commutative combine: alternating signs weighted by position,
		// so join order and completeness both matter.
		var acc int64
		for i, c := range p.children {
			acc = acc*3 + int64(i+1)*c.oracle()
		}
		return acc
	}
}

// eval runs the program on the runtime with the same combine structure.
func (p *randomProgram) eval(c *Ctx) int64 {
	switch p.kind {
	case 0:
		return p.value
	case 2:
		c.Latency(200 * time.Microsecond)
		return 1 + p.children[0].eval(c)
	default:
		// Spawn all children but the first; evaluate the first inline
		// (continuation), then fold in spawn order.
		vals := make([]*Value[int64], len(p.children))
		for i := 1; i < len(p.children); i++ {
			child := p.children[i]
			vals[i] = SpawnValue(c, func(cc *Ctx) int64 { return child.eval(cc) })
		}
		first := p.children[0].eval(c)
		var acc int64
		for i := range p.children {
			var v int64
			if i == 0 {
				v = first
			} else {
				v = vals[i].Await(c)
			}
			acc = acc*3 + int64(i+1)*v
		}
		return acc
	}
}

// TestDifferentialAgainstOracle runs 40 random programs on both modes and
// several worker counts and demands exact agreement with the sequential
// oracle.
func TestDifferentialAgainstOracle(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		p := genProgram(rng.New(seed), 6)
		want := p.oracle()
		for _, m := range modes() {
			for _, workers := range []int{1, 3} {
				var got int64
				_, err := Run(Config{Workers: workers, Mode: m, Seed: seed}, func(c *Ctx) {
					got = p.eval(c)
				})
				if err != nil {
					t.Fatalf("seed %d %v P=%d: %v", seed, m, workers, err)
				}
				if got != want {
					t.Fatalf("seed %d %v P=%d: got %d, oracle %d", seed, m, workers, got, want)
				}
			}
		}
	}
}

// FuzzDifferentialOracle extends the differential test to fuzzed seeds and
// depths.
func FuzzDifferentialOracle(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2))
	f.Add(uint64(99), uint8(7), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, depthRaw, pRaw uint8) {
		p := genProgram(rng.New(seed), int(depthRaw%7))
		want := p.oracle()
		workers := 1 + int(pRaw)%4
		var got int64
		_, err := Run(Config{Workers: workers, Mode: LatencyHiding, Seed: seed}, func(c *Ctx) {
			got = p.eval(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("got %d, oracle %d", got, want)
		}
	})
}
