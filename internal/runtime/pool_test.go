package runtime

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for pooled task-shell reuse (pool.go): a shell's suspension epoch
// is never reset across lives, so wakeups armed for a previous life can
// never claim a suspension of the current one, and a recycled shell
// carries no cancel scope, future, or error state into its next life.

// TestPooledShellStaleWakeupFailsClaim drives a shell through two lives by
// hand and fires a wakeup retained from life one while life two has an
// open suspension: the stale claim must fail and the current life's wakeup
// must still succeed.
func TestPooledShellStaleWakeupFailsClaim(t *testing.T) {
	w := harnessWorkers(1)[0]
	tk := w.acquireTask(func(*Ctx) {})
	tk.w = w
	home := w.active

	// Life one: open a suspension, keep a duplicate reference to its
	// waiter (the "stale wakeup"), and let the legitimate wake claim it.
	home.suspend()
	wt1 := tk.beginWait("pool-test-life1", KindOther, home, nil)
	wt1.refs.Add(1) // the stale duplicate fired below
	if !wt1.wake(nil) {
		t.Fatal("life-one wake failed to claim its own suspension")
	}
	epoch1 := tk.epoch.Load()

	// Recycle the shell and re-arm it, as Spawn would.
	w.releaseTask(tk)
	tk2 := w.acquireTask(func(*Ctx) {})
	if tk2 != tk {
		t.Fatalf("free list returned a different shell (got %p, want %p)", tk2, tk)
	}
	if tk.scope != nil || tk.fut != nil || tk.err != nil || tk.wakeErr != nil {
		t.Fatalf("recycled shell carries stale state: scope=%v fut=%v err=%v wakeErr=%v",
			tk.scope, tk.fut, tk.err, tk.wakeErr)
	}
	if got := tk.epoch.Load(); got != epoch1 {
		t.Fatalf("epoch reset across lives: %d, want %d (monotonic)", got, epoch1)
	}

	// Life two: open a new suspension, then fire the stale life-one
	// wakeup. Its claim CAS must fail without disturbing life two.
	tk.w = w
	home.suspend()
	wt2 := tk.beginWait("pool-test-life2", KindOther, home, nil)
	if wt1.wake(nil) {
		t.Fatal("stale life-one wakeup claimed a life-two suspension")
	}
	wt1.release()
	if !wt2.wake(nil) {
		t.Fatal("life-two wake failed after the stale wakeup was rejected")
	}
}

// TestPooledShellsIsolateCancellation reuses shells across canceled and
// healthy subtrees inside one Run: tasks spawned after a cancellation —
// on shells that just unwound with a cancel error — must run normally,
// and the canceled subtree's error must not leak into them. The workload
// sizes (well past taskCacheCap spawns per phase) force reuse through
// both the worker-local free list and the overflow pool.
func TestPooledShellsIsolateCancellation(t *testing.T) {
	const n = 200
	var healthy atomic.Int64
	st, err := Run(Config{Workers: 2, Mode: LatencyHiding, Seed: 1}, func(c *Ctx) {
		// Phase 1: a canceled subtree with suspended pooled tasks.
		sub, cancel := c.WithCancel()
		futs := make([]*Future, n)
		for i := range futs {
			futs[i] = sub.Spawn(func(cc *Ctx) {
				cc.Latency(10 * time.Second) // parks until the abort
			})
		}
		cancel()
		for _, f := range futs {
			if werr := f.AwaitErr(c); !errors.Is(werr, ErrCanceled) {
				t.Errorf("canceled subtree child returned %v, want ErrCanceled", werr)
			}
		}
		// Phase 2: the same shells, reused for healthy work that also
		// exercises suspension (so stale life-one epochs would surface).
		For(c, 0, n, 1, func(cc *Ctx, i int) {
			cc.Latency(time.Microsecond)
			healthy.Add(1)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := healthy.Load(); got != n {
		t.Fatalf("healthy phase ran %d bodies, want %d", got, n)
	}
	if st.TasksCanceled < n {
		t.Fatalf("TasksCanceled = %d, want >= %d", st.TasksCanceled, n)
	}
}
