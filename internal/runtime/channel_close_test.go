package runtime

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Close drains like a Go channel: buffered values stay receivable, then
// RecvOK reports ok=false, in both modes.
func TestChanCloseDrains(t *testing.T) {
	for _, mode := range []Mode{LatencyHiding, Blocking} {
		t.Run(mode.String(), func(t *testing.T) {
			_, err := Run(Config{Workers: 2, Mode: mode}, func(c *Ctx) {
				ch := NewChan[int](0)
				for i := 1; i <= 3; i++ {
					ch.Send(c, i)
				}
				ch.Close()
				for i := 1; i <= 3; i++ {
					if v, ok := ch.RecvOK(c); !ok || v != i {
						t.Errorf("RecvOK = (%d, %v), want (%d, true)", v, ok, i)
					}
				}
				if v, ok := ch.RecvOK(c); ok || v != 0 {
					t.Errorf("RecvOK after drain = (%d, %v), want (0, false)", v, ok)
				}
				if v := ch.Recv(c); v != 0 {
					t.Errorf("Recv after drain = %d, want 0", v)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// Closing wakes every suspended (or blocked) receiver empty-handed.
func TestChanCloseWakesReceivers(t *testing.T) {
	for _, mode := range []Mode{LatencyHiding, Blocking} {
		t.Run(mode.String(), func(t *testing.T) {
			var woken atomic.Int64
			_, err := Run(Config{Workers: 4, Mode: mode}, func(c *Ctx) {
				ch := NewChan[int](0)
				futs := make([]*Future, 3)
				for i := range futs {
					futs[i] = c.Spawn(func(c2 *Ctx) {
						if _, ok := ch.RecvOK(c2); !ok {
							woken.Add(1)
						}
					})
				}
				c.Latency(10 * time.Millisecond) // let receivers park
				ch.Close()
				for _, f := range futs {
					f.Await(c)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if woken.Load() != 3 {
				t.Errorf("receivers woken by Close = %d, want 3", woken.Load())
			}
		})
	}
}

// Closing under suspended senders (full bounded channel) unwinds them
// with ErrChanClosed — the error is non-fatal and lands on their futures.
func TestChanCloseUnwindsSuspendedSenders(t *testing.T) {
	_, err := Run(Config{Workers: 2}, func(c *Ctx) {
		ch := NewChan[int](1)
		ch.Send(c, 0) // fill the buffer
		futs := make([]*Future, 2)
		for i := range futs {
			futs[i] = c.Spawn(func(c2 *Ctx) { ch.Send(c2, 99) })
		}
		c.Latency(10 * time.Millisecond) // let senders park on the full chan
		ch.Close()
		for i, f := range futs {
			if got := f.AwaitErr(c); !errors.Is(got, ErrChanClosed) {
				t.Errorf("sender %d AwaitErr = %v, want ErrChanClosed", i, got)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v (stranded senders must not fail the run)", err)
	}
}

// Sending on a closed channel is a programming error: it panics, and the
// panic surfaces from Run as ErrTaskPanic.
func TestChanSendOnClosedPanics(t *testing.T) {
	for _, mode := range []Mode{LatencyHiding, Blocking} {
		t.Run(mode.String(), func(t *testing.T) {
			_, err := Run(Config{Workers: 1, Mode: mode}, func(c *Ctx) {
				ch := NewChan[int](0)
				ch.Close()
				ch.Send(c, 1)
			})
			if !errors.Is(err, ErrTaskPanic) || !strings.Contains(err.Error(), "closed") {
				t.Fatalf("Run err = %v, want ErrTaskPanic mentioning the closed Chan", err)
			}
		})
	}
}

// Closing twice panics, like Go's close.
func TestChanDoubleClosePanics(t *testing.T) {
	_, err := Run(Config{Workers: 1}, func(c *Ctx) {
		ch := NewChan[int](0)
		ch.Close()
		ch.Close()
	})
	if !errors.Is(err, ErrTaskPanic) || !strings.Contains(err.Error(), "close") {
		t.Fatalf("Run err = %v, want ErrTaskPanic mentioning the double close", err)
	}
}

// A receiver suspended on an empty channel is unwound when its scope is
// canceled — receive-after-cancel must not hang on a send that never
// comes.
func TestChanReceiveAfterCancel(t *testing.T) {
	_, err := Run(Config{Workers: 2}, func(c *Ctx) {
		ch := NewChan[int](0)
		cc, cancel := c.WithCancel()
		fut := cc.Spawn(func(c2 *Ctx) { ch.Recv(c2) })
		c.Latency(5 * time.Millisecond) // let the receiver park
		cancel()
		if got := fut.AwaitErr(c); !errors.Is(got, ErrCanceled) {
			t.Errorf("AwaitErr = %v, want ErrCanceled", got)
		}
		// The canceled receiver must be gone from the queue: a later send
		// should buffer (capacity 0 = unbounded), not target its slot.
		ch.Send(c, 7)
		if v, ok := ch.TryRecv(); !ok || v != 7 {
			t.Errorf("TryRecv = (%d, %v), want (7, true)", v, ok)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// Send on a canceled runtime: once the root scope is canceled, a
// suspended sender unwinds with the cancellation cause and the run
// returns ErrCanceled.
func TestChanSendOnCanceledRuntime(t *testing.T) {
	_, err := Run(Config{Workers: 2}, func(c *Ctx) {
		ch := NewChan[int](1)
		ch.Send(c, 0) // fill
		c.Spawn(func(c2 *Ctx) { ch.Send(c2, 1) })
		c.Latency(5 * time.Millisecond) // let the sender park on the full chan
		c.Cancel()
		c.Latency(time.Millisecond) // unwind here
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run err = %v, want ErrCanceled", err)
	}
}

// Cancel racing a channel wakeup: a sender hands a value to a suspended
// receiver at the same moment the receiver's scope is canceled. Exactly
// one wins the claim; either outcome is legal, but the run must never
// hang, double-deliver, or trip the race detector.
func TestChanConcurrentCancelWakeupRace(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		var got atomic.Int64
		_, err := Run(Config{Workers: 4, StallTimeout: time.Second}, func(c *Ctx) {
			ch := NewChan[int](0)
			cc, cancel := c.WithCancel()
			recv := cc.Spawn(func(c2 *Ctx) {
				if v, ok := ch.RecvOK(c2); ok {
					got.Add(int64(v))
				}
			})
			c.Spawn(func(c2 *Ctx) { ch.Send(c2, 1) })
			c.Spawn(func(c2 *Ctx) { cancel() })
			rerr := recv.AwaitErr(c)
			if rerr != nil && !errors.Is(rerr, ErrCanceled) {
				t.Errorf("receiver err = %v, want nil or ErrCanceled", rerr)
			}
			// If the receiver was canceled before the send claimed it, the
			// value stays in the channel; drain so the invariant is visible.
			if rerr != nil {
				if v, ok := ch.TryRecv(); ok {
					got.Add(int64(v))
				}
			}
		})
		if err != nil {
			t.Fatalf("iter %d: Run: %v", iter, err)
		}
		if n := got.Load(); n != 1 && n != 0 {
			t.Fatalf("iter %d: value delivered %d times", iter, n)
		}
	}
}
