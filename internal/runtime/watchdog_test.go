package runtime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lhws/internal/faultpoint"
)

// A wakeup dropped by fault injection would hang the run forever; the
// watchdog must convert it into a structured *StallError naming the
// stuck suspension instead.
func TestWatchdogDetectsLostWakeup(t *testing.T) {
	inj := faultpoint.New(1).Set(faultpoint.ResumeInject, faultpoint.Rule{
		Action: faultpoint.Drop, Rate: 1.0,
	})
	start := time.Now()
	st, err := Run(Config{
		Workers:      2,
		StallTimeout: 100 * time.Millisecond,
		Faults:       inj,
	}, func(c *Ctx) {
		c.Latency(5 * time.Millisecond) // wake dropped: stays suspended
	})
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("run took %v; watchdog did not bound the lost wakeup", wall)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("Run err = %v, want *StallError", err)
	}
	if !errors.Is(err, ErrStalled) {
		t.Errorf("err does not unwrap to ErrStalled")
	}
	if !st.Stalled {
		t.Errorf("Stats.Stalled = false, want true")
	}
	found := false
	for _, w := range se.Waits {
		if w.Site == "latency" {
			found = true
		}
	}
	if !found {
		t.Errorf("StallError.Waits = %v, want a %q suspension", se.Waits, "latency")
	}
	if !strings.Contains(err.Error(), "latency") {
		t.Errorf("diagnostic %q does not name the suspension site", err.Error())
	}
}

// A long legitimate Latency keeps a timer pending; the watchdog must not
// mistake that quiet for a stall.
func TestWatchdogNoFalsePositiveOnLongLatency(t *testing.T) {
	st, err := Run(Config{
		Workers:      2,
		StallTimeout: 50 * time.Millisecond,
	}, func(c *Ctx) {
		c.Latency(300 * time.Millisecond) // 6x the stall timeout
	})
	if err != nil {
		t.Fatalf("Run: %v (armed timer misdiagnosed as stall)", err)
	}
	if st.Stalled {
		t.Errorf("Stats.Stalled = true on a healthy run")
	}
}

// A genuine deadlock — a receive nothing will ever satisfy — must surface
// as a diagnostic naming the channel suspension, not a hang.
func TestWatchdogDiagnosesChanDeadlock(t *testing.T) {
	start := time.Now()
	st, err := Run(Config{
		Workers:      2,
		StallTimeout: 100 * time.Millisecond,
	}, func(c *Ctx) {
		ch := NewChan[int](0)
		fut := c.Spawn(func(c2 *Ctx) { ch.Recv(c2) }) // no sender exists
		fut.Await(c)
	})
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("run took %v; watchdog did not bound the deadlock", wall)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("Run err = %v, want *StallError", err)
	}
	sites := map[string]bool{}
	for _, w := range se.Waits {
		sites[w.Site] = true
	}
	if !sites["chan-recv"] {
		t.Errorf("StallError.Waits = %v, want a %q suspension", se.Waits, "chan-recv")
	}
	if !sites["await"] {
		t.Errorf("StallError.Waits = %v, want an %q suspension", se.Waits, "await")
	}
	if st.TasksCanceled == 0 {
		t.Errorf("TasksCanceled = 0: stall recovery did not unwind the stuck tasks")
	}
}
