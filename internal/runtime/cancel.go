package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/timerwheel"
)

// Cancellation errors. Run returns them (possibly wrapped) when the
// whole execution is canceled; Future.Err carries them for a canceled
// subtree.
var (
	// ErrCanceled reports that a task's cancellation scope was canceled
	// explicitly via the cancel function of WithCancel/WithDeadline or
	// via Ctx.Cancel.
	ErrCanceled = errors.New("runtime: canceled")
	// ErrDeadline reports that a deadline installed with
	// Ctx.WithDeadline or Config.Deadline elapsed.
	ErrDeadline = errors.New("runtime: deadline exceeded")
	// ErrTargetMissed reports that an overload-shedding scheduler
	// (Config.ShedBlownTargets) canceled a subtree whose latency target
	// (WithTarget / WithDeadline) had already passed before the work could
	// be stolen — the subtree could no longer meet its target, so its
	// remaining work was shed instead of occupying workers.
	ErrTargetMissed = errors.New("runtime: latency target missed")
)

// cancelPanic is the unwinding vehicle for cooperative cancellation: a
// task whose scope is canceled panics with this value at its next
// scheduling point, and task.main converts it into the task's error
// instead of treating it as a crash. The type is unexported so user
// code cannot forge one; user recovers that swallow it are tolerated —
// the next scheduling point re-raises.
type cancelPanic struct{ err error }

// cancelScope is a node in the run's cancellation tree. Every task
// carries the scope it was spawned under; WithCancel/WithDeadline
// derive child scopes, so the scope tree follows the fork-join spawn
// tree and canceling a scope cancels exactly that subtree (paper §3's
// computation tree, pruned at a vertex).
//
// Canceling a scope (a) marks it and all descendant scopes, making
// every checkpoint in their tasks unwind; and (b) fires the abort
// callback of every wait registered on them, waking tasks suspended on
// Latency timers, channels, and futures so cancellation never waits on
// a wakeup that may never come.
//
// Lock order: scope.mu is taken before any channel, future, deque, or
// registry mutex (aborts run with scope.mu released), and never the
// other way around.
type cancelScope struct {
	rt     *runtimeState
	parent *cancelScope

	// target is the scope's soft latency target as an absolute wall-clock
	// instant (UnixNano; 0 = none), inherited min-wise down the scope tree
	// from WithTarget / WithDeadline. It is written only during scope
	// construction — before the scope is shared — and read without
	// synchronization afterwards, so the spawn hot path pays one plain
	// field load. Unlike a deadline, a target cancels nothing by itself:
	// it informs deque selection, steal gating, and the TasksLate counter.
	target int64

	// canceled is the lock-free fast path for checkpoints: set to true
	// only after err is published under mu.
	canceled atomic.Bool

	mu       sync.Mutex
	err      error
	children map[*cancelScope]struct{}
	waits    map[any]aborter
	timer    *timerwheel.Timer
	// deadlineWake marks that the scope's deadline timer is counted in
	// rt.pendingWakes (derived scopes only; see setDeadline). Guarded by mu;
	// cleared by whichever of cancel / fireDeadline retires the timer.
	deadlineWake bool
}

// aborter is a registered wait's cancellation callback. waiter implements
// it directly (suspensions register with key == the waiter itself), so the
// hot suspension path registers without allocating; ad-hoc callbacks wrap
// a closure in abortFunc.
type aborter interface {
	abortWait(err error)
}

// abortFunc adapts a closure to aborter (blocking-mode waits, tests).
type abortFunc func(error)

func (f abortFunc) abortWait(err error) { f(err) }

// newCancelScope creates a scope under parent (nil for the root). A
// scope derived from an already-canceled parent is born canceled.
func newCancelScope(rt *runtimeState, parent *cancelScope) *cancelScope {
	s := &cancelScope{rt: rt, parent: parent}
	if parent == nil {
		return s
	}
	// Targets flow down the spawn tree: the parent's target is immutable
	// once the parent scope is shared, so a plain read is safe here.
	s.target = parent.target
	parent.mu.Lock()
	if err := parent.err; err != nil {
		parent.mu.Unlock()
		s.err = err
		s.canceled.Store(true)
		return s
	}
	if parent.children == nil {
		parent.children = make(map[*cancelScope]struct{})
	}
	parent.children[s] = struct{}{}
	parent.mu.Unlock()
	return s
}

// Err returns the cancellation cause, or nil while the scope is live.
func (s *cancelScope) Err() error {
	if !s.canceled.Load() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// cancel marks the scope canceled with cause err, aborts its registered
// waits, and recursively cancels child scopes. Idempotent: only the
// first cause sticks; the return value reports whether this call was the
// one that set it (steal gating counts each shed subtree exactly once).
func (s *cancelScope) cancel(err error) bool {
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return false
	}
	s.err = err
	s.canceled.Store(true)
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
		if s.deadlineWake {
			// The timer will never fire; reclaim its pending-wake credit.
			s.deadlineWake = false
			s.rt.pendingWakes.Add(-1)
		}
	}
	waits := s.waits
	s.waits = nil
	kids := make([]*cancelScope, 0, len(s.children))
	for k := range s.children {
		kids = append(kids, k)
	}
	s.children = nil
	s.mu.Unlock()
	// Canceling the root scope fails the whole run: record the cause so
	// Run returns it even if every task then unwinds cleanly.
	if s.rt != nil && s == s.rt.root {
		s.rt.noteFatal(err)
	}
	for _, a := range waits {
		a.abortWait(err)
	}
	for _, k := range kids {
		k.cancel(err)
	}
	return true
}

// setDeadline arms a wheel timer canceling the scope with ErrDeadline.
// Deadline scopes ride the run's shared timer wheel, so WithDeadline in
// a hot loop costs a slot-list insert, not a runtime timer heap entry;
// and because Run shuts the wheel down after the pool drains, a root
// deadline cannot fire after Run returns — the separate stop-on-exit
// special case the per-scope time.Timer needed is gone.
func (s *cancelScope) setDeadline(d time.Duration) {
	s.mu.Lock()
	if s.err == nil && s.timer == nil {
		// A derived scope's deadline is a guaranteed future wakeup for any
		// task suspended under it, so it must count as a pending wake —
		// otherwise the suspension watchdog can declare a stall (and
		// double-report a *StallError) for a request that was about to be
		// canceled for deadline reasons. The root deadline (Config.Deadline)
		// deliberately does NOT count: it is the backstop above the
		// watchdog, and counting it would blind stall detection for the
		// whole run.
		if s.rt != nil && s != s.rt.root {
			s.deadlineWake = true
			s.rt.pendingWakes.Add(1)
		}
		s.timer = s.rt.wheel.AfterFunc(d, fireDeadline, s)
	}
	s.mu.Unlock()
}

// fireDeadline is the wheel callback for scope deadlines. It runs on the
// wheel goroutine; cancel takes scope locks only, which are above the
// wheel's leaf mutex in the lock order, so a deadline cascading into
// timer Stops cannot deadlock.
func fireDeadline(arg any) {
	s := arg.(*cancelScope)
	s.mu.Lock()
	if s.deadlineWake {
		s.deadlineWake = false
		s.rt.pendingWakes.Add(-1)
	}
	s.mu.Unlock()
	s.cancel(ErrDeadline)
}

// setTarget installs tgt (absolute UnixNano) as the scope's latency
// target, keeping an earlier inherited target if one exists. Must be
// called during construction, before the scope's Ctx is shared.
func (s *cancelScope) setTarget(tgt int64) {
	if s.target == 0 || tgt < s.target {
		s.target = tgt
	}
}

// detach removes the scope from its parent so a finished subtree's
// scope is not retained (and not re-canceled) by ancestors.
func (s *cancelScope) detach() {
	p := s.parent
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.children, s)
	p.mu.Unlock()
}

// addWait registers a wait with a as its cancellation callback. If the
// scope is already canceled it registers nothing and returns the cause;
// the caller then runs its abort path itself, which closes the race
// between suspending and a concurrent cancel.
func (s *cancelScope) addWait(key any, a aborter) error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.waits == nil {
		s.waits = make(map[any]aborter)
	}
	s.waits[key] = a
	s.mu.Unlock()
	return nil
}

// removeWait deregisters a wait after it completed normally. It reports
// whether the key was still registered — i.e. whether the abort callback
// is now guaranteed never to run, which tells a refcounting caller it
// owns the reference the callback would otherwise have consumed.
func (s *cancelScope) removeWait(key any) bool {
	s.mu.Lock()
	_, present := s.waits[key]
	if present {
		delete(s.waits, key)
	}
	s.mu.Unlock()
	return present
}

// WithCancel derives a context whose tasks — everything spawned or
// awaited through it — can be canceled as a group. The returned cancel
// function cancels the subtree with ErrCanceled and releases the
// scope; call it (typically deferred) even if the subtree completes
// normally.
func (c *Ctx) WithCancel() (*Ctx, func()) {
	child := newCancelScope(c.t.rt, c.scope)
	cc := &Ctx{t: c.t, scope: child}
	return cc, func() {
		child.cancel(ErrCanceled)
		child.detach()
	}
}

// WithDeadline derives a context canceled automatically with
// ErrDeadline after d. The returned cancel function releases the scope
// early (with ErrCanceled if it is the first cause); always call it.
//
// A deadline is also a latency target (see WithTarget): the subtree's
// work is preferred by deadline-aware deque selection while it can still
// finish by the deadline, and shed by steal gating once it cannot.
func (c *Ctx) WithDeadline(d time.Duration) (*Ctx, func()) {
	cc, cancel := c.WithCancel()
	cc.scope.setTarget(time.Now().Add(d).UnixNano())
	cc.scope.setDeadline(d)
	return cc, cancel
}

// WithTarget derives a context whose subtree carries a soft latency
// target d from now — the request's deadline in the paper's interactive
// server scenario (§5). Unlike WithDeadline, nothing fires when the
// target passes: the target steers scheduling. Workers prefer ready
// deques holding the earliest-target work, thieves prefer victims whose
// work can still meet its target, and — with Config.ShedBlownTargets —
// steal attempts landing on a subtree whose target already passed cancel
// it with ErrTargetMissed instead of stealing from it. Targets inherit
// min-wise: a child scope never relaxes its parent's target. The
// returned cancel function releases the scope; always call it.
func (c *Ctx) WithTarget(d time.Duration) (*Ctx, func()) {
	cc, cancel := c.WithCancel()
	cc.scope.setTarget(time.Now().Add(d).UnixNano())
	return cc, cancel
}

// Target returns the context's absolute latency target as UnixNano
// wall-clock time, or 0 if none was installed (WithTarget/WithDeadline).
func (c *Ctx) Target() int64 { return c.scope.target }

// Cancel cancels the context's own scope with ErrCanceled. On a root
// context (the one Run passed to the root task) this cancels the whole
// run, and Run returns ErrCanceled.
func (c *Ctx) Cancel() { c.scope.cancel(ErrCanceled) }

// Err returns the context's cancellation cause (ErrCanceled,
// ErrDeadline, a *StallError, or the first task panic), or nil while
// the scope is live. CPU-bound tasks should poll Err at loop
// boundaries: cancellation is cooperative and only unwinds a task at
// its scheduling points.
func (c *Ctx) Err() error { return c.scope.Err() }

// checkpoint unwinds the task if the scope it was spawned under has been
// canceled. Called at every scheduling point (Spawn, Latency, Await,
// channel operations). It deliberately tests the task's own scope, not
// the handle's: a derived handle (WithCancel/WithDeadline) whose scope
// was canceled does not unwind the task here — children spawned through
// it are born canceled and unwind themselves, and a suspension through
// it is aborted by the scope's wait registration. That lets a parent
// spawn into a canceled subtree and still observe the outcome via
// AwaitErr rather than being torn down itself.
func (c *Ctx) checkpoint() {
	if s := c.t.scope; s.canceled.Load() {
		panic(cancelPanic{err: s.Err()})
	}
}
