package runtime

import "time"

// reportKind is what a task tells its current worker when control returns
// to the worker loop.
type reportKind int8

const (
	reportDone reportKind = iota
	reportSuspended
)

// task is a user-level thread. Tasks are backed by goroutines but run
// cooperatively: a task executes only between receiving a worker on its
// resume channel and sending a report, so at most one of {worker loop,
// its current task} is active per worker at any instant. That mutual
// exclusion is what makes owner-side deque operations from task code safe.
type task struct {
	rt      *runtimeState
	fn      func(*Ctx)
	resume  chan *worker    // scheduler → task: run on this worker
	report  chan reportKind // task → scheduler: done or suspended
	started bool            // goroutine launched (owner-role access only)
	home    *rdeque         // deque the task belongs to while suspended
}

func newTask(rt *runtimeState, fn func(*Ctx)) *task {
	return &task{
		rt:     rt,
		fn:     fn,
		resume: make(chan *worker, 1),
		report: make(chan reportKind, 1),
	}
}

// main is the task goroutine body: wait for the first grant, run the user
// function, then report completion. A panic in the user function is
// recorded on the runtime (surfaced as Run's error) instead of crashing
// the process; the task still reports done so its worker continues, and
// its future still completes (Spawn arranges that) so joins unwind.
func (t *task) main() {
	w := <-t.resume
	c := &Ctx{w: w, t: t}
	defer func() {
		if r := recover(); r != nil {
			t.rt.recordPanic(r)
		}
		t.rt.taskDone()
		t.report <- reportDone
	}()
	t.fn(c)
}

// Ctx is a task's handle to the runtime: the capability to spawn, await,
// and perform latency operations. A Ctx is only valid within the task it
// was passed to; nested tasks receive their own Ctx.
type Ctx struct {
	w *worker
	t *task
}

// Worker returns the index of the worker currently running the task
// (useful for instrumentation; it may change across suspension points).
func (c *Ctx) Worker() int { return c.w.id }

// Spawn creates a child task executing f and makes it available for
// parallel execution by pushing it onto the bottom of the current active
// deque. The parent continues running (spawn is non-preemptive: the
// continuation keeps the worker, per §3). The returned Future completes
// when the child finishes.
//
//lhws:owner a running task holds its worker's owner role between resume and report (see task)
func (c *Ctx) Spawn(f func(*Ctx)) *Future {
	fut := newFuture()
	child := newTask(c.t.rt, func(cc *Ctx) {
		// Complete even if f panics, so tasks awaiting this child unwind
		// instead of waiting forever; the panic itself is recorded by
		// task.main and returned from Run.
		defer fut.complete()
		f(cc)
	})
	c.t.rt.liveTasks.Add(1)
	c.t.rt.stats.TasksSpawned.Add(1)
	// The running task holds the owner role of its worker, so pushing onto
	// the active deque is owner-side and safe.
	c.w.active.q.PushBottom(child)
	return fut
}

// Latency models a latency-incurring operation (a remote call, a disk
// read, a user prompt) taking d of wall-clock time but no CPU.
//
// In LatencyHiding mode the task suspends: a timer callback returns it to
// its deque when d elapses and the worker immediately schedules other
// work. In Blocking mode the worker sleeps for the full duration — the
// baseline behaviour the paper's evaluation compares against.
func (c *Ctx) Latency(d time.Duration) {
	if c.t.rt.cfg.Mode == Blocking {
		time.Sleep(d)
		return
	}
	t := c.t
	t.rt.stats.Suspensions.Add(1)
	home := c.w.active
	t.home = home
	home.suspend()
	time.AfterFunc(d, func() { home.addResumed(t) })
	c.yield()
}

// yield returns control to the worker loop, reporting suspension, and
// parks until some worker resumes the task; the Ctx is rebound to the
// resuming worker.
func (c *Ctx) yield() {
	c.t.report <- reportSuspended
	c.w = <-c.t.resume
}
