package runtime

import (
	"fmt"
	"sync/atomic"
	"time"

	"lhws/internal/faultpoint"
)

// reportKind is what a task tells its current worker when control returns
// to the worker loop.
type reportKind int8

const (
	reportDone reportKind = iota
	reportSuspended
)

// task is a user-level thread. Tasks are backed by goroutines but run
// cooperatively: a task executes only between receiving a worker on its
// resume channel and sending a report, so at most one of {worker loop,
// its current task} is active per worker at any instant. That mutual
// exclusion is what makes owner-side deque operations from task code safe.
//
// Task shells are pooled: when a recyclable task reports done, its worker
// returns the shell — struct, resume/report channels, and the parked
// goroutine — to the worker-local free list (overflowing into the
// runtime's sync.Pool), and Ctx.Spawn reuses it for the next child instead
// of paying newTask + go t.main(). The goroutine survives across lives by
// looping in main; it exits when the run closes rt.poolStop.
//
// epoch is deliberately NOT reset between lives: the suspension-claim CAS
// in waiter.wake relies on it increasing monotonically for the lifetime of
// the shell, so a stale wakeup aimed at a previous life can never claim a
// suspension of the current one.
type task struct {
	rt      *runtimeState
	fn      func(*Ctx)
	resume  chan *worker    // scheduler → task: run on this worker
	report  chan reportKind // task → scheduler: done or suspended
	started bool            // goroutine launched (owner-role access only)
	recycle bool            // shell returns to the pool on completion
	home    *rdeque         // deque the task belongs to while suspended
	w       *worker         // current worker; task-goroutine access only
	scope   *cancelScope    // cancellation scope the task was spawned under
	fut     *Future         // completion future (nil for the root task)
	ctx     Ctx             // the task's Ctx, re-initialized each life

	// epoch is the suspension epoch: odd while a suspension is open,
	// advanced by beginWait and by the (unique) claiming wakeup. See
	// waiter. Monotonic across pooled lives — never reset.
	epoch atomic.Uint64
	// wakeErr is set by the claiming waker before re-injection when the
	// wake is a cancellation abort; the resume handoff publishes it.
	wakeErr error
	// extN/extErr carry an external completion's payload from the
	// claiming wake to AwaitExternalOp's return (see waiter).
	extN   int
	extErr error
	// err is the task's outcome, written by its own goroutine before the
	// final report: nil, a cancellation cause, or a wrapped panic.
	err error
}

//lhws:nonblocking
func newTask(rt *runtimeState, fn func(*Ctx)) *task {
	return &task{
		rt:     rt,
		fn:     fn,
		resume: make(chan *worker, 1),
		report: make(chan reportKind, 1),
	}
}

// main is the task goroutine body: each iteration is one task life — wait
// for the first grant, run the current user function, report — after which
// the shell may be re-armed with a new fn by Spawn. Between lives the
// goroutine parks on the resume channel; rt.poolStop is closed when the
// run drains, releasing every parked shell goroutine (no leaks).
func (t *task) main() {
	for {
		select {
		case w := <-t.resume:
			t.w = w
			t.runOne()
		case <-t.rt.poolStop:
			return
		}
	}
}

// runOne runs one life of the shell: the user function, then the
// completion protocol. A panic in the user function is recorded as the
// run's fatal error (surfaced from Run) and unified with cancellation: it
// cancels the root scope so every other task unwinds and the run drains
// instead of hanging or leaking goroutines. A cancelPanic — the
// cooperative-cancellation unwind — becomes the task's error without
// being fatal to the run. Either way the task's future completes (with the
// error) so joins unwind, and the task reports done so its worker
// continues. After the report send the goroutine must not touch any task
// field: the worker may already be recycling the shell into a new life.
func (t *task) runOne() {
	t.ctx = Ctx{t: t, scope: t.scope}
	c := &t.ctx
	defer func() {
		if r := recover(); r != nil {
			if cp, ok := r.(cancelPanic); ok {
				t.err = cp.err
				t.rt.stats.TasksCanceled.Add(1)
			} else {
				t.err = fmt.Errorf("%w: %v", ErrTaskPanic, r)
				t.rt.stats.TasksPanicked.Add(1)
				t.rt.recordFatal(t.err)
			}
		}
		// Goodput accounting: a task that finished cleanly but after its
		// scope's latency target is a late completion — throughput the
		// server scenario's client no longer wants. One plain field read
		// when no target is set.
		if tgt := t.scope.target; tgt != 0 && t.err == nil && time.Now().UnixNano() > tgt {
			t.rt.stats.TasksLate.Add(1)
		}
		if t.fut != nil {
			t.fut.complete(t.err)
		}
		t.rt.taskDone()
		t.report <- reportDone
	}()
	if inj := t.rt.cfg.Faults; inj != nil {
		inj.Inject(faultpoint.TaskBody)
	}
	t.fn(c)
}

// Ctx is a task's handle to the runtime: the capability to spawn, await,
// perform latency operations, and manage cancellation. A Ctx is only valid
// within the task it was passed to; nested tasks receive their own Ctx.
// Derived contexts (WithCancel, WithDeadline) share the task and may be
// used interchangeably with their parent within it.
type Ctx struct {
	t     *task
	scope *cancelScope
}

// Worker returns the index of the worker currently running the task
// (useful for instrumentation; it may change across suspension points).
func (c *Ctx) Worker() int { return c.t.w.id }

// Spawn creates a child task executing f and makes it available for
// parallel execution by pushing it onto the bottom of the current active
// deque. The parent continues running (spawn is non-preemptive: the
// continuation keeps the worker, per §3). The returned Future completes
// when the child finishes; if the child panics or is canceled, the
// Future's Err records why. The child inherits c's cancellation scope.
//
// The child's shell comes from the worker's task free list, so a
// steady-state spawn costs one Future allocation plus the closure.
//
//lhws:owner a running task holds its worker's owner role between resume and report (see task)
func (c *Ctx) Spawn(f func(*Ctx)) *Future {
	return c.spawn(f, newFuture())
}

// spawnPooled is Spawn with a pool-recycled Future. Internal only: the
// caller must consume the returned future with awaitConsume exactly once
// and must not retain or share it afterwards — the future returns to the
// pool when awaitConsume returns. Used by the structured fork-join
// primitives (For) and the hot-path benchmarks, where the future provably
// never escapes its single awaiter.
func (c *Ctx) spawnPooled(f func(*Ctx)) *Future {
	return c.spawn(f, c.t.w.acquireFuture())
}

//lhws:owner a running task holds its worker's owner role between resume and report (see task)
func (c *Ctx) spawn(f func(*Ctx), fut *Future) *Future {
	c.checkpoint()
	child := c.t.w.acquireTask(f)
	child.scope = c.scope
	child.fut = fut
	c.t.rt.liveTasks.Add(1)
	c.t.w.stat.tasksSpawned.Add(1)
	// The running task holds the owner role of its worker, so pushing onto
	// the active deque is owner-side and safe.
	if tgt := c.scope.target; tgt != 0 {
		c.t.w.active.noteTarget(tgt, c.scope)
	}
	c.t.w.active.q.PushBottom(c.t.w.newTaskNode(child))
	return fut
}

// Latency models a latency-incurring operation (a remote call, a disk
// read, a user prompt) taking d of wall-clock time but no CPU.
//
// In LatencyHiding mode the task suspends: a timer callback returns it to
// its deque when d elapses and the worker immediately schedules other
// work. In Blocking mode the worker sleeps for the full duration — the
// baseline behaviour the paper's evaluation compares against.
//
// If the task's scope is canceled, Latency unwinds the task — before
// suspending, or early out of the wait (the timer is stopped).
func (c *Ctx) Latency(d time.Duration) {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		time.Sleep(d)
		return
	}
	c.injectFault(faultpoint.Suspend)
	t := c.t
	home := c.t.w.active
	home.suspend()
	wt := t.beginWait("latency", KindTimer, home, nil)
	t.rt.pendingWakes.Add(1)
	wt.refs.Add(1) // timer reference, consumed by deliver
	wt.timer = t.rt.wheel.AfterFunc(d, latencyFired, wt)
	c.armScope(wt)
	c.finishWait(wt)
}

// latencyFired is the wheel callback for Latency: ten thousand sleeping
// tasks cost one timer goroutine, and expirations sharing a tick land in
// the same drainResumed batch. A package-level function (with the waiter
// as the argument) keeps the arm allocation-free apart from the timer
// entry itself.
//
//lhws:nosuspend
func latencyFired(arg any) {
	wt := arg.(*waiter)
	wt.t.rt.pendingWakes.Add(-1)
	wt.deliver(faultpoint.ResumeInject)
}

// armScope registers the open suspension with the task's cancellation
// scope so a cancel aborts the wait. It owns the scope reference taken in
// beginWait: if the scope is already canceled the abort path (which
// consumes the reference) runs inline.
//
//lhws:nosuspend
func (c *Ctx) armScope(wt *waiter) {
	if err := c.scope.addWait(wt, wt); err != nil {
		wt.abortWait(err)
	}
}

// injectFault runs the task-side fault point p (it may sleep or panic);
// a single nil check when chaos is off. Task-side only — never called
// from the worker loop.
func (c *Ctx) injectFault(p faultpoint.Point) {
	if inj := c.t.rt.cfg.Faults; inj != nil {
		inj.Inject(p)
	}
}

// yield returns control to the worker loop, reporting suspension, and
// parks until some worker resumes the task; the Ctx is rebound to the
// resuming worker.
func (c *Ctx) yield() {
	c.t.report <- reportSuspended
	c.t.w = <-c.t.resume
}
