package runtime

import "sync"

// Chan is a task-level message channel with latency-hiding blocking
// semantics: a task that receives from an empty channel (or sends to a
// full bounded channel) suspends exactly like a task performing a latency
// operation — it is paired with its worker's active deque and resumed by
// the peer's matching operation — so channel waits never stall workers in
// LatencyHiding mode. The paper's introduction names "messaging
// primitives" among the latency-incurring operations the model covers;
// Chan is that primitive for this runtime.
//
// In Blocking mode, a receiver first helps by running tasks from its own
// deque (else a single worker would deadlock against a producer task in
// its own deque) and then blocks the worker on a condition variable;
// sends never block (see sendBlocking), so capacity only exerts
// backpressure under latency hiding.
//
// A Chan must only be used from tasks of a single Run invocation.
type Chan[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond // blocking mode wakeups
	buf      []T
	capacity int // < 1 means unbounded
	recvq    []chanRecvWaiter[T]
	sendq    []chanSendWaiter[T]
}

type chanRecvWaiter[T any] struct {
	t    *task
	slot *T
}

type chanSendWaiter[T any] struct {
	t   *task
	val T
}

// NewChan returns a channel with the given capacity; capacity < 1 means
// unbounded (sends never block).
func NewChan[T any](capacity int) *Chan[T] {
	ch := &Chan[T]{capacity: capacity}
	ch.cond = sync.NewCond(&ch.mu)
	return ch
}

// Len returns the number of buffered values.
func (ch *Chan[T]) Len() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return len(ch.buf)
}

// Send delivers v, suspending (LatencyHiding) or blocking (Blocking) while
// a bounded channel is full.
func (ch *Chan[T]) Send(c *Ctx, v T) {
	if c.t.rt.cfg.Mode == Blocking {
		ch.sendBlocking(v)
		return
	}
	ch.mu.Lock()
	// Direct handoff to a suspended receiver, if any.
	if len(ch.recvq) > 0 {
		w := ch.recvq[0]
		ch.recvq = ch.recvq[1:]
		*w.slot = v
		ch.mu.Unlock()
		w.t.home.addResumed(w.t)
		return
	}
	if ch.capacity < 1 || len(ch.buf) < ch.capacity {
		ch.buf = append(ch.buf, v)
		ch.mu.Unlock()
		return
	}
	// Full: suspend this task until a receiver makes room.
	t := c.t
	home := c.w.active
	t.home = home
	home.suspend()
	ch.sendq = append(ch.sendq, chanSendWaiter[T]{t: t, val: v})
	ch.mu.Unlock()
	t.rt.stats.Suspensions.Add(1)
	c.yield()
}

// Recv takes the next value, suspending (LatencyHiding) or blocking
// (Blocking) while the channel is empty.
func (ch *Chan[T]) Recv(c *Ctx) T {
	if c.t.rt.cfg.Mode == Blocking {
		return ch.recvBlocking(c)
	}
	ch.mu.Lock()
	if v, ok := ch.takeLocked(); ok {
		ch.mu.Unlock()
		return v
	}
	// Empty: suspend until a sender hands a value over.
	t := c.t
	home := c.w.active
	t.home = home
	home.suspend()
	var slot T
	ch.recvq = append(ch.recvq, chanRecvWaiter[T]{t: t, slot: &slot})
	ch.mu.Unlock()
	t.rt.stats.Suspensions.Add(1)
	c.yield()
	return slot
}

// TryRecv takes a value if one is buffered, without suspending.
func (ch *Chan[T]) TryRecv() (T, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.takeLocked()
}

// takeLocked removes the head of the buffer and admits one waiting sender.
func (ch *Chan[T]) takeLocked() (T, bool) {
	var zero T
	if len(ch.buf) == 0 {
		return zero, false
	}
	v := ch.buf[0]
	ch.buf = ch.buf[1:]
	if len(ch.sendq) > 0 {
		s := ch.sendq[0]
		ch.sendq = ch.sendq[1:]
		ch.buf = append(ch.buf, s.val)
		// Resume outside the lock is unnecessary: addResumed takes only
		// the deque lock, which is never held while ch.mu is held.
		s.t.home.addResumed(s.t)
	}
	return v, true
}

// sendBlocking never blocks: in Blocking mode a receiver may be helping —
// running producer tasks inline on its own goroutine — so a sender waiting
// for that very receiver to drain the buffer would deadlock. The baseline
// therefore buffers without bound; capacity-based backpressure is only
// meaningful under latency hiding, where a full send suspends the task
// rather than the worker.
func (ch *Chan[T]) sendBlocking(v T) {
	ch.mu.Lock()
	ch.buf = append(ch.buf, v)
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

//lhws:owner the receiving task holds its worker's owner role and lends it to tasks it runs inline
func (ch *Chan[T]) recvBlocking(c *Ctx) T {
	for {
		ch.mu.Lock()
		if len(ch.buf) > 0 {
			v := ch.buf[0]
			ch.buf = ch.buf[1:]
			ch.cond.Broadcast()
			ch.mu.Unlock()
			return v
		}
		ch.mu.Unlock()
		// Help: run a task from the worker's own deque (the producer may
		// be queued right there); block only when nothing local remains.
		if it, ok := c.w.active.q.PopBottom(); ok {
			c.w.runTask(it.(*task))
			continue
		}
		ch.mu.Lock()
		if len(ch.buf) == 0 {
			ch.cond.Wait()
		}
		ch.mu.Unlock()
	}
}
