package runtime

import (
	"errors"
	"sync"

	"lhws/internal/faultpoint"
)

// ErrChanClosed is the error a suspended sender unwinds with when the
// channel is closed underneath it.
var ErrChanClosed = errors.New("runtime: Chan closed")

// Chan is a task-level message channel with latency-hiding blocking
// semantics: a task that receives from an empty channel (or sends to a
// full bounded channel) suspends exactly like a task performing a latency
// operation — it is paired with its worker's active deque and resumed by
// the peer's matching operation — so channel waits never stall workers in
// LatencyHiding mode. The paper's introduction names "messaging
// primitives" among the latency-incurring operations the model covers;
// Chan is that primitive for this runtime.
//
// In Blocking mode, a receiver first helps by running tasks from its own
// deque (else a single worker would deadlock against a producer task in
// its own deque) and then blocks the worker on a condition variable;
// sends never block (see sendBlocking), so capacity only exerts
// backpressure under latency hiding.
//
// Close follows Go channel semantics: receives on a closed, drained
// channel return immediately (RecvOK reports ok=false), sending on a
// closed channel panics, and closing twice panics. A sender suspended on
// a full channel when Close arrives unwinds with ErrChanClosed. If the
// receiving or sending task's scope is canceled, the operation unwinds
// the task — before suspending, or early out of the wait.
//
// A Chan must only be used from tasks of a single Run invocation.
type Chan[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond // blocking mode wakeups
	buf      []T
	capacity int // < 1 means unbounded
	closed   bool
	recvq    []chanRecvWaiter[T]
	sendq    []chanSendWaiter[T]
}

// chanRecvWaiter is a suspended receiver: the peer (or Close) fills slot
// and ok, then delivers the wakeup through the waiter's claim token.
type chanRecvWaiter[T any] struct {
	wt   *waiter
	slot *T
	ok   *bool
}

// chanSendWaiter is a suspended sender parked with its value; a receiver
// admits the value into the buffer and delivers the wakeup.
type chanSendWaiter[T any] struct {
	wt  *waiter
	val T
}

// NewChan returns a channel with the given capacity; capacity < 1 means
// unbounded (sends never block).
func NewChan[T any](capacity int) *Chan[T] {
	ch := &Chan[T]{capacity: capacity}
	ch.cond = sync.NewCond(&ch.mu)
	return ch
}

// Len returns the number of buffered values.
func (ch *Chan[T]) Len() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return len(ch.buf)
}

// Close closes the channel: buffered values remain receivable, further
// receives on a drained channel report ok=false, further sends panic.
// Suspended receivers are woken empty-handed; suspended senders unwind
// with ErrChanClosed (the abort path, so it stays reliable under fault
// injection). Closing an already-closed Chan panics.
func (ch *Chan[T]) Close() {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		panic("runtime: close of closed Chan")
	}
	ch.closed = true
	recvq := ch.recvq
	ch.recvq = nil
	sendq := ch.sendq
	ch.sendq = nil
	ch.cond.Broadcast()
	ch.mu.Unlock()
	for _, r := range recvq {
		// slot/ok retain their zero values: a close wake.
		r.wt.deliver(faultpoint.ChanWakeup)
	}
	for _, s := range sendq {
		s.wt.wake(ErrChanClosed)
	}
}

// Send delivers v, suspending (LatencyHiding) or blocking (Blocking) while
// a bounded channel is full. Sending on a closed Chan panics.
func (ch *Chan[T]) Send(c *Ctx, v T) {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		ch.sendBlocking(v)
		return
	}
	for {
		ch.mu.Lock()
		if ch.closed {
			ch.mu.Unlock()
			panic("runtime: send on closed Chan")
		}
		// Direct handoff to a suspended receiver, if any.
		if len(ch.recvq) > 0 {
			r := ch.recvq[0]
			ch.recvq = ch.recvq[1:]
			ch.mu.Unlock()
			// Publish value before the wakeup: the resume handoff chain
			// orders these writes before the receiver reads the slot.
			*r.slot = v
			*r.ok = true
			r.wt.deliver(faultpoint.ChanWakeup)
			return
		}
		if ch.capacity < 1 || len(ch.buf) < ch.capacity {
			ch.buf = append(ch.buf, v)
			ch.mu.Unlock()
			return
		}
		ch.mu.Unlock()
		// Full: suspend this task until a receiver makes room.
		c.injectFault(faultpoint.Suspend)
		t := c.t
		home := t.w.active
		home.suspend()
		ch.mu.Lock()
		if ch.closed || len(ch.recvq) > 0 || len(ch.buf) < ch.capacity {
			// The channel changed while we were off the lock; retry the
			// fast paths rather than parking on a stale picture.
			ch.mu.Unlock()
			home.unsuspend()
			continue
		}
		wt := t.beginWait("chan-send", home)
		ch.sendq = append(ch.sendq, chanSendWaiter[T]{wt: wt, val: v})
		ch.mu.Unlock()
		abort := func(err error) {
			ch.mu.Lock()
			for i := range ch.sendq {
				if ch.sendq[i].wt == wt {
					ch.sendq = append(ch.sendq[:i], ch.sendq[i+1:]...)
					break
				}
			}
			ch.mu.Unlock()
			wt.wake(err)
		}
		if err := c.scope.addWait(wt, abort); err != nil {
			abort(err)
		}
		c.finishWait(wt)
		return
	}
}

// Recv takes the next value, suspending (LatencyHiding) or blocking
// (Blocking) while the channel is empty. On a closed, drained channel it
// returns the zero value; use RecvOK to distinguish.
func (ch *Chan[T]) Recv(c *Ctx) T {
	v, _ := ch.RecvOK(c)
	return v
}

// RecvOK is Recv reporting whether the value was a real receive (true)
// or the zero value from a closed, drained channel (false).
func (ch *Chan[T]) RecvOK(c *Ctx) (T, bool) {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		return ch.recvOKBlocking(c)
	}
	var zero T
	ch.mu.Lock()
	if v, ok := ch.takeLocked(); ok {
		ch.mu.Unlock()
		return v, true
	}
	if ch.closed {
		ch.mu.Unlock()
		return zero, false
	}
	ch.mu.Unlock()
	// Empty: suspend until a sender hands a value over (or Close wakes
	// us empty-handed).
	c.injectFault(faultpoint.Suspend)
	t := c.t
	home := t.w.active
	home.suspend()
	ch.mu.Lock()
	if v, ok := ch.takeLocked(); ok {
		ch.mu.Unlock()
		home.unsuspend()
		return v, true
	}
	if ch.closed {
		ch.mu.Unlock()
		home.unsuspend()
		return zero, false
	}
	wt := t.beginWait("chan-recv", home)
	var slot T
	var okv bool
	ch.recvq = append(ch.recvq, chanRecvWaiter[T]{wt: wt, slot: &slot, ok: &okv})
	ch.mu.Unlock()
	abort := func(err error) {
		ch.mu.Lock()
		for i := range ch.recvq {
			if ch.recvq[i].wt == wt {
				ch.recvq = append(ch.recvq[:i], ch.recvq[i+1:]...)
				break
			}
		}
		ch.mu.Unlock()
		wt.wake(err)
	}
	if err := c.scope.addWait(wt, abort); err != nil {
		abort(err)
	}
	c.finishWait(wt)
	return slot, okv
}

// TryRecv takes a value if one is buffered, without suspending.
func (ch *Chan[T]) TryRecv() (T, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.takeLocked()
}

// takeLocked removes the head of the buffer and admits one waiting sender.
func (ch *Chan[T]) takeLocked() (T, bool) {
	var zero T
	if len(ch.buf) == 0 {
		return zero, false
	}
	v := ch.buf[0]
	ch.buf = ch.buf[1:]
	if len(ch.sendq) > 0 {
		s := ch.sendq[0]
		ch.sendq = ch.sendq[1:]
		ch.buf = append(ch.buf, s.val)
		// Wake under ch.mu is fine: deliver takes only leaf locks (the
		// injector's, then the deque's), never ch.mu again.
		s.wt.deliver(faultpoint.ChanWakeup)
	}
	return v, true
}

// sendBlocking never blocks: in Blocking mode a receiver may be helping —
// running producer tasks inline on its own goroutine — so a sender waiting
// for that very receiver to drain the buffer would deadlock. The baseline
// therefore buffers without bound; capacity-based backpressure is only
// meaningful under latency hiding, where a full send suspends the task
// rather than the worker.
func (ch *Chan[T]) sendBlocking(v T) {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		panic("runtime: send on closed Chan")
	}
	ch.buf = append(ch.buf, v)
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

//lhws:owner the receiving task holds its worker's owner role and lends it to tasks it runs inline
func (ch *Chan[T]) recvOKBlocking(c *Ctx) (T, bool) {
	var zero T
	// Register a cancellation nudge: canceling the scope broadcasts the
	// condition variable (under ch.mu, so the wait loop below cannot miss
	// it between its check and cond.Wait).
	key := new(int)
	if err := c.scope.addWait(key, func(error) {
		ch.mu.Lock()
		ch.cond.Broadcast()
		ch.mu.Unlock()
	}); err != nil {
		panic(cancelPanic{err: err})
	}
	defer c.scope.removeWait(key)
	for {
		ch.mu.Lock()
		if len(ch.buf) > 0 {
			v := ch.buf[0]
			ch.buf = ch.buf[1:]
			ch.mu.Unlock()
			return v, true
		}
		if ch.closed {
			ch.mu.Unlock()
			return zero, false
		}
		ch.mu.Unlock()
		c.checkpoint()
		// Help: run a task from the worker's own deque (the producer may
		// be queued right there); block only when nothing local remains.
		if it, ok := c.t.w.active.q.PopBottom(); ok {
			c.t.w.runTask(it.(*task))
			continue
		}
		ch.mu.Lock()
		if len(ch.buf) == 0 && !ch.closed {
			if err := c.scope.Err(); err != nil {
				ch.mu.Unlock()
				panic(cancelPanic{err: err})
			}
			ch.cond.Wait()
		}
		ch.mu.Unlock()
	}
}
