package runtime

import (
	"errors"
	"sync"

	"lhws/internal/faultpoint"
)

// ErrChanClosed is the error a suspended sender unwinds with when the
// channel is closed underneath it.
var ErrChanClosed = errors.New("runtime: Chan closed")

// Chan is a task-level message channel with latency-hiding blocking
// semantics: a task that receives from an empty channel (or sends to a
// full bounded channel) suspends exactly like a task performing a latency
// operation — it is paired with its worker's active deque and resumed by
// the peer's matching operation — so channel waits never stall workers in
// LatencyHiding mode. The paper's introduction names "messaging
// primitives" among the latency-incurring operations the model covers;
// Chan is that primitive for this runtime.
//
// Wakeups are Mesa-style: the peer buffers the value (or frees a slot),
// wakes one parked waiter, and the woken task retries its operation. A
// parked waiter is just its *waiter token — no per-operation slot or box
// — so the suspend/wake cycle allocates nothing in steady state: waiters
// are pooled, and the buffer and queues are head-indexed rings that keep
// their backing arrays across refills and dequeue in O(1) (a pop-front
// copy would make draining an n-deep backlog quadratic).
//
// In Blocking mode, a receiver first helps by running tasks from its own
// deque (else a single worker would deadlock against a producer task in
// its own deque) and then blocks the worker on a condition variable;
// sends never block (see sendBlocking), so capacity only exerts
// backpressure under latency hiding.
//
// Close follows Go channel semantics: receives on a closed, drained
// channel return immediately (RecvOK reports ok=false), sending on a
// closed channel panics, and closing twice panics. A sender suspended on
// a full channel when Close arrives unwinds with ErrChanClosed. If the
// receiving or sending task's scope is canceled, the operation unwinds
// the task — before suspending, or early out of the wait.
//
// A Chan must only be used from tasks of a single Run invocation.
type Chan[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond // blocking mode wakeups
	buf      []T        // buffered values: buf[bufHead:]
	bufHead  int
	capacity int // < 1 means unbounded
	closed   bool
	recvq    waitq // parked receivers, FIFO
	sendq    waitq // parked senders, FIFO
}

// NewChan returns a channel with the given capacity; capacity < 1 means
// unbounded (sends never block).
func NewChan[T any](capacity int) *Chan[T] {
	ch := &Chan[T]{capacity: capacity}
	ch.cond = sync.NewCond(&ch.mu)
	return ch
}

// Len returns the number of buffered values.
func (ch *Chan[T]) Len() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.buffered()
}

func (ch *Chan[T]) buffered() int { return len(ch.buf) - ch.bufHead }

// appendLocked enqueues v at the tail. When the head index has crept up
// and the array is full, the live extent is compacted to the front first,
// so the backing array is reused instead of growing without bound —
// amortized O(1), zero steady-state allocations.
func (ch *Chan[T]) appendLocked(v T) {
	if ch.bufHead > 0 && len(ch.buf) == cap(ch.buf) {
		var zero T
		n := copy(ch.buf, ch.buf[ch.bufHead:])
		for i := n; i < len(ch.buf); i++ {
			ch.buf[i] = zero
		}
		ch.buf = ch.buf[:n]
		ch.bufHead = 0
	}
	ch.buf = append(ch.buf, v)
}

// waitq is a FIFO of parked waiters: a head-indexed ring over one backing
// array, the same shape as the value buffer (O(1) pop, compact before
// grow, array kept across refills).
type waitq struct {
	s    []*waiter
	head int
}

func (q *waitq) empty() bool { return q.head == len(q.s) }

func (q *waitq) push(wt *waiter) {
	if q.head > 0 && len(q.s) == cap(q.s) {
		n := copy(q.s, q.s[q.head:])
		for i := n; i < len(q.s); i++ {
			q.s[i] = nil
		}
		q.s = q.s[:n]
		q.head = 0
	}
	q.s = append(q.s, wt)
}

func (q *waitq) pop() *waiter {
	wt := q.s[q.head]
	q.s[q.head] = nil
	q.head++
	if q.head == len(q.s) {
		q.s = q.s[:0]
		q.head = 0
	}
	return wt
}

// take empties the queue and returns the live waiters (Close path; the
// backing array is handed off with them).
func (q *waitq) take() []*waiter {
	live := q.s[q.head:]
	q.s = nil
	q.head = 0
	return live
}

// remove unlinks wt if still queued (cancellation abort path; rare, so a
// scan-and-shift is fine).
func (q *waitq) remove(wt *waiter) bool {
	for i := q.head; i < len(q.s); i++ {
		if q.s[i] == wt {
			copy(q.s[i:], q.s[i+1:])
			q.s[len(q.s)-1] = nil
			q.s = q.s[:len(q.s)-1]
			if q.head == len(q.s) {
				q.s = q.s[:0]
				q.head = 0
			}
			return true
		}
	}
	return false
}

// Close closes the channel: buffered values remain receivable, further
// receives on a drained channel report ok=false, further sends panic.
// Suspended receivers are woken empty-handed (they retry, observe closed,
// and return ok=false); suspended senders unwind with ErrChanClosed (the
// abort path, so it stays reliable under fault injection). Closing an
// already-closed Chan panics.
func (ch *Chan[T]) Close() {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		panic("runtime: close of closed Chan")
	}
	ch.closed = true
	recvq := ch.recvq.take()
	sendq := ch.sendq.take()
	ch.cond.Broadcast()
	ch.mu.Unlock()
	for _, wt := range recvq {
		wt.deliver(faultpoint.ChanWakeup) // consumes the queue's reference
	}
	for _, wt := range sendq {
		wt.wake(ErrChanClosed)
		wt.release() // the queue's reference
	}
}

// Send delivers v, suspending (LatencyHiding) or blocking (Blocking) while
// a bounded channel is full. Sending on a closed Chan panics.
func (ch *Chan[T]) Send(c *Ctx, v T) {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		ch.sendBlocking(v)
		return
	}
	parked := false
	for {
		ch.mu.Lock()
		if ch.closed {
			ch.mu.Unlock()
			if parked {
				// The channel was closed while this sender was suspended on
				// it (the wake and the Close raced): unwind with the typed
				// error rather than panicking like a fresh send.
				panic(cancelPanic{err: ErrChanClosed})
			}
			panic("runtime: send on closed Chan")
		}
		// Admit the value if there is room — or if a receiver is parked,
		// which implies the buffer is transiently drained; the receiver
		// retries immediately, so occupancy never exceeds capacity for
		// longer than its wakeup.
		if ch.capacity < 1 || ch.buffered() < ch.capacity || !ch.recvq.empty() {
			ch.appendLocked(v)
			var wt *waiter
			if !ch.recvq.empty() {
				wt = ch.recvq.pop()
			}
			ch.mu.Unlock()
			if wt != nil {
				wt.deliver(faultpoint.ChanWakeup) // consumes the queue's reference
			}
			return
		}
		ch.mu.Unlock()
		// Full: suspend this task until a receiver makes room.
		c.injectFault(faultpoint.Suspend)
		t := c.t
		home := t.w.active
		home.suspend()
		ch.mu.Lock()
		if ch.closed || !ch.recvq.empty() || ch.buffered() < ch.capacity {
			// The channel changed while we were off the lock; retry the
			// fast paths rather than parking on a stale picture.
			ch.mu.Unlock()
			home.unsuspend()
			continue
		}
		wt := t.beginWait("chan-send", KindChan, home, ch)
		wt.refs.Add(1) // the sendq entry's event reference
		ch.sendq.push(wt)
		ch.mu.Unlock()
		c.armScope(wt)
		c.finishWait(wt)
		parked = true
	}
}

// Recv takes the next value, suspending (LatencyHiding) or blocking
// (Blocking) while the channel is empty. On a closed, drained channel it
// returns the zero value; use RecvOK to distinguish.
func (ch *Chan[T]) Recv(c *Ctx) T {
	v, _ := ch.RecvOK(c)
	return v
}

// RecvOK is Recv reporting whether the value was a real receive (true)
// or the zero value from a closed, drained channel (false).
func (ch *Chan[T]) RecvOK(c *Ctx) (T, bool) {
	c.checkpoint()
	if c.t.rt.cfg.Mode == Blocking {
		return ch.recvOKBlocking(c)
	}
	var zero T
	// Fast path: one locked attempt with no suspension bookkeeping.
	ch.mu.Lock()
	if v, ok := ch.takeLocked(); ok {
		ch.mu.Unlock()
		return v, true
	}
	if ch.closed {
		ch.mu.Unlock()
		return zero, false
	}
	ch.mu.Unlock()
	// Slow path: suspend until a sender buffers a value and wakes us (we
	// then retry the take — another receiver may legally beat us to it)
	// or Close wakes us empty-handed. Each cycle folds the retry and the
	// park decision into a single critical section.
	t := c.t
	for {
		c.injectFault(faultpoint.Suspend)
		home := t.w.active
		home.suspend()
		ch.mu.Lock()
		if v, ok := ch.takeLocked(); ok {
			ch.mu.Unlock()
			home.unsuspend()
			return v, true
		}
		if ch.closed {
			ch.mu.Unlock()
			home.unsuspend()
			return zero, false
		}
		wt := t.beginWait("chan-recv", KindChan, home, ch)
		wt.refs.Add(1) // the recvq entry's event reference
		ch.recvq.push(wt)
		ch.mu.Unlock()
		c.armScope(wt)
		c.finishWait(wt)
	}
}

// cancelWait implements wakeSource: a scope cancellation removes the
// waiter from whichever queue it is parked on and wakes the task with err
// so it unwinds.
//
//lhws:nosuspend
func (ch *Chan[T]) cancelWait(wt *waiter, err error) {
	ch.mu.Lock()
	removed := ch.recvq.remove(wt) || ch.sendq.remove(wt)
	ch.mu.Unlock()
	wt.wake(err)
	if removed {
		wt.release() // the queue entry's event reference
	}
}

// TryRecv takes a value if one is buffered, without suspending.
func (ch *Chan[T]) TryRecv() (T, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.takeLocked()
}

// takeLocked removes the head of the buffer (O(1): the head index
// advances, the array is kept) and wakes one waiting sender, which now
// has room.
func (ch *Chan[T]) takeLocked() (T, bool) {
	var zero T
	if ch.bufHead == len(ch.buf) {
		return zero, false
	}
	v := ch.buf[ch.bufHead]
	ch.buf[ch.bufHead] = zero
	ch.bufHead++
	if ch.bufHead == len(ch.buf) {
		ch.buf = ch.buf[:0]
		ch.bufHead = 0
	}
	if !ch.sendq.empty() {
		// Wake under ch.mu is fine: deliver takes only leaf locks (the
		// injector's, then the deque's), never ch.mu again.
		ch.sendq.pop().deliver(faultpoint.ChanWakeup) // consumes the queue's reference
	}
	return v, true
}

// sendBlocking never blocks: in Blocking mode a receiver may be helping —
// running producer tasks inline on its own goroutine — so a sender waiting
// for that very receiver to drain the buffer would deadlock. The baseline
// therefore buffers without bound; capacity-based backpressure is only
// meaningful under latency hiding, where a full send suspends the task
// rather than the worker.
func (ch *Chan[T]) sendBlocking(v T) {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		panic("runtime: send on closed Chan")
	}
	ch.appendLocked(v)
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

//lhws:owner the receiving task holds its worker's owner role and lends it to tasks it runs inline
func (ch *Chan[T]) recvOKBlocking(c *Ctx) (T, bool) {
	var zero T
	// Register a cancellation nudge: canceling the scope broadcasts the
	// condition variable (under ch.mu, so the wait loop below cannot miss
	// it between its check and cond.Wait).
	key := new(int)
	if err := c.scope.addWait(key, abortFunc(func(error) {
		ch.mu.Lock()
		ch.cond.Broadcast()
		ch.mu.Unlock()
	})); err != nil {
		panic(cancelPanic{err: err})
	}
	defer c.scope.removeWait(key)
	for {
		ch.mu.Lock()
		if v, ok := ch.takeLocked(); ok {
			ch.mu.Unlock()
			return v, true
		}
		if ch.closed {
			ch.mu.Unlock()
			return zero, false
		}
		ch.mu.Unlock()
		c.checkpoint()
		// Help: run a task from the worker's own deque (the producer may
		// be queued right there); block only when nothing local remains.
		if it, ok := c.t.w.active.q.PopBottom(); ok {
			c.t.w.runTask(c.t.w.resolveItem(it))
			continue
		}
		ch.mu.Lock()
		if ch.buffered() == 0 && !ch.closed {
			if err := c.scope.Err(); err != nil {
				ch.mu.Unlock()
				panic(cancelPanic{err: err})
			}
			ch.cond.Wait()
		}
		ch.mu.Unlock()
	}
}
