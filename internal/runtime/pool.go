package runtime

import "sync"

// This file is the hot-path object recycling layer. Per scheduling
// quantum the runtime used to allocate a task struct, two channels, a
// goroutine stack, a Future (plus its cond), a waiter per suspension, and
// a fresh Chase–Lev deque per successful steal. All of those are now
// recycled through two tiers:
//
//   - worker-local free lists (the fields on worker below), touched only
//     while holding the worker's owner role, so they need no locks;
//   - per-run sync.Pools as overflow/underflow backstops, so shells
//     migrate between workers under skewed spawn/steal patterns.
//
// Pools are per-run (hung off runtimeState) so shells never cross Run
// invocations; parked shell goroutines exit when Run closes rt.poolStop.
//
// Safety notes, in one place:
//
//   - task shells: recycled only after the final reportDone handoff, which
//     happens-before the recycling worker touches the shell. The shell's
//     suspension epoch is never reset, so stale wakeups aimed at a
//     previous life fail their claim CAS (see task, waiter).
//   - futures: recycled only through awaitConsume, whose contract is that
//     the future never escapes its single awaiter. Public Spawn futures
//     are user-visible indefinitely and are never pooled.
//   - waiters: reference-counted; a waiter returns to the pool only when
//     the suspending task, the event source, and the cancellation scope
//     have all dropped their references, so no goroutine can call wake on
//     a recycled waiter.
//   - rdeques: recycled only when idle (empty, no suspended or pending
//     resumed tasks). The Chase–Lev top/bottom indices are deliberately
//     NOT reset: they are monotonic, so a thief still holding a stale
//     pointer to the deque performs an ordinary (correct) steal against
//     its current contents, and index reuse (ABA) is impossible.
//
// Cache capacities bound worker-local retention; overflow falls through
// to the run's sync.Pool. Every recycled type gets a pool backstop: the
// I/O data plane holds thousands of tasks suspended at once (one rdeque,
// node, and resumed-set buffer each at C connections), far beyond what a
// worker-local list can usefully retain, and dropping the overflow to
// the GC made the resume path allocate once per request at high C. A
// sync.Pool scales retention with demand and lets the GC trim it when
// load falls.
const (
	taskCacheCap  = 64
	futCacheCap   = 64
	dqCacheCap    = 64
	nodeCacheCap  = 256
	batchCacheCap = 64
	// sliceCacheCap is deliberately large: resumed-set buffers are held
	// by in-flight injected batches until fully extracted, so with C
	// connections suspended the working set is ~C tiny slices. A dry
	// cache makes every resume append allocate. Boxing slices through a
	// sync.Pool would allocate the interface header each round trip, so
	// the worker-local list is the only tier — at 3 words per entry a
	// deep cap costs ~25KiB per worker.
	sliceCacheCap = 1024
)

// runtimePools are the per-run shared backstops behind the worker-local
// free lists.
type runtimePools struct {
	tasks   sync.Pool // *task (shell + channels + parked goroutine)
	futures sync.Pool // *Future (pooled path only)
	waiters sync.Pool // *waiter
	rdeques sync.Pool // *rdeque (idle; Chase–Lev buffer kept, indices intact)
	nodes   sync.Pool // *pforNode
	batches sync.Pool // *pforBatch
}

// acquireTask returns a shell ready to run fn: from the worker-local free
// list, the run's pool, or freshly allocated. Recycled shells keep their
// channels, goroutine, and epoch. Owner-role access only.
//
//lhws:nonblocking
func (w *worker) acquireTask(fn func(*Ctx)) *task {
	var t *task
	if n := len(w.taskCache); n > 0 {
		t = w.taskCache[n-1]
		w.taskCache[n-1] = nil
		w.taskCache = w.taskCache[:n-1]
	} else if v := w.rt.pools.tasks.Get(); v != nil {
		t = v.(*task)
	} else {
		t = newTask(w.rt, nil)
	}
	t.fn = fn
	t.recycle = true
	return t
}

// releaseTask returns a completed shell to the free list. Called by the
// worker (or an inline helper holding its owner role) after receiving the
// shell's reportDone, which orders all task-side writes before the reset.
//
//lhws:nonblocking
func (w *worker) releaseTask(t *task) {
	t.fn = nil
	t.fut = nil
	t.scope = nil
	t.home = nil
	t.err = nil
	t.wakeErr = nil
	t.extN = 0
	t.extErr = nil
	t.ctx = Ctx{}
	if len(w.taskCache) < taskCacheCap {
		w.taskCache = append(w.taskCache, t)
		return
	}
	w.rt.pools.tasks.Put(t)
}

// acquireFuture returns a reset pooled future (spawnPooled path only).
// The reset locks f.mu, which orders it after any still-unlocking
// complete from the future's previous life.
//
//lhws:nonblocking
func (w *worker) acquireFuture() *Future {
	var f *Future
	if n := len(w.futCache); n > 0 {
		f = w.futCache[n-1]
		w.futCache[n-1] = nil
		w.futCache = w.futCache[:n-1]
	} else if v := w.rt.pools.futures.Get(); v != nil {
		f = v.(*Future)
	} else {
		return newFuture()
	}
	f.mu.Lock() //lhws:allowblock leaf mutex with O(1) critical section, never held across a wait
	f.done = false
	f.err = nil
	f.w0 = nil
	f.mu.Unlock()
	return f
}

// releaseFuture returns a consumed future to the free list; only
// awaitConsume may call it, per the spawnPooled contract.
//
//lhws:nonblocking
func (w *worker) releaseFuture(f *Future) {
	if len(w.futCache) < futCacheCap {
		w.futCache = append(w.futCache, f)
		return
	}
	w.rt.pools.futures.Put(f)
}

// getWaiter takes a waiter from the run's pool. Waiter recycling is
// reference-counted (see waiter.release): Get here may legally return a
// waiter whose previous suspension was claimed long ago, because Put only
// happens at refcount zero.
func (rt *runtimeState) getWaiter() *waiter {
	if v := rt.pools.waiters.Get(); v != nil {
		return v.(*waiter)
	}
	return &waiter{}
}

// getRdeque returns an idle recycled deque (re-owned by w) or a fresh
// one. Owner-role access only.
//
//lhws:nonblocking
func (w *worker) getRdeque() *rdeque {
	if n := len(w.dqCache); n > 0 {
		d := w.dqCache[n-1]
		w.dqCache[n-1] = nil
		w.dqCache = w.dqCache[:n-1]
		d.owner = w
		return d
	}
	if v := w.rt.pools.rdeques.Get(); v != nil {
		d := v.(*rdeque)
		d.owner = w
		return d
	}
	return newRdeque(w)
}

// putRdeque recycles an idle deque dropped by retireActive. The deque's
// bookkeeping is already zero (idle) and its Chase–Lev buffer is kept,
// indices intact (see the safety notes above).
//
//lhws:nonblocking
func (w *worker) putRdeque(d *rdeque) {
	d.resetTarget()
	if len(w.dqCache) < dqCacheCap {
		w.dqCache = append(w.dqCache, d)
		return
	}
	d.owner = nil
	w.rt.pools.rdeques.Put(d)
}

// getSlice returns an empty []*task with recycled capacity for a deque's
// resumed set. Owner-role access only.
//
//lhws:nonblocking
func (w *worker) getSlice() []*task {
	if n := len(w.sliceCache); n > 0 {
		s := w.sliceCache[n-1]
		w.sliceCache[n-1] = nil
		w.sliceCache = w.sliceCache[:n-1]
		return s
	}
	return nil
}

// putSlice recycles a drained resumed-set buffer; entries must already be
// nil'd by the consumer.
//
//lhws:nonblocking
func (w *worker) putSlice(s []*task) {
	if s == nil || cap(s) == 0 {
		return
	}
	if len(w.sliceCache) < sliceCacheCap {
		w.sliceCache = append(w.sliceCache, s[:0])
	}
}

// getNode / putNode / getBatch / putBatch recycle pfor-tree nodes and
// batch headers (see pfor.go). Owner-role access only; a node or batch
// may be released by a different worker than the one that created it
// (after a steal), which only shifts capacity between local caches.
//
//lhws:nonblocking
func (w *worker) getNode() *pforNode {
	if n := len(w.nodeCache); n > 0 {
		nd := w.nodeCache[n-1]
		w.nodeCache[n-1] = nil
		w.nodeCache = w.nodeCache[:n-1]
		return nd
	}
	if v := w.rt.pools.nodes.Get(); v != nil {
		return v.(*pforNode)
	}
	return &pforNode{}
}

//lhws:nonblocking
func (w *worker) putNode(nd *pforNode) {
	nd.t = nil
	nd.b = nil
	if len(w.nodeCache) < nodeCacheCap {
		w.nodeCache = append(w.nodeCache, nd)
		return
	}
	w.rt.pools.nodes.Put(nd)
}

//lhws:nonblocking
func (w *worker) getBatch() *pforBatch {
	if n := len(w.batchCache); n > 0 {
		b := w.batchCache[n-1]
		w.batchCache[n-1] = nil
		w.batchCache = w.batchCache[:n-1]
		return b
	}
	if v := w.rt.pools.batches.Get(); v != nil {
		return v.(*pforBatch)
	}
	return &pforBatch{}
}

//lhws:nonblocking
func (w *worker) putBatch(b *pforBatch) {
	b.tasks = nil
	if len(w.batchCache) < batchCacheCap {
		w.batchCache = append(w.batchCache, b)
		return
	}
	w.rt.pools.batches.Put(b)
}
