package runtime

import (
	"errors"
	"testing"
	"time"
)

// Cancellation must unwind a canceled subtree — including tasks suspended
// on long Latency waits — while the rest of the run completes normally.
func TestWithCancelUnwindsSubtree(t *testing.T) {
	for _, mode := range []Mode{LatencyHiding, Blocking} {
		t.Run(mode.String(), func(t *testing.T) {
			var survived int
			st, err := Run(Config{Workers: 4, Mode: mode}, func(c *Ctx) {
				cc, cancel := c.WithCancel()
				ch := NewChan[int](0)
				doomed := cc.Spawn(func(c2 *Ctx) {
					ch.Recv(c2) // never satisfied: unwound by cancel
				})
				ok := c.Spawn(func(c2 *Ctx) { survived++ })
				cancel()
				if got := doomed.AwaitErr(c); !errors.Is(got, ErrCanceled) {
					t.Errorf("doomed AwaitErr = %v, want ErrCanceled", got)
				}
				if got := ok.AwaitErr(c); got != nil {
					t.Errorf("surviving AwaitErr = %v, want nil", got)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v (a canceled subtree must not fail the run)", err)
			}
			if survived != 1 {
				t.Errorf("surviving task did not run")
			}
			if st.TasksCanceled == 0 {
				t.Errorf("TasksCanceled = 0, want > 0")
			}
		})
	}
}

// A derived deadline must abort a suspended Latency wait early and
// surface ErrDeadline from the child's future.
func TestWithDeadlineAbortsLatency(t *testing.T) {
	start := time.Now()
	_, err := Run(Config{Workers: 2}, func(c *Ctx) {
		cc, cancel := c.WithDeadline(20 * time.Millisecond)
		defer cancel()
		slow := cc.Spawn(func(c2 *Ctx) { c2.Latency(10 * time.Second) })
		if got := slow.AwaitErr(c); !errors.Is(got, ErrDeadline) {
			t.Errorf("AwaitErr = %v, want ErrDeadline", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("run took %v; the deadline did not abort the 10s latency", wall)
	}
}

// Ctx.Err is the polling interface for CPU-bound tasks.
func TestCtxErrPolling(t *testing.T) {
	_, err := Run(Config{Workers: 1}, func(c *Ctx) {
		cc, cancel := c.WithCancel()
		if cc.Err() != nil {
			t.Errorf("Err = %v before cancel, want nil", cc.Err())
		}
		cancel()
		if got := cc.Err(); !errors.Is(got, ErrCanceled) {
			t.Errorf("Err = %v after cancel, want ErrCanceled", got)
		}
		if c.Err() != nil {
			t.Errorf("parent Err = %v, want nil (cancel must not climb the tree)", c.Err())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// Canceling the root context fails the whole run with ErrCanceled.
func TestRootCancelFailsRun(t *testing.T) {
	st, err := Run(Config{Workers: 2}, func(c *Ctx) {
		c.Spawn(func(c2 *Ctx) { c2.Latency(10 * time.Second) })
		c.Cancel()
		c.Latency(time.Millisecond) // checkpoint: unwinds here
		t.Error("root task survived its own Cancel")
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run err = %v, want ErrCanceled", err)
	}
	if st == nil {
		t.Fatal("Run returned nil stats with error")
	}
	if st.TasksCanceled == 0 {
		t.Errorf("TasksCanceled = 0, want > 0")
	}
}

// Config.Deadline bounds the whole run and surfaces ErrDeadline.
func TestConfigDeadline(t *testing.T) {
	start := time.Now()
	st, err := Run(Config{Workers: 2, Deadline: 30 * time.Millisecond}, func(c *Ctx) {
		for i := 0; i < 4; i++ {
			c.Spawn(func(c2 *Ctx) { c2.Latency(10 * time.Second) })
		}
		c.Latency(10 * time.Second)
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Run err = %v, want ErrDeadline", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("run took %v; deadline did not bound it", wall)
	}
	if st.TasksCanceled != 5 {
		t.Errorf("TasksCanceled = %d, want 5", st.TasksCanceled)
	}
}

// Two tasks panic: the first error wins, the other is recorded in
// SuppressedErrors, and both are counted.
func TestFirstErrorWinsOthersSuppressed(t *testing.T) {
	st, err := Run(Config{Workers: 2}, func(c *Ctx) {
		a := c.Spawn(func(*Ctx) { panic("first") })
		b := c.Spawn(func(*Ctx) { panic("second") })
		a.Await(c)
		b.Await(c)
	})
	if !errors.Is(err, ErrTaskPanic) {
		t.Fatalf("Run err = %v, want ErrTaskPanic", err)
	}
	if st.TasksPanicked != 2 {
		t.Errorf("TasksPanicked = %d, want 2", st.TasksPanicked)
	}
	if len(st.SuppressedErrors) != 1 {
		t.Errorf("SuppressedErrors = %q, want exactly one entry", st.SuppressedErrors)
	}
}

// A panic in one task aborts siblings suspended on Latency waits: the
// run drains promptly instead of waiting out their timers.
func TestPanicAbortsSuspendedSiblings(t *testing.T) {
	start := time.Now()
	_, err := Run(Config{Workers: 4}, func(c *Ctx) {
		for i := 0; i < 6; i++ {
			c.Spawn(func(c2 *Ctx) { c2.Latency(10 * time.Second) })
		}
		c.Latency(5 * time.Millisecond)
		panic("boom")
	})
	if !errors.Is(err, ErrTaskPanic) {
		t.Fatalf("Run err = %v, want ErrTaskPanic", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("run took %v; suspended siblings were not aborted", wall)
	}
}

// Blocking-mode waits must also honor cancellation: a receiver blocked on
// a condition variable is nudged awake by the deadline's abort callback.
func TestBlockingModeCancelUnblocksRecv(t *testing.T) {
	start := time.Now()
	_, err := Run(Config{Workers: 2, Mode: Blocking}, func(c *Ctx) {
		cc, cancel := c.WithDeadline(20 * time.Millisecond)
		defer cancel()
		ch := NewChan[int](0)
		stuck := cc.Spawn(func(c2 *Ctx) { ch.Recv(c2) })
		if got := stuck.AwaitErr(c); !errors.Is(got, ErrDeadline) {
			t.Errorf("AwaitErr = %v, want ErrDeadline", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("run took %v; blocking recv ignored the deadline", wall)
	}
}

// Spawning under an already-canceled scope unwinds at the next
// checkpoint: the children inherit the canceled scope and never run
// their bodies past it.
func TestSpawnAfterCancelUnwinds(t *testing.T) {
	var ran bool
	_, err := Run(Config{Workers: 2}, func(c *Ctx) {
		cc, cancel := c.WithCancel()
		cancel()
		fut := cc.Spawn(func(c2 *Ctx) {
			c2.Latency(time.Millisecond)
			ran = true
		})
		if got := fut.AwaitErr(c); !errors.Is(got, ErrCanceled) {
			t.Errorf("AwaitErr = %v, want ErrCanceled", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("child under canceled scope ran past its first checkpoint")
	}
}

// Value.AwaitErr surfaces the child's cancellation with the zero value.
func TestValueAwaitErr(t *testing.T) {
	_, err := Run(Config{Workers: 2}, func(c *Ctx) {
		cc, cancel := c.WithCancel()
		v := SpawnValue(cc, func(c2 *Ctx) int {
			c2.Latency(10 * time.Second)
			return 42
		})
		cancel()
		got, gerr := v.AwaitErr(c)
		if !errors.Is(gerr, ErrCanceled) {
			t.Errorf("AwaitErr err = %v, want ErrCanceled", gerr)
		}
		if got != 0 {
			t.Errorf("AwaitErr value = %d, want zero", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
