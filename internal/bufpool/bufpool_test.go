package bufpool

import (
	"sync"
	"testing"
)

func TestClassSelection(t *testing.T) {
	cases := []struct {
		n    int
		cap_ int
	}{
		{1, 512},
		{512, 512},
		{513, 4 << 10},
		{4 << 10, 4 << 10},
		{4<<10 + 1, 64 << 10},
		{64 << 10, 64 << 10},
		{64<<10 + 1, 1 << 20},
		{1 << 20, 1 << 20},
	}
	for _, c := range cases {
		pb := Get(c.n)
		if pb.Len() != c.n {
			t.Fatalf("Get(%d): len %d", c.n, pb.Len())
		}
		if pb.Cap() != c.cap_ {
			t.Fatalf("Get(%d): cap %d, want class size %d", c.n, pb.Cap(), c.cap_)
		}
		pb.Release()
	}
}

func TestOversizeIsGCOwned(t *testing.T) {
	pb := Get(MaxPooled + 1)
	if pb.Len() != MaxPooled+1 {
		t.Fatalf("len %d", pb.Len())
	}
	if pb.class >= 0 {
		t.Fatalf("oversize buffer got class %d, want GC-owned", pb.class)
	}
	if !pb.Release() {
		t.Fatal("sole holder's Release reported non-final")
	}
}

func TestRecycleReuse(t *testing.T) {
	// A released buffer should come back from the pool: same backing
	// array, full requested length. sync.Pool gives no hard guarantee,
	// but with no GC pressure in between the round-trip is reliable.
	pb := Get(100)
	p0 := &pb.Bytes()[0]
	pb.SetLen(3)
	pb.Release()
	pb2 := Get(200)
	if pb2.Len() != 200 {
		t.Fatalf("recycled Get len %d, want 200", pb2.Len())
	}
	if &pb2.Bytes()[0] != p0 {
		t.Log("recycled Get returned a different backing array (pool drop; allowed)")
	}
	pb2.Release()
}

func TestRetainRelease(t *testing.T) {
	pb := Get(64)
	pb.Retain()
	if pb.Release() {
		t.Fatal("first of two releases reported final")
	}
	if !pb.Release() {
		t.Fatal("last release did not report final")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	pb := Get(MaxPooled + 1) // oversize: no pool interference with refs
	pb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	pb.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	pb := Get(MaxPooled + 1)
	pb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final Release did not panic")
		}
	}()
	pb.Retain()
}

func TestSetLenBounds(t *testing.T) {
	pb := Get(10)
	defer pb.Release()
	pb.SetLen(512) // up to class capacity is fine
	pb.SetLen(0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetLen beyond capacity did not panic")
		}
	}()
	pb.SetLen(513)
}

func TestSteadyStateAllocFree(t *testing.T) {
	// Warm the class, then gate: a Get/Release cycle must not allocate.
	for i := 0; i < 8; i++ {
		Get(4096).Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		pb := Get(4096)
		pb.Bytes()[0] = 1
		pb.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Release allocates %v/op, want 0", allocs)
	}
}

func TestConcurrentChurn(t *testing.T) {
	// Hammer the pool from many goroutines; -race validates the
	// refcount discipline and that no buffer is visible to two owners.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pb := Get(1 << (uint(i%8) + 4))
				b := pb.Bytes()
				b[0], b[len(b)-1] = seed, seed
				if i%3 == 0 {
					pb.Retain()
					if b[0] != seed || b[len(b)-1] != seed {
						panic("buffer visible to another owner")
					}
					pb.Release()
				}
				pb.Release()
			}
		}(byte(g))
	}
	wg.Wait()
}
