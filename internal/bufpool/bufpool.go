// Package bufpool is the I/O data plane's buffer allocator: a
// size-classed pool of reference-counted byte buffers, built so the hot
// read/write paths of lhws/internal/io run without per-operation
// allocation and hand buffers between parties — bridge, task, a
// connection's unread stash — by moving a pointer instead of copying
// bytes.
//
// Ownership is reference counting, not scoping: Get returns a buffer
// holding one reference owned by the caller; Retain adds a reference
// for every additional holder; Release drops one and recycles the
// buffer into its class pool when the count reaches zero. The zero-copy
// handoffs in the I/O layer (readiness → task, canceled read → stash →
// successor read) are reference transfers: the sender simply stops
// calling Release and the receiver takes over the obligation, so a
// buffer crossing the cancel window is never duplicated and never
// double-freed — see DESIGN.md §13 for the ownership rules across that
// window.
//
// Everything here is lock-free (per-class sync.Pool plus one atomic
// refcount per buffer), so pool calls are safe from scheduler hot paths
// and backend goroutines alike — the noblock analyzer's may-block
// summary sees straight through them. The refcount word itself is
// protocol state: only Retain/Release may touch it (the dequeowner
// analyzer enforces this, the same way it guards the deque's ordering
// fields).
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// classSizes are the buffer capacities the pool hands out, spanning the
// I/O layer's real demand: tiny framed requests (512B), page-ish reads
// (4KiB), bulk transfers (64KiB), and huge request bodies (1MiB).
// Requests above the largest class fall through to a plain allocation
// that the GC owns (class < 0): rare by construction, and Release
// simply drops them.
var classSizes = [...]int{512, 4 << 10, 64 << 10, 1 << 20}

// NumClasses is the number of pooled size classes.
const NumClasses = len(classSizes)

// MaxPooled is the largest request the pool serves from a class;
// anything bigger is GC-owned.
const MaxPooled = 1 << 20

// pools holds one sync.Pool per class. Each pooled value is a *Buf
// whose backing array was allocated once and travels with it across
// lives, so a steady-state Get/Release cycle allocates nothing.
var pools [NumClasses]sync.Pool

// stats counts pool traffic for tests and the throughput benchmark's
// recycling gate. Sharded padding is overkill here — these are not on
// the per-byte path, only per-buffer.
var stats struct {
	gets     atomic.Uint64 // Get calls served (any class)
	news     atomic.Uint64 // Get calls that had to allocate a fresh buffer
	puts     atomic.Uint64 // buffers recycled into a class pool
	oversize atomic.Uint64 // Get calls above MaxPooled (GC-owned)
}

// Buf is one pooled buffer: a payload slice (len = bytes in use, cap =
// the class size) plus the reference count that decides when the
// backing array returns to its pool.
type Buf struct {
	b     []byte
	class int32        // index into classSizes; -1 means GC-owned oversize
	refs  atomic.Int32 // holders; 0 only while resting in the pool
}

// classFor returns the smallest class index whose size fits n, or -1
// when n exceeds every class.
func classFor(n int) int {
	for i, sz := range classSizes {
		if n <= sz {
			return i
		}
	}
	return -1
}

// Get returns a buffer with len n and one reference owned by the
// caller. The backing capacity is the containing size class, so a
// caller that reads short can SetLen down without losing the room to
// grow back.
//
// Get runs on worker hot paths and bridge goroutines alike, so it must
// stay non-parking: atomics, sync.Pool fast paths, and at worst an
// allocation.
//
//lhws:nonblocking
func Get(n int) *Buf {
	stats.gets.Add(1)
	ci := classFor(n)
	if ci < 0 {
		stats.oversize.Add(1)
		pb := &Buf{b: make([]byte, n), class: -1}
		pb.refs.Store(1)
		return pb
	}
	if v := pools[ci].Get(); v != nil {
		pb := v.(*Buf)
		pb.b = pb.b[:n]
		pb.refs.Store(1)
		return pb
	}
	stats.news.Add(1)
	pb := &Buf{b: make([]byte, n, classSizes[ci]), class: int32(ci)}
	pb.refs.Store(1)
	return pb
}

// Bytes returns the payload. The slice is valid until the last
// reference is released; holders must not use it after their Release.
func (pb *Buf) Bytes() []byte { return pb.b }

// Len returns the payload length.
func (pb *Buf) Len() int { return len(pb.b) }

// Cap returns the backing capacity (the class size).
func (pb *Buf) Cap() int { return cap(pb.b) }

// SetLen reslices the payload to n bytes within the backing capacity —
// how a reader records that only n of the requested bytes arrived.
func (pb *Buf) SetLen(n int) {
	if n < 0 || n > cap(pb.b) {
		panic(fmt.Sprintf("bufpool: SetLen(%d) outside capacity %d", n, cap(pb.b)))
	}
	pb.b = pb.b[:n]
}

// Retain adds a reference for a new holder. Calling it on a released
// buffer is a use-after-free and panics.
//
//lhws:nonblocking
func (pb *Buf) Retain() {
	if pb.refs.Add(1) <= 1 {
		panic("bufpool: Retain of a released buffer")
	}
}

// Release drops the caller's reference; the last release recycles the
// buffer into its class pool (oversize buffers fall to the GC). It
// reports whether this call was the final one. Releasing below zero —
// a double free — panics rather than corrupting a recycled buffer's
// next life.
//
//lhws:nonblocking
func (pb *Buf) Release() bool {
	refs := pb.refs.Add(-1)
	if refs > 0 {
		return false
	}
	if refs < 0 {
		panic("bufpool: Release of a released buffer (double free)")
	}
	if pb.class >= 0 {
		stats.puts.Add(1)
		pb.b = pb.b[:cap(pb.b)]
		pools[pb.class].Put(pb)
	}
	return true
}

// Stats reports cumulative pool traffic: Get calls, fresh allocations
// among them, and buffers recycled. gets-news is the number of Gets
// served by recycling; tests and the throughput benchmark gate on it.
func Stats() (gets, news, puts uint64) {
	return stats.gets.Load(), stats.news.Load(), stats.puts.Load()
}
