package timerwheel

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestScaleMillionTimers is the wheel's scale gate: a million pending
// deadlines armed, half of them canceled, and exact-once delivery of
// the rest. This is the shape the I/O data plane produces — every
// in-flight operation with a per-op timeout is one wheel entry, almost
// all of which are stopped (the op completed) before they fire — so the
// properties that matter are: arming stays cheap as the pending
// population grows, Stop before fire always wins, and no timer is ever
// fired twice or dropped.
func TestScaleMillionTimers(t *testing.T) {
	if testing.Short() {
		t.Skip("million-timer scale test skipped in -short")
	}
	const (
		n      = 1 << 20 // 1,048,576
		spread = 200 * time.Millisecond
	)
	w := New(2 * time.Millisecond)
	defer w.Shutdown()

	fired := make([]atomic.Bool, n)
	var fires, dups atomic.Int64
	cb := func(_ *Timer, arg any) {
		i := arg.(int)
		if !fired[i].CompareAndSwap(false, true) {
			dups.Add(1)
			return
		}
		fires.Add(1)
	}

	// Arm everything, spread across the wheel's horizon so the firing
	// load is distributed over many ticks rather than one stampede.
	// Sample arm cost for an early and a late batch along the way: with
	// a million timers pending, arming must still be a constant-time
	// list push, not a scan of the pending population.
	timers := make([]*Timer, n)
	const batch = 1 << 16
	t0 := time.Now()
	for i := 0; i < batch; i++ {
		d := spread/4 + time.Duration(i%1024)*spread/4096
		timers[i] = w.AfterFuncT(d, cb, i)
	}
	early := time.Since(t0)
	for i := batch; i < n-batch; i++ {
		d := spread/4 + time.Duration(i%1024)*spread/4096
		timers[i] = w.AfterFuncT(d, cb, i)
	}
	t1 := time.Now()
	for i := n - batch; i < n; i++ {
		d := spread/4 + time.Duration(i%1024)*spread/4096
		timers[i] = w.AfterFuncT(d, cb, i)
	}
	late := time.Since(t1)

	// O(1)-ish arm: the late batch arms into a wheel already holding
	// ~a million entries. Allow generous slop for cache effects and GC
	// pauses — what this catches is a complexity regression (arming
	// becoming O(pending)), which would blow past 20x immediately.
	if early > time.Millisecond && late > 20*early {
		t.Errorf("arm cost grew with pending population: first %d arms took %v, last %d took %v",
			batch, early, batch, late)
	}

	// Cancel every other timer. Stop's report decides the expected fire
	// count: a Stop that loses the race to the fire path returns false
	// and the fire is legitimate.
	stopped := 0
	for i := 0; i < n; i += 2 {
		if timers[i].Stop() {
			stopped++
		}
	}

	deadline := time.Now().Add(spread + 3*time.Second)
	want := int64(n - stopped)
	for fires.Load() < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := fires.Load(); got != want {
		t.Fatalf("fires = %d, want %d (n=%d, stopped=%d): timers missed", got, want, n, stopped)
	}
	if d := dups.Load(); d != 0 {
		t.Fatalf("%d timers fired more than once", d)
	}
	// A successfully stopped timer firing anyway would push fires past
	// want (caught above as a count mismatch), so stopped-means-silent
	// is already asserted; give stragglers one more beat to trip it.
	time.Sleep(20 * time.Millisecond)
	if got := fires.Load(); got != want {
		t.Fatalf("late fires after settle: %d, want %d", got, want)
	}
}

// TestScaleRearmChurn models the steady-state I/O pattern at rate: a
// fixed population of "ops" that each arm a deadline, get stopped
// (the op completed in time), and immediately re-arm — a million
// arm/stop cycles total. None of these deadlines may ever fire with
// their cycle already stopped, and the wheel must end the run empty
// enough for Shutdown to return promptly.
func TestScaleRearmChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn scale test skipped in -short")
	}
	const (
		pop    = 1 << 10
		cycles = 1 << 10 // pop*cycles = ~1M arm/stop pairs
	)
	w := New(time.Millisecond)
	defer w.Shutdown()

	var late atomic.Int64
	type armRec struct {
		stopped atomic.Bool
	}
	cb := func(_ *Timer, arg any) {
		// Firing a deadline whose Stop already reported success is
		// exactly the "canceled deadline fires its op" bug. A fire whose
		// Stop lost the race (returned false) is legal and leaves
		// stopped unset, so this never false-positives.
		if arg.(*armRec).stopped.Load() {
			late.Add(1)
		}
	}

	for g := 0; g < cycles; g++ {
		for i := 0; i < pop; i++ {
			rec := &armRec{}
			tm := w.AfterFuncT(50*time.Millisecond, cb, rec)
			// The op "completes in time": stop the deadline. Stop
			// returning true is the wheel's promise the callback will
			// never run for this arm.
			if tm.Stop() {
				rec.stopped.Store(true)
			}
		}
	}
	// Let any wrongly-surviving timers reach their deadline.
	time.Sleep(80 * time.Millisecond)
	if l := late.Load(); l != 0 {
		t.Fatalf("%d deadlines fired after their op was completed and Stop succeeded", l)
	}
}
