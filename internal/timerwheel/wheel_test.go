package timerwheel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFireOnce(t *testing.T) {
	w := New(100 * time.Microsecond)
	defer w.Shutdown()
	ch := make(chan any, 1)
	w.AfterFunc(time.Millisecond, func(a any) { ch <- a }, "payload")
	select {
	case got := <-ch:
		if got != "payload" {
			t.Fatalf("arg = %v, want payload", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestNeverEarly(t *testing.T) {
	w := New(200 * time.Microsecond)
	defer w.Shutdown()
	const d = 5 * time.Millisecond
	start := time.Now()
	done := make(chan time.Duration, 1)
	w.AfterFunc(d, func(any) { done <- time.Since(start) }, nil)
	if got := <-done; got < d {
		t.Fatalf("fired after %v, want >= %v", got, d)
	}
}

func TestStopPreventsFire(t *testing.T) {
	w := New(500 * time.Microsecond)
	defer w.Shutdown()
	var fired atomic.Int32
	tm := w.AfterFunc(20*time.Millisecond, func(any) { fired.Add(1) }, nil)
	if !tm.Stop() {
		t.Fatal("Stop = false on an armed timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
	time.Sleep(40 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("stopped timer fired %d times", n)
	}
}

func TestStopAfterFire(t *testing.T) {
	w := New(100 * time.Microsecond)
	defer w.Shutdown()
	ch := make(chan struct{})
	tm := w.AfterFunc(time.Millisecond, func(any) { close(ch) }, nil)
	<-ch
	if tm.Stop() {
		t.Fatal("Stop = true after the callback ran")
	}
}

// Many timers across many slots and revolutions: every one fires exactly
// once, none early, including durations larger than a full wheel
// revolution (numSlots ticks).
func TestManyTimersAllRevolutions(t *testing.T) {
	const tick = 50 * time.Microsecond
	w := New(tick)
	defer w.Shutdown()
	const n = 2000
	var fired atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		// Spread deadlines from sub-tick to ~3 revolutions out.
		d := time.Duration(i) * (3 * numSlots / n) * tick / 3
		want := start.Add(d)
		w.AfterFunc(d, func(any) {
			if time.Now().Before(want) {
				t.Errorf("timer %d fired early", i)
			}
			fired.Add(1)
			wg.Done()
		}, nil)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d timers fired", fired.Load(), n)
	}
}

func TestConcurrentArmStop(t *testing.T) {
	w := New(100 * time.Microsecond)
	defer w.Shutdown()
	var fired, stopped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tm := w.AfterFunc(time.Duration(i%7)*200*time.Microsecond,
					func(any) { fired.Add(1) }, nil)
				if i%2 == 0 {
					if tm.Stop() {
						stopped.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Every armed timer is either stopped or fires; wait for the rest.
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load()+stopped.Load() < 8*500 {
		if time.Now().After(deadline) {
			t.Fatalf("fired %d + stopped %d != %d", fired.Load(), stopped.Load(), 8*500)
		}
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load() + stopped.Load(); got != 8*500 {
		t.Fatalf("fired+stopped = %d, want %d (double fire or double stop)", got, 8*500)
	}
}

// Shutdown guarantees no callback runs after it returns, and abandons
// armed timers without firing them.
func TestShutdownQuiesces(t *testing.T) {
	w := New(100 * time.Microsecond)
	var running atomic.Bool
	var after atomic.Bool
	for i := 0; i < 64; i++ {
		w.AfterFunc(time.Duration(i)*100*time.Microsecond, func(any) {
			running.Store(true)
			time.Sleep(50 * time.Microsecond)
			running.Store(false)
			if after.Load() {
				t.Error("callback ran after Shutdown returned")
			}
		}, nil)
	}
	time.Sleep(2 * time.Millisecond)
	w.Shutdown()
	after.Store(true)
	if running.Load() {
		t.Fatal("callback still running when Shutdown returned")
	}
	// Arm-after-shutdown never fires and reports unstoppable.
	tm := w.AfterFunc(time.Millisecond, func(any) { t.Error("fired after shutdown") }, nil)
	if tm.Stop() {
		t.Fatal("Stop = true on a timer armed after Shutdown")
	}
	time.Sleep(5 * time.Millisecond)
	w.Shutdown() // idempotent
}

// A callback may re-arm and stop timers on its own wheel without
// deadlocking (fires happen outside the wheel mutex).
func TestReentrantCallbacks(t *testing.T) {
	w := New(100 * time.Microsecond)
	defer w.Shutdown()
	done := make(chan struct{})
	var hops int
	var hop func(any)
	hop = func(any) {
		hops++
		if hops == 5 {
			close(done)
			return
		}
		tm := w.AfterFunc(time.Hour, func(any) {}, nil)
		tm.Stop()
		w.AfterFunc(200*time.Microsecond, hop, nil)
	}
	w.AfterFunc(200*time.Microsecond, hop, nil)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("chain stalled after %d hops", hops)
	}
}
