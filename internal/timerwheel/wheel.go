// Package timerwheel is a hashed timer wheel: many timers, one goroutine.
//
// The latency-hiding runtime arms a timer per suspension (every Latency
// call, every WithDeadline scope, every fault-delayed wakeup). With
// time.AfterFunc each armed timer is an entry in the Go runtime's timer
// heap and — worse for this workload — each *fire* is a separate timer
// goroutine wakeup. Ten thousand tasks sleeping on Latency is ten
// thousand heap entries churned per round. A hashed wheel (Varghese &
// Lauck) makes arm and stop O(1) list operations under one mutex and
// fires every timer due in a tick from a single goroutine, which is also
// what lets the runtime batch the resulting re-injections: timers firing
// in the same tick land in the same drainResumed batch and re-enter the
// scheduler as one pfor-tree deque item.
//
// Precision is deliberately coarse: a timer fires within one tick after
// its deadline (default 250µs). Callers that need sub-tick precision are
// modelling something other than I/O latency.
package timerwheel

import (
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultTick is the default wheel granularity. Fine enough that a
	// 1ms Latency overshoots by at most 25%, coarse enough that an idle
	// wheel waking every tick costs well under 1% of one core.
	DefaultTick = 250 * time.Microsecond
	// numSlots is the wheel size (a power of two). Timers further out
	// than numSlots ticks simply stay in their slot across revolutions;
	// the per-visit "due yet?" check costs one comparison.
	numSlots = 256
)

// Timer states: armed until exactly one of Stop or the fire loop claims
// it with a CAS.
const (
	tArmed int32 = iota
	tFired
	tStopped
)

// Timer is one scheduled callback. Timers are single-shot and not
// recycled: a stopped or fired Timer is garbage.
type Timer struct {
	wheel      *Wheel
	next, prev *Timer // intrusive slot list; guarded by wheel.mu
	linked     bool   // on a slot list; guarded by wheel.mu
	when       int64  // absolute tick of expiry
	state      atomic.Int32
	f          func(any)
	ft         func(*Timer, any) // set instead of f by AfterFuncT
	arg        any
}

// Stop cancels the timer. It reports true if the timer was still armed —
// the callback will never run; false means the callback has fired or is
// firing concurrently (Stop does not wait for it, matching time.Timer).
func (t *Timer) Stop() bool {
	if !t.state.CompareAndSwap(tArmed, tStopped) {
		return false
	}
	w := t.wheel
	w.mu.Lock()
	if t.linked {
		w.unlink(t)
		w.armed--
	}
	w.mu.Unlock()
	return true
}

// Wheel is a hashed timer wheel. The zero value is not usable; construct
// with New. One goroutine, started lazily on the first AfterFunc, drives
// all timers; it parks when no timer is armed and exits on Shutdown.
type Wheel struct {
	tick  time.Duration
	start time.Time // tick origin

	mu      sync.Mutex
	slots   [numSlots]*Timer // heads of the per-slot lists
	cur     int64            // next tick to scan (all earlier ticks fired)
	armed   int              // timers currently linked
	running bool             // the run goroutine exists
	stopped bool

	// wake nudges the run goroutine: a new arm while it parks (or sleeps
	// a full tick) and the shutdown signal. Buffered so arming never
	// blocks; a spurious token only costs one extra scan.
	wake chan struct{}
	// exited is closed by the run goroutine on the way out so Shutdown
	// can guarantee no callback runs after it returns.
	exited chan struct{}
}

// New returns a wheel with the given tick granularity (DefaultTick if
// tick <= 0).
func New(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Wheel{
		tick:   tick,
		start:  time.Now(),
		wake:   make(chan struct{}, 1),
		exited: make(chan struct{}),
	}
}

// now returns the current absolute tick.
func (w *Wheel) now() int64 { return int64(time.Since(w.start) / w.tick) }

// AfterFunc schedules f(arg) to run once, no earlier than d from now and
// within roughly one tick after. f runs on the wheel goroutine and must
// not block it for long; it may arm and stop other timers on the same
// wheel. Taking f and arg separately (instead of a closure) keeps the
// hot callers allocation-free: they pass a package-level function and
// the waiter they already hold.
func (w *Wheel) AfterFunc(d time.Duration, f func(any), arg any) *Timer {
	return w.schedule(&Timer{wheel: w, f: f, arg: arg}, d)
}

// AfterFuncT is AfterFunc for callbacks that need the timer's identity:
// f receives the *Timer being fired alongside arg. Callers that re-arm
// deadlines on a recycled object (the I/O layer's per-op deadlines) use
// this to tell a stale fire from the current one — the callback compares
// the fired timer against the one currently stored on the object and
// returns if they differ.
func (w *Wheel) AfterFuncT(d time.Duration, f func(*Timer, any), arg any) *Timer {
	return w.schedule(&Timer{wheel: w, ft: f, arg: arg}, d)
}

func (w *Wheel) schedule(t *Timer, d time.Duration) *Timer {
	// Round up: a timer must never fire early, and a 0-duration timer
	// still waits for the next tick boundary.
	ticks := int64((d + w.tick - 1) / w.tick)
	if ticks < 1 {
		ticks = 1
	}
	w.mu.Lock()
	if w.stopped {
		// Arming after Shutdown: the timer will never fire. Mark it
		// stopped so Stop reports false and callers' accounting (which
		// keys off Stop's return) treats it as already consumed.
		w.mu.Unlock()
		t.state.Store(tStopped)
		return t
	}
	t.when = w.now() + ticks
	if t.when < w.cur {
		t.when = w.cur // never schedule into an already-scanned tick
	}
	w.link(t)
	w.armed++
	starting := !w.running
	if starting {
		w.running = true
	}
	w.mu.Unlock()
	if starting {
		go w.run()
	} else {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return t
}

// Shutdown stops the wheel and waits for the run goroutine to exit. On
// return no timer callback is running or will ever run again; armed
// timers are abandoned without firing. Arming after Shutdown is a no-op.
func (w *Wheel) Shutdown() {
	w.mu.Lock()
	if w.stopped {
		started := w.running
		w.mu.Unlock()
		if started {
			<-w.exited
		}
		return
	}
	w.stopped = true
	started := w.running
	w.mu.Unlock()
	if !started {
		return
	}
	select {
	case w.wake <- struct{}{}:
	default:
	}
	<-w.exited
}

// link inserts t at the head of its slot's list. Caller holds mu.
func (w *Wheel) link(t *Timer) {
	head := &w.slots[t.when&(numSlots-1)]
	t.next = *head
	if t.next != nil {
		t.next.prev = t
	}
	t.prev = nil
	t.linked = true
	*head = t
}

// unlink removes t from its slot's list. Caller holds mu.
func (w *Wheel) unlink(t *Timer) {
	head := &w.slots[t.when&(numSlots-1)]
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		*head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev = nil, nil
	t.linked = false
}

// run is the wheel goroutine: scan the slots the clock has passed, fire
// what is due, sleep to the next tick boundary; park entirely while no
// timer is armed. Callbacks run outside the wheel mutex so they may
// freely Stop or arm other timers.
func (w *Wheel) run() {
	defer close(w.exited)
	sleep := time.NewTimer(time.Hour)
	defer sleep.Stop()
	var due []*Timer
	for {
		w.mu.Lock()
		if w.stopped {
			w.mu.Unlock()
			return
		}
		now := w.now()
		due = due[:0]
		for w.cur <= now {
			for t := w.slots[w.cur&(numSlots-1)]; t != nil; {
				next := t.next
				if t.when <= w.cur {
					w.unlink(t)
					w.armed--
					due = append(due, t)
				}
				t = next
			}
			w.cur++
		}
		idle := w.armed == 0
		w.mu.Unlock()

		for i, t := range due {
			due[i] = nil
			if t.state.CompareAndSwap(tArmed, tFired) {
				if t.ft != nil {
					t.ft(t, t.arg)
				} else {
					t.f(t.arg)
				}
			}
		}

		if idle {
			<-w.wake
			continue
		}
		// Sleep to the next tick boundary (w.cur is now one past the
		// last scanned tick). A new arm or Shutdown nudges us early.
		// Timer channels are synchronous since Go 1.23, so Reset after
		// an abandoned sleep needs no drain.
		d := time.Until(w.start.Add(time.Duration(w.cur) * w.tick))
		if d <= 0 {
			continue
		}
		sleep.Reset(d)
		select {
		case <-sleep.C:
		case <-w.wake:
			sleep.Stop()
		}
	}
}
