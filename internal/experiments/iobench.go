package experiments

import (
	"fmt"
	"net"
	goruntime "runtime"
	"sync"
	"time"

	"lhws/internal/io"
	"lhws/internal/runtime"
	"lhws/internal/stats"
)

// Real-socket echo benchmark (`-exp io`, BENCH_io.json): the paper's
// central claim measured against a genuine network stack instead of
// simulated latencies. An echo server runs on the task runtime — accept
// loop plus one handler task per connection, each request costing a real
// wall-clock δ before the reply — and is driven by C ≫ P external
// client connections (plain goroutines, the load generator, not tasks).
//
// In blocking mode every pending socket operation and every δ holds a
// worker, so at most P−1 requests are in flight (the accept loop pins
// the remaining worker) and throughput is capped near (P−1)/δ. Under
// latency hiding the same server code suspends the task instead: all C
// connections' requests overlap and throughput approaches C/δ until
// scheduler overhead binds. The Check gate demands the latency-hiding
// server sustain at least 3× the blocking throughput — the recorded
// margin is far larger — and that the I/O machinery stayed O(P): the
// dispatcher's bridge-goroutine peak within its cap, the cap below C.
type IOBenchConfig struct {
	Workers int
	Conns   int
	Rounds  int           // requests per connection
	Delta   time.Duration // per-request server-side latency
	Frame   int           // request/reply payload bytes
}

// ScaledIOBench is the recorded configuration: P=4 workers, C=64
// connections, δ=50ms — the paper's middle Figure-11 latency, at which
// hiding matters and rotation slices are negligible.
func ScaledIOBench() IOBenchConfig {
	return IOBenchConfig{Workers: 4, Conns: 64, Rounds: 3, Delta: 50 * time.Millisecond, Frame: 16}
}

// IOBenchRow is one mode's measurement.
type IOBenchRow struct {
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers"`
	Conns      int     `json:"conns"`
	Rounds     int     `json:"rounds"`
	DeltaMS    float64 `json:"delta_ms"`
	WallMS     float64 `json:"wall_ms"`
	Requests   int     `json:"requests"`
	Throughput float64 `json:"requests_per_sec"`
	BridgePeak int     `json:"bridge_peak"`
	BridgeCap  int     `json:"bridge_cap"`
}

// IOBenchResult is the two-mode comparison, serialized as BENCH_io.json.
type IOBenchResult struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Cfg        IOBenchConfig `json:"config"`
	Rows       []IOBenchRow  `json:"rows"`
	Ratio      float64       `json:"hiding_over_blocking"`
}

// IOBench measures the echo server in both modes and returns the sweep.
func IOBench(cfg IOBenchConfig) (*IOBenchResult, error) {
	res := &IOBenchResult{GoMaxProcs: goruntime.GOMAXPROCS(0), Cfg: cfg}
	var walls [2]time.Duration
	for i, mode := range []runtime.Mode{runtime.Blocking, runtime.LatencyHiding} {
		row, err := measureEcho(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", mode, err)
		}
		walls[i] = time.Duration(row.WallMS * float64(time.Millisecond))
		res.Rows = append(res.Rows, row)
	}
	if walls[1] > 0 {
		res.Ratio = float64(walls[0]) / float64(walls[1])
	}
	return res, nil
}

// measureEcho runs one mode: the server under test inside Run, the load
// generator outside it. The measured wall spans first dial to last
// reply, excluding listener setup. Workers must be >= 3 for the
// blocking mode to make progress: the root's AwaitChan and the accept
// spine each pin a worker there, and the handlers need at least one
// more.
func measureEcho(cfg IOBenchConfig, mode runtime.Mode) (IOBenchRow, error) {
	row := IOBenchRow{
		Mode: mode.String(), Workers: cfg.Workers, Conns: cfg.Conns,
		Rounds: cfg.Rounds, DeltaMS: float64(cfg.Delta) / float64(time.Millisecond),
		Requests: cfg.Conns * cfg.Rounds,
	}
	addrCh := make(chan string, 1)
	clientsDone := make(chan struct{})
	var clientErr error
	var clientMu sync.Mutex
	var wall time.Duration

	// Load generator: C plain-goroutine clients, each R sequential
	// write+read roundtrips on its own TCP connection.
	go func() {
		defer close(clientsDone)
		addr := <-addrCh
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < cfg.Conns; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				nc, err := net.Dial("tcp", addr)
				if err == nil {
					defer nc.Close()
					out := make([]byte, cfg.Frame)
					for j := range out {
						out[j] = byte(id)
					}
					in := make([]byte, cfg.Frame)
					for r := 0; r < cfg.Rounds && err == nil; r++ {
						if _, err = nc.Write(out); err == nil {
							_, err = readFullRaw(nc, in)
						}
					}
				}
				if err != nil {
					clientMu.Lock()
					if clientErr == nil {
						clientErr = fmt.Errorf("client %d: %w", id, err)
					}
					clientMu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		wall = time.Since(start)
	}()

	_, err := runtime.Run(runtime.Config{Workers: cfg.Workers, Mode: mode, Deadline: 5 * time.Minute},
		func(c *runtime.Ctx) {
			l, lerr := io.Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				clientMu.Lock()
				clientErr = lerr
				clientMu.Unlock()
				close(addrCh)
				return
			}
			addrCh <- l.Addr().String()
			srv := c.Spawn(func(cc *runtime.Ctx) {
				for {
					cn, aerr := l.Accept(cc)
					if aerr != nil {
						return
					}
					cc.Spawn(func(hc *runtime.Ctx) {
						defer cn.Close()
						buf := make([]byte, cfg.Frame)
						for {
							if rerr := readFullConn(hc, cn, buf); rerr != nil {
								return
							}
							hc.Latency(cfg.Delta) // the per-request δ
							if _, werr := cn.Write(hc, buf); werr != nil {
								return
							}
						}
					})
				}
			})
			runtime.AwaitChan[struct{}](c, clientsDone)
			l.Close()
			srv.Await(c)
			row.BridgePeak = io.PeakBridges(c)
			row.BridgeCap = 2 * c.NumWorkers()
			if row.BridgeCap < 8 {
				row.BridgeCap = 8
			}
		})
	if err != nil {
		return row, err
	}
	if clientErr != nil {
		return row, clientErr
	}
	row.WallMS = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		row.Throughput = float64(row.Requests) / wall.Seconds()
	}
	return row, nil
}

func readFullRaw(nc net.Conn, p []byte) (int, error) {
	for off := 0; off < len(p); {
		n, err := nc.Read(p[off:])
		off += n
		if err != nil {
			return off, err
		}
	}
	return len(p), nil
}

func readFullConn(c *runtime.Ctx, cn *io.Conn, p []byte) error {
	for off := 0; off < len(p); {
		n, err := cn.Read(c, p[off:])
		off += n
		if err != nil {
			return err
		}
	}
	return nil
}

// Table renders the two-mode comparison.
func (r *IOBenchResult) Table() *stats.Table {
	t := stats.NewTable("mode", "P", "conns", "δ", "wall", "req/s", "bridge peak", "bridge cap")
	for _, row := range r.Rows {
		t.AddRowf(row.Mode, row.Workers, row.Conns,
			fmt.Sprintf("%.0fms", row.DeltaMS),
			fmt.Sprintf("%.0fms", row.WallMS),
			fmt.Sprintf("%.0f", row.Throughput),
			row.BridgePeak, row.BridgeCap)
	}
	return t
}

// Check enforces the latency-hiding contract on real sockets: ≥3× the
// blocking throughput at the recorded configuration, with the bridge
// pool O(P) — never a goroutine per connection.
func (r *IOBenchResult) Check() error {
	if r.Ratio < 3 {
		return fmt.Errorf("latency hiding only %.2fx over blocking, want >= 3x (C=%d conns, δ=%.0fms)",
			r.Ratio, r.Cfg.Conns, float64(r.Cfg.Delta)/float64(time.Millisecond))
	}
	for _, row := range r.Rows {
		if row.BridgePeak > row.BridgeCap {
			return fmt.Errorf("%s: bridge peak %d exceeds cap %d", row.Mode, row.BridgePeak, row.BridgeCap)
		}
		if row.BridgeCap >= row.Conns {
			return fmt.Errorf("%s: bridge cap %d not O(P) for %d conns (benchmark misconfigured)",
				row.Mode, row.BridgeCap, row.Conns)
		}
	}
	return nil
}
