package experiments

import (
	"fmt"

	"lhws/internal/sched"
	"lhws/internal/stats"
	"lhws/internal/workload"
)

// VariantRow compares the three suspension-handling designs on one
// workload and worker count.
type VariantRow struct {
	Workload      string
	P             int
	U             int
	PaperRounds   int64
	FrozenRounds  int64 // VariantSuspendDeque
	NewDeqRounds  int64 // VariantResumeNewDeque
	PaperMaxDeq   int
	FrozenMaxDeq  int
	NewDeqMaxDeq  int
	FrozenPenalty float64 // frozen / paper rounds
	NewDeqPenalty float64
}

// VariantsResult is the §7 design ablation: the paper's algorithm against
// Spoonhower's two prior multi-deque designs ("suspend the whole deque" and
// "new deque per resume"), which the related-work section argues are
// respectively wasteful and allocation-heavy.
type VariantsResult struct{ Rows []VariantRow }

// Variants measures rounds and deque high-water marks for all three
// designs across the paper's two §5 workloads.
func Variants(seed uint64) (*VariantsResult, error) {
	ws := []*workload.Workload{
		workload.MapReduce(workload.MapReduceConfig{N: 64, Delta: 150, FibWork: 5}),
		workload.Server(workload.ServerConfig{Requests: 24, Delta: 40, FibWork: 6}),
	}
	res := &VariantsResult{}
	for _, w := range ws {
		u := w.G.SuspensionWidth()
		for _, p := range []int{1, 2, 4, 8} {
			row := VariantRow{Workload: w.Name, P: p, U: u}
			const trials = 3
			for tr := uint64(0); tr < trials; tr++ {
				opt := sched.Options{Workers: p, Seed: seed + tr}
				a, err := sched.RunLHWS(w.G, opt)
				if err != nil {
					return nil, err
				}
				opt.Variant = sched.VariantSuspendDeque
				b, err := sched.RunLHWS(w.G, opt)
				if err != nil {
					return nil, err
				}
				opt.Variant = sched.VariantResumeNewDeque
				c, err := sched.RunLHWS(w.G, opt)
				if err != nil {
					return nil, err
				}
				row.PaperRounds += a.Stats.Rounds / trials
				row.FrozenRounds += b.Stats.Rounds / trials
				row.NewDeqRounds += c.Stats.Rounds / trials
				row.PaperMaxDeq = maxInt(row.PaperMaxDeq, a.Stats.MaxDequesPerWorker)
				row.FrozenMaxDeq = maxInt(row.FrozenMaxDeq, b.Stats.MaxDequesPerWorker)
				row.NewDeqMaxDeq = maxInt(row.NewDeqMaxDeq, c.Stats.MaxDequesPerWorker)
			}
			row.FrozenPenalty = float64(row.FrozenRounds) / float64(row.PaperRounds)
			row.NewDeqPenalty = float64(row.NewDeqRounds) / float64(row.PaperRounds)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table renders the design comparison.
func (r *VariantsResult) Table() *stats.Table {
	t := stats.NewTable("workload", "P", "U", "paper rounds", "frozen/paper", "newdeq/paper",
		"deques paper", "deques frozen", "deques newdeq")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.P, row.U, row.PaperRounds, row.FrozenPenalty, row.NewDeqPenalty,
			row.PaperMaxDeq, row.FrozenMaxDeq, row.NewDeqMaxDeq)
	}
	return t
}

// Check asserts the §7 qualitative claims: the paper's design respects
// Lemma 7 (≤ U+1 deques) while being no slower than the suspend-deque
// design, which wastes frozen work on the suspension-heavy workload.
func (r *VariantsResult) Check() error {
	for _, row := range r.Rows {
		if row.PaperMaxDeq > row.U+1 {
			return fmt.Errorf("variants: paper design used %d deques > U+1 = %d on %s P=%d",
				row.PaperMaxDeq, row.U+1, row.Workload, row.P)
		}
		if row.FrozenPenalty < 0.95 {
			return fmt.Errorf("variants: suspend-deque design faster than paper (%.2f) on %s P=%d",
				row.FrozenPenalty, row.Workload, row.P)
		}
	}
	return nil
}
