package experiments

import (
	"fmt"

	"lhws/internal/sched"
	"lhws/internal/stats"
	"lhws/internal/workload"
)

// StealsRow compares the two steal policies at one worker count.
type StealsRow struct {
	P             int
	RandomFails   int64
	RandomRate    float64 // failed / attempts
	OptFails      int64
	OptRate       float64
	RandomRounds  int64
	OptRounds     int64
	RoundsPenalty float64 // random / optimized
}

// StealsResult is the §6 steal-policy ablation: the paper's implementation
// targets a worker then one of its ready deques "because steals won't
// target empty deques", trading the analyzed uniform-over-deques policy
// for fewer failed steals.
type StealsResult struct{ Rows []StealsRow }

// Steals measures failed-steal rates and round counts for both policies
// on a suspension-heavy map-reduce.
func Steals(seed uint64) (*StealsResult, error) {
	w := workload.MapReduce(workload.MapReduceConfig{N: 128, Delta: 67, FibWork: 4})
	res := &StealsResult{}
	for _, p := range []int{2, 4, 8, 16} {
		var randFail, optFail, randAtt, optAtt, randRounds, optRounds int64
		const trials = 3
		for tr := uint64(0); tr < trials; tr++ {
			a, err := sched.RunLHWS(w.G, sched.Options{Workers: p, Seed: seed + tr, Policy: sched.StealRandomDeque})
			if err != nil {
				return nil, err
			}
			b, err := sched.RunLHWS(w.G, sched.Options{Workers: p, Seed: seed + tr, Policy: sched.StealWorkerThenDeque})
			if err != nil {
				return nil, err
			}
			randFail += a.Stats.StealAttempts - a.Stats.StealSuccesses
			randAtt += a.Stats.StealAttempts
			randRounds += a.Stats.Rounds
			optFail += b.Stats.StealAttempts - b.Stats.StealSuccesses
			optAtt += b.Stats.StealAttempts
			optRounds += b.Stats.Rounds
		}
		row := StealsRow{
			P:            p,
			RandomFails:  randFail / trials,
			OptFails:     optFail / trials,
			RandomRounds: randRounds / trials,
			OptRounds:    optRounds / trials,
		}
		if randAtt > 0 {
			row.RandomRate = float64(randFail) / float64(randAtt)
		}
		if optAtt > 0 {
			row.OptRate = float64(optFail) / float64(optAtt)
		}
		row.RoundsPenalty = float64(row.RandomRounds) / float64(row.OptRounds)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the policy comparison.
func (r *StealsResult) Table() *stats.Table {
	t := stats.NewTable("P", "rand fails", "rand fail-rate", "opt fails", "opt fail-rate", "rounds rand/opt")
	for _, row := range r.Rows {
		t.AddRowf(row.P, row.RandomFails, row.RandomRate, row.OptFails, row.OptRate, row.RoundsPenalty)
	}
	return t
}

// Check asserts the §6 claim: the optimized policy fails less on average
// across the sweep (individual worker counts can tie or flip within noise
// at some seeds, so a small per-row tolerance applies).
func (r *StealsResult) Check() error {
	var avgRand, avgOpt float64
	for _, row := range r.Rows {
		avgRand += row.RandomRate
		avgOpt += row.OptRate
		if row.OptRate > row.RandomRate+0.05 {
			return fmt.Errorf("steals: P=%d optimized fail-rate %.2f well above random %.2f", row.P, row.OptRate, row.RandomRate)
		}
	}
	if avgOpt > avgRand {
		return fmt.Errorf("steals: mean optimized fail-rate %.3f > mean random %.3f", avgOpt/float64(len(r.Rows)), avgRand/float64(len(r.Rows)))
	}
	return nil
}

// UWidthRow records the §5 extremal-U examples.
type UWidthRow struct {
	Workload  string
	AnalyticU int
	ExactU    int
	Observed  int // high-water mark in an actual LHWS run
}

// UWidthResult validates the §5 claims: U = n for distributed map-reduce
// and U = 1 for the server, and that executions actually realize widths up
// to U.
type UWidthResult struct{ Rows []UWidthRow }

// UWidth computes analytic, exact (min-cut), and observed suspension
// widths for the two §5 examples across sizes.
func UWidth(seed uint64) (*UWidthResult, error) {
	res := &UWidthResult{}
	for _, n := range []int{4, 16, 64, 256} {
		w := workload.MapReduce(workload.MapReduceConfig{N: n, Delta: 1000, FibWork: 2})
		r, err := sched.RunLHWS(w.G, sched.Options{Workers: 8, Seed: seed})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, UWidthRow{
			Workload: w.Name, AnalyticU: w.AnalyticU,
			ExactU: w.G.SuspensionWidth(), Observed: r.Stats.MaxSuspended,
		})
	}
	for _, reqs := range []int{4, 16, 64} {
		w := workload.Server(workload.ServerConfig{Requests: reqs, Delta: 50, FibWork: 4})
		r, err := sched.RunLHWS(w.G, sched.Options{Workers: 8, Seed: seed})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, UWidthRow{
			Workload: w.Name, AnalyticU: w.AnalyticU,
			ExactU: w.G.SuspensionWidth(), Observed: r.Stats.MaxSuspended,
		})
	}
	return res, nil
}

// Table renders the suspension-width comparison.
func (r *UWidthResult) Table() *stats.Table {
	t := stats.NewTable("workload", "analytic U", "exact U", "observed max")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.AnalyticU, row.ExactU, row.Observed)
	}
	return t
}

// Check asserts analytic = exact and observed ≤ exact, with map-reduce
// runs under a long latency actually reaching U (all fetches overlap).
func (r *UWidthResult) Check() error {
	for _, row := range r.Rows {
		if row.AnalyticU != row.ExactU {
			return fmt.Errorf("uwidth: %s analytic %d != exact %d", row.Workload, row.AnalyticU, row.ExactU)
		}
		if row.Observed > row.ExactU {
			return fmt.Errorf("uwidth: %s observed %d > U %d", row.Workload, row.Observed, row.ExactU)
		}
	}
	return nil
}
