package experiments

import (
	"fmt"

	"lhws/internal/sched"
	"lhws/internal/stats"
	"lhws/internal/workload"
)

// ScaleRow is one point of the high-P scaling sweep.
type ScaleRow struct {
	Workload string
	P        int
	Rounds   int64
	Speedup  float64 // vs the same scheduler at P=1
	WorkTerm float64 // (W/P) / rounds: fraction of time explained by work
}

// ScaleResult extends the paper's P ≤ 30 sweep to much higher worker
// counts, where the Theorem-2 bound predicts the S·U·(1+lg U) term takes
// over from W/P: speedup must saturate on latency-bound dags (server:
// S dominated by serial latency) while continuing to grow on
// work-dominated ones (fib) until W/P reaches the span.
type ScaleResult struct{ Rows []ScaleRow }

// Scale sweeps P ∈ {1..256} over contrasting workloads.
func Scale(seed uint64) (*ScaleResult, error) {
	ws := []*workload.Workload{
		workload.Fib(16),
		workload.MapReduce(workload.MapReduceConfig{N: 256, Delta: 100, FibWork: 5}),
		workload.Server(workload.ServerConfig{Requests: 32, Delta: 50, FibWork: 5}),
	}
	res := &ScaleResult{}
	for _, w := range ws {
		var base int64
		for _, p := range []int{1, 4, 16, 64, 256} {
			r, err := sched.RunLHWS(w.G, sched.Options{Workers: p, Seed: seed})
			if err != nil {
				return nil, err
			}
			if p == 1 {
				base = r.Stats.Rounds
			}
			res.Rows = append(res.Rows, ScaleRow{
				Workload: w.Name, P: p, Rounds: r.Stats.Rounds,
				Speedup:  float64(base) / float64(r.Stats.Rounds),
				WorkTerm: float64(w.G.Work()) / float64(p) / float64(r.Stats.Rounds),
			})
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *ScaleResult) Table() *stats.Table {
	t := stats.NewTable("workload", "P", "rounds", "self-speedup", "(W/P)/rounds")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.P, row.Rounds, row.Speedup, row.WorkTerm)
	}
	return t
}

// Check asserts the saturation structure: speedups never regress badly
// with more workers, and the latency-bound server saturates (speedup at
// P=256 within 2× of P=16) while fib keeps scaling further.
func (r *ScaleResult) Check() error {
	byW := map[string]map[int]float64{}
	for _, row := range r.Rows {
		if byW[row.Workload] == nil {
			byW[row.Workload] = map[int]float64{}
		}
		byW[row.Workload][row.P] = row.Speedup
	}
	for w, sp := range byW {
		if sp[256] < sp[16]*0.5 {
			return fmt.Errorf("scale: %s speedup collapsed at high P (%.1f @16 vs %.1f @256)", w, sp[16], sp[256])
		}
	}
	for w, sp := range byW {
		isServer := len(w) >= 6 && w[:6] == "server"
		if isServer && sp[256] > 2*sp[16] {
			return fmt.Errorf("scale: server kept scaling (%.1f @16 → %.1f @256); expected latency saturation", sp[16], sp[256])
		}
		if !isServer && sp[64] < sp[16] {
			return fmt.Errorf("scale: %s stopped scaling before its work term was exhausted", w)
		}
	}
	return nil
}
