package experiments

import (
	"fmt"
	"net"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/admit"
	"lhws/internal/io"
	"lhws/internal/runtime"
	"lhws/internal/stats"
)

// Goodput under overload (`-exp goodput`, BENCH_goodput.json): the
// robustness experiment behind the paper's interactive-server scenario
// (§5). Throughput is the wrong metric past saturation — Gast et
// al.'s work-stealing-with-latency analyses make goodput (the fraction
// of requests finishing under their target T) the quantity a server
// must defend. This benchmark offers a multi-tenant mix of small
// requests and periodic huge "poison" requests to the lhws echo-style
// server at open-loop load multipliers around calibrated capacity, in
// two configurations:
//
//   - shed: the full overload-control stack — admit.Controller intake
//     (admit / degrade / reject-fast), accept-gate backpressure,
//     per-request WithTarget, and ShedBlownTargets steal gating — plus
//     a graceful drain at the end of every row.
//
//   - noshed: the same server with the stack disabled: every request
//     admitted at full parallelism, nothing ever shed.
//
// The Check gate encodes the robustness claim: at the highest load
// multiplier the shedding server's admitted-goodput holds ≥ 70% of its
// 1×-load goodput, while the no-shedding baseline collapses below that
// line. In smoke mode (CI) only the no-collapse half is enforced at a
// tiny load.
type GoodputConfig struct {
	Workers int           // runtime workers (P)
	Target  time.Duration // per-request latency target T

	SubLatency time.Duration // per-subtask suspension (I/O-like wait)
	SubCompute time.Duration // per-subtask CPU spin
	SmallFan   int           // subtasks per small request
	HugeFan    int           // subtasks per huge (poison) request
	HugeEvery  int           // every Nth request is huge

	Mults       []float64     // load multipliers relative to capacity
	Util        float64       // fraction of capacity that defines 1x load
	RowDuration time.Duration // offered-arrival window per row

	MaxInflight int     // admission credit pool (gate bound)
	DegradeAt   float64 // saturation at which requests degrade
	RejectAt    float64 // saturation at which requests reject fast

	ClientCap     int           // max concurrent client requests (fd guard)
	ClientTimeout time.Duration // per-request client deadline
	DrainGrace    time.Duration // drain grace at row end (shed mode)

	Smoke bool // relax Check to the no-collapse half
}

// ScaledGoodput is the recorded configuration: P=4 workers, ~6 subtasks
// per request on average, load at 0.5x/1x/2x/4x of half-utilization
// capacity. Capacity is calibrated against min(P, NumCPU), so the
// recorded numbers are comparable across single-core CI boxes and
// multi-core laptops.
func ScaledGoodput() GoodputConfig {
	return GoodputConfig{
		Workers:       4,
		Target:        60 * time.Millisecond,
		SubLatency:    2 * time.Millisecond,
		SubCompute:    time.Millisecond,
		SmallFan:      4,
		HugeFan:       24,
		HugeEvery:     10,
		Mults:         []float64{0.5, 1, 2, 4},
		Util:          0.5,
		RowDuration:   2 * time.Second,
		MaxInflight:   128,
		DegradeAt:     0.7,
		RejectAt:      1.2,
		ClientCap:     512,
		ClientTimeout: 3 * time.Second,
		DrainGrace:    500 * time.Millisecond,
	}
}

// SmokeGoodput is the CI configuration: two workers, two loads, a few
// hundred milliseconds per row, gated only on "shedding did not
// collapse".
func SmokeGoodput() GoodputConfig {
	cfg := ScaledGoodput()
	cfg.Workers = 2
	cfg.SubCompute = 2 * time.Millisecond
	cfg.SmallFan = 2
	cfg.HugeFan = 8
	cfg.HugeEvery = 5
	cfg.Mults = []float64{1, 4}
	cfg.RowDuration = 400 * time.Millisecond
	cfg.MaxInflight = 16
	cfg.ClientCap = 128
	cfg.ClientTimeout = 2 * time.Second
	cfg.Smoke = true
	return cfg
}

// GoodputRow is one (mode, load multiplier) measurement.
type GoodputRow struct {
	Mode        string  `json:"mode"` // "shed" or "noshed"
	Mult        float64 `json:"load_mult"`
	OfferedRate float64 `json:"offered_per_sec"`
	Offered     int     `json:"offered"`

	OK            int `json:"ok"`              // completed with a full reply
	OKUnderTarget int `json:"ok_under_target"` // ...within the target T
	Rejected      int `json:"rejected"`        // refused fast at intake
	Shed          int `json:"shed"`            // admitted, then target-shed
	Failed        int `json:"failed"`          // dial/timeout/transport errors

	// Goodput is the admitted goodput: OKUnderTarget / (OK + Shed).
	Goodput  float64 `json:"admitted_goodput"`
	MeanOKMS float64 `json:"mean_ok_ms"`
	P95OKMS  float64 `json:"p95_ok_ms"`

	TasksLate      int64 `json:"tasks_late"`
	TargetCancels  int64 `json:"target_cancels"`
	DrainCompleted int   `json:"drain_completed"`
	DrainCanceled  int   `json:"drain_canceled"`
	DrainRemaining int   `json:"drain_remaining"`
}

// GoodputResult is the full sweep, serialized as BENCH_goodput.json.
type GoodputResult struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Cfg        GoodputConfig `json:"config"`
	Rows       []GoodputRow  `json:"rows"`
}

// effectiveCores is the parallelism capacity calibration is based on:
// workers can't use more cores than the machine has.
func (cfg GoodputConfig) effectiveCores() float64 {
	cores := goruntime.NumCPU()
	if cfg.Workers < cores {
		cores = cfg.Workers
	}
	if cores < 1 {
		cores = 1
	}
	return float64(cores)
}

// baseRate is the 1x offered arrival rate (requests/second): Util of the
// effective-core capacity divided by the average CPU cost per request.
func (cfg GoodputConfig) baseRate() float64 {
	avgSub := float64((cfg.HugeEvery-1)*cfg.SmallFan+cfg.HugeFan) / float64(cfg.HugeEvery)
	cpu := avgSub * cfg.SubCompute.Seconds()
	return cfg.Util * cfg.effectiveCores() / cpu
}

// GoodputBench runs the sweep: every load multiplier in both modes.
func GoodputBench(cfg GoodputConfig) (*GoodputResult, error) {
	res := &GoodputResult{GoMaxProcs: goruntime.GOMAXPROCS(0), NumCPU: goruntime.NumCPU(), Cfg: cfg}
	for _, shed := range []bool{true, false} {
		for _, mult := range cfg.Mults {
			row, err := measureGoodput(cfg, mult, shed)
			if err != nil {
				return nil, fmt.Errorf("%s %gx: %w", row.Mode, mult, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// spinFor burns CPU for roughly d of wall time — the request's compute,
// which (unlike Latency) cannot be hidden and is what saturates workers.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// measureGoodput runs one row: the server under test inside Run, an
// open-loop client population outside it.
func measureGoodput(cfg GoodputConfig, mult float64, shed bool) (GoodputRow, error) {
	row := GoodputRow{Mode: "noshed", Mult: mult}
	if shed {
		row.Mode = "shed"
	}
	rate := cfg.baseRate() * mult
	offered := int(rate * cfg.RowDuration.Seconds())
	if offered < 1 {
		offered = 1
	}
	interval := cfg.RowDuration / time.Duration(offered)
	row.Offered = offered
	row.OfferedRate = rate

	var (
		ok, okGood, rejected, wasShed, failed atomic.Int64
		latMu                                 sync.Mutex
		okLatencies                           []time.Duration
	)
	addrCh := make(chan string, 1)
	clientsDone := make(chan struct{})

	// Open-loop load generator: one short-lived connection per request,
	// arrivals on a fixed schedule, concurrency capped only as an fd
	// guard. Requests are not retried; every outcome is counted.
	go func() {
		defer close(clientsDone)
		addr, okAddr := <-addrCh
		if !okAddr {
			return
		}
		sem := make(chan struct{}, cfg.ClientCap)
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < offered; i++ {
			if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
				time.Sleep(d)
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer func() { <-sem }()
				req := byte('s')
				if id%cfg.HugeEvery == cfg.HugeEvery-1 {
					req = 'h'
				}
				t0 := time.Now()
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					failed.Add(1)
					return
				}
				defer nc.Close()
				nc.SetDeadline(time.Now().Add(cfg.ClientTimeout))
				var reply [1]byte
				if _, err := nc.Write([]byte{req}); err != nil {
					failed.Add(1)
					return
				}
				if _, err := readFullRaw(nc, reply[:]); err != nil {
					failed.Add(1)
					return
				}
				lat := time.Since(t0)
				switch reply[0] {
				case 'o':
					ok.Add(1)
					if lat <= cfg.Target {
						okGood.Add(1)
					}
					latMu.Lock()
					okLatencies = append(okLatencies, lat)
					latMu.Unlock()
				case 'r':
					rejected.Add(1)
				case 's':
					wasShed.Add(1)
				default:
					failed.Add(1)
				}
			}(i)
		}
		wg.Wait()
	}()

	rcfg := runtime.Config{
		Workers:          cfg.Workers,
		Mode:             runtime.LatencyHiding,
		Deadline:         2 * time.Minute,
		ShedBlownTargets: shed,
	}
	st, err := runtime.Run(rcfg, func(c *runtime.Ctx) {
		l, lerr := io.Listen(c, "tcp", "127.0.0.1:0")
		if lerr != nil {
			close(addrCh)
			return
		}
		var ctl *admit.Controller
		if shed {
			ctl = admit.New(admit.Config{
				MaxInflight: cfg.MaxInflight,
				DegradeAt:   cfg.DegradeAt,
				RejectAt:    cfg.RejectAt,
			})
			l.SetGate(ctl)
		}
		addrCh <- l.Addr().String()
		srv := c.Spawn(func(cc *runtime.Ctx) {
			for {
				cn, aerr := l.Accept(cc)
				if aerr != nil {
					return // listener closed or intake draining
				}
				cc.Spawn(func(hc *runtime.Ctx) {
					serveGoodput(hc, cn, cfg, ctl)
				})
			}
		})
		runtime.AwaitChan[struct{}](c, clientsDone)
		if ctl != nil {
			rep := ctl.Drain(c, cfg.DrainGrace)
			row.DrainCompleted = rep.Completed
			row.DrainCanceled = rep.Canceled
			row.DrainRemaining = rep.Remaining
		}
		l.Close()
		srv.Await(c)
	})
	if err != nil {
		return row, err
	}

	row.OK = int(ok.Load())
	row.OKUnderTarget = int(okGood.Load())
	row.Rejected = int(rejected.Load())
	row.Shed = int(wasShed.Load())
	row.Failed = int(failed.Load())
	if admitted := row.OK + row.Shed; admitted > 0 {
		row.Goodput = float64(row.OKUnderTarget) / float64(admitted)
	}
	if len(okLatencies) > 0 {
		sort.Slice(okLatencies, func(i, j int) bool { return okLatencies[i] < okLatencies[j] })
		var sum time.Duration
		for _, l := range okLatencies {
			sum += l
		}
		row.MeanOKMS = float64(sum) / float64(len(okLatencies)) / float64(time.Millisecond)
		row.P95OKMS = float64(okLatencies[len(okLatencies)*95/100]) / float64(time.Millisecond)
	}
	row.TasksLate = st.TasksLate
	row.TargetCancels = st.TargetCancels
	return row, nil
}

// serveGoodput handles one connection: read the request type, take the
// admission decision, run the request's fan-out under its target, and
// reply 'o' (served), 'r' (rejected fast), or 's' (admitted but shed).
func serveGoodput(hc *runtime.Ctx, cn *io.Conn, cfg GoodputConfig, ctl *admit.Controller) {
	defer cn.Close()
	var req [1]byte
	if err := readFullConn(hc, cn, req[:]); err != nil {
		return
	}
	fan := cfg.SmallFan
	if req[0] == 'h' {
		fan = cfg.HugeFan
	}
	var tk *admit.Ticket
	if ctl != nil {
		var aerr error
		tk, aerr = ctl.Admit(hc)
		if aerr != nil {
			// Reject fast: one byte, no work — the client retries
			// elsewhere instead of queueing into a blown target.
			cn.Write(hc, []byte{'r'})
			return
		}
		defer tk.Done()
		if tk.Degraded() {
			// Shed inner parallelism: serve a reduced answer at a
			// fraction of the cost.
			fan = 1
		}
	}
	rc, cancel := hc.WithTarget(cfg.Target)
	defer cancel()
	if tk != nil {
		tk.Bind(cancel)
	}
	futs := make([]*runtime.Future, 0, fan)
	for i := 0; i < fan; i++ {
		futs = append(futs, rc.Spawn(func(sc *runtime.Ctx) {
			sc.Latency(cfg.SubLatency)
			spinFor(cfg.SubCompute)
		}))
	}
	var werr error
	for _, f := range futs {
		if e := f.AwaitErr(hc); e != nil {
			werr = e
		}
	}
	reply := byte('o')
	if werr != nil {
		reply = 's' // target-shed (or drain-canceled) mid-request
	}
	cn.Write(hc, []byte{reply})
}

// Table renders the sweep.
func (r *GoodputResult) Table() *stats.Table {
	t := stats.NewTable("mode", "load", "offered", "ok", "good", "rej", "shed", "fail",
		"goodput", "p95", "late", "cancels")
	for _, row := range r.Rows {
		t.AddRowf(row.Mode, fmt.Sprintf("%.1fx", row.Mult), row.Offered,
			row.OK, row.OKUnderTarget, row.Rejected, row.Shed, row.Failed,
			fmt.Sprintf("%.3f", row.Goodput),
			fmt.Sprintf("%.0fms", row.P95OKMS),
			row.TasksLate, row.TargetCancels)
	}
	return t
}

func (r *GoodputResult) row(mode string, mult float64) *GoodputRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Mult == mult {
			return &r.Rows[i]
		}
	}
	return nil
}

// Check enforces the overload-robustness contract. Full mode: at the
// highest load multiplier, shedding holds admitted goodput at ≥ 70% of
// its own 1x goodput while the no-shedding baseline falls below that
// line; and shedding actually engaged (rejects, sheds, or target
// cancels happened). Smoke mode gates only on no-collapse: the shedding
// server's goodput at the highest load stays within half of its 1x
// goodput.
func (r *GoodputResult) Check() error {
	maxMult := 0.0
	for _, m := range r.Cfg.Mults {
		if m > maxMult {
			maxMult = m
		}
	}
	shed1 := r.row("shed", 1)
	shedMax := r.row("shed", maxMult)
	if shed1 == nil || shedMax == nil {
		return fmt.Errorf("sweep missing shed rows at 1x and %gx", maxMult)
	}
	if shed1.Goodput == 0 {
		return fmt.Errorf("shed 1x goodput is zero: server never served under target")
	}
	if r.Cfg.Smoke {
		if shedMax.Goodput < 0.5*shed1.Goodput {
			return fmt.Errorf("smoke: shedding collapsed: goodput %.3f at %gx < 50%% of %.3f at 1x",
				shedMax.Goodput, maxMult, shed1.Goodput)
		}
		return nil
	}
	line := 0.7 * shed1.Goodput
	if shedMax.Goodput < line {
		return fmt.Errorf("shedding goodput %.3f at %gx below 70%% of 1x goodput %.3f",
			shedMax.Goodput, maxMult, shed1.Goodput)
	}
	noshedMax := r.row("noshed", maxMult)
	if noshedMax == nil {
		return fmt.Errorf("sweep missing noshed row at %gx", maxMult)
	}
	if noshedMax.Goodput >= line {
		return fmt.Errorf("no-shedding baseline did not collapse: goodput %.3f at %gx >= 70%% line %.3f (overload insufficient)",
			noshedMax.Goodput, maxMult, line)
	}
	engaged := shedMax.Rejected + shedMax.Shed + int(shedMax.TargetCancels)
	if engaged == 0 {
		return fmt.Errorf("shedding never engaged at %gx: no rejects, sheds, or target cancels", maxMult)
	}
	return nil
}
