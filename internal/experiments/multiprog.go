package experiments

import (
	"fmt"

	"lhws/internal/sched"
	"lhws/internal/stats"
	"lhws/internal/workload"
)

// MultiprogRow is one availability-pattern measurement.
type MultiprogRow struct {
	Pattern    string
	AvgAvail   float64
	Rounds     int64
	ProcTime   int64   // granted worker-rounds = P·rounds − descheduled
	Efficiency float64 // dedicated proc-time / this proc-time
}

// MultiprogResult evaluates LHWS in the multiprogrammed setting of Arora,
// Blumofe & Plaxton: the OS grants only a subset of the P workers each
// round. The ABP guarantee is that the schedule wastes little of whatever
// processing the OS actually grants; we measure granted worker-rounds
// (processor time) across availability patterns and compare against the
// dedicated run.
type MultiprogResult struct {
	P    int
	Rows []MultiprogRow
}

// Multiprogrammed runs the map-reduce workload under several availability
// patterns.
func Multiprogrammed(seed uint64) (*MultiprogResult, error) {
	w := workload.MapReduce(workload.MapReduceConfig{N: 64, Delta: 41, FibWork: 5})
	const p = 8
	patterns := []struct {
		name string
		fn   func(round int64) int
	}{
		{"dedicated", nil},
		{"three-quarters", func(int64) int { return 6 }},
		{"half", func(int64) int { return 4 }},
		{"quarter", func(int64) int { return 2 }},
		{"sawtooth 1..8", func(r int64) int { return 1 + int(r%8) }},
		{"bursty 8/1", func(r int64) int {
			if r%200 < 100 {
				return 8
			}
			return 1
		}},
	}
	res := &MultiprogResult{P: p}
	var dedicatedProc int64
	for _, pat := range patterns {
		r, err := sched.RunLHWS(w.G, sched.Options{Workers: p, Seed: seed, Available: pat.fn})
		if err != nil {
			return nil, err
		}
		procTime := int64(p)*r.Stats.Rounds - r.Stats.DescheduledRounds
		if pat.name == "dedicated" {
			dedicatedProc = procTime
		}
		res.Rows = append(res.Rows, MultiprogRow{
			Pattern:  pat.name,
			AvgAvail: float64(procTime) / float64(r.Stats.Rounds),
			Rounds:   r.Stats.Rounds,
			ProcTime: procTime,
			Efficiency: func() float64 {
				if procTime == 0 {
					return 0
				}
				return float64(dedicatedProc) / float64(procTime)
			}(),
		})
	}
	return res, nil
}

// Table renders the availability sweep.
func (r *MultiprogResult) Table() *stats.Table {
	t := stats.NewTable("availability", "avg granted", "rounds", "proc-time", "proc-time efficiency")
	for _, row := range r.Rows {
		t.AddRowf(row.Pattern, row.AvgAvail, row.Rounds, row.ProcTime, row.Efficiency)
	}
	return t
}

// Check asserts work conservation in the ABP sense: constrained runs must
// not consume disproportionately more granted processor time than the
// dedicated run (some loss to steal overhead under scarcity is expected).
func (r *MultiprogResult) Check() error {
	dedicated := r.Rows[0].ProcTime
	for _, row := range r.Rows[1:] {
		if float64(row.ProcTime) > 3.0*float64(dedicated) {
			return fmt.Errorf("multiprog: pattern %q used %d proc-rounds vs dedicated %d (>3x waste)",
				row.Pattern, row.ProcTime, dedicated)
		}
		if row.Rounds < r.Rows[0].Rounds {
			return fmt.Errorf("multiprog: pattern %q finished faster than dedicated", row.Pattern)
		}
	}
	return nil
}
