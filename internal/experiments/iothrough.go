package experiments

import (
	"fmt"
	"math"
	"net"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/bufpool"
	"lhws/internal/io"
	"lhws/internal/runtime"
	"lhws/internal/stats"
)

// I/O data-plane throughput benchmark (`-exp iothrough`, folded into
// BENCH_io.json by `-exp io`): where iobench.go measures the
// *scheduling* claim (latency hiding overlaps δ), this measures the
// *data plane* — what the pooled zero-copy read path and the vectored
// write path buy at high connection counts, with everything else held
// equal.
//
// One server run carries all trials: C pipelined connections send
// 1-byte requests and the handler answers each with a Frags-fragment
// reply. A controller goroutine toggles the server's code path between
// paired variants in alternating timed trials on the SAME run, same
// connections, same load — so the pairs differ only in the code path
// under test and machine noise cancels in the ratio:
//
//   - read path: per-request make+Read (malloc) vs pooled ReadBuf
//     (pooled). The score is steady-state heap allocations per request
//     (ΔMallocs/Δrequests). The pooled path's gate is ≤ 0.1: the
//     buffer, the ioOp, and the resume machinery are all recycled, so
//     a steady-state request allocates nothing.
//   - write path: Frags sequential Write calls (scalar) vs QueueWrite
//     xFrags + one Flush (vectored). Each scalar fragment is a full
//     suspend/resume cycle plus a syscall; vectoring folds them into
//     one op and one writev. The score is the median paired req/s
//     ratio; the gate at the recorded scale (C=4096, pipelined) is
//     ≥ 1.15x, and the measured margin is far larger.
type IOThroughputConfig struct {
	Workers   int
	Conns     int
	Pipeline  int           // requests in flight per connection
	Frags     int           // reply fragments per request
	FragBytes int           // bytes per fragment
	Duration  time.Duration // measured window per trial
	Settle    time.Duration // drain window after a variant toggle
	Trials    int           // paired trials per comparison
	Smoke     bool          // CI smoke scale: sanity gates only
}

// ScaledIOThroughput is the recorded configuration: C=4096 pipelined
// connections — the "lots of small interacting clients" regime the
// data plane exists for.
func ScaledIOThroughput() IOThroughputConfig {
	return IOThroughputConfig{
		Workers: 4, Conns: 4096, Pipeline: 4, Frags: 4, FragBytes: 64,
		// 4 trials per variant: allocs/req reduces by min-across-trials,
		// and a GC cycle landing inside a window inflates it, so the min
		// needs enough windows to catch a GC-free one.
		Duration: 300 * time.Millisecond, Settle: 50 * time.Millisecond, Trials: 4,
	}
}

// SmokeIOThroughput is the CI scale: enough load to exercise every
// code path, loose gates, a couple of seconds of wall clock.
func SmokeIOThroughput() IOThroughputConfig {
	return IOThroughputConfig{
		Workers: 2, Conns: 64, Pipeline: 2, Frags: 4, FragBytes: 64,
		Duration: 120 * time.Millisecond, Settle: 30 * time.Millisecond, Trials: 2,
		Smoke: true,
	}
}

// IOThroughputRow is one timed trial under one variant.
type IOThroughputRow struct {
	Comparison   string  `json:"comparison"` // "read-path" or "write-path"
	Variant      string  `json:"variant"`    // malloc|pooled|scalar|vectored
	Conns        int     `json:"conns"`
	ReqPerSec    float64 `json:"requests_per_sec"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
	AllocsPerReq float64 `json:"allocs_per_req"`
}

// IOThroughputResult is the full paired sweep, part of BENCH_io.json.
type IOThroughputResult struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Backend    string             `json:"backend"`
	Cfg        IOThroughputConfig `json:"config"`
	Rows       []IOThroughputRow  `json:"rows"`

	// MallocAllocs/PooledAllocs are the steady-state allocations per
	// request under each read-path variant (minimum across trials —
	// GC and warm-up transients only inflate a window's count).
	MallocAllocs float64 `json:"malloc_allocs_per_req"`
	PooledAllocs float64 `json:"pooled_allocs_per_req"`
	// VectoredRatio is the median of per-pair vectored/scalar req/s.
	VectoredRatio float64 `json:"vectored_over_scalar"`
	// PoolRecycled is the fraction of pool Gets served by recycling
	// during the run (gets-news)/gets — evidence the pool pooled.
	PoolRecycled float64 `json:"pool_recycled_frac"`
}

// Read-path and write-path variant codes, stored in one atomic the
// handlers consult per request batch.
const (
	rpMalloc = int32(0)
	rpPooled = int32(1 << 0)
	wpScalar = int32(0)
	wpVector = int32(1 << 1)
)

// IOThroughput runs the paired data-plane sweep.
func IOThroughput(cfg IOThroughputConfig) (*IOThroughputResult, error) {
	res := &IOThroughputResult{GoMaxProcs: goruntime.GOMAXPROCS(0), Cfg: cfg}
	respBytes := cfg.Frags * cfg.FragBytes

	// Reply fragments, shared read-only by every handler.
	frags := make([][]byte, cfg.Frags)
	for i := range frags {
		frags[i] = make([]byte, cfg.FragBytes)
		for j := range frags[i] {
			frags[i][j] = byte('a' + i)
		}
	}

	var (
		variant   atomic.Int32
		completed atomic.Int64 // replies fully read by clients
		connected atomic.Int64 // clients dialed and pipelining
		stop      atomic.Bool
	)

	addrCh := make(chan string, 1)
	clientsDone := make(chan struct{})
	var clientErr error
	var clientMu sync.Mutex
	fail := func(err error) {
		clientMu.Lock()
		if clientErr == nil {
			clientErr = err
		}
		clientMu.Unlock()
	}

	// Load generator: C plain-goroutine clients, each keeping Pipeline
	// 1-byte requests in flight and counting fully-read replies.
	go func() {
		defer close(clientsDone)
		addr, okAddr := <-addrCh
		if !okAddr {
			return
		}
		var wg sync.WaitGroup
		conns := make([]net.Conn, 0, cfg.Conns)
		var connsMu sync.Mutex
		for i := 0; i < cfg.Conns; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var nc net.Conn
				var err error
				for attempt := 0; attempt < 5; attempt++ {
					if nc, err = net.Dial("tcp", addr); err == nil {
						break
					}
					time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
				}
				if err != nil {
					fail(fmt.Errorf("dial: %w", err))
					return
				}
				connsMu.Lock()
				conns = append(conns, nc)
				connsMu.Unlock()
				req := []byte{'r'}
				in := make([]byte, respBytes)
				for k := 0; k < cfg.Pipeline; k++ {
					if _, err := nc.Write(req); err != nil {
						return
					}
				}
				connected.Add(1)
				for !stop.Load() {
					if _, err := readFullRaw(nc, in); err != nil {
						return
					}
					completed.Add(1)
					if _, err := nc.Write(req); err != nil {
						return
					}
				}
			}()
		}
		// The controller flips stop once all trials are done; closing
		// the conns unblocks any client still parked in a read.
		for !stop.Load() {
			time.Sleep(5 * time.Millisecond)
		}
		connsMu.Lock()
		for _, nc := range conns {
			nc.Close()
		}
		connsMu.Unlock()
		wg.Wait()
	}()

	// Controller: alternate variants in timed trials on the live run.
	type trial struct {
		comparison, variant string
		code                int32
	}
	var plan []trial
	for t := 0; t < cfg.Trials; t++ {
		plan = append(plan,
			trial{"read-path", "malloc", rpMalloc | wpVector},
			trial{"read-path", "pooled", rpPooled | wpVector},
		)
	}
	for t := 0; t < cfg.Trials; t++ {
		plan = append(plan,
			trial{"write-path", "scalar", rpPooled | wpScalar},
			trial{"write-path", "vectored", rpPooled | wpVector},
		)
	}

	gets0, news0, _ := bufpool.Stats()
	measured := make(chan []IOThroughputRow, 1)
	go func() {
		rows := make([]IOThroughputRow, 0, len(plan))
		var ms goruntime.MemStats
		// Ramp barrier: a C=4096 dial storm takes a while on a small
		// machine, and trials measured mid-ramp see connection churn,
		// not the data plane. Wait for the fleet, then let the pipeline
		// reach steady state before the first window.
		// Ramp on the pooled+vectored variant so the buffer pool and
		// the runtime's object pools are warm before the first window.
		variant.Store(rpPooled | wpVector)
		rampDeadline := time.Now().Add(60 * time.Second)
		for connected.Load() < int64(cfg.Conns) && time.Now().Before(rampDeadline) {
			time.Sleep(10 * time.Millisecond)
		}
		time.Sleep(4 * cfg.Settle)
		for _, tr := range plan {
			variant.Store(tr.code)
			time.Sleep(cfg.Settle)
			goruntime.ReadMemStats(&ms)
			m0, c0 := ms.Mallocs, completed.Load()
			t0 := time.Now()
			time.Sleep(cfg.Duration)
			goruntime.ReadMemStats(&ms)
			el := time.Since(t0)
			dm, dc := ms.Mallocs-m0, completed.Load()-c0
			row := IOThroughputRow{
				Comparison: tr.comparison, Variant: tr.variant, Conns: cfg.Conns,
			}
			if dc > 0 {
				row.ReqPerSec = float64(dc) / el.Seconds()
				row.BytesPerSec = row.ReqPerSec * float64(respBytes+1)
				row.AllocsPerReq = float64(dm) / float64(dc)
			}
			rows = append(rows, row)
		}
		stop.Store(true)
		measured <- rows
	}()

	_, err := runtime.Run(runtime.Config{Workers: cfg.Workers, Mode: runtime.LatencyHiding, Deadline: 10 * time.Minute},
		func(c *runtime.Ctx) {
			res.Backend = io.BackendName(c)
			l, lerr := io.Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				fail(lerr)
				close(addrCh)
				return
			}
			addrCh <- l.Addr().String()
			srv := c.Spawn(func(cc *runtime.Ctx) {
				for {
					cn, aerr := l.Accept(cc)
					if aerr != nil {
						return
					}
					cc.Spawn(func(hc *runtime.Ctx) {
						defer cn.Close()
						for {
							// Read a batch of pipelined 1-byte requests
							// through the variant's read path.
							var n int
							var rerr error
							if variant.Load()&rpPooled != 0 {
								var pb *bufpool.Buf
								pb, rerr = cn.ReadBuf(hc, 256)
								if rerr == nil {
									n = pb.Len()
									pb.Release()
								}
							} else {
								n, rerr = cn.Read(hc, make([]byte, 256))
							}
							if rerr != nil {
								return
							}
							// One Frags-fragment reply per request through
							// the variant's write path.
							for i := 0; i < n; i++ {
								if variant.Load()&wpVector != 0 {
									for _, f := range frags {
										cn.QueueWrite(f)
									}
									if _, werr := cn.Flush(hc); werr != nil {
										return
									}
								} else {
									for _, f := range frags {
										if _, werr := cn.Write(hc, f); werr != nil {
											return
										}
									}
								}
							}
						}
					})
				}
			})
			runtime.AwaitChan[struct{}](c, clientsDone)
			l.Close()
			srv.Await(c)
		})
	if err != nil {
		return nil, err
	}
	if clientErr != nil {
		return nil, clientErr
	}
	res.Rows = <-measured

	// Reduce: minimum allocs/req per read-path variant, median paired
	// ratio for the write path, pool recycling fraction. Min is the
	// steady-state estimator for allocation counts: a trial window that
	// catches a GC cycle or late pool warm-up only inflates the count,
	// never deflates it, so the cleanest window is the truth. Both
	// variants use the same estimator, so the separation check below
	// stays apples-to-apples.
	mallocMin, pooledMin := math.Inf(1), math.Inf(1)
	var mallocN, pooledN int
	var scalars, vectors []float64
	for _, row := range res.Rows {
		switch {
		case row.Comparison == "read-path" && row.Variant == "malloc":
			mallocMin = math.Min(mallocMin, row.AllocsPerReq)
			mallocN++
		case row.Comparison == "read-path" && row.Variant == "pooled":
			pooledMin = math.Min(pooledMin, row.AllocsPerReq)
			pooledN++
		case row.Comparison == "write-path" && row.Variant == "scalar":
			scalars = append(scalars, row.ReqPerSec)
		case row.Comparison == "write-path" && row.Variant == "vectored":
			vectors = append(vectors, row.ReqPerSec)
		}
	}
	if mallocN > 0 {
		res.MallocAllocs = mallocMin
	}
	if pooledN > 0 {
		res.PooledAllocs = pooledMin
	}
	ratios := make([]float64, 0, len(scalars))
	for i := range scalars {
		if i < len(vectors) && scalars[i] > 0 {
			ratios = append(ratios, vectors[i]/scalars[i])
		}
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		res.VectoredRatio = ratios[len(ratios)/2]
	}
	gets1, news1, _ := bufpool.Stats()
	if dg := gets1 - gets0; dg > 0 {
		res.PoolRecycled = 1 - float64(news1-news0)/float64(dg)
	}
	return res, nil
}

// Table renders the trial rows plus the reduced scores.
func (r *IOThroughputResult) Table() *stats.Table {
	t := stats.NewTable("comparison", "variant", "conns", "req/s", "MB/s", "allocs/req")
	for _, row := range r.Rows {
		t.AddRowf(row.Comparison, row.Variant, row.Conns,
			fmt.Sprintf("%.0f", row.ReqPerSec),
			fmt.Sprintf("%.2f", row.BytesPerSec/(1<<20)),
			fmt.Sprintf("%.2f", row.AllocsPerReq))
	}
	t.AddRowf("summary", "pooled-vs-malloc", r.Cfg.Conns,
		"", "", fmt.Sprintf("%.2f vs %.2f", r.PooledAllocs, r.MallocAllocs))
	t.AddRowf("summary", "vectored-vs-scalar", r.Cfg.Conns,
		fmt.Sprintf("%.2fx", r.VectoredRatio), "",
		fmt.Sprintf("pool recycled %.0f%%", r.PoolRecycled*100))
	return t
}

// Check gates the data plane. At the recorded scale: the pooled read
// path steady-state allocation-free (≤ 0.1 allocs/req), the vectored
// write path ≥ 1.15x scalar by median paired ratio, and the pool
// actually recycling. Smoke keeps the same structure with loose
// no-collapse bounds.
func (r *IOThroughputResult) Check() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("no trials recorded")
	}
	for _, row := range r.Rows {
		if row.ReqPerSec <= 0 {
			return fmt.Errorf("%s/%s: no completed requests in the trial window", row.Comparison, row.Variant)
		}
	}
	allocGate, ratioGate := 0.1, 1.15
	if r.Cfg.Smoke {
		// CI smoke boxes are noisy single-core machines: demand the
		// structural properties (pooled allocates much less than
		// malloc'd, vectoring does not collapse throughput), not the
		// margins.
		allocGate, ratioGate = 0.5, 0.8
	}
	if r.PooledAllocs > allocGate {
		return fmt.Errorf("pooled read path allocates %.2f/req, gate %.2f (malloc path %.2f)",
			r.PooledAllocs, allocGate, r.MallocAllocs)
	}
	// Baseline sanity: the malloc path allocates a buffer per read, so
	// it must sit clearly above the pooled path. (It lands well below
	// 1.0/req because one read serves a batch of pipelined requests —
	// the allocation amortizes over the batch.)
	if r.MallocAllocs < r.PooledAllocs+0.1 {
		return fmt.Errorf("malloc baseline (%.2f/req) not separated from pooled (%.2f/req); comparison is not measuring the buffer path",
			r.MallocAllocs, r.PooledAllocs)
	}
	if r.VectoredRatio < ratioGate {
		return fmt.Errorf("vectored writes only %.2fx scalar by median paired ratio, gate %.2fx",
			r.VectoredRatio, ratioGate)
	}
	if r.PoolRecycled < 0.5 {
		return fmt.Errorf("pool recycled only %.0f%% of gets; pooling is not engaging", r.PoolRecycled*100)
	}
	return nil
}
