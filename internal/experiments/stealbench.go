package experiments

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"time"

	"lhws/internal/runtime"
	"lhws/internal/stats"
)

// Steal-economics benchmarks (`-exp steal`): what one steal costs and
// what it moves, under the batched multi-item transfer (PopTopBatch,
// after Rito & Paulino arXiv:1810.10615) and the two-level locality
// victim policy (Config.StealShards, after Gast et al. arXiv:1805.00857).
//
// Every workload is measured twice in the same run of the sweep: once
// with batching at the default cap and once with MaxStealBatch=1, the
// classic single-item protocol. The single-item rows ARE the baseline —
// recorded on the same machine, same Go version, same pass — so the
// regression gates compare like with like instead of trusting numbers
// from another host.
//
// Workloads:
//
//   - steal-skew: a 512-wide fan-out of spinning leaves born on one
//     worker; thieves must drain the root's deque. The steal-half
//     transfer should move well over 2 items per successful steal and
//     beat the single-item baseline on wall time.
//   - cross-shard: the same skew but with two locality shards over four
//     workers, so the far shard's thieves must escalate out of their
//     local tier; checks both tiers actually fire.
//   - resume-storm: a 32-wide channel broadcast, the bulk-resume shape;
//     steals here move pfor batch nodes (one item carrying many tasks),
//     so batching must at least not regress it.

// StealBenchRow is one (workload, steal-policy) measurement.
type StealBenchRow struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Shards        int     `json:"shards"`
	MaxBatch      int     `json:"max_batch"` // 1 = single-item baseline
	Ops           int     `json:"ops"`
	NsPerOp       float64 `json:"ns_per_op"`
	StealAttempts int64   `json:"steal_attempts"`
	Steals        int64   `json:"steals"`
	BatchItems    int64   `json:"batch_items"`
	ItemsPerSteal float64 `json:"items_per_steal"`
	StealsLocal   int64   `json:"steals_local"`
	StealsRemote  int64   `json:"steals_remote"`
	LocalFrac     float64 `json:"local_frac"`
	// VsSingleNs, set on batched rows only, is the median over the
	// sweep's repeats of the paired per-rep ratio
	// ns(batched)/ns(single): each rep runs the two policies
	// back-to-back, so the ratio cancels whatever system phase the rep
	// landed in. < 1 means batching won.
	VsSingleNs float64 `json:"vs_single_ns,omitempty"`
}

// StealBenchResult is the full sweep, serialized as BENCH_steal.json.
type StealBenchResult struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	Seed       uint64          `json:"seed"`
	Smoke      bool            `json:"smoke,omitempty"`
	Rows       []StealBenchRow `json:"rows"`
}

// StealBenchConfig scales the sweep.
type StealBenchConfig struct {
	Seed     uint64
	SkewOps  int // spawned leaves measured per pass, skew + cross-shard
	StormOps int // broadcast rounds per pass
	Repeats  int // fastest-of-N passes
	// Smoke relaxes Check to the machine-independent ratio gates only;
	// CI smoke boxes are too noisy for wall-time comparisons.
	Smoke bool
}

// ScaledStealBench is the checked-in BENCH_steal.json scale.
func ScaledStealBench() StealBenchConfig {
	return StealBenchConfig{Seed: 1, SkewOps: 50_000, StormOps: 6_000, Repeats: 7}
}

// SmokeStealBench is the CI smoke scale: big enough to steal, too small
// to time.
func SmokeStealBench() StealBenchConfig {
	return StealBenchConfig{Seed: 1, SkewOps: 4_000, StormOps: 400, Repeats: 2, Smoke: true}
}

// StealBench runs the steal-economics sweep.
func StealBench(cfg StealBenchConfig) (*StealBenchResult, error) {
	res := &StealBenchResult{GoMaxProcs: goruntime.GOMAXPROCS(0), Seed: cfg.Seed, Smoke: cfg.Smoke}
	spin := func(*runtime.Ctx) {
		x := uint64(88172645463325252)
		for i := 0; i < 64; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		stealBenchSink = x
	}
	skew := func(c *runtime.Ctx, ops int) {
		const fan = 512
		futs := make([]*runtime.Future, fan)
		for done := 0; done < ops; {
			n := fan
			if ops-done < n {
				n = ops - done
			}
			for i := 0; i < n; i++ {
				futs[i] = c.Spawn(spin)
			}
			for i := 0; i < n; i++ {
				futs[i].Await(c)
			}
			done += n
		}
	}
	storm := func(c *runtime.Ctx, ops int) {
		const width = 32
		work := runtime.NewChan[int](0)
		ack := runtime.NewChan[int](0)
		futs := make([]*runtime.Future, width)
		for i := 0; i < width; i++ {
			futs[i] = c.Spawn(func(cc *runtime.Ctx) {
				for {
					v, ok := work.RecvOK(cc)
					if !ok {
						return
					}
					ack.Send(cc, v)
				}
			})
		}
		for r := 0; r < ops; r++ {
			for i := 0; i < width; i++ {
				work.Send(c, i)
			}
			for i := 0; i < width; i++ {
				ack.Recv(c)
			}
		}
		work.Close()
		for i := 0; i < width; i++ {
			futs[i].Await(c)
		}
	}

	type wl struct {
		name   string
		shards int
		ops    int
		body   func(*runtime.Ctx, int)
	}
	workloads := []wl{
		{"steal-skew", 1, cfg.SkewOps, skew},
		{"cross-shard", 2, cfg.SkewOps, skew},
		{"resume-storm", 2, cfg.StormOps, storm},
	}
	for _, w := range workloads {
		// Interleave the single-item and batched passes rep by rep so a
		// noisy system phase hits both policies alike; the batched row
		// carries the median paired ratio as its within-run comparison.
		single, batched, err := measureStealPair(cfg, w.name, w.shards, w.ops, w.body)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		res.Rows = append(res.Rows, single, batched)
	}
	return res, nil
}

var stealBenchSink uint64

// measureStealPair times body under both steal policies, alternating
// single-item and batched passes for cfg.Repeats rounds. Each pass runs
// body inside the root task of a fresh Run — warmup sub-pass to prime
// the worker free lists, then the measured sub-pass. A row reports the
// fastest pass for its policy (NsPerOp plus that pass's steal counters;
// the counters cover the whole run, warmup included — both policies
// warm identically, so the ratios stay comparable), while the batched
// row's VsSingleNs is the median of the per-rep paired ratios, the
// statistic that survives a timeshared box: the two passes of a rep are
// adjacent in time, so their ratio cancels the system phase, and the
// median shrugs off the odd rep where a descheduled worker distorted
// one side.
func measureStealPair(cfg StealBenchConfig, name string, shards, ops int,
	body func(*runtime.Ctx, int)) (single, batched StealBenchRow, err error) {
	single = StealBenchRow{Name: name, Workers: 4, Shards: shards, MaxBatch: 1, Ops: ops}
	batched = StealBenchRow{Name: name, Workers: 4, Shards: shards, MaxBatch: runtime.DefaultStealBatch, Ops: ops}
	onePass := func(row *StealBenchRow, maxBatch int, rep int) (float64, error) {
		var ns float64
		st, err := runtime.Run(runtime.Config{
			Workers: 4, Mode: runtime.LatencyHiding, Seed: cfg.Seed + uint64(rep),
			StealShards: shards, MaxStealBatch: maxBatch,
		}, func(c *runtime.Ctx) {
			warm := ops / 10
			if warm > 2048 {
				warm = 2048
			}
			body(c, warm)
			start := time.Now()
			body(c, ops)
			ns = float64(time.Since(start).Nanoseconds()) / float64(ops)
		})
		if err != nil {
			return 0, err
		}
		if rep == 0 || ns < row.NsPerOp {
			row.NsPerOp = ns
			row.StealAttempts = st.StealAttempts
			row.Steals = st.Steals
			row.BatchItems = st.BatchItems
			row.StealsLocal = st.StealsLocal
			row.StealsRemote = st.StealsRemote
			row.ItemsPerSteal, row.LocalFrac = 0, 0
			if st.Steals > 0 {
				row.ItemsPerSteal = float64(st.BatchItems) / float64(st.Steals)
				row.LocalFrac = float64(st.StealsLocal) / float64(st.Steals)
			}
		}
		return ns, nil
	}
	ratios := make([]float64, 0, cfg.Repeats)
	for rep := 0; rep < cfg.Repeats; rep++ {
		sns, err := onePass(&single, 1, rep)
		if err != nil {
			return single, batched, fmt.Errorf("max_batch=1: %w", err)
		}
		bns, err := onePass(&batched, 0, rep)
		if err != nil {
			return single, batched, fmt.Errorf("max_batch=%d: %w", batched.MaxBatch, err)
		}
		if sns > 0 {
			ratios = append(ratios, bns/sns)
		}
	}
	batched.VsSingleNs = median(ratios)
	return single, batched, nil
}

// median returns the middle value of xs (mean of the middle two for an
// even count), or 0 for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		return sorted[n/2]
	} else {
		return (sorted[n/2-1] + sorted[n/2]) / 2
	}
}

// Table renders the sweep, single-item baselines beside batched rows.
func (r *StealBenchResult) Table() *stats.Table {
	t := stats.NewTable("workload", "shards", "batch", "ns/op", "attempts", "steals", "items", "items/steal", "local%", "vs single")
	for _, row := range r.Rows {
		vs := "baseline"
		if row.VsSingleNs > 0 {
			vs = fmt.Sprintf("%+.1f%%", 100*(row.VsSingleNs-1))
		}
		t.AddRowf(row.Name, row.Shards, row.MaxBatch,
			fmt.Sprintf("%.0f", row.NsPerOp),
			row.StealAttempts, row.Steals, row.BatchItems,
			fmt.Sprintf("%.2f", row.ItemsPerSteal),
			fmt.Sprintf("%.1f%%", 100*row.LocalFrac),
			vs)
	}
	return t
}

// Check enforces the steal-economics contract. Machine-independent
// gates on every row: the locality split must sum to the steal count,
// every steal moves at least one item, and single-item rows move
// exactly one. Policy gates: the skewed fan-out must average >= 2 items
// per successful steal under batching (the steal-half amortization
// actually amortizing), and the cross-shard workload must exercise both
// the local tier and the escalation tier. Timing gates (skipped at
// smoke scale): on the steal-heavy skew the batched policy must beat
// the single-item baseline measured in the same run, and the noisier
// storm must stay within 15% of its baseline; cross-shard wall time is
// recorded but not gated (see the comment at the gate).
func (r *StealBenchResult) Check() error {
	rows := make(map[string]StealBenchRow, len(r.Rows))
	for _, row := range r.Rows {
		kind := "batched"
		if row.MaxBatch == 1 {
			kind = "single"
		}
		rows[row.Name+"/"+kind] = row

		if row.StealsLocal+row.StealsRemote != row.Steals {
			return fmt.Errorf("%s (batch=%d): local %d + remote %d != steals %d",
				row.Name, row.MaxBatch, row.StealsLocal, row.StealsRemote, row.Steals)
		}
		// The storm's batched variant may legitimately see zero steals
		// in a fast pass — bulk resume keeps each worker fed — so the
		// steal-heaviness requirement binds only on the skew shapes.
		if row.Steals == 0 && row.Name != "resume-storm" {
			return fmt.Errorf("%s (batch=%d): no successful steals; workload is not steal-heavy", row.Name, row.MaxBatch)
		}
		if row.BatchItems < row.Steals {
			return fmt.Errorf("%s (batch=%d): %d items over %d steals; a steal must move >= 1 item",
				row.Name, row.MaxBatch, row.BatchItems, row.Steals)
		}
		if row.MaxBatch == 1 && row.BatchItems != row.Steals {
			return fmt.Errorf("%s single-item baseline moved %d items over %d steals, want exactly 1 per steal",
				row.Name, row.BatchItems, row.Steals)
		}
	}
	skew := rows["steal-skew/batched"]
	if skew.ItemsPerSteal < 2 {
		return fmt.Errorf("steal-skew batched: %.2f items/steal, want >= 2 (steal-half batching not amortizing)",
			skew.ItemsPerSteal)
	}
	cross := rows["cross-shard/batched"]
	if cross.StealsLocal == 0 || cross.StealsRemote == 0 {
		return fmt.Errorf("cross-shard batched: local %d / remote %d steals; both locality tiers must fire",
			cross.StealsLocal, cross.StealsRemote)
	}
	if r.Smoke {
		return nil
	}
	// Timing gates, on the median paired batched/single ratio (see
	// VsSingleNs). steal-skew is the workload the batching exists for
	// and must actually improve; the storm must not regress (15% slack
	// for its channel-heavy noise). cross-shard carries no timing gate:
	// the local-tier dwell deliberately delays escalation, trading wall
	// time for steal locality, and on a timeshared box that trade's
	// wall-time side swings tens of percent run to run — the row records
	// the economics, the tier-coverage gate above pins the behavior.
	if skew.VsSingleNs >= 1 {
		return fmt.Errorf("steal-skew: batched does not beat the same-run single-item baseline (median paired ratio %+.1f%%)",
			100*(skew.VsSingleNs-1))
	}
	if storm := rows["resume-storm/batched"]; storm.VsSingleNs > 1.15 {
		return fmt.Errorf("resume-storm: batched is %.1f%% slower than the same-run single-item baseline (max +15%%)",
			100*(storm.VsSingleNs-1))
	}
	return nil
}
