package experiments

import (
	"fmt"
	"sync"
	"time"

	"lhws/internal/runtime"
	"lhws/internal/stats"
)

// ResponsivenessConfig parameterizes the interactive-latency experiment:
// an interactive request stream (each request does a small remote fetch
// and a small computation) shares the runtime with a batch computation
// that keeps all workers busy. The measured quantity is per-request
// response time — the motivating concern of the paper's title
// ("interacting parallel computations") and the direction its authors
// pursued in follow-on responsiveness work.
type ResponsivenessConfig struct {
	// Requests is the number of interactive requests.
	Requests int
	// Interarrival separates request arrivals (driven by a timer task).
	Interarrival time.Duration
	// Fetch is the remote-call latency inside each request handler.
	Fetch time.Duration
	// HandlerSpin is the handler compute in busy-loop iterations.
	HandlerSpin int
	// BatchSpin is the per-chunk compute of the background batch load, and
	// BatchChunks how many chunks it spawns.
	BatchSpin, BatchChunks int
	// Workers is the worker count.
	Workers int
}

// ScaledResponsiveness finishes in a couple of seconds.
func ScaledResponsiveness() ResponsivenessConfig {
	return ResponsivenessConfig{
		Requests:     40,
		Interarrival: 2 * time.Millisecond,
		Fetch:        3 * time.Millisecond,
		HandlerSpin:  20_000,
		BatchSpin:    200_000,
		BatchChunks:  256,
		Workers:      2,
	}
}

// ResponsivenessRow summarizes one mode's response-time distribution.
type ResponsivenessRow struct {
	Mode     string
	P50, P95 time.Duration
	Max      time.Duration
	Wall     time.Duration
}

// ResponsivenessResult compares request response times across modes.
type ResponsivenessResult struct {
	Cfg  ResponsivenessConfig
	Rows []ResponsivenessRow
}

// Responsiveness runs the mixed interactive+batch workload in both modes
// and gathers response-time percentiles.
func Responsiveness(cfg ResponsivenessConfig) (*ResponsivenessResult, error) {
	res := &ResponsivenessResult{Cfg: cfg}
	for _, mode := range []runtime.Mode{runtime.LatencyHiding, runtime.Blocking} {
		times, wall, err := runMixed(cfg, mode)
		if err != nil {
			return nil, err
		}
		ms := make([]float64, len(times))
		for i, d := range times {
			ms[i] = float64(d)
		}
		res.Rows = append(res.Rows, ResponsivenessRow{
			Mode: mode.String(),
			P50:  time.Duration(stats.Percentile(ms, 50)),
			P95:  time.Duration(stats.Percentile(ms, 95)),
			Max:  time.Duration(stats.Percentile(ms, 100)),
			Wall: wall,
		})
	}
	return res, nil
}

func runMixed(cfg ResponsivenessConfig, mode runtime.Mode) ([]time.Duration, time.Duration, error) {
	var (
		mu    sync.Mutex
		times []time.Duration
	)
	spin := func(n int) int64 {
		var acc int64
		for i := 0; i < n; i++ {
			acc += int64(i ^ (i >> 3))
		}
		return acc
	}
	st, err := runtime.Run(runtime.Config{Workers: cfg.Workers, Mode: mode}, func(c *runtime.Ctx) {
		// Background batch load: independent compute chunks.
		batch := c.Spawn(func(cc *runtime.Ctx) {
			runtime.For(cc, 0, cfg.BatchChunks, 1, func(ccc *runtime.Ctx, i int) {
				spin(cfg.BatchSpin)
			})
		})
		// Interactive stream: requests arrive on a timer; each handler
		// fetches remotely and computes, recording its response time.
		var handlers []*runtime.Future
		for i := 0; i < cfg.Requests; i++ {
			c.Latency(cfg.Interarrival) // wait for the next arrival
			start := time.Now()
			handlers = append(handlers, c.Spawn(func(cc *runtime.Ctx) {
				cc.Latency(cfg.Fetch)
				spin(cfg.HandlerSpin)
				elapsed := time.Since(start)
				mu.Lock()
				times = append(times, elapsed)
				mu.Unlock()
			}))
		}
		for _, h := range handlers {
			h.Await(c)
		}
		batch.Await(c)
	})
	if err != nil {
		return nil, 0, err
	}
	return times, st.Wall, nil
}

// Table renders the response-time comparison.
func (r *ResponsivenessResult) Table() *stats.Table {
	t := stats.NewTable("mode", "p50 response", "p95 response", "max response", "total wall")
	for _, row := range r.Rows {
		t.AddRowf(row.Mode, row.P50.Round(time.Millisecond).String(), row.P95.Round(time.Millisecond).String(),
			row.Max.Round(time.Millisecond).String(), row.Wall.Round(time.Millisecond).String())
	}
	return t
}

// Check asserts that latency hiding keeps median response time well below
// the blocking baseline's on the mixed workload.
func (r *ResponsivenessResult) Check() error {
	if len(r.Rows) != 2 {
		return fmt.Errorf("responsiveness: expected 2 rows")
	}
	lh, bl := r.Rows[0], r.Rows[1]
	if lh.P50 >= bl.P50 {
		return fmt.Errorf("responsiveness: latency-hiding p50 %v not below blocking %v", lh.P50, bl.P50)
	}
	return nil
}
