package experiments

import (
	"os"
	goruntime "runtime"
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	// The wall-clock experiment runs the goroutine runtime; give its
	// workers real OS threads even on single-core hosts.
	if goruntime.GOMAXPROCS(0) < 4 {
		goruntime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func TestDeltaRoundsCalibration(t *testing.T) {
	// fib(8) has 100 vertices ≈ 150ms of element work; δ=500ms maps to
	// 500/150·100 ≈ 333 rounds.
	if got := DeltaRounds(500, 8); got != 333 {
		t.Errorf("DeltaRounds(500, 8) = %d, want 333", got)
	}
	if got := DeltaRounds(150, 8); got != 100 {
		t.Errorf("DeltaRounds(150, 8) = %d, want 100", got)
	}
	if got := DeltaRounds(50, 8); got != 33 {
		t.Errorf("DeltaRounds(50, 8) = %d, want 33", got)
	}
	// Tiny latencies clamp to the minimum heavy weight.
	if got := DeltaRounds(1, 8); got != 2 {
		t.Errorf("DeltaRounds(1, 8) = %d, want 2", got)
	}
}

// smallFig11 shrinks the scaled config further so the full test suite
// stays fast; shape checks are scale-free (they depend on the ratio).
func smallFig11(deltaMS float64) Fig11Config {
	return Fig11Config{N: 120, FibWork: 6, DeltaMS: deltaMS, Workers: []int{1, 2, 4, 8, 16}, Seed: 1}
}

func TestFig11HighLatencyPanel(t *testing.T) {
	r, err := Fig11(smallFig11(500))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
	last := r.Points[len(r.Points)-1]
	if last.LHWSSpeedup <= float64(last.P) {
		t.Errorf("expected superlinear LHWS speedup at δ=500ms, got %.1f at P=%d", last.LHWSSpeedup, last.P)
	}
}

func TestFig11MediumLatencyPanel(t *testing.T) {
	r, err := Fig11(smallFig11(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestFig11LowLatencyPanel(t *testing.T) {
	r, err := Fig11(smallFig11(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
	// Near parity: LHWS within 25% of WS everywhere.
	for _, pt := range r.Points {
		if pt.RoundsRatio < 0.75 {
			t.Errorf("P=%d: LHWS %.2fx of WS at negligible latency", pt.P, pt.RoundsRatio)
		}
	}
}

func TestFig11PanelOrdering(t *testing.T) {
	// The benefit of latency hiding must grow with latency: ratio(500ms) ≥
	// ratio(50ms) ≥ ratio(1ms) at the top worker count.
	var ratios []float64
	for _, d := range []float64{500, 50, 1} {
		r, err := Fig11(smallFig11(d))
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, r.Points[len(r.Points)-1].RoundsRatio)
	}
	if !(ratios[0] >= ratios[1] && ratios[1] >= ratios[2]) {
		t.Errorf("WS/LHWS ratios not decreasing with latency: %v", ratios)
	}
}

func TestFig11TableRenders(t *testing.T) {
	r, err := Fig11(Fig11Config{N: 16, FibWork: 4, DeltaMS: 100, Workers: []int{1, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Table().String()
	for _, want := range []string{"LHWS speedup", "WS/LHWS"} {
		if !strings.Contains(tb, want) {
			t.Errorf("table missing %q:\n%s", want, tb)
		}
	}
}

func TestGreedyExperiment(t *testing.T) {
	r, err := Greedy(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestBoundExperiment(t *testing.T) {
	r, err := Bound(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestLemmasExperiment(t *testing.T) {
	r, err := Lemmas(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestStealsExperiment(t *testing.T) {
	r, err := Steals(11)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestUWidthExperiment(t *testing.T) {
	r, err := UWidth(13)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
	// The long-latency map-reduce rows should observe the full width: every
	// fetch in flight at once.
	sawFull := false
	for _, row := range r.Rows {
		if strings.HasPrefix(row.Workload, "mapreduce") && row.Observed == row.ExactU {
			sawFull = true
		}
	}
	if !sawFull {
		t.Errorf("no map-reduce run realized its full suspension width:\n%s", r.Table())
	}
}

func TestWallclockExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment in -short mode")
	}
	cfg := WallclockConfig{N: 60, Delta: 4 * 1e6, Workers: []int{1, 2}, Spin: 5000} // 4ms
	r, err := Wallclock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestVariantsExperiment(t *testing.T) {
	r, err := Variants(17)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestPotentialExperiment(t *testing.T) {
	r, err := Potential(29)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestResponsivenessExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment in -short mode")
	}
	cfg := ScaledResponsiveness()
	cfg.Requests = 20
	cfg.BatchChunks = 64
	r, err := Responsiveness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestMultiprogrammedExperiment(t *testing.T) {
	r, err := Multiprogrammed(41)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

func TestScaleExperiment(t *testing.T) {
	r, err := Scale(43)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s", err, r.Table())
	}
}

// TestAllTablesRender drives every experiment's Table through rendering
// and checks headers and row counts, so the harness output paths stay
// exercised even when individual experiments change.
func TestAllTablesRender(t *testing.T) {
	type tabled interface{ Check() error }
	cases := map[string]func() (interface{ Check() error }, string, int){
		"greedy": func() (interface{ Check() error }, string, int) {
			r, err := Greedy(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
		"bound": func() (interface{ Check() error }, string, int) {
			r, err := Bound(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
		"lemmas": func() (interface{ Check() error }, string, int) {
			r, err := Lemmas(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
		"steals": func() (interface{ Check() error }, string, int) {
			r, err := Steals(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
		"variants": func() (interface{ Check() error }, string, int) {
			r, err := Variants(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
		"uwidth": func() (interface{ Check() error }, string, int) {
			r, err := UWidth(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
		"multiprog": func() (interface{ Check() error }, string, int) {
			r, err := Multiprogrammed(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
		"scale": func() (interface{ Check() error }, string, int) {
			r, err := Scale(1)
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Table().String(), len(r.Rows)
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			r, table, rows := fn()
			if rows == 0 {
				t.Fatal("no rows")
			}
			if lines := strings.Count(table, "\n"); lines < rows+2 {
				t.Errorf("table too short: %d lines for %d rows\n%s", lines, rows, table)
			}
			if err := r.Check(); err != nil {
				t.Errorf("check: %v", err)
			}
		})
	}
}

func TestIOBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket experiment in -short mode")
	}
	// Shrunk configuration: the recorded scale (and its >= 3x Check gate)
	// is make bench-io's job; here we assert the harness itself — both
	// modes complete every request, the bridge pool stays within its cap,
	// and hiding beats blocking by a margin no loaded CI box erases.
	// Workers stays at 4: in blocking mode the root's AwaitChan and the
	// accept spine each pin a worker, so fewer than three workers would
	// leave the handlers starved.
	cfg := IOBenchConfig{Workers: 4, Conns: 10, Rounds: 1, Delta: 20 * time.Millisecond, Frame: 8}
	r, err := IOBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows, want 2\n%s", len(r.Rows), r.Table())
	}
	for _, row := range r.Rows {
		if row.Requests != cfg.Conns*cfg.Rounds {
			t.Errorf("%s: %d requests, want %d", row.Mode, row.Requests, cfg.Conns*cfg.Rounds)
		}
		if row.BridgePeak > row.BridgeCap {
			t.Errorf("%s: bridge peak %d exceeds cap %d", row.Mode, row.BridgePeak, row.BridgeCap)
		}
	}
	if r.Ratio < 1.5 {
		t.Errorf("hiding only %.2fx over blocking at the smoke scale, want >= 1.5x\n%s",
			r.Ratio, r.Table())
	}
}
