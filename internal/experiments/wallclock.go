package experiments

import (
	"fmt"
	"time"

	"lhws/internal/runtime"
	"lhws/internal/stats"
)

// WallclockConfig parameterizes the real-runtime (wall-clock) counterpart
// of Figure 11: the §5 distributed map-reduce executed by the goroutine
// runtime with actual timer latencies.
type WallclockConfig struct {
	// N is the number of elements fetched "remotely".
	N int
	// Delta is the real per-fetch latency.
	Delta time.Duration
	// Workers is the worker-count sweep.
	Workers []int
	// Spin is the per-element compute cost in busy-loop iterations.
	Spin int
}

// ScaledWallclock is a configuration that finishes in a few seconds: 200
// fetches of 5ms each. Latency dominates compute, the δ=500ms regime.
func ScaledWallclock() WallclockConfig {
	return WallclockConfig{N: 200, Delta: 5 * time.Millisecond, Workers: []int{1, 2, 4}, Spin: 20000}
}

// WallclockPoint is one measured point.
type WallclockPoint struct {
	P       int
	LH      time.Duration
	Block   time.Duration
	Speedup float64 // Block(1) / LH(P)
	Ratio   float64 // Block(P) / LH(P)
}

// WallclockResult is the wall-clock comparison.
type WallclockResult struct {
	Cfg    WallclockConfig
	Base   time.Duration // blocking mode, one worker
	Points []WallclockPoint
}

// Wallclock runs the map-reduce on the real runtime in both modes.
func Wallclock(cfg WallclockConfig) (*WallclockResult, error) {
	run := func(mode runtime.Mode, p int) (time.Duration, error) {
		st, err := runtime.Run(runtime.Config{Workers: p, Mode: mode, Seed: 1}, func(c *runtime.Ctx) {
			mapReduceBody(c, 0, cfg.N, cfg.Delta, cfg.Spin)
		})
		if err != nil {
			return 0, err
		}
		return st.Wall, nil
	}
	base, err := run(runtime.Blocking, 1)
	if err != nil {
		return nil, err
	}
	res := &WallclockResult{Cfg: cfg, Base: base}
	for _, p := range cfg.Workers {
		lh, err := run(runtime.LatencyHiding, p)
		if err != nil {
			return nil, err
		}
		bl := base
		if p != 1 {
			bl, err = run(runtime.Blocking, p)
			if err != nil {
				return nil, err
			}
		}
		res.Points = append(res.Points, WallclockPoint{
			P: p, LH: lh, Block: bl,
			Speedup: float64(base) / float64(lh),
			Ratio:   float64(bl) / float64(lh),
		})
	}
	return res, nil
}

// mapReduceBody is the Figure-8 computation on the real runtime: fetch
// each element with latency, burn Spin iterations of compute, and reduce.
func mapReduceBody(c *runtime.Ctx, lo, hi int, delta time.Duration, spin int) int64 {
	if hi-lo == 1 {
		c.Latency(delta) // getValue(lo)
		var acc int64
		for i := 0; i < spin; i++ {
			acc += int64(i ^ (i >> 3))
		}
		return acc%100 + int64(lo)
	}
	mid := (lo + hi) / 2
	right := runtime.SpawnValue(c, func(cc *runtime.Ctx) int64 {
		return mapReduceBody(cc, mid, hi, delta, spin)
	})
	left := mapReduceBody(c, lo, mid, delta, spin)
	return left + right.Await(c)
}

// Table renders the wall-clock comparison.
func (r *WallclockResult) Table() *stats.Table {
	t := stats.NewTable("P", "LHWS wall", "blocking wall", "LHWS speedup", "blocking/LHWS")
	for _, pt := range r.Points {
		t.AddRowf(pt.P, pt.LH.Round(time.Millisecond).String(), pt.Block.Round(time.Millisecond).String(), pt.Speedup, pt.Ratio)
	}
	return t
}

// Check asserts that with latency ≫ compute, the latency-hiding runtime
// beats blocking by a wide margin at every worker count.
func (r *WallclockResult) Check() error {
	serialLatency := time.Duration(r.Cfg.N) * r.Cfg.Delta
	for _, pt := range r.Points {
		if pt.Block < serialLatency/time.Duration(2*pt.P) {
			return fmt.Errorf("wallclock: blocking P=%d finished in %v, faster than latency floor", pt.P, pt.Block)
		}
		if pt.Ratio < 2 {
			return fmt.Errorf("wallclock: P=%d latency hiding only %.1fx faster than blocking", pt.P, pt.Ratio)
		}
	}
	return nil
}
