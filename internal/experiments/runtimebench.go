package experiments

import (
	"fmt"
	goruntime "runtime"
	"time"

	"lhws/internal/runtime"
	"lhws/internal/stats"
)

// Runtime-overhead microbenchmarks (`-exp runtime`): the per-quantum cost
// of the real (goroutine) runtime's hot paths, mirrored from
// internal/runtime's testing benchmarks so they can be regenerated and
// regression-checked outside `go test` and emitted as BENCH_runtime.json.
// An "op" is one scheduling quantum's worth of work per workload: one
// spawn+await for the ladder, one spawned task for the fan-outs, one
// 32-wide broadcast round for the resume storm.
//
// Each workload is measured three times and the fastest pass is reported
// (benchstat's convention for noisy shared machines); allocations come
// from runtime.MemStats deltas around the measured loop.
//
// The baseline columns are the pre-overhaul numbers recorded in
// EXPERIMENTS.md ("Runtime overheads", 2026-08, Intel Xeon @ 2.10GHz,
// GOMAXPROCS=4): per-spawn goroutine launch, per-steal deque allocation,
// and per-task resume injection, before pooling and pfor-tree bulk
// injection. Improvement percentages are only meaningful on comparable
// hardware; the allocation gates are machine-independent.

// RuntimeBenchRow is one workload's measurement.
type RuntimeBenchRow struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"`
	Ops            int     `json:"ops"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BaselineNs     float64 `json:"baseline_ns_per_op"`
	BaselineAllocs float64 `json:"baseline_allocs_per_op"`
	ImprovementPct float64 `json:"improvement_pct"`
}

// RuntimeBenchResult is the full sweep, serialized as BENCH_runtime.json.
type RuntimeBenchResult struct {
	GoMaxProcs int               `json:"gomaxprocs"`
	Seed       uint64            `json:"seed"`
	Rows       []RuntimeBenchRow `json:"rows"`
}

// runtimeBaseline is the pre-overhaul record (see the package comment).
var runtimeBaseline = map[string][2]float64{ // name/workers → {ns/op, allocs/op}
	"spawn-await-ladder/1": {2622, 13},
	"spawn-await-ladder/4": {3021, 13},
	"wide-fanout/1":        {1461, 8},
	"wide-fanout/4":        {1629, 8},
	"steal-skew/4":         {2148, 8},
	"resume-storm/1":       {6941, 24},
	"resume-storm/4":       {678619, 254},
}

const runtimeBenchRepeats = 5

// RuntimeBench measures the hot-path workloads and returns the sweep.
func RuntimeBench(seed uint64) (*RuntimeBenchResult, error) {
	res := &RuntimeBenchResult{GoMaxProcs: goruntime.GOMAXPROCS(0), Seed: seed}
	leaf := func(*runtime.Ctx) {}
	spin := func(*runtime.Ctx) {
		x := uint64(88172645463325252)
		for i := 0; i < 64; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		runtimeBenchSink = x
	}

	type workload struct {
		name    string
		workers int
		ops     int
		body    func(c *runtime.Ctx, ops int)
	}
	ladder := func(c *runtime.Ctx, ops int) {
		for i := 0; i < ops; i++ {
			c.Spawn(leaf).Await(c)
		}
	}
	fanout := func(fanLeaf func(*runtime.Ctx), fan int) func(c *runtime.Ctx, ops int) {
		return func(c *runtime.Ctx, ops int) {
			futs := make([]*runtime.Future, fan)
			for done := 0; done < ops; {
				n := fan
				if ops-done < n {
					n = ops - done
				}
				for i := 0; i < n; i++ {
					futs[i] = c.Spawn(fanLeaf)
				}
				for i := 0; i < n; i++ {
					futs[i].Await(c)
				}
				done += n
			}
		}
	}
	storm := func(c *runtime.Ctx, ops int) {
		const width = 32
		work := runtime.NewChan[int](0)
		ack := runtime.NewChan[int](0)
		futs := make([]*runtime.Future, width)
		for i := 0; i < width; i++ {
			futs[i] = c.Spawn(func(cc *runtime.Ctx) {
				for {
					v, ok := work.RecvOK(cc)
					if !ok {
						return
					}
					ack.Send(cc, v)
				}
			})
		}
		for r := 0; r < ops; r++ {
			for i := 0; i < width; i++ {
				work.Send(c, i)
			}
			for i := 0; i < width; i++ {
				ack.Recv(c)
			}
		}
		work.Close()
		for i := 0; i < width; i++ {
			futs[i].Await(c)
		}
	}

	workloads := []workload{
		{"spawn-await-ladder", 1, 200_000, ladder},
		{"spawn-await-ladder", 4, 200_000, ladder},
		{"wide-fanout", 1, 200_000, fanout(leaf, 256)},
		{"wide-fanout", 4, 200_000, fanout(leaf, 256)},
		{"steal-skew", 4, 100_000, fanout(spin, 512)},
		{"resume-storm", 1, 60_000, storm},
		{"resume-storm", 4, 20_000, storm},
	}
	for _, wl := range workloads {
		row, err := measureRuntimeWorkload(seed, wl.name, wl.workers, wl.ops, wl.body)
		if err != nil {
			return nil, fmt.Errorf("%s/%d: %w", wl.name, wl.workers, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

var runtimeBenchSink uint64

// measureRuntimeWorkload runs body inside the root task of a fresh Run:
// a warmup pass primes the worker-local free lists, then the measured
// pass is timed with allocation deltas. The fastest of
// runtimeBenchRepeats passes wins; allocations come from the same pass.
func measureRuntimeWorkload(seed uint64, name string, workers, ops int, body func(*runtime.Ctx, int)) (RuntimeBenchRow, error) {
	row := RuntimeBenchRow{Name: name, Workers: workers, Ops: ops}
	for rep := 0; rep < runtimeBenchRepeats; rep++ {
		var ns, bytesOp, allocsOp float64
		_, err := runtime.Run(runtime.Config{Workers: workers, Mode: runtime.LatencyHiding, Seed: seed}, func(c *runtime.Ctx) {
			warm := ops / 10
			if warm > 2048 {
				warm = 2048
			}
			body(c, warm)
			var m0, m1 goruntime.MemStats
			goruntime.ReadMemStats(&m0)
			start := time.Now()
			body(c, ops)
			elapsed := time.Since(start)
			goruntime.ReadMemStats(&m1)
			ns = float64(elapsed.Nanoseconds()) / float64(ops)
			bytesOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops)
			allocsOp = float64(m1.Mallocs-m0.Mallocs) / float64(ops)
		})
		if err != nil {
			return row, err
		}
		if rep == 0 || ns < row.NsPerOp {
			row.NsPerOp = ns
			row.BytesPerOp = bytesOp
			row.AllocsPerOp = allocsOp
		}
	}
	if base, ok := runtimeBaseline[fmt.Sprintf("%s/%d", name, workers)]; ok {
		row.BaselineNs = base[0]
		row.BaselineAllocs = base[1]
		row.ImprovementPct = 100 * (1 - row.NsPerOp/base[0])
	}
	return row, nil
}

// Table renders the sweep with the pre-overhaul baseline alongside.
func (r *RuntimeBenchResult) Table() *stats.Table {
	t := stats.NewTable("workload", "P", "ns/op", "allocs/op", "B/op", "baseline ns/op", "baseline allocs", "Δns")
	for _, row := range r.Rows {
		t.AddRowf(row.Name, row.Workers,
			fmt.Sprintf("%.0f", row.NsPerOp),
			fmt.Sprintf("%.2f", row.AllocsPerOp),
			fmt.Sprintf("%.0f", row.BytesPerOp),
			fmt.Sprintf("%.0f", row.BaselineNs),
			fmt.Sprintf("%.0f", row.BaselineAllocs),
			fmt.Sprintf("%+.1f%%", -row.ImprovementPct))
	}
	return t
}

// Check enforces the machine-independent contract — pooled paths stay
// allocation-free (the storm rounds exactly, spawn paths at their one
// documented Future per public Spawn plus slack for stray runtime
// allocations) — and a conservative floor under the recorded ≥25%
// improvement on the ladder and storm workloads (measured ≈29–99% on the
// reference machine; the floor is 20% so scheduler noise cannot flake a
// genuinely healthy run).
func (r *RuntimeBenchResult) Check() error {
	for _, row := range r.Rows {
		switch row.Name {
		case "resume-storm":
			if row.AllocsPerOp > 0.5 {
				return fmt.Errorf("%s/%d: %.2f allocs/round, want 0 (steady-state resume injection must not allocate)",
					row.Name, row.Workers, row.AllocsPerOp)
			}
		default:
			if row.AllocsPerOp > 2 {
				return fmt.Errorf("%s/%d: %.2f allocs/op, want <= 2 (one public Future plus slack)",
					row.Name, row.Workers, row.AllocsPerOp)
			}
		}
		if row.Name == "spawn-await-ladder" || row.Name == "resume-storm" {
			if row.ImprovementPct < 20 {
				return fmt.Errorf("%s/%d: only %.1f%% faster than the recorded baseline (%.0f vs %.0f ns/op), want >= 20%%",
					row.Name, row.Workers, row.ImprovementPct, row.NsPerOp, row.BaselineNs)
			}
		}
	}
	return nil
}
