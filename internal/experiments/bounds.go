package experiments

import (
	"fmt"
	"math"

	"lhws/internal/sched"
	"lhws/internal/stats"
	"lhws/internal/workload"
)

// GreedyRow is one measurement of the Theorem-1 experiment.
type GreedyRow struct {
	Workload string
	P        int
	W, S     int64
	Rounds   int64
	Bound    int64 // W/P + S
	Fill     float64
}

// GreedyResult validates Theorem 1: every greedy schedule is within W/P+S.
type GreedyResult struct{ Rows []GreedyRow }

// Greedy runs the offline greedy scheduler over representative workloads
// and worker counts and compares schedule lengths against Theorem 1.
func Greedy(seed uint64) (*GreedyResult, error) {
	ws := []*workload.Workload{
		workload.Fib(14),
		workload.MapReduce(workload.MapReduceConfig{N: 64, Delta: 41, FibWork: 5}),
		workload.Server(workload.ServerConfig{Requests: 20, Delta: 31, FibWork: 5}),
		workload.Pipeline(workload.PipelineConfig{Items: 10, Stages: 4, StageWork: 6, Delta: 23}),
		workload.Random(workload.RandomConfig{Seed: seed, TargetVertices: 400, PHeavy: 0.3, MaxDelta: 30}),
	}
	res := &GreedyResult{}
	for _, w := range ws {
		for _, p := range []int{1, 2, 4, 8, 16, 32} {
			r, err := sched.RunGreedy(w.G, p)
			if err != nil {
				return nil, err
			}
			bound := sched.GreedyBound(w.G, p)
			res.Rows = append(res.Rows, GreedyRow{
				Workload: w.Name, P: p, W: w.G.Work(), S: w.G.Span(),
				Rounds: r.Stats.Rounds, Bound: bound,
				Fill: float64(r.Stats.Rounds) / float64(bound),
			})
		}
	}
	return res, nil
}

// Table renders measured length vs. the Theorem-1 bound.
func (r *GreedyResult) Table() *stats.Table {
	t := stats.NewTable("workload", "P", "W", "S", "rounds", "W/P+S", "rounds/bound")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.P, row.W, row.S, row.Rounds, row.Bound, row.Fill)
	}
	return t
}

// Check fails if any schedule exceeds its bound.
func (r *GreedyResult) Check() error {
	for _, row := range r.Rows {
		if row.Rounds > row.Bound {
			return fmt.Errorf("greedy: %s P=%d length %d > bound %d", row.Workload, row.P, row.Rounds, row.Bound)
		}
	}
	return nil
}

// BoundRow is one measurement of the Theorem-2 experiment.
type BoundRow struct {
	Workload string
	P        int
	W, S     int64
	U        int
	Rounds   int64
	Bound    float64 // W/P + S·U·(1+lg U), the Theorem-2 expression
	Ratio    float64 // rounds / bound: the implied constant
}

// BoundResult validates Theorem 2 empirically: the measured rounds divided
// by the bound expression stays below a small constant across workloads,
// worker counts, and suspension widths.
type BoundResult struct{ Rows []BoundRow }

// theorem2Expr evaluates W/P + S·max(U,1)·(1+lg max(U,1)).
func theorem2Expr(w, s int64, u int, p int) float64 {
	uu := float64(u)
	if uu < 1 {
		uu = 1
	}
	return float64(w)/float64(p) + float64(s)*uu*(1+math.Log2(uu))
}

// Bound sweeps workloads with widely varying U and measures the implied
// constant of Theorem 2.
func Bound(seed uint64) (*BoundResult, error) {
	ws := []*workload.Workload{
		workload.Fib(13),
		workload.MapReduce(workload.MapReduceConfig{N: 16, Delta: 33, FibWork: 5}),
		workload.MapReduce(workload.MapReduceConfig{N: 128, Delta: 33, FibWork: 5}),
		workload.Server(workload.ServerConfig{Requests: 24, Delta: 33, FibWork: 5}),
		workload.Pipeline(workload.PipelineConfig{Items: 12, Stages: 3, StageWork: 8, Delta: 21}),
		workload.Random(workload.RandomConfig{Seed: seed, TargetVertices: 500, PHeavy: 0.25, MaxDelta: 40}),
	}
	res := &BoundResult{}
	for _, w := range ws {
		u := w.G.SuspensionWidth()
		for _, p := range []int{1, 2, 4, 8, 16} {
			r, err := sched.RunLHWS(w.G, sched.Options{Workers: p, Seed: seed})
			if err != nil {
				return nil, err
			}
			bound := theorem2Expr(w.G.Work(), w.G.Span(), u, p)
			res.Rows = append(res.Rows, BoundRow{
				Workload: w.Name, P: p, W: w.G.Work(), S: w.G.Span(), U: u,
				Rounds: r.Stats.Rounds, Bound: bound,
				Ratio: float64(r.Stats.Rounds) / bound,
			})
		}
	}
	return res, nil
}

// Table renders the Theorem-2 measurements.
func (r *BoundResult) Table() *stats.Table {
	t := stats.NewTable("workload", "P", "W", "S", "U", "rounds", "W/P+SU(1+lgU)", "implied const")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.P, row.W, row.S, row.U, row.Rounds, row.Bound, row.Ratio)
	}
	return t
}

// Check fails if the implied constant exceeds a conservative threshold.
func (r *BoundResult) Check() error {
	for _, row := range r.Rows {
		if row.Ratio > 8 {
			return fmt.Errorf("bound: %s P=%d implied constant %.2f > 8", row.Workload, row.P, row.Ratio)
		}
	}
	return nil
}

// LemmaRow is one row of the structural-lemma experiment (Lemmas 1 and 7,
// Corollary 1, and the §5 suspension-width claims).
type LemmaRow struct {
	Workload     string
	P            int
	U            int
	AnalyticU    int
	MaxSuspended int
	MaxDeques    int
	Rounds       int64
	Lemma1Bound  int64
	EnablingSpan int64
	Cor1Bound    int64
}

// LemmaResult aggregates the structural invariants the analysis relies on.
type LemmaResult struct{ Rows []LemmaRow }

// Lemmas measures, per workload and P: observed suspension high-water mark
// vs U (Definition 1), deque high-water mark vs U+1 (Lemma 7), rounds vs
// the token bound (Lemma 1), and enabling span vs 2S(1+lg U)+slack
// (Corollary 1).
func Lemmas(seed uint64) (*LemmaResult, error) {
	ws := []*workload.Workload{
		workload.Fib(12),
		workload.MapReduce(workload.MapReduceConfig{N: 64, Delta: 29, FibWork: 4}),
		workload.Server(workload.ServerConfig{Requests: 16, Delta: 29, FibWork: 4}),
		workload.Pipeline(workload.PipelineConfig{Items: 8, Stages: 3, StageWork: 5, Delta: 17}),
	}
	res := &LemmaResult{}
	for _, w := range ws {
		u := w.G.SuspensionWidth()
		for _, p := range []int{1, 4, 16} {
			r, err := sched.RunLHWS(w.G, sched.Options{Workers: p, Seed: seed, TrackDepths: true})
			if err != nil {
				return nil, err
			}
			lg := math.Log2(float64(u) + 1)
			res.Rows = append(res.Rows, LemmaRow{
				Workload: w.Name, P: p, U: u, AnalyticU: w.AnalyticU,
				MaxSuspended: r.Stats.MaxSuspended,
				MaxDeques:    r.Stats.MaxDequesPerWorker,
				Rounds:       r.Stats.Rounds,
				Lemma1Bound:  (4*w.G.Work()+r.Stats.StealAttempts)/int64(p) + 2,
				EnablingSpan: r.Stats.EnablingSpan,
				Cor1Bound:    int64(4 * float64(w.G.Span()) * (1 + lg)),
			})
		}
	}
	return res, nil
}

// Table renders the lemma measurements.
func (r *LemmaResult) Table() *stats.Table {
	t := stats.NewTable("workload", "P", "U", "maxSusp", "maxDeques(≤U+1)", "rounds", "lemma1", "S*", "cor1")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.P, row.U, row.MaxSuspended, row.MaxDeques,
			row.Rounds, row.Lemma1Bound, row.EnablingSpan, row.Cor1Bound)
	}
	return t
}

// Check fails on any violated invariant.
func (r *LemmaResult) Check() error {
	for _, row := range r.Rows {
		if row.MaxSuspended > row.U {
			return fmt.Errorf("lemmas: %s P=%d MaxSuspended %d > U %d", row.Workload, row.P, row.MaxSuspended, row.U)
		}
		if row.MaxDeques > row.U+1 {
			return fmt.Errorf("lemmas: %s P=%d MaxDeques %d > U+1 %d", row.Workload, row.P, row.MaxDeques, row.U+1)
		}
		if row.Rounds > row.Lemma1Bound {
			return fmt.Errorf("lemmas: %s P=%d rounds %d > Lemma-1 bound %d", row.Workload, row.P, row.Rounds, row.Lemma1Bound)
		}
		if row.EnablingSpan > row.Cor1Bound {
			return fmt.Errorf("lemmas: %s P=%d S* %d > Corollary-1 bound %d", row.Workload, row.P, row.EnablingSpan, row.Cor1Bound)
		}
		if row.AnalyticU >= 0 && row.AnalyticU != row.U {
			return fmt.Errorf("lemmas: %s analytic U %d != exact U %d", row.Workload, row.AnalyticU, row.U)
		}
	}
	return nil
}
