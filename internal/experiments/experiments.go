// Package experiments regenerates the paper's evaluation (§6.1, Figure 11)
// and validates its theorems empirically. Each experiment returns a result
// carrying the raw series, a formatted table matching the rows the paper
// plots, and a Check method asserting the qualitative claims ("shape") the
// reproduction must preserve. The cmd/lhws-bench harness and the top-level
// benchmark suite both drive this package.
//
// # Calibration
//
// The paper's benchmark (§6.1) computes fib(30) per element and simulates
// latencies of 500ms, 50ms, and 1ms. In the simulator's unit-cost round
// model the natural work unit is one dag vertex, so latencies must be
// converted to rounds. We anchor the conversion at fib(30) ≈ 150ms of
// compute on the authors' testbed — the value at which the simulator
// reproduces the paper's headline δ=500ms result (LHWS ≈ 3× the speedup of
// standard WS) — giving
//
//	1 round ≈ 150ms / FibVertices(fibWork)
//	δ_rounds = max(2, DeltaMS/150 · FibVertices(fibWork))
//
// which preserves the latency:work ratio of each panel regardless of how
// far the element workload is scaled down.
package experiments

import (
	"fmt"
	"math"

	"lhws/internal/sched"
	"lhws/internal/stats"
	"lhws/internal/workload"
)

// fib30MS is the calibration anchor: the assumed wall-clock cost of the
// paper's per-element fib(30) computation on the authors' testbed.
const fib30MS = 150.0

// DeltaRounds converts a panel latency in milliseconds to simulator rounds
// under the fib(30)≈150ms calibration described in the package comment.
func DeltaRounds(deltaMS float64, fibWork int) int64 {
	r := int64(math.Round(deltaMS / fib30MS * float64(workload.FibVertices(fibWork))))
	if r < 2 {
		r = 2
	}
	return r
}

// Fig11Config parameterizes one panel of Figure 11.
type Fig11Config struct {
	// N is the element count; the paper uses 5000.
	N int
	// FibWork sizes the per-element fib dag; the paper uses fib(30),
	// scaled down here (see package calibration note).
	FibWork int
	// DeltaMS is the panel latency: 500, 50, or 1 in the paper.
	DeltaMS float64
	// Workers is the P sweep; the paper plots 1..30.
	Workers []int
	// Seed drives the randomized schedulers.
	Seed uint64
}

// DefaultFig11Workers is the worker sweep used by the paper's plots.
var DefaultFig11Workers = []int{1, 2, 4, 8, 16, 24, 30}

// ScaledFig11 returns a configuration that preserves the paper's
// latency:work ratios at roughly 1/10 the paper's size, completing in
// seconds on a laptop. Full reproduces the paper's n=5000.
func ScaledFig11(deltaMS float64) Fig11Config {
	return Fig11Config{N: 500, FibWork: 8, DeltaMS: deltaMS, Workers: DefaultFig11Workers, Seed: 1}
}

// FullFig11 returns the full-scale n=5000 configuration of §6.1.
func FullFig11(deltaMS float64) Fig11Config {
	return Fig11Config{N: 5000, FibWork: 8, DeltaMS: deltaMS, Workers: DefaultFig11Workers, Seed: 1}
}

// Fig11Point is one plotted point of a Figure 11 panel.
type Fig11Point struct {
	P            int
	LHWSRounds   int64
	WSRounds     int64
	LHWSSpeedup  float64 // relative to the 1-worker WS run, as in the paper
	WSSpeedup    float64
	RoundsRatio  float64 // WS/LHWS at this P
	LHWSSteals   int64
	LHWSSwitches int64
}

// Fig11Result is one panel of Figure 11.
type Fig11Result struct {
	Cfg         Fig11Config
	DeltaRounds int64
	BaseRounds  int64 // WS with one worker: the speedup baseline
	Points      []Fig11Point
}

// Fig11 runs one panel: LHWS vs WS over the worker sweep, speedups
// relative to the single-worker WS run (the paper's convention).
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	delta := DeltaRounds(cfg.DeltaMS, cfg.FibWork)
	w := workload.MapReduce(workload.MapReduceConfig{N: cfg.N, Delta: delta, FibWork: cfg.FibWork})
	base, err := sched.RunWS(w.G, sched.Options{Workers: 1, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("baseline WS(1): %w", err)
	}
	res := &Fig11Result{Cfg: cfg, DeltaRounds: delta, BaseRounds: base.Stats.Rounds}
	for _, p := range cfg.Workers {
		lh, err := sched.RunLHWS(w.G, sched.Options{Workers: p, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("LHWS P=%d: %w", p, err)
		}
		var ws *sched.Result
		if p == 1 {
			ws = base
		} else {
			ws, err = sched.RunWS(w.G, sched.Options{Workers: p, Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("WS P=%d: %w", p, err)
			}
		}
		res.Points = append(res.Points, Fig11Point{
			P:            p,
			LHWSRounds:   lh.Stats.Rounds,
			WSRounds:     ws.Stats.Rounds,
			LHWSSpeedup:  lh.Speedup(base.Stats.Rounds),
			WSSpeedup:    ws.Speedup(base.Stats.Rounds),
			RoundsRatio:  float64(ws.Stats.Rounds) / float64(lh.Stats.Rounds),
			LHWSSteals:   lh.Stats.StealAttempts,
			LHWSSwitches: lh.Stats.Switches,
		})
	}
	return res, nil
}

// Table renders the panel in the paper's plot coordinates (speedup vs P).
func (r *Fig11Result) Table() *stats.Table {
	t := stats.NewTable("P", "LHWS rounds", "LHWS speedup", "WS rounds", "WS speedup", "WS/LHWS")
	for _, pt := range r.Points {
		t.AddRowf(pt.P, pt.LHWSRounds, pt.LHWSSpeedup, pt.WSRounds, pt.WSSpeedup, pt.RoundsRatio)
	}
	return t
}

// Check asserts the qualitative shape of the panel, scaled by the panel's
// latency:work ratio:
//
//   - high latency (δ ≥ element work): LHWS speedup is superlinear
//     (> 1.5·P at the top of the sweep) and beats WS by ≥ 1.8×;
//   - medium latency: LHWS still clearly ahead (≥ 1.2× WS);
//   - low latency: near parity (within 10%), and crucially LHWS is not
//     slower — hiding costs nothing when there is nothing to hide.
func (r *Fig11Result) Check() error {
	last := r.Points[len(r.Points)-1]
	elemWork := float64(workload.FibVertices(r.Cfg.FibWork))
	ratio := float64(r.DeltaRounds) / elemWork
	switch {
	case ratio >= 0.8:
		if last.LHWSSpeedup < 1.5*float64(last.P) {
			return fmt.Errorf("fig11 δ=%vms: LHWS speedup %.1f at P=%d not superlinear",
				r.Cfg.DeltaMS, last.LHWSSpeedup, last.P)
		}
		if last.RoundsRatio < 1.8 {
			return fmt.Errorf("fig11 δ=%vms: LHWS only %.2fx faster than WS at P=%d",
				r.Cfg.DeltaMS, last.RoundsRatio, last.P)
		}
	case ratio >= 0.08:
		// In the ideal round model the achievable gain is 1 + δ/w (WS pays
		// the latency once per element, LHWS overlaps it); demand a third
		// of it to allow scheduler overhead.
		if want := 1 + ratio/3; last.RoundsRatio < want {
			return fmt.Errorf("fig11 δ=%vms: LHWS only %.3fx faster than WS at P=%d (want ≥ %.3f)",
				r.Cfg.DeltaMS, last.RoundsRatio, last.P, want)
		}
	default:
		if last.RoundsRatio < 0.9 {
			return fmt.Errorf("fig11 δ=%vms: LHWS slower than WS (%.2fx) at P=%d",
				r.Cfg.DeltaMS, last.RoundsRatio, last.P)
		}
	}
	// Speedups must be monotone-ish in P for LHWS (no scaling collapse).
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].LHWSSpeedup < 0.7*r.Points[i-1].LHWSSpeedup {
			return fmt.Errorf("fig11 δ=%vms: LHWS speedup collapsed between P=%d and P=%d",
				r.Cfg.DeltaMS, r.Points[i-1].P, r.Points[i].P)
		}
	}
	return nil
}
