package experiments

import (
	"fmt"

	"lhws/internal/sched"
	"lhws/internal/stats"
	"lhws/internal/workload"
)

// PotentialRow is one potential-function trace summary.
type PotentialRow struct {
	Workload  string
	P         int
	SStar     int64
	Rounds    int64
	Increase  int64
	DecFrac   float64
	MaxOver   float64
	FinalZero bool
}

// PotentialResult validates the §4 potential-function argument on small
// executions: Φ_0 = 3^(2S*−1), Φ never exceeds Φ_0, decreases on most
// rounds, and ends at zero.
type PotentialResult struct{ Rows []PotentialRow }

// Potential traces Φ across the §5 workloads.
func Potential(seed uint64) (*PotentialResult, error) {
	ws := []*workload.Workload{
		workload.Fib(9),
		workload.MapReduce(workload.MapReduceConfig{N: 12, Delta: 15, FibWork: 3}),
		workload.Server(workload.ServerConfig{Requests: 8, Delta: 13, FibWork: 3}),
		workload.Pipeline(workload.PipelineConfig{Items: 5, Stages: 3, StageWork: 4, Delta: 9}),
	}
	res := &PotentialResult{}
	for _, w := range ws {
		for _, p := range []int{1, 2, 4} {
			tr, err := sched.TracePotential(w.G, sched.Options{Workers: p, Seed: seed})
			if err != nil {
				return nil, err
			}
			if err := tr.CheckPotential(); err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", w.Name, p, err)
			}
			res.Rows = append(res.Rows, PotentialRow{
				Workload: w.Name, P: p, SStar: tr.SStar, Rounds: tr.Rounds,
				Increase: tr.Increases, DecFrac: tr.DecreaseFraction,
				MaxOver: tr.MaxOverInitial, FinalZero: tr.Final.Sign() == 0,
			})
		}
	}
	return res, nil
}

// Table renders the potential traces.
func (r *PotentialResult) Table() *stats.Table {
	t := stats.NewTable("workload", "P", "S*", "boundaries", "increases", "decrease frac", "max Φ/Φ0", "final=0")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.P, row.SStar, row.Rounds, row.Increase, row.DecFrac, row.MaxOver, row.FinalZero)
	}
	return t
}

// Check re-asserts the row-level properties (already enforced during
// collection; kept for the harness contract).
func (r *PotentialResult) Check() error {
	for _, row := range r.Rows {
		if !row.FinalZero {
			return fmt.Errorf("potential: %s P=%d final potential nonzero", row.Workload, row.P)
		}
		if row.MaxOver > 1 {
			return fmt.Errorf("potential: %s P=%d Φ exceeded Φ0", row.Workload, row.P)
		}
	}
	return nil
}
