package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var or uint64
	for i := 0; i < 64; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestIntnUniform checks that Intn's output over a small modulus is within
// a loose chi-square-ish tolerance of uniform.
func TestIntnUniform(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// The child and the parent's continued stream should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split child mirrors parent stream (%d/100 matches)", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(5).Split()
	c2 := New(5).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
