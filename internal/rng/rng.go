// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by the schedulers for steal-victim selection.
//
// Reproducibility is a first-class requirement for the simulator: given a
// seed, an entire multi-worker execution must be bit-for-bit repeatable so
// that experiments and regression tests are stable. The standard library's
// math/rand is avoided because (a) its global state is shared and locked,
// and (b) we want explicit per-worker streams that can be derived ("split")
// from a root seed without correlation.
//
// The generator is xoshiro256**, a small-state generator with good
// statistical quality and a cheap jump-free split via SplitMix64 reseeding.
package rng

import "math/bits"

// RNG is a xoshiro256** pseudo-random number generator. The zero value is
// invalid; construct with New. RNG is not safe for concurrent use; give
// each worker its own stream via Split.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full xoshiro state, per the reference
// implementation's recommendation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Uses Lemire's multiply-shift rejection method to avoid modulo
// bias without divisions in the common case.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split returns a new generator derived from this one. The child's stream
// is statistically independent of the parent's subsequent outputs: the
// child state is expanded from a fresh draw via SplitMix64. Split advances
// the parent.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Perm returns a pseudo-random permutation of [0, n) as a slice, using the
// Fisher–Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
