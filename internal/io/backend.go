package io

import "time"

// backend is the dispatcher's readiness engine: the strategy for what
// happens to an operation that attempted its socket and found it not
// ready. The interface is deliberately batch-shaped — a bridge submits
// every not-ready op from its attempt round in ONE parkBatch call, and
// a backend delivers every op a readiness sweep woke in ONE
// enqueueBatch call — so that a backend which can amortize submission
// cost over many ops (epoll re-arms under a single table-lock hold
// today; an io_uring-style backend would put many SQEs per syscall)
// pays its fixed costs once per batch, not once per op. Completion
// batching then composes downstream for free: ops a backend wakes
// together are attempted back-to-back by one bridge, their completions
// land in the same runtime drain window, and the resumed tasks enter
// the scheduler as a single pfor-tree deque item (see DESIGN.md §13
// for the full contract).
//
// Contract:
//
//   - parkBatch owns the park claim protocol. For each req it either
//     takes the op (op.parked set true, registered for readiness; the
//     backend — or whoever wins the op's parked-CAS — re-enqueues it
//     exactly once when its fd fires or a cancel/kick/close unparks
//     it), or returns the op in the rotate list for the caller to
//     re-enqueue. An op must end up in exactly one of those states;
//     "taken by a concurrent cancel that stole the claim mid-park"
//     counts as taken, NOT as rotate — returning it would let two
//     bridges race one op into use-after-recycle.
//   - parkBatch appends to rotate and returns it so callers can reuse
//     one scratch slice across rounds.
//   - batchHint is how many queued ops a bridge should grab per attempt
//     round: 1 for rotation (each not-ready attempt blocks a full
//     slice, so batching would serialize those waits), larger for
//     readiness backends (ops they enqueue are ready and complete on
//     the first attempt, so a batch costs one queue-lock acquisition
//     instead of N).
//   - attemptSlice is the per-attempt socket deadline: the rotation
//     latency floor for the portable backend, merely the park threshold
//     for readiness backends (which can afford a much shorter
//     speculation window — a not-ready op parks and the poller wakes it
//     the moment the fd fires).
//   - close releases backend resources. The dispatcher calls it after
//     every bridge has been joined, so no parkBatch call is in flight.
type backend interface {
	name() string
	batchHint() int
	attemptSlice() time.Duration
	parkBatch(reqs []parkReq, rotate []*ioOp) []*ioOp
	close()
}

// parkReq is one not-ready op submitted to the backend, with the raw
// fd access needed to register it. kind and cn snapshot the op's
// task-side fields while the bridge still owns it exclusively: the
// moment parkBatch publishes the op (op.parked set true) a concurrent
// kick can steal the claim, complete the op, and recycle it into a new
// life whose owner rewrites those fields without op.mu — so the backend
// must read them from the req, never from the op. fd and registered are
// backend scratch, valid only within a parkBatch call.
type parkReq struct {
	op   *ioOp
	rc   parkable
	kind opKind
	cn   *Conn // nil for accept ops

	fd         int32
	registered bool
}

// rotateBackend is the portable strategy: no readiness facility at all.
// Not-ready ops go straight back to the bridge queue and retry on
// deadline slices; C pending ops share cap bridges, each blocked at
// most one slice per attempt (see the dispatcher comment in
// dispatch.go).
type rotateBackend struct{}

func (rotateBackend) name() string                { return "rotate" }
func (rotateBackend) batchHint() int              { return 1 }
func (rotateBackend) attemptSlice() time.Duration { return pollSlice }
func (rotateBackend) close()                      {}

func (rotateBackend) parkBatch(reqs []parkReq, rotate []*ioOp) []*ioOp {
	for i := range reqs {
		rotate = append(rotate, reqs[i].op)
	}
	return rotate
}
