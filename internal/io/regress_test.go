package io

import (
	"errors"
	"net"
	"testing"
	"time"

	"lhws/internal/runtime"
)

// noDeadlineConn simulates a net.Conn implementation without working
// deadlines (SetDeadline errors). The dispatcher cannot kick such a
// conn, so Wrap must reject it up front.
type noDeadlineConn struct{ net.Conn }

func (noDeadlineConn) SetDeadline(time.Time) error {
	return errors.New("deadlines not supported")
}

// TestWrapRejectsDeadlinelessConn: a conn whose SetDeadline fails would
// strand a bridge forever (no kick, no rotation slice) and hang the
// run's shutdown; Wrap probes and fails fast instead.
func TestWrapRejectsDeadlinelessConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	_, err := runtime.Run(runtime.Config{Workers: 1, Mode: runtime.LatencyHiding, Deadline: 10 * time.Second},
		func(c *runtime.Ctx) {
			if _, werr := Wrap(c, noDeadlineConn{a}); werr == nil {
				t.Error("Wrap accepted a conn whose SetDeadline fails")
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWrapAdoptsRealConn is the positive half: a deadline-capable TCP
// conn wraps fine and the wrapped conn works end to end.
func TestWrapAdoptsRealConn(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			l, lerr := Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("listen: %v", lerr)
				return
			}
			srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, 4) })
			raw, derr := net.Dial("tcp", l.Addr().String()) //lhws:allowblock test harness dial outside task path
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			cn, werr := Wrap(c, raw)
			if werr != nil {
				t.Errorf("Wrap rejected a TCP conn: %v", werr)
				raw.Close()
				return
			}
			if _, werr := cn.Write(c, []byte("ping")); werr != nil {
				t.Errorf("write: %v", werr)
			}
			in := make([]byte, 4)
			if rerr := readFull(c, cn, in); rerr != nil {
				t.Errorf("read: %v", rerr)
			} else if string(in) != "ping" {
				t.Errorf("echo = %q, want %q", in, "ping")
			}
			cn.Close()
			l.Close()
			srv.Await(c)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestDialsBypassBridgePool: dials hold their goroutine for the whole
// connect, so they run on dedicated goroutines outside the bridge cap.
// Regression: dials once occupied pooled bridges, and cap concurrent
// slow dials starved every queued read/write/accept until OS connect
// timeouts expired. A dial-only workload must not grow the bridge pool
// at all.
func TestDialsBypassBridgePool(t *testing.T) {
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("peer listen: %v", err)
	}
	defer nl.Close()
	var held []net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, aerr := nl.Accept()
			if aerr != nil {
				return
			}
			held = append(held, c)
		}
	}()
	defer func() {
		nl.Close()
		<-done
		for _, c := range held {
			c.Close()
		}
	}()

	_, err = runtime.Run(runtime.Config{Workers: 4, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			const dials = 24 // well past the bridge cap of max(2P, 8)
			conns := make([]*Conn, dials)
			futs := make([]*runtime.Future, dials)
			for i := 0; i < dials; i++ {
				i := i
				futs[i] = c.Spawn(func(child *runtime.Ctx) {
					cn, derr := Dial(child, "tcp", nl.Addr().String())
					if derr != nil {
						t.Errorf("dial %d: %v", i, derr)
						return
					}
					conns[i] = cn
				})
			}
			for _, f := range futs {
				f.Await(c)
			}
			if got := PeakBridges(c); got != 0 {
				t.Errorf("PeakBridges = %d after a dial-only workload, want 0 (dials must not consume bridges)", got)
			}
			for _, cn := range conns {
				if cn != nil {
					cn.Close()
				}
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
