// Package io gives LHWS tasks real sockets with heavy-edge semantics:
// Read, Write, Accept, and Dial suspend the calling task — never its
// worker — until the operation completes, so a worker whose task is
// waiting on the network immediately runs other work, exactly as the
// paper's latency-hiding scheduler treats a latency-incurring vertex
// (§2's heavy edges, realized by Ctx.Latency for simulated delays and by
// this package for real ones).
//
// The machinery is runtime.AwaitExternalOp underneath: an operation
// suspends through the same epoch-claimed waiter protocol as Latency and
// channel waits, a dispatcher bridge performs the syscall, and the
// completion re-injects the task through its deque's bulk resumed path —
// completions sharing a drain enter the deque as one pfor-tree node.
// Scope cancellation (WithCancel/WithDeadline, the watchdog, a panic
// elsewhere) interrupts pending socket calls promptly by kicking their
// deadlines; a canceled operation unwinds the task like every other
// canceled wait.
//
// The data plane is built not to copy and not to allocate: ReadBuf
// reads into reference-counted pooled buffers (internal/bufpool) that
// move between readiness, task, and the conn's cancel-window stash by
// pointer; QueueWrite/Flush (and Writev) coalesce pipelined responses
// into one vectored writev syscall; per-op deadlines (SetOpTimeout) are
// O(1) entries on the run's shared timer wheel. See DESIGN.md §13.
//
// In Blocking mode the same calls park the worker until the completion
// arrives, preserving the paper's baseline for comparison; code written
// against this package runs unchanged in both modes.
//
// Concurrency contract: at most one task may be in Read and one in Write
// on the same Conn at a time (as with net.Conn, reads and writes are
// independent); Accept similarly admits one accepting task per Listener.
// QueueWrite/Flush belong to the conn's single writer.
package io

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lhws/internal/bufpool"
	"lhws/internal/runtime"
)

// parkable is the raw-syscall view of a socket, used by epoll builds to
// register readiness interest; nil when the underlying conn does not
// expose one (rotation still works without it).
type parkable = syscall.RawConn

// Conn is a socket whose operations suspend the calling task instead of
// blocking its worker. Create one with Dial, Listener.Accept, or Wrap.
// Close is plain (non-suspending) and interrupts in-flight operations.
type Conn struct {
	d  *dispatcher
	nc net.Conn
	sc parkable

	// opTimeout, when set, arms a timer-wheel deadline on each
	// subsequent read/write op (see SetOpTimeout).
	opTimeout atomic.Int64

	// wq is the task-local vectored write queue (QueueWrite/Flush). It
	// belongs to the conn's single writer — the same task that would
	// call Write — so it needs no lock: the writer is either queueing or
	// suspended in Flush, never both.
	wq net.Buffers

	// opMu guards the in-flight op registrations. Close uses them to
	// unpark operations waiting on the readiness backend: closing an fd
	// silently removes it from an epoll set, so a parked op would
	// otherwise never fire (rotation attempts discover the close on
	// their own; parked ones must be routed back to a bridge).
	opMu sync.Mutex
	rdOp *ioOp
	wrOp *ioOp

	// pendMu guards the unread stash: pooled buffers holding bytes a
	// canceled read's in-flight attempt consumed off the socket after
	// its completion claim was already lost to the abort. Dropping them
	// would desynchronize the stream — the conn's next read would wait
	// forever for bytes that can never arrive again — so the bridge
	// stashes them here and the next read drains the stash before
	// touching the socket. Pooled reads MOVE their buffer in and out
	// (the handoff is a reference transfer, no copy); the unpooled Read
	// path copies, since its bytes alias the unwound caller's buffer.
	// pendOff is the drained prefix of pending[0].
	pendMu  sync.Mutex
	pending []*bufpool.Buf
	pendOff int
}

// setOp / clearOp maintain the Close-visibility registration around an
// op's lifetime: set task-side before Arm, cleared by the completing
// bridge.
func (cn *Conn) setOp(dir opKind, op *ioOp) {
	cn.opMu.Lock()
	if dir == opRead {
		cn.rdOp = op
	} else {
		cn.wrOp = op
	}
	cn.opMu.Unlock()
}

func (cn *Conn) clearOp(dir opKind, op *ioOp) {
	cn.opMu.Lock()
	if dir == opRead && cn.rdOp == op {
		cn.rdOp = nil
	} else if (dir == opWrite || dir == opWritev) && cn.wrOp == op {
		cn.wrOp = nil
	}
	cn.opMu.Unlock()
}

// stashUnread salvages bytes whose completion lost its wake claim to a
// cancellation. b aliases the unwound caller's buffer, so this path has
// to copy — into a pooled buffer, which from then on moves like any
// other stash entry.
func (cn *Conn) stashUnread(b []byte) {
	pb := bufpool.Get(len(b))
	copy(pb.Bytes(), b)
	cn.stashUnreadBuf(pb)
}

// stashUnreadBuf salvages a pooled read buffer whose completion lost
// its wake claim: ownership of pb's reference MOVES into the stash (no
// copy — this is the zero-copy half of the cancel window). Any
// successor read already in flight on the conn is then kicked: it may
// be blocked in a socket read waiting for bytes that now sit here.
func (cn *Conn) stashUnreadBuf(pb *bufpool.Buf) {
	cn.pendMu.Lock()
	cn.pending = append(cn.pending, pb)
	cn.pendMu.Unlock()
	cn.opMu.Lock()
	op := cn.rdOp
	cn.opMu.Unlock()
	if op != nil {
		op.kickRead(cn)
	}
}

// takePending drains stashed unread bytes into p, stream order
// preserved; fully drained buffers go back to the pool. Returns 0 when
// the stash is empty (the common case: one predictable branch on the
// read path).
func (cn *Conn) takePending(p []byte) int {
	cn.pendMu.Lock()
	n := 0
	for n < len(p) && len(cn.pending) > 0 {
		pb := cn.pending[0]
		c := copy(p[n:], pb.Bytes()[cn.pendOff:])
		n += c
		cn.pendOff += c
		if cn.pendOff == pb.Len() {
			cn.popPendingLocked()
			pb.Release()
		}
	}
	cn.pendMu.Unlock()
	return n
}

// popPendingLocked removes pending[0] by shifting the tail down, so the
// slice keeps its backing array across drain/refill cycles (the stash
// is almost always 0–2 entries deep; resetting to nil instead would
// make every steady-state stash append allocate a fresh slice). Caller
// holds pendMu and releases the popped buffer itself.
func (cn *Conn) popPendingLocked() {
	last := len(cn.pending) - 1
	copy(cn.pending, cn.pending[1:])
	cn.pending[last] = nil
	cn.pending = cn.pending[:last]
	cn.pendOff = 0
}

// takePendingBuf pops the stash's head buffer whole — the zero-copy
// fast path of ReadBuf. A partially-drained head (a smaller
// byte-oriented Read got there first) is compacted into a fresh pooled
// buffer; the common case hands the stashed buffer over untouched.
func (cn *Conn) takePendingBuf() *bufpool.Buf {
	cn.pendMu.Lock()
	if len(cn.pending) == 0 {
		cn.pendMu.Unlock()
		return nil
	}
	pb := cn.pending[0]
	if cn.pendOff > 0 {
		rem := pb.Bytes()[cn.pendOff:]
		npb := bufpool.Get(len(rem))
		copy(npb.Bytes(), rem)
		pb.Release()
		pb = npb
	}
	cn.popPendingLocked()
	cn.pendMu.Unlock()
	return pb
}

func (cn *Conn) hasPending() bool {
	cn.pendMu.Lock()
	ok := len(cn.pending) > 0
	cn.pendMu.Unlock()
	return ok
}

// drainPending releases every stashed buffer (Close). A stash entry
// landing after this (a canceled attempt settling late) is simply left
// to the GC: the conn is closed, nobody will read it, and an unpooled
// buffer costs nothing but its memory.
func (cn *Conn) drainPending() {
	cn.pendMu.Lock()
	pend := cn.pending
	cn.pending = nil
	cn.pendOff = 0
	cn.pendMu.Unlock()
	for _, pb := range pend {
		pb.Release()
	}
}

// Wrap adopts an existing net.Conn into the task runtime. The conn must
// support deadlines (every *net.TCPConn, *net.UnixConn, ... does):
// rotation slices and the cancellation kick are both deadline sets, so a
// conn whose SetDeadline fails could hold a bridge forever and hang the
// run's shutdown. Wrap probes for that up front and rejects such conns
// instead of relying on the caller to know.
func Wrap(c *runtime.Ctx, nc net.Conn) (*Conn, error) {
	if err := nc.SetDeadline(time.Time{}); err != nil {
		return nil, fmt.Errorf("lhws/io: conn %T does not support deadlines: %w", nc, err)
	}
	return wrapConn(dispFor(c), nc), nil
}

func wrapConn(d *dispatcher, nc net.Conn) *Conn {
	cn := &Conn{d: d, nc: nc}
	if s, ok := nc.(syscall.Conn); ok {
		if rc, err := s.SyscallConn(); err == nil {
			cn.sc = rc
		}
	}
	return cn
}

// SetOpTimeout sets a per-operation deadline applied to every
// subsequent Read/ReadBuf/Write/Writev/Flush on this conn (zero
// disables it). Each op arms one O(1) entry on the run's shared timer
// wheel — a million pending I/O deadlines are a million list nodes, not
// a million runtime timers — and an op still unfinished when its entry
// fires completes with ErrOpTimeout: an ordinary error return carrying
// whatever progress was made, not a cancellation unwind. The connection
// stays usable. Ops that complete in time cost one O(1) timer stop.
func (cn *Conn) SetOpTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	cn.opTimeout.Store(int64(d))
}

// armOpDeadline arms the conn's per-op deadline on op, if one is set.
// Runs task-side before AwaitExternalOp, under op.mu so the wheel
// callback's identity check (op.dl) is race-free against completion.
func (cn *Conn) armOpDeadline(op *ioOp) {
	d := time.Duration(cn.opTimeout.Load())
	if d <= 0 {
		return
	}
	t := cn.d.wheel.AfterFuncT(d, opDeadlineFired, op)
	op.mu.Lock()
	op.dl = t
	op.mu.Unlock()
}

// Read reads into p, suspending the task until at least one byte (or
// EOF, or an error) is available. Semantics match net.Conn.Read.
func (cn *Conn) Read(c *runtime.Ctx, p []byte) (int, error) {
	// Bytes salvaged from a canceled predecessor read come first: they
	// are already off the socket, ahead of anything it can deliver.
	if n := cn.takePending(p); n > 0 {
		return n, nil
	}
	op := cn.d.getOp()
	op.kind = opRead
	op.cn = cn
	op.buf = p
	cn.setOp(opRead, op)
	cn.armOpDeadline(op)
	return c.AwaitExternalOp("io-read", runtime.KindFD, op)
}

// ReadBuf is Read without the copy or the allocation: it reads up to
// max bytes into a buffer from the size-classed pool and hands the
// buffer itself to the task — the same backing array the bridge's
// syscall filled, sized to its class, with Len set to the bytes read.
// The caller owns the returned buffer's reference and must Release it
// (or pass ownership on, e.g. by queueing its bytes for write and
// releasing after Flush). On error the buffer is never returned. Bytes
// stashed by a canceled predecessor are handed over as a whole buffer,
// zero-copy.
func (cn *Conn) ReadBuf(c *runtime.Ctx, max int) (*bufpool.Buf, error) {
	if max <= 0 {
		max = 4 << 10
	}
	if pb := cn.takePendingBuf(); pb != nil {
		return pb, nil
	}
	pb := bufpool.Get(max)
	op := cn.d.getOp()
	op.kind = opRead
	op.cn = cn
	op.pb = pb
	op.buf = pb.Bytes()
	cn.setOp(opRead, op)
	cn.armOpDeadline(op)
	n, err := c.AwaitExternalOp("io-read", runtime.KindFD, op)
	// A normal return means the completion claim was won, which
	// transferred the buffer's reference to this task (see settleBuf); a
	// cancellation unwind never reaches here and the op side settles the
	// buffer itself.
	if n <= 0 {
		pb.Release()
		return nil, err
	}
	pb.SetLen(n)
	return pb, err
}

// Write writes all of p, suspending the task across partial writes.
func (cn *Conn) Write(c *runtime.Ctx, p []byte) (int, error) {
	op := cn.d.getOp()
	op.kind = opWrite
	op.cn = cn
	op.buf = p
	cn.setOp(opWrite, op)
	cn.armOpDeadline(op)
	return c.AwaitExternalOp("io-write", runtime.KindFD, op)
}

// Writev writes every buffer in bufs as one vectored operation: the
// bridge issues writev (net.Buffers.WriteTo), so N pipelined response
// fragments cost one syscall instead of N. bufs is consumed — its
// elements are nil'ed and resliced as prefixes complete, exactly like
// net.Buffers — so the caller must not reuse it without rebuilding.
// Returns the total bytes written; partial progress across deadline
// slices is retried until the vector drains, as with Write.
func (cn *Conn) Writev(c *runtime.Ctx, bufs net.Buffers) (int, error) {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return 0, nil
	}
	op := cn.d.getOp()
	op.kind = opWritev
	op.cn = cn
	op.vec = bufs
	cn.setOp(opWritev, op)
	cn.armOpDeadline(op)
	return c.AwaitExternalOp("io-writev", runtime.KindFD, op)
}

// QueueWrite appends p to the conn's write queue without suspending or
// touching the socket. Flush writes everything queued as one vectored
// op. The queue belongs to the conn's single writer task; p is retained
// until the Flush that writes it completes, so the caller must not
// recycle p's backing array before then.
func (cn *Conn) QueueWrite(p []byte) {
	if len(p) == 0 {
		return
	}
	cn.wq = append(cn.wq, p)
}

// Queued reports the bytes currently queued by QueueWrite.
func (cn *Conn) Queued() int {
	total := 0
	for _, b := range cn.wq {
		total += len(b)
	}
	return total
}

// Flush writes every queued buffer in one vectored operation and resets
// the queue. A no-op when nothing is queued. The queue's backing array
// is reused across Flush calls, so a steady queue-and-flush loop
// allocates nothing.
func (cn *Conn) Flush(c *runtime.Ctx) (int, error) {
	if len(cn.wq) == 0 {
		return 0, nil
	}
	vec := cn.wq
	// Reset to the same backing array: the vectored op consumes vec's
	// header (and nils drained elements), and this task is suspended in
	// Writev until the op completes, so the reuse cannot race it.
	cn.wq = cn.wq[:0]
	return cn.Writev(c, vec)
}

// NetConn exposes the underlying net.Conn for address inspection and
// option setting. Do not Read/Write it from task code — that blocks the
// worker (the noblock analyzer flags it).
func (cn *Conn) NetConn() net.Conn { return cn.nc }

// Close closes the socket. Non-suspending; pending operations complete
// with the socket's close error. Operations parked on the readiness
// backend are routed back to a bridge (the closed fd would never fire),
// and stashed unread buffers go back to the pool.
func (cn *Conn) Close() error {
	err := cn.nc.Close()
	cn.opMu.Lock()
	rd, wr := cn.rdOp, cn.wrOp
	cn.opMu.Unlock()
	unparkForClose(cn.d, rd)
	unparkForClose(cn.d, wr)
	cn.drainPending()
	return err
}

// unparkForClose reroutes an op parked in the backend back to the
// bridge queue so it can observe the close. The CAS races the backend
// and cancellation; exactly one party re-enqueues.
func unparkForClose(d *dispatcher, op *ioOp) {
	if op != nil && op.parked.CompareAndSwap(true, false) {
		d.enqueue(op)
	}
}

// Gate is an admission valve a Listener consults before pulling a
// connection out of the kernel backlog. AcquireAccept returns nil when
// the server has capacity; it may suspend the accepting task (that is
// the point: backpressure parks the acceptor, and waiting connections
// queue in the kernel where they cost no worker); and it fails typed
// when intake is closed (e.g. the admission controller is draining).
// lhws/internal/admit's Controller implements it.
type Gate interface {
	AcquireAccept(c *runtime.Ctx) error
}

// Listener accepts connections without blocking workers.
type Listener struct {
	d  *dispatcher
	nl net.Listener
	sc parkable

	opMu sync.Mutex
	acOp *ioOp
	gate Gate
}

// Listen opens a listening socket (e.g. "tcp", "127.0.0.1:0"). The bind
// itself is immediate; only Accept suspends.
func Listen(c *runtime.Ctx, network, addr string) (*Listener, error) {
	nl, err := net.Listen(network, addr) //lhws:allowblock bind+listen complete immediately; only Accept waits
	if err != nil {
		return nil, err
	}
	l := &Listener{d: dispFor(c), nl: nl}
	if s, ok := nl.(syscall.Conn); ok {
		if rc, serr := s.SyscallConn(); serr == nil {
			l.sc = rc
		}
	}
	return l, nil
}

// SetGate installs an admission gate consulted by every subsequent
// Accept. Install it before the accept loop starts; a nil gate (the
// default) admits unconditionally.
func (l *Listener) SetGate(g Gate) {
	l.opMu.Lock()
	l.gate = g
	l.opMu.Unlock()
}

// Accept suspends the task until a connection arrives and returns it
// wrapped for task use. With a Gate installed (SetGate), Accept first
// acquires admission — suspending while the server is saturated, so
// fresh connections wait in the kernel backlog instead of being
// accepted into a server that would blow their targets — and returns
// the gate's typed error (e.g. admit.ErrDraining) when intake is
// closed.
func (l *Listener) Accept(c *runtime.Ctx) (*Conn, error) {
	l.opMu.Lock()
	g := l.gate
	l.opMu.Unlock()
	if g != nil {
		if err := g.AcquireAccept(c); err != nil {
			return nil, err
		}
	}
	op := &ioOp{kind: opAccept, ln: l}
	l.opMu.Lock()
	l.acOp = op
	l.opMu.Unlock()
	if _, err := c.AwaitExternalOp("io-accept", runtime.KindFD, op); err != nil {
		return nil, err
	}
	nc := op.takeResult()
	if nc == nil {
		// A cancellation closed the result before this task took it; the
		// scope is canceled, so the very next scheduling point unwinds.
		return nil, errOpCanceled
	}
	return wrapConn(l.d, nc), nil
}

func (l *Listener) clearAccept(op *ioOp) {
	l.opMu.Lock()
	if l.acOp == op {
		l.acOp = nil
	}
	l.opMu.Unlock()
}

// Addr returns the listener's address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.nl.Addr() }

// Close stops the listener; a pending Accept completes with the close
// error. Non-suspending.
func (l *Listener) Close() error {
	err := l.nl.Close()
	l.opMu.Lock()
	op := l.acOp
	l.opMu.Unlock()
	unparkForClose(l.d, op)
	return err
}

// Dial connects to addr, suspending the task for the duration of the
// connection handshake.
func Dial(c *runtime.Ctx, network, addr string) (*Conn, error) {
	d := dispFor(c)
	op := &ioOp{kind: opDial, cn: &Conn{d: d}, dialNet: network, dialAddr: addr}
	if _, err := c.AwaitExternalOp("io-dial", runtime.KindFD, op); err != nil {
		return nil, err
	}
	nc := op.takeResult()
	if nc == nil {
		return nil, errOpCanceled
	}
	return wrapConn(d, nc), nil
}

// PeakBridges reports the high-water count of bridge goroutines this
// run's dispatcher spawned — the benchmark's O(P)-not-O(C) gate reads
// it. Zero if the run performed no I/O.
func PeakBridges(c *runtime.Ctx) int {
	return dispFor(c).peakBridges()
}

// BackendName reports which readiness backend this run's dispatcher
// selected: "rotate" (portable) or "epoll" (-tags lhwsepoll on Linux).
func BackendName(c *runtime.Ctx) string {
	return dispFor(c).backendName()
}

// ErrOpCanceled is exported for tests that need to distinguish the
// canceled-result sentinel; user code normally never sees it (the task
// unwinds instead).
var ErrOpCanceled = errOpCanceled

// ErrOpTimeout is the error a read/write completes with when its per-op
// deadline (SetOpTimeout) expires first. A normal error return, not a
// cancellation: the task keeps running and the conn stays usable.
var ErrOpTimeout = errOpTimeout
