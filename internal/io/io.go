// Package io gives LHWS tasks real sockets with heavy-edge semantics:
// Read, Write, Accept, and Dial suspend the calling task — never its
// worker — until the operation completes, so a worker whose task is
// waiting on the network immediately runs other work, exactly as the
// paper's latency-hiding scheduler treats a latency-incurring vertex
// (§2's heavy edges, realized by Ctx.Latency for simulated delays and by
// this package for real ones).
//
// The machinery is runtime.AwaitExternalOp underneath: an operation
// suspends through the same epoch-claimed waiter protocol as Latency and
// channel waits, a dispatcher bridge performs the syscall, and the
// completion re-injects the task through its deque's bulk resumed path —
// completions sharing a drain enter the deque as one pfor-tree node.
// Scope cancellation (WithCancel/WithDeadline, the watchdog, a panic
// elsewhere) interrupts pending socket calls promptly by kicking their
// deadlines; a canceled operation unwinds the task like every other
// canceled wait.
//
// In Blocking mode the same calls park the worker until the completion
// arrives, preserving the paper's baseline for comparison; code written
// against this package runs unchanged in both modes.
//
// Concurrency contract: at most one task may be in Read and one in Write
// on the same Conn at a time (as with net.Conn, reads and writes are
// independent); Accept similarly admits one accepting task per Listener.
package io

import (
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"lhws/internal/runtime"
)

// parkable is the raw-syscall view of a socket, used by epoll builds to
// register readiness interest; nil when the underlying conn does not
// expose one (rotation still works without it).
type parkable = syscall.RawConn

// notifier is the optional readiness fast path (see notify_epoll.go).
// park registers a not-ready op's fd and owns re-enqueueing the op when
// the fd fires; it reports false to fall back to queue rotation.
type notifier interface {
	park(op *ioOp, rc parkable) bool
	close()
}

// Conn is a socket whose operations suspend the calling task instead of
// blocking its worker. Create one with Dial, Listener.Accept, or Wrap.
// Close is plain (non-suspending) and interrupts in-flight operations.
type Conn struct {
	d  *dispatcher
	nc net.Conn
	sc parkable

	// opMu guards the in-flight op registrations. Close uses them to
	// unpark operations waiting on the readiness notifier: closing an fd
	// silently removes it from an epoll set, so a parked op would
	// otherwise never fire (rotation attempts discover the close on
	// their own; parked ones must be routed back to a bridge).
	opMu sync.Mutex
	rdOp *ioOp
	wrOp *ioOp

	// pendMu guards pending: bytes a canceled read's in-flight attempt
	// consumed off the socket after its completion claim was already
	// lost to the abort. Dropping them would desynchronize the stream —
	// the conn's next read would wait forever for bytes that can never
	// arrive again — so the bridge stashes them here and the next read
	// drains the stash before touching the socket.
	pendMu  sync.Mutex
	pending []byte
}

// setOp / clearOp maintain the Close-visibility registration around an
// op's lifetime: set task-side before Arm, cleared by the completing
// bridge.
func (cn *Conn) setOp(dir opKind, op *ioOp) {
	cn.opMu.Lock()
	if dir == opRead {
		cn.rdOp = op
	} else {
		cn.wrOp = op
	}
	cn.opMu.Unlock()
}

func (cn *Conn) clearOp(dir opKind, op *ioOp) {
	cn.opMu.Lock()
	if dir == opRead && cn.rdOp == op {
		cn.rdOp = nil
	} else if dir == opWrite && cn.wrOp == op {
		cn.wrOp = nil
	}
	cn.opMu.Unlock()
}

// stashUnread salvages bytes whose completion lost its wake claim to a
// cancellation (b aliases the unwound caller's buffer, so it is copied).
// Any successor read already in flight on the conn is then kicked: it
// may be blocked in a socket read waiting for bytes that now sit here.
func (cn *Conn) stashUnread(b []byte) {
	cn.pendMu.Lock()
	cn.pending = append(cn.pending, b...)
	cn.pendMu.Unlock()
	cn.opMu.Lock()
	op := cn.rdOp
	cn.opMu.Unlock()
	if op != nil {
		op.kickRead(cn)
	}
}

// takePending drains stashed unread bytes into p, stream order
// preserved. Returns 0 when the stash is empty (the common case: one
// predictable branch on the read path).
func (cn *Conn) takePending(p []byte) int {
	cn.pendMu.Lock()
	n := copy(p, cn.pending)
	switch {
	case n == len(cn.pending):
		cn.pending = nil
	case n > 0:
		cn.pending = cn.pending[n:]
	}
	cn.pendMu.Unlock()
	return n
}

func (cn *Conn) hasPending() bool {
	cn.pendMu.Lock()
	ok := len(cn.pending) > 0
	cn.pendMu.Unlock()
	return ok
}

// Wrap adopts an existing net.Conn into the task runtime. The conn must
// support deadlines (every *net.TCPConn, *net.UnixConn, ... does):
// rotation slices and the cancellation kick are both deadline sets, so a
// conn whose SetDeadline fails could hold a bridge forever and hang the
// run's shutdown. Wrap probes for that up front and rejects such conns
// instead of relying on the caller to know.
func Wrap(c *runtime.Ctx, nc net.Conn) (*Conn, error) {
	if err := nc.SetDeadline(time.Time{}); err != nil {
		return nil, fmt.Errorf("lhws/io: conn %T does not support deadlines: %w", nc, err)
	}
	return wrapConn(dispFor(c), nc), nil
}

func wrapConn(d *dispatcher, nc net.Conn) *Conn {
	cn := &Conn{d: d, nc: nc}
	if s, ok := nc.(syscall.Conn); ok {
		if rc, err := s.SyscallConn(); err == nil {
			cn.sc = rc
		}
	}
	return cn
}

// Read reads into p, suspending the task until at least one byte (or
// EOF, or an error) is available. Semantics match net.Conn.Read.
func (cn *Conn) Read(c *runtime.Ctx, p []byte) (int, error) {
	// Bytes salvaged from a canceled predecessor read come first: they
	// are already off the socket, ahead of anything it can deliver.
	if n := cn.takePending(p); n > 0 {
		return n, nil
	}
	op := cn.d.getOp()
	op.kind = opRead
	op.cn = cn
	op.buf = p
	cn.setOp(opRead, op)
	return c.AwaitExternalOp("io-read", runtime.KindFD, op)
}

// Write writes all of p, suspending the task across partial writes.
func (cn *Conn) Write(c *runtime.Ctx, p []byte) (int, error) {
	op := cn.d.getOp()
	op.kind = opWrite
	op.cn = cn
	op.buf = p
	cn.setOp(opWrite, op)
	return c.AwaitExternalOp("io-write", runtime.KindFD, op)
}

// NetConn exposes the underlying net.Conn for address inspection and
// option setting. Do not Read/Write it from task code — that blocks the
// worker (the noblock analyzer flags it).
func (cn *Conn) NetConn() net.Conn { return cn.nc }

// Close closes the socket. Non-suspending; pending operations complete
// with the socket's close error. Operations parked on the readiness
// notifier are routed back to a bridge (the closed fd would never fire).
func (cn *Conn) Close() error {
	err := cn.nc.Close()
	cn.opMu.Lock()
	rd, wr := cn.rdOp, cn.wrOp
	cn.opMu.Unlock()
	unparkForClose(cn.d, rd)
	unparkForClose(cn.d, wr)
	return err
}

// unparkForClose reroutes an op parked in the notifier back to the
// bridge queue so it can observe the close. The CAS races the notifier
// and cancellation; exactly one party re-enqueues.
func unparkForClose(d *dispatcher, op *ioOp) {
	if op != nil && op.parked.CompareAndSwap(true, false) {
		d.enqueue(op)
	}
}

// Gate is an admission valve a Listener consults before pulling a
// connection out of the kernel backlog. AcquireAccept returns nil when
// the server has capacity; it may suspend the accepting task (that is
// the point: backpressure parks the acceptor, and waiting connections
// queue in the kernel where they cost no worker); and it fails typed
// when intake is closed (e.g. the admission controller is draining).
// lhws/internal/admit's Controller implements it.
type Gate interface {
	AcquireAccept(c *runtime.Ctx) error
}

// Listener accepts connections without blocking workers.
type Listener struct {
	d  *dispatcher
	nl net.Listener
	sc parkable

	opMu sync.Mutex
	acOp *ioOp
	gate Gate
}

// Listen opens a listening socket (e.g. "tcp", "127.0.0.1:0"). The bind
// itself is immediate; only Accept suspends.
func Listen(c *runtime.Ctx, network, addr string) (*Listener, error) {
	nl, err := net.Listen(network, addr) //lhws:allowblock bind+listen complete immediately; only Accept waits
	if err != nil {
		return nil, err
	}
	l := &Listener{d: dispFor(c), nl: nl}
	if s, ok := nl.(syscall.Conn); ok {
		if rc, serr := s.SyscallConn(); serr == nil {
			l.sc = rc
		}
	}
	return l, nil
}

// SetGate installs an admission gate consulted by every subsequent
// Accept. Install it before the accept loop starts; a nil gate (the
// default) admits unconditionally.
func (l *Listener) SetGate(g Gate) {
	l.opMu.Lock()
	l.gate = g
	l.opMu.Unlock()
}

// Accept suspends the task until a connection arrives and returns it
// wrapped for task use. With a Gate installed (SetGate), Accept first
// acquires admission — suspending while the server is saturated, so
// fresh connections wait in the kernel backlog instead of being
// accepted into a server that would blow their targets — and returns
// the gate's typed error (e.g. admit.ErrDraining) when intake is
// closed.
func (l *Listener) Accept(c *runtime.Ctx) (*Conn, error) {
	l.opMu.Lock()
	g := l.gate
	l.opMu.Unlock()
	if g != nil {
		if err := g.AcquireAccept(c); err != nil {
			return nil, err
		}
	}
	op := &ioOp{kind: opAccept, ln: l}
	l.opMu.Lock()
	l.acOp = op
	l.opMu.Unlock()
	if _, err := c.AwaitExternalOp("io-accept", runtime.KindFD, op); err != nil {
		return nil, err
	}
	nc := op.takeResult()
	if nc == nil {
		// A cancellation closed the result before this task took it; the
		// scope is canceled, so the very next scheduling point unwinds.
		return nil, errOpCanceled
	}
	return wrapConn(l.d, nc), nil
}

func (l *Listener) clearAccept(op *ioOp) {
	l.opMu.Lock()
	if l.acOp == op {
		l.acOp = nil
	}
	l.opMu.Unlock()
}

// Addr returns the listener's address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.nl.Addr() }

// Close stops the listener; a pending Accept completes with the close
// error. Non-suspending.
func (l *Listener) Close() error {
	err := l.nl.Close()
	l.opMu.Lock()
	op := l.acOp
	l.opMu.Unlock()
	unparkForClose(l.d, op)
	return err
}

// Dial connects to addr, suspending the task for the duration of the
// connection handshake.
func Dial(c *runtime.Ctx, network, addr string) (*Conn, error) {
	d := dispFor(c)
	op := &ioOp{kind: opDial, cn: &Conn{d: d}, dialNet: network, dialAddr: addr}
	if _, err := c.AwaitExternalOp("io-dial", runtime.KindFD, op); err != nil {
		return nil, err
	}
	nc := op.takeResult()
	if nc == nil {
		return nil, errOpCanceled
	}
	return wrapConn(d, nc), nil
}

// PeakBridges reports the high-water count of bridge goroutines this
// run's dispatcher spawned — the benchmark's O(P)-not-O(C) gate reads
// it. Zero if the run performed no I/O.
func PeakBridges(c *runtime.Ctx) int {
	return dispFor(c).peakBridges()
}

// ErrOpCanceled is exported for tests that need to distinguish the
// canceled-result sentinel; user code normally never sees it (the task
// unwinds instead).
var ErrOpCanceled = errOpCanceled
