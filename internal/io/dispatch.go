package io

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/bufpool"
	"lhws/internal/runtime"
	"lhws/internal/timerwheel"
)

// This file is the dispatcher: the per-Run engine that executes socket
// operations on behalf of suspended tasks. Tasks never touch a socket
// directly — Conn.Read/Write and Listener.Accept hand a pooled ioOp to
// the dispatcher and suspend through runtime.AwaitExternalOp; a small
// bridge-goroutine pool (O(P), capped, never O(connections)) performs
// the actual syscalls and completes the ops.
//
// What happens to a not-ready operation is the backend's decision (see
// backend.go). The portable rotation backend retries it through the
// queue: Go exposes no non-blocking probe on a net.Conn (a deadline is
// checked before the syscall), so a pending operation cannot be tested
// for readiness — only attempted. A bridge attempts each queued
// operation with a short deadline slice; an attempt that times out with
// no progress re-enqueues the op at the back of the queue and the
// bridge moves on. C pending reads thus share cap bridges, each blocked
// at most one slice per attempt, and an op's wakeup latency is bounded
// by C*slice/cap — far below the operation latencies latency hiding
// targets. Builds with the lhwsepoll tag replace rotation with true
// readiness parking (backend_epoll.go): a not-ready op registers its fd
// with one epoll poller goroutine and leaves the queue entirely.
//
// Bridges work in batches sized by the backend's hint: grab up to hint
// ops under one queue-lock hold, attempt each, then submit every
// not-ready survivor in one backend parkBatch and every rotation in one
// enqueueBatch. Completions batch symmetrically — ops the backend wakes
// together are attempted back-to-back, so their task resumptions land
// in the same runtime drain and re-enter the scheduler as one pfor-tree
// deque item.
//
// Cancellation never waits for readiness: aborting a suspended I/O task
// kicks the in-flight attempt by setting the socket's deadline into the
// past, which interrupts a blocked Read/Write/Accept immediately. Every
// attempt re-arms its own slice deadline first, so a stale kick poisons
// nothing. Per-op deadlines (Conn.SetOpTimeout) ride the run's shared
// timer wheel and reuse the same kick: the expiry callback marks the op
// timed out and interrupts it, and the attempt completes it with
// ErrOpTimeout — an ordinary error return to the task, not an unwind.

const (
	// pollSlice is one rotation attempt's deadline (the portable
	// backend's attemptSlice). Small enough that a full rotation of a
	// busy queue stays well under real I/O latencies; large enough that
	// an almost-ready socket usually completes in one attempt.
	pollSlice = 2 * time.Millisecond
)

// errOpCanceled is the completion payload of a kicked (canceled)
// operation. It is never observed by user code: a canceled await either
// unwinds the task (latency-hiding and blocking modes both) before the
// payload is read, or the payload lost the wake claim entirely.
var errOpCanceled = errors.New("lhws/io: operation canceled")

// errOpTimeout is the completion payload of an op whose per-op deadline
// (Conn.SetOpTimeout) expired before the socket delivered. Unlike a
// cancellation it is a normal completion: the task gets (progress,
// ErrOpTimeout) back from Read/Write and decides what to do with the
// connection itself.
var errOpTimeout = errors.New("lhws/io: operation deadline exceeded")

// aLongTimeAgo is the past deadline used to kick in-flight socket calls.
var aLongTimeAgo = time.Unix(1, 0)

type opKind int8

const (
	opRead opKind = iota
	opWrite
	opWritev
	opAccept
	opDial
)

// attemptOutcome is what one bridge attempt did with its op.
type attemptOutcome int8

const (
	// attemptDone: the op completed (or discarded) and is no longer the
	// bridge's to route.
	attemptDone attemptOutcome = iota
	// attemptRotate: not ready and not parkable; re-enqueue.
	attemptRotate
	// attemptPark: not ready; submit to the backend's parkBatch.
	attemptPark
)

// ioOp is one socket operation in flight between a task and the bridge
// pool. Read and write ops are pooled and recycled by the completing
// bridge; accept and dial ops are owned by the task (it takes the
// result connection out of the op after resuming) and die to the GC.
//
// mu serializes the parties that can touch an op concurrently — the
// arming task, the executing bridge, a cancellation abort, and the
// timer wheel's deadline callback — and h is the op's identity check:
// CancelExternal compares its handle against op.h, so an abort that
// raced with completion (and possibly with the op's recycling into a
// new life) detects staleness and leaves the new life alone. The
// comparison is sound because the aborting scope still holds a
// reference on its waiter, so the handle's waiter cannot have been
// recycled while the abort runs. The deadline callback's identity check
// is op.dl: a fired timer that no longer matches belongs to a completed
// (possibly recycled) life and is ignored.
type ioOp struct {
	mu       sync.Mutex
	h        runtime.ExternalHandle // zeroed at completion; identity for cancel
	kind     opKind
	canceled bool
	timedOut bool              // per-op deadline expired (Conn.SetOpTimeout)
	dl       *timerwheel.Timer // armed per-op deadline; stopped at completion
	// parked is set while the op is registered with the readiness
	// backend (epoll builds); whoever CASes it back re-enqueues the op.
	parked atomic.Bool

	cn  *Conn     // read / write
	ln  *Listener // accept
	buf []byte
	off int // write progress across rotation attempts

	// Pooled-read state: pb non-nil means buf is pb's payload and the op
	// holds pb's reference until completion settles ownership (task on a
	// won claim, the conn's unread stash on a lost claim with progress,
	// the pool otherwise). See settleBuf.
	pb *bufpool.Buf

	// Vectored-write state (opWritev): vec is consumed front-to-front by
	// writev attempts, voff accumulates bytes written across them.
	vec  net.Buffers
	voff int

	// Dial / Accept result handoff. resMu (not mu) guards it because the
	// task takes the result after the op's handle is already cleared.
	resMu     sync.Mutex
	res       net.Conn
	abandoned bool // cancel ran before the result landed: closer is the bridge
	dialNet   string
	dialAddr  string
	ctxCancel context.CancelFunc // interrupts an in-flight DialContext
}

// Arm publishes the op to the dispatcher's bridge pool. Runs task-side.
func (op *ioOp) Arm(h runtime.ExternalHandle) {
	op.mu.Lock()
	op.h = h
	op.mu.Unlock()
	op.disp().enqueue(op)
}

// CancelExternal interrupts the op: mark it canceled and kick whatever
// blocking call a bridge may have in flight. Runs on the canceling
// goroutine; must not block (deadline sets and context cancels only).
func (op *ioOp) CancelExternal(h runtime.ExternalHandle, cause error) {
	op.mu.Lock()
	if op.h != h {
		// Stale abort: the op completed (and was possibly recycled into a
		// new life with a different handle) before the cancel landed.
		op.mu.Unlock()
		return
	}
	op.canceled = true
	// Capture the life's identity under the lock: once mu is released the
	// kicked attempt can complete and the op be recycled into a new life
	// whose task-side fields (kind, cn, ln) are being rewritten while the
	// code below still runs.
	kind, d := op.kind, op.disp()
	switch kind {
	case opRead:
		op.cn.nc.SetReadDeadline(aLongTimeAgo)
	case opWrite, opWritev:
		op.cn.nc.SetWriteDeadline(aLongTimeAgo)
	case opAccept:
		if dl, ok := op.ln.nl.(deadliner); ok {
			dl.SetDeadline(aLongTimeAgo)
		}
	case opDial:
		if op.ctxCancel != nil {
			op.ctxCancel()
		}
	}
	op.mu.Unlock()
	if kind == opAccept || kind == opDial {
		// A result that already landed will never be taken: close it.
		// If none landed yet, the bridge closes it on arrival.
		op.resMu.Lock()
		if op.res != nil {
			op.res.Close()
			op.res = nil
		} else {
			op.abandoned = true
		}
		op.resMu.Unlock()
	}
	if op.parked.CompareAndSwap(true, false) {
		// The op sits in the readiness backend, not the queue, and its
		// fd may never fire; route it back to a bridge to be completed.
		// (If the CAS stole a recycled life's fresh park claim instead,
		// the bridge simply retries that life's attempt — wasted work,
		// never a lost op.)
		d.enqueue(op)
	}
}

// kickRead interrupts a read attempt so it re-checks cn's unread stash:
// salvaged bytes live in userspace now, so the socket may never signal
// readiness for them. Same kick/unpark protocol as CancelExternal —
// including its tolerance for op having been recycled into a new life
// (the identity check under mu skips the kick; a stolen park claim
// merely costs that life one extra attempt) — but nothing is canceled.
func (op *ioOp) kickRead(cn *Conn) {
	op.mu.Lock()
	if op.kind == opRead && op.cn == cn && !op.canceled {
		cn.nc.SetReadDeadline(aLongTimeAgo)
	}
	op.mu.Unlock()
	if op.parked.CompareAndSwap(true, false) {
		cn.d.enqueue(op)
	}
}

// opDeadlineFired is the timer-wheel callback for a per-op deadline
// (Conn.SetOpTimeout): mark the op timed out and kick it like a cancel
// would, so the in-flight attempt returns promptly and completes with
// ErrOpTimeout. Runs on the wheel goroutine. The op.dl identity check
// makes a stale fire — the timer lost its Stop race and the op has
// completed, possibly recycled and re-armed with a fresh timer — a
// no-op: a fired timer that is not the op's current one belongs to a
// finished life.
//
//lhws:nosuspend
func opDeadlineFired(t *timerwheel.Timer, arg any) {
	op := arg.(*ioOp)
	op.mu.Lock()
	if op.dl != t {
		op.mu.Unlock()
		return
	}
	op.dl = nil
	op.timedOut = true
	d := op.disp()
	switch op.kind {
	case opRead:
		op.cn.nc.SetReadDeadline(aLongTimeAgo)
	case opWrite, opWritev:
		op.cn.nc.SetWriteDeadline(aLongTimeAgo)
	}
	op.mu.Unlock()
	if op.parked.CompareAndSwap(true, false) {
		d.enqueue(op)
	}
}

func (op *ioOp) disp() *dispatcher {
	switch op.kind {
	case opAccept:
		return op.ln.d
	default:
		return op.cn.d
	}
}

// parkTarget is the raw-fd view the backend parks the op on. Read by
// the bridge while it still owns the op (between an attemptPark outcome
// and the parkBatch submission).
func (op *ioOp) parkTarget() parkable {
	switch op.kind {
	case opAccept:
		return op.ln.sc
	default:
		return op.cn.sc
	}
}

// loadFlags snapshots the op's interrupt flags under mu.
func (op *ioOp) loadFlags() (canceled, timedOut bool) {
	op.mu.Lock()
	c, t := op.canceled, op.timedOut
	op.mu.Unlock()
	return c, t
}

// deadliner is the subset of net listeners/conns that support kicking.
type deadliner interface {
	SetDeadline(time.Time) error
}

// dispatcher owns the bridge pool and the pending-op queue for one Run.
// It is created lazily through Ctx.Aux and closed by the runtime after
// the task pool drains, so bridges never outlive the run (the leak tests
// depend on close being synchronous).
type dispatcher struct {
	mu      sync.Mutex
	cond    sync.Cond
	queue   []*ioOp
	head    int
	idle    int
	bridges int
	peak    int // high-water bridge count; the benchmark gates on it
	cap     int
	closed  bool
	wg      sync.WaitGroup
	ops     sync.Pool

	be    backend
	slice time.Duration // be.attemptSlice(), cached off the hot path
	// wheel is the run's shared timer wheel (runtime.Ctx.Wheel): per-op
	// deadlines are O(1) list inserts there, and the runtime shuts it
	// down before the dispatcher closes, so no deadline callback can
	// fire into a closed dispatcher.
	wheel *timerwheel.Wheel
}

type dispKey struct{}

// dispFor returns the Run's dispatcher, creating it on first use. The
// bridge cap is O(P): rotation means pending operations share bridges
// instead of holding one each, so the pool never scales with the number
// of connections.
func dispFor(c *runtime.Ctx) *dispatcher {
	return c.Aux(dispKey{}, func() (any, func()) {
		d := &dispatcher{}
		d.cond.L = &d.mu
		d.cap = 2 * c.NumWorkers()
		if d.cap < 8 {
			d.cap = 8
		}
		d.wheel = c.Wheel()
		d.be = newBackend(d)
		d.slice = d.be.attemptSlice()
		return d, d.close
	}).(*dispatcher)
}

func (d *dispatcher) getOp() *ioOp {
	if v := d.ops.Get(); v != nil {
		return v.(*ioOp)
	}
	return &ioOp{}
}

func (d *dispatcher) putOp(op *ioOp) {
	// The reset must hold op.mu: a parking bridge that lost its claim
	// between epoll registration and its post-registration cancel
	// re-check (epollBackend.parkBatch) may still read op.canceled after
	// a readiness-claimed completion recycles the op. The lock orders
	// that late read against this reset; the reader's stale parked CAS is
	// harmless either way (pointer-equality-guarded drop, and the claim
	// protocol enqueues the op exactly once).
	op.mu.Lock()
	op.cn = nil
	op.ln = nil
	op.buf = nil
	op.off = 0
	op.pb = nil
	op.vec = nil
	op.voff = 0
	op.canceled = false
	op.timedOut = false
	op.mu.Unlock()
	d.ops.Put(op)
}

// enqueue hands an op to the bridge pool: append, then wake an idle
// bridge or grow the pool up to cap. Called from tasks (Arm), bridges
// (rotation), the backend (readiness), and aborts (unparking).
func (d *dispatcher) enqueue(op *ioOp) {
	d.mu.Lock()
	if d.closed {
		// Only reachable for ops with no live awaiting task (the runtime
		// closes the dispatcher after every task has finished); release
		// the stale op's claim rather than strand it.
		d.mu.Unlock()
		op.discardLocked(errOpCanceled)
		return
	}
	if op.kind == opDial {
		// A dial holds its goroutine for the entire connect (DialContext
		// has no rotation slice), so it runs on a dedicated goroutine
		// outside the bridge cap: cap concurrent slow dials would
		// otherwise occupy every bridge and starve queued reads, writes,
		// and accepts until OS connect timeouts expired. The goroutine
		// parks in the kernel, cancellation interrupts it through the
		// dial context, and close() still joins it via wg.
		d.wg.Add(1)
		d.mu.Unlock()
		go func() {
			defer d.wg.Done()
			op.runDial(d)
		}()
		return
	}
	d.queue = append(d.queue, op)
	switch {
	case d.idle > 0:
		d.cond.Signal()
	case d.bridges < d.cap:
		d.bridges++
		if d.bridges > d.peak {
			d.peak = d.bridges
		}
		d.wg.Add(1)
		go d.bridge()
	}
	d.mu.Unlock()
}

// enqueueBatch is enqueue for a set of ops that became runnable
// together — a backend readiness sweep, or a bridge round's rotations:
// one queue-lock hold, then as many bridge wakeups/spawns as the batch
// can use. Dials never appear here (they neither rotate nor park).
func (d *dispatcher) enqueueBatch(ops []*ioOp) {
	if len(ops) == 0 {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		for _, op := range ops {
			op.discardLocked(errOpCanceled)
		}
		return
	}
	d.queue = append(d.queue, ops...)
	need := len(ops)
	if k := d.idle; k > 0 {
		if k > need {
			k = need
		}
		need -= k
		for ; k > 0; k-- {
			d.cond.Signal()
		}
	}
	for need > 0 && d.bridges < d.cap {
		d.bridges++
		if d.bridges > d.peak {
			d.peak = d.bridges
		}
		d.wg.Add(1)
		go d.bridge()
		need--
	}
	d.mu.Unlock()
}

// close drains the queue and joins every bridge. The runtime calls it
// after the run's last task has finished, so every op still queued or
// in flight is a canceled straggler whose completion nobody awaits.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	// Join the bridges before tearing down the backend: a bridge
	// mid-parkBatch must not race the epoll fd's close (fd-number reuse).
	d.wg.Wait()
	d.be.close()
}

// peakBridges reports the bridge pool's high-water mark.
func (d *dispatcher) peakBridges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// backendName reports the active backend ("rotate" or "epoll"); the
// benchmarks record it alongside their results.
func (d *dispatcher) backendName() string { return d.be.name() }

// bridgeScratch is one bridge's reusable batch buffers, so a steady
// stream of batched rounds allocates nothing.
type bridgeScratch struct {
	batch  []*ioOp
	parks  []parkReq
	rotate []*ioOp
}

// bridge is one pool goroutine: grab up to the backend's hint of queued
// ops, attempt each, park the not-ready survivors in one batch, rotate
// the rest in one batch, repeat. Exits when the dispatcher is closed
// and the queue is empty.
//
//lhws:nosuspend
func (d *dispatcher) bridge() {
	defer d.wg.Done()
	hint := d.be.batchHint()
	if hint < 1 {
		hint = 1
	}
	var sc bridgeScratch
	d.mu.Lock()
	for {
		for d.head == len(d.queue) && !d.closed {
			d.idle++
			d.cond.Wait()
			d.idle--
		}
		if d.head == len(d.queue) {
			d.mu.Unlock()
			return
		}
		take := len(d.queue) - d.head
		if take > hint {
			take = hint
		}
		sc.batch = sc.batch[:0]
		for i := 0; i < take; i++ {
			sc.batch = append(sc.batch, d.queue[d.head])
			d.queue[d.head] = nil
			d.head++
		}
		if d.head == len(d.queue) {
			d.queue = d.queue[:0]
			d.head = 0
		}
		d.mu.Unlock()
		sc.parks = sc.parks[:0]
		sc.rotate = sc.rotate[:0]
		for _, op := range sc.batch {
			switch op.run(d) {
			case attemptPark:
				sc.parks = append(sc.parks, parkReq{op: op, rc: op.parkTarget(),
					kind: op.kind, cn: op.cn})
			case attemptRotate:
				sc.rotate = append(sc.rotate, op)
			}
		}
		if len(sc.parks) > 0 {
			sc.rotate = d.be.parkBatch(sc.parks, sc.rotate)
		}
		d.enqueueBatch(sc.rotate)
		d.mu.Lock()
	}
}

// takeHandle ends the op's completion-side lifetime: it drops the op's
// Close-visibility registration on its Conn/Listener (pooled ops are
// about to be recycled and must not be unparked by a stale Close),
// stops any armed per-op deadline (a fire losing the race is ignored by
// the op.dl identity check), and zeroes the handle, ending the
// cancel-visibility window.
//
//lhws:nosuspend
func (op *ioOp) takeHandle() runtime.ExternalHandle {
	switch op.kind {
	case opRead, opWrite, opWritev:
		if op.cn != nil {
			op.cn.clearOp(op.kind, op)
		}
	case opAccept:
		if op.ln != nil {
			op.ln.clearAccept(op)
		}
	}
	op.mu.Lock()
	if op.dl != nil {
		op.dl.Stop()
		op.dl = nil
	}
	h := op.h
	op.h = runtime.ExternalHandle{}
	op.mu.Unlock()
	return h
}

// completeLocked delivers the payload to the awaiting task. Returns
// whether it reached the task; false means a cancellation claimed the
// suspension first and the result fell away.
//
//lhws:nosuspend
func (op *ioOp) completeLocked(n int, err error) bool {
	return op.takeHandle().Complete(n, err)
}

// discardLocked is completeLocked for an attempt that observed its op
// canceled: the abort that kicked it owns the task's wake, so the
// completion only releases its claim instead of racing the abort —
// a race the attempt could win, surfacing a kicked attempt's payload
// to the task as a successful return (see ExternalHandle.Discard).
//
//lhws:nosuspend
func (op *ioOp) discardLocked(err error) {
	op.takeHandle().Discard(err)
}

// settleBuf resolves a pooled read buffer's ownership after the op's
// completion (or discard). won is completeLocked's claim result (false
// for discards), n the attempt's progress. Exactly one party ends up
// owning the buffer's reference:
//
//   - claim won: the task — it is returning from ReadBuf with the
//     buffer in hand, so the bridge only forgets its pointer;
//   - claim lost with progress: the conn's unread stash — the bytes are
//     already off the socket and the next read must see them, so the
//     buffer MOVES into the stash (the zero-copy half of the cancel
//     window; the unpooled path has to copy here);
//   - claim lost without progress: nobody — back to the pool.
//
//lhws:nosuspend
func (op *ioOp) settleBuf(won bool, n int) {
	pb := op.pb
	if pb == nil {
		if !won && n > 0 {
			op.cn.stashUnread(op.buf[:n])
		}
		return
	}
	op.pb = nil
	if won {
		return
	}
	if n > 0 {
		pb.SetLen(n)
		op.cn.stashUnreadBuf(pb)
		return
	}
	pb.Release()
}

// run executes one attempt of the op on the calling bridge and reports
// how to route it. Dials never reach here: enqueue routes them to
// dedicated goroutines.
func (op *ioOp) run(d *dispatcher) attemptOutcome {
	switch op.kind {
	case opRead:
		return op.runRead(d)
	case opWrite:
		return op.runWrite(d)
	case opWritev:
		return op.runWritev(d)
	case opAccept:
		return op.runAccept(d)
	}
	return attemptDone
}

// startAttempt arms the slice deadline for one attempt under op.mu.
// Returning false means the op was canceled: the caller completes it
// without touching the socket. The mutex closes the kick race: either
// the abort sees this attempt's deadline already armed and overrides it
// with the past kick, or this attempt sees canceled already set.
func (op *ioOp) startAttempt(d *dispatcher, arm func(time.Time) error) bool {
	op.mu.Lock()
	if op.canceled {
		op.mu.Unlock()
		return false
	}
	arm(time.Now().Add(d.slice))
	op.mu.Unlock()
	return true
}

func (op *ioOp) runRead(d *dispatcher) attemptOutcome {
	cn := op.cn
	nc := cn.nc
	if !op.startAttempt(d, nc.SetReadDeadline) {
		op.settleBuf(false, 0)
		op.discardLocked(errOpCanceled)
		d.putOp(op)
		return attemptDone
	}
	// Bytes salvaged from a canceled predecessor take priority over the
	// socket: they were already consumed off it, so the fd may never
	// signal readiness for them again. Checked after startAttempt so a
	// canceled op cannot drain bytes meant for its successor (and if a
	// cancel lands between the two, the claim-loss re-stash below puts
	// them back).
	if n := cn.takePending(op.buf); n > 0 {
		op.settleBuf(op.completeLocked(n, nil), n)
		d.putOp(op)
		return attemptDone
	}
	n, err := nc.Read(op.buf)
	if n == 0 && isTimeout(err) {
		canceled, timedOut := op.loadFlags()
		switch {
		case canceled:
			op.settleBuf(false, 0)
			op.discardLocked(err)
			d.putOp(op)
			return attemptDone
		case timedOut:
			op.settleBuf(op.completeLocked(0, errOpTimeout), 0)
			d.putOp(op)
			return attemptDone
		}
		return parkOrRotate(cn.sc)
	}
	if n > 0 && isTimeout(err) {
		// Data arrived within the slice: a timeout alongside progress is
		// not an error for the caller. (This also covers a per-op
		// deadline firing just as bytes landed — the data wins.)
		err = nil
	}
	if canceled, _ := op.loadFlags(); canceled {
		// The attempt was kicked; the abort owns the task's wake. Bytes
		// consumed in the kick window are already off the socket: stash
		// them for the conn's next read instead of silently
		// desynchronizing the stream.
		op.settleBuf(false, n)
		op.discardLocked(err)
		d.putOp(op)
		return attemptDone
	}
	op.settleBuf(op.completeLocked(n, err), n)
	d.putOp(op)
	return attemptDone
}

func (op *ioOp) runWrite(d *dispatcher) attemptOutcome {
	nc := op.cn.nc
	if !op.startAttempt(d, nc.SetWriteDeadline) {
		op.discardLocked(errOpCanceled)
		d.putOp(op)
		return attemptDone
	}
	n, err := nc.Write(op.buf[op.off:])
	op.off += n
	if op.off < len(op.buf) && isTimeout(err) {
		canceled, timedOut := op.loadFlags()
		switch {
		case canceled:
			// Kicked: the abort owns the wake. Bytes already on the wire
			// stay there — the unwinding task never reads the progress
			// count.
			op.discardLocked(err)
			d.putOp(op)
			return attemptDone
		case timedOut:
			op.completeLocked(op.off, errOpTimeout)
			d.putOp(op)
			return attemptDone
		}
		return parkOrRotate(op.cn.sc)
	}
	if op.off == len(op.buf) && isTimeout(err) {
		err = nil
	}
	if canceled, _ := op.loadFlags(); canceled {
		op.discardLocked(err)
		d.putOp(op)
		return attemptDone
	}
	op.completeLocked(op.off, err)
	d.putOp(op)
	return attemptDone
}

// runWritev is runWrite over a buffer vector: one writev syscall per
// attempt (net.Buffers.WriteTo), consuming the written prefix so a
// partial attempt resumes exactly where it stopped.
func (op *ioOp) runWritev(d *dispatcher) attemptOutcome {
	nc := op.cn.nc
	if !op.startAttempt(d, nc.SetWriteDeadline) {
		op.discardLocked(errOpCanceled)
		d.putOp(op)
		return attemptDone
	}
	n, err := op.vec.WriteTo(nc)
	op.voff += int(n)
	if len(op.vec) > 0 && isTimeout(err) {
		canceled, timedOut := op.loadFlags()
		switch {
		case canceled:
			op.discardLocked(err)
			d.putOp(op)
			return attemptDone
		case timedOut:
			op.completeLocked(op.voff, errOpTimeout)
			d.putOp(op)
			return attemptDone
		}
		return parkOrRotate(op.cn.sc)
	}
	if len(op.vec) == 0 && isTimeout(err) {
		err = nil
	}
	if canceled, _ := op.loadFlags(); canceled {
		op.discardLocked(err)
		d.putOp(op)
		return attemptDone
	}
	op.completeLocked(op.voff, err)
	d.putOp(op)
	return attemptDone
}

func (op *ioOp) runAccept(d *dispatcher) attemptOutcome {
	arm := func(t time.Time) error { return nil }
	if dl, ok := op.ln.nl.(deadliner); ok {
		arm = dl.SetDeadline
	}
	if !op.startAttempt(d, arm) {
		op.discardLocked(errOpCanceled)
		return attemptDone
	}
	nc, err := op.ln.nl.Accept()
	if err != nil && nc == nil && isTimeout(err) {
		if canceled, _ := op.loadFlags(); !canceled {
			return parkOrRotate(op.ln.sc)
		}
		op.discardLocked(err)
		return attemptDone
	}
	if nc != nil {
		op.deliverResult(nc)
		err = nil
	}
	if canceled, _ := op.loadFlags(); canceled {
		// Kicked: the abort owns the wake; an accepted conn was already
		// routed through deliverResult's abandoned handoff (closed by
		// whichever side saw it last), so nothing leaks.
		op.discardLocked(err)
		return attemptDone
	}
	op.completeLocked(0, err)
	return attemptDone
}

// parkOrRotate routes a genuinely not-ready op: to the backend when the
// socket exposes a raw fd, back to the queue otherwise.
func parkOrRotate(rc parkable) attemptOutcome {
	if rc == nil {
		return attemptRotate
	}
	return attemptPark
}

func (op *ioOp) runDial(d *dispatcher) {
	// Runs on its own goroutine (see enqueue), never a pooled bridge:
	// DialContext holds the goroutine until the connection (or
	// cancellation via the context) resolves, with no rotation slice.
	ctx, cancel := context.WithCancel(context.Background())
	op.mu.Lock()
	if op.canceled {
		op.mu.Unlock()
		cancel()
		op.discardLocked(errOpCanceled)
		return
	}
	op.ctxCancel = cancel
	op.mu.Unlock()
	var dialer net.Dialer
	nc, err := dialer.DialContext(ctx, op.dialNet, op.dialAddr)
	cancel()
	if nc != nil {
		op.deliverResult(nc)
		err = nil
	}
	op.mu.Lock()
	canceled := op.canceled
	op.mu.Unlock()
	if canceled {
		op.discardLocked(err)
		return
	}
	op.completeLocked(0, err)
}

// deliverResult hands an accepted/dialed connection toward the awaiting
// task, or closes it if a cancellation abandoned the op first — exactly
// one side observes every connection, so none leaks.
//
//lhws:nosuspend
func (op *ioOp) deliverResult(nc net.Conn) {
	op.resMu.Lock()
	if op.abandoned {
		op.resMu.Unlock()
		nc.Close()
		return
	}
	op.res = nc
	op.resMu.Unlock()
}

// takeResult is the task-side half of the handoff, after a normal
// (non-unwinding) await return.
func (op *ioOp) takeResult() net.Conn {
	op.resMu.Lock()
	nc := op.res
	op.res = nil
	op.resMu.Unlock()
	return nc
}

// isTimeout runs on every attempt, err or not, so the common cases must
// not allocate: errors.As reflects on (and heap-escapes) its target even
// for a nil error, which would cost one allocation per I/O op. A nil
// check plus a direct interface assertion covers nil and the deadline
// errors the net package actually returns (*net.OpError, unwrapped);
// errors.As stays as the fallback for wrapped errors.
func isTimeout(err error) bool {
	if err == nil {
		return false
	}
	if ne, ok := err.(net.Error); ok {
		return ne.Timeout()
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
