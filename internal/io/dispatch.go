package io

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/runtime"
)

// This file is the dispatcher: the per-Run engine that executes socket
// operations on behalf of suspended tasks. Tasks never touch a socket
// directly — Conn.Read/Write and Listener.Accept hand a pooled ioOp to
// the dispatcher and suspend through runtime.AwaitExternalOp; a small
// bridge-goroutine pool (O(P), capped, never O(connections)) performs
// the actual syscalls and completes the ops.
//
// Portable readiness without epoll: Go exposes no non-blocking probe on
// a net.Conn (a deadline is checked before the syscall), so a pending
// operation cannot be tested for readiness — only attempted. The
// dispatcher therefore rotates: a bridge attempts each queued operation
// with a short deadline slice; an attempt that times out with no
// progress re-enqueues the op at the back of the queue and the bridge
// moves on. C pending reads thus share cap bridges, each blocked at most
// one slice per attempt, and an op's wakeup latency is bounded by
// C*slice/cap — far below the operation latencies latency hiding
// targets. Builds with the lhwsepoll tag replace rotation with true
// readiness parking (see notify_epoll.go): a not-ready op registers its
// fd with one epoll poller goroutine and leaves the queue entirely.
//
// Cancellation never waits for readiness: aborting a suspended I/O task
// kicks the in-flight attempt by setting the socket's deadline into the
// past, which interrupts a blocked Read/Write/Accept immediately. Every
// attempt re-arms its own slice deadline first, so a stale kick poisons
// nothing.

const (
	// pollSlice is one rotation attempt's deadline. Small enough that a
	// full rotation of a busy queue stays well under real I/O latencies;
	// large enough that an almost-ready socket usually completes in one
	// attempt.
	pollSlice = 2 * time.Millisecond
)

// errOpCanceled is the completion payload of a kicked (canceled)
// operation. It is never observed by user code: a canceled await either
// unwinds the task (latency-hiding and blocking modes both) before the
// payload is read, or the payload lost the wake claim entirely.
var errOpCanceled = errors.New("lhws/io: operation canceled")

// aLongTimeAgo is the past deadline used to kick in-flight socket calls.
var aLongTimeAgo = time.Unix(1, 0)

type opKind int8

const (
	opRead opKind = iota
	opWrite
	opAccept
	opDial
)

// ioOp is one socket operation in flight between a task and the bridge
// pool. Read and write ops are pooled and recycled by the completing
// bridge; accept and dial ops are owned by the task (it takes the
// result connection out of the op after resuming) and die to the GC.
//
// mu serializes the three parties that can touch an op concurrently —
// the arming task, the executing bridge, and a cancellation abort — and
// h is the op's identity check: CancelExternal compares its handle
// against op.h, so an abort that raced with completion (and possibly
// with the op's recycling into a new life) detects staleness and leaves
// the new life alone. The comparison is sound because the aborting scope
// still holds a reference on its waiter, so the handle's waiter cannot
// have been recycled while the abort runs.
type ioOp struct {
	mu       sync.Mutex
	h        runtime.ExternalHandle // zeroed at completion; identity for cancel
	kind     opKind
	canceled bool
	// parked is set while the op is registered with the readiness
	// notifier (epoll builds); whoever CASes it back re-enqueues the op.
	parked atomic.Bool

	cn  *Conn     // read / write
	ln  *Listener // accept
	buf []byte
	off int // write progress across rotation attempts

	// Dial / Accept result handoff. resMu (not mu) guards it because the
	// task takes the result after the op's handle is already cleared.
	resMu     sync.Mutex
	res       net.Conn
	abandoned bool // cancel ran before the result landed: closer is the bridge
	dialNet   string
	dialAddr  string
	ctxCancel context.CancelFunc // interrupts an in-flight DialContext
}

// Arm publishes the op to the dispatcher's bridge pool. Runs task-side.
func (op *ioOp) Arm(h runtime.ExternalHandle) {
	op.mu.Lock()
	op.h = h
	op.mu.Unlock()
	op.disp().enqueue(op)
}

// CancelExternal interrupts the op: mark it canceled and kick whatever
// blocking call a bridge may have in flight. Runs on the canceling
// goroutine; must not block (deadline sets and context cancels only).
func (op *ioOp) CancelExternal(h runtime.ExternalHandle, cause error) {
	op.mu.Lock()
	if op.h != h {
		// Stale abort: the op completed (and was possibly recycled into a
		// new life with a different handle) before the cancel landed.
		op.mu.Unlock()
		return
	}
	op.canceled = true
	// Capture the life's identity under the lock: once mu is released the
	// kicked attempt can complete and the op be recycled into a new life
	// whose task-side fields (kind, cn, ln) are being rewritten while the
	// code below still runs.
	kind, d := op.kind, op.disp()
	switch kind {
	case opRead:
		op.cn.nc.SetReadDeadline(aLongTimeAgo)
	case opWrite:
		op.cn.nc.SetWriteDeadline(aLongTimeAgo)
	case opAccept:
		if dl, ok := op.ln.nl.(deadliner); ok {
			dl.SetDeadline(aLongTimeAgo)
		}
	case opDial:
		if op.ctxCancel != nil {
			op.ctxCancel()
		}
	}
	op.mu.Unlock()
	if kind == opAccept || kind == opDial {
		// A result that already landed will never be taken: close it.
		// If none landed yet, the bridge closes it on arrival.
		op.resMu.Lock()
		if op.res != nil {
			op.res.Close()
			op.res = nil
		} else {
			op.abandoned = true
		}
		op.resMu.Unlock()
	}
	if op.parked.CompareAndSwap(true, false) {
		// The op sits in the readiness notifier, not the queue, and its
		// fd may never fire; route it back to a bridge to be completed.
		// (If the CAS stole a recycled life's fresh park claim instead,
		// the bridge simply retries that life's attempt — wasted work,
		// never a lost op.)
		d.enqueue(op)
	}
}

// kickRead interrupts a read attempt so it re-checks cn's unread stash:
// salvaged bytes live in userspace now, so the socket may never signal
// readiness for them. Same kick/unpark protocol as CancelExternal —
// including its tolerance for op having been recycled into a new life
// (the identity check under mu skips the kick; a stolen park claim
// merely costs that life one extra attempt) — but nothing is canceled.
func (op *ioOp) kickRead(cn *Conn) {
	op.mu.Lock()
	if op.kind == opRead && op.cn == cn && !op.canceled {
		cn.nc.SetReadDeadline(aLongTimeAgo)
	}
	op.mu.Unlock()
	if op.parked.CompareAndSwap(true, false) {
		cn.d.enqueue(op)
	}
}

func (op *ioOp) disp() *dispatcher {
	switch op.kind {
	case opAccept:
		return op.ln.d
	default:
		return op.cn.d
	}
}

// deadliner is the subset of net listeners/conns that support kicking.
type deadliner interface {
	SetDeadline(time.Time) error
}

// dispatcher owns the bridge pool and the pending-op queue for one Run.
// It is created lazily through Ctx.Aux and closed by the runtime after
// the task pool drains, so bridges never outlive the run (the leak tests
// depend on close being synchronous).
type dispatcher struct {
	mu      sync.Mutex
	cond    sync.Cond
	queue   []*ioOp
	head    int
	idle    int
	bridges int
	peak    int // high-water bridge count; the benchmark gates on it
	cap     int
	closed  bool
	wg      sync.WaitGroup
	ops     sync.Pool
	notify  notifier // non-nil only in lhwsepoll builds
}

type dispKey struct{}

// dispFor returns the Run's dispatcher, creating it on first use. The
// bridge cap is O(P): rotation means pending operations share bridges
// instead of holding one each, so the pool never scales with the number
// of connections.
func dispFor(c *runtime.Ctx) *dispatcher {
	return c.Aux(dispKey{}, func() (any, func()) {
		d := &dispatcher{}
		d.cond.L = &d.mu
		d.cap = 2 * c.NumWorkers()
		if d.cap < 8 {
			d.cap = 8
		}
		d.notify = newNotifier(d)
		return d, d.close
	}).(*dispatcher)
}

func (d *dispatcher) getOp() *ioOp {
	if v := d.ops.Get(); v != nil {
		return v.(*ioOp)
	}
	return &ioOp{}
}

func (d *dispatcher) putOp(op *ioOp) {
	// The reset must hold op.mu: a parking bridge that lost its claim
	// between epoll registration and its post-registration cancel
	// re-check (notify_epoll.park) may still read op.canceled after a
	// readiness-claimed completion recycles the op. The lock orders that
	// late read against this reset; the reader's stale parked CAS is
	// harmless either way (pointer-equality-guarded drop, and the claim
	// protocol enqueues the op exactly once).
	op.mu.Lock()
	op.cn = nil
	op.ln = nil
	op.buf = nil
	op.off = 0
	op.canceled = false
	op.mu.Unlock()
	d.ops.Put(op)
}

// enqueue hands an op to the bridge pool: append, then wake an idle
// bridge or grow the pool up to cap. Called from tasks (Arm), bridges
// (rotation), the notifier (readiness), and aborts (unparking).
func (d *dispatcher) enqueue(op *ioOp) {
	d.mu.Lock()
	if d.closed {
		// Only reachable for ops with no live awaiting task (the runtime
		// closes the dispatcher after every task has finished); release
		// the stale op's claim rather than strand it.
		d.mu.Unlock()
		op.discardLocked(errOpCanceled)
		return
	}
	if op.kind == opDial {
		// A dial holds its goroutine for the entire connect (DialContext
		// has no rotation slice), so it runs on a dedicated goroutine
		// outside the bridge cap: cap concurrent slow dials would
		// otherwise occupy every bridge and starve queued reads, writes,
		// and accepts until OS connect timeouts expired. The goroutine
		// parks in the kernel, cancellation interrupts it through the
		// dial context, and close() still joins it via wg.
		d.wg.Add(1)
		d.mu.Unlock()
		go func() {
			defer d.wg.Done()
			op.runDial(d)
		}()
		return
	}
	d.queue = append(d.queue, op)
	switch {
	case d.idle > 0:
		d.cond.Signal()
	case d.bridges < d.cap:
		d.bridges++
		if d.bridges > d.peak {
			d.peak = d.bridges
		}
		d.wg.Add(1)
		go d.bridge()
	}
	d.mu.Unlock()
}

// close drains the queue and joins every bridge. The runtime calls it
// after the run's last task has finished, so every op still queued or
// in flight is a canceled straggler whose completion nobody awaits.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	// Join the bridges before tearing down the notifier: a bridge mid-park
	// must not race the epoll fd's close (fd-number reuse).
	d.wg.Wait()
	if d.notify != nil {
		d.notify.close()
	}
}

// peakBridges reports the bridge pool's high-water mark.
func (d *dispatcher) peakBridges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// bridge is one pool goroutine: pop an op, attempt it, repeat. Exits
// when the dispatcher is closed and the queue is empty.
//
//lhws:nosuspend
func (d *dispatcher) bridge() {
	defer d.wg.Done()
	d.mu.Lock()
	for {
		for d.head == len(d.queue) && !d.closed {
			d.idle++
			d.cond.Wait()
			d.idle--
		}
		if d.head == len(d.queue) {
			d.mu.Unlock()
			return
		}
		op := d.queue[d.head]
		d.queue[d.head] = nil
		d.head++
		if d.head == len(d.queue) {
			d.queue = d.queue[:0]
			d.head = 0
		}
		d.mu.Unlock()
		op.run(d)
		d.mu.Lock()
	}
}

// takeHandle ends the op's completion-side lifetime: it drops the op's
// Close-visibility registration on its Conn/Listener (pooled ops are
// about to be recycled and must not be unparked by a stale Close) and
// zeroes the handle, ending the cancel-visibility window.
//
//lhws:nosuspend
func (op *ioOp) takeHandle() runtime.ExternalHandle {
	switch op.kind {
	case opRead, opWrite:
		if op.cn != nil {
			op.cn.clearOp(op.kind, op)
		}
	case opAccept:
		if op.ln != nil {
			op.ln.clearAccept(op)
		}
	}
	op.mu.Lock()
	h := op.h
	op.h = runtime.ExternalHandle{}
	op.mu.Unlock()
	return h
}

// completeLocked delivers the payload to the awaiting task. Returns
// whether it reached the task; false means a cancellation claimed the
// suspension first and the result fell away.
//
//lhws:nosuspend
func (op *ioOp) completeLocked(n int, err error) bool {
	return op.takeHandle().Complete(n, err)
}

// discardLocked is completeLocked for an attempt that observed its op
// canceled: the abort that kicked it owns the task's wake, so the
// completion only releases its claim instead of racing the abort —
// a race the attempt could win, surfacing a kicked attempt's payload
// to the task as a successful return (see ExternalHandle.Discard).
//
//lhws:nosuspend
func (op *ioOp) discardLocked(err error) {
	op.takeHandle().Discard(err)
}

// run executes one attempt of the op on the calling bridge. Dials never
// reach here: enqueue routes them to dedicated goroutines.
func (op *ioOp) run(d *dispatcher) {
	switch op.kind {
	case opRead:
		op.runRead(d)
	case opWrite:
		op.runWrite(d)
	case opAccept:
		op.runAccept(d)
	}
}

// startAttempt arms the slice deadline for one attempt under op.mu.
// Returning false means the op was canceled: the caller completes it
// without touching the socket. The mutex closes the kick race: either
// the abort sees this attempt's deadline already armed and overrides it
// with the past kick, or this attempt sees canceled already set.
func (op *ioOp) startAttempt(arm func(time.Time) error) bool {
	op.mu.Lock()
	if op.canceled {
		op.mu.Unlock()
		return false
	}
	arm(time.Now().Add(pollSlice))
	op.mu.Unlock()
	return true
}

// retryOrComplete routes a no-progress timeout: park on the readiness
// notifier (epoll builds), rotate to the back of the queue, or — if the
// op was canceled mid-attempt — complete as kicked. Returns true if the
// attempt was rerouted and the bridge should not complete it.
func (op *ioOp) retryOrComplete(d *dispatcher, parkFd parkable) bool {
	op.mu.Lock()
	canceled := op.canceled
	op.mu.Unlock()
	if canceled {
		return false
	}
	if d.notify != nil && parkFd != nil && d.notify.park(op, parkFd) {
		return true
	}
	d.enqueue(op)
	return true
}

func (op *ioOp) runRead(d *dispatcher) {
	cn := op.cn
	nc := cn.nc
	if !op.startAttempt(nc.SetReadDeadline) {
		op.discardLocked(errOpCanceled)
		d.putOp(op)
		return
	}
	// Bytes salvaged from a canceled predecessor take priority over the
	// socket: they were already consumed off it, so the fd may never
	// signal readiness for them again. Checked after startAttempt so a
	// canceled op cannot drain bytes meant for its successor (and if a
	// cancel lands between the two, the claim-loss re-stash below puts
	// them back).
	if n := cn.takePending(op.buf); n > 0 {
		if !op.completeLocked(n, nil) {
			cn.stashUnread(op.buf[:n])
		}
		d.putOp(op)
		return
	}
	n, err := nc.Read(op.buf)
	if n == 0 && isTimeout(err) && op.retryOrComplete(d, cn.sc) {
		return
	}
	if n > 0 && isTimeout(err) {
		// Data arrived within the slice: a timeout alongside progress is
		// not an error for the caller.
		err = nil
	}
	op.mu.Lock()
	canceled := op.canceled
	op.mu.Unlock()
	if canceled {
		// The attempt was kicked; the abort owns the task's wake. Bytes
		// consumed in the kick window are already off the socket: stash
		// them for the conn's next read instead of silently
		// desynchronizing the stream.
		if n > 0 {
			cn.stashUnread(op.buf[:n])
		}
		op.discardLocked(err)
		d.putOp(op)
		return
	}
	if !op.completeLocked(n, err) && n > 0 {
		// A cancel landed between the check above and the claim: same
		// salvage as the kicked path.
		cn.stashUnread(op.buf[:n])
	}
	d.putOp(op)
}

func (op *ioOp) runWrite(d *dispatcher) {
	nc := op.cn.nc
	if !op.startAttempt(nc.SetWriteDeadline) {
		op.discardLocked(errOpCanceled)
		d.putOp(op)
		return
	}
	n, err := nc.Write(op.buf[op.off:])
	op.off += n
	if op.off < len(op.buf) && isTimeout(err) && op.retryOrComplete(d, op.cn.sc) {
		return
	}
	if op.off == len(op.buf) && isTimeout(err) {
		err = nil
	}
	op.mu.Lock()
	canceled := op.canceled
	op.mu.Unlock()
	if canceled {
		// Kicked: the abort owns the wake. Bytes already on the wire stay
		// there — the unwinding task never reads the progress count.
		op.discardLocked(err)
		d.putOp(op)
		return
	}
	op.completeLocked(op.off, err)
	d.putOp(op)
}

func (op *ioOp) runAccept(d *dispatcher) {
	arm := func(t time.Time) error { return nil }
	if dl, ok := op.ln.nl.(deadliner); ok {
		arm = dl.SetDeadline
	}
	if !op.startAttempt(arm) {
		op.discardLocked(errOpCanceled)
		return
	}
	nc, err := op.ln.nl.Accept()
	if err != nil && nc == nil && isTimeout(err) && op.retryOrComplete(d, op.ln.sc) {
		return
	}
	if nc != nil {
		op.deliverResult(nc)
		err = nil
	}
	op.mu.Lock()
	canceled := op.canceled
	op.mu.Unlock()
	if canceled {
		// Kicked: the abort owns the wake; an accepted conn was already
		// routed through deliverResult's abandoned handoff (closed by
		// whichever side saw it last), so nothing leaks.
		op.discardLocked(err)
		return
	}
	op.completeLocked(0, err)
}

func (op *ioOp) runDial(d *dispatcher) {
	// Runs on its own goroutine (see enqueue), never a pooled bridge:
	// DialContext holds the goroutine until the connection (or
	// cancellation via the context) resolves, with no rotation slice.
	ctx, cancel := context.WithCancel(context.Background())
	op.mu.Lock()
	if op.canceled {
		op.mu.Unlock()
		cancel()
		op.discardLocked(errOpCanceled)
		return
	}
	op.ctxCancel = cancel
	op.mu.Unlock()
	var dialer net.Dialer
	nc, err := dialer.DialContext(ctx, op.dialNet, op.dialAddr)
	cancel()
	if nc != nil {
		op.deliverResult(nc)
		err = nil
	}
	op.mu.Lock()
	canceled := op.canceled
	op.mu.Unlock()
	if canceled {
		op.discardLocked(err)
		return
	}
	op.completeLocked(0, err)
}

// deliverResult hands an accepted/dialed connection toward the awaiting
// task, or closes it if a cancellation abandoned the op first — exactly
// one side observes every connection, so none leaks.
//
//lhws:nosuspend
func (op *ioOp) deliverResult(nc net.Conn) {
	op.resMu.Lock()
	if op.abandoned {
		op.resMu.Unlock()
		nc.Close()
		return
	}
	op.res = nc
	op.resMu.Unlock()
}

// takeResult is the task-side half of the handoff, after a normal
// (non-unwinding) await return.
func (op *ioOp) takeResult() net.Conn {
	op.resMu.Lock()
	nc := op.res
	op.res = nil
	op.resMu.Unlock()
	return nc
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
