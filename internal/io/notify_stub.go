//go:build !linux || !lhwsepoll

package io

// newNotifier returns nil in default builds: not-ready operations rotate
// through the bridge queue on short deadline slices (see dispatch.go).
// Build with -tags lhwsepoll on Linux for true readiness parking.
func newNotifier(d *dispatcher) notifier { return nil }
