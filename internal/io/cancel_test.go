package io

import (
	"errors"
	"net"
	"testing"
	"time"

	"lhws/internal/runtime"
)

// neverReadyPeer opens a raw listening socket whose accepted connection
// never sends a byte: the task-side read against it can only finish via
// cancellation or the watchdog. The returned cleanup closes both ends.
func neverReadyPeer(t *testing.T) (addr string, cleanup func()) {
	t.Helper()
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("peer listen: %v", err)
	}
	var held net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := nl.Accept()
		if err == nil {
			held = c // hold open so the task side sees silence, not EOF
		}
	}()
	return nl.Addr().String(), func() {
		nl.Close()
		<-done
		if held != nil {
			held.Close()
		}
	}
}

// TestReadCancelPromptUnwind: a deadline on a read that will never be
// ready must unwind the task within the kick latency, not after a full
// rotation or watchdog interval. The whole run finishing fast is the
// assertion that cancellation interrupts the in-flight syscall.
func TestReadCancelPromptUnwind(t *testing.T) {
	addr, cleanup := neverReadyPeer(t)
	defer cleanup()
	start := time.Now()
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			cc, cancel := c.WithDeadline(50 * time.Millisecond)
			defer cancel()
			fut := cc.Spawn(func(child *runtime.Ctx) {
				cn, derr := Dial(child, "tcp", addr)
				if derr != nil {
					t.Errorf("dial: %v", derr)
					return
				}
				defer cn.Close()
				cn.Read(child, make([]byte, 1)) // unwinds here
				t.Error("read returned on a silent conn without cancellation")
			})
			if werr := fut.AwaitErr(c); !errors.Is(werr, runtime.ErrDeadline) {
				t.Errorf("AwaitErr = %v, want ErrDeadline", werr)
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("canceled read took %v to unwind; kick is not prompt", el)
	}
}

// TestAcceptCancel: same promptness contract for a pending Accept with
// no connection ever arriving.
func TestAcceptCancel(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			l, lerr := Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("listen: %v", lerr)
				return
			}
			defer l.Close()
			cc, cancel := c.WithDeadline(50 * time.Millisecond)
			defer cancel()
			fut := cc.Spawn(func(child *runtime.Ctx) {
				l.Accept(child) // unwinds here
				t.Error("accept returned without a connection or cancellation")
			})
			if werr := fut.AwaitErr(c); !errors.Is(werr, runtime.ErrDeadline) {
				t.Errorf("AwaitErr = %v, want ErrDeadline", werr)
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestCancelThenReuse pins conn hygiene after a canceled operation: the
// kick poisons only the canceled attempt (every attempt re-arms its own
// slice deadline), so the same Conn must work normally from a live
// scope afterwards.
func TestCancelThenReuse(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			l, lerr := Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("listen: %v", lerr)
				return
			}
			srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, 4) })
			cn, derr := Dial(c, "tcp", l.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}

			// Round 1: read with nothing written — the deadline unwinds it.
			cc, cancel := c.WithDeadline(50 * time.Millisecond)
			fut := cc.Spawn(func(child *runtime.Ctx) {
				cn.Read(child, make([]byte, 4))
				t.Error("read on idle echo conn returned without data")
			})
			if werr := fut.AwaitErr(c); !errors.Is(werr, runtime.ErrDeadline) {
				t.Errorf("AwaitErr = %v, want ErrDeadline", werr)
			}
			cancel()

			// Round 2: the conn still works from the parent scope.
			if _, werr := cn.Write(c, []byte("ping")); werr != nil {
				t.Errorf("post-cancel write: %v", werr)
			}
			in := make([]byte, 4)
			if rerr := readFull(c, cn, in); rerr != nil {
				t.Errorf("post-cancel read: %v", rerr)
			} else if string(in) != "ping" {
				t.Errorf("post-cancel echo = %q, want %q", in, "ping")
			}

			cn.Close()
			l.Close()
			srv.Await(c)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestNeverReadyFDStall is the watchdog classification gate: a read that
// can never complete (and is under no deadline) must surface as a
// *StallError whose report names the io-read site with KindFD — the
// diagnostic that distinguishes "stuck on a socket" from stuck timers,
// channels, or futures.
func TestNeverReadyFDStall(t *testing.T) {
	addr, cleanup := neverReadyPeer(t)
	defer cleanup()
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding,
		StallTimeout: 150 * time.Millisecond, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			cn, derr := Dial(c, "tcp", addr)
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			defer cn.Close()
			cn.Read(c, make([]byte, 1)) // stalls; the watchdog aborts the run
		})
	var se *runtime.StallError
	if !errors.As(err, &se) {
		t.Fatalf("Run error = %v, want *StallError", err)
	}
	found := false
	for _, w := range se.Waits {
		if w.Site == "io-read" && w.Kind == runtime.KindFD {
			found = true
		}
	}
	if !found {
		t.Fatalf("stall report lacks the io-read/KindFD wait: %v", se)
	}
}
