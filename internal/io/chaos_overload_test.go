package io

import (
	"errors"
	goruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"lhws/internal/admit"
	"lhws/internal/bufpool"
	"lhws/internal/faultpoint"
	"lhws/internal/runtime"
)

// The overload chaos scenarios extend the io suite from fault tolerance
// to overload robustness: instead of asking "does a delayed completion
// still arrive", they ask "does the server path stay live, leak-free,
// and typed when offered more work than it can serve". Each scenario
// layers faultpoint injection (delayed completions, inflated steals) on
// top of a burst- or poison-shaped load against the full overload stack
// — admit.Controller intake, accept-gate backpressure, per-request
// targets, ShedBlownTargets steal gating, and a graceful drain — and
// demands exact accounting: every request ends in exactly one of
// served/rejected/shed, stragglers die with typed errors, and no task
// goroutine outlives the run.

// ioWaitGoroutines polls until the goroutine count returns to the
// pre-run baseline (plus a cushion for runtime housekeeping).
func ioWaitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		goruntime.GC()
		n := goruntime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:goruntime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d running, want <= %d\n%s", n, want, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosOverloadBurst slams a gated server with a one-instant burst
// of arrivals while I/O completions are randomly delayed, with one
// request deliberately wedged on a channel that never delivers. The
// admission gate paces intake through the burst; the drain at the end
// must cancel the wedged straggler with a typed error and account for
// every request exactly once.
func TestChaosOverloadBurst(t *testing.T) {
	const clients = 23 // plus one wedged straggler
	for _, seed := range ioChaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.PollComplete,
			faultpoint.Rule{Action: faultpoint.Delay, Rate: 0.3, Delay: 2 * time.Millisecond})
		base := goruntime.NumGoroutine()
		var served, rejected, shed, other atomic.Int64
		var stragglerTyped atomic.Bool
		cfg := ioChaosConfig(seed, inj)
		cfg.ShedBlownTargets = true
		st, err := runtime.Run(cfg, func(c *runtime.Ctx) {
			l, lerr := Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("seed %d: listen: %v", seed, lerr)
				return
			}
			addr := l.Addr().String()
			ctl := admit.New(admit.Config{MaxInflight: 4})
			l.SetGate(ctl)
			wedge := runtime.NewChan[int](0)    // never sent on
			admitted := runtime.NewChan[int](1) // 'z' admission handshake

			srv := c.Spawn(func(cc *runtime.Ctx) {
				for {
					cn, aerr := l.Accept(cc)
					if aerr != nil {
						return // closed or draining
					}
					cc.Spawn(func(hc *runtime.Ctx) {
						defer cn.Close()
						var req [1]byte
						if rerr := readFull(hc, cn, req[:]); rerr != nil {
							return
						}
						tk, aerr := ctl.Admit(hc)
						if aerr != nil {
							cn.Write(hc, []byte{'r'})
							return
						}
						defer tk.Done()
						rc, cancel := hc.WithTarget(time.Second)
						defer cancel()
						tk.Bind(cancel)
						var fut *runtime.Future
						if req[0] == 'z' {
							// Ack admission so the test can order the burst
							// strictly after the straggler holds its credit.
							if _, werr := cn.Write(hc, []byte{'a'}); werr != nil {
								return
							}
							fut = rc.Spawn(func(sc *runtime.Ctx) {
								wedge.Recv(sc) // wedged until the drain cancels rc
							})
						} else {
							fut = rc.Spawn(func(sc *runtime.Ctx) {
								sc.Latency(2 * time.Millisecond)
							})
						}
						if werr := fut.AwaitErr(hc); werr != nil {
							if req[0] == 'z' && errors.Is(werr, runtime.ErrCanceled) {
								stragglerTyped.Store(true)
							}
							cn.Write(hc, []byte{'s'})
							return
						}
						cn.Write(hc, []byte{'o'})
					})
				}
			})

			request := func(cc *runtime.Ctx, kind byte) {
				cn, derr := Dial(cc, "tcp", addr)
				if derr != nil {
					other.Add(1)
					return
				}
				defer cn.Close()
				var reply [1]byte
				if _, werr := cn.Write(cc, []byte{kind}); werr != nil {
					other.Add(1)
					return
				}
				if kind == 'z' {
					if rerr := readFull(cc, cn, reply[:]); rerr != nil || reply[0] != 'a' {
						other.Add(1)
						return
					}
					admitted.Send(cc, 1)
				}
				if rerr := readFull(cc, cn, reply[:]); rerr != nil {
					other.Add(1)
					return
				}
				switch reply[0] {
				case 'o':
					served.Add(1)
				case 'r':
					rejected.Add(1)
				case 's':
					shed.Add(1)
				default:
					other.Add(1)
				}
			}

			straggler := c.Spawn(func(cc *runtime.Ctx) { request(cc, 'z') })
			admitted.Recv(c) // straggler holds its credit; now burst
			burst := make([]*runtime.Future, clients)
			for i := range burst {
				burst[i] = c.Spawn(func(cc *runtime.Ctx) { request(cc, 's') })
			}
			for _, f := range burst {
				f.Await(c)
			}
			// The burst is done; the wedged request still holds a credit.
			// The drain must cancel it through its bound scope.
			rep := ctl.Drain(c, 100*time.Millisecond)
			straggler.Await(c)
			if rep.Canceled < 1 {
				t.Errorf("seed %d: drain canceled %d stragglers, want >= 1", seed, rep.Canceled)
			}
			if rep.Remaining != 0 {
				t.Errorf("seed %d: drain left %d in flight", seed, rep.Remaining)
			}
			if ctl.Inflight() != 0 {
				t.Errorf("seed %d: inflight %d after drain", seed, ctl.Inflight())
			}
			l.Close()
			srv.Await(c)
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v (faults: %s)", seed, err, inj.Summary())
		}
		if st.Stalled {
			t.Fatalf("seed %d: watchdog fired during overload burst", seed)
		}
		total := served.Load() + rejected.Load() + shed.Load() + other.Load()
		if total != clients+1 || other.Load() != 0 {
			t.Fatalf("seed %d: accounting served=%d rejected=%d shed=%d other=%d, want %d total and 0 other",
				seed, served.Load(), rejected.Load(), shed.Load(), other.Load(), clients+1)
		}
		if shed.Load() < 1 {
			t.Fatalf("seed %d: wedged straggler was not shed", seed)
		}
		if !stragglerTyped.Load() {
			t.Fatalf("seed %d: straggler did not unwind with ErrCanceled", seed)
		}
		if inj.Fired(faultpoint.PollComplete) == 0 {
			t.Fatalf("seed %d: scenario never fired a PollComplete fault", seed)
		}
		ioWaitGoroutines(t, base+3)
	}
}

// TestChaosOverloadPoison mixes well-behaved small requests with huge
// "poison" requests whose subtrees can never meet their (already blown)
// targets and never finish on their own. ShedBlownTargets must cancel
// every poison subtree with ErrTargetMissed — returning the workers to
// the small requests, which must all be served — rather than letting
// the poison monopolize the runtime.
//
// The poison requests are also physically huge: each carries a 64 KiB
// body that the client stages in a pooled buffer and sends as one
// vectored header+body write, and the server drains through the pooled
// ReadBuf path before the subtree even starts. Running the data plane's
// pooled/vectored machinery under fault injection (duplicated and
// delayed completions) is the point — the byte-sum check below fails if
// a pooled buffer is recycled while its bytes are still in flight.
func TestChaosOverloadPoison(t *testing.T) {
	const (
		smalls  = 8
		poisons = 3

		poisonBody = 64 << 10
	)
	// Byte-sum of the 0,1,2,... pattern the client stages per request.
	var wantBodySum int64
	for i := 0; i < poisonBody; i++ {
		wantBodySum += int64(byte(i))
	}
	for _, seed := range ioChaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.PollComplete,
			faultpoint.Rule{Action: faultpoint.Dup, Rate: 0.3, Delay: time.Millisecond})
		base := goruntime.NumGoroutine()
		var served, shed, other atomic.Int64
		var poisonTyped, poisonBodiesOK atomic.Int64
		cfg := ioChaosConfig(seed, inj)
		cfg.ShedBlownTargets = true
		st, err := runtime.Run(cfg, func(c *runtime.Ctx) {
			l, lerr := Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("seed %d: listen: %v", seed, lerr)
				return
			}
			addr := l.Addr().String()
			srv := c.Spawn(func(cc *runtime.Ctx) {
				for {
					cn, aerr := l.Accept(cc)
					if aerr != nil {
						return
					}
					cc.Spawn(func(hc *runtime.Ctx) {
						defer cn.Close()
						var req [1]byte
						if rerr := readFull(hc, cn, req[:]); rerr != nil {
							return
						}
						if req[0] == 'h' {
							// Drain the huge body through the pooled read
							// path first: every chunk arrives in a pool
							// buffer, is summed, and goes straight back.
							var bodySum int64
							for got := 0; got < poisonBody; {
								pb, rerr := cn.ReadBuf(hc, poisonBody-got)
								if rerr != nil {
									return
								}
								for _, b := range pb.Bytes() {
									bodySum += int64(b)
								}
								got += pb.Len()
								pb.Release()
							}
							if bodySum == wantBodySum {
								poisonBodiesOK.Add(1)
							}
							// Poison: a wide subtree under an already-blown
							// target whose tasks spin on suspensions forever.
							// Only the steal gate can end it.
							rc, cancel := hc.WithTarget(time.Nanosecond)
							defer cancel()
							futs := make([]*runtime.Future, 8)
							for i := range futs {
								futs[i] = rc.Spawn(func(sc *runtime.Ctx) {
									for {
										sc.Latency(500 * time.Microsecond)
									}
								})
							}
							var werr error
							for _, f := range futs {
								if e := f.AwaitErr(hc); e != nil {
									werr = e
								}
							}
							if errors.Is(werr, runtime.ErrTargetMissed) {
								poisonTyped.Add(1)
							}
							cn.Write(hc, []byte{'s'})
							return
						}
						fut := hc.Spawn(func(sc *runtime.Ctx) {
							sc.Latency(2 * time.Millisecond)
						})
						fut.Await(hc)
						cn.Write(hc, []byte{'o'})
					})
				}
			})

			request := func(cc *runtime.Ctx, kind byte) {
				cn, derr := Dial(cc, "tcp", addr)
				if derr != nil {
					other.Add(1)
					return
				}
				defer cn.Close()
				var reply [1]byte
				if kind == 'h' {
					// Stage the huge body in a pooled buffer and ship
					// header+body as one vectored write.
					pb := bufpool.Get(poisonBody)
					body := pb.Bytes()
					for i := range body {
						body[i] = byte(i)
					}
					cn.QueueWrite([]byte{kind})
					cn.QueueWrite(body)
					_, werr := cn.Flush(cc)
					pb.Release()
					if werr != nil {
						other.Add(1)
						return
					}
				} else if _, werr := cn.Write(cc, []byte{kind}); werr != nil {
					other.Add(1)
					return
				}
				if rerr := readFull(cc, cn, reply[:]); rerr != nil {
					other.Add(1)
					return
				}
				switch reply[0] {
				case 'o':
					served.Add(1)
				case 's':
					shed.Add(1)
				default:
					other.Add(1)
				}
			}

			futs := make([]*runtime.Future, 0, smalls+poisons)
			for i := 0; i < poisons; i++ {
				futs = append(futs, c.Spawn(func(cc *runtime.Ctx) { request(cc, 'h') }))
			}
			for i := 0; i < smalls; i++ {
				futs = append(futs, c.Spawn(func(cc *runtime.Ctx) { request(cc, 's') }))
			}
			for _, f := range futs {
				f.Await(c)
			}
			l.Close()
			srv.Await(c)
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v (faults: %s)", seed, err, inj.Summary())
		}
		if st.Stalled {
			t.Fatalf("seed %d: watchdog fired during poison overload", seed)
		}
		if served.Load() != smalls || other.Load() != 0 {
			t.Fatalf("seed %d: served=%d shed=%d other=%d, want %d small served and 0 other",
				seed, served.Load(), shed.Load(), other.Load(), smalls)
		}
		if shed.Load() != poisons {
			t.Fatalf("seed %d: shed=%d, want all %d poisons shed", seed, shed.Load(), poisons)
		}
		if poisonTyped.Load() != poisons {
			t.Fatalf("seed %d: %d/%d poison subtrees unwound with ErrTargetMissed",
				seed, poisonTyped.Load(), poisons)
		}
		if poisonBodiesOK.Load() != poisons {
			t.Fatalf("seed %d: %d/%d pooled poison bodies arrived intact",
				seed, poisonBodiesOK.Load(), poisons)
		}
		if st.TargetCancels < 1 {
			t.Fatalf("seed %d: TargetCancels = %d, want >= 1", seed, st.TargetCancels)
		}
		ioWaitGoroutines(t, base+3)
	}
}

// TestChaosOverloadStealLatency inflates the cost of work distribution
// itself: most steal attempts stall for a few milliseconds before
// proceeding, as if the steal path were contended or the victim remote.
// The echo workload must still complete exactly — owners keep their own
// deques moving while thieves crawl — and the watchdog must stay quiet.
func TestChaosOverloadStealLatency(t *testing.T) {
	for _, seed := range ioChaosSeeds {
		inj := faultpoint.New(seed).
			Set(faultpoint.Steal,
				faultpoint.Rule{Action: faultpoint.Delay, Rate: 0.7, Delay: 2 * time.Millisecond}).
			Set(faultpoint.PollComplete,
				faultpoint.Rule{Action: faultpoint.Delay, Rate: 0.2, Delay: 2 * time.Millisecond})
		var got int
		st, err := runtime.Run(ioChaosConfig(seed, inj), func(c *runtime.Ctx) {
			got = ioChaosWorkload(t, c)
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v (faults: %s)", seed, err, inj.Summary())
		}
		if got != ioChaosWant {
			t.Fatalf("seed %d: byte sum = %d, want %d (faults: %s)",
				seed, got, ioChaosWant, inj.Summary())
		}
		if st.Stalled {
			t.Fatalf("seed %d: watchdog fired on inflated steal latency", seed)
		}
		if inj.Evaluated(faultpoint.Steal) == 0 {
			t.Fatalf("seed %d: scenario never evaluated the Steal fault point", seed)
		}
	}
}
