package io

import (
	"bytes"
	"testing"
	"time"

	"lhws/internal/faultpoint"
	"lhws/internal/runtime"
)

// The io chaos scenarios replay the runtime chaos suite's discipline
// (seed matrix, bounded runs, checkable result) against real sockets
// with faults injected at the PollComplete point — the delivery of an
// external I/O completion to a suspended task. Delay and Dup are
// recoverable by construction (the completion still arrives, once
// effective), so these scenarios demand full correctness, exercising
// the wheel-deferred delivery and stale-epoch-discard paths under
// genuine socket timing instead of the simulated waits the runtime
// suite uses.

var ioChaosSeeds = []uint64{1, 7, 42, 99, 4242}

const (
	ioChaosClients = 6
	ioChaosRounds  = 4
	ioChaosFrame   = 8
)

// ioChaosWant is the checkable result: every client echoes rounds
// frames of byte value id+1, so the byte sum over all echoed frames is
// fixed.
const ioChaosWant = ioChaosFrame * ioChaosRounds *
	(ioChaosClients * (ioChaosClients + 1) / 2)

// ioChaosWorkload runs the echo shape and returns the sum of all bytes
// the clients read back.
func ioChaosWorkload(t *testing.T, c *runtime.Ctx) int {
	l, err := Listen(c, "tcp", "127.0.0.1:0")
	if err != nil {
		t.Errorf("listen: %v", err)
		return -1
	}
	addr := l.Addr().String()
	srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, ioChaosFrame) })
	futs := make([]*runtime.Future, ioChaosClients)
	sums := make([]int, ioChaosClients)
	for i := 0; i < ioChaosClients; i++ {
		i := i
		futs[i] = c.Spawn(func(cc *runtime.Ctx) {
			cn, derr := Dial(cc, "tcp", addr)
			if derr != nil {
				t.Errorf("client %d dial: %v", i, derr)
				return
			}
			defer cn.Close()
			out := bytes.Repeat([]byte{byte(i + 1)}, ioChaosFrame)
			in := make([]byte, ioChaosFrame)
			for r := 0; r < ioChaosRounds; r++ {
				if _, werr := cn.Write(cc, out); werr != nil {
					t.Errorf("client %d write: %v", i, werr)
					return
				}
				if rerr := readFull(cc, cn, in); rerr != nil {
					t.Errorf("client %d read: %v", i, rerr)
					return
				}
				if !bytes.Equal(in, out) {
					t.Errorf("client %d round %d: echo mismatch", i, r)
					return
				}
				for _, b := range in {
					sums[i] += int(b)
				}
			}
		})
	}
	for _, f := range futs {
		f.Await(c)
	}
	l.Close()
	srv.Await(c)
	total := 0
	for _, s := range sums {
		total += s
	}
	return total
}

// ioChaosConfig bounds every scenario. The stall timeout is looser than
// the runtime suite's 300ms: injected completion delays stack on real
// socket latency, and a legitimately pending Accept carries no pending
// wake, so the watchdog needs headroom above the injected jitter.
func ioChaosConfig(seed uint64, inj *faultpoint.Injector) runtime.Config {
	return runtime.Config{
		Workers:      4,
		Mode:         runtime.LatencyHiding,
		Seed:         seed,
		Deadline:     30 * time.Second,
		StallTimeout: 2 * time.Second,
		Faults:       inj,
	}
}

func ioMustBeCorrect(t *testing.T, seed uint64, inj *faultpoint.Injector) {
	t.Helper()
	var got int
	st, err := runtime.Run(ioChaosConfig(seed, inj), func(c *runtime.Ctx) {
		got = ioChaosWorkload(t, c)
	})
	if err != nil {
		t.Fatalf("seed %d: Run: %v (faults: %s)", seed, err, inj.Summary())
	}
	if got != ioChaosWant {
		t.Fatalf("seed %d: byte sum = %d, want %d (faults: %s)",
			seed, got, ioChaosWant, inj.Summary())
	}
	if st.Stalled {
		t.Fatalf("seed %d: watchdog fired on a recoverable fault (faults: %s)",
			seed, inj.Summary())
	}
	if inj.Fired(faultpoint.PollComplete) == 0 {
		t.Fatalf("seed %d: scenario never fired a PollComplete fault (evaluated %d)",
			seed, inj.Evaluated(faultpoint.PollComplete))
	}
}

// TestChaosIOPollDelay defers every I/O completion by a few
// milliseconds through the timer wheel: deliveries arrive late and out
// of order relative to the sockets' actual readiness, but nothing is
// lost, so the echo result must be exact.
func TestChaosIOPollDelay(t *testing.T) {
	for _, seed := range ioChaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.PollComplete,
			faultpoint.Rule{Action: faultpoint.Delay, Rate: 1.0, Delay: 3 * time.Millisecond})
		ioMustBeCorrect(t, seed, inj)
	}
}

// TestChaosIOPollDup delivers half of all I/O completions twice, the
// duplicate a beat later: the second delivery carries a stale epoch and
// must be discarded by the wake claim, never resuming a task that has
// already moved on to its next suspension.
func TestChaosIOPollDup(t *testing.T) {
	for _, seed := range ioChaosSeeds {
		inj := faultpoint.New(seed).Set(faultpoint.PollComplete,
			faultpoint.Rule{Action: faultpoint.Dup, Rate: 0.5, Delay: 2 * time.Millisecond})
		ioMustBeCorrect(t, seed, inj)
	}
}
