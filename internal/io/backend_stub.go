//go:build !linux || !lhwsepoll

package io

// newBackend selects the portable rotation backend in default builds:
// not-ready operations retry through the bridge queue on short deadline
// slices (see dispatch.go). Build with -tags lhwsepoll on Linux for the
// epoll readiness backend (backend_epoll.go).
func newBackend(d *dispatcher) backend { return rotateBackend{} }
