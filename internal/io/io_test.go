package io

import (
	"bytes"
	"fmt"
	"os"
	goruntime "runtime"
	"testing"
	"time"

	"lhws/internal/runtime"
)

// TestMain raises GOMAXPROCS as the runtime package's tests do: bridges,
// peers, and workers must genuinely interleave on single-core hosts.
func TestMain(m *testing.M) {
	if goruntime.GOMAXPROCS(0) < 4 {
		goruntime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

// readFull reads exactly len(p) bytes (Conn.Read, like net.Conn.Read,
// may return short).
func readFull(c *runtime.Ctx, cn *Conn, p []byte) error {
	for off := 0; off < len(p); {
		n, err := cn.Read(c, p[off:])
		off += n
		if err != nil {
			return err
		}
	}
	return nil
}

// echoServe is the task-side echo server: accept until the listener
// closes, one handler task per connection, each echoing fixed-size
// frames until EOF.
func echoServe(c *runtime.Ctx, l *Listener, frame int) {
	for {
		cn, err := l.Accept(c)
		if err != nil {
			return
		}
		c.Spawn(func(cc *runtime.Ctx) {
			defer cn.Close()
			buf := make([]byte, frame)
			for {
				if err := readFull(cc, cn, buf); err != nil {
					return
				}
				if _, err := cn.Write(cc, buf); err != nil {
					return
				}
			}
		})
	}
}

// TestEchoLatencyHiding is the integration spine: a task-side echo
// server and C > P client tasks doing framed roundtrips over real TCP,
// everything suspending instead of blocking. With only 2 workers and 8
// concurrent clients plus server tasks, the test deadlocks in minutes if
// any operation ever holds a worker.
func TestEchoLatencyHiding(t *testing.T) {
	const frame, clients, rounds = 8, 8, 5
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			l, err := Listen(c, "tcp", "127.0.0.1:0")
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			addr := l.Addr().String()
			srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, frame) })
			futs := make([]*runtime.Future, clients)
			for i := 0; i < clients; i++ {
				id := byte(i)
				futs[i] = c.Spawn(func(cc *runtime.Ctx) {
					cn, err := Dial(cc, "tcp", addr)
					if err != nil {
						t.Errorf("dial: %v", err)
						return
					}
					defer cn.Close()
					out := bytes.Repeat([]byte{id}, frame)
					in := make([]byte, frame)
					for r := 0; r < rounds; r++ {
						if _, err := cn.Write(cc, out); err != nil {
							t.Errorf("client %d write: %v", id, err)
							return
						}
						if err := readFull(cc, cn, in); err != nil {
							t.Errorf("client %d read: %v", id, err)
							return
						}
						if !bytes.Equal(in, out) {
							t.Errorf("client %d: echo mismatch %v != %v", id, in, out)
							return
						}
					}
				})
			}
			for _, f := range futs {
				f.Await(c)
			}
			l.Close()
			srv.Await(c)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestEchoBlockingMode runs the same code in Blocking mode (the paper's
// baseline): correctness is identical, only the workers park. Client
// concurrency stays below P because in blocking mode every pending
// operation genuinely occupies a worker.
func TestEchoBlockingMode(t *testing.T) {
	const frame, rounds = 8, 5
	_, err := runtime.Run(runtime.Config{Workers: 4, Mode: runtime.Blocking, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			l, err := Listen(c, "tcp", "127.0.0.1:0")
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, frame) })
			cn, err := Dial(c, "tcp", l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			out := []byte("blkframe")
			in := make([]byte, frame)
			for r := 0; r < rounds; r++ {
				if _, err := cn.Write(c, out); err != nil {
					t.Errorf("write: %v", err)
					break
				}
				if err := readFull(c, cn, in); err != nil {
					t.Errorf("read: %v", err)
					break
				}
				if !bytes.Equal(in, out) {
					t.Errorf("echo mismatch %q != %q", in, out)
				}
			}
			cn.Close()
			l.Close()
			srv.Await(c)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestBridgePoolBounded pins the O(P)-not-O(C) property: 32 connections
// with pending reads must share the dispatcher's capped bridge pool, not
// take a goroutine each.
func TestBridgePoolBounded(t *testing.T) {
	const conns = 32
	var peak, cap_ int
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			l, err := Listen(c, "tcp", "127.0.0.1:0")
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, 1) })
			futs := make([]*runtime.Future, conns)
			for i := range futs {
				futs[i] = c.Spawn(func(cc *runtime.Ctx) {
					cn, err := Dial(cc, "tcp", l.Addr().String())
					if err != nil {
						t.Errorf("dial: %v", err)
						return
					}
					defer cn.Close()
					// Stagger so all reads are pending simultaneously before
					// any byte is echoed back.
					cc.Latency(5 * time.Millisecond)
					if _, err := cn.Write(cc, []byte{1}); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					one := make([]byte, 1)
					if err := readFull(cc, cn, one); err != nil {
						t.Errorf("read: %v", err)
					}
				})
			}
			for _, f := range futs {
				f.Await(c)
			}
			l.Close()
			srv.Await(c)
			d := dispFor(c)
			peak, cap_ = d.peakBridges(), d.cap
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if peak > cap_ {
		t.Fatalf("bridge peak %d exceeds cap %d", peak, cap_)
	}
	if cap_ >= conns {
		t.Fatalf("bridge cap %d not O(P) for %d conns (test misconfigured)", cap_, conns)
	}
}

// TestDialError: a dial to a dead port must surface the OS error, not
// hang or panic.
func TestDialError(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			// Grab a port and close it so nothing listens there.
			l, err := Listen(c, "tcp", "127.0.0.1:0")
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			addr := l.Addr().String()
			l.Close()
			if _, err := Dial(c, "tcp", addr); err == nil {
				t.Error("dial to closed port succeeded")
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestNoGoroutineLeak: the dispatcher's close is synchronous, so every
// bridge (and the epoll poller, when enabled) is gone when Run returns.
func TestNoGoroutineLeak(t *testing.T) {
	base := goruntime.NumGoroutine()
	for i := 0; i < 3; i++ {
		_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
			func(c *runtime.Ctx) {
				l, lerr := Listen(c, "tcp", "127.0.0.1:0")
				if lerr != nil {
					t.Errorf("listen: %v", lerr)
					return
				}
				srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, 4) })
				cn, derr := Dial(c, "tcp", l.Addr().String())
				if derr != nil {
					t.Errorf("dial: %v", derr)
					return
				}
				cn.Write(c, []byte{1, 2, 3, 4})
				buf := make([]byte, 4)
				readFull(c, cn, buf)
				cn.Close()
				l.Close()
				srv.Await(c)
			})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d -> %d\n%s", base, goruntime.NumGoroutine(),
		fmt.Sprintf("%s", buf[:n]))
}
