//go:build race

package io

// raceDetectorEnabled mirrors the stdlib's internal/race.Enabled: the
// race runtime allocates shadow state on paths that are allocation-free
// in normal builds, so the strict AllocsPerRun gates skip themselves
// under -race (the lenient echo budget still runs there).
const raceDetectorEnabled = true
