//go:build linux && lhwsepoll

package io

import (
	"sync"
	"syscall"
	"time"
)

// The epoll backend: instead of rotating not-ready operations through
// the bridge queue on deadline slices, a single poller goroutine parks
// them on an epoll instance and re-enqueues each op the moment its fd
// becomes ready. Bridges then attempt the op with data (or a
// connection) already waiting, so the attempt completes on its first
// slice.
//
// Both directions of the backend contract are batched. Submission: a
// bridge's parkBatch registers every not-ready op from its attempt
// round under ONE table-lock hold — the per-op work inside is just an
// epoll_ctl — and the post-registration cancel re-checks run after the
// lock drops. Completion: one epoll_wait sweep translates every fired
// fd back to its ops and hands the whole set to the dispatcher in ONE
// enqueueBatch call, so they take the queue lock once, get attempted
// back-to-back by bridges, and their task resumptions land in the same
// runtime drain (one pfor-tree deque item for the batch).
//
// Registrations are one-shot (EPOLLONESHOT): an op parks, its fd fires
// at most once, and the next park re-arms. The fd table maps fd to a
// pair of direction slots (a conn's reader and writer may both park on
// the same fd; registration unions their interests, and a fire for one
// direction re-arms the other). The table tolerates staleness —
// readiness delivery is spurious-tolerant by design (a falsely unparked
// op merely attempts, finds nothing, and parks again), so a stale slot
// can at worst cause one extra rotation, never a correctness failure.
// Cancellation does not need the poller at all: CancelExternal CASes
// the op out of its parked state and re-enqueues it directly (see
// ioOp.CancelExternal). Closing a socket is the one readiness event
// epoll will NOT deliver — the kernel silently drops a closed fd from
// the interest set — so Conn.Close/Listener.Close unpark their
// registered ops themselves (see unparkForClose). The close protocol
// leans on rc.Control running per park: once a conn's Close has
// returned, every subsequent Control errors, so a closed (possibly
// kernel-reused) fd can never be registered and clobber a live conn's
// table slot.
//
// One outstanding parked op per fd direction is assumed, which the
// Conn/Listener concurrency contract (one reader, one writer, one
// acceptor) guarantees.

// epollSlice is the epoll backend's attempt deadline. Far shorter than
// the rotation slice: here a timeout is not a retry penalty but the
// park threshold, and a parked op wakes the moment its fd fires — so
// the speculation window only needs to cover the "data already in the
// socket buffer" case, not mask rotation latency. Keeping it short also
// bounds the serialization a batched attempt round can suffer when
// several fresh (readiness-unknown) ops land in one batch.
const epollSlice = 500 * time.Microsecond

// epollBatchHint is how many queued ops a bridge grabs per round under
// this backend. Ops the poller enqueues are ready and complete on their
// first attempt, so a batch costs one queue-lock hold and one parkBatch
// instead of N; the worst case — a batch full of fresh not-ready ops,
// each blocking a full epollSlice before parking — stays bounded at
// hint*epollSlice = 4ms.
const epollBatchHint = 8

// newBackend starts the epoll poller. If epoll setup fails (exotic
// kernels, locked-down sandboxes) it falls back to rotation.
func newBackend(d *dispatcher) backend {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return rotateBackend{}
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return rotateBackend{}
	}
	n := &epollBackend{d: d, epfd: epfd, wakeR: pipe[0], wakeW: pipe[1], ops: make(map[int32]*fdEntry)}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(pipe[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pipe[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return rotateBackend{}
	}
	n.wg.Add(1)
	go n.poll()
	return n
}

type epollBackend struct {
	d     *dispatcher
	epfd  int
	wakeR int // shutdown pipe, read end (registered in the epoll set)
	wakeW int
	wg    sync.WaitGroup

	mu     sync.Mutex
	ops    map[int32]*fdEntry
	closed bool
}

func (n *epollBackend) name() string                { return "epoll" }
func (n *epollBackend) batchHint() int              { return epollBatchHint }
func (n *epollBackend) attemptSlice() time.Duration { return epollSlice }

// fdEntry holds the at-most-two ops parked on one fd: the read-interest
// slot (reads and accepts) and the write-interest slot.
type fdEntry struct {
	rd *ioOp
	wr *ioOp
}

const readinessIn = syscall.EPOLLIN | syscall.EPOLLRDHUP

// interest computes the union epoll event mask for the entry's live
// slots, always one-shot.
func (e *fdEntry) interest() uint32 {
	ev := uint32(syscall.EPOLLONESHOT)
	if e.rd != nil {
		ev |= readinessIn
	}
	if e.wr != nil {
		ev |= syscall.EPOLLOUT
	}
	return ev
}

// parkBatch registers every req's fd for one readiness notification,
// amortizing the table lock over the batch. Ops whose registration
// failed (raw fd gone, backend shutting down) — and ops a concurrent
// kick beat into the epoll set — are returned in rotate for the caller
// to re-enqueue, per the backend contract.
func (n *epollBackend) parkBatch(reqs []parkReq, rotate []*ioOp) []*ioOp {
	// Phase 1, under one table-lock hold: claim and register each op.
	// rc.Control still runs per op (that per-park probe is the close
	// protocol: Control on a conn whose Close has returned always
	// errors, so a closed/reused fd is never registered), but the lock,
	// not being re-taken per op, is paid once for the batch.
	n.mu.Lock()
	for i := range reqs {
		r := &reqs[i]
		op := r.op
		op.parked.Store(true)
		r.registered = false
		if n.closed {
			continue
		}
		// r.kind, not op.kind: the Store above published the op, so a
		// concurrent kick may already have stolen it, completed it, and
		// recycled it into a new life that is rewriting its fields. From
		// here on the backend touches only the req's snapshots, op.parked
		// (atomic), and op.mu-protected flags (ordered against recycling
		// by putOp's locked reset).
		r.rc.Control(func(fd uintptr) {
			e := n.ops[int32(fd)]
			if e == nil {
				e = &fdEntry{}
				n.ops[int32(fd)] = e
			}
			if r.kind == opWrite || r.kind == opWritev {
				e.wr = op
			} else {
				e.rd = op
			}
			if n.arm(int32(fd), e) != nil {
				// Roll the slot back so a later park on the sibling
				// direction does not resurrect interest in this op.
				if r.kind == opWrite || r.kind == opWritev {
					e.wr = nil
				} else {
					e.rd = nil
				}
				if e.rd == nil && e.wr == nil {
					delete(n.ops, int32(fd))
				}
				return
			}
			r.registered = true
			r.fd = int32(fd)
		})
	}
	n.mu.Unlock()

	// Phase 2, outside the table lock: settle each op's claim.
	for i := range reqs {
		r := &reqs[i]
		op := r.op
		if !r.registered {
			// Registration failed: undo the park claim. If the undo CAS
			// fails, a concurrent cancel or close already stole the claim
			// AND re-enqueued the op — it is no longer ours, and rotating
			// it would make a second bridge race the first into
			// use-after-recycle. Leave it alone: rerouted either way.
			if op.parked.CompareAndSwap(true, false) {
				rotate = append(rotate, op)
			}
			continue
		}
		// Close the kick-vs-park window: a cancel, a per-op deadline
		// expiry, or a predecessor's unread-stash kick (Conn.stashUnread)
		// that ran after the attempt's checks but before the Store above
		// found parked==false, so its unpark CAS missed and the op would
		// sit in the epoll set waiting on an fd that may never fire.
		// Re-check and unpark through the same claim protocol (exactly
		// one of this CAS and any concurrent close's CAS wins, so the op
		// is enqueued once).
		// kind and cn come from the req's pre-publication snapshots (see
		// parkReq); the mu-protected flags are safe to read even off a
		// recycled shell because putOp resets them under the same lock —
		// a stale read then sees the new life's (false) flags and the
		// stale parked CAS below simply loses, which is the "taken by a
		// concurrent cancel" contract case.
		op.mu.Lock()
		kicked := op.canceled || op.timedOut ||
			(r.kind == opRead && r.cn != nil && r.cn.hasPending())
		op.mu.Unlock()
		if kicked && op.parked.CompareAndSwap(true, false) {
			n.drop(r.fd, op)
			rotate = append(rotate, op)
		}
	}
	return rotate
}

// drop clears op's slot in the fd table after an unpark. Staleness is
// tolerated by design, but there is no reason to leave a pointer to an
// op that is about to complete and be recycled.
func (n *epollBackend) drop(fd int32, op *ioOp) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := n.ops[fd]
	if e == nil {
		return
	}
	if e.rd == op {
		e.rd = nil
	}
	if e.wr == op {
		e.wr = nil
	}
	if e.rd == nil && e.wr == nil {
		delete(n.ops, fd)
	}
}

// arm (re)registers fd with the union interest of e's slots. Caller
// holds n.mu.
func (n *epollBackend) arm(fd int32, e *fdEntry) error {
	ev := syscall.EpollEvent{Events: e.interest(), Fd: fd}
	if err := syscall.EpollCtl(n.epfd, syscall.EPOLL_CTL_MOD, int(fd), &ev); err != nil {
		return syscall.EpollCtl(n.epfd, syscall.EPOLL_CTL_ADD, int(fd), &ev)
	}
	return nil
}

// poll is the single readiness goroutine: wait, translate fds back to
// ops, unpark, and deliver the whole sweep to the dispatcher as one
// batch — one queue-lock hold, and the resumed tasks ride one runtime
// drain.
//
//lhws:nosuspend
func (n *epollBackend) poll() {
	defer n.wg.Done()
	events := make([]syscall.EpollEvent, 128)
	var ready []*ioOp
	for {
		nev, err := syscall.EpollWait(n.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		ready = ready[:0]
		quit := false
		n.mu.Lock()
		for i := 0; i < nev; i++ {
			fd := events[i].Fd
			if int(fd) == n.wakeR {
				quit = true
				continue
			}
			got := events[i].Events
			// Errors and hangups wake both directions.
			errish := got&(syscall.EPOLLERR|syscall.EPOLLHUP) != 0
			var rd, wr *ioOp
			if e := n.ops[fd]; e != nil {
				if got&readinessIn != 0 || errish {
					rd, e.rd = e.rd, nil
				}
				if got&syscall.EPOLLOUT != 0 || errish {
					wr, e.wr = e.wr, nil
				}
				if e.rd == nil && e.wr == nil {
					delete(n.ops, fd)
				} else {
					// EPOLLONESHOT disarmed the whole fd; re-arm for the
					// direction still parked. On failure fall back to the
					// queue so the survivor is not stranded.
					if n.arm(fd, e) != nil {
						if e.rd != nil {
							rd = e.rd
						} else {
							wr = e.wr
						}
						delete(n.ops, fd)
					}
				}
			}
			if rd != nil && rd.parked.CompareAndSwap(true, false) {
				ready = append(ready, rd)
			}
			if wr != nil && wr.parked.CompareAndSwap(true, false) {
				ready = append(ready, wr)
			}
		}
		n.mu.Unlock()
		if len(ready) > 0 {
			n.d.enqueueBatch(ready)
		}
		if quit {
			return
		}
	}
}

// close shuts the poller down and releases the epoll fd. Parked ops
// need no draining here: the runtime cancels every task before the
// dispatcher closes, and cancellation unparks directly.
func (n *epollBackend) close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	syscall.Write(n.wakeW, []byte{1})
	n.wg.Wait()
	syscall.Close(n.epfd)
	syscall.Close(n.wakeR)
	syscall.Close(n.wakeW)
}
