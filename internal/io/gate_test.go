package io

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"lhws/internal/admit"
	"lhws/internal/runtime"
)

// fakeGate counts consultations and optionally fails intake.
type fakeGate struct {
	calls atomic.Int32
	err   error
}

func (g *fakeGate) AcquireAccept(*runtime.Ctx) error {
	g.calls.Add(1)
	return g.err
}

// TestAcceptConsultsGate checks that an installed gate is consulted per
// Accept and that its typed refusal surfaces as Accept's error without
// touching the socket.
func TestAcceptConsultsGate(t *testing.T) {
	sentinel := errors.New("intake closed")
	_, err := runtime.Run(runtime.Config{Workers: 2, Deadline: 30 * time.Second}, func(c *runtime.Ctx) {
		l, err := Listen(c, "tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		defer l.Close()
		g := &fakeGate{}
		l.SetGate(g)

		// Admit one connection through a permissive gate.
		done := make(chan struct{})
		go func() {
			defer close(done)
			nc, err := net.Dial("tcp", l.Addr().String())
			if err == nil {
				nc.Close()
			}
		}()
		conn, err := l.Accept(c)
		if err != nil {
			t.Fatalf("gated Accept: %v", err)
		}
		conn.Close()
		<-done
		if g.calls.Load() != 1 {
			t.Errorf("gate consulted %d times, want 1", g.calls.Load())
		}

		// A refusing gate fails Accept typed, without accepting.
		g.err = sentinel
		if _, err := l.Accept(c); !errors.Is(err, sentinel) {
			t.Errorf("refused Accept error = %v, want sentinel", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestGateBackpressure wires a real admit.Controller to a Listener: with
// the credit pool exhausted the acceptor suspends (the connection waits
// in the kernel backlog) and resumes when a ticket is released.
func TestGateBackpressure(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Deadline: 30 * time.Second}, func(c *runtime.Ctx) {
		l, err := Listen(c, "tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		defer l.Close()
		ctl := admit.New(admit.Config{MaxInflight: 1})
		l.SetGate(ctl)

		tk, err := ctl.Admit(c)
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		dialed := make(chan error, 1)
		go func() {
			nc, err := net.Dial("tcp", l.Addr().String())
			if err == nil {
				defer nc.Close()
			}
			dialed <- err
		}()

		var accepted atomic.Bool
		acceptor := c.Spawn(func(cc *runtime.Ctx) {
			conn, err := l.Accept(cc)
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			accepted.Store(true)
			conn.Close()
		})
		if err := <-dialed; err != nil {
			t.Fatalf("Dial: %v", err)
		}
		c.Latency(30 * time.Millisecond)
		if accepted.Load() {
			t.Fatal("Accept completed while the credit pool was exhausted")
		}
		tk.Done()
		acceptor.Await(c)
		if !accepted.Load() {
			t.Fatal("Accept never resumed after the credit was released")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
