//go:build linux && lhwsepoll

package io

import (
	"testing"
	"time"

	"lhws/internal/runtime"
)

// TestCancelVsParkStress hammers the two transitions of the epoll park
// protocol that a cancellation can race:
//
//  1. park's registration fails while a concurrent cancel steals the
//     parked claim and re-enqueues the op. The regression had park
//     report "not parked" anyway, so retryOrComplete enqueued the op a
//     second time and two bridges raced one op (use-after-recycle,
//     nil-deref on the pooled op's cleared fields).
//  2. cancel lands after retryOrComplete's canceled check but before
//     park's claim store: its unpark CAS misses, and the regression
//     left the canceled op (and its waiter) parked on an fd that never
//     fires for the rest of the run.
//
// Short scope deadlines straddling the pollSlice boundary put the
// cancel right where these windows open. The run finishing cleanly and
// promptly under -race is the assertion.
func TestCancelVsParkStress(t *testing.T) {
	addr, cleanup := neverReadyPeer(t)
	defer cleanup()
	start := time.Now()
	_, err := runtime.Run(runtime.Config{Workers: 4, Mode: runtime.LatencyHiding, Deadline: 120 * time.Second},
		func(c *runtime.Ctx) {
			const conns = 4
			cs := make([]*Conn, conns)
			for i := range cs {
				cn, derr := Dial(c, "tcp", addr)
				if derr != nil {
					t.Errorf("dial: %v", derr)
					return
				}
				cs[i] = cn
			}
			for iter := 0; iter < 60; iter++ {
				// 1..5ms around the 2ms pollSlice: the cancel fires while
				// the first attempt is timing out and parking.
				cc, cancel := c.WithDeadline(time.Duration(1+iter%5) * time.Millisecond)
				futs := make([]*runtime.Future, conns)
				for i, cn := range cs {
					cn := cn
					futs[i] = cc.Spawn(func(child *runtime.Ctx) {
						cn.Read(child, make([]byte, 1)) // never ready; unwinds on cancel
					})
				}
				for _, f := range futs {
					f.AwaitErr(c)
				}
				cancel()
			}
			for _, cn := range cs {
				cn.Close()
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if el := time.Since(start); el > 60*time.Second {
		t.Fatalf("stress run took %v; canceled parked ops are not completing promptly", el)
	}
}
