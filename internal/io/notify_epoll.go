//go:build linux && lhwsepoll

package io

import (
	"sync"
	"syscall"
)

// The epoll fast path: instead of rotating not-ready operations through
// the bridge queue on deadline slices, a single poller goroutine parks
// them on an epoll instance and re-enqueues each op the moment its fd
// becomes ready. Bridges then attempt the op with data (or a connection)
// already waiting, so the attempt completes on its first slice.
//
// Registrations are one-shot (EPOLLONESHOT): an op parks, its fd fires
// at most once, and the next park re-arms. The fd table maps fd to a
// pair of direction slots (a conn's reader and writer may both park on
// the same fd; registration unions their interests, and a fire for one
// direction re-arms the other). The table tolerates staleness —
// readiness delivery is spurious-tolerant by design (a falsely unparked
// op merely attempts, finds nothing, and parks again), so a stale slot
// can at worst cause one extra rotation, never a correctness failure.
// Cancellation does not need the poller at all: CancelExternal CASes the
// op out of its parked state and re-enqueues it directly (see
// ioOp.CancelExternal). Closing a socket is the one readiness event
// epoll will NOT deliver — the kernel silently drops a closed fd from
// the interest set — so Conn.Close/Listener.Close unpark their
// registered ops themselves (see unparkForClose).
//
// One outstanding parked op per fd direction is assumed, which the
// Conn/Listener concurrency contract (one reader, one writer, one
// acceptor) guarantees.

// newNotifier starts the epoll poller. If epoll setup fails (exotic
// kernels, locked-down sandboxes) it returns nil and the dispatcher
// falls back to rotation.
func newNotifier(d *dispatcher) notifier {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil
	}
	n := &epollNotifier{d: d, epfd: epfd, wakeR: pipe[0], wakeW: pipe[1], ops: make(map[int32]*fdEntry)}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(pipe[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pipe[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return nil
	}
	n.wg.Add(1)
	go n.poll()
	return n
}

type epollNotifier struct {
	d     *dispatcher
	epfd  int
	wakeR int // shutdown pipe, read end (registered in the epoll set)
	wakeW int
	wg    sync.WaitGroup

	mu     sync.Mutex
	ops    map[int32]*fdEntry
	closed bool
}

// fdEntry holds the at-most-two ops parked on one fd: the read-interest
// slot (reads and accepts) and the write-interest slot.
type fdEntry struct {
	rd *ioOp
	wr *ioOp
}

const readinessIn = syscall.EPOLLIN | syscall.EPOLLRDHUP

// interest computes the union epoll event mask for the entry's live
// slots, always one-shot.
func (e *fdEntry) interest() uint32 {
	ev := uint32(syscall.EPOLLONESHOT)
	if e.rd != nil {
		ev |= readinessIn
	}
	if e.wr != nil {
		ev |= syscall.EPOLLOUT
	}
	return ev
}

// park registers the op's fd for one readiness notification. Reports
// false (caller rotates instead) if the raw fd cannot be extracted or
// the notifier is shutting down.
func (n *epollNotifier) park(op *ioOp, rc parkable) bool {
	op.parked.Store(true)
	registered := false
	var regFd int32
	err := rc.Control(func(fd uintptr) {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.closed {
			return
		}
		e := n.ops[int32(fd)]
		if e == nil {
			e = &fdEntry{}
			n.ops[int32(fd)] = e
		}
		if op.kind == opWrite {
			e.wr = op
		} else {
			e.rd = op
		}
		if n.arm(int32(fd), e) != nil {
			// Roll the slot back so a later park on the sibling direction
			// does not resurrect interest in this op.
			if op.kind == opWrite {
				e.wr = nil
			} else {
				e.rd = nil
			}
			if e.rd == nil && e.wr == nil {
				delete(n.ops, int32(fd))
			}
			return
		}
		registered = true
		regFd = int32(fd)
	})
	if err != nil || !registered {
		// Registration failed: undo the park claim. If the undo CAS fails,
		// a concurrent cancel or close already stole the claim AND
		// re-enqueued the op — it is no longer ours, and reporting false
		// would make retryOrComplete enqueue it a second time (two bridges
		// then race one op, the first recycling it under the second).
		// Report true instead: the op has been rerouted either way.
		return !op.parked.CompareAndSwap(true, false)
	}
	// Close the kick-vs-park window: a cancel — or a predecessor's
	// unread-stash kick (Conn.stashUnread) — that ran after
	// retryOrComplete's checks but before the Store above found
	// parked==false, so its unpark CAS missed and the op would sit in the
	// epoll set waiting on an fd that may never fire. Re-check and unpark
	// through the same claim protocol (exactly one of this CAS and any
	// concurrent close's CAS wins, so the op is enqueued once).
	op.mu.Lock()
	kicked := op.canceled || (op.kind == opRead && op.cn != nil && op.cn.hasPending())
	op.mu.Unlock()
	if kicked && op.parked.CompareAndSwap(true, false) {
		n.drop(regFd, op)
		n.d.enqueue(op)
	}
	return true
}

// drop clears op's slot in the fd table after an unpark. Staleness is
// tolerated by design, but there is no reason to leave a pointer to an
// op that is about to complete and be recycled.
func (n *epollNotifier) drop(fd int32, op *ioOp) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := n.ops[fd]
	if e == nil {
		return
	}
	if e.rd == op {
		e.rd = nil
	}
	if e.wr == op {
		e.wr = nil
	}
	if e.rd == nil && e.wr == nil {
		delete(n.ops, fd)
	}
}

// arm (re)registers fd with the union interest of e's slots. Caller
// holds n.mu.
func (n *epollNotifier) arm(fd int32, e *fdEntry) error {
	ev := syscall.EpollEvent{Events: e.interest(), Fd: fd}
	if err := syscall.EpollCtl(n.epfd, syscall.EPOLL_CTL_MOD, int(fd), &ev); err != nil {
		return syscall.EpollCtl(n.epfd, syscall.EPOLL_CTL_ADD, int(fd), &ev)
	}
	return nil
}

// poll is the single readiness goroutine: wait, translate fds back to
// ops, unpark, re-enqueue.
//
//lhws:nosuspend
func (n *epollNotifier) poll() {
	defer n.wg.Done()
	events := make([]syscall.EpollEvent, 64)
	for {
		nev, err := syscall.EpollWait(n.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		for i := 0; i < nev; i++ {
			fd := events[i].Fd
			if int(fd) == n.wakeR {
				return
			}
			got := events[i].Events
			// Errors and hangups wake both directions.
			errish := got&(syscall.EPOLLERR|syscall.EPOLLHUP) != 0
			var rd, wr *ioOp
			n.mu.Lock()
			if e := n.ops[fd]; e != nil {
				if got&readinessIn != 0 || errish {
					rd, e.rd = e.rd, nil
				}
				if got&syscall.EPOLLOUT != 0 || errish {
					wr, e.wr = e.wr, nil
				}
				if e.rd == nil && e.wr == nil {
					delete(n.ops, fd)
				} else {
					// EPOLLONESHOT disarmed the whole fd; re-arm for the
					// direction still parked. On failure fall back to the
					// queue so the survivor is not stranded.
					if n.arm(fd, e) != nil {
						if e.rd != nil {
							rd = e.rd
						} else {
							wr = e.wr
						}
						delete(n.ops, fd)
					}
				}
			}
			n.mu.Unlock()
			if rd != nil && rd.parked.CompareAndSwap(true, false) {
				n.d.enqueue(rd)
			}
			if wr != nil && wr.parked.CompareAndSwap(true, false) {
				n.d.enqueue(wr)
			}
		}
	}
}

// close shuts the poller down and releases the epoll fd. Parked ops
// need no draining here: the runtime cancels every task before the
// dispatcher closes, and cancellation unparks directly.
func (n *epollNotifier) close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	syscall.Write(n.wakeW, []byte{1})
	n.wg.Wait()
	syscall.Close(n.epfd)
	syscall.Close(n.wakeR)
	syscall.Close(n.wakeW)
}
