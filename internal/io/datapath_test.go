package io

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"lhws/internal/bufpool"
	"lhws/internal/runtime"
)

// TestReadBufEcho: the pooled read path end to end — ReadBuf returns
// buffers whose contents round-trip through a real socket, and
// releasing them feeds the pool (steady state recycles instead of
// allocating).
func TestReadBufEcho(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			l, lerr := Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("listen: %v", lerr)
				return
			}
			srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, 8) })
			cn, derr := Dial(c, "tcp", l.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			msg := make([]byte, 8)
			for i := 0; i < 64; i++ {
				binary.BigEndian.PutUint64(msg, uint64(i))
				if _, werr := cn.Write(c, msg); werr != nil {
					t.Errorf("write %d: %v", i, werr)
					break
				}
				var got []byte
				for len(got) < 8 {
					pb, rerr := cn.ReadBuf(c, 64)
					if rerr != nil {
						t.Errorf("ReadBuf %d: %v", i, rerr)
						return
					}
					got = append(got, pb.Bytes()...)
					pb.Release()
				}
				if !bytes.Equal(got, msg) {
					t.Errorf("round %d: got %x want %x", i, got, msg)
					break
				}
			}
			cn.Close()
			l.Close()
			srv.Await(c)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWritevEcho: QueueWrite/Flush coalesce fragments into one vectored
// op whose bytes arrive in order, including a vector big enough to
// force partial writev progress across attempts.
func TestWritevEcho(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			nl, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("listen: %v", lerr)
				return
			}
			defer nl.Close()
			// Raw peer: read everything, echo the byte count back.
			type sinkResult struct {
				sum []byte
				err error
			}
			res := make(chan sinkResult, 1)
			go func() {
				pc, aerr := nl.Accept()
				if aerr != nil {
					res <- sinkResult{err: aerr}
					return
				}
				defer pc.Close()
				var all []byte
				buf := make([]byte, 32<<10)
				for {
					n, rerr := pc.Read(buf)
					all = append(all, buf[:n]...)
					if rerr != nil {
						break
					}
				}
				res <- sinkResult{sum: all}
			}()

			cn, derr := Dial(c, "tcp", nl.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}

			var want []byte
			// Small fragments: one Flush, one writev.
			for i := 0; i < 16; i++ {
				frag := bytes.Repeat([]byte{byte('a' + i)}, 64)
				want = append(want, frag...)
				cn.QueueWrite(frag)
			}
			if q := cn.Queued(); q != 16*64 {
				t.Errorf("Queued = %d, want %d", q, 16*64)
			}
			if n, werr := cn.Flush(c); werr != nil || n != 16*64 {
				t.Errorf("Flush = %d, %v; want %d, nil", n, werr, 16*64)
			}
			// Flush with nothing queued is a no-op.
			if n, werr := cn.Flush(c); werr != nil || n != 0 {
				t.Errorf("empty Flush = %d, %v; want 0, nil", n, werr)
			}
			// A vector far beyond the socket buffer: partial progress must
			// resume mid-vector without loss or reorder.
			big := net.Buffers{}
			for i := 0; i < 8; i++ {
				frag := bytes.Repeat([]byte{byte('A' + i)}, 128<<10)
				want = append(want, frag...)
				big = append(big, frag)
			}
			if n, werr := cn.Writev(c, big); werr != nil || n != 8*(128<<10) {
				t.Errorf("big Writev = %d, %v; want %d, nil", n, werr, 8*(128<<10))
			}
			cn.Close()

			r := <-res
			if r.err != nil {
				t.Errorf("peer accept: %v", r.err)
				return
			}
			if !bytes.Equal(r.sum, want) {
				t.Errorf("peer saw %d bytes, want %d (content mismatch at %d)",
					len(r.sum), len(want), firstDiff(r.sum, want))
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestStashMoveUnit exercises the pooled unread stash directly: buffers
// move in by reference (stashUnreadBuf), drain byte-oriented across
// buffer boundaries (takePending), and hand over whole buffers
// zero-copy (takePendingBuf) — including the compaction of a partially
// drained head.
func TestStashMoveUnit(t *testing.T) {
	cn := &Conn{} // stash needs no socket; kickRead is skipped with no rdOp
	mk := func(s string) *bufpool.Buf {
		pb := bufpool.Get(len(s))
		copy(pb.Bytes(), s)
		return pb
	}

	// Whole-buffer zero-copy handoff.
	in := mk("hello")
	p0 := &in.Bytes()[0]
	cn.stashUnreadBuf(in)
	out := cn.takePendingBuf()
	if out == nil || string(out.Bytes()) != "hello" {
		t.Fatalf("takePendingBuf = %v", out)
	}
	if &out.Bytes()[0] != p0 {
		t.Fatal("takePendingBuf copied; want the same backing array (move)")
	}
	out.Release()
	if cn.hasPending() {
		t.Fatal("stash not empty after drain")
	}

	// Byte drain across buffer boundaries, order preserved.
	cn.stashUnreadBuf(mk("abc"))
	cn.stashUnreadBuf(mk("defg"))
	p := make([]byte, 5)
	if n := cn.takePending(p); n != 5 || string(p[:n]) != "abcde" {
		t.Fatalf("takePending = %d %q", n, p[:n])
	}
	// Partially drained head compacts into a fresh buffer.
	rest := cn.takePendingBuf()
	if rest == nil || string(rest.Bytes()) != "fg" {
		t.Fatalf("compacted tail = %v", rest)
	}
	rest.Release()

	// Close-path drain releases without touching a socket.
	cn.stashUnreadBuf(mk("tail"))
	cn.drainPending()
	if cn.hasPending() {
		t.Fatal("drainPending left entries")
	}
}

// TestReadBufCancelStream: cancellation storm against pooled reads on a
// live byte stream. The server emits a continuous counter sequence;
// the client alternates tightly-deadlined ReadBufs (many of which are
// canceled mid-delivery, forcing the claim-lost buffer MOVE into the
// stash) with patient reads. The received stream must stay exactly
// continuous — any lost or duplicated cancel-window buffer shows up as
// a sequence break.
func TestReadBufCancelStream(t *testing.T) {
	const frames = 200
	nl, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		t.Fatalf("listen: %v", lerr)
	}
	defer nl.Close()
	go func() {
		pc, aerr := nl.Accept()
		if aerr != nil {
			return
		}
		defer pc.Close()
		var frame [4]byte
		for i := uint32(0); i < frames; i++ {
			binary.BigEndian.PutUint32(frame[:], i)
			if _, werr := pc.Write(frame[:]); werr != nil {
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	var got []byte
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			cn, derr := Dial(c, "tcp", nl.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			defer cn.Close()
			for len(got) < 4*frames {
				// A tightly-deadlined pooled read: often canceled just as
				// bytes land, which exercises the stash move.
				cc, cancel := c.WithDeadline(300 * time.Microsecond)
				fut := cc.Spawn(func(child *runtime.Ctx) {
					pb, rerr := cn.ReadBuf(child, 64)
					if rerr == nil {
						got = append(got, pb.Bytes()...)
						pb.Release()
					}
				})
				fut.AwaitErr(c)
				cancel()
				// A patient read picks up whatever the canceled one salvaged.
				if len(got) < 4*frames {
					pb, rerr := cn.ReadBuf(c, 64)
					if rerr != nil {
						t.Errorf("patient ReadBuf after %d bytes: %v", len(got), rerr)
						return
					}
					got = append(got, pb.Bytes()...)
					pb.Release()
				}
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 4*frames {
		t.Fatalf("received %d bytes, want %d", len(got), 4*frames)
	}
	for i := uint32(0); i < frames; i++ {
		if v := binary.BigEndian.Uint32(got[4*i:]); v != i {
			t.Fatalf("stream broken at frame %d: got %d (lost or duplicated cancel-window bytes)", i, v)
		}
	}
}

// TestSetOpTimeout: a per-op deadline on a silent conn completes the
// read with ErrOpTimeout — a normal error return, not an unwind — and
// the conn remains usable afterwards.
func TestSetOpTimeout(t *testing.T) {
	nl, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		t.Fatalf("listen: %v", lerr)
	}
	defer nl.Close()
	release := make(chan struct{})
	go func() {
		pc, aerr := nl.Accept()
		if aerr != nil {
			return
		}
		defer pc.Close()
		<-release
		pc.Write([]byte("late"))
		// Hold until the client is done reading.
		pc.Read(make([]byte, 1))
	}()

	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 30 * time.Second},
		func(c *runtime.Ctx) {
			cn, derr := Dial(c, "tcp", nl.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			defer cn.Close()
			cn.SetOpTimeout(40 * time.Millisecond)
			start := time.Now()
			n, rerr := cn.Read(c, make([]byte, 4))
			if !errors.Is(rerr, ErrOpTimeout) || n != 0 {
				t.Errorf("Read = %d, %v; want 0, ErrOpTimeout", n, rerr)
			}
			if el := time.Since(start); el > 5*time.Second {
				t.Errorf("op timeout took %v; deadline kick is not prompt", el)
			}
			// Same contract on the pooled path: no buffer returned.
			if pb, rerr := cn.ReadBuf(c, 64); !errors.Is(rerr, ErrOpTimeout) || pb != nil {
				t.Errorf("ReadBuf = %v, %v; want nil, ErrOpTimeout", pb, rerr)
			}
			// The conn is not poisoned: disable the timeout, release the
			// peer, and the late bytes arrive.
			cn.SetOpTimeout(0)
			close(release)
			in := make([]byte, 4)
			if rerr := readFull(c, cn, in); rerr != nil || string(in) != "late" {
				t.Errorf("post-timeout read = %q, %v; want \"late\"", in, rerr)
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestOpTimeoutStaleNeverFires is the canceled-deadline regression for
// the timer-wheel op deadlines: deadlines armed by ops that complete in
// time are stopped, and a stale fire that loses the Stop race must be
// ignored by the op.dl identity check — it must never kick a later op
// on the same conn (which would surface as a spurious ErrOpTimeout or
// a broken roundtrip below).
func TestOpTimeoutStaleNeverFires(t *testing.T) {
	_, err := runtime.Run(runtime.Config{Workers: 2, Mode: runtime.LatencyHiding, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			l, lerr := Listen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Errorf("listen: %v", lerr)
				return
			}
			srv := c.Spawn(func(cc *runtime.Ctx) { echoServe(cc, l, 4) })
			cn, derr := Dial(c, "tcp", l.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			// Many fast roundtrips under a short op timeout: every op
			// completes well before its deadline, arming and stopping many
			// wheel entries in quick succession on a recycled op.
			cn.SetOpTimeout(30 * time.Millisecond)
			in := make([]byte, 4)
			for i := 0; i < 50; i++ {
				if _, werr := cn.Write(c, []byte("ping")); werr != nil {
					t.Errorf("write %d: %v", i, werr)
					return
				}
				if rerr := readFull(c, cn, in); rerr != nil {
					t.Errorf("read %d: %v (a stale deadline fired?)", i, rerr)
					return
				}
			}
			// Outlive every armed deadline, then prove the conn is clean:
			// if any canceled deadline fired into a live op, this roundtrip
			// would see a kicked read or ErrOpTimeout.
			time.Sleep(80 * time.Millisecond)
			if _, werr := cn.Write(c, []byte("pong")); werr != nil {
				t.Errorf("post-quiesce write: %v", werr)
			}
			if rerr := readFull(c, cn, in); rerr != nil || string(in) != "pong" {
				t.Errorf("post-quiesce read = %q, %v; a canceled deadline fired its op", in, rerr)
			}
			cn.Close()
			l.Close()
			srv.Await(c)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
