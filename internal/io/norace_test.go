//go:build !race

package io

// raceDetectorEnabled is false in normal builds; see race_test.go.
const raceDetectorEnabled = false
