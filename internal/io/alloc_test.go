package io

import (
	"net"
	"testing"
	"time"

	"lhws/internal/bufpool"
	"lhws/internal/runtime"
)

// TestAllocsEchoSteadyState is the io-layer allocation gate. The runtime
// side is already proven exactly allocation-free (the external-await
// steady-state gate in internal/runtime); this test adds the dispatcher
// on top: pooled ioOps, the bridge queue, and deadline re-arms. The
// budget is lenient rather than zero because the kernel-facing layers
// legitimately allocate a little (netpoll deadline plumbing, and in
// epoll builds a small per-park table entry) — the gate exists to catch
// a regression to per-operation garbage (a fresh op, buffer, or closure
// per read), which would show up as dozens of allocations per
// roundtrip, not a handful.
func TestAllocsEchoSteadyState(t *testing.T) {
	// Raw echo peer: echoes instantly from a plain goroutine, so the
	// task-side read's data is ready almost immediately.
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("peer listen: %v", err)
	}
	defer nl.Close()
	go func() {
		pc, aerr := nl.Accept()
		if aerr != nil {
			return
		}
		defer pc.Close()
		buf := make([]byte, 64)
		for {
			n, rerr := pc.Read(buf)
			if n > 0 {
				pc.Write(buf[:n])
			}
			if rerr != nil {
				return
			}
		}
	}()

	const frame = 8
	var avg float64
	_, err = runtime.Run(runtime.Config{Workers: 1, Mode: runtime.LatencyHiding,
		Seed: 1, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			cn, derr := Dial(c, "tcp", nl.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			defer cn.Close()
			out := []byte("allocfrm")
			in := make([]byte, frame)
			roundtrip := func() {
				if _, werr := cn.Write(c, out); werr != nil {
					t.Errorf("write: %v", werr)
				}
				if rerr := readFull(c, cn, in); rerr != nil {
					t.Errorf("read: %v", rerr)
				}
			}
			for i := 0; i < 64; i++ { // warm op pool, waiter pool, queue capacity
				roundtrip()
			}
			avg = testing.AllocsPerRun(100, roundtrip)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	const budget = 8.0
	if avg > budget {
		t.Fatalf("echo roundtrip allocates %.1f objects on average, budget %.0f", avg, budget)
	}
}

// TestAllocsPooledStashZero is the zero-allocation gate for the pooled
// data plane's own machinery: a buffer checked out of the pool, moved
// into a conn's unread stash by reference, handed back out zero-copy,
// and released must — after warmup — touch no allocator at all. This is
// exactly the cycle the cancel window drives (claim-lost bytes stashed,
// successor read draining them), so per-cancel garbage regressions trip
// here deterministically, with no socket noise in the measurement.
func TestAllocsPooledStashZero(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; strict alloc gates run in the non-race suite")
	}
	cn := &Conn{}
	cycle := func() {
		pb := bufpool.Get(4096)
		cn.stashUnreadBuf(pb)
		out := cn.takePendingBuf()
		out.Release()
	}
	for i := 0; i < 16; i++ { // warm the size-class pool and stash slice
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("pooled stash cycle allocates %.2f objects per op, want 0", avg)
	}
}

// TestAllocsReadBufSteadyState gates the full pooled read path — socket
// included — at (near) zero steady-state allocations. A raw peer
// saturates the socket so every ReadBuf finds bytes already buffered
// and completes on its first attempt: the remaining per-op work is a
// pool checkout, a recycled ioOp, one syscall, and the runtime's
// allocation-free resume.
func TestAllocsReadBufSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; strict alloc gates run in the non-race suite")
	}
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("peer listen: %v", err)
	}
	defer nl.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		pc, aerr := nl.Accept()
		if aerr != nil {
			return
		}
		defer pc.Close()
		chunk := make([]byte, 64<<10)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, werr := pc.Write(chunk); werr != nil {
				return
			}
		}
	}()

	var avg float64
	_, err = runtime.Run(runtime.Config{Workers: 1, Mode: runtime.LatencyHiding,
		Seed: 1, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			cn, derr := Dial(c, "tcp", nl.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			defer cn.Close()
			read := func() {
				pb, rerr := cn.ReadBuf(c, 4096)
				if rerr != nil {
					t.Errorf("ReadBuf: %v", rerr)
					return
				}
				pb.Release()
			}
			for i := 0; i < 64; i++ { // warm op pool, buffer pool, bridge
				read()
			}
			avg = testing.AllocsPerRun(100, read)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The pooled task-side path itself is allocation-free; the small
	// budget absorbs rare not-ready attempts (the peer briefly outrun on
	// a loaded machine), each of which costs a netpoll deadline error.
	const budget = 0.1
	if avg > budget {
		t.Fatalf("pooled ReadBuf allocates %.2f objects per op steady-state, budget %.1f", avg, budget)
	}
}
