package io

import (
	"net"
	"testing"
	"time"

	"lhws/internal/runtime"
)

// TestAllocsEchoSteadyState is the io-layer allocation gate. The runtime
// side is already proven exactly allocation-free (the external-await
// steady-state gate in internal/runtime); this test adds the dispatcher
// on top: pooled ioOps, the bridge queue, and deadline re-arms. The
// budget is lenient rather than zero because the kernel-facing layers
// legitimately allocate a little (netpoll deadline plumbing, and in
// epoll builds a small per-park table entry) — the gate exists to catch
// a regression to per-operation garbage (a fresh op, buffer, or closure
// per read), which would show up as dozens of allocations per
// roundtrip, not a handful.
func TestAllocsEchoSteadyState(t *testing.T) {
	// Raw echo peer: echoes instantly from a plain goroutine, so the
	// task-side read's data is ready almost immediately.
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("peer listen: %v", err)
	}
	defer nl.Close()
	go func() {
		pc, aerr := nl.Accept()
		if aerr != nil {
			return
		}
		defer pc.Close()
		buf := make([]byte, 64)
		for {
			n, rerr := pc.Read(buf)
			if n > 0 {
				pc.Write(buf[:n])
			}
			if rerr != nil {
				return
			}
		}
	}()

	const frame = 8
	var avg float64
	_, err = runtime.Run(runtime.Config{Workers: 1, Mode: runtime.LatencyHiding,
		Seed: 1, Deadline: 60 * time.Second},
		func(c *runtime.Ctx) {
			cn, derr := Dial(c, "tcp", nl.Addr().String())
			if derr != nil {
				t.Errorf("dial: %v", derr)
				return
			}
			defer cn.Close()
			out := []byte("allocfrm")
			in := make([]byte, frame)
			roundtrip := func() {
				if _, werr := cn.Write(c, out); werr != nil {
					t.Errorf("write: %v", werr)
				}
				if rerr := readFull(c, cn, in); rerr != nil {
					t.Errorf("read: %v", rerr)
				}
			}
			for i := 0; i < 64; i++ { // warm op pool, waiter pool, queue capacity
				roundtrip()
			}
			avg = testing.AllocsPerRun(100, roundtrip)
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	const budget = 8.0
	if avg > budget {
		t.Fatalf("echo roundtrip allocates %.1f objects on average, budget %.0f", avg, budget)
	}
}
