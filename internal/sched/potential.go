package sched

import (
	"fmt"
	"math/big"

	"lhws/internal/dag"
)

// PotentialTrace records the §4.1 potential function Φ over an LHWS
// execution. The potential of a vertex v with enabling-tree weight
// w(v) = S* − d(v) is 3^{2w(v)−1} while assigned and 3^{2w(v)} while
// queued; a non-active deque with suspended vertices carries the extra
// potential φᴱ = 2·3^{2w(v)−2j} keyed to its bottom (or last executed)
// vertex v and the j rounds elapsed since it was added (or executed).
//
// The analysis (Lemmas 4, 5, 8) uses Φ to bound steal attempts: the total
// potential starts at 3^{2S*−1}, never grows past its starting value, and
// is driven to zero, with each phase of Θ(PU) steal attempts removing a
// constant fraction. Σ here validates the observable parts:
//
//   - Φ_0 = 3^{2S*−1} and Φ_final = 0;
//   - Φ_i ≤ Φ_0 for all rounds i;
//   - Φ decreases in the overwhelming majority of rounds. Exact per-round
//     monotonicity (Lemma 5) depends on φᴱ bookkeeping details spelled out
//     only in the companion technical report; the trace reports the rounds
//     where the observable Φ grew (Increases) together with the largest
//     growth ratio so experiments can bound them.
//
// Computing Φ is O(total queue contents) per round with big-rational
// arithmetic (weights can go negative in 2w−2j); use it on small runs.
type PotentialTrace struct {
	// SStar is the enabling span used for weights (from a first pass).
	SStar int64
	// Initial and Final are Φ at the first and last round boundary.
	Initial, Final *big.Rat
	// MaxOverInitial is max_i Φ_i / Φ_0.
	MaxOverInitial float64
	// Rounds is the number of round boundaries sampled.
	Rounds int64
	// Increases counts boundaries where Φ grew relative to the previous
	// boundary; MaxIncreaseRatio is the largest such growth factor.
	Increases        int64
	MaxIncreaseRatio float64
	// DecreaseFraction is the fraction of boundaries with strictly
	// decreasing Φ.
	DecreaseFraction float64
}

// TracePotential runs the dag twice with identical options: the first pass
// measures the enabling span S*, the second recomputes Φ at every round
// boundary (determinism makes the passes identical). LHWS only.
func TracePotential(g *dag.Graph, opt Options) (*PotentialTrace, error) {
	opt.TrackDepths = true
	first, err := RunLHWS(g, opt)
	if err != nil {
		return nil, err
	}
	sstar := first.Stats.EnablingSpan

	o, err := opt.withDefaults(g)
	if err != nil {
		return nil, err
	}
	s := newLHWSSim(g, o)
	pt := &potentialTracker{sstar: sstar, pow: map[int64]*big.Rat{}}
	s.potential = pt
	if _, err := s.run(); err != nil {
		return nil, err
	}

	tr := &PotentialTrace{
		SStar:            sstar,
		Initial:          pt.initial,
		Final:            pt.last,
		MaxOverInitial:   pt.maxOverInitial,
		Rounds:           pt.rounds,
		Increases:        pt.increases,
		MaxIncreaseRatio: pt.maxIncrease,
	}
	if pt.rounds > 0 {
		tr.DecreaseFraction = float64(pt.decreases) / float64(pt.rounds)
	}
	return tr, nil
}

// potentialTracker accumulates Φ statistics during a run.
type potentialTracker struct {
	sstar          int64
	pow            map[int64]*big.Rat // 3^k cache, k may be negative
	initial, last  *big.Rat
	prev           *big.Rat
	rounds         int64
	increases      int64
	decreases      int64
	maxIncrease    float64
	maxOverInitial float64
}

// pow3 returns 3^k as a big.Rat, caching results.
func (p *potentialTracker) pow3(k int64) *big.Rat {
	if r, ok := p.pow[k]; ok {
		return r
	}
	var r *big.Rat
	if k >= 0 {
		r = new(big.Rat).SetInt(new(big.Int).Exp(big.NewInt(3), big.NewInt(k), nil))
	} else {
		den := new(big.Int).Exp(big.NewInt(3), big.NewInt(-k), nil)
		r = new(big.Rat).SetFrac(big.NewInt(1), den)
	}
	p.pow[k] = r
	return r
}

// weight returns w = S* − d for an enabling depth d.
func (p *potentialTracker) weight(d int64) int64 { return p.sstar - d }

// sample computes Φ at a round boundary from the simulator state.
func (p *potentialTracker) sample(s *lhwsSim) {
	phi := new(big.Rat)
	for _, w := range s.workers {
		if w.assigned != nil {
			phi.Add(phi, p.pow3(2*p.weight(w.assigned.depth)-1))
		}
	}
	for _, q := range s.gDeques {
		if q.state == dqFreed {
			continue
		}
		for _, n := range q.items {
			phi.Add(phi, p.pow3(2*p.weight(n.depth)))
		}
		// Extra potential of non-active deques with suspended vertices.
		if q.state != dqActive && q.suspendCtr > 0 {
			var w2j int64
			if len(q.items) > 0 {
				b := q.items[len(q.items)-1]
				w2j = 2*p.weight(b.depth) - 2*(s.round-b.addedRound)
			} else {
				w2j = 2*p.weight(q.lastExecDepth) - 2*(s.round-q.lastExecRound)
			}
			extra := new(big.Rat).Add(p.pow3(w2j), p.pow3(w2j))
			phi.Add(phi, extra)
		}
	}

	p.rounds++
	if p.initial == nil {
		p.initial = new(big.Rat).Set(phi)
		p.maxOverInitial = 1
	} else {
		ratio, _ := new(big.Rat).Quo(phi, p.initial).Float64()
		if ratio > p.maxOverInitial {
			p.maxOverInitial = ratio
		}
		switch phi.Cmp(p.prev) {
		case 1:
			p.increases++
			if p.prev.Sign() > 0 {
				inc, _ := new(big.Rat).Quo(phi, p.prev).Float64()
				if inc > p.maxIncrease {
					p.maxIncrease = inc
				}
			}
		case -1:
			p.decreases++
		}
	}
	p.prev = phi
	p.last = phi
}

// CheckPotential validates the observable potential-function claims on the
// trace, returning an error naming the first violated property.
func (t *PotentialTrace) CheckPotential() error {
	// Φ_0 = 3^{2S*−1}: only the assigned root, at depth 0.
	want := new(big.Rat).SetInt(new(big.Int).Exp(big.NewInt(3), big.NewInt(2*t.SStar-1), nil))
	if t.Initial.Cmp(want) != 0 {
		return fmt.Errorf("potential: Φ_0 = %s, want 3^(2S*-1) with S*=%d", t.Initial.FloatString(3), t.SStar)
	}
	if t.Final.Sign() != 0 {
		return fmt.Errorf("potential: Φ_final = %s, want 0", t.Final.FloatString(3))
	}
	if t.MaxOverInitial > 1 {
		return fmt.Errorf("potential: Φ exceeded its initial value (%.3f×)", t.MaxOverInitial)
	}
	if t.DecreaseFraction < 0.5 {
		return fmt.Errorf("potential: Φ decreased on only %.0f%% of rounds", 100*t.DecreaseFraction)
	}
	return nil
}
