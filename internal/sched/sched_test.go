package sched

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"lhws/internal/dag"
	"lhws/internal/workload"
)

// assertValidExecution checks the fundamental correctness of a schedule:
// every vertex executed, and every dependency respected including latency —
// for each edge (u,v,δ), exec(v) ≥ exec(u) + δ.
func assertValidExecution(t *testing.T, g *dag.Graph, res *Result) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		if res.ExecRound[v] < 0 {
			t.Fatalf("vertex %d never executed", v)
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, e := range g.OutEdges(dag.VertexID(u)) {
			if res.ExecRound[e.To] < res.ExecRound[u]+e.Weight {
				t.Fatalf("edge %d->%d (δ=%d) violated: exec(u)=%d exec(v)=%d",
					u, e.To, e.Weight, res.ExecRound[u], res.ExecRound[e.To])
			}
		}
	}
	if res.Stats.UserWork != g.Work() {
		t.Fatalf("UserWork = %d, want %d", res.Stats.UserWork, g.Work())
	}
}

type runner func(g *dag.Graph, opt Options) (*Result, error)

func runners() map[string]runner {
	return map[string]runner{
		"LHWS":          RunLHWS,
		"LHWS-optsteal": func(g *dag.Graph, o Options) (*Result, error) { o.Policy = StealWorkerThenDeque; return RunLHWS(g, o) },
		"WS":            RunWS,
		"Greedy":        func(g *dag.Graph, o Options) (*Result, error) { return RunGreedy(g, o.Workers) },
	}
}

func testGraphs(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	return map[string]*dag.Graph{
		"fib10":     workload.Fib(10).G,
		"mapreduce": workload.MapReduce(workload.MapReduceConfig{N: 24, Delta: 17, FibWork: 4}).G,
		"server":    workload.Server(workload.ServerConfig{Requests: 10, Delta: 23, FibWork: 4}).G,
		"pipeline":  workload.Pipeline(workload.PipelineConfig{Items: 6, Stages: 3, StageWork: 5, Delta: 11}).G,
		"random1":   workload.Random(workload.RandomConfig{Seed: 1, TargetVertices: 120, PHeavy: 0.25, MaxDelta: 19}).G,
		"random2":   workload.Random(workload.RandomConfig{Seed: 42, TargetVertices: 200, PHeavy: 0.4, MaxDelta: 40}).G,
		"single":    singleVertex(t),
		"chain":     chainGraph(t, 17),
		"heavy1":    figure1Graph(t, 9),
	}
}

func singleVertex(t *testing.T) *dag.Graph {
	b := dag.NewBuilder()
	b.Vertex("v")
	return b.MustGraph()
}

func chainGraph(t *testing.T, n int) *dag.Graph {
	b := dag.NewBuilder()
	b.Chain(dag.None, n)
	return b.MustGraph()
}

func figure1Graph(t *testing.T, delta int64) *dag.Graph {
	b := dag.NewBuilder()
	fork := b.Vertex("fork")
	mul := b.Vertex("mul")
	input := b.Vertex("input")
	double := b.Vertex("double")
	add := b.Vertex("add")
	b.Light(fork, mul)
	b.Light(fork, input)
	b.Heavy(input, double, delta)
	b.Light(mul, add)
	b.Light(double, add)
	return b.MustGraph()
}

// TestAllSchedulersValidSchedules runs every scheduler over every test
// graph and worker count and asserts full dependency/latency correctness.
func TestAllSchedulersValidSchedules(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for rname, run := range runners() {
			for _, p := range []int{1, 2, 3, 8} {
				res, err := run(g, Options{Workers: p, Seed: 7})
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", gname, rname, p, err)
				}
				assertValidExecution(t, g, res)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 32, Delta: 29, FibWork: 5}).G
	for rname, run := range runners() {
		a, err := run(g, Options{Workers: 5, Seed: 123})
		if err != nil {
			t.Fatal(err)
		}
		b, err := run(g, Options{Workers: 5, Seed: 123})
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats != b.Stats {
			t.Errorf("%s: same seed, different stats:\n%+v\n%+v", rname, a.Stats, b.Stats)
		}
		for v := range a.ExecRound {
			if a.ExecRound[v] != b.ExecRound[v] {
				t.Fatalf("%s: same seed, vertex %d executed at %d vs %d", rname, v, a.ExecRound[v], b.ExecRound[v])
			}
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 32, Delta: 29, FibWork: 5}).G
	a, _ := RunLHWS(g, Options{Workers: 4, Seed: 1})
	b, _ := RunLHWS(g, Options{Workers: 4, Seed: 2})
	// Schedules should (almost surely) differ in steal counts.
	if a.Stats.StealAttempts == b.Stats.StealAttempts && a.Stats.Rounds == b.Stats.Rounds &&
		a.Stats.Switches == b.Stats.Switches {
		t.Log("warning: different seeds produced identical stats (possible but unlikely)")
	}
	assertValidExecution(t, g, a)
	assertValidExecution(t, g, b)
}

// TestUZeroReduction: with no heavy edges, LHWS must behave like standard
// work stealing — exactly one deque per worker ever (Lemma 7 with U=0 ...
// the initial deque), no pfor vertices, no suspensions.
func TestUZeroReduction(t *testing.T) {
	g := workload.Fib(12).G
	for _, p := range []int{1, 2, 4, 8} {
		res, err := RunLHWS(g, Options{Workers: p, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.MaxDequesPerWorker != 1 {
			t.Errorf("P=%d: MaxDequesPerWorker = %d, want 1", p, res.Stats.MaxDequesPerWorker)
		}
		if res.Stats.PforWork != 0 {
			t.Errorf("P=%d: PforWork = %d, want 0", p, res.Stats.PforWork)
		}
		if res.Stats.MaxSuspended != 0 {
			t.Errorf("P=%d: MaxSuspended = %d, want 0", p, res.Stats.MaxSuspended)
		}
	}
}

// TestLemma7DequeBound: no worker ever owns more than U+1 allocated deques.
func TestLemma7DequeBound(t *testing.T) {
	cases := []*workload.Workload{
		workload.MapReduce(workload.MapReduceConfig{N: 20, Delta: 15, FibWork: 3}),
		workload.Server(workload.ServerConfig{Requests: 12, Delta: 20, FibWork: 3}),
		workload.Pipeline(workload.PipelineConfig{Items: 5, Stages: 3, StageWork: 4, Delta: 9}),
		workload.Fib(10),
	}
	for _, w := range cases {
		u := w.G.SuspensionWidth()
		for _, p := range []int{1, 2, 4, 8} {
			res, err := RunLHWS(w.G, Options{Workers: p, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.MaxDequesPerWorker > u+1 {
				t.Errorf("%s P=%d: MaxDequesPerWorker = %d > U+1 = %d",
					w.Name, p, res.Stats.MaxDequesPerWorker, u+1)
			}
		}
	}
}

// TestMaxSuspendedBoundedByU: the observed number of simultaneously
// suspended vertices never exceeds the suspension width.
func TestMaxSuspendedBoundedByU(t *testing.T) {
	for gname, g := range testGraphs(t) {
		u := g.SuspensionWidth()
		for rname, run := range runners() {
			res, err := run(g, Options{Workers: 4, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.MaxSuspended > u {
				t.Errorf("%s/%s: MaxSuspended = %d > U = %d", gname, rname, res.Stats.MaxSuspended, u)
			}
		}
	}
}

// TestLemma1TokenBound: rounds ≤ 4W/P + R/P (+1 for the final partial
// round).
func TestLemma1TokenBound(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, p := range []int{1, 2, 4, 8} {
			res, err := RunLHWS(g, Options{Workers: p, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			bound := (4*g.Work()+res.Stats.StealAttempts)/int64(p) + 2
			if res.Stats.Rounds > bound {
				t.Errorf("%s P=%d: rounds %d > Lemma-1 bound %d (W=%d R=%d)",
					gname, p, res.Stats.Rounds, bound, g.Work(), res.Stats.StealAttempts)
			}
		}
	}
}

// TestPforWorkBound: internal pfor vertices never exceed the number of
// resumed vertices, hence W_pfor ≤ W (Lemma 1's 2W accounting).
func TestPforWorkBound(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 64, Delta: 31, FibWork: 3}).G
	res, err := RunLHWS(g, Options{Workers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PforWork > g.Work() {
		t.Errorf("PforWork = %d > W = %d", res.Stats.PforWork, g.Work())
	}
}

// TestTheorem1GreedyBound: greedy schedules obey length ≤ W/P + S exactly.
func TestTheorem1GreedyBound(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, p := range []int{1, 2, 3, 5, 16} {
			res, err := RunGreedy(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Rounds > GreedyBound(g, p) {
				t.Errorf("%s P=%d: greedy length %d > W/P+S = %d",
					gname, p, res.Stats.Rounds, GreedyBound(g, p))
			}
		}
	}
	// Sweep random dags for the same property.
	for seed := uint64(0); seed < 30; seed++ {
		g := workload.Random(workload.RandomConfig{Seed: seed, TargetVertices: 150, PHeavy: 0.3, MaxDelta: 25}).G
		for _, p := range []int{1, 2, 4} {
			res, err := RunGreedy(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Rounds > GreedyBound(g, p) {
				t.Errorf("random seed=%d P=%d: greedy length %d > %d", seed, p, res.Stats.Rounds, GreedyBound(g, p))
			}
		}
	}
}

// TestGreedyOptimalOnChain: a serial chain takes exactly W rounds under
// greedy on any P.
func TestGreedyOptimalOnChain(t *testing.T) {
	g := chainGraph(t, 40)
	for _, p := range []int{1, 3} {
		res, err := RunGreedy(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds != 40 {
			t.Errorf("P=%d: chain rounds = %d, want 40", p, res.Stats.Rounds)
		}
	}
}

// TestLatencyHiding is the core behavioural claim: on a latency-dominated
// workload, LHWS completes far sooner than blocking WS.
func TestLatencyHiding(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 50, Delta: 400, FibWork: 4}).G
	for _, p := range []int{1, 2, 4} {
		lh, err := RunLHWS(g, Options{Workers: p, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		ws, err := RunWS(g, Options{Workers: p, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		// WS pays ~50·400/P rounds of blocking; LHWS overlaps all fetches.
		if lh.Stats.Rounds*2 >= ws.Stats.Rounds {
			t.Errorf("P=%d: LHWS %d rounds not <2x faster than WS %d rounds",
				p, lh.Stats.Rounds, ws.Stats.Rounds)
		}
		if ws.Stats.BlockedRounds == 0 {
			t.Errorf("P=%d: WS reported no blocked rounds on latency-bound workload", p)
		}
	}
}

// TestNoLatencyParity: on a pure-compute dag, LHWS and WS round counts are
// comparable (within 50%) — latency hiding costs nothing when there is no
// latency.
func TestNoLatencyParity(t *testing.T) {
	g := workload.Fib(14).G
	for _, p := range []int{1, 4} {
		lh, err := RunLHWS(g, Options{Workers: p, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		ws, err := RunWS(g, Options{Workers: p, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(lh.Stats.Rounds) / float64(ws.Stats.Rounds)
		if ratio > 1.5 || ratio < 0.6 {
			t.Errorf("P=%d: LHWS/WS round ratio %.2f out of [0.6,1.5] (%d vs %d)",
				p, ratio, lh.Stats.Rounds, ws.Stats.Rounds)
		}
	}
}

// TestSingleWorkerLHWSHidesLatency: even P=1 benefits, by switching deques
// while fetches are in flight (the work-conserving property).
func TestSingleWorkerLHWSHidesLatency(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 40, Delta: 300, FibWork: 3}).G
	lh, err := RunLHWS(g, Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := RunWS(g, Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// WS(1) ≈ W + 40·300; LHWS(1) ≈ W + 300.
	if lh.Stats.Rounds*3 >= ws.Stats.Rounds {
		t.Errorf("LHWS(1)=%d rounds, WS(1)=%d rounds; want >3x gap", lh.Stats.Rounds, ws.Stats.Rounds)
	}
}

// TestCorollary1EnablingSpan: the enabling span S* is O(S(1+lg U)); check
// with the explicit constant of the proof (2) plus slack for the pfor
// chain rounding.
func TestCorollary1EnablingSpan(t *testing.T) {
	cases := []*workload.Workload{
		workload.MapReduce(workload.MapReduceConfig{N: 32, Delta: 21, FibWork: 4}),
		workload.Server(workload.ServerConfig{Requests: 10, Delta: 17, FibWork: 4}),
		workload.Random(workload.RandomConfig{Seed: 5, TargetVertices: 150, PHeavy: 0.3, MaxDelta: 15}),
	}
	for _, w := range cases {
		s := w.G.Span()
		u := w.G.SuspensionWidth()
		lg := math.Log2(float64(u) + 1)
		bound := int64(4 * float64(s) * (1 + lg))
		for _, p := range []int{1, 4} {
			res, err := RunLHWS(w.G, Options{Workers: p, Seed: 6, TrackDepths: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.EnablingSpan > bound {
				t.Errorf("%s P=%d: S* = %d > 4·S(1+lgU) = %d (S=%d U=%d)",
					w.Name, p, res.Stats.EnablingSpan, bound, s, u)
			}
		}
	}
}

// TestTheorem2RoundBound: measured rounds stay within a small constant of
// the Theorem-2 bound W/P + S·U·(1+lg U).
func TestTheorem2RoundBound(t *testing.T) {
	cases := []*workload.Workload{
		workload.MapReduce(workload.MapReduceConfig{N: 16, Delta: 13, FibWork: 3}),
		workload.Server(workload.ServerConfig{Requests: 8, Delta: 19, FibWork: 3}),
		workload.Fib(11),
	}
	const c = 8 // constant factor allowance
	for _, w := range cases {
		wk, s := w.G.Work(), w.G.Span()
		u := int64(w.G.SuspensionWidth())
		for _, p := range []int{1, 2, 4, 8} {
			res, err := RunLHWS(w.G, Options{Workers: p, Seed: 13})
			if err != nil {
				t.Fatal(err)
			}
			lg := math.Log2(float64(u) + 2)
			bound := int64(c * (float64(wk)/float64(p) + float64(s)*float64(u+1)*(1+lg)))
			if res.Stats.Rounds > bound {
				t.Errorf("%s P=%d: rounds %d > %d·(W/P+SU(1+lgU)) = %d",
					w.Name, p, res.Stats.Rounds, c, bound)
			}
		}
	}
}

// TestMoreWorkersNotCatastrophic: adding workers should not slow the
// computation down by more than the steal-overhead factor.
func TestMoreWorkersNotCatastrophic(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 64, Delta: 41, FibWork: 5}).G
	r1, err := RunLHWS(g, Options{Workers: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunLHWS(g, Options{Workers: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if r8.Stats.Rounds > r1.Stats.Rounds {
		t.Errorf("8 workers slower than 1: %d vs %d rounds", r8.Stats.Rounds, r1.Stats.Rounds)
	}
}

// TestOptimizedStealPolicyFewerFailures: the §6 worker-then-deque policy
// should waste fewer attempts than uniform random-deque selection.
func TestOptimizedStealPolicyFewerFailures(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 48, Delta: 37, FibWork: 4}).G
	var failRandom, failOpt float64
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		a, err := RunLHWS(g, Options{Workers: 6, Seed: seed, Policy: StealRandomDeque})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunLHWS(g, Options{Workers: 6, Seed: seed, Policy: StealWorkerThenDeque})
		if err != nil {
			t.Fatal(err)
		}
		failRandom += float64(a.Stats.StealAttempts - a.Stats.StealSuccesses)
		failOpt += float64(b.Stats.StealAttempts - b.Stats.StealSuccesses)
	}
	if failOpt >= failRandom {
		t.Errorf("optimized policy failed steals %.0f >= random policy %.0f", failOpt, failRandom)
	}
}

func TestInvalidWorkerCount(t *testing.T) {
	g := workload.Fib(5).G
	if _, err := RunLHWS(g, Options{Workers: 0}); err == nil {
		t.Error("LHWS accepted 0 workers")
	}
	if _, err := RunWS(g, Options{Workers: -1}); err == nil {
		t.Error("WS accepted -1 workers")
	}
	if _, err := RunGreedy(g, 0); err == nil {
		t.Error("Greedy accepted 0 workers")
	}
}

func TestRoundLimit(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 16, Delta: 100, FibWork: 3}).G
	_, err := RunLHWS(g, Options{Workers: 2, Seed: 1, MaxRounds: 10})
	if !errors.Is(err, ErrRoundLimit) {
		t.Errorf("err = %v, want ErrRoundLimit", err)
	}
}

func TestSpeedupHelper(t *testing.T) {
	r := &Result{Stats: Stats{Rounds: 50}}
	if got := r.Speedup(200); got != 4.0 {
		t.Errorf("Speedup = %v, want 4", got)
	}
}

func TestStealPolicyString(t *testing.T) {
	if StealRandomDeque.String() != "random-deque" {
		t.Error("StealRandomDeque string wrong")
	}
	if StealWorkerThenDeque.String() != "worker-then-deque" {
		t.Error("StealWorkerThenDeque string wrong")
	}
	if StealPolicy(99).String() == "" {
		t.Error("unknown policy produced empty string")
	}
}

// TestServerDequeCount: U=1, so each worker holds at most 2 deques at once.
func TestServerDequeCount(t *testing.T) {
	g := workload.Server(workload.ServerConfig{Requests: 15, Delta: 25, FibWork: 5}).G
	res, err := RunLHWS(g, Options{Workers: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxDequesPerWorker > 2 {
		t.Errorf("server: MaxDequesPerWorker = %d, want <= 2", res.Stats.MaxDequesPerWorker)
	}
}

// TestHeavyEdgeLatencyExact: on Figure 1's dag with one worker, the
// suspended vertex executes exactly when its latency expires (not earlier,
// and under LHWS the single worker should not idle longer than needed).
func TestHeavyEdgeLatencyExact(t *testing.T) {
	delta := int64(9)
	g := figure1Graph(t, delta)
	res, err := RunLHWS(g, Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var input, double dag.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		switch g.Label(dag.VertexID(v)) {
		case "input":
			input = dag.VertexID(v)
		case "double":
			double = dag.VertexID(v)
		}
	}
	gap := res.ExecRound[double] - res.ExecRound[input]
	if gap < delta {
		t.Fatalf("suspended vertex ran after %d rounds, before latency %d expired", gap, delta)
	}
	if gap > delta+3 {
		t.Errorf("suspended vertex ran %d rounds after parent; want within %d+3", gap, delta)
	}
}

func TestGreedyIdleAccounting(t *testing.T) {
	// On the Figure-1 dag with P=2: total tokens = P·rounds =
	// work + idle.
	g := figure1Graph(t, 6)
	res, err := RunGreedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	tokens := 2 * res.Stats.Rounds
	if tokens != res.Stats.UserWork+res.Stats.IdleRounds {
		t.Errorf("token accounting broken: 2·%d != %d + %d",
			res.Stats.Rounds, res.Stats.UserWork, res.Stats.IdleRounds)
	}
}

// TestLemma2Invariants audits the analysis invariants (enabling-depth
// bound, deque depth ordering) on every test graph, worker count, and
// steal policy: the auditor aborts the run on the first violation.
func TestLemma2Invariants(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, policy := range []StealPolicy{StealRandomDeque, StealWorkerThenDeque} {
			for _, p := range []int{1, 2, 4, 8} {
				opt := Options{Workers: p, Seed: 31, Policy: policy, CheckInvariants: true, TrackDepths: true}
				res, err := RunLHWS(g, opt)
				if err != nil {
					t.Fatalf("%s/%v P=%d: %v", gname, policy, p, err)
				}
				assertValidExecution(t, g, res)
			}
		}
	}
}

// TestLemma2InvariantsRandomSweep audits random dags across seeds.
func TestLemma2InvariantsRandomSweep(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		g := workload.Random(workload.RandomConfig{Seed: seed, TargetVertices: 150, PHeavy: 0.35, MaxDelta: 25}).G
		_, err := RunLHWS(g, Options{Workers: 4, Seed: seed, CheckInvariants: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestVariantsValidSchedules: the §7 ablation variants must still produce
// correct schedules on every test graph.
func TestVariantsValidSchedules(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, v := range []Variant{VariantSuspendDeque, VariantResumeNewDeque} {
			for _, p := range []int{1, 2, 4} {
				res, err := RunLHWS(g, Options{Workers: p, Seed: 19, Variant: v})
				if err != nil {
					t.Fatalf("%s/%v P=%d: %v", gname, v, p, err)
				}
				assertValidExecution(t, g, res)
			}
		}
	}
}

// TestVariantSuspendDequeWastesWork: freezing the whole deque on
// suspension must cost rounds relative to the paper's design on a
// workload where suspensions strand runnable work.
func TestVariantSuspendDequeWastesWork(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 64, Delta: 200, FibWork: 5}).G
	var paper, frozen int64
	for seed := uint64(0); seed < 3; seed++ {
		a, err := RunLHWS(g, Options{Workers: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunLHWS(g, Options{Workers: 2, Seed: seed, Variant: VariantSuspendDeque})
		if err != nil {
			t.Fatal(err)
		}
		paper += a.Stats.Rounds
		frozen += b.Stats.Rounds
	}
	if frozen <= paper {
		t.Errorf("suspend-deque variant (%d rounds) not slower than paper (%d rounds)", frozen, paper)
	}
}

// TestVariantResumeNewDequeBreaksLemma7: creating a deque per resume can
// exceed the U+1 per-worker bound that the paper's recycling guarantees.
func TestVariantResumeNewDequeBreaksLemma7(t *testing.T) {
	// Server has U=1; under the paper's variant each worker owns <= 2
	// deques. The resume-new-deque variant allocates a fresh deque per
	// resumed batch; verify correctness holds, and record whether the
	// high-water mark exceeded the Lemma-7 bound (it typically does on a
	// single worker since draining lags resumption).
	g := workload.Server(workload.ServerConfig{Requests: 30, Delta: 10, FibWork: 6}).G
	res, err := RunLHWS(g, Options{Workers: 1, Seed: 3, Variant: VariantResumeNewDeque})
	if err != nil {
		t.Fatal(err)
	}
	assertValidExecution(t, g, res)
	if res.Stats.MaxDequesPerWorker <= 2 {
		t.Logf("note: resume-new-deque stayed within U+1 on this run (max %d)", res.Stats.MaxDequesPerWorker)
	}
	paper, err := RunLHWS(g, Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if paper.Stats.MaxDequesPerWorker > 2 {
		t.Errorf("paper variant violated Lemma 7: %d deques", paper.Stats.MaxDequesPerWorker)
	}
	if res.Stats.TotalDequesAllocated < paper.Stats.TotalDequesAllocated {
		t.Errorf("resume-new-deque allocated fewer deques (%d) than paper (%d)",
			res.Stats.TotalDequesAllocated, paper.Stats.TotalDequesAllocated)
	}
}

func TestVariantString(t *testing.T) {
	if VariantPaper.String() != "paper" || VariantSuspendDeque.String() != "suspend-deque" ||
		VariantResumeNewDeque.String() != "resume-new-deque" {
		t.Error("variant strings wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant empty")
	}
}

// TestPotentialTrace validates the §4 potential function on small runs:
// Φ starts at 3^(2S*−1), never exceeds its initial value, decreases on
// most rounds, and finishes at exactly zero.
func TestPotentialTrace(t *testing.T) {
	cases := []*dag.Graph{
		workload.Fib(8).G,
		workload.MapReduce(workload.MapReduceConfig{N: 8, Delta: 11, FibWork: 3}).G,
		workload.Server(workload.ServerConfig{Requests: 5, Delta: 9, FibWork: 3}).G,
		figure1Graph(t, 7),
	}
	for i, g := range cases {
		for _, p := range []int{1, 2, 4} {
			tr, err := TracePotential(g, Options{Workers: p, Seed: 23})
			if err != nil {
				t.Fatalf("case %d P=%d: %v", i, p, err)
			}
			if err := tr.CheckPotential(); err != nil {
				t.Errorf("case %d P=%d: %v (S*=%d rounds=%d incr=%d)",
					i, p, err, tr.SStar, tr.Rounds, tr.Increases)
			}
		}
	}
}

// TestPotentialDeterministicAcrossPasses: TracePotential relies on the
// seeded determinism of the simulator; the second pass must follow the
// first exactly, so the sampled round count matches the measured rounds.
func TestPotentialDeterministicAcrossPasses(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 8, Delta: 11, FibWork: 3}).G
	res, err := RunLHWS(g, Options{Workers: 2, Seed: 23, TrackDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TracePotential(g, Options{Workers: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// One sample per round plus the final boundary.
	if tr.Rounds != res.Stats.Rounds+1 {
		t.Errorf("sampled %d boundaries, want rounds+1 = %d", tr.Rounds, res.Stats.Rounds+1)
	}
}

// TestMultiprogrammedValid: executions under OS descheduling (the ABP
// multiprogrammed setting) remain correct for every availability pattern.
func TestMultiprogrammedValid(t *testing.T) {
	patterns := map[string]func(round int64) int{
		"half":     func(int64) int { return 4 },
		"one":      func(int64) int { return 1 },
		"sawtooth": func(r int64) int { return 1 + int(r%8) },
		"burst": func(r int64) int {
			if r%100 < 50 {
				return 8
			}
			return 2
		},
		"overlarge": func(int64) int { return 99 }, // clamped to P
		"zero":      func(int64) int { return 0 },  // clamped to 1
	}
	for gname, g := range testGraphs(t) {
		for pname, pat := range patterns {
			res, err := RunLHWS(g, Options{Workers: 8, Seed: 37, Available: pat})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, pname, err)
			}
			assertValidExecution(t, g, res)
		}
	}
}

// TestMultiprogrammedSlowdownProportional: with a constant grant of P/2,
// the computation should take roughly twice as long on a work-dominated
// dag (the ABP W/P_A intuition).
func TestMultiprogrammedSlowdownProportional(t *testing.T) {
	g := workload.Fib(14).G
	full, err := RunLHWS(g, Options{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	half, err := RunLHWS(g, Options{Workers: 8, Seed: 5, Available: func(int64) int { return 4 }})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(half.Stats.Rounds) / float64(full.Stats.Rounds)
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("half availability slowdown %.2f, want ~2 (rounds %d vs %d)",
			ratio, half.Stats.Rounds, full.Stats.Rounds)
	}
	if half.Stats.DescheduledRounds == 0 {
		t.Error("no descheduled rounds recorded")
	}
	if full.Stats.DescheduledRounds != 0 {
		t.Error("dedicated run recorded descheduled rounds")
	}
}

// TestMultiprogrammedDeterministic: availability patterns keep seeded
// determinism.
func TestMultiprogrammedDeterministic(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 16, Delta: 21, FibWork: 3}).G
	pat := func(r int64) int { return 1 + int(r%4) }
	a, err := RunLHWS(g, Options{Workers: 4, Seed: 9, Available: pat})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLHWS(g, Options{Workers: 4, Seed: 9, Available: pat})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("multiprogrammed runs diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// alignedResumeGraph builds a chain u_0..u_{k-1} where u_i suspends a
// child with latency D−i, so all k children resume in the same round and
// the scheduler must inject a k-leaf pfor tree (Figure 3, lines 7-14).
func alignedResumeGraph(t *testing.T, k int, d int64) *dag.Graph {
	t.Helper()
	if int64(k) >= d {
		t.Fatal("need D > k for aligned resumes")
	}
	b := dag.NewBuilder()
	us := make([]dag.VertexID, k)
	cs := make([]dag.VertexID, k)
	for i := 0; i < k; i++ {
		us[i] = b.Vertex("")
		if i > 0 {
			// continuation edge added after the heavy edge of u_{i-1}, so
			// the heavy child is the right child and the chain the left...
		}
	}
	for i := 0; i < k; i++ {
		cs[i] = b.Vertex("")
	}
	for i := 0; i < k; i++ {
		if i+1 < k {
			b.Light(us[i], us[i+1]) // left: continuation
		}
		b.Heavy(us[i], cs[i], d-int64(i)) // right: suspending child
	}
	acc := us[k-1]
	for i := k - 1; i >= 0; i-- {
		acc = b.Join(cs[i], acc)
	}
	return b.MustGraph()
}

// TestPforTreeInjection: k children resuming simultaneously to one deque
// must be re-injected through a pfor tree with exactly k−1 internal
// vertices on a single worker, and the computation must stay correct.
func TestPforTreeInjection(t *testing.T) {
	for _, k := range []int{2, 3, 7, 16, 33} {
		g := alignedResumeGraph(t, k, 100)
		res, err := RunLHWS(g, Options{Workers: 1, Seed: 1, CheckInvariants: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		assertValidExecution(t, g, res)
		if res.Stats.PforWork != int64(k-1) {
			t.Errorf("k=%d: PforWork = %d, want %d (one batch, binary tree internals)",
				k, res.Stats.PforWork, k-1)
		}
		if res.Stats.MaxSuspended != k {
			t.Errorf("k=%d: MaxSuspended = %d, want %d", k, res.Stats.MaxSuspended, k)
		}
	}
}

// TestPforTreeParallel: the same aligned workload across worker counts and
// policies still executes correctly (batches may split across deques).
func TestPforTreeParallel(t *testing.T) {
	g := alignedResumeGraph(t, 24, 200)
	for _, p := range []int{2, 4, 8} {
		res, err := RunLHWS(g, Options{Workers: p, Seed: 3, CheckInvariants: true})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		assertValidExecution(t, g, res)
	}
}

// TestGoldenDeterminism pins exact statistics for fixed seeds: any change
// to scheduling order, RNG consumption, or tie-breaking shows up here.
// If a deliberate algorithm change alters these values, regenerate them
// and note the change in the commit.
func TestGoldenDeterminism(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 24, Delta: 31, FibWork: 4}).G
	golden := []struct {
		p                                  int
		lhRounds, lhSteals, lhSwitch, pfor int64
		wsRounds, grRounds                 int64
	}{
		{1, 406, 23, 1, 0, 1102, 382},
		{3, 155, 77, 4, 0, 373, 150},
		{7, 99, 294, 11, 0, 188, 86},
	}
	for _, want := range golden {
		lh, err := RunLHWS(g, Options{Workers: want.p, Seed: 2016})
		if err != nil {
			t.Fatal(err)
		}
		ws, err := RunWS(g, Options{Workers: want.p, Seed: 2016})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := RunGreedy(g, want.p)
		if err != nil {
			t.Fatal(err)
		}
		got := [5]int64{lh.Stats.Rounds, lh.Stats.StealAttempts, lh.Stats.Switches, lh.Stats.PforWork, ws.Stats.Rounds}
		wantArr := [5]int64{want.lhRounds, want.lhSteals, want.lhSwitch, want.pfor, want.wsRounds}
		if got != wantArr {
			t.Errorf("P=%d: golden stats drifted: got %v, want %v", want.p, got, wantArr)
		}
		if gr.Stats.Rounds != want.grRounds {
			t.Errorf("P=%d: greedy rounds %d, want %d", want.p, gr.Stats.Rounds, want.grRounds)
		}
	}
}

// figure6Graph builds the example dag of the paper's Figure 6(a): 14
// vertices, two heavy edges (2→4 with weight 42, 5→9), used there to
// illustrate enabling-tree construction.
func figure6Graph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder()
	ids := make([]dag.VertexID, 15) // 1-indexed like the figure
	for i := 1; i <= 14; i++ {
		ids[i] = b.Vertex(fmt.Sprintf("%d", i))
	}
	light := func(u, v int) { b.Light(ids[u], ids[v]) }
	// Spine 1-2-3 forks; heavy edges feed 4 and 9; components rejoin at 14
	// (edges reconstructed from the figure's layout).
	light(1, 2)
	light(2, 3)
	b.Heavy(ids[2], ids[4], 42) // the δ=42 edge drawn in the figure
	light(3, 5)
	light(3, 6)
	b.Heavy(ids[5], ids[9], 10)
	light(5, 10)
	light(4, 7)
	light(4, 8)
	light(7, 11)
	light(8, 13)
	light(11, 13)
	light(6, 12)
	light(9, 12)
	light(10, 14)
	light(13, 14)
	light(12, 14)
	g, err := b.Graph()
	if err != nil {
		t.Skipf("figure-6 reconstruction not a valid restricted dag: %v", err)
	}
	return g
}

// TestFigure6EnablingTree runs the Figure-6 dag and checks the quantities
// §4.1 derives from it: U = 2 (both heavy edges can cross one prefix) and
// the enabling span within the Corollary-1 bound, with the Lemma-2
// auditor active.
func TestFigure6EnablingTree(t *testing.T) {
	g := figure6Graph(t)
	if got := g.SuspensionWidth(); got != 2 {
		t.Fatalf("U = %d, want 2", got)
	}
	for _, p := range []int{1, 2, 3} {
		res, err := RunLHWS(g, Options{Workers: p, Seed: 14, TrackDepths: true, CheckInvariants: true})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		assertValidExecution(t, g, res)
		bound := int64(4 * float64(g.Span()) * 2) // 4·S·(1+lg 2)
		if res.Stats.EnablingSpan > bound {
			t.Errorf("P=%d: S* = %d > %d", p, res.Stats.EnablingSpan, bound)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Rounds: 10, UserWork: 5, StealAttempts: 3, StealSuccesses: 1}
	str := s.String()
	for _, want := range []string{"rounds=10", "work=5", "steals=1/3"} {
		if !strings.Contains(str, want) {
			t.Errorf("Stats.String missing %q: %s", want, str)
		}
	}
}
