package sched

import (
	"errors"
	"testing"

	"lhws/internal/dag"
	"lhws/internal/workload"
)

// TestSingleVertexAllSchedulers: the smallest dag completes in one round
// of work for every scheduler at every P.
func TestSingleVertexAllSchedulers(t *testing.T) {
	b := dag.NewBuilder()
	b.Vertex("only")
	g := b.MustGraph()
	for rname, run := range runners() {
		for _, p := range []int{1, 2, 16} {
			res, err := run(g, Options{Workers: p, Seed: 1})
			if err != nil {
				t.Fatalf("%s P=%d: %v", rname, p, err)
			}
			if res.Stats.UserWork != 1 || res.ExecRound[0] != 0 {
				t.Errorf("%s P=%d: root not executed in round 0", rname, p)
			}
		}
	}
}

// TestTwoVertexHeavyEdge: the minimal latency dag — root --δ--> final —
// must take at least δ rounds on every scheduler.
func TestTwoVertexHeavyEdge(t *testing.T) {
	b := dag.NewBuilder()
	u := b.Vertex("")
	v := b.Vertex("")
	b.Heavy(u, v, 17)
	g := b.MustGraph()
	for rname, run := range runners() {
		res, err := run(g, Options{Workers: 4, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", rname, err)
		}
		if res.ExecRound[v]-res.ExecRound[u] < 17 {
			t.Errorf("%s: latency not respected: %d", rname, res.ExecRound[v]-res.ExecRound[u])
		}
		if res.Stats.Rounds < 18 {
			t.Errorf("%s: rounds %d < 18", rname, res.Stats.Rounds)
		}
	}
}

// TestWideFork: a maximal-breadth fork tree saturates all workers; rounds
// must approach W/P for large P on the pure-compute part.
func TestWideFork(t *testing.T) {
	g := workload.Fib(15).G
	r16, err := RunLHWS(g, Options{Workers: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lower := g.Work() / 16
	if r16.Stats.Rounds < lower {
		t.Fatalf("rounds %d below the work lower bound %d", r16.Stats.Rounds, lower)
	}
	if r16.Stats.Rounds > 4*lower+g.Span() {
		t.Errorf("rounds %d far above W/P=%d: poor load balance", r16.Stats.Rounds, lower)
	}
}

// TestManyMoreWorkersThanWork: P far beyond the dag's parallelism must
// still terminate promptly (idle workers just fail steals).
func TestManyMoreWorkersThanWork(t *testing.T) {
	g := chainGraph(t, 10)
	for rname, run := range runners() {
		res, err := run(g, Options{Workers: 64, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", rname, err)
		}
		if res.Stats.Rounds < 10 || res.Stats.Rounds > 13 {
			t.Errorf("%s: chain of 10 took %d rounds on 64 workers", rname, res.Stats.Rounds)
		}
	}
}

// TestDequeRecyclingBoundsAllocation: on the server workload (U=1), total
// deques ever allocated must stay small — recycling via emptyDeques
// (Figure 5) keeps allocation proportional to workers, not to suspensions.
func TestDequeRecyclingBoundsAllocation(t *testing.T) {
	g := workload.Server(workload.ServerConfig{Requests: 50, Delta: 20, FibWork: 4}).G
	res, err := RunLHWS(g, Options{Workers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 50 suspensions/resumptions, yet allocation should be ~P·(U+1), far
	// below one deque per resume.
	if res.Stats.TotalDequesAllocated > 4*4 {
		t.Errorf("allocated %d deques for 50 resumes on 4 workers; recycling broken",
			res.Stats.TotalDequesAllocated)
	}
}

// TestMaxRoundsDefaultSufficient: the default MaxRounds never trips on
// legitimate executions, even degenerate ones.
func TestMaxRoundsDefaultSufficient(t *testing.T) {
	// Worst case for the default bound: huge latency, tiny work.
	b := dag.NewBuilder()
	u := b.Vertex("")
	v := b.Vertex("")
	b.Heavy(u, v, 1_000_000)
	g := b.MustGraph()
	res, err := RunLHWS(g, Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds < 1_000_000 {
		t.Fatal("latency skipped")
	}
}

// TestTracerWithVariants: tracing composes with the §7 variants without
// perturbing the execution.
func TestTracerWithVariants(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 16, Delta: 19, FibWork: 3}).G
	for _, v := range []Variant{VariantPaper, VariantSuspendDeque, VariantResumeNewDeque} {
		plain, err := RunLHWS(g, Options{Workers: 3, Seed: 6, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		tr := &countingTracer{}
		traced, err := RunLHWS(g, Options{Workers: 3, Seed: 6, Variant: v, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Stats != traced.Stats {
			t.Errorf("variant %v: tracer changed execution", v)
		}
		if tr.n == 0 {
			t.Errorf("variant %v: tracer never called", v)
		}
	}
}

type countingTracer struct{ n int64 }

func (c *countingTracer) Record(round int64, worker int, a Action) { c.n++ }

// TestStealSuccessesNeverExceedAttempts and other stat sanity relations.
func TestStatsSanityRelations(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for rname, run := range runners() {
			res, err := run(g, Options{Workers: 5, Seed: 8})
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if s.StealSuccesses > s.StealAttempts {
				t.Errorf("%s/%s: successes %d > attempts %d", gname, rname, s.StealSuccesses, s.StealAttempts)
			}
			if s.Rounds <= 0 || s.UserWork != g.Work() {
				t.Errorf("%s/%s: rounds %d work %d", gname, rname, s.Rounds, s.UserWork)
			}
			if s.MaxSuspended < 0 || s.MaxDequesPerWorker < 0 {
				t.Errorf("%s/%s: negative high-water marks", gname, rname)
			}
		}
	}
}

// TestExecRoundsWithinTotal: no vertex executes at or after Stats.Rounds.
func TestExecRoundsWithinTotal(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 20, Delta: 23, FibWork: 3}).G
	for rname, run := range runners() {
		res, err := run(g, Options{Workers: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for v, r := range res.ExecRound {
			if r >= res.Stats.Rounds {
				t.Fatalf("%s: vertex %d executed at round %d >= total %d", rname, v, r, res.Stats.Rounds)
			}
		}
	}
}

// TestInvariantErrorWrapped: invariant failures (if ever manufactured)
// surface as ErrInvariant. We can't trigger a real violation on a correct
// scheduler, so verify the error identity plumbing via ErrRoundLimit,
// which shares the same return path.
func TestErrorIdentities(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 8, Delta: 100, FibWork: 2}).G
	_, err := RunLHWS(g, Options{Workers: 1, Seed: 1, MaxRounds: 5})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v", err)
	}
	if errors.Is(err, ErrInvariant) || errors.Is(err, ErrStuck) {
		t.Fatal("error identities conflated")
	}
}

// TestFigure4Scenario reconstructs the state illustrated in the paper's
// Figure 4 — multiple workers, one with several deques, suspended vertices
// pending — and checks the scheduler drains it correctly. The dag gives
// worker-visible structure: three parallel branches that each suspend.
func TestFigure4Scenario(t *testing.T) {
	b := dag.NewBuilder()
	root := b.Vertex("root")
	var exits []dag.VertexID
	entries := make([]dag.VertexID, 3)
	for i := 0; i < 3; i++ {
		get := b.Vertex("get")
		work, workEnd := b.Chain(dag.None, 4)
		b.Heavy(get, work, int64(10+i*7))
		entries[i] = get
		exits = append(exits, workEnd)
	}
	// Spawn tree for the three branches.
	f1 := b.Vertex("")
	b.Light(root, f1)
	b.Light(root, entries[2])
	b.Light(f1, entries[0])
	b.Light(f1, entries[1])
	acc := exits[0]
	for _, e := range exits[1:] {
		acc = b.Join(acc, e)
	}
	g := b.MustGraph()
	if g.SuspensionWidth() != 3 {
		t.Fatalf("U = %d, want 3", g.SuspensionWidth())
	}
	for _, p := range []int{1, 2, 3} {
		res, err := RunLHWS(g, Options{Workers: p, Seed: 10, CheckInvariants: true})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		assertValidExecution(t, g, res)
		if res.Stats.MaxSuspended != 3 {
			t.Errorf("P=%d: MaxSuspended = %d, want 3 (all branches overlap)", p, res.Stats.MaxSuspended)
		}
	}
}
