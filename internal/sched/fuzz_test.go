package sched

import (
	"testing"

	"lhws/internal/dag"
	"lhws/internal/workload"
)

// FuzzSchedulersAgree generates a random weighted dag and runs all three
// schedulers plus the §7 variants over it: every run must complete every
// vertex while respecting dependencies and latencies, LHWS must satisfy
// the Lemma-2 invariants, and the structural bounds (Lemma 7, suspension
// width) must hold.
func FuzzSchedulersAgree(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(60), uint8(2))
	f.Add(uint64(7), uint8(200), uint8(120), uint8(5))
	f.Add(uint64(42), uint8(10), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, sizeRaw, pHeavyRaw, pRaw uint8) {
		g := workload.Random(workload.RandomConfig{
			Seed:           seed,
			TargetVertices: 1 + int(sizeRaw),
			PHeavy:         float64(pHeavyRaw) / 255,
			MaxDelta:       25,
		}).G
		p := 1 + int(pRaw)%8
		u := g.SuspensionWidth()

		check := func(name string, res *Result, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Stats.UserWork != g.Work() {
				t.Fatalf("%s: executed %d of %d", name, res.Stats.UserWork, g.Work())
			}
			for v := 0; v < g.NumVertices(); v++ {
				for _, e := range g.OutEdges(dag.VertexID(v)) {
					if res.ExecRound[e.To] < res.ExecRound[v]+e.Weight {
						t.Fatalf("%s: edge %d->%d latency violated", name, v, e.To)
					}
				}
			}
			if res.Stats.MaxSuspended > u {
				t.Fatalf("%s: MaxSuspended %d > U %d", name, res.Stats.MaxSuspended, u)
			}
		}

		lh, err := RunLHWS(g, Options{Workers: p, Seed: seed, CheckInvariants: true})
		check("lhws", lh, err)
		if lh.Stats.MaxDequesPerWorker > u+1 {
			t.Fatalf("Lemma 7 violated: %d deques, U=%d", lh.Stats.MaxDequesPerWorker, u)
		}
		opt, err := RunLHWS(g, Options{Workers: p, Seed: seed, Policy: StealWorkerThenDeque})
		check("lhws-opt", opt, err)
		frozen, err := RunLHWS(g, Options{Workers: p, Seed: seed, Variant: VariantSuspendDeque})
		check("lhws-frozen", frozen, err)
		nd, err := RunLHWS(g, Options{Workers: p, Seed: seed, Variant: VariantResumeNewDeque})
		check("lhws-newdeq", nd, err)
		ws, err := RunWS(g, Options{Workers: p, Seed: seed})
		check("ws", ws, err)
		gr, err := RunGreedy(g, p)
		check("greedy", gr, err)
		if gr.Stats.Rounds > GreedyBound(g, p) {
			t.Fatalf("greedy exceeded Theorem-1 bound: %d > %d", gr.Stats.Rounds, GreedyBound(g, p))
		}
	})
}
