// Package sched implements the paper's primary contribution: the
// latency-hiding work-stealing (LHWS) scheduler of Muller & Acar
// (SPAA 2016), alongside the baselines it is evaluated against.
//
// Three schedulers execute weighted computation dags (package dag) on P
// simulated workers in discrete, synchronous rounds, each round costing one
// unit of time per worker — the cost model under which the paper states its
// bounds:
//
//   - RunLHWS: the Figure-3 algorithm. Each worker owns a growable
//     collection of deques, one active at a time. A vertex enabled over a
//     heavy edge suspends and is paired with the active deque; a callback
//     fires when its latency expires, and resumed vertices are re-injected
//     in bulk through pfor trees pushed onto the owning deque. Thieves
//     target a uniformly random deque (not worker) and start a fresh deque
//     on success. Expected time O(W/P + S·U·(1+lg U)).
//
//   - RunWS: standard non-preemptive work stealing. A latency-incurring
//     operation blocks its worker for the full latency — the worker
//     busy-waits, hiding nothing — which is the baseline labeled "WS" in
//     the paper's Figure 11.
//
//   - RunGreedy: the offline greedy scheduler of Theorem 1, which executes
//     as many ready vertices as possible each round and achieves length
//     ≤ W/P + S on weighted dags.
//
// All schedulers are deterministic given Options.Seed, making experiments
// and regression tests reproducible.
package sched

import (
	"errors"
	"fmt"

	"lhws/internal/dag"
)

// StealPolicy selects how thieves pick victims in RunLHWS.
type StealPolicy int

const (
	// StealRandomDeque is the paper's analyzed policy: the victim deque is
	// chosen uniformly at random from all deques ever allocated (freed
	// deques included, so some attempts fail by construction).
	StealRandomDeque StealPolicy = iota
	// StealWorkerThenDeque is the implementation policy of §6: pick a
	// random victim worker, then a random deque among that worker's ready
	// (and active) deques, reducing failed steals.
	StealWorkerThenDeque
)

func (p StealPolicy) String() string {
	switch p {
	case StealRandomDeque:
		return "random-deque"
	case StealWorkerThenDeque:
		return "worker-then-deque"
	default:
		return fmt.Sprintf("StealPolicy(%d)", int(p))
	}
}

// Options configures a simulated execution.
type Options struct {
	// Workers is P, the number of simulated workers. Must be ≥ 1.
	Workers int
	// Seed drives all randomized decisions. Runs with equal seeds and
	// options are bit-for-bit identical.
	Seed uint64
	// Policy selects the steal-victim policy (LHWS only).
	Policy StealPolicy
	// MaxRounds aborts runaway executions. Zero selects a generous default
	// derived from the dag's work and total latency.
	MaxRounds int64
	// TrackDepths enables enabling-tree depth accounting (Lemma 2), needed
	// for Result.EnablingSpan. Costs a little memory per vertex.
	TrackDepths bool
	// Tracer, when non-nil, receives one Action per worker per round.
	// Tracing a long execution is memory-heavy; see internal/trace for
	// collectors.
	Tracer Tracer
	// CheckInvariants audits the analysis invariants of Lemma 2 (enabling
	// depth bound and deque depth ordering) every round, aborting with
	// ErrInvariant on the first violation. LHWS only; costs O(queue
	// contents) per round.
	CheckInvariants bool
	// Variant selects the suspension-handling strategy (LHWS only); the
	// non-default variants implement the prior multi-deque designs the
	// paper's related work (§7) contrasts against.
	Variant Variant
	// Available, when non-nil, simulates a multiprogrammed environment
	// (the Arora–Blumofe–Plaxton setting the paper's dedicated-environment
	// analysis simplifies): it returns how many of the P workers the OS
	// grants in a given round (clamped to [1, Workers]); the scheduler
	// picks which workers run uniformly at random. Latency timers keep
	// running while workers are descheduled, as real I/O would. The
	// function must be deterministic in its argument for runs to be
	// reproducible. LHWS only.
	Available func(round int64) int
}

// Variant selects how RunLHWS handles suspension and resumption, enabling
// ablations against the prior multi-deque designs discussed in §7
// (Spoonhower's dissertation variants).
type Variant int8

const (
	// VariantPaper is the paper's algorithm: a suspended vertex is paired
	// with the active deque, which remains stealable; resumed vertices
	// return to their deque; new deques are created only on steals.
	VariantPaper Variant = iota
	// VariantSuspendDeque suspends the entire active deque when a vertex
	// suspends: its remaining items are frozen (not stealable, not
	// runnable) until a suspended vertex resumes. This is the "suspend the
	// whole deque" design §7 contrasts; it wastes the frozen work.
	VariantSuspendDeque
	// VariantResumeNewDeque creates a fresh deque for every resumed batch
	// instead of returning it to its original deque — the "new deque on
	// resume" design of §7. It breaks the U+1 deque bound of Lemma 7.
	VariantResumeNewDeque
)

func (v Variant) String() string {
	switch v {
	case VariantPaper:
		return "paper"
	case VariantSuspendDeque:
		return "suspend-deque"
	case VariantResumeNewDeque:
		return "resume-new-deque"
	default:
		return fmt.Sprintf("Variant(%d)", int8(v))
	}
}

// Action describes what one worker did in one round, for tracing.
type Action int8

// Worker actions recorded by a Tracer. They correspond to the token
// buckets of Lemma 1 (work, switch, steal) plus the baseline's blocked
// state and the idle state.
const (
	ActionIdle      Action = iota // no action available (greedy/WS only)
	ActionWork                    // executed a dag vertex
	ActionPfor                    // executed a pfor-tree internal vertex
	ActionSwitch                  // switched to another ready deque
	ActionStealHit                // steal attempt that obtained a vertex
	ActionStealMiss               // steal attempt that found nothing
	ActionBlocked                 // busy-waiting on latency (WS baseline)
)

// String returns a single-character mnemonic used by timeline renderings.
func (a Action) String() string {
	switch a {
	case ActionIdle:
		return "."
	case ActionWork:
		return "W"
	case ActionPfor:
		return "F"
	case ActionSwitch:
		return "C"
	case ActionStealHit:
		return "S"
	case ActionStealMiss:
		return "s"
	case ActionBlocked:
		return "B"
	default:
		return "?"
	}
}

// Tracer receives per-round, per-worker actions from a simulated
// execution. Implementations must be cheap; they are called on the hot
// path of the round loop.
type Tracer interface {
	Record(round int64, worker int, a Action)
}

func (o *Options) withDefaults(g *dag.Graph) (Options, error) {
	opt := *o
	if opt.Workers < 1 {
		return opt, fmt.Errorf("sched: Workers must be >= 1, got %d", opt.Workers)
	}
	if opt.MaxRounds == 0 {
		// Every round places at least one token per worker; W work, all
		// latency serialized, plus slack for steal-heavy executions.
		opt.MaxRounds = 100*g.Work() + 10*g.TotalLatency() + 100_000
	}
	return opt, nil
}

// ErrRoundLimit is returned when an execution exceeds Options.MaxRounds.
var ErrRoundLimit = errors.New("sched: execution exceeded MaxRounds")

// ErrStuck is returned when no worker can make progress yet unexecuted
// vertices remain — impossible on a validated dag and indicative of a
// scheduler bug if ever observed.
var ErrStuck = errors.New("sched: no runnable work but computation incomplete")

// ErrInvariant wraps Lemma-2 invariant violations reported when
// Options.CheckInvariants is set.
var ErrInvariant = errors.New("sched: analysis invariant violated")

// Stats aggregates counters from one execution.
type Stats struct {
	// Rounds is the schedule length in scheduler rounds (the paper's time
	// measure: each round, each worker takes one action).
	Rounds int64
	// UserWork counts executed dag vertices (= W on success).
	UserWork int64
	// PforWork counts executed synthetic pfor-tree internal vertices
	// (LHWS only); Lemma 1 bounds UserWork+PforWork ≤ 2W.
	PforWork int64
	// Switches counts deque switches (LHWS only).
	Switches int64
	// StealAttempts counts all steal attempts, successful or not.
	StealAttempts int64
	// StealSuccesses counts steals that obtained a vertex.
	StealSuccesses int64
	// BlockedRounds counts worker-rounds spent blocked on latency
	// (WS baseline only: the latency the baseline fails to hide).
	BlockedRounds int64
	// IdleRounds counts worker-rounds with no action available.
	IdleRounds int64
	// DescheduledRounds counts worker-rounds lost to the simulated OS in
	// multiprogrammed runs (Options.Available).
	DescheduledRounds int64
	// MaxSuspended is the high-water mark of simultaneously suspended
	// vertices (observed suspension width; ≤ U by Definition 1).
	MaxSuspended int
	// MaxDequesPerWorker is the high-water mark of live (allocated,
	// non-freed) deques owned by any single worker; Lemma 7 bounds it by
	// U+1 under LHWS.
	MaxDequesPerWorker int
	// TotalDequesAllocated counts deques ever created (recycled deques are
	// counted once).
	TotalDequesAllocated int
	// EnablingSpan is S*, the depth of the deepest executed vertex in the
	// enabling tree (only when Options.TrackDepths; Corollary 1 bounds it
	// by O(S(1+lg U))).
	EnablingSpan int64
}

// String renders the stats as a compact single line for logs and CLIs.
func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d work=%d pfor=%d switches=%d steals=%d/%d blocked=%d maxSusp=%d maxDeques=%d",
		s.Rounds, s.UserWork, s.PforWork, s.Switches, s.StealSuccesses, s.StealAttempts,
		s.BlockedRounds, s.MaxSuspended, s.MaxDequesPerWorker)
}

// Result is the outcome of one simulated execution.
type Result struct {
	Stats Stats
	// ExecRound records, per dag vertex, the round in which it executed.
	// Used by tests to assert dependency and latency correctness.
	ExecRound []int64
}

// Speedup returns t1Rounds / r.Stats.Rounds: the speedup of this run
// relative to a reference single-worker round count.
func (r *Result) Speedup(t1Rounds int64) float64 {
	return float64(t1Rounds) / float64(r.Stats.Rounds)
}

// node is a unit of schedulable work held in deques: either a dag vertex or
// a synthetic pfor-tree vertex covering a range of resumed entries.
type node struct {
	// v is the dag vertex when pfor == nil.
	v dag.VertexID
	// pfor, when non-nil, makes this a pfor-tree internal vertex covering
	// entries[lo:hi) of the resumed batch.
	pfor   []resumedEntry
	lo, hi int
	// depth is the node's depth in the enabling tree (TrackDepths only).
	depth int64
	// addedRound is the round the node was pushed onto its deque, used for
	// the auxiliary-chain depth accounting of Lemma 2.
	addedRound int64
}

// resumedEntry is a suspended vertex that has become ready, waiting to be
// re-injected via a pfor tree.
type resumedEntry struct {
	v     dag.VertexID
	depth int64 // enabling depth the vertex would have had (parent+1)
}

// dequeState tracks the lifecycle of Figure 2.
type dequeState int8

const (
	dqActive dequeState = iota
	dqReady
	dqSuspended
	dqFreed
)

// ldeque is the simulator's deque: a plain slice (index 0 = top, end =
// bottom) plus the suspension bookkeeping of Table 1. The round-based
// engine serializes all access, so no synchronization is needed; the
// lock-free deque of internal/deque backs the real runtime instead.
type ldeque struct {
	id           int
	owner        int
	items        []*node
	state        dequeState
	suspendCtr   int
	resumed      []resumedEntry
	inResumedSet bool
	// frozen marks a deque whose items are unavailable until a resume
	// (VariantSuspendDeque only).
	frozen bool
	// lastExecDepth/lastExecRound record the last node executed from this
	// deque, for pfor-root depth accounting when the deque is empty.
	lastExecDepth int64
	lastExecRound int64
}

//lhws:nonblocking
func (q *ldeque) pushBottom(n *node) { q.items = append(q.items, n) }

//lhws:nonblocking
func (q *ldeque) empty() bool { return len(q.items) == 0 }

//lhws:nonblocking
func (q *ldeque) popBottom() *node {
	if len(q.items) == 0 {
		return nil
	}
	n := q.items[len(q.items)-1]
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return n
}

//lhws:nonblocking
func (q *ldeque) popTop() *node {
	if len(q.items) == 0 {
		return nil
	}
	n := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return n
}
