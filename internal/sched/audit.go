package sched

import (
	"fmt"
	"math"

	"lhws/internal/dag"
)

// auditor checks, during an LHWS execution, the executable invariants of
// the paper's analysis (Lemma 2):
//
//   - Condition 1: every executed dag vertex sits at enabling-tree depth
//     d(v) ≤ (2 + lg U)·dG(v) (plus a small additive slack for the pfor
//     batch of its resume, bounded by lg U + 1). This is the per-vertex
//     form of Corollary 1.
//
//   - Condition 5: within every deque, enabling-tree depths strictly
//     decrease from bottom to top, and the assigned vertex is at least as
//     deep as the bottom of its deque. This ordering is what makes deques
//     "top-heavy" (Lemma 3): with weights w = S*−d strictly increasing
//     toward the top, the top vertex carries at least
//     1 − Σ_{k≥1} 9^{-k} = 7/8 ≥ 2/3 of the deque's item potential.
//
// The full potential-function argument (Lemmas 4 and 5) additionally uses
// the extra potential φᴱ of suspended deques, whose exact bookkeeping
// lives in the companion technical report; the two conditions above are
// the parts of the argument observable from the scheduler state alone.
//
// Auditing costs O(total deque contents) per round; enable it in tests and
// experiments, not in performance measurements.
type auditor struct {
	dG     []int64
	factor float64 // 2 + lg(max(U,1))
	slack  float64 // lg(max(U,1)) + 2, pfor-batch and rounding slack
	err    error
}

func newAuditor(g *dag.Graph) *auditor {
	u := g.SuspensionWidth()
	lg := 0.0
	if u > 1 {
		lg = math.Log2(float64(u))
	}
	return &auditor{
		dG:     g.Depths(),
		factor: 2 + lg,
		slack:  lg + 2,
	}
}

// recordExec checks Lemma 2 condition 1 for a dag vertex executing at
// enabling depth d.
//
//lhws:nonblocking
func (a *auditor) recordExec(v dag.VertexID, d int64) {
	if a.err != nil {
		return
	}
	bound := a.factor*float64(a.dG[v]) + a.slack
	if float64(d) > bound {
		a.err = fmt.Errorf("sched: Lemma 2(1) violated: vertex %d at enabling depth %d > (2+lgU)·dG+slack = %.1f (dG=%d)",
			v, d, bound, a.dG[v])
	}
}

// checkRound verifies Lemma 2 condition 5 over all deques at a round
// boundary.
func (a *auditor) checkRound(s *lhwsSim) {
	if a.err != nil {
		return
	}
	for _, q := range s.gDeques {
		if q.state == dqFreed {
			continue
		}
		// items[0] is the top; depths must strictly increase toward the
		// bottom (end of slice).
		for i := 1; i < len(q.items); i++ {
			if q.items[i].depth <= q.items[i-1].depth {
				a.err = fmt.Errorf("sched: Lemma 2(5) violated in deque %d: depth %d at position %d not above %d below it (round %d)",
					q.id, q.items[i-1].depth, i-1, q.items[i].depth, s.round)
				return
			}
		}
	}
	for _, w := range s.workers {
		if w.assigned == nil || w.active == nil || len(w.active.items) == 0 {
			continue
		}
		bottom := w.active.items[len(w.active.items)-1]
		if w.assigned.depth < bottom.depth {
			a.err = fmt.Errorf("sched: Lemma 2(5) violated: worker %d assigned depth %d above its deque bottom %d (round %d)",
				w.id, w.assigned.depth, bottom.depth, s.round)
			return
		}
	}
}
