package sched

import (
	"lhws/internal/dag"
	"lhws/internal/rng"
)

// RunWS executes the dag with standard (non-latency-hiding) work stealing:
// one deque per worker, random-worker steals, and — the defining property
// of the baseline in the paper's Figure 11 — blocking latency handling.
// When an executed vertex enables a child over a heavy edge, the worker
// busy-waits for the full latency and then continues with that child, as a
// conventional runtime does when a task performs synchronous I/O. The
// blocked worker's deque remains stealable by others.
func RunWS(g *dag.Graph, opt Options) (*Result, error) {
	o, err := opt.withDefaults(g)
	if err != nil {
		return nil, err
	}
	s := newWSSim(g, o)
	return s.run()
}

type wsWorker struct {
	id       int
	rnd      *rng.RNG
	deque    *ldeque
	assigned *node
	// blockedUntil is the first round at which the worker may run again;
	// while round < blockedUntil the worker busy-waits on pending latency.
	blockedUntil int64
	// pending holds suspended children awaiting blockedUntil (at most two:
	// a vertex has out-degree ≤ 2).
	pending []dag.VertexID
}

type wsSim struct {
	g   *dag.Graph
	opt Options

	round     int64
	joinLeft  []int32
	execRound []int64
	remaining int64

	workers      []*wsWorker
	curSuspended int
	queuedItems  int64
	stats        Stats
	rnd          *rng.RNG
}

func newWSSim(g *dag.Graph, opt Options) *wsSim {
	n := g.NumVertices()
	s := &wsSim{
		g:         g,
		opt:       opt,
		joinLeft:  make([]int32, n),
		execRound: make([]int64, n),
		remaining: int64(n),
		rnd:       rng.New(opt.Seed),
	}
	for v := 0; v < n; v++ {
		s.joinLeft[v] = int32(g.InDegree(dag.VertexID(v)))
		s.execRound[v] = -1
	}
	s.workers = make([]*wsWorker, opt.Workers)
	for i := range s.workers {
		s.workers[i] = &wsWorker{id: i, rnd: s.rnd.Split(), deque: &ldeque{id: i, owner: i}}
	}
	s.workers[0].assigned = &node{v: g.Root()}
	s.stats.TotalDequesAllocated = opt.Workers
	s.stats.MaxDequesPerWorker = 1
	return s
}

func (s *wsSim) run() (*Result, error) {
	p := len(s.workers)
	hadAssigned := make([]bool, p)
	perm := make([]int, p)
	for s.remaining > 0 {
		if s.round >= s.opt.MaxRounds {
			return nil, ErrRoundLimit
		}
		executed := false
		for i, w := range s.workers {
			// A blocked worker whose latency expires this round resumes
			// its pending child now.
			if w.assigned == nil && len(w.pending) > 0 && s.round >= w.blockedUntil {
				w.assigned = &node{v: w.pending[len(w.pending)-1]}
				w.pending = w.pending[:len(w.pending)-1]
				s.curSuspended--
			}
			hadAssigned[i] = w.assigned != nil && s.round >= w.blockedUntil
			executed = executed || hadAssigned[i]
		}
		for i, w := range s.workers {
			if hadAssigned[i] {
				s.executeStep(w)
				if s.opt.Tracer != nil {
					s.opt.Tracer.Record(s.round, w.id, ActionWork)
				}
			} else if w.blockedUntil > s.round {
				s.stats.BlockedRounds++
				if s.opt.Tracer != nil {
					s.opt.Tracer.Record(s.round, w.id, ActionBlocked)
				}
			}
		}
		if s.remaining == 0 {
			s.round++
			break
		}
		for i := range perm {
			perm[i] = i
		}
		s.rnd.Shuffle(p, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, i := range perm {
			w := s.workers[i]
			if !hadAssigned[i] && w.blockedUntil <= s.round {
				s.acquireStep(w)
			}
		}
		s.round++

		if !executed && s.queuedItems == 0 && s.remaining > 0 && s.noPendingLatency() {
			return nil, ErrStuck
		}
	}
	s.stats.Rounds = s.round
	return &Result{Stats: s.stats, ExecRound: s.execRound}, nil
}

func (s *wsSim) noPendingLatency() bool {
	for _, w := range s.workers {
		if len(w.pending) > 0 || w.assigned != nil {
			return false
		}
	}
	return true
}

func (s *wsSim) executeStep(w *wsWorker) {
	n := w.assigned
	w.assigned = nil
	v := n.v
	if s.execRound[v] >= 0 {
		panic("sched: vertex executed twice (scheduler bug)")
	}
	s.execRound[v] = s.round
	s.stats.UserWork++
	s.remaining--

	edges := s.g.OutEdges(v)
	// Handle the right child (spawned thread) first, then the left
	// (continuation), matching the push order of the LHWS engine so the
	// two schedulers differ only in latency handling.
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		s.joinLeft[e.To]--
		if s.joinLeft[e.To] > 0 {
			continue
		}
		if e.Heavy() {
			// Synchronous latency: the worker will busy-wait until the
			// child's result is available, then continue with the child.
			w.pending = append(w.pending, e.To)
			if until := s.round + e.Weight; until > w.blockedUntil {
				w.blockedUntil = until
			}
			s.curSuspended++
			if s.curSuspended > s.stats.MaxSuspended {
				s.stats.MaxSuspended = s.curSuspended
			}
			continue
		}
		w.deque.pushBottom(&node{v: e.To})
		s.queuedItems++
	}

	if w.blockedUntil > s.round {
		return // worker blocks; pending children run at blockedUntil
	}
	// An already-expired pending child (possible when a vertex suspended
	// two children with different latencies) has priority: it is the
	// blocked thread's continuation.
	if len(w.pending) > 0 {
		w.assigned = &node{v: w.pending[len(w.pending)-1]}
		w.pending = w.pending[:len(w.pending)-1]
		s.curSuspended--
		return
	}
	if nb := w.deque.popBottom(); nb != nil {
		s.queuedItems--
		w.assigned = nb
	}
}

func (s *wsSim) acquireStep(w *wsWorker) {
	if nb := w.deque.popBottom(); nb != nil {
		s.queuedItems--
		w.assigned = nb
		if s.opt.Tracer != nil {
			s.opt.Tracer.Record(s.round, w.id, ActionSwitch)
		}
		return
	}
	// Classic ABP steal: uniformly random victim worker, take the top of
	// its (single) deque.
	s.stats.StealAttempts++
	if len(s.workers) == 1 {
		s.stats.IdleRounds++
		if s.opt.Tracer != nil {
			s.opt.Tracer.Record(s.round, w.id, ActionIdle)
		}
		return
	}
	vi := w.rnd.Intn(len(s.workers) - 1)
	if vi >= w.id {
		vi++
	}
	st := s.workers[vi].deque.popTop()
	if st != nil {
		s.queuedItems--
		s.stats.StealSuccesses++
		w.assigned = st
	}
	if s.opt.Tracer != nil {
		a := ActionStealMiss
		if st != nil {
			a = ActionStealHit
		}
		s.opt.Tracer.Record(s.round, w.id, a)
	}
}
