package sched

import (
	"errors"
	"strings"
	"testing"

	"lhws/internal/dag"
)

// auditHeavyGraph builds a suspension-rich binary dag: a depth-3 fork tree
// whose 8 leaves each reach their join through a heavy edge, followed by a
// heavy chain tail. This is the shape the auditor exists for — every leaf
// suspends on its heavy edge, resumes through the timer path, and re-enters
// a deque via a pfor tree, exercising both Lemma 2 conditions.
func auditHeavyGraph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder()
	root := b.Vertex("root")
	frontier := []dag.VertexID{root}
	for level := 0; level < 3; level++ {
		var next []dag.VertexID
		for _, u := range frontier {
			l, r := b.Fork(u)
			next = append(next, l, r)
		}
		frontier = next
	}
	// Each leaf suspends on a heavy edge before its join; joins pair up back
	// toward a single sink.
	var joined []dag.VertexID
	for i, u := range frontier {
		v := b.Vertex("")
		b.Heavy(u, v, int64(3+2*i))
		joined = append(joined, v)
	}
	for len(joined) > 1 {
		var next []dag.VertexID
		for i := 0; i+1 < len(joined); i += 2 {
			next = append(next, b.Join(joined[i], joined[i+1]))
		}
		joined = next
	}
	tail := b.Vertex("tail")
	b.Heavy(joined[0], tail, 11)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAuditHeavyEdgeDAG: on a heavy-edge dag, a correct LHWS run must pass
// the full audit (Conditions 1 and 5 of Lemma 2) at every round boundary,
// for every worker count.
func TestAuditHeavyEdgeDAG(t *testing.T) {
	g := auditHeavyGraph(t)
	for _, p := range []int{1, 2, 4, 8} {
		res, err := RunLHWS(g, Options{Workers: p, Seed: 7, CheckInvariants: true})
		if err != nil {
			t.Fatalf("P=%d: audited run failed: %v", p, err)
		}
		for v, r := range res.ExecRound {
			if r < 0 {
				t.Fatalf("P=%d: vertex %d never executed", p, v)
			}
		}
	}
}

// TestAuditCondition1Accepts: depths at the dag depth itself are always
// within the (2+lgU)·dG(v)+slack envelope, so recordExec must accept them.
func TestAuditCondition1Accepts(t *testing.T) {
	g := auditHeavyGraph(t)
	a := newAuditor(g)
	for v, d := range g.Depths() {
		a.recordExec(dag.VertexID(v), d)
	}
	if a.err != nil {
		t.Fatalf("recordExec rejected in-bound depths: %v", a.err)
	}
}

// TestAuditCondition1Violation: an enabling depth far beyond the
// (2+lgU)·dG(v)+slack bound must latch an error, and the error must stick
// through subsequent valid records (first violation wins).
func TestAuditCondition1Violation(t *testing.T) {
	g := auditHeavyGraph(t)
	a := newAuditor(g)
	v := g.Root() // dG(root) = 0, so any depth beyond the slack violates
	bad := int64(a.factor*float64(g.Depths()[v])+a.slack) + 5
	a.recordExec(v, bad)
	if a.err == nil {
		t.Fatalf("recordExec(%d, %d) accepted an out-of-bound depth", v, bad)
	}
	first := a.err
	a.recordExec(g.Final(), 0) // valid; must not clear the latched error
	if a.err != first {
		t.Fatalf("auditor error did not latch: had %v, now %v", first, a.err)
	}
	if !strings.Contains(first.Error(), "Lemma 2(1)") {
		t.Fatalf("error does not name Condition 1: %v", first)
	}
}

// TestAuditCondition5DequeOrdering: checkRound must reject a deque whose
// enabling depths do not strictly increase from top to bottom — the
// top-heaviness precondition of Lemma 3.
func TestAuditCondition5DequeOrdering(t *testing.T) {
	g := auditHeavyGraph(t)
	a := newAuditor(g)
	// items[0] is the top; depth 5 above depth 3 breaks strict increase
	// toward the bottom.
	bad := &ldeque{id: 0, state: dqActive, items: []*node{{depth: 5}, {depth: 3}}}
	s := &lhwsSim{g: g, gDeques: []*ldeque{bad}}
	a.checkRound(s)
	if a.err == nil {
		t.Fatal("checkRound accepted a deque with non-increasing depths")
	}
	if !strings.Contains(a.err.Error(), "Lemma 2(5)") {
		t.Fatalf("error does not name Condition 5: %v", a.err)
	}

	// The same corrupted contents in a freed deque are dead state and must
	// be ignored.
	a2 := newAuditor(g)
	bad.state = dqFreed
	a2.checkRound(s)
	if a2.err != nil {
		t.Fatalf("checkRound audited a freed deque: %v", a2.err)
	}
}

// TestAuditCondition5AssignedDepth: checkRound must reject a worker whose
// assigned vertex sits above the bottom of its active deque — the assigned
// vertex is the deepest point of the worker's chain in Lemma 2.
func TestAuditCondition5AssignedDepth(t *testing.T) {
	g := auditHeavyGraph(t)
	a := newAuditor(g)
	q := &ldeque{id: 0, state: dqActive, items: []*node{{depth: 4}}}
	w := &lhwsWorker{id: 0, active: q, assigned: &node{depth: 2}}
	s := &lhwsSim{g: g, gDeques: []*ldeque{q}, workers: []*lhwsWorker{w}}
	a.checkRound(s)
	if a.err == nil {
		t.Fatal("checkRound accepted an assigned vertex above its deque bottom")
	}

	// Assigned at least as deep as the bottom is fine.
	a2 := newAuditor(g)
	w.assigned = &node{depth: 4}
	a2.checkRound(s)
	if a2.err != nil {
		t.Fatalf("checkRound rejected a valid assigned depth: %v", a2.err)
	}
}

// TestAuditViolationSurfacesAsErrInvariant: a violation detected mid-run
// must surface from RunLHWS wrapped in ErrInvariant. Injecting a corrupted
// deque into a live simulation is not possible from the public API, so this
// test drives the internal run loop directly with a poisoned auditor.
func TestAuditViolationSurfacesAsErrInvariant(t *testing.T) {
	g := auditHeavyGraph(t)
	opt := Options{Workers: 2, Seed: 3, CheckInvariants: true}
	o, err := opt.withDefaults(g)
	if err != nil {
		t.Fatal(err)
	}
	s := newLHWSSim(g, o)
	s.audit.err = errors.New("injected violation")
	if _, err := s.run(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("run() = %v, want ErrInvariant", err)
	}
}
