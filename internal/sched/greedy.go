package sched

import (
	"container/heap"
	"fmt"

	"lhws/internal/dag"
)

// RunGreedy executes the dag with an offline greedy schedule on p workers:
// in every round, as many ready vertices as there are workers (or fewer,
// if fewer are ready) execute. Theorem 1 guarantees the resulting schedule
// length is at most W/p + S for weighted dags, which GreedyBound exposes
// and the test suite asserts.
//
// The scheduler is deterministic: ready vertices execute in the order they
// became ready (ties broken by vertex ID).
func RunGreedy(g *dag.Graph, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: Workers must be >= 1, got %d", p)
	}
	n := g.NumVertices()
	joinLeft := make([]int32, n)
	execRound := make([]int64, n)
	for v := 0; v < n; v++ {
		joinLeft[v] = int32(g.InDegree(dag.VertexID(v)))
		execRound[v] = -1
	}

	var stats Stats
	pending := &vertexHeap{}
	heap.Init(pending)
	heap.Push(pending, heapItem{at: 0, v: g.Root()})

	var round int64
	remaining := int64(n)
	var ready []dag.VertexID
	curSuspended := 0
	for remaining > 0 {
		// Advance to the next round at which work exists, counting the
		// idle worker-rounds in between (all-workers-idle rounds happen in
		// weighted dags when every enabled vertex is suspended — the case
		// that distinguishes Theorem 1's bound from ABP's).
		if len(ready) == 0 {
			if pending.Len() == 0 {
				return nil, ErrStuck
			}
			next := (*pending)[0].at
			if next > round {
				stats.IdleRounds += int64(p) * (next - round)
				round = next
			}
		}
		for pending.Len() > 0 && (*pending)[0].at <= round {
			it := heap.Pop(pending).(heapItem)
			if it.suspended {
				curSuspended--
			}
			ready = append(ready, it.v)
		}
		exec := len(ready)
		if exec > p {
			exec = p
		}
		if exec < p {
			stats.IdleRounds += int64(p - exec)
		}
		for _, v := range ready[:exec] {
			execRound[v] = round
			stats.UserWork++
			remaining--
			for _, e := range g.OutEdges(v) {
				joinLeft[e.To]--
				if joinLeft[e.To] > 0 {
					continue
				}
				suspended := e.Heavy()
				if suspended {
					curSuspended++
					if curSuspended > stats.MaxSuspended {
						stats.MaxSuspended = curSuspended
					}
				}
				heap.Push(pending, heapItem{at: round + e.Weight, v: e.To, suspended: suspended})
			}
		}
		ready = ready[exec:]
		round++
	}
	stats.Rounds = round
	return &Result{Stats: stats, ExecRound: execRound}, nil
}

// GreedyBound returns the Theorem 1 bound W/p + S (rounded up) for the
// given dag and worker count.
func GreedyBound(g *dag.Graph, p int) int64 {
	w := g.Work()
	return (w+int64(p)-1)/int64(p) + g.Span()
}

type heapItem struct {
	at        int64
	v         dag.VertexID
	suspended bool
}

type vertexHeap []heapItem

func (h vertexHeap) Len() int { return len(h) }
func (h vertexHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].v < h[j].v
}
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
