package sched

import (
	"fmt"

	"lhws/internal/dag"
	"lhws/internal/rng"
)

// RunLHWS executes the dag with the latency-hiding work-stealing scheduler
// of Figure 3 on opt.Workers simulated workers and returns the execution
// result. The simulation is round-synchronous: each round, every worker
// performs one iteration of the scheduling loop (execute an assigned
// vertex, or switch deques, or attempt a steal), which is the unit-cost
// model of the paper's analysis. Runs are deterministic given opt.Seed.
func RunLHWS(g *dag.Graph, opt Options) (*Result, error) {
	o, err := opt.withDefaults(g)
	if err != nil {
		return nil, err
	}
	s := newLHWSSim(g, o)
	return s.run()
}

// timerEvent is a pending heavy-edge expiry: at its round, vertex v resumes
// and is returned to deque q via callback (Figure 3, lines 1-5).
type timerEvent struct {
	v dag.VertexID
	q *ldeque
}

type lhwsWorker struct {
	id       int
	rnd      *rng.RNG
	active   *ldeque
	ready    []*ldeque // readyDeques set (removeAny pops the last)
	resumed  []*ldeque // resumedDeques set
	empty    []*ldeque // emptyDeques free list (Figure 5)
	assigned *node
	live     int // allocated (non-freed) deques owned, for Lemma 7
}

type lhwsSim struct {
	g   *dag.Graph
	opt Options

	round     int64
	joinLeft  []int32 // unexecuted parents per vertex
	execRound []int64
	remaining int64

	workers []*lhwsWorker
	gDeques []*ldeque // global deque array (Figure 5)
	timers  map[int64][]timerEvent

	curSuspended   int
	queuedItems    int64 // items across all deques, for stuck detection
	pendingResumed int64 // resumed vertices not yet re-injected
	stats          Stats
	rnd            *rng.RNG          // round-level permutation stream
	audit          *auditor          // non-nil iff Options.CheckInvariants
	potential      *potentialTracker // non-nil during TracePotential
}

func newLHWSSim(g *dag.Graph, opt Options) *lhwsSim {
	n := g.NumVertices()
	s := &lhwsSim{
		g:         g,
		opt:       opt,
		joinLeft:  make([]int32, n),
		execRound: make([]int64, n),
		remaining: int64(n),
		timers:    make(map[int64][]timerEvent),
		rnd:       rng.New(opt.Seed),
	}
	for v := 0; v < n; v++ {
		s.joinLeft[v] = int32(g.InDegree(dag.VertexID(v)))
		s.execRound[v] = -1
	}
	if opt.CheckInvariants {
		s.audit = newAuditor(g)
	}
	s.workers = make([]*lhwsWorker, opt.Workers)
	for i := range s.workers {
		w := &lhwsWorker{id: i, rnd: s.rnd.Split()}
		s.workers[i] = w
		w.active = s.newDeque(w) // initial deque (Figure 3, line 26)
	}
	// Assign the root to worker zero (Figure 3, lines 27-28).
	s.workers[0].assigned = &node{v: g.Root(), depth: 0}
	return s
}

func (s *lhwsSim) run() (*Result, error) {
	p := len(s.workers)
	hadAssigned := make([]bool, p)
	avail := make([]bool, p)
	perm := make([]int, p)
	for s.remaining > 0 {
		if s.round >= s.opt.MaxRounds {
			return nil, ErrRoundLimit
		}
		if s.potential != nil {
			s.potential.sample(s)
		}
		s.fireTimers()

		// Multiprogrammed environments: the OS grants only some workers
		// this round; the grant set is sampled uniformly.
		grant := p
		if s.opt.Available != nil {
			grant = s.opt.Available(s.round)
			if grant < 1 {
				grant = 1
			}
			if grant > p {
				grant = p
			}
		}
		for i := range perm {
			perm[i] = i
		}
		s.rnd.Shuffle(p, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for idx, i := range perm {
			avail[i] = idx < grant
		}
		s.stats.DescheduledRounds += int64(p - grant)

		// Workers that begin the round with an assigned vertex execute it;
		// the rest switch or steal. Splitting the phases keeps the round
		// semantics of the single loop in Figure 3 while making concurrent
		// steals deterministic: executors act in index order (their effects
		// are local to their own deques), then acquirers act in a random
		// permutation so no worker has a systematic arbitration advantage.
		executed := false
		for i, w := range s.workers {
			hadAssigned[i] = avail[i] && w.assigned != nil
			executed = executed || hadAssigned[i]
		}
		for i, w := range s.workers {
			if hadAssigned[i] {
				s.executeStep(w)
			}
		}
		if s.remaining == 0 {
			s.round++
			break
		}
		for _, i := range perm {
			if avail[i] && !hadAssigned[i] {
				s.acquireStep(s.workers[i])
			}
		}
		s.round++

		if s.audit != nil {
			s.audit.checkRound(s)
			if s.audit.err != nil {
				return nil, fmt.Errorf("%w: %v", ErrInvariant, s.audit.err)
			}
		}
		if !executed && len(s.timers) == 0 && s.queuedItems == 0 && s.pendingResumed == 0 &&
			s.remaining > 0 && s.noneAssigned() {
			return nil, ErrStuck
		}
	}
	if s.audit != nil && s.audit.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvariant, s.audit.err)
	}
	if s.potential != nil {
		s.potential.sample(s) // final boundary: Φ must be zero
	}
	s.stats.Rounds = s.round
	return &Result{Stats: s.stats, ExecRound: s.execRound}, nil
}

func (s *lhwsSim) noneAssigned() bool {
	for _, w := range s.workers {
		if w.assigned != nil {
			return false
		}
	}
	return true
}

// fireTimers resumes every suspended vertex whose latency expires this
// round, running its callback (Figure 3, lines 1-5): append to the deque's
// resumedVertices, decrement the suspension counter, and register the deque
// in its owner's resumedDeques set.
//
//lhws:nonblocking
func (s *lhwsSim) fireTimers() {
	evs, ok := s.timers[s.round]
	if !ok {
		return
	}
	delete(s.timers, s.round)
	for _, ev := range evs {
		q := ev.q
		q.resumed = append(q.resumed, resumedEntry{v: ev.v})
		q.suspendCtr--
		q.frozen = false // VariantSuspendDeque: a resume thaws the deque
		s.curSuspended--
		s.pendingResumed++
		if !q.inResumedSet {
			q.inResumedSet = true
			w := s.workers[q.owner]
			w.resumed = append(w.resumed, q)
		}
	}
}

// executeStep runs Figure 3 lines 33-40 for one worker: execute the
// assigned vertex, handle the right child, inject resumed vertices, handle
// the left child, then pop the next assigned vertex from the active deque.
//
//lhws:nonblocking
func (s *lhwsSim) executeStep(w *lhwsWorker) {
	n := w.assigned
	w.assigned = nil
	q := w.active
	if q != nil {
		q.lastExecDepth = n.depth
		q.lastExecRound = s.round
	}

	if n.pfor == nil {
		s.executeUser(w, n)
		if s.opt.Tracer != nil {
			s.opt.Tracer.Record(s.round, w.id, ActionWork)
		}
	} else {
		s.executePfor(w, n)
		if s.opt.Tracer != nil {
			s.opt.Tracer.Record(s.round, w.id, ActionPfor)
		}
	}

	if w.active != nil && !w.active.frozen {
		if nb := w.active.popBottom(); nb != nil {
			s.queuedItems--
			w.assigned = nb
		}
	}
}

// executeUser executes a dag vertex and handles its children in the
// right / resumed / left priority order.
//
// Enabling-tree depths follow the exact construction of §4.1: the right
// child hangs directly off the executed vertex (depth+1); if a pfor tree
// is injected into the active deque in the same step and a left child
// exists, an auxiliary vertex u′ is interposed so both the pfor root and
// the left child sit at depth+2 (Figure 6(d)); without a left child the
// pfor root hangs directly at depth+1.
//
//lhws:nonblocking
func (s *lhwsSim) executeUser(w *lhwsWorker, n *node) {
	v := n.v
	if s.execRound[v] >= 0 {
		panic("sched: vertex executed twice (scheduler bug)")
	}
	s.execRound[v] = s.round
	s.stats.UserWork++
	s.remaining--
	if n.depth > s.stats.EnablingSpan {
		s.stats.EnablingSpan = n.depth
	}
	if s.audit != nil {
		s.audit.recordExec(v, n.depth)
	}

	edges := s.g.OutEdges(v)
	var left, right *dag.OutEdge
	if len(edges) > 0 {
		left = &edges[0]
	}
	if len(edges) > 1 {
		right = &edges[1]
	}
	if right != nil {
		s.handleChild(w, n, n.depth+1, *right)
	}
	injected := s.addResumedVertices2(w, n, left != nil)
	if left != nil {
		leftDepth := n.depth + 1
		if injected {
			leftDepth = n.depth + 2 // through the auxiliary vertex u′
		}
		s.handleChild(w, n, leftDepth, *left)
	}
}

// handleChild implements Figure 3 lines 16-22: when executing a vertex
// enables a child, the child is either suspended (heavy in-edge: install a
// callback and bump the active deque's suspension counter) or pushed onto
// the bottom of the active deque at the given enabling-tree depth.
//
//lhws:nonblocking
func (s *lhwsSim) handleChild(w *lhwsWorker, parent *node, depth int64, e dag.OutEdge) {
	s.joinLeft[e.To]--
	if s.joinLeft[e.To] > 0 {
		return // not yet enabled: another parent is outstanding
	}
	if e.Heavy() {
		q := w.active
		q.suspendCtr++
		if s.opt.Variant == VariantSuspendDeque {
			// §7 ablation: freeze the whole deque until a resume.
			q.frozen = true
		}
		s.curSuspended++
		if s.curSuspended > s.stats.MaxSuspended {
			s.stats.MaxSuspended = s.curSuspended
		}
		at := s.round + e.Weight
		s.timers[at] = append(s.timers[at], timerEvent{v: e.To, q: q})
		return
	}
	s.push(w.active, &node{v: e.To, depth: depth, addedRound: s.round})
}

// executePfor executes a pfor-tree internal vertex: split the range of
// resumed vertices in two, pushing the right half then the left half
// (singleton halves collapse directly to their user vertex). Depths follow
// the same auxiliary-vertex rule as executeUser.
//
//lhws:nonblocking
func (s *lhwsSim) executePfor(w *lhwsWorker, n *node) {
	s.stats.PforWork++
	mid := n.lo + (n.hi-n.lo)/2
	s.push(w.active, s.pforChild(n, mid, n.hi, n.depth+1))
	injected := s.addResumedVertices2(w, n, true)
	leftDepth := n.depth + 1
	if injected {
		leftDepth = n.depth + 2
	}
	s.push(w.active, s.pforChild(n, n.lo, mid, leftDepth))
}

//lhws:nonblocking
func (s *lhwsSim) pforChild(parent *node, lo, hi int, depth int64) *node {
	if hi-lo == 1 {
		return &node{v: parent.pfor[lo].v, depth: depth, addedRound: s.round}
	}
	return &node{pfor: parent.pfor, lo: lo, hi: hi, depth: depth, addedRound: s.round}
}

// addResumedVertices implements Figure 3 lines 7-14 from a scheduling
// point with no currently-executing vertex (deque switch or steal): for
// every owned deque with newly resumed vertices, push one vertex
// encapsulating a parallel-for over the batch (a single resumed vertex is
// pushed directly) and mark the deque ready.
//
//lhws:nonblocking
func (s *lhwsSim) addResumedVertices(w *lhwsWorker) {
	s.addResumedVertices2(w, nil, false)
}

// addResumedVertices2 is addResumedVertices with the §4.1 depth rules.
// cur is the vertex being executed when called mid-step (nil otherwise);
// leftPending reports whether cur will also enable a left child, which
// determines whether the pfor root pushed onto the active deque hangs off
// cur directly (depth+1) or via an auxiliary vertex (depth+2, Figure 6(d)).
// It returns whether a node was pushed onto the active deque.
//
//lhws:nonblocking
func (s *lhwsSim) addResumedVertices2(w *lhwsWorker, cur *node, leftPending bool) bool {
	injectedActive := false
	if len(w.resumed) == 0 {
		return false
	}
	for _, q := range w.resumed {
		target := q
		var d int64
		if s.opt.Variant == VariantResumeNewDeque {
			// §7 ablation: every resumed batch starts a fresh deque.
			d = s.pforRootDepth(q)
			target = s.newDeque(w)
			target.state = dqReady
			w.ready = append(w.ready, target)
		} else if q == w.active && cur != nil {
			d = cur.depth + 1
			if leftPending {
				d = cur.depth + 2
			}
			injectedActive = true
		} else {
			d = s.pforRootDepth(q)
		}
		var nd *node
		if len(q.resumed) == 1 {
			nd = &node{v: q.resumed[0].v, depth: d, addedRound: s.round}
		} else {
			nd = &node{pfor: q.resumed, lo: 0, hi: len(q.resumed), depth: d, addedRound: s.round}
		}
		s.push(target, nd)
		s.pendingResumed -= int64(len(q.resumed))
		q.resumed = nil
		q.inResumedSet = false
		if target != w.active && target.state != dqReady {
			target.state = dqReady
			w.ready = append(w.ready, target)
		}
		if target != q && q != w.active && q.empty() && q.suspendCtr == 0 && q.state == dqSuspended {
			// The original deque is fully drained and owns nothing; recycle
			// it (the resume-new-deque variant would otherwise leak it).
			q.state = dqFreed
			w.empty = append(w.empty, q)
			w.live--
		}
	}
	w.resumed = w.resumed[:0]
	return injectedActive
}

// pforRootDepth computes the enabling-tree depth at which a pfor root is
// inserted, following the auxiliary-chain construction of §4.1: the depth
// of the deque's bottom vertex (or, if empty, its last executed vertex)
// plus one auxiliary vertex per intervening round.
//
//lhws:nonblocking
func (s *lhwsSim) pforRootDepth(q *ldeque) int64 {
	if len(q.items) > 0 {
		b := q.items[len(q.items)-1]
		return b.depth + (s.round - b.addedRound)
	}
	return q.lastExecDepth + (s.round - q.lastExecRound)
}

// acquireStep runs Figure 3 lines 41-56 for a worker with no assigned
// vertex: retire the drained active deque, then switch to an owned ready
// deque if one exists, otherwise attempt to steal from a random deque.
//
//lhws:nonblocking
func (s *lhwsSim) acquireStep(w *lhwsWorker) {
	if w.active != nil {
		q := w.active
		switch {
		case q.frozen:
			// VariantSuspendDeque: the whole deque is out of service until
			// a resume thaws it.
			q.state = dqSuspended
		case !q.empty():
			// Defensive: the active deque can only be non-empty here if a
			// resumed batch was injected after the last pop; take from it.
			w.assigned = q.popBottom()
			s.queuedItems--
			return
		case q.suspendCtr == 0 && !q.inResumedSet:
			// Figure 3 lines 42-43, with one divergence from the paper's
			// pseudocode: a deque whose resumed vertices have not yet been
			// injected (inResumedSet) must not be freed, or the pending
			// pfor push would land on a recycled deque.
			q.state = dqFreed
			w.empty = append(w.empty, q)
			w.live--
		default:
			q.state = dqSuspended
		}
		w.active = nil
	}

	if n := len(w.ready); n > 0 {
		// Deque switch (Figure 3 lines 46-48).
		q := w.ready[n-1]
		w.ready = w.ready[:n-1]
		q.state = dqActive
		w.active = q
		s.stats.Switches++
		if s.opt.Tracer != nil {
			s.opt.Tracer.Record(s.round, w.id, ActionSwitch)
		}
		s.addResumedVertices(w)
		if nb := w.active.popBottom(); nb != nil {
			s.queuedItems--
			w.assigned = nb
		}
		return
	}

	// Steal attempt (Figure 3 lines 49-56).
	s.stats.StealAttempts++
	victim := s.pickVictim(w)
	var stolen *node
	if victim != nil && !victim.frozen {
		stolen = victim.popTop()
	}
	if stolen != nil {
		s.queuedItems--
		s.stats.StealSuccesses++
		w.active = s.newDeque(w)
		w.assigned = stolen
	}
	if s.opt.Tracer != nil {
		a := ActionStealMiss
		if stolen != nil {
			a = ActionStealHit
		}
		s.opt.Tracer.Record(s.round, w.id, a)
	}
	s.addResumedVertices(w)
	if w.assigned == nil && w.active != nil {
		if nb := w.active.popBottom(); nb != nil {
			s.queuedItems--
			w.assigned = nb
		}
	}
}

// pickVictim selects a steal victim according to the configured policy.
//
//lhws:nonblocking
func (s *lhwsSim) pickVictim(w *lhwsWorker) *ldeque {
	switch s.opt.Policy {
	case StealWorkerThenDeque:
		// §6 policy: choose a victim worker, then one of its ready deques
		// (the active deque included — its top is the oldest frame, the
		// standard steal target).
		if len(s.workers) == 1 {
			return nil
		}
		vi := w.rnd.Intn(len(s.workers) - 1)
		if vi >= w.id {
			vi++
		}
		vw := s.workers[vi]
		candidates := make([]*ldeque, 0, len(vw.ready)+1)
		if vw.active != nil && !vw.active.empty() && !vw.active.frozen {
			candidates = append(candidates, vw.active)
		}
		for _, q := range vw.ready {
			if !q.empty() && !q.frozen {
				candidates = append(candidates, q)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
		return candidates[w.rnd.Intn(len(candidates))]
	default:
		// Paper policy: uniform over the global deque array, freed and
		// empty deques included (those attempts simply fail).
		if len(s.gDeques) == 0 {
			return nil
		}
		return s.gDeques[w.rnd.Intn(len(s.gDeques))]
	}
}

// newDeque implements Figure 5: reuse a previously freed deque if the
// worker has one, otherwise append a fresh deque to the global array.
//
//lhws:nonblocking
func (s *lhwsSim) newDeque(w *lhwsWorker) *ldeque {
	var q *ldeque
	if n := len(w.empty); n > 0 {
		q = w.empty[n-1]
		w.empty = w.empty[:n-1]
	} else {
		q = &ldeque{id: len(s.gDeques), owner: w.id}
		s.gDeques = append(s.gDeques, q)
		s.stats.TotalDequesAllocated++
	}
	q.state = dqActive
	q.frozen = false
	q.lastExecDepth = 0
	q.lastExecRound = s.round
	w.live++
	if w.live > s.stats.MaxDequesPerWorker {
		s.stats.MaxDequesPerWorker = w.live
	}
	return q
}

//lhws:nonblocking
func (s *lhwsSim) push(q *ldeque, n *node) {
	q.pushBottom(n)
	s.queuedItems++
}
