package workload

import (
	"fmt"

	"lhws/internal/dag"
	"lhws/internal/rng"
)

// IrregularConfig parameterizes a skewed distributed workload: like
// MapReduce, but per-element work and latency are drawn from heavy-tailed
// distributions, stressing the load balancer (steals) and the suspension
// machinery simultaneously. Real fan-out workloads (RPC trees, web
// crawls) are rarely uniform; this generator models that regime.
type IrregularConfig struct {
	Seed uint64
	// N is the number of elements.
	N int
	// MaxFib bounds the per-element fib size; sizes are skewed so most
	// elements are small and a few are MaxFib-sized.
	MaxFib int
	// MaxDelta bounds per-element latency, skewed the same way.
	MaxDelta int64
}

// Irregular builds the skewed workload. U = N (all fetches can overlap).
func Irregular(cfg IrregularConfig) *Workload {
	if cfg.N < 1 || cfg.MaxFib < 1 || cfg.MaxDelta < 2 {
		panic("workload: Irregular requires N, MaxFib >= 1 and MaxDelta >= 2")
	}
	r := rng.New(cfg.Seed)
	b := dag.NewBuilder()
	var rec func(lo, hi int) (dag.VertexID, dag.VertexID)
	rec = func(lo, hi int) (dag.VertexID, dag.VertexID) {
		if hi-lo == 1 {
			// Skew: squaring a uniform [0,1) draw biases toward 0, giving
			// a few large elements and many small ones.
			u := r.Float64()
			fib := 1 + int(u*u*float64(cfg.MaxFib))
			delta := 2 + int64(r.Float64()*r.Float64()*float64(cfg.MaxDelta-2))
			get := b.Vertex("get")
			fe, fx := buildFib(b, fib)
			b.Heavy(get, fe, delta)
			return get, fx
		}
		mid := (lo + hi) / 2
		fork := b.Vertex("")
		le, lx := rec(lo, mid)
		re, rx := rec(mid, hi)
		b.Light(fork, le)
		b.Light(fork, re)
		return fork, b.Join(lx, rx)
	}
	rec(0, cfg.N)
	return &Workload{
		Name:      fmt.Sprintf("irregular(seed=%d,n=%d,maxfib=%d,maxdelta=%d)", cfg.Seed, cfg.N, cfg.MaxFib, cfg.MaxDelta),
		G:         b.MustGraph(),
		AnalyticU: cfg.N,
	}
}

// NestedConfig parameterizes the composition of the two §5 examples: a
// server whose per-request handler is itself a distributed map-reduce.
// Requests arrive serially (server part, at most one pending arrival), but
// each in-flight handler holds up to FanOut outstanding fetches. The widest
// cut has every handler fully in flight after the last arrival:
// U = Requests·FanOut (which dominates the (Requests−1)·FanOut + 1 cut with
// an arrival still pending).
type NestedConfig struct {
	Requests int
	FanOut   int
	// ArrivalDelta is the request arrival latency, FetchDelta the handler's
	// per-element fetch latency.
	ArrivalDelta, FetchDelta int64
	// FibWork sizes the per-element computation inside handlers.
	FibWork int
}

// Nested builds the server-of-map-reduces workload.
func Nested(cfg NestedConfig) *Workload {
	if cfg.Requests < 1 || cfg.FanOut < 1 {
		panic("workload: Nested requires Requests, FanOut >= 1")
	}
	if cfg.ArrivalDelta < 2 || cfg.FetchDelta < 2 {
		panic("workload: Nested requires deltas >= 2")
	}
	b := dag.NewBuilder()
	var handler func(lo, hi int) (dag.VertexID, dag.VertexID)
	handler = func(lo, hi int) (dag.VertexID, dag.VertexID) {
		if hi-lo == 1 {
			get := b.Vertex("fetch")
			fe, fx := buildFib(b, cfg.FibWork)
			b.Heavy(get, fe, cfg.FetchDelta)
			return get, fx
		}
		mid := (lo + hi) / 2
		fork := b.Vertex("")
		le, lx := handler(lo, mid)
		re, rx := handler(mid, hi)
		b.Light(fork, le)
		b.Light(fork, re)
		return fork, b.Join(lx, rx)
	}

	get := b.Vertex("get")
	var handlerExits []dag.VertexID
	prev := get
	for i := 0; i < cfg.Requests; i++ {
		recv := b.Vertex("recv")
		b.Heavy(prev, recv, cfg.ArrivalDelta)
		var cont dag.VertexID
		if i < cfg.Requests-1 {
			cont = b.Vertex("get")
		} else {
			cont = b.Vertex("done")
		}
		he, hx := handler(0, cfg.FanOut)
		b.Light(recv, cont)
		b.Light(recv, he)
		handlerExits = append(handlerExits, hx)
		prev = cont
	}
	acc := prev
	for i := len(handlerExits) - 1; i >= 0; i-- {
		acc = b.Join(handlerExits[i], acc)
	}
	return &Workload{
		Name:      fmt.Sprintf("nested(req=%d,fan=%d)", cfg.Requests, cfg.FanOut),
		G:         b.MustGraph(),
		AnalyticU: cfg.Requests * cfg.FanOut,
	}
}
