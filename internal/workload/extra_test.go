package workload

import (
	"testing"
)

func TestIrregularValid(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		w := Irregular(IrregularConfig{Seed: seed, N: 24, MaxFib: 9, MaxDelta: 60})
		if err := w.G.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := w.G.SuspensionWidth(); got != 24 {
			t.Errorf("seed %d: U = %d, want 24", seed, got)
		}
	}
}

func TestIrregularIsSkewed(t *testing.T) {
	// With a squared-uniform draw, small elements must outnumber large
	// ones: the total work should be far below N·fib(MaxFib).
	w := Irregular(IrregularConfig{Seed: 3, N: 200, MaxFib: 12, MaxDelta: 50})
	uniformUpper := int64(200) * FibVertices(12)
	if w.G.Work() >= uniformUpper/2 {
		t.Errorf("work %d suggests no skew (uniform upper %d)", w.G.Work(), uniformUpper)
	}
}

func TestIrregularDeterministic(t *testing.T) {
	a := Irregular(IrregularConfig{Seed: 7, N: 30, MaxFib: 8, MaxDelta: 40})
	b := Irregular(IrregularConfig{Seed: 7, N: 30, MaxFib: 8, MaxDelta: 40})
	if a.G.Work() != b.G.Work() || a.G.Span() != b.G.Span() {
		t.Fatal("Irregular not deterministic")
	}
}

func TestNestedValidAndU(t *testing.T) {
	for _, cfg := range []NestedConfig{
		{Requests: 1, FanOut: 1, ArrivalDelta: 10, FetchDelta: 10, FibWork: 2},
		{Requests: 3, FanOut: 4, ArrivalDelta: 20, FetchDelta: 8, FibWork: 2},
		{Requests: 6, FanOut: 2, ArrivalDelta: 5, FetchDelta: 30, FibWork: 3},
	} {
		w := Nested(cfg)
		if err := w.G.Validate(); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if got := w.G.SuspensionWidth(); got != w.AnalyticU {
			t.Errorf("%+v: exact U = %d, analytic %d", cfg, got, w.AnalyticU)
		}
	}
}

func TestNestedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"requests": func() { Nested(NestedConfig{Requests: 0, FanOut: 1, ArrivalDelta: 5, FetchDelta: 5}) },
		"delta":    func() { Nested(NestedConfig{Requests: 1, FanOut: 1, ArrivalDelta: 1, FetchDelta: 5}) },
		"irr n":    func() { Irregular(IrregularConfig{N: 0, MaxFib: 1, MaxDelta: 5}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
