// Package workload generates the weighted computation dags used by the
// paper's examples (§5), evaluation (§6.1, Figure 11), and this
// reproduction's additional experiments.
//
// Every generator returns a Workload carrying the dag together with its
// analytic suspension width when one is known in closed form, so the
// experiment harness can check the simulator's observations against theory
// (e.g. U = n for distributed map-reduce, U = 1 for the server).
package workload

import (
	"fmt"

	"lhws/internal/dag"
	"lhws/internal/rng"
)

// Workload is a generated computation dag plus its provenance.
type Workload struct {
	// Name identifies the generator and parameters (stable across runs).
	Name string
	// G is the weighted computation dag.
	G *dag.Graph
	// AnalyticU is the closed-form suspension width, or -1 when unknown.
	AnalyticU int
}

// String summarizes the workload and its metrics.
func (w *Workload) String() string {
	return fmt.Sprintf("%s: %s", w.Name, w.G.Summary())
}

// fibVertices returns the number of vertices in the parallel-fib dag for n.
func fibVertices(n int) int64 {
	if n < 2 {
		return 1
	}
	return fibVertices(n-1) + fibVertices(n-2) + 2
}

// buildFib appends the dag of the naive recursive parallel Fibonacci
// computation of n to the builder, returning its entry and exit vertices.
// fib(n) forks fib(n-1) (continuation, left) and fib(n-2) (spawned, right)
// and joins them with an addition vertex.
func buildFib(b *dag.Builder, n int) (entry, exit dag.VertexID) {
	if n < 2 {
		v := b.Vertex("")
		return v, v
	}
	fork := b.Vertex("")
	le, lx := buildFib(b, n-1)
	re, rx := buildFib(b, n-2)
	b.Light(fork, le)
	b.Light(fork, re)
	join := b.Join(lx, rx)
	return fork, join
}

// Fib returns the pure-computation parallel Fibonacci workload: no heavy
// edges, U = 0. Under LHWS it must behave identically to standard work
// stealing (the paper's U = 0 reduction).
func Fib(n int) *Workload {
	b := dag.NewBuilder()
	buildFib(b, n)
	return &Workload{
		Name:      fmt.Sprintf("fib(n=%d)", n),
		G:         b.MustGraph(),
		AnalyticU: 0,
	}
}

// MapReduceConfig parameterizes the distributed map-reduce workload of §5
// (Figures 7 and 8): n values each fetched from a remote source with
// latency Delta, mapped through a per-element computation, and combined in
// a balanced reduction tree.
type MapReduceConfig struct {
	// N is the number of elements (remote fetches). The paper's Figure 11
	// uses 5000.
	N int
	// Delta is the fetch latency in rounds (δ).
	Delta int64
	// FibWork sizes the per-element computation: the parallel Fibonacci
	// dag of this input. The paper computes fib(30) per element; choose a
	// value whose vertex count gives the desired work:latency ratio (see
	// FibVertices).
	FibWork int
}

// FibVertices reports the vertex count of the per-element fib dag for a
// given FibWork parameter, for calibrating work:latency ratios.
func FibVertices(fibWork int) int64 { return fibVertices(fibWork) }

// MapReduce builds the distributed map-reduce workload. Each leaf is a
// getValue vertex whose heavy out-edge (weight Delta) leads to the
// per-element fib computation; results join pairwise. All n fetches can be
// outstanding simultaneously, so U = n (§5).
func MapReduce(cfg MapReduceConfig) *Workload {
	if cfg.N < 1 {
		panic("workload: MapReduce requires N >= 1")
	}
	if cfg.Delta < 2 {
		panic("workload: MapReduce requires Delta >= 2 (a heavy edge)")
	}
	b := dag.NewBuilder()
	var rec func(count int) (entry, exit dag.VertexID)
	rec = func(count int) (dag.VertexID, dag.VertexID) {
		if count == 1 {
			get := b.Vertex("get")
			fe, fx := buildFib(b, cfg.FibWork)
			b.Heavy(get, fe, cfg.Delta)
			return get, fx
		}
		half := count / 2
		fork := b.Vertex("")
		le, lx := rec(half)
		re, rx := rec(count - half)
		b.Light(fork, le)
		b.Light(fork, re)
		return fork, b.Join(lx, rx)
	}
	rec(cfg.N)
	return &Workload{
		Name:      fmt.Sprintf("mapreduce(n=%d,delta=%d,fib=%d)", cfg.N, cfg.Delta, cfg.FibWork),
		G:         b.MustGraph(),
		AnalyticU: cfg.N,
	}
}

// ServerConfig parameterizes the "server" workload of §5 (Figures 9
// and 10): requests arrive one at a time over a latency-Delta channel; each
// request forks a handler computation while the server loops to await the
// next request. Only one receive is outstanding at any time, so U = 1.
type ServerConfig struct {
	// Requests is the number of requests served before shutdown.
	Requests int
	// Delta is the request-arrival latency in rounds.
	Delta int64
	// FibWork sizes the per-request handler computation f(x).
	FibWork int
}

// Server builds the server workload with suspension width 1.
func Server(cfg ServerConfig) *Workload {
	if cfg.Requests < 1 {
		panic("workload: Server requires Requests >= 1")
	}
	if cfg.Delta < 2 {
		panic("workload: Server requires Delta >= 2 (a heavy edge)")
	}
	b := dag.NewBuilder()
	// getInput chain: each get suspends on the user, then forks the
	// handler (right) and the recursive server loop (left).
	get := b.Vertex("get")
	var handlerExits []dag.VertexID
	prev := get
	for i := 0; i < cfg.Requests; i++ {
		recv := b.Vertex("recv")
		b.Heavy(prev, recv, cfg.Delta)
		// recv forks: left = server continuation, right = handler f(x).
		var cont dag.VertexID
		if i < cfg.Requests-1 {
			cont = b.Vertex("get")
		} else {
			cont = b.Vertex("done")
		}
		he, hx := buildFib(b, cfg.FibWork)
		b.Light(recv, cont)
		b.Light(recv, he)
		handlerExits = append(handlerExits, hx)
		prev = cont
	}
	// Joins reduce the handler results with the server tail, innermost
	// request first (mirroring the recursive returns in Figure 10).
	acc := prev
	for i := len(handlerExits) - 1; i >= 0; i-- {
		acc = b.Join(handlerExits[i], acc)
	}
	return &Workload{
		Name:      fmt.Sprintf("server(req=%d,delta=%d,fib=%d)", cfg.Requests, cfg.Delta, cfg.FibWork),
		G:         b.MustGraph(),
		AnalyticU: 1,
	}
}

// PipelineConfig parameterizes a streaming pipeline workload: Items flow
// through Stages sequential stages; moving an item between stages incurs
// latency Delta (e.g. a network hop), and each stage performs StageWork
// units of serial computation. Items are independent, so up to Items
// transfers can be in flight at once: U = Items.
type PipelineConfig struct {
	Items     int
	Stages    int
	StageWork int
	Delta     int64
}

// Pipeline builds the streaming-pipeline workload.
func Pipeline(cfg PipelineConfig) *Workload {
	if cfg.Items < 1 || cfg.Stages < 1 || cfg.StageWork < 1 {
		panic("workload: Pipeline requires Items, Stages, StageWork >= 1")
	}
	if cfg.Delta < 2 {
		panic("workload: Pipeline requires Delta >= 2")
	}
	b := dag.NewBuilder()
	// Fork tree over items.
	var spawn func(count int) (entry dag.VertexID, exits []dag.VertexID)
	spawn = func(count int) (dag.VertexID, []dag.VertexID) {
		if count == 1 {
			// One item: Stages stages of StageWork serial vertices,
			// separated by heavy transfer edges.
			first, last := b.Chain(dag.None, cfg.StageWork)
			entry := first
			for s := 1; s < cfg.Stages; s++ {
				sf, sl := b.Chain(dag.None, cfg.StageWork)
				b.Heavy(last, sf, cfg.Delta)
				last = sl
			}
			return entry, []dag.VertexID{last}
		}
		half := count / 2
		fork := b.Vertex("")
		le, lx := spawn(half)
		re, rx := spawn(count - half)
		b.Light(fork, le)
		b.Light(fork, re)
		return fork, append(lx, rx...)
	}
	_, exits := spawn(cfg.Items)
	// Reduce exits pairwise.
	for len(exits) > 1 {
		var next []dag.VertexID
		for i := 0; i+1 < len(exits); i += 2 {
			next = append(next, b.Join(exits[i], exits[i+1]))
		}
		if len(exits)%2 == 1 {
			next = append(next, exits[len(exits)-1])
		}
		exits = next
	}
	analyticU := cfg.Items
	if cfg.Stages == 1 {
		analyticU = 0
	}
	return &Workload{
		Name:      fmt.Sprintf("pipeline(items=%d,stages=%d,work=%d,delta=%d)", cfg.Items, cfg.Stages, cfg.StageWork, cfg.Delta),
		G:         b.MustGraph(),
		AnalyticU: analyticU,
	}
}

// RandomConfig parameterizes random fork-join dags with randomly placed
// heavy edges, used for property testing and bound experiments.
type RandomConfig struct {
	Seed uint64
	// TargetVertices approximately bounds the dag size.
	TargetVertices int
	// PHeavy is the probability that a serial extension edge is heavy.
	PHeavy float64
	// MaxDelta is the maximum heavy-edge latency (inclusive); minimum 2.
	MaxDelta int64
	// PFork and PJoin control branching; sensible defaults are applied
	// when zero (0.35 and 0.3).
	PFork, PJoin float64
}

// Random builds a structurally valid random fork-join dag. The analytic U
// is unknown (-1); use G.SuspensionWidth for the exact value.
func Random(cfg RandomConfig) *Workload {
	if cfg.TargetVertices < 1 {
		panic("workload: Random requires TargetVertices >= 1")
	}
	if cfg.MaxDelta < 2 {
		cfg.MaxDelta = 2
	}
	if cfg.PFork == 0 {
		cfg.PFork = 0.35
	}
	if cfg.PJoin == 0 {
		cfg.PJoin = 0.3
	}
	r := rng.New(cfg.Seed)
	b := dag.NewBuilder()
	root := b.Vertex("")
	frontier := []dag.VertexID{root}
	budget := cfg.TargetVertices
	for len(frontier) > 0 && budget > 0 {
		i := r.Intn(len(frontier))
		v := frontier[i]
		switch {
		case len(frontier) >= 2 && r.Float64() < cfg.PJoin:
			j := r.Intn(len(frontier) - 1)
			if j >= i {
				j++
			}
			u := frontier[j]
			jn := b.Join(v, u)
			nf := frontier[:0]
			for _, w := range frontier {
				if w != v && w != u {
					nf = append(nf, w)
				}
			}
			frontier = append(nf, jn)
			budget--
		case r.Float64() < cfg.PFork:
			l, rt := b.Fork(v)
			frontier[i] = l
			frontier = append(frontier, rt)
			budget -= 2
		default:
			w := b.Vertex("")
			if r.Float64() < cfg.PHeavy {
				b.Heavy(v, w, 2+int64(r.Intn(int(cfg.MaxDelta-1))))
			} else {
				b.Light(v, w)
			}
			frontier[i] = w
			budget--
		}
	}
	for len(frontier) > 1 {
		jn := b.Join(frontier[len(frontier)-1], frontier[len(frontier)-2])
		frontier = frontier[:len(frontier)-2]
		frontier = append(frontier, jn)
	}
	return &Workload{
		Name:      fmt.Sprintf("random(seed=%d,target=%d,pheavy=%.2f)", cfg.Seed, cfg.TargetVertices, cfg.PHeavy),
		G:         b.MustGraph(),
		AnalyticU: -1,
	}
}

// Mixed builds a workload combining a latency-free batch computation with
// a latency-bound interactive part running side by side: the root forks a
// fib(BatchFib) dag (left) and a MapReduce of InteractiveN fetches (right).
// It models a multicore running compute and I/O-bound applications
// together, the motivating scenario of the paper's introduction. U equals
// InteractiveN.
func Mixed(batchFib, interactiveN int, delta int64) *Workload {
	b := dag.NewBuilder()
	root := b.Vertex("root")
	be, bx := buildFib(b, batchFib)
	var rec func(count int) (dag.VertexID, dag.VertexID)
	rec = func(count int) (dag.VertexID, dag.VertexID) {
		if count == 1 {
			get := b.Vertex("get")
			fe, fx := buildFib(b, 1)
			b.Heavy(get, fe, delta)
			return get, fx
		}
		half := count / 2
		fork := b.Vertex("")
		le, lx := rec(half)
		re, rx := rec(count - half)
		b.Light(fork, le)
		b.Light(fork, re)
		return fork, b.Join(lx, rx)
	}
	ie, ix := rec(interactiveN)
	b.Light(root, be)
	b.Light(root, ie)
	b.Join(bx, ix)
	return &Workload{
		Name:      fmt.Sprintf("mixed(batchfib=%d,n=%d,delta=%d)", batchFib, interactiveN, delta),
		G:         b.MustGraph(),
		AnalyticU: interactiveN,
	}
}
