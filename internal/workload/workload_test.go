package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFibVertexCount(t *testing.T) {
	// fib dag vertex count: f(n) = f(n-1)+f(n-2)+2, f(0)=f(1)=1.
	want := map[int]int64{0: 1, 1: 1, 2: 4, 3: 7, 4: 13, 5: 22, 10: 265}
	for n, count := range want {
		w := Fib(n)
		if got := w.G.Work(); got != count {
			t.Errorf("Fib(%d) work = %d, want %d", n, got, count)
		}
		if got := FibVertices(n); got != count {
			t.Errorf("FibVertices(%d) = %d, want %d", n, got, count)
		}
	}
}

func TestFibNoHeavyEdges(t *testing.T) {
	w := Fib(10)
	if w.G.HeavyEdges() != 0 || w.AnalyticU != 0 {
		t.Errorf("Fib has heavy edges: %d, analyticU %d", w.G.HeavyEdges(), w.AnalyticU)
	}
	if got := w.G.SuspensionWidth(); got != 0 {
		t.Errorf("Fib U = %d, want 0", got)
	}
}

func TestFibSpanLinear(t *testing.T) {
	// fib dag span grows linearly in n (along the fib(n-1) spine: fork +
	// recursive span + join).
	prev := Fib(2).G.Span()
	for n := 3; n <= 10; n++ {
		s := Fib(n).G.Span()
		if s != prev+2 {
			t.Errorf("Fib(%d) span = %d, want %d", n, s, prev+2)
		}
		prev = s
	}
}

func TestMapReduceStructure(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 31} {
		w := MapReduce(MapReduceConfig{N: n, Delta: 10, FibWork: 3})
		if err := w.G.Validate(); err != nil {
			t.Fatalf("n=%d: invalid dag: %v", n, err)
		}
		if got := w.G.HeavyEdges(); got != n {
			t.Errorf("n=%d: heavy edges = %d, want %d", n, got, n)
		}
		if got := w.G.SuspensionWidth(); got != n {
			t.Errorf("n=%d: U = %d, want %d (analytic %d)", n, got, n, w.AnalyticU)
		}
		// Work: n leaves (get + fib dag), n-1 forks, n-1 joins.
		want := int64(n)*(1+FibVertices(3)) + 2*int64(n-1)
		if got := w.G.Work(); got != want {
			t.Errorf("n=%d: work = %d, want %d", n, got, want)
		}
	}
}

func TestMapReduceSpanIncludesLatency(t *testing.T) {
	w1 := MapReduce(MapReduceConfig{N: 8, Delta: 10, FibWork: 3})
	w2 := MapReduce(MapReduceConfig{N: 8, Delta: 500, FibWork: 3})
	if w2.G.Span()-w1.G.Span() != 490 {
		t.Errorf("span should grow by delta difference: %d vs %d", w1.G.Span(), w2.G.Span())
	}
}

func TestServerStructure(t *testing.T) {
	for _, reqs := range []int{1, 2, 5, 20} {
		w := Server(ServerConfig{Requests: reqs, Delta: 50, FibWork: 4})
		if err := w.G.Validate(); err != nil {
			t.Fatalf("req=%d: invalid dag: %v", reqs, err)
		}
		if got := w.G.HeavyEdges(); got != reqs {
			t.Errorf("req=%d: heavy edges = %d, want %d", reqs, got, reqs)
		}
		if got := w.G.SuspensionWidth(); got != 1 {
			t.Errorf("req=%d: U = %d, want 1", reqs, got)
		}
	}
}

func TestServerSpanGrowsWithRequests(t *testing.T) {
	// Requests are serialized on the input channel, so span grows by
	// roughly delta per request.
	s2 := Server(ServerConfig{Requests: 2, Delta: 100, FibWork: 2}).G.Span()
	s4 := Server(ServerConfig{Requests: 4, Delta: 100, FibWork: 2}).G.Span()
	if s4-s2 < 200 {
		t.Errorf("span grew by %d over 2 requests, want >= 200", s4-s2)
	}
}

func TestPipelineStructure(t *testing.T) {
	w := Pipeline(PipelineConfig{Items: 6, Stages: 3, StageWork: 4, Delta: 20})
	if err := w.G.Validate(); err != nil {
		t.Fatalf("invalid dag: %v", err)
	}
	// Heavy edges: items * (stages-1).
	if got := w.G.HeavyEdges(); got != 12 {
		t.Errorf("heavy edges = %d, want 12", got)
	}
	if got := w.G.SuspensionWidth(); got != 6 {
		t.Errorf("U = %d, want 6 (one transfer in flight per item)", got)
	}
}

func TestPipelineSingleStageHasNoLatency(t *testing.T) {
	w := Pipeline(PipelineConfig{Items: 4, Stages: 1, StageWork: 5, Delta: 20})
	if w.G.HeavyEdges() != 0 || w.AnalyticU != 0 {
		t.Errorf("single-stage pipeline should have no heavy edges")
	}
}

func TestRandomValidAndDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		w1 := Random(RandomConfig{Seed: seed, TargetVertices: 60, PHeavy: 0.3, MaxDelta: 30})
		if err := w1.G.Validate(); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
		w2 := Random(RandomConfig{Seed: seed, TargetVertices: 60, PHeavy: 0.3, MaxDelta: 30})
		if w1.G.NumVertices() != w2.G.NumVertices() || w1.G.Span() != w2.G.Span() {
			t.Fatalf("seed %d: Random not deterministic", seed)
		}
	}
}

func TestRandomRespectsPHeavyZero(t *testing.T) {
	w := Random(RandomConfig{Seed: 3, TargetVertices: 100, PHeavy: 0})
	if w.G.HeavyEdges() != 0 {
		t.Errorf("PHeavy=0 produced %d heavy edges", w.G.HeavyEdges())
	}
}

func TestMixedStructure(t *testing.T) {
	w := Mixed(8, 16, 40)
	if err := w.G.Validate(); err != nil {
		t.Fatalf("invalid dag: %v", err)
	}
	if got := w.G.SuspensionWidth(); got != 16 {
		t.Errorf("U = %d, want 16", got)
	}
}

func TestAnalyticUMatchesExact(t *testing.T) {
	cases := []*Workload{
		Fib(8),
		MapReduce(MapReduceConfig{N: 12, Delta: 9, FibWork: 2}),
		Server(ServerConfig{Requests: 6, Delta: 9, FibWork: 2}),
		Pipeline(PipelineConfig{Items: 5, Stages: 2, StageWork: 3, Delta: 9}),
		Mixed(6, 9, 9),
	}
	for _, w := range cases {
		if w.AnalyticU < 0 {
			continue
		}
		if got := w.G.SuspensionWidth(); got != w.AnalyticU {
			t.Errorf("%s: exact U = %d, analytic %d", w.Name, got, w.AnalyticU)
		}
	}
}

func TestWorkloadNamesStable(t *testing.T) {
	w := MapReduce(MapReduceConfig{N: 4, Delta: 10, FibWork: 2})
	if !strings.Contains(w.Name, "mapreduce(n=4,delta=10,fib=2)") {
		t.Errorf("unexpected name %q", w.Name)
	}
	if !strings.Contains(w.String(), "W=") {
		t.Errorf("String() should include metrics: %q", w.String())
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := map[string]func(){
		"mapreduce n=0":      func() { MapReduce(MapReduceConfig{N: 0, Delta: 5, FibWork: 1}) },
		"mapreduce delta=1":  func() { MapReduce(MapReduceConfig{N: 2, Delta: 1, FibWork: 1}) },
		"server req=0":       func() { Server(ServerConfig{Requests: 0, Delta: 5}) },
		"server delta light": func() { Server(ServerConfig{Requests: 2, Delta: 1}) },
		"pipeline items=0":   func() { Pipeline(PipelineConfig{Items: 0, Stages: 1, StageWork: 1, Delta: 5}) },
		"random target=0":    func() { Random(RandomConfig{TargetVertices: 0}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// Property: random workloads always satisfy the §2 structural assumptions.
func TestRandomStructuralProperty(t *testing.T) {
	fn := func(seed uint64, size uint8, pHeavyRaw uint8) bool {
		cfg := RandomConfig{
			Seed:           seed,
			TargetVertices: 1 + int(size)%200,
			PHeavy:         float64(pHeavyRaw) / 255,
			MaxDelta:       50,
		}
		return Random(cfg).G.Validate() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMapReduceBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MapReduce(MapReduceConfig{N: 1000, Delta: 100, FibWork: 5})
	}
}
