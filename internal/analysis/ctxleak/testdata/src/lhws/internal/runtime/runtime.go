// Package runtime is a fixture stand-in for lhws/internal/runtime: the
// ctxleak analyzer recognizes the Ctx type by its (path, name) identity.
package runtime

// Ctx points into a pooled task shell.
type Ctx struct{}
