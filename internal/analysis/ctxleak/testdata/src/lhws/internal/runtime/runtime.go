// Package runtime is a fixture stand-in for lhws/internal/runtime: the
// ctxleak analyzer recognizes the Ctx type by its (path, name) identity.
package runtime

import "time"

// Ctx points into a pooled task shell.
type Ctx struct{}

// WithTarget derives a latency-target scope. The derived *Ctx aliases
// the same pooled shell, so it is subject to the same extent rules.
func (c *Ctx) WithTarget(d time.Duration) (*Ctx, func()) { return c, func() {} }
