// Package cl exercises the ctxleak analyzer: every escape sink, the
// shapes that legitimately stay inside the task's extent, and the
// directive escape.
package cl

import (
	"time"

	"lhws/internal/runtime"
)

// leaked is the package-level sink.
var leaked *runtime.Ctx

// seeded shows package-level var initialization is a sink too.
var seeded = grab() // want `task context escapes its task \(stored in a package-level variable\)`

func grab() *runtime.Ctx { return nil }

type holder struct {
	ctx *runtime.Ctx
	val runtime.Ctx
}

func sinks(c *runtime.Ctx, h *holder, m map[int]*runtime.Ctx, s []*runtime.Ctx, ch chan *runtime.Ctx) {
	leaked = c            // want `task context escapes its task \(stored in a package-level variable\)`
	h.ctx = c             // want `task context escapes its task \(stored in a struct field\)`
	m[0] = c              // want `task context escapes its task \(stored in a container element\)`
	s[0] = c              // want `task context escapes its task \(stored in a container element\)`
	ch <- c               // want `task context escapes its task \(sent on a channel\)`
	_ = holder{ctx: c}    // want `task context escapes its task \(stored in a composite literal\)`
	_ = []*runtime.Ctx{c} // want `task context escapes its task \(stored in a composite literal\)`
	s = append(s, c)      // want `task context escapes its task \(appended to a slice\)`
	_ = s
}

// values carry the same inner pointer as the *Ctx they were copied
// from, so Ctx (non-pointer) stores are sinks too.
func valueCopy(c *runtime.Ctx, h *holder) {
	h.val = *c // want `task context escapes its task \(stored in a struct field\)`
}

func goSinks(c *runtime.Ctx) {
	go use(c) // want `task context escapes its task \(passed to a goroutine\)`
	go func() {
		use(c) // want `task context escapes its task \(captured by a go-statement closure\)`
	}()
}

func use(c *runtime.Ctx) {}

// inTask shows the shapes that stay inside the task's dynamic extent:
// locals, ordinary calls, returns, and closures that are not go'ed.
func inTask(c *runtime.Ctx) *runtime.Ctx {
	local := c
	use(local)
	f := func() { use(c) }
	f()
	return c
}

// vetted acknowledges a deliberate escape.
func vetted(c *runtime.Ctx) {
	leaked = c //lhws:ctxok fixture: the harness joins the task before reading
}

// derived shows scope-derived contexts are the same pooled shell: a
// WithTarget (or WithDeadline/WithCancel) child escaping its task is
// exactly as dangerous as the parent escaping, and is flagged at the
// same sinks. Keeping the derived ctx and its cancel func local is the
// legitimate shape.
func derived(c *runtime.Ctx, h *holder) {
	tc, cancel := c.WithTarget(time.Millisecond)
	defer cancel()
	use(tc)     // in-task use of the derived ctx is fine
	h.ctx = tc  // want `task context escapes its task \(stored in a struct field\)`
	leaked = tc // want `task context escapes its task \(stored in a package-level variable\)`
	go use(tc)  // want `task context escapes its task \(passed to a goroutine\)`
}
