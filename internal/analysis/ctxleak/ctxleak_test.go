package ctxleak_test

import (
	"testing"

	"lhws/internal/analysis/analysistest"
	"lhws/internal/analysis/ctxleak"
)

func TestCtxLeak(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, ctxleak.Analyzer, "lhws/cl")
}
