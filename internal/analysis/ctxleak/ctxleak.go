// Package ctxleak flags task contexts (*runtime.Ctx) escaping the task
// they belong to.
//
// A Ctx is embedded in its task's pooled shell (task.ctx): the pointer
// a task function receives points *into* the shell, and the shell —
// epoch, channels, goroutine and all — is recycled for an unrelated
// task the moment the current one reports done. Any Ctx that outlives
// its task is therefore a use-after-recycle: a Spawn through it pushes
// onto a deque the new task's worker owns, a Latency suspends somebody
// else's task, and the suspension-epoch CAS silently misattributes
// wakeups. The same applies to Ctx values (copies carry the same inner
// *task pointer).
//
// The analyzer flags the stores through which a Ctx can outlive the
// task function's dynamic extent:
//
//   - assignment to a package-level variable, a struct field, or a
//     map/slice element, and composite literals carrying a Ctx;
//   - sending a Ctx on a channel or appending it to a slice;
//   - passing a Ctx to a go statement's call, or capturing one in a
//     go statement's closure — the goroutine runs concurrently with
//     (and can outlive) the task, outside the resume/report handoff
//     that makes task-side scheduler access safe.
//
// Passing a Ctx to an ordinary call or returning it to the caller
// stays inside the task's extent and is not flagged. The runtime
// package itself owns the shell lifecycle and is exempt. A deliberate
// escape — e.g. a test harness that provably joins before the task
// ends — is acknowledged with //lhws:ctxok <justification>.
package ctxleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"lhws/internal/analysis"
	"lhws/internal/analysis/facts"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc:  "check that no *runtime.Ctx escapes its task (pooled shells make that a use-after-recycle)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == facts.RuntimePath {
		return nil // the runtime owns the shell lifecycle
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if i >= len(x.Lhs) {
						break
					}
					if isCtx(pass, rhs) {
						if kind, bad := sinkLHS(pass, x.Lhs[i]); bad {
							report(pass, rhs.Pos(), kind)
						}
					}
				}
			case *ast.GenDecl:
				// Package-level var initialized with a Ctx.
				if x.Tok == token.VAR {
					for _, spec := range x.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for vi, v := range vs.Values {
							if isCtx(pass, v) && vi < len(vs.Names) {
								if obj := pass.TypesInfo.Defs[vs.Names[vi]]; obj != nil &&
									obj.Parent() == pass.Pkg.Scope() {
									report(pass, v.Pos(), "stored in a package-level variable")
								}
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isCtx(pass, v) {
						report(pass, v.Pos(), "stored in a composite literal")
					}
				}
			case *ast.SendStmt:
				if isCtx(pass, x.Value) {
					report(pass, x.Value.Pos(), "sent on a channel")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						for _, a := range x.Args[1:] {
							if isCtx(pass, a) {
								report(pass, a.Pos(), "appended to a slice")
							}
						}
					}
				}
			case *ast.GoStmt:
				for _, a := range x.Call.Args {
					if isCtx(pass, a) {
						report(pass, a.Pos(), "passed to a goroutine")
					}
				}
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					checkCapture(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkCapture flags free variables of Ctx type inside a go-statement
// closure: the closure runs on its own goroutine, concurrent with the
// task the Ctx belongs to.
func checkCapture(pass *analysis.Pass, lit *ast.FuncLit) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if !facts.IsCtxPtr(obj.Type()) && !facts.IsCtxNamed(obj.Type()) {
			return true
		}
		// Captured iff declared outside the literal (and not package
		// level — package-level Ctx vars are flagged at their store).
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			if obj.Parent() != pass.Pkg.Scope() {
				seen[obj] = true
				report(pass, id.Pos(), "captured by a go-statement closure")
			}
		}
		return true
	})
}

// isCtx reports whether e evaluates to a task context (pointer or
// value).
func isCtx(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	return facts.IsCtxPtr(t) || facts.IsCtxNamed(t)
}

// sinkLHS classifies an assignment target that lets the value outlive
// the assigning function: package-level variables, struct fields, and
// container elements.
func sinkLHS(pass *analysis.Pass, lhs ast.Expr) (string, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Uses[lhs]
		}
		if obj != nil && obj.Parent() == pass.Pkg.Scope() {
			return "stored in a package-level variable", true
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return "stored in a struct field", true
		}
		// Qualified identifier: a variable in another package.
		if obj, ok := pass.TypesInfo.Uses[lhs.Sel].(*types.Var); ok && !obj.IsField() {
			return "stored in a package-level variable", true
		}
	case *ast.IndexExpr:
		return "stored in a container element", true
	}
	return "", false
}

func report(pass *analysis.Pass, pos token.Pos, kind string) {
	if pass.Suppressed(pos, "ctxok") {
		return
	}
	pass.Reportf(pos, "task context escapes its task (%s); a Ctx points into a pooled task shell that is recycled when the task completes, so any later use is a use-after-recycle — pass results out instead, or justify with //lhws:ctxok", kind)
}
