package lockheld_test

import (
	"testing"

	"lhws/internal/analysis/analysistest"
	"lhws/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, lockheld.Analyzer, "lhws/lh")
}
