// Package lockheld flags sync.Mutex/RWMutex locks held across
// may-suspend calls.
//
// A task that suspends while holding a mutex keeps it locked for the
// entire wait: every worker that touches the lock then parks behind a
// *suspended* task — a latency that was supposed to be hidden is now
// serialized through the lock, and if the lock guards the wakeup path
// itself the run deadlocks. The runtime's own discipline (DESIGN.md)
// is that leaf locks are released before beginWait/finishWait; this
// analyzer enforces the same rule on everything built on top.
//
// The check is a branch-sensitive walk of each function body: the set
// of held locks is tracked per path (if/switch/select branches are
// merged by union; loops are entered once), `defer mu.Unlock()` keeps
// the lock held to the end of the function, and every statically
// resolved call to a may-suspend function (the transitive coloring
// shared with suspendcolor) while any lock is held is flagged with the
// witness chain. A deliberate exception — e.g. a lock private to a
// completed handoff — is acknowledged with //lhws:locksafe
// <justification>.
//
// Function literals are checked as independent bodies: a literal may
// run on another goroutine, so locks held at its creation site are not
// assumed held inside it (and vice versa).
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"lhws/internal/analysis"
	"lhws/internal/analysis/facts"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "check that no sync.Mutex/RWMutex is held across a may-suspend call",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	maySuspend := facts.MaySuspendLeaf
	if pass.Prog != nil {
		maySuspend = facts.MaySuspend(pass.Prog).Call
	}
	s := &scanner{pass: pass, may: maySuspend}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				s.scanFunc(fd.Body)
			}
		}
	}
	return nil
}

// held maps a lock's receiver expression (rendered as source text) to
// the position it was acquired at. A nil map means the path has
// terminated (return/panic/branch).
type held map[string]token.Pos

func clone(h held) held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// union merges the lock sets of two joining paths; a terminated path
// (nil) contributes nothing. Holding on *either* path counts: the
// suspend after the join is reachable with the lock held.
func union(a, b held) held {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			a[k] = v
		}
	}
	return a
}

type scanner struct {
	pass *analysis.Pass
	may  func(*types.Func) (string, bool)
	lits []*ast.FuncLit
}

// scanFunc checks one body and then every literal discovered inside
// it, each with an empty initial lock set.
func (s *scanner) scanFunc(body *ast.BlockStmt) {
	s.block(body.List, make(held))
	for len(s.lits) > 0 {
		lit := s.lits[0]
		s.lits = s.lits[1:]
		s.block(lit.Body.List, make(held))
	}
}

func (s *scanner) block(list []ast.Stmt, h held) held {
	for _, st := range list {
		h = s.stmt(st, h)
		if h == nil {
			return nil
		}
	}
	return h
}

func (s *scanner) stmt(st ast.Stmt, h held) held {
	switch st := st.(type) {
	case *ast.ExprStmt:
		var term bool
		h, term = s.calls(st.X, h)
		if term {
			return nil
		}
		return h
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			h, _ = s.calls(e, h)
		}
		return nil
	case *ast.BranchStmt: // break/continue/goto leave this chain
		return nil
	case *ast.DeferStmt:
		// Arguments are evaluated now; the call itself runs at return.
		// defer mu.Unlock() is the idiomatic "held to end of function":
		// the lock simply stays in the held set.
		for _, a := range st.Call.Args {
			h, _ = s.calls(a, h)
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			s.lits = append(s.lits, lit)
		}
		return h
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			h, _ = s.calls(a, h)
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			s.lits = append(s.lits, lit)
		}
		return h
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			h, _ = s.calls(e, h)
		}
		for _, e := range st.Lhs {
			h, _ = s.calls(e, h)
		}
		return h
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						h, _ = s.calls(e, h)
					}
				}
			}
		}
		return h
	case *ast.SendStmt:
		h, _ = s.calls(st.Chan, h)
		h, _ = s.calls(st.Value, h)
		return h
	case *ast.IncDecStmt:
		h, _ = s.calls(st.X, h)
		return h
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, h)
	case *ast.BlockStmt:
		return s.block(st.List, h)
	case *ast.IfStmt:
		if st.Init != nil {
			h = s.stmt(st.Init, h)
			if h == nil {
				return nil
			}
		}
		h, _ = s.calls(st.Cond, h)
		thenOut := s.block(st.Body.List, clone(h))
		elseOut := h
		if st.Else != nil {
			elseOut = s.stmt(st.Else, clone(h))
		}
		return union(thenOut, elseOut)
	case *ast.ForStmt:
		if st.Init != nil {
			h = s.stmt(st.Init, h)
			if h == nil {
				return nil
			}
		}
		if st.Cond != nil {
			h, _ = s.calls(st.Cond, h)
		}
		bodyOut := s.block(st.Body.List, clone(h))
		if st.Post != nil && bodyOut != nil {
			bodyOut = s.stmt(st.Post, bodyOut)
		}
		if st.Cond == nil && bodyOut == nil {
			// for {}: the only way past the loop is a break inside it;
			// approximate the exit with the entry set.
			return h
		}
		return union(h, bodyOut)
	case *ast.RangeStmt:
		h, _ = s.calls(st.X, h)
		bodyOut := s.block(st.Body.List, clone(h))
		return union(h, bodyOut)
	case *ast.SwitchStmt:
		if st.Init != nil {
			h = s.stmt(st.Init, h)
			if h == nil {
				return nil
			}
		}
		if st.Tag != nil {
			h, _ = s.calls(st.Tag, h)
		}
		return s.clauses(st.Body.List, h)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			h = s.stmt(st.Init, h)
			if h == nil {
				return nil
			}
		}
		return s.clauses(st.Body.List, h)
	case *ast.SelectStmt:
		var out held
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			ch := clone(h)
			if cc.Comm != nil {
				ch = s.stmt(cc.Comm, ch)
			}
			if ch != nil {
				ch = s.block(cc.Body, ch)
			}
			out = union(out, ch)
		}
		return out
	default:
		return h
	}
}

// clauses joins switch/type-switch case bodies; without a default the
// entry set also flows past the switch.
func (s *scanner) clauses(list []ast.Stmt, h held) held {
	var out held
	hasDefault := false
	for _, clause := range list {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		ch := clone(h)
		for _, e := range cc.List {
			ch, _ = s.calls(e, ch)
		}
		out = union(out, s.block(cc.Body, ch))
	}
	if !hasDefault {
		out = union(out, h)
	}
	return out
}

// calls walks an expression in source order, applying Lock/Unlock
// effects, checking may-suspend calls against the held set, and
// queueing function literals for independent scanning. It reports
// terminated=true when the expression is a call to panic.
func (s *scanner) calls(e ast.Expr, h held) (out held, terminated bool) {
	if e == nil {
		return h, false
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			s.lits = append(s.lits, x)
			return false
		case *ast.CallExpr:
			// Sub-expressions (nested calls in Fun/Args) are visited by
			// the same Inspect before this classification matters for
			// them; lock ops never appear as sub-expressions because
			// Lock/Unlock have no results.
			if key, op, ok := lockOp(s.pass.TypesInfo, x); ok {
				switch op {
				case opLock:
					if _, dup := h[key]; !dup {
						h[key] = x.Pos()
					}
				case opUnlock:
					delete(h, key)
				}
				return true
			}
			if isPanic(s.pass.TypesInfo, x) {
				terminated = true
				return true
			}
			if len(h) > 0 {
				if fn := analysis.Callee(s.pass.TypesInfo, x); fn != nil {
					if desc, ok := s.may(fn); ok {
						s.report(x.Pos(), h, desc)
					}
				}
			}
		}
		return true
	})
	return h, terminated
}

func (s *scanner) report(pos token.Pos, h held, desc string) {
	if s.pass.Suppressed(pos, "locksafe") {
		return
	}
	names := make([]string, 0, len(h))
	for k := range h {
		names = append(names, k)
	}
	sort.Strings(names)
	first := h[names[0]]
	s.pass.Reportf(pos, "call may suspend the task while %s is locked (acquired at line %d): %s; a suspended task holds the lock across its entire wait — unlock before the wait or justify with //lhws:locksafe",
		strings.Join(names, ", "), s.pass.Fset.Position(first).Line, desc)
}

type lockKind int

const (
	opLock lockKind = iota
	opUnlock
)

// lockOp classifies a call as a sync.Mutex/RWMutex acquire or release
// and returns the lock's receiver expression as its identity.
func lockOp(info *types.Info, call *ast.CallExpr) (string, lockKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var op lockKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", 0, false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", 0, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
