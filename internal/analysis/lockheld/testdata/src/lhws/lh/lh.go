// Package lh exercises the lockheld analyzer: locks held across direct
// and transitive suspensions, defer-kept locks, branch joins, the
// release-before-wait clean shape, literal independence, and the
// locksafe escape.
package lh

import (
	"sync"

	"lhws/internal/runtime"
)

type table struct {
	mu    sync.Mutex
	state int
}

// heldAcross is the basic bug: the mutex stays locked for the entire
// suspension.
func heldAcross(t *table, c *runtime.Ctx) {
	t.mu.Lock()
	t.state++
	c.Latency(0) // want `call may suspend the task while t\.mu is locked \(acquired at line 21\)`
	t.mu.Unlock()
}

// deferHeld: defer mu.Unlock() keeps the lock held to the end of the
// function, so the suspension below still runs under it.
func deferHeld(t *table, f *runtime.Future, c *runtime.Ctx) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f.Await(c) // want `call may suspend the task while t\.mu is locked`
}

// transitive: the suspension is one call away; the witness chain names
// the path.
func transitive(t *table, c *runtime.Ctx) {
	t.mu.Lock()
	doWait(c) // want `while t\.mu is locked .*: lh\.doWait → \(\*runtime\.Ctx\)\.Latency`
	t.mu.Unlock()
}

func doWait(c *runtime.Ctx) { c.Latency(0) }

// branchHeld: the lock is taken on one branch only, but the suspension
// after the join is still reachable with it held.
func branchHeld(t *table, c *runtime.Ctx, b bool) {
	if b {
		t.mu.Lock()
	}
	c.Latency(0) // want `call may suspend the task while t\.mu is locked`
	if b {
		t.mu.Unlock()
	}
}

// rlockHeld: read locks count too — a suspended reader still blocks
// writers.
func rlockHeld(rw *sync.RWMutex, c *runtime.Ctx) {
	rw.RLock()
	c.Latency(0) // want `call may suspend the task while rw is locked`
	rw.RUnlock()
}

// releaseFirst is the sanctioned shape: unlock before the wait.
func releaseFirst(t *table, c *runtime.Ctx) {
	t.mu.Lock()
	t.state++
	t.mu.Unlock()
	c.Latency(0)
}

// bothBranchesRelease: every path to the suspension has released.
func bothBranchesRelease(t *table, c *runtime.Ctx, b bool) {
	t.mu.Lock()
	if b {
		t.state++
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
	}
	c.Latency(0)
}

// earlyReturn: the locked path returns before the suspension.
func earlyReturn(t *table, c *runtime.Ctx, b bool) {
	t.mu.Lock()
	if b {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	c.Latency(0)
}

// litIndependent: a literal runs on its own goroutine; locks held at
// its creation site are not assumed held inside it.
func litIndependent(t *table, c *runtime.Ctx) func() {
	t.mu.Lock()
	f := func() {
		c.Latency(0)
	}
	t.mu.Unlock()
	return f
}

// litOwnLock: but a literal's own locking is checked on its own terms.
func litOwnLock(t *table, c *runtime.Ctx) func() {
	return func() {
		t.mu.Lock()
		c.Latency(0) // want `call may suspend the task while t\.mu is locked`
		t.mu.Unlock()
	}
}

// vetted acknowledges a deliberate hold.
func vetted(t *table, c *runtime.Ctx) {
	t.mu.Lock()
	c.Latency(0) //lhws:locksafe fixture: the lock is private to this test and nothing else contends
	t.mu.Unlock()
}

// bare escapes still need a justification.
func bare(t *table, c *runtime.Ctx) {
	t.mu.Lock()
	c.Latency(0) //lhws:locksafe // want `lhws:locksafe directive needs a justification`
	t.mu.Unlock()
}
