// Package runtime is a fixture stand-in for lhws/internal/runtime,
// carrying the identities of the may-suspend seeds.
package runtime

import "time"

type Ctx struct{}

// Latency is a may-suspend seed.
func (c *Ctx) Latency(d time.Duration) {}

type Future struct{}

// Await is a may-suspend seed.
func (f *Future) Await(c *Ctx) (any, error) { return nil, nil }
