// Package load turns package patterns into parsed, type-checked
// packages for the analyzers, using only the standard library and the
// go command.
//
// The conventional loader for analysis tools is
// golang.org/x/tools/go/packages; this repository must also build in
// hermetic environments where module downloads are impossible, so load
// reimplements the narrow slice the analyzers need: it shells out to
// `go list -export -json -deps`, which compiles every dependency and
// reports the path of each package's export data, then type-checks
// from source.
//
// Unlike the usual export-data division of labour, load type-checks
// every non-standard dependency from source as well (in dependency
// order, so type identities are shared), not just the packages named by
// the patterns. The interprocedural summary engine
// (analysis.BuildProgram) needs dependency function *bodies* to
// propagate facts such as may-suspend across package boundaries;
// export data carries types but no bodies. Standard-library packages
// are still consumed as export data — their facts come from the
// analyzers' seed tables. Dependencies loaded this way are marked
// DepOnly; drivers analyze only the target packages but feed everything
// to the call graph.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	goruntime "runtime"
	"strings"
)

// A Package is one type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	GoFiles   []string // absolute paths of the parsed files
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// DepOnly marks a package loaded only because a target imports it:
	// it contributes bodies to the call graph but is not analyzed.
	DepOnly bool
}

// Config parameterizes a load.
type Config struct {
	// Dir is the working directory for the go command ("" = cwd).
	Dir string
	// Env, when non-nil, replaces the go command's environment. The
	// analysistest harness uses this to load GOPATH-mode fixtures.
	Env []string
	// BuildFlags are extra flags for the go command (e.g. "-tags",
	// "lhwsepoll"), so the suite can analyze tag-gated files.
	BuildFlags []string
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Imports    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// loader carries the state of one Load call.
type loader struct {
	fset     *token.FileSet
	byPath   map[string]*listPackage
	checked  map[string]*Package // source-checked, by import path
	checking map[string]bool     // cycle guard
	fallback types.Importer      // export-data importer for std packages
}

// Load lists, parses, and type-checks the packages matching patterns
// and every non-standard dependency (returned with DepOnly set), in
// dependency order.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	listed, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by resolved import path.
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		byPath:   make(map[string]*listPackage, len(listed)),
		checked:  make(map[string]*Package),
		checking: make(map[string]bool),
	}
	for _, lp := range listed {
		ld.byPath[lp.ImportPath] = lp
	}
	ld.fallback = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	targets := 0
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := ld.ensure(lp)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = lp.DepOnly
		if !lp.DepOnly {
			targets++
		}
		pkgs = append(pkgs, pkg)
	}
	if targets == 0 {
		return nil, fmt.Errorf("load: no packages matched %v", patterns)
	}
	return pkgs, nil
}

func goList(cfg Config, patterns []string) ([]*listPackage, error) {
	args := []string{"list"}
	args = append(args, cfg.BuildFlags...)
	args = append(args,
		"-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Imports,ImportMap,Incomplete,Error",
	)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = cfg.Env
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: starting go list: %v", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, nil
}

// ensure type-checks lp from source, memoized, checking its
// non-standard dependencies first so every package in the load shares
// one set of type identities.
func (ld *loader) ensure(lp *listPackage) (*Package, error) {
	if pkg, ok := ld.checked[lp.ImportPath]; ok {
		return pkg, nil
	}
	if ld.checking[lp.ImportPath] {
		return nil, fmt.Errorf("load: import cycle through %s", lp.ImportPath)
	}
	ld.checking[lp.ImportPath] = true
	defer delete(ld.checking, lp.ImportPath)
	pkg, err := ld.typecheck(lp)
	if err != nil {
		return nil, err
	}
	ld.checked[lp.ImportPath] = pkg
	return pkg, nil
}

// srcImporter resolves an importing package's imports: through its
// ImportMap (vendoring, test shadowing), then preferring source-checked
// packages, then falling back to compiled export data (std).
type srcImporter struct {
	ld *loader
	lp *listPackage
}

func (im srcImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.lp.ImportMap[path]; ok {
		path = mapped
	}
	if dep := im.ld.byPath[path]; dep != nil && !dep.Standard {
		if dep.Error != nil {
			return nil, fmt.Errorf("package %s: %s", dep.ImportPath, dep.Error.Err)
		}
		pkg, err := im.ld.ensure(dep)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.ld.fallback.Import(path)
}

// typecheck parses a package's files and type-checks them.
func (ld *loader) typecheck(lp *listPackage) (*Package, error) {
	pkg := &Package{
		PkgPath: lp.ImportPath,
		Name:    lp.Name,
		Dir:     lp.Dir,
		Fset:    ld.fset,
	}
	for _, f := range lp.GoFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		syntax, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Syntax = append(pkg.Syntax, syntax)
	}

	conf := types.Config{
		Importer: srcImporter{ld: ld, lp: lp},
		Sizes:    types.SizesFor("gc", goruntime.GOARCH),
	}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(lp.ImportPath, ld.fset, pkg.Syntax, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
