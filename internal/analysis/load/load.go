// Package load turns package patterns into parsed, type-checked
// packages for the analyzers, using only the standard library and the
// go command.
//
// The conventional loader for analysis tools is
// golang.org/x/tools/go/packages; this repository must also build in
// hermetic environments where module downloads are impossible, so load
// reimplements the narrow slice the analyzers need: it shells out to
// `go list -export -json -deps`, which compiles every dependency and
// reports the path of each package's export data, then type-checks the
// target packages from source with an importer that reads dependency
// types from that export data. This is the same division of labour
// go/packages uses in its default (export) mode.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	goruntime "runtime"
	"strings"
)

// A Package is one type-checked target package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	GoFiles   []string // absolute paths of the parsed files
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Config parameterizes a load.
type Config struct {
	// Dir is the working directory for the go command ("" = cwd).
	Dir string
	// Env, when non-nil, replaces the go command's environment. The
	// analysistest harness uses this to load GOPATH-mode fixtures.
	Env []string
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Imports    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching patterns.
// Packages named by the patterns are returned; their dependencies are
// consumed only as export data.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	listed, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by resolved import path.
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typecheck(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("load: no packages matched %v", patterns)
	}
	return pkgs, nil
}

func goList(cfg Config, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Imports,ImportMap,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = cfg.Env
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: starting go list: %v", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, nil
}

// typecheck parses a target package's files and type-checks them,
// resolving imports through compiled export data.
func typecheck(fset *token.FileSet, lp *listPackage, exports map[string]string) (*Package, error) {
	pkg := &Package{
		PkgPath: lp.ImportPath,
		Name:    lp.Name,
		Dir:     lp.Dir,
		Fset:    fset,
	}
	for _, f := range lp.GoFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		syntax, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Syntax = append(pkg.Syntax, syntax)
	}

	// The importer maps source-level import paths through the package's
	// ImportMap (vendoring, test shadowing) and then reads the compiled
	// export data `go list -export` produced.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", goruntime.GOARCH),
	}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Syntax, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
