// Package atomicpair flags mixed atomic and plain access to the same
// variable — the classic data race go vet does not diagnose.
//
// If any access to a variable goes through sync/atomic, every access
// must: a plain read racing an atomic.Store (or a plain write racing an
// atomic.Load) is undefined under the Go memory model, and in this
// codebase such fields are exactly the ones thieves and owners share
// (deque tops and bottoms, suspension counters, stats). The sync/atomic
// wrapper types (atomic.Int64 and friends) make mixed access
// inexpressible and are the preferred fix; this analyzer exists for the
// transitional pattern where a plain field is touched through the
// sync/atomic functions.
//
// Within one package, the analyzer records every variable or struct
// field whose address is taken directly in an argument to a sync/atomic
// function, then flags every other syntactic use of that variable —
// plain reads, plain writes, and aliasing through &x — since an alias
// escapes the analyzer's sight. A deliberate exception (e.g. a plain
// read inside a single-threaded constructor) is acknowledged with a
// statement-level //lhws:nonatomic directive carrying a justification.
package atomicpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"lhws/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicpair",
	Doc:  "check for non-atomic access to variables that are elsewhere accessed via sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find objects whose address feeds a sync/atomic call, and
	// remember the idents of those sanctioned accesses.
	atomicObjs := make(map[types.Object]token.Pos) // object -> first atomic site
	sanctioned := make(map[*ast.Ident]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Signature().Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				id := baseIdent(unary.X)
				if id == nil {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					continue
				}
				if v, ok := obj.(*types.Var); ok {
					if _, seen := atomicObjs[v]; !seen {
						atomicObjs[v] = call.Pos()
					}
					sanctioned[id] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: every other use of those objects is a mixed access.
	for _, file := range pass.Files {
		var skipKeys map[*ast.Ident]bool
		ast.Inspect(file, func(n ast.Node) bool {
			// Field names used as composite-literal keys resolve to the
			// field object but are initialization, not access.
			if lit, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range lit.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							if skipKeys == nil {
								skipKeys = make(map[*ast.Ident]bool)
							}
							skipKeys[key] = true
						}
					}
				}
				return true
			}
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] || skipKeys[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			site, mixed := atomicObjs[obj]
			if !mixed {
				return true
			}
			if pass.Suppressed(id.Pos(), "nonatomic") {
				return true
			}
			pass.Reportf(id.Pos(),
				"non-atomic access to %s, which is accessed via sync/atomic at %s; mixed access races",
				obj.Name(), pass.Fset.Position(site))
			return true
		})
	}
	return nil
}

// baseIdent returns the identifier naming the variable or field in an
// address-of operand: x in &x, the field ident in &s.f (however deep
// the selector chain).
func baseIdent(expr ast.Expr) *ast.Ident {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.IndexExpr:
		return baseIdent(e.X)
	}
	return nil
}
