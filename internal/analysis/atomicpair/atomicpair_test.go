package atomicpair_test

import (
	"testing"

	"lhws/internal/analysis/analysistest"
	"lhws/internal/analysis/atomicpair"
)

func TestAtomicPair(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, atomicpair.Analyzer, "a", "b")
}
