// Package a exercises the positive cases of the atomicpair analyzer.
package a

import "sync/atomic"

type counter struct {
	n    int64
	name string
}

// bump establishes that n is an atomically-accessed field.
func bump(c *counter) {
	atomic.AddInt64(&c.n, 1)
}

func read(c *counter) int64 {
	return c.n // want `non-atomic access to n`
}

func write(c *counter) {
	c.n = 0 // want `non-atomic access to n`
}

func alias(c *counter) *int64 {
	return &c.n // want `non-atomic access to n`
}

// label touches only the plain field; no finding.
func label(c *counter) string {
	return c.name
}

// construct initializes via a composite-literal key, which is not an
// access.
func construct() *counter {
	return &counter{n: 0, name: "x"}
}

var hits int64

func recordHit()      { atomic.AddInt64(&hits, 1) }
func loadHits() int64 { return atomic.LoadInt64(&hits) }
func peek() int64 {
	return hits // want `non-atomic access to hits`
}

// reset runs before any worker goroutine starts, so the plain store is
// justified.
func reset(c *counter) {
	c.n = 0 //lhws:nonatomic runs before the worker pool starts, no concurrent access yet
}

// dq models the deque's packed batch-steal claim word: thieves CAS it,
// so every other access must be atomic too.
type dq struct {
	claim int64
}

// tryClaim establishes claim as an atomically-accessed field.
func tryClaim(d *dq, start, n int64) bool {
	return atomic.CompareAndSwapInt64(&d.claim, 0, start<<8|n)
}

func release(d *dq) {
	atomic.StoreInt64(&d.claim, 0)
}

// ownerPeek races the thieves' CAS: a plain read of the claim word can
// miss a concurrent claim and let the owner pop a claimed slot.
func ownerPeek(d *dq) bool {
	return d.claim != 0 // want `non-atomic access to claim`
}
