// Package b is the clean fixture: counters are either consistently
// atomic or consistently plain, and the wrapper types make mixed
// access inexpressible.
package b

import "sync/atomic"

type stats struct {
	steals   atomic.Int64 // wrapper type: the preferred pattern
	rounds   int64        // plain, single-threaded
	attempts int64        // raw field, but every access is atomic
}

func record(s *stats) {
	s.steals.Add(1)
	atomic.AddInt64(&s.attempts, 1)
}

func snapshot(s *stats) (int64, int64) {
	return s.steals.Load(), atomic.LoadInt64(&s.attempts)
}

func tick(s *stats) {
	s.rounds++
}
