// Package rng is a fixture standing in for lhws/internal/rng, the one
// package allowed to touch math/rand global state (it is the sanctioned
// wrapper).
package rng

import "math/rand"

// Jitter may use the global source: this package is exempt.
func Jitter(n int) int {
	return rand.Intn(n)
}
