// Package b is the clean fixture: randomness flows through explicit,
// seeded generator instances only.
package b

import "math/rand"

type worker struct {
	rnd *rand.Rand
}

func newWorker(seed int64) *worker {
	return &worker{rnd: rand.New(rand.NewSource(seed))}
}

func (w *worker) pickVictim(n int) int {
	return w.rnd.Intn(n)
}
