// Package a exercises the positive cases of the rngplumb analyzer.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func draw() int {
	return rand.Intn(10) // want `rand\.Intn draws from math/rand global state`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from math/rand global state`
}

func drawV2() int {
	return randv2.IntN(10) // want `rand\.IntN draws from math/rand global state`
}

// seeded builds a caller-owned generator: the constructors and the
// instance methods are reproducible and allowed.
func seeded() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

func jitter() int {
	return rand.Int() //lhws:rand-ok demo-only jitter, not visible to experiments
}
