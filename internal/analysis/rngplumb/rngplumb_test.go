package rngplumb_test

import (
	"testing"

	"lhws/internal/analysis/analysistest"
	"lhws/internal/analysis/rngplumb"
)

func TestRNGPlumb(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, rngplumb.Analyzer, "a", "b", "lhws/internal/rng")
}
