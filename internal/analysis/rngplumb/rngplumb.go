// Package rngplumb keeps randomness plumbed through lhws/internal/rng.
//
// Deterministic replay is a first-class requirement here: a simulated
// execution must be bit-for-bit reproducible from its seed for
// experiments and regression tests to be stable, and the schedulers
// therefore draw every random decision from explicit, per-worker
// rng.RNG streams split from a root seed. The global source in
// math/rand (and math/rand/v2) breaks that twice over — its state is
// process-wide, so an unrelated draw anywhere perturbs every stream,
// and it is seeded non-deterministically by default.
//
// The analyzer flags any use of math/rand or math/rand/v2 package-level
// state — the global draw functions (Intn, Float64, Perm, Shuffle, ...)
// and Seed — outside lhws/internal/rng itself. Instance-based use
// (methods on a *rand.Rand the caller constructed) and the constructors
// and types needed to build instances are allowed: they are
// reproducible when seeded, though new code should still prefer
// internal/rng for splittable per-worker streams. An intentional
// exception is acknowledged with a statement-level //lhws:rand-ok
// directive carrying a justification.
package rngplumb

import (
	"go/ast"
	"go/types"
	"strings"

	"lhws/internal/analysis"
)

// RNGPath is the sanctioned randomness package.
const RNGPath = "lhws/internal/rng"

var Analyzer = &analysis.Analyzer{
	Name: "rngplumb",
	Doc:  "check that math/rand global state is not used outside internal/rng",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == RNGPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if !usesGlobalState(obj) {
				return true
			}
			if pass.Suppressed(id.Pos(), "rand-ok") {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s.%s draws from math/rand global state, breaking deterministic replay; use %s streams instead",
				obj.Pkg().Name(), obj.Name(), RNGPath)
			return true
		})
	}
	return nil
}

// usesGlobalState reports whether obj is part of math/rand's global
// source: the package-level draw functions and Seed. Types, methods on
// caller-owned values, and the New*/constructor family are instance
// machinery and allowed.
func usesGlobalState(obj types.Object) bool {
	switch obj := obj.(type) {
	case *types.Func:
		if obj.Signature().Recv() != nil {
			return false // method on a caller-constructed generator
		}
		return !strings.HasPrefix(obj.Name(), "New")
	case *types.Var:
		return true // no exported vars today; future-proof
	}
	return false // types, constants, package names
}
