// Package analysis is a minimal, dependency-free core for writing
// scheduler-aware static analyzers for this repository.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer holds a name, documentation, and a Run function over a
// Pass — but is built entirely on the standard library (go/ast,
// go/types, go/token) so the vet suite works in hermetic build
// environments with no module downloads. Packages are loaded by
// internal/analysis/load via `go list -export`, analyzers are composed
// into a driver by internal/analysis/multichecker, and analyzer test
// suites run fixtures through internal/analysis/analysistest.
//
// # Directives
//
// The analyzers in this tree enforce concurrency invariants the type
// system cannot see (deque ownership, non-blocking scheduling loops).
// Some call sites satisfy an invariant for reasons that are only
// visible dynamically — e.g. a task holds its worker's owner role
// between a resume and a report. Such sites declare the reason with a
// machine-readable directive comment:
//
//	//lhws:owner <justification>        assert the deque owner role
//	//lhws:nonblocking                  mark a function as a checked hot path
//	//lhws:nosuspend                    mark a function as a checked no-suspend region
//	//lhws:allowblock <justification>   permit one blocking operation
//	//lhws:allowsuspend <justification> permit one may-suspend call in a no-suspend region
//	//lhws:locksafe <justification>     permit one may-suspend call under a held lock
//	//lhws:ctxok <justification>        permit one Ctx escape from its task
//	//lhws:nonatomic <justification>    permit one mixed atomic/plain access
//	//lhws:rand-ok <justification>      permit one math/rand global use
//
// Function-level directives live in the function's doc comment;
// statement-level directives go on the flagged line or the line
// directly above it. Directives that suppress a finding must carry a
// non-empty justification: an analyzer treats a bare suppression as a
// finding of its own, so every exception in the tree documents why it
// is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	// It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation, shown by the driver's help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one application of an analyzer to one package: the parsed
// and type-checked inputs plus the Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-program call graph (see program.go), shared by
	// every pass of a driver run. Analyzers that use interprocedural
	// summaries must tolerate a nil Prog by falling back to their
	// intraprocedural checks.
	Prog *Program

	// Report receives each diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)

	directives directiveIndex
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// A Directive is one parsed //lhws:<name> <args> comment.
type Directive struct {
	Name string // the word after "lhws:"
	Args string // rest of the line, trimmed; the justification
	Pos  token.Pos
}

// DirectivePrefix introduces machine-readable comments recognized by the
// analyzers. The comment form //lhws:name (no space after //) follows the
// Go convention for tool directives, which gofmt preserves verbatim.
const DirectivePrefix = "lhws:"

// ParseDirective parses a single comment's text, returning ok=false for
// ordinary comments.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text, found := strings.CutPrefix(c.Text, "//"+DirectivePrefix)
	if !found {
		return Directive{}, false
	}
	name, args, _ := strings.Cut(text, " ")
	if name == "" {
		return Directive{}, false
	}
	// Allow a trailing comment after the justification (used by analyzer
	// test fixtures for // want markers).
	if i := strings.Index(args, "//"); i >= 0 {
		args = args[:i]
	}
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// directiveIndex maps filename -> line -> parsed directives; shared by
// the per-package Pass and the whole-program Program.
type directiveIndex map[string]map[int][]Directive

func (idx directiveIndex) addFile(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := ParseDirective(c)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			byLine := idx[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]Directive)
				idx[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], d)
		}
	}
}

// at returns the named directive attached to the statement at pos: on
// the same source line or on the line immediately above.
func (idx directiveIndex) at(fset *token.FileSet, pos token.Pos, name string) (Directive, bool) {
	position := fset.Position(pos)
	byLine := idx[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range byLine[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// DirectiveAt returns the named directive attached to the statement at
// pos: on the same source line or on the line immediately above.
func (p *Pass) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	if p.directives == nil {
		p.directives = make(directiveIndex)
		for _, f := range p.Files {
			p.directives.addFile(p.Fset, f)
		}
	}
	return p.directives.at(p.Fset, pos, name)
}

// FuncDirective returns the named directive from a function's doc
// comment.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	if fn == nil || fn.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fn.Doc.List {
		if d, ok := ParseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Suppressed reports whether a finding of the given directive name at
// pos is suppressed, and reports a diagnostic of its own when the
// suppression carries no justification. Analyzers call this exactly at
// the point they would otherwise report.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	d, ok := p.DirectiveAt(pos, name)
	if !ok {
		return false
	}
	if d.Args == "" {
		p.Reportf(d.Pos, "%s%s directive needs a justification", DirectivePrefix, name)
	}
	return true
}

// SortDiagnostics orders diagnostics by file position, then analyzer,
// for stable driver output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// ReceiverNamed returns the named type of a method receiver expression
// type (unwrapping pointers and aliases), or nil.
func ReceiverNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// Callee resolves the static callee of a call expression, or nil for
// calls of function values, type conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}
