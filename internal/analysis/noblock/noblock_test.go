package noblock_test

import (
	"testing"

	"lhws/internal/analysis/analysistest"
	"lhws/internal/analysis/noblock"
)

func TestNoBlock(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, noblock.Analyzer, "lhws/a", "lhws/b", "lhws/tasknet")
}
