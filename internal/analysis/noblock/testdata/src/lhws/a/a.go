// Package a exercises the positive cases of the noblock analyzer.
package a

import (
	"sync"
	"time"

	"lhws/blocky"
	"lhws/internal/deque"
	"lhws/internal/faultpoint"
)

// hot is a checked scheduling hot path.
//
//lhws:nonblocking
func hot(mu *sync.Mutex, wg *sync.WaitGroup, ch chan int) {
	mu.Lock()                    // want `may park on lock contention`
	time.Sleep(time.Millisecond) // want `sleeps the worker`
	wg.Wait()                    // want `parks until the group drains`
	ch <- 1                      // want `channel send blocks`
	<-ch                         // want `channel receive blocks`
	select {                     // want `select without default`
	case <-ch:
	}
	for range ch { // want `range over channel`
	}
	helper()  // provably non-blocking: the summary-based rule clears it unannotated
	sleeper() // want `call may block the worker: a\.sleeper → a\.nap → time\.Sleep`
	waits(ch) // want `call may block the worker: a\.waits`
	vetted(ch)
	var f func()
	f() // want `function value`
}

// crossPkg shows the old same-package-only rule's false negative is
// gone: a blocking helper one package away is caught with its chain.
//
//lhws:nonblocking
func crossPkg(ch chan int) {
	blocky.Park(ch) // want `call may block the worker: blocky\.Park`
}

// lockedDeque shows the mutex-backed deque is banned from hot paths.
//
//lhws:nonblocking
func lockedDeque(d *deque.Locked) {
	d.PushBottom(nil) // want `mutex-backed deque`
}

// chaosHot shows the fault injector's task-side hook is banned from hot
// paths: Inject sleeps or panics by design.
//
//lhws:nonblocking
func chaosHot(inj *faultpoint.Injector) {
	inj.Inject(faultpoint.Suspend) // want `sleeps or panics by design`
}

// helper is provably non-blocking; no annotation needed.
func helper() {}

// sleeper reaches time.Sleep two hops down; the summary carries the
// witness chain to the flagged call site.
func sleeper() { nap() }

func nap() { time.Sleep(time.Millisecond) }

// waits parks on a bare channel receive; the syntactic scan marks it.
func waits(ch chan int) { <-ch }

// vetted blocks, but the operation is justified where it happens, so
// the escape also stops the summary from tainting callers.
func vetted(ch chan int) {
	<-ch //lhws:allowblock drained by the test harness before workers start
}

// cold is unannotated: nothing inside it is checked.
func cold(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
