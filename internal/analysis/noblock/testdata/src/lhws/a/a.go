// Package a exercises the positive cases of the noblock analyzer.
package a

import (
	"sync"
	"time"

	"lhws/internal/deque"
	"lhws/internal/faultpoint"
)

// hot is a checked scheduling hot path.
//
//lhws:nonblocking
func hot(mu *sync.Mutex, wg *sync.WaitGroup, ch chan int) {
	mu.Lock()                    // want `may park on lock contention`
	time.Sleep(time.Millisecond) // want `sleeps the worker`
	wg.Wait()                    // want `parks until the group drains`
	ch <- 1                      // want `channel send blocks`
	<-ch                         // want `channel receive blocks`
	select {                     // want `select without default`
	case <-ch:
	}
	for range ch { // want `range over channel`
	}
	helper() // want `not marked //lhws:nonblocking`
	var f func()
	f() // want `function value`
}

// lockedDeque shows the mutex-backed deque is banned from hot paths.
//
//lhws:nonblocking
func lockedDeque(d *deque.Locked) {
	d.PushBottom(nil) // want `mutex-backed deque`
}

// chaosHot shows the fault injector's task-side hook is banned from hot
// paths: Inject sleeps or panics by design.
//
//lhws:nonblocking
func chaosHot(inj *faultpoint.Injector) {
	inj.Inject(faultpoint.Suspend) // want `sleeps or panics by design`
}

func helper() {}

// cold is unannotated: nothing inside it is checked.
func cold(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
