// Package tasknet exercises the bare-net-call-in-task-code rule: any
// function or closure taking a *runtime.Ctx is task code, and direct
// net reads/writes/accepts/dials inside it park the worker.
package tasknet

import (
	"net"

	"lhws/internal/runtime"
)

func task(c *runtime.Ctx, cn net.Conn, l net.Listener) {
	buf := make([]byte, 8)
	cn.Read(buf)             // want `blocks the worker under this task`
	cn.Write(buf)            // want `blocks the worker under this task`
	l.Accept()               // want `blocks the worker under this task`
	net.Dial("tcp", "x:1")   // want `blocks the worker under this task`
	net.LookupHost("x.test") // want `blocks the worker under this task`
}

// closures with a Ctx parameter are task code too — the common spawn
// shape.
func spawnShape(c *runtime.Ctx, cn net.Conn) {
	f := func(cc *runtime.Ctx) {
		cn.Read(nil) // want `blocks the worker under this task`
	}
	_ = f
}

// bind shows the sanctioned escape hatch for genuinely immediate calls.
func bind(c *runtime.Ctx) {
	net.Listen("tcp", "127.0.0.1:0") //lhws:allowblock bind+listen complete immediately
}

// helper has no Ctx parameter: its execution context is unknown, so it
// is not checked (callers vouch for it).
func helper(cn net.Conn) {
	cn.Read(nil)
}

// typedConn shows the rule sees concrete net types, not just the
// interfaces.
func typedConn(c *runtime.Ctx, tc *net.TCPConn) {
	tc.Write(nil) // want `blocks the worker under this task`
}
