// Package b is the clean fixture: a hot path that polls, spawns, uses
// the lock-free deque, and justifies its one deliberate blocking call.
package b

import (
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/deque"
	"lhws/internal/faultpoint"
)

// loop is the fixture's nonblocking scheduling loop.
//
//lhws:nonblocking
func loop(d *deque.ChaseLev, done chan struct{}, n *atomic.Int64) bool {
	// Polling a channel with a default case does not park.
	select {
	case <-done:
		return true
	default:
	}
	if it, ok := d.PopBottom(); ok {
		_ = it
		n.Add(1)
	}
	// Spawning is not blocking; the goroutine body is outside this hot path.
	go func(ch chan struct{}) {
		<-ch
	}(done)
	step(n)
	backoff()
	return false
}

// step is a helper vetted into the hot path.
//
//lhws:nonblocking
func step(n *atomic.Int64) { n.Add(1) }

// backoff escalates to a short sleep, which is deliberate: it yields
// the processor so timer goroutines run even on a single P.
//
//lhws:nonblocking
func backoff() {
	time.Sleep(time.Microsecond) //lhws:allowblock deliberate escalating backoff between failed steals
}

// failSteal consults the fault injector with its non-blocking Decide
// hook, which is permitted on hot paths (unlike Inject).
//
//lhws:nonblocking
func failSteal(inj *faultpoint.Injector) bool {
	if inj == nil {
		return false
	}
	act, _ := inj.Decide(faultpoint.Steal)
	return act == faultpoint.Fail
}

// watchdog is a monitor goroutine, not a worker hot path: unannotated,
// it may park on its ticker and call the injector's blocking hook.
func watchdog(inj *faultpoint.Injector, stop chan struct{}) {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	select {
	case <-stop:
	case <-tick.C:
		inj.Inject(faultpoint.ResumeInject)
	}
}

// drain is a blocking-mode function; it is not annotated and therefore
// free to block.
func drain(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch
}
