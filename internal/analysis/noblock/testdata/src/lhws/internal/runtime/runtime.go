// Package runtime is a fixture stand-in for lhws/internal/runtime: the
// noblock analyzer only needs the Ctx type's identity to recognize task
// code.
package runtime

// Ctx marks a parameter list as task code.
type Ctx struct{}
