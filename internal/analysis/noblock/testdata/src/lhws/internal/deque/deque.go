// Package deque is a fixture standing in for the real
// lhws/internal/deque, providing the method names noblock's blocking
// set refers to.
package deque

type Item interface{}

type ChaseLev struct{ items []Item }

func (d *ChaseLev) PushBottom(it Item) { d.items = append(d.items, it) }
func (d *ChaseLev) PopBottom() (Item, bool) {
	if len(d.items) == 0 {
		return nil, false
	}
	it := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return it, true
}

type Locked struct{ items []Item }

func (d *Locked) PushBottom(it Item) { d.items = append(d.items, it) }
func (d *Locked) PopBottom() (Item, bool) {
	if len(d.items) == 0 {
		return nil, false
	}
	it := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return it, true
}
