// Package faultpoint is a fixture standing in for the real
// lhws/internal/faultpoint, providing the Injector methods noblock's
// blocking set refers to.
package faultpoint

import "time"

type Point int

const (
	Steal Point = iota
	Suspend
	ResumeInject
)

type Action int

const (
	None Action = iota
	Fail
)

type Injector struct{}

// Decide never blocks beyond a leaf mutex; hot paths may call it.
func (in *Injector) Decide(p Point) (Action, time.Duration) { return None, 0 }

// Inject sleeps or panics by design; banned from nonblocking contexts.
func (in *Injector) Inject(p Point) {}
