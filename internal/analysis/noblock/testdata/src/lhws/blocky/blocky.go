// Package blocky is a dependency fixture: an unannotated, unescaped
// blocking helper in another package, invisible to the old
// same-package rule and caught by the summary-based one.
package blocky

// Park parks on a channel receive.
func Park(ch chan int) int { return <-ch }
