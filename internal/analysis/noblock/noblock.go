// Package noblock checks that scheduler hot-path functions never block
// the worker.
//
// The latency-hiding bound of Theorem 2 — O(W/P + S·U·(1+lg U))
// expected time — holds only if workers make a scheduling decision
// every round: a worker that parks inside the scheduling loop stops
// executing ready work and stops stealing, re-introducing exactly the
// idle time latency hiding exists to remove. Suspension through heavy
// edges (task-side yield to the worker loop) is the only sanctioned
// wait.
//
// A function declares itself part of the checked hot path with an
// //lhws:nonblocking doc-comment directive. Inside such functions the
// analyzer flags:
//
//   - channel sends, receives, range-over-channel, and select
//     statements without a default clause;
//   - calls to known parking operations: time.Sleep, mutex and RWMutex
//     Lock/RLock, WaitGroup.Wait, Cond.Wait, Once.Do, the mutex-backed
//     deque (lhws/internal/deque.Locked), whose every operation takes a
//     lock — hot paths must use the lock-free ChaseLev — and the fault
//     injector's task-side Inject, which sleeps or panics by design
//     (worker hot paths consult Decide instead);
//   - calls to function values (closures, func fields), whose targets
//     the analyzer cannot see;
//   - calls to same-package functions that are not themselves marked
//     //lhws:nonblocking, so the discipline propagates through the call
//     graph one annotation at a time.
//
// Individual operations that are blocking by design — a bounded leaf
// critical section, the task-grant handoff, deliberate backoff — are
// acknowledged with a statement-level //lhws:allowblock directive whose
// argument must state the justification.
//
// Independently of the directive, the analyzer checks task code: any
// function or closure that takes a *runtime.Ctx parameter runs on a
// worker, so a bare net call inside it (conn.Read, listener.Accept,
// net.Dial, DNS lookups) parks that worker for the operation's full
// latency — precisely the blocking baseline the latency-hiding
// scheduler exists to beat. Such calls are flagged with a pointer to
// lhws/internal/io, whose Conn/Listener/Dial suspend the task through a
// heavy edge instead. //lhws:allowblock acknowledges deliberate
// exceptions (an immediate bind, a diagnostic path).
package noblock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lhws/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noblock",
	Doc:  "check that //lhws:nonblocking scheduler hot paths contain no blocking operations",
	Run:  run,
}

// blockingCalls maps types.Func.FullName to the reason it parks.
var blockingCalls = map[string]string{
	"time.Sleep":                                  "sleeps the worker",
	"(*sync.Mutex).Lock":                          "may park on lock contention",
	"(*sync.RWMutex).Lock":                        "may park on lock contention",
	"(*sync.RWMutex).RLock":                       "may park on lock contention",
	"(*sync.WaitGroup).Wait":                      "parks until the group drains",
	"(*sync.Cond).Wait":                           "parks until signalled",
	"(*sync.Once).Do":                             "parks while another goroutine runs the function",
	"(sync.Locker).Lock":                          "may park on lock contention",
	"(*lhws/internal/deque.Locked).PushBottom":    "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).PopBottom":     "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).PopTop":        "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).Len":           "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).Empty":         "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/faultpoint.Injector).Inject": "sleeps or panics by design (chaos injection); worker hot paths must use Decide and act non-blockingly",
}

// netBlockingNames are the package-net functions and methods (on any of
// net's conn/listener types or interfaces) that park the calling
// goroutine for a network round trip.
var netBlockingNames = map[string]bool{
	"Read":        true,
	"Write":       true,
	"Accept":      true,
	"Dial":        true,
	"DialContext": true,
	"DialTimeout": true,
	"Listen":      true,
	"ReadFrom":    true,
	"WriteTo":     true,
}

func run(pass *analysis.Pass) error {
	checkTaskNet(pass)
	// First pass: which same-package functions are declared nonblocking?
	nonblocking := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := analysis.FuncDirective(fd, "nonblocking"); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					nonblocking[obj] = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil && nonblocking[obj] {
				check(pass, fd, nonblocking)
			}
		}
	}
	return nil
}

// checkTaskNet flags bare net calls in task code — every FuncDecl and
// FuncLit whose parameters include a *runtime.Ctx.
func checkTaskNet(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil || !hasCtxParam(pass, ft) {
				return true
			}
			checkNetCalls(pass, body)
			return true // nested task closures still get their own visit
		})
	}
}

func checkNetCalls(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested closure is checked on its own terms: with a Ctx
			// param it is task code itself; without one its execution
			// context is unknowable here.
			return false
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net" {
				return true
			}
			name := fn.Name()
			if netBlockingNames[name] || strings.HasPrefix(name, "Lookup") {
				report(pass, n.Pos(),
					"%s blocks the worker under this task for the operation's full latency; use lhws/internal/io so the task suspends instead",
					fn.FullName())
			}
		}
		return true
	})
}

// hasCtxParam reports whether the signature takes a *runtime.Ctx (the
// marker that the function body runs as task code on a worker).
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() != "Ctx" || obj.Pkg() == nil {
			continue
		}
		if p := obj.Pkg().Path(); p == "lhws/internal/runtime" || p == "lhws" {
			return true
		}
	}
	return false
}

func check(pass *analysis.Pass, fd *ast.FuncDecl, nonblocking map[types.Object]bool) {
	// The send/receive in a select's comm clauses is accounted for by the
	// select itself (blocking iff there is no default case); collect those
	// nodes so the general send/receive cases below skip them.
	commOps := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				commOps[comm] = true
			case *ast.ExprStmt:
				commOps[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					commOps[ast.Unparen(rhs)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if commOps[n] {
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawning is not blocking; the spawned body runs on another
			// goroutine and is outside this function's hot path.
			return false
		case *ast.FuncLit:
			// A literal merely defined here may run elsewhere; only calls
			// are checked, and an immediate call is caught as indirect.
			return false
		case *ast.SendStmt:
			report(pass, n.Pos(), "channel send blocks the worker loop; suspend via heavy edges instead")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(pass, n.Pos(), "channel receive blocks the worker loop; suspend via heavy edges instead")
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(pass, n.Pos(), "range over channel blocks the worker loop")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				report(pass, n.Pos(), "select without default blocks the worker loop")
			}
		case *ast.CallExpr:
			checkCall(pass, n, nonblocking)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, nonblocking map[types.Object]bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		// Conversion, builtin, or a call of a function value. The first
		// two are harmless; the last is opaque, so it must be vouched for.
		if isOpaqueCall(pass, call) {
			report(pass, call.Pos(), "call of a function value from a nonblocking context; the analyzer cannot see its body")
		}
		return
	}
	if reason, ok := blockingCalls[fn.FullName()]; ok {
		report(pass, call.Pos(), "%s %s", fn.FullName(), reason)
		return
	}
	if (fn.Pkg() == pass.Pkg && fn.Signature().Recv() == nil) || samePackageMethod(pass, fn) {
		if !nonblocking[funcObject(fn)] {
			report(pass, call.Pos(), "call to %s, which is not marked //lhws:nonblocking; annotate it or justify with //lhws:allowblock", fn.Name())
		}
	}
}

// samePackageMethod reports whether fn is a concrete method declared in
// the package under analysis (interface methods have no body to vet and
// are skipped).
func samePackageMethod(pass *analysis.Pass, fn *types.Func) bool {
	if fn.Pkg() != pass.Pkg {
		return false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	if _, ok := recv.Type().Underlying().(*types.Interface); ok {
		return false
	}
	return true
}

func funcObject(fn *types.Func) types.Object {
	return fn.Origin()
}

// isOpaqueCall reports whether call invokes a function value (rather
// than a conversion or builtin).
func isOpaqueCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	if tv.IsType() || tv.IsBuiltin() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

func report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if pass.Suppressed(pos, "allowblock") {
		return
	}
	pass.Reportf(pos, format, args...)
}
