// Package noblock checks that scheduler hot-path functions never block
// the worker.
//
// The latency-hiding bound of Theorem 2 — O(W/P + S·U·(1+lg U))
// expected time — holds only if workers make a scheduling decision
// every round: a worker that parks inside the scheduling loop stops
// executing ready work and stops stealing, re-introducing exactly the
// idle time latency hiding exists to remove. Suspension through heavy
// edges (task-side yield to the worker loop) is the only sanctioned
// wait.
//
// A function declares itself part of the checked hot path with an
// //lhws:nonblocking doc-comment directive. Inside such functions the
// analyzer flags:
//
//   - channel sends, receives, range-over-channel, and select
//     statements without a default clause;
//   - calls to known parking operations: time.Sleep, mutex and RWMutex
//     Lock/RLock, WaitGroup.Wait, Cond.Wait, Once.Do, the mutex-backed
//     deque (lhws/internal/deque.Locked), whose every operation takes a
//     lock — hot paths must use the lock-free ChaseLev — and the fault
//     injector's task-side Inject, which sleeps or panics by design
//     (worker hot paths consult Decide instead);
//   - calls to function values (closures, func fields), whose targets
//     the analyzer cannot see;
//   - calls to any function — same package or not — whose transitive
//     may-block summary (see internal/analysis/facts.MayBlock) shows
//     an unescaped path to a parking operation. The diagnostic carries
//     the witness chain. Callees that are themselves marked
//     //lhws:nonblocking are not re-flagged at the call site: their
//     bodies are checked on their own terms, so a violation is
//     reported once, where it happens.
//
// The summary-based rule replaces the old syntactic one ("any call to
// a same-package function not marked //lhws:nonblocking"), which was
// both a false-positive generator — provably non-blocking helpers had
// to be annotated or escaped — and a false-negative one: a blocking
// helper one package away was invisible.
//
// Individual operations that are blocking by design — a bounded leaf
// critical section, the task-grant handoff, deliberate backoff — are
// acknowledged with a statement-level //lhws:allowblock directive whose
// argument must state the justification. Justified escapes also stop
// the summary propagation: a blocking operation acknowledged where it
// happens does not taint the functions above it.
//
// Independently of the directive, the analyzer checks task code: any
// function or closure that takes a *runtime.Ctx parameter runs on a
// worker, so a bare net call inside it (conn.Read, listener.Accept,
// net.Dial, DNS lookups) parks that worker for the operation's full
// latency — precisely the blocking baseline the latency-hiding
// scheduler exists to beat. Both direct net calls and calls to helpers
// whose net-block summary reaches one are flagged, with a pointer to
// lhws/internal/io, whose Conn/Listener/Dial suspend the task through a
// heavy edge instead. Helpers that take a Ctx themselves are task code
// in their own right and are checked (and flagged) there, not at their
// call sites. //lhws:allowblock acknowledges deliberate exceptions (an
// immediate bind, a diagnostic path).
package noblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"lhws/internal/analysis"
	"lhws/internal/analysis/facts"
)

var Analyzer = &analysis.Analyzer{
	Name: "noblock",
	Doc:  "check that //lhws:nonblocking scheduler hot paths contain no blocking operations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkTaskNet(pass)
	// Which same-package functions are declared nonblocking? (For other
	// packages the Program answers; for a nil Prog only same-package
	// annotations are visible, matching the old behaviour.)
	nonblocking := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := analysis.FuncDirective(fd, "nonblocking"); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					nonblocking[obj] = true
				}
			}
		}
	}
	var mayBlock func(*types.Func) (string, bool)
	if pass.Prog != nil {
		mayBlock = facts.MayBlock(pass.Prog).Call
	} else {
		mayBlock = facts.MayBlockLeaf
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil && nonblocking[obj] {
				check(pass, fd, nonblocking, mayBlock)
			}
		}
	}
	return nil
}

// checkTaskNet flags net calls that block the worker in task code —
// every FuncDecl and FuncLit whose parameters include a *runtime.Ctx.
func checkTaskNet(pass *analysis.Pass) {
	var netBlock func(*types.Func) (string, bool)
	if pass.Prog != nil {
		netBlock = facts.NetBlock(pass.Prog).Call
	} else {
		netBlock = facts.NetBlockLeaf
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil || !hasCtxParam(pass, ft) {
				return true
			}
			checkNetCalls(pass, body, netBlock)
			return true // nested task closures still get their own visit
		})
	}
}

func checkNetCalls(pass *analysis.Pass, body *ast.BlockStmt, netBlock func(*types.Func) (string, bool)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested closure is checked on its own terms: with a Ctx
			// param it is task code itself; without one its execution
			// context is unknowable here.
			return false
		case *ast.GoStmt:
			// The spawned body runs on its own goroutine, not under
			// this task's worker.
			return false
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			if _, direct := facts.NetBlockLeaf(fn); direct {
				report(pass, n.Pos(),
					"%s blocks the worker under this task for the operation's full latency; use lhws/internal/io so the task suspends instead",
					fn.FullName())
				return true
			}
			// Transitive: a helper without a Ctx of its own that reaches
			// a bare net call. Ctx-taking helpers are task code and are
			// checked where they are defined.
			if facts.TakesCtx(fn) {
				return true
			}
			if desc, ok := netBlock(fn); ok {
				report(pass, n.Pos(),
					"call reaches a blocking net call under this task: %s; use lhws/internal/io so the task suspends instead",
					desc)
			}
		}
		return true
	})
}

// hasCtxParam reports whether the signature takes a *runtime.Ctx (the
// marker that the function body runs as task code on a worker).
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && facts.IsCtxPtr(t) {
			return true
		}
	}
	return false
}

func check(pass *analysis.Pass, fd *ast.FuncDecl, nonblocking map[types.Object]bool, mayBlock func(*types.Func) (string, bool)) {
	// The send/receive in a select's comm clauses is accounted for by the
	// select itself (blocking iff there is no default case).
	commOps := facts.SelectCommOps(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if commOps[n] {
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawning is not blocking; the spawned body runs on another
			// goroutine and is outside this function's hot path.
			return false
		case *ast.FuncLit:
			// A literal merely defined here may run elsewhere; only calls
			// are checked, and an immediate call is caught as indirect.
			return false
		case *ast.SendStmt:
			report(pass, n.Pos(), "channel send blocks the worker loop; suspend via heavy edges instead")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(pass, n.Pos(), "channel receive blocks the worker loop; suspend via heavy edges instead")
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(pass, n.Pos(), "range over channel blocks the worker loop")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				report(pass, n.Pos(), "select without default blocks the worker loop")
			}
		case *ast.CallExpr:
			checkCall(pass, n, nonblocking, mayBlock)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, nonblocking map[types.Object]bool, mayBlock func(*types.Func) (string, bool)) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		// Conversion, builtin, or a call of a function value. The first
		// two are harmless; the last is opaque, so it must be vouched for.
		if isOpaqueCall(pass, call) {
			report(pass, call.Pos(), "call of a function value from a nonblocking context; the analyzer cannot see its body")
		}
		return
	}
	if reason, ok := facts.BlockingCalls[fn.FullName()]; ok {
		report(pass, call.Pos(), "%s %s", fn.FullName(), reason)
		return
	}
	// A callee marked //lhws:nonblocking is checked where it is
	// defined; re-flagging its call sites would report each violation
	// many times.
	if nonblocking[fn.Origin()] {
		return
	}
	if pass.Prog != nil && pass.Prog.FuncMarked(fn, "nonblocking") {
		return
	}
	if desc, ok := mayBlock(fn); ok {
		report(pass, call.Pos(), "call may block the worker: %s; make the callee non-blocking (and mark it //lhws:nonblocking) or justify with //lhws:allowblock", desc)
	}
}

// isOpaqueCall reports whether call invokes a function value (rather
// than a conversion or builtin).
func isOpaqueCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	if tv.IsType() || tv.IsBuiltin() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

func report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if pass.Suppressed(pos, "allowblock") {
		return
	}
	pass.Reportf(pos, format, args...)
}
