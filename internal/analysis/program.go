// Interprocedural layer: a whole-program call graph with per-function
// fact summaries.
//
// The per-package Pass model is enough for syntactic invariants (a
// deque operation outside an //lhws:owner region is wrong wherever it
// appears), but the scheduler's most dangerous bugs are properties of
// call *chains*: a function three packages away from Await is still a
// may-suspend function, and calling it from a nonblocking worker loop
// or while holding a mutex is exactly as wrong as calling Await
// directly. A Program makes those chains visible: the driver builds one
// call graph over every loaded package (dependencies included), and
// analyzers derive FactSets — transitive function summaries such as
// "may suspend the calling task" — that propagate leaf facts up the
// graph with a witness chain for each derived fact, so a diagnostic can
// say not just *that* a call misbehaves but *through which calls*.
//
// Facts are deliberately boolean per function and flow only from callee
// to caller, which keeps propagation a linear-time worklist pass and
// the results easy to export (see FactRecords). Analyzers compose by
// sharing fact definitions: Program.Facts memoizes per definition name,
// so suspendcolor and lockheld compute the may-suspend coloring once.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A ProgramPackage is one loaded, type-checked package contributing
// source to the Program's call graph.
type ProgramPackage struct {
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info
}

// A FuncNode is one function body in the program: a declared function
// or method, or a function literal.
type FuncNode struct {
	// Obj is the declared function's object (its generic origin, for
	// methods of generic types); nil for function literals.
	Obj *types.Func
	// Decl is the declaration; nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Parent is the enclosing function node; non-nil only for literals.
	Parent *FuncNode
	// Pkg is the package the body was parsed from.
	Pkg *ProgramPackage
	// Calls are the call sites in the body, in source order. Calls
	// inside nested literals belong to the literal's own node; calls
	// spawned by a go statement are excluded (the spawned body runs on
	// another goroutine, so its facts do not apply to this function).
	Calls []CallSite
}

// Name returns a human-readable label for the node.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return FuncLabel(n.Obj)
	}
	return "function literal"
}

// A CallSite is one call expression inside a FuncNode.
type CallSite struct {
	Call *ast.CallExpr
	Pos  token.Pos
	// Callee is the static callee's origin, or nil for calls of
	// function values, conversions, and builtins.
	Callee *types.Func
	// LitNode is the called literal's node when the call invokes a
	// function literal in place (func(){...}() and defer func(){...}()),
	// linking the literal's facts to the enclosing function.
	LitNode *FuncNode
}

// A Program is the whole-program call graph the driver builds over
// every loaded package and hands to each Pass.
type Program struct {
	Fset     *token.FileSet
	Packages []*ProgramPackage

	funcs   map[*types.Func]*FuncNode
	lits    map[*ast.FuncLit]*FuncNode
	nodes   []*FuncNode
	callers map[*FuncNode][]callerEdge
	facts   map[string]*FactSet
	dirs    directiveIndex
}

type callerEdge struct {
	caller *FuncNode
	site   *CallSite
}

// BuildProgram constructs the call graph. All packages must share fset,
// and cross-package facts flow only between packages present here, so
// drivers load dependencies from source (see internal/analysis/load).
func BuildProgram(fset *token.FileSet, pkgs []*ProgramPackage) *Program {
	p := &Program{
		Fset:     fset,
		Packages: pkgs,
		funcs:    make(map[*types.Func]*FuncNode),
		lits:     make(map[*ast.FuncLit]*FuncNode),
		facts:    make(map[string]*FactSet),
		dirs:     make(directiveIndex),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			p.dirs.addFile(fset, file)
			b := &progBuilder{prog: p, pkg: pkg, goCalls: goCalls(file)}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &FuncNode{Obj: fn.Origin(), Decl: fd, Pkg: pkg}
				p.funcs[fn.Origin()] = n
				p.nodes = append(p.nodes, n)
				b.scan(n, fd.Body)
			}
		}
	}
	p.callers = make(map[*FuncNode][]callerEdge)
	for _, n := range p.nodes {
		for i := range n.Calls {
			cs := &n.Calls[i]
			target := cs.LitNode
			if target == nil && cs.Callee != nil {
				target = p.funcs[cs.Callee]
			}
			if target != nil {
				p.callers[target] = append(p.callers[target], callerEdge{caller: n, site: cs})
			}
		}
	}
	return p
}

// goCalls returns the call expressions that are go statements in file.
func goCalls(file *ast.File) map[*ast.CallExpr]bool {
	m := make(map[*ast.CallExpr]bool)
	ast.Inspect(file, func(x ast.Node) bool {
		if g, ok := x.(*ast.GoStmt); ok {
			m[g.Call] = true
		}
		return true
	})
	return m
}

type progBuilder struct {
	prog    *Program
	pkg     *ProgramPackage
	goCalls map[*ast.CallExpr]bool
}

// scan records n's call sites and creates nodes for nested literals.
func (b *progBuilder) scan(n *FuncNode, body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if b.prog.lits[x] == nil {
				child := &FuncNode{Lit: x, Parent: n, Pkg: b.pkg}
				b.prog.lits[x] = child
				b.prog.nodes = append(b.prog.nodes, child)
				b.scan(child, x.Body)
			}
			return false
		case *ast.CallExpr:
			if b.goCalls[x] {
				return true // spawned call: not part of this function
			}
			cs := CallSite{Call: x, Pos: x.Pos()}
			if fn := Callee(b.pkg.Info, x); fn != nil {
				cs.Callee = fn.Origin()
			}
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				if b.prog.lits[lit] == nil {
					child := &FuncNode{Lit: lit, Parent: n, Pkg: b.pkg}
					b.prog.lits[lit] = child
					b.prog.nodes = append(b.prog.nodes, child)
					b.scan(child, lit.Body)
				}
				cs.LitNode = b.prog.lits[lit]
			}
			n.Calls = append(n.Calls, cs)
		}
		return true
	})
}

// FuncNode returns the node for a declared function, or nil if its body
// is not part of the program (interface methods, unloaded packages).
func (p *Program) FuncNode(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.funcs[fn.Origin()]
}

// LitNode returns the node for a function literal in a loaded file.
func (p *Program) LitNode(lit *ast.FuncLit) *FuncNode { return p.lits[lit] }

// DirectiveAt returns the named //lhws: directive attached to pos (same
// line or the line above) anywhere in the program.
func (p *Program) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	return p.dirs.at(p.Fset, pos, name)
}

// FuncMarked reports whether fn's declaration carries the named
// function-level directive (in any loaded package).
func (p *Program) FuncMarked(fn *types.Func, name string) bool {
	n := p.FuncNode(fn)
	if n == nil {
		return false
	}
	_, ok := FuncDirective(n.Decl, name)
	return ok
}

// A FactDef defines one propagated function fact. Facts are boolean
// ("calling this function may X") and flow from callee to caller.
type FactDef struct {
	// Name keys the memoized FactSet on the Program.
	Name string
	// Calls reports whether calling fn is itself a source of the fact
	// (a leaf in the seed table), with the reason. It is consulted for
	// every statically resolved callee, including functions with no
	// body in the program.
	Calls func(fn *types.Func) (string, bool)
	// Scan, when non-nil, reports a syntactic source of the fact inside
	// the node's own body (e.g. a channel operation), with its position.
	Scan func(p *Program, n *FuncNode) (token.Pos, string, bool)
	// SkipCall, when non-nil, reports call sites the fact must not
	// propagate through — typically sites carrying a justified escape
	// directive.
	SkipCall func(p *Program, n *FuncNode, cs *CallSite) bool
}

// A FactSet is the result of propagating one FactDef over the program:
// for each function, whether it has the fact and a witness chain saying
// why.
type FactSet struct {
	def   FactDef
	prog  *Program
	marks map[*FuncNode]*factMark
}

// factMark records why a node has a fact: a syntactic source (reason
// only), a direct call to a leaf (callee+reason), or a call to another
// marked node (next).
type factMark struct {
	pos    token.Pos
	reason string
	callee *types.Func
	next   *FuncNode
}

// Facts propagates def over the program, memoized by def.Name.
func (p *Program) Facts(def FactDef) *FactSet {
	if fs, ok := p.facts[def.Name]; ok {
		return fs
	}
	fs := &FactSet{def: def, prog: p, marks: make(map[*FuncNode]*factMark)}
	var queue []*FuncNode
	mark := func(n *FuncNode, m *factMark) {
		if fs.marks[n] == nil {
			fs.marks[n] = m
			queue = append(queue, n)
		}
	}
	for _, n := range p.nodes {
		if def.Scan != nil {
			if pos, reason, ok := def.Scan(p, n); ok {
				mark(n, &factMark{pos: pos, reason: reason})
			}
		}
		for i := range n.Calls {
			cs := &n.Calls[i]
			if cs.Callee == nil {
				continue
			}
			if reason, ok := def.Calls(cs.Callee); ok {
				if def.SkipCall != nil && def.SkipCall(p, n, cs) {
					continue
				}
				mark(n, &factMark{pos: cs.Pos, reason: reason, callee: cs.Callee})
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range p.callers[n] {
			if def.SkipCall != nil && def.SkipCall(p, e.caller, e.site) {
				continue
			}
			mark(e.caller, &factMark{pos: e.site.Pos, next: n})
		}
	}
	p.facts[def.Name] = fs
	return fs
}

// Call reports whether calling fn triggers the fact, with a witness
// description: either fn is a leaf of the seed table, or its body (or a
// body it transitively calls) contains a source. The description reads
// "a.f → b.g → time.Sleep (sleeps the worker)".
func (fs *FactSet) Call(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	fn = fn.Origin()
	if reason, ok := fs.def.Calls(fn); ok {
		return FuncLabel(fn) + " (" + reason + ")", true
	}
	n := fs.prog.funcs[fn]
	if n == nil || fs.marks[n] == nil {
		return "", false
	}
	return fs.trace(n), true
}

// NodeHas reports whether the node's own body has the fact.
func (fs *FactSet) NodeHas(n *FuncNode) bool { return n != nil && fs.marks[n] != nil }

// trace renders the witness chain from n to the fact's leaf.
func (fs *FactSet) trace(n *FuncNode) string {
	var parts []string
	for hops := 0; n != nil && hops < 8; hops++ {
		m := fs.marks[n]
		if m == nil {
			break
		}
		switch {
		case m.next != nil:
			parts = append(parts, n.Name())
			n = m.next
		case m.callee != nil:
			parts = append(parts, n.Name(), FuncLabel(m.callee)+" ("+m.reason+")")
			n = nil
		default:
			parts = append(parts, n.Name()+" ("+m.reason+")")
			n = nil
		}
	}
	if n != nil {
		parts = append(parts, "…")
	}
	return strings.Join(parts, " → ")
}

// A FactRecord is one exported (function, fact) pair, the composable
// output format of the summary engine (lhws-vet -facts).
type FactRecord struct {
	Fact string `json:"fact"`
	Func string `json:"func"`
	Pos  string `json:"pos"`
	Via  string `json:"via"`
}

// FactRecords exports every fact computed on the program so far, sorted
// by fact name then function.
func (p *Program) FactRecords() []FactRecord {
	var recs []FactRecord
	for _, fs := range p.facts {
		for n, m := range fs.marks {
			pos := p.Fset.Position(m.pos)
			recs = append(recs, FactRecord{
				Fact: fs.def.Name,
				Func: n.Name(),
				Pos:  fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
				Via:  fs.trace(n),
			})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Fact != recs[j].Fact {
			return recs[i].Fact < recs[j].Fact
		}
		if recs[i].Func != recs[j].Func {
			return recs[i].Func < recs[j].Func
		}
		return recs[i].Pos < recs[j].Pos
	})
	return recs
}

// FuncLabel renders fn compactly for diagnostics: the FullName with the
// import path shortened to the package name, e.g.
// "(*runtime.Future).Await" instead of
// "(*lhws/internal/runtime.Future).Await".
func FuncLabel(fn *types.Func) string {
	full := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() != pkg.Name() {
		full = strings.Replace(full, pkg.Path()+".", pkg.Name()+".", 1)
	}
	return full
}
