// Package facts holds the shared interprocedural fact definitions the
// scheduler-aware analyzers compose on: the transitive may-suspend
// coloring (suspendcolor, lockheld), the may-block summary (noblock's
// //lhws:nonblocking regions), and the net-block summary (noblock's
// task-code check). Each is an analysis.FactDef propagated over the
// driver's whole-program call graph; analyzers retrieve the memoized
// FactSet with the accessors here, so the coloring is computed once per
// driver run no matter how many analyzers consult it.
package facts

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lhws/internal/analysis"
)

// RuntimePath and IOPath are the import paths of the packages whose
// exported operations seed the may-suspend coloring. Analyzer fixtures
// fake these paths in GOPATH mode, so the seed tables match there too.
const (
	RuntimePath = "lhws/internal/runtime"
	IOPath      = "lhws/internal/io"
	LhwsPath    = "lhws"
)

// maySuspendLeaves maps (package, receiver, function) keys — see
// funcKey — to the reason the operation suspends (or, in Blocking mode,
// parks the worker in place of a suspension). These are the heavy-edge
// entry points of the runtime: every transitive caller is a
// may-suspend function.
var maySuspendLeaves = map[string]string{
	RuntimePath + ".Future.Await":         "awaits a future",
	RuntimePath + ".Future.AwaitErr":      "awaits a future",
	RuntimePath + ".Future.awaitConsume":  "awaits a future",
	RuntimePath + ".Future.awaitBlocking": "parks the worker until the future completes (blocking mode)",
	RuntimePath + ".Value.Await":          "awaits a future",
	RuntimePath + ".Value.AwaitErr":       "awaits a future",
	RuntimePath + ".Chan.Send":            "suspends until a receiver or buffer slot is ready",
	RuntimePath + ".Chan.Recv":            "suspends until a value arrives",
	RuntimePath + ".Chan.RecvOK":          "suspends until a value arrives",
	RuntimePath + ".Chan.recvOKBlocking":  "parks the worker until a value arrives (blocking mode)",
	RuntimePath + ".Ctx.Latency":          "suspends for the latency duration",
	RuntimePath + ".Ctx.AwaitExternalOp":  "suspends until the external operation completes",
	RuntimePath + ".Ctx.finishWait":       "yields the task to the worker loop",
	RuntimePath + ".Ctx.yield":            "yields the task to the worker loop",
	RuntimePath + "..AwaitExternal":       "suspends until the external completion fires",
	RuntimePath + "..AwaitChan":           "suspends until the Go channel yields a value",
	RuntimePath + "..For":                 "joins its iteration tasks",
	RuntimePath + "..forRange":            "joins its iteration tasks",
	RuntimePath + "..MapReduce":           "joins its iteration tasks",
	IOPath + ".Conn.Read":                 "suspends until the socket is readable",
	IOPath + ".Conn.ReadBuf":              "suspends until the socket is readable",
	IOPath + ".Conn.Write":                "suspends until the socket is writable",
	IOPath + ".Conn.Writev":               "suspends until the vectored write completes",
	IOPath + ".Conn.Flush":                "suspends until the queued writes are flushed",
	IOPath + ".Listener.Accept":           "suspends until a connection arrives",
	IOPath + "..Dial":                     "suspends until the connection is established",
	IOPath + "..Listen":                   "suspends while binding the listener",
	IOPath + "..Wrap":                     "suspends while registering the socket",
	LhwsPath + "..For":                    "joins its iteration tasks",
	LhwsPath + "..ParallelMapReduce":      "joins its iteration tasks",
	LhwsPath + "..AwaitChan":              "suspends until the Go channel yields a value",
	LhwsPath + "..AwaitExternal":          "suspends until the external completion fires",
	LhwsPath + "..IODial":                 "suspends until the connection is established",
	LhwsPath + "..IOListen":               "suspends while binding the listener",
	LhwsPath + "..IOWrap":                 "suspends while registering the socket",
}

// funcKey renders fn as "pkgpath.Recv.name" ("pkgpath..name" for plain
// functions), keying the seed tables by identity rather than by
// FullName so generic receivers (Value[T], Chan[T]) match their origin.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	recv := ""
	if r := fn.Signature().Recv(); r != nil {
		if named := analysis.ReceiverNamed(r.Type()); named != nil {
			recv = named.Obj().Name()
		}
	}
	return pkg.Path() + "." + recv + "." + fn.Name()
}

// MaySuspendLeaf reports whether calling fn is itself a suspension
// point, with the reason. This is the seed predicate of the coloring
// and the fallback when no Program is available.
func MaySuspendLeaf(fn *types.Func) (string, bool) {
	reason, ok := maySuspendLeaves[funcKey(fn)]
	return reason, ok
}

// MaySuspend returns the transitive may-suspend coloring of the
// program: a function has the fact if it can reach a suspension point
// through statically resolved calls.
func MaySuspend(p *analysis.Program) *analysis.FactSet {
	return p.Facts(analysis.FactDef{
		Name:  "maySuspend",
		Calls: MaySuspendLeaf,
	})
}

// BlockingCalls maps types.Func.FullName to the reason the call parks
// the calling goroutine. These are the leaves of the may-block summary
// and noblock's direct table.
var BlockingCalls = map[string]string{
	"time.Sleep":                                  "sleeps the worker",
	"(*sync.Mutex).Lock":                          "may park on lock contention",
	"(*sync.RWMutex).Lock":                        "may park on lock contention",
	"(*sync.RWMutex).RLock":                       "may park on lock contention",
	"(*sync.WaitGroup).Wait":                      "parks until the group drains",
	"(*sync.Cond).Wait":                           "parks until signalled",
	"(*sync.Once).Do":                             "parks while another goroutine runs the function",
	"(sync.Locker).Lock":                          "may park on lock contention",
	"(*lhws/internal/deque.Locked).PushBottom":    "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).PopBottom":     "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).PopTop":        "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).Len":           "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/deque.Locked).Empty":         "mutex-backed deque; hot paths must use the lock-free ChaseLev",
	"(*lhws/internal/faultpoint.Injector).Inject": "sleeps or panics by design (chaos injection); worker hot paths must use Decide and act non-blockingly",
}

// MayBlockLeaf reports whether calling fn parks the goroutine.
func MayBlockLeaf(fn *types.Func) (string, bool) {
	reason, ok := BlockingCalls[fn.Origin().FullName()]
	return reason, ok
}

// MayBlock returns the transitive may-block summary: a function has
// the fact if an unescaped path through its body reaches a parking
// operation — a known blocking call or a syntactic channel operation.
// Call sites (and syntactic operations) carrying a justified
// //lhws:allowblock directive do not propagate: the justification
// asserts the block is acceptable where it happens, so callers are not
// tainted by it.
func MayBlock(p *analysis.Program) *analysis.FactSet {
	return p.Facts(analysis.FactDef{
		Name:     "mayBlock",
		Calls:    MayBlockLeaf,
		Scan:     scanBlockingSyntax,
		SkipCall: skipAllowblock,
	})
}

func skipAllowblock(p *analysis.Program, n *analysis.FuncNode, cs *analysis.CallSite) bool {
	d, ok := p.DirectiveAt(cs.Pos, "allowblock")
	return ok && d.Args != ""
}

// scanBlockingSyntax finds the first unescaped syntactic parking
// operation in the node's own body: a channel send/receive, a range
// over a channel, or a select without a default clause. Operations
// inside nested literals or go statements belong to other nodes.
func scanBlockingSyntax(p *analysis.Program, n *analysis.FuncNode) (token.Pos, string, bool) {
	body := nodeBody(n)
	if body == nil {
		return token.NoPos, "", false
	}
	comm := selectCommOps(body)
	var pos token.Pos
	var reason string
	ast.Inspect(body, func(x ast.Node) bool {
		if pos.IsValid() || comm[x] {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if !escapedBlock(p, x.Pos()) {
				pos, reason = x.Pos(), "channel send"
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !escapedBlock(p, x.Pos()) {
				pos, reason = x.Pos(), "channel receive"
			}
		case *ast.RangeStmt:
			if t := n.Pkg.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && !escapedBlock(p, x.Pos()) {
					pos, reason = x.Pos(), "range over channel"
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault && !escapedBlock(p, x.Pos()) {
				pos, reason = x.Pos(), "select without default"
			}
		}
		return !pos.IsValid()
	})
	return pos, reason, pos.IsValid()
}

func escapedBlock(p *analysis.Program, pos token.Pos) bool {
	d, ok := p.DirectiveAt(pos, "allowblock")
	return ok && d.Args != ""
}

func nodeBody(n *analysis.FuncNode) *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// SelectCommOps collects the send/receive operations that appear as a
// select statement's comm clauses under body; the select itself decides
// whether they block, so per-operation checks must skip them.
func SelectCommOps(body ast.Node) map[ast.Node]bool { return selectCommOps(body) }

func selectCommOps(body ast.Node) map[ast.Node]bool {
	commOps := make(map[ast.Node]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				commOps[comm] = true
			case *ast.ExprStmt:
				commOps[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					commOps[ast.Unparen(rhs)] = true
				}
			}
		}
		return true
	})
	return commOps
}

// netBlockingNames are the package-net functions and methods (on any of
// net's conn/listener types or interfaces) that park the calling
// goroutine for a network round trip.
var netBlockingNames = map[string]bool{
	"Read":         true,
	"Write":        true,
	"Accept":       true,
	"Dial":         true,
	"DialContext":  true,
	"DialTimeout":  true,
	"Listen":       true,
	"ListenPacket": true,
	"ReadFrom":     true,
	"WriteTo":      true,
}

// NetBlockLeaf reports whether fn is a package-net operation that parks
// the goroutine for a network round trip.
func NetBlockLeaf(fn *types.Func) (string, bool) {
	fn = fn.Origin()
	if fn.Pkg() == nil || fn.Pkg().Path() != "net" {
		return "", false
	}
	name := fn.Name()
	if netBlockingNames[name] || strings.HasPrefix(name, "Lookup") {
		return "blocks for a network round trip", true
	}
	return "", false
}

// NetBlock returns the transitive net-block summary: a function has
// the fact if it can reach a bare package-net call through statically
// resolved calls. Justified //lhws:allowblock sites do not propagate.
func NetBlock(p *analysis.Program) *analysis.FactSet {
	return p.Facts(analysis.FactDef{
		Name:     "netBlock",
		Calls:    NetBlockLeaf,
		SkipCall: skipAllowblock,
	})
}

// TakesCtx reports whether fn's parameters include a task context
// (*runtime.Ctx) — the marker that the function is task code and is
// therefore checked on its own terms rather than at its call sites.
func TakesCtx(fn *types.Func) bool {
	params := fn.Signature().Params()
	for i := 0; i < params.Len(); i++ {
		if IsCtxPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// IsCtxPtr reports whether t is *runtime.Ctx (or an alias of it).
func IsCtxPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	return IsCtxNamed(ptr.Elem())
}

// IsCtxNamed reports whether t is the runtime.Ctx named type itself.
func IsCtxNamed(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ctx" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == RuntimePath || obj.Pkg().Path() == LhwsPath)
}
