package dequeowner_test

import (
	"testing"

	"lhws/internal/analysis/analysistest"
	"lhws/internal/analysis/dequeowner"
)

func TestDequeOwner(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, dequeowner.Analyzer, "lhws/a", "lhws/b", "lhws/c",
		"lhws/internal/deque", "lhws/internal/bufpool")
}
