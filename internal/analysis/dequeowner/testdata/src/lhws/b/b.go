// Package b is the clean fixture: every owner-only operation declares
// why its caller holds the owner role.
package b

import "lhws/internal/deque"

// run is the fixture's worker loop.
//
//lhws:owner the worker loop goroutine is the unique deque owner
func run(d *deque.ChaseLev) {
	for {
		it, ok := d.PopBottom()
		if !ok {
			return
		}
		_ = it
	}
}

// enqueue pushes work on behalf of the owner.
//
//lhws:owner tasks run holding their worker's owner role between resume and report
func enqueue(d *deque.ChaseLev, it deque.Item) {
	d.PushBottom(it)
}

// steal is thief-side only and needs no declaration.
func steal(d *deque.ChaseLev) (deque.Item, bool) {
	return d.PopTop()
}

// stealBatch is likewise thief-side: the batched transfer claims a
// range at the top end and never touches the owner's bottom end.
func stealBatch(d *deque.ChaseLev, buf []deque.Item) int {
	return d.PopTopBatch(buf, len(buf))
}
