// Package bufpool is a fixture standing in for the real
// lhws/internal/bufpool: same import path in the GOPATH fixture tree,
// same guarded refcount field, no dependencies.
package bufpool

type Buf struct {
	b    []byte
	refs int32
}

// Get is a constructor: initializing the refcount here is allowed
// because the buffer is not yet shared.
func Get(n int) *Buf {
	pb := &Buf{b: make([]byte, n)}
	pb.refs = 1
	return pb
}

func (pb *Buf) Bytes() []byte { return pb.b }

// Methods of the declaring type own the lifecycle protocol.
func (pb *Buf) Retain() { pb.refs++ }

func (pb *Buf) Release() bool {
	pb.refs--
	return pb.refs == 0
}

// leak is a rogue in-package helper: pinning a buffer by writing the
// refcount directly bypasses Retain/Release.
func leak(pb *Buf) {
	pb.refs = 1 << 30 // want `direct access to guarded field Buf\.refs`
}
