// Package deque is a fixture standing in for the real
// lhws/internal/deque: same import path (via the GOPATH fixture tree),
// same guarded method and field names, no dependencies.
package deque

type Item interface{}

type ChaseLev struct {
	top    int64
	bottom int64
	array  []Item
	claim  int64
}

// NewChaseLev is a constructor: touching the ordering fields here is
// allowed because the deque is not yet shared.
func NewChaseLev() *ChaseLev {
	d := &ChaseLev{}
	d.array = make([]Item, 0, 8)
	return d
}

// Methods of the declaring type may access the ordering fields.
func (d *ChaseLev) PushBottom(it Item) {
	d.array = append(d.array, it)
	d.bottom++
}

func (d *ChaseLev) PopBottom() (Item, bool) {
	if d.bottom == d.top {
		return nil, false
	}
	d.bottom--
	return d.array[d.bottom-d.top], true
}

func (d *ChaseLev) PopTop() (Item, bool) {
	if d.bottom == d.top {
		return nil, false
	}
	d.top++
	return d.array[0], true
}

// PopTopBatch is the thief-side multi-item steal; methods of the
// declaring type may operate the claim word.
func (d *ChaseLev) PopTopBatch(dst []Item, max int) int {
	if d.claim != 0 || d.bottom == d.top {
		return 0
	}
	d.claim = 1
	dst[0] = d.array[0]
	d.top++
	d.claim = 0
	return 1
}

// reset is a rogue in-package helper: it manipulates the ordering
// fields without going through the publication protocol.
func reset(d *ChaseLev) {
	d.top = 0    // want `direct access to guarded field ChaseLev\.top`
	d.bottom = 0 // want `direct access to guarded field ChaseLev\.bottom`
	d.claim = 0  // want `direct access to guarded field ChaseLev\.claim`
}
