// Package c exercises the buffer-refcount guard from outside the
// declaring package: the refcount field is unexported, so the compiler
// already forbids raw access here — what this fixture pins down is
// that the lifecycle CALLS are allowed anywhere, including hot paths
// and freshly spawned goroutines (unlike the deque's owner-only
// methods, refcounting is deliberately free-threaded).
package c

import "lhws/internal/bufpool"

// hotPath mirrors bridge-side code handing a pooled buffer to another
// goroutine: no directive needed, no diagnostics expected.
func hotPath(pb *bufpool.Buf) {
	pb.Retain()
	go func() {
		_ = pb.Bytes()
		pb.Release()
	}()
}
