// Package a exercises the positive cases of the dequeowner analyzer.
package a

import "lhws/internal/deque"

// plain holds no owner declaration, so owner-only calls are flagged;
// the thief-side PopTop and PopTopBatch are always allowed — any worker
// may steal, single items or batches alike.
func plain(d *deque.ChaseLev) {
	d.PushBottom(nil) // want `owner-only deque method PushBottom`
	d.PopBottom()     // want `owner-only deque method PopBottom`
	d.PopTop()
	d.PopTopBatch(make([]deque.Item, 8), 8)
}

// spawned goroutines never hold the owner role, even inside a function
// that declares it.
//
//lhws:owner called only from the worker loop in this fixture
func spawns(d *deque.ChaseLev) {
	d.PushBottom(nil)
	go func() {
		d.PopBottom() // want `goroutine spawned here`
	}()
}

func bare(d *deque.ChaseLev) {
	d.PushBottom(nil) //lhws:owner // want `needs a justification`
}
