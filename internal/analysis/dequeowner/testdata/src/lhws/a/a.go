// Package a exercises the positive cases of the dequeowner analyzer.
package a

import "lhws/internal/deque"

// plain holds no owner declaration, so owner-only calls are flagged;
// the thief-side PopTop is always allowed.
func plain(d *deque.ChaseLev) {
	d.PushBottom(nil) // want `owner-only deque method PushBottom`
	d.PopBottom()     // want `owner-only deque method PopBottom`
	d.PopTop()
}

// spawned goroutines never hold the owner role, even inside a function
// that declares it.
//
//lhws:owner called only from the worker loop in this fixture
func spawns(d *deque.ChaseLev) {
	d.PushBottom(nil)
	go func() {
		d.PopBottom() // want `goroutine spawned here`
	}()
}

func bare(d *deque.ChaseLev) {
	d.PushBottom(nil) //lhws:owner // want `needs a justification`
}
