// Package dequeowner enforces the single-owner protocol of the
// work-stealing deques in lhws/internal/deque.
//
// The Chase–Lev deque's correctness argument (and with it Lemma 3's
// top-heaviness, which the whole potential-function analysis leans on)
// assumes exactly one goroutine — the owner — operates on the bottom
// end. The Go type system cannot express that, so this analyzer makes
// the owner role an explicitly-declared, machine-checked property:
//
//  1. Every call to an owner-only method (PushBottom, PopBottom) must
//     occur inside a function whose doc comment carries an
//     //lhws:owner directive stating why the caller holds the owner
//     role. Package lhws/internal/deque itself is exempt.
//
//  2. An owner-only call lexically inside a `go func(){...}` literal is
//     flagged regardless: a freshly spawned goroutine never holds the
//     owner role, whatever its enclosing function has proven. A
//     statement-level //lhws:owner directive can override even this for
//     the rare case where the spawn is itself the handoff.
//
//  3. The deque's ordering fields (top, bottom, array, and the
//     batch-steal claim word) may be touched only by methods of the
//     type that declares them or by constructor functions returning
//     that type — even inside package deque, where a helper mutating
//     d.top or d.claim directly would bypass the memory-ordering
//     protocol of PushBottom/PopTop/PopTopBatch.
//
//  4. The same declaring-type-only rule guards the buffer pool's
//     reference count (lhws/internal/bufpool's Buf.refs): pooled
//     buffers cross the cancel window between tasks and bridge
//     goroutines, and a refcount touched outside Retain/Release races
//     recycling — the classic use-after-recycle. Hot-path code is free
//     to CALL Retain/Release (they are lock-free); only raw field
//     manipulation is flagged.
//
// The thief-side methods (PopTop, PopTopBatch) need no owner
// declaration: any worker may steal, single items or batches alike.
// Only the bottom end is single-owner.
package dequeowner

import (
	"go/ast"
	"go/types"

	"lhws/internal/analysis"
)

// DequePath is the package whose deques this analyzer guards;
// BufPoolPath's refcounted buffers get the same declaring-type-only
// field protection.
const (
	DequePath   = "lhws/internal/deque"
	BufPoolPath = "lhws/internal/bufpool"
)

var ownerMethods = map[string]bool{
	"PushBottom": true,
	"PopBottom":  true,
}

// guardedFields maps package path → protocol-critical fields that only
// methods (or constructors) of the declaring type may touch, and the
// protocol a stray access would bypass.
var guardedFields = map[string]map[string]string{
	DequePath: {
		"top":    "the Chase-Lev publication protocol",
		"bottom": "the Chase-Lev publication protocol",
		"array":  "the Chase-Lev publication protocol",
		"claim":  "the Chase-Lev publication protocol",
	},
	BufPoolPath: {
		"refs": "the Retain/Release lifecycle (racing buffer recycling)",
	},
}

var Analyzer = &analysis.Analyzer{
	Name: "dequeowner",
	Doc:  "check that owner-only deque operations are confined to declared deque owners",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		w := &walker{pass: pass}
		w.walkDecls(file)
	}
	return nil
}

// walker tracks the enclosing function declaration and whether the walk
// is inside a function literal spawned by a go statement.
type walker struct {
	pass    *analysis.Pass
	fn      *ast.FuncDecl
	goDepth int
}

func (w *walker) walkDecls(file *ast.File) {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			w.fn = fd
			if fd.Body != nil {
				w.walk(fd.Body)
			}
			continue
		}
		w.fn = nil
		w.walk(decl)
	}
}

func (w *walker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Walk the call's operands normally, but the body of a
			// spawned literal with the goroutine marker set.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				for _, arg := range n.Call.Args {
					w.walk(arg)
				}
				w.goDepth++
				w.walk(lit.Body)
				w.goDepth--
				return false
			}
		case *ast.CallExpr:
			w.checkCall(n)
		case *ast.SelectorExpr:
			w.checkFieldAccess(n)
		}
		return true
	})
}

// checkCall flags owner-only method calls outside declared owners.
func (w *walker) checkCall(call *ast.CallExpr) {
	fn := analysis.Callee(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != DequePath {
		return
	}
	if fn.Signature().Recv() == nil || !ownerMethods[fn.Name()] {
		return
	}
	if w.goDepth > 0 {
		if !w.pass.Suppressed(call.Pos(), "owner") {
			w.pass.Reportf(call.Pos(),
				"owner-only deque method %s called from a goroutine spawned here; a fresh goroutine never holds the deque owner role", fn.Name())
		}
		return
	}
	if w.pass.Pkg.Path() == DequePath {
		return // the deque package validates its own protocol in tests
	}
	if _, ok := analysis.FuncDirective(w.fn, "owner"); ok {
		return
	}
	if w.pass.Suppressed(call.Pos(), "owner") {
		return
	}
	name := "this function"
	if w.fn != nil {
		name = w.fn.Name.Name
	}
	w.pass.Reportf(call.Pos(),
		"owner-only deque method %s called in %s, which does not declare the owner role (add an //lhws:owner directive stating why the caller owns the deque)", fn.Name(), name)
}

// checkFieldAccess flags direct access to protocol-guarded fields
// (deque ordering words, buffer refcounts) outside methods or
// constructors of the declaring type.
func (w *walker) checkFieldAccess(sel *ast.SelectorExpr) {
	selection, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return
	}
	protocol, guarded := guardedFields[field.Pkg().Path()][field.Name()]
	if !guarded {
		return
	}
	owner := analysis.ReceiverNamed(selection.Recv())
	if owner == nil {
		return
	}
	if w.fn != nil && w.goDepth == 0 {
		if recv := w.fn.Recv; recv != nil && len(recv.List) == 1 {
			if t := w.pass.TypesInfo.TypeOf(recv.List[0].Type); analysis.ReceiverNamed(t) == owner {
				return // method of the declaring type
			}
		}
		if results := w.fn.Type.Results; results != nil {
			for _, r := range results.List {
				if t := w.pass.TypesInfo.TypeOf(r.Type); analysis.ReceiverNamed(t) == owner {
					return // constructor returning the type
				}
			}
		}
	}
	if w.pass.Suppressed(sel.Pos(), "owner") {
		return
	}
	w.pass.Reportf(sel.Pos(),
		"direct access to guarded field %s.%s outside the type's methods bypasses %s", owner.Obj().Name(), field.Name(), protocol)
}
