// Package suspendcolor computes the transitive may-suspend coloring of
// the program and enforces the runtime's no-suspend regions.
//
// A task suspension (Await, Chan.Recv, Ctx.Latency, an I/O read, a
// pfor join …) is only legal from task code running between a resume
// and a report. Several kinds of code must never reach one, directly
// or through any chain of calls:
//
//   - //lhws:nosuspend functions: scheduler-side delivery and wake
//     paths (waiter.wake, deliver, timer callbacks) that run on
//     arbitrary goroutines with no task to suspend;
//   - //lhws:owner functions: deque-owner hot paths. A suspension
//     releases the owner role mid-function and the task may resume on
//     a *different* worker, so owner-side state cached across the
//     suspension (the worker, its active deque) is stale — the
//     use-after-migration bug;
//   - ExternalOp implementations (Arm, CancelExternal): the runtime
//     invokes them from completion and cancellation goroutines, and
//     the interface contract says they must not block or suspend;
//   - I/O submission backends (the io package's backend interface)
//     and timer-wheel callbacks (functions passed to
//     timerwheel.AfterFunc or AfterFuncT), which run on the
//     bridge/poller and wheel goroutines.
//
// The may-suspend set is seeded by the runtime's heavy-edge entry
// points (see internal/analysis/facts) and propagated over the
// driver's whole-program call graph, so a call three packages removed
// from Await is flagged with the full witness chain. A deliberate
// exception is acknowledged with //lhws:allowsuspend <justification>.
package suspendcolor

import (
	"go/ast"
	"go/types"

	"lhws/internal/analysis"
	"lhws/internal/analysis/facts"
)

var Analyzer = &analysis.Analyzer{
	Name: "suspendcolor",
	Doc:  "check that no-suspend regions (//lhws:nosuspend, //lhws:owner, scheduler callbacks) cannot reach a task suspension",
	Run:  run,
}

// region is one function whose body must not reach a suspension.
type region struct {
	fd   *ast.FuncDecl
	what string
}

func run(pass *analysis.Pass) error {
	maySuspend := facts.MaySuspendLeaf
	if pass.Prog != nil {
		maySuspend = facts.MaySuspend(pass.Prog).Call
	}

	// Declared functions of this package, for resolving timer callbacks.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	seen := make(map[*ast.FuncDecl]bool)
	var regions []region
	add := func(fd *ast.FuncDecl, what string) {
		if fd != nil && fd.Body != nil && !seen[fd] {
			seen[fd] = true
			regions = append(regions, region{fd: fd, what: what})
		}
	}

	for _, fd := range decls {
		if _, ok := analysis.FuncDirective(fd, "nosuspend"); ok {
			add(fd, "a //lhws:nosuspend region")
		}
		if _, ok := analysis.FuncDirective(fd, "owner"); ok {
			add(fd, "an //lhws:owner region (a suspension releases the owner role and may resume on a different worker)")
		}
	}

	// ExternalOp implementations: Arm and CancelExternal run on
	// completion/cancellation goroutines and must not suspend or block.
	if iface := lookupInterface(pass.Pkg, facts.RuntimePath, "ExternalOp"); iface != nil {
		for fn, fd := range decls {
			if recv := fn.Signature().Recv(); recv != nil &&
				(fn.Name() == "Arm" || fn.Name() == "CancelExternal") &&
				types.Implements(recv.Type(), iface) {
				add(fd, "an ExternalOp callback (runs on scheduler-side goroutines; the interface contract forbids suspending)")
			}
		}
	}

	// I/O submission backends (io's unexported backend interface,
	// visible when analyzing the io package itself). Backend methods run
	// on bridge and poller goroutines — scheduler-side code that must
	// never suspend into the runtime it is feeding.
	if iface := lookupInterface(pass.Pkg, pass.Pkg.Path(), "backend"); iface != nil {
		names := make(map[string]bool)
		for i := 0; i < iface.NumMethods(); i++ {
			names[iface.Method(i).Name()] = true
		}
		for fn, fd := range decls {
			if recv := fn.Signature().Recv(); recv != nil && names[fn.Name()] &&
				types.Implements(recv.Type(), iface) {
				add(fd, "an io backend method (runs on bridge/poller goroutines)")
			}
		}
	}

	// Timer-wheel callbacks: functions passed to timerwheel.AfterFunc or
	// AfterFuncT (the timer-carrying variant the io deadline path uses).
	for _, file := range pass.Files {
		ast.Inspect(file, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || (fn.Name() != "AfterFunc" && fn.Name() != "AfterFuncT") || fn.Pkg() == nil ||
				fn.Pkg().Path() != "lhws/internal/timerwheel" || len(call.Args) < 2 {
				return true
			}
			if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
				if cb, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
					add(decls[cb], "a timer-wheel callback (runs on the wheel goroutine)")
				}
			}
			return true
		})
	}

	for _, r := range regions {
		checkRegion(pass, r, maySuspend)
	}
	return nil
}

// lookupInterface finds the named interface type in pkg itself or one
// of its direct imports matching path.
func lookupInterface(pkg *types.Package, path, name string) *types.Interface {
	target := pkg
	if pkg.Path() != path {
		target = nil
		for _, imp := range pkg.Imports() {
			if imp.Path() == path {
				target = imp
				break
			}
		}
	}
	if target == nil {
		return nil
	}
	obj := target.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// checkRegion walks the region body — including function literals
// invoked in place, excluding literals that merely escape and bodies
// spawned by go statements — and flags every statically resolved call
// that may suspend.
func checkRegion(pass *analysis.Pass, r region, maySuspend func(*types.Func) (string, bool)) {
	goCalls := make(map[*ast.CallExpr]bool)
	invoked := make(map[*ast.FuncLit]bool)
	ast.Inspect(r.fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			goCalls[x.Call] = true
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok && !goCalls[x] {
				invoked[lit] = true
			}
		}
		return true
	})
	ast.Inspect(r.fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return invoked[x]
		case *ast.CallExpr:
			if goCalls[x] {
				return true // the spawned body runs outside the region
			}
			fn := analysis.Callee(pass.TypesInfo, x)
			if fn == nil {
				return true
			}
			if desc, ok := maySuspend(fn); ok {
				if !pass.Suppressed(x.Pos(), "allowsuspend") {
					pass.Reportf(x.Pos(), "call may suspend the task inside %s: %s", r.what, desc)
				}
			}
		}
		return true
	})
}
