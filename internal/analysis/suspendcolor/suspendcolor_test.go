package suspendcolor_test

import (
	"testing"

	"lhws/internal/analysis/analysistest"
	"lhws/internal/analysis/suspendcolor"
)

func TestSuspendColor(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, suspendcolor.Analyzer, "lhws/sc")
}
