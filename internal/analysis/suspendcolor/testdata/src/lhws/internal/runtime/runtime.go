// Package runtime is a fixture stand-in for lhws/internal/runtime: the
// suspension seeds are keyed by (package path, receiver, name), so these
// stubs carry the same identities as the real heavy-edge entry points.
package runtime

import "time"

// Ctx marks a parameter list as task code.
type Ctx struct{}

// Latency is a may-suspend seed.
func (c *Ctx) Latency(d time.Duration) {}

// WithTarget is deliberately NOT a may-suspend seed: it only stamps the
// latency target on the subtree and returns; no timer is armed and the
// task never leaves the worker.
func (c *Ctx) WithTarget(d time.Duration) (*Ctx, func()) { return c, func() {} }

// Future is the awaitable stub.
type Future struct{}

// Await is a may-suspend seed.
func (f *Future) Await(c *Ctx) (any, error) { return nil, nil }

// ExternalHandle mirrors the completion handle.
type ExternalHandle struct{}

// ExternalOp mirrors the runtime interface whose implementations run on
// scheduler-side goroutines.
type ExternalOp interface {
	Arm(h ExternalHandle)
	CancelExternal(h ExternalHandle, cause error)
}
