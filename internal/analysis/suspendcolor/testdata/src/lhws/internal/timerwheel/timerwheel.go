// Package timerwheel is a fixture stand-in for lhws/internal/timerwheel.
package timerwheel

import "time"

type Timer struct{}

type Wheel struct{}

// AfterFunc registers f to run on the wheel goroutine.
func (w *Wheel) AfterFunc(d time.Duration, f func(any), arg any) *Timer { return nil }

// AfterFuncT registers the Timer-carrying callback variant.
func (w *Wheel) AfterFuncT(d time.Duration, f func(*Timer, any), arg any) *Timer { return nil }
