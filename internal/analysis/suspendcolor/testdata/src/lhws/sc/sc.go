// Package sc exercises the suspendcolor analyzer: no-suspend regions of
// every kind, direct and transitive may-suspend calls, the directive
// escape, and the three-hop cross-package chain.
package sc

import (
	"lhws/chain/c1"
	"lhws/internal/runtime"
	"lhws/internal/timerwheel"
)

// wake is a delivery path: it runs on arbitrary goroutines with no task
// to suspend.
//
//lhws:nosuspend
func wake(f *runtime.Future, c *runtime.Ctx) {
	f.Await(c) // want `call may suspend the task inside a //lhws:nosuspend region: \(\*runtime\.Future\)\.Await`
}

// ownerPath suspending would release the owner role mid-function.
//
//lhws:owner holds the active deque
func ownerPath(c *runtime.Ctx) {
	helper(c) // want `call may suspend the task inside an //lhws:owner region .*: sc\.helper → \(\*runtime\.Ctx\)\.Latency`
}

// helper suspends one hop down; callers inherit the color.
func helper(c *runtime.Ctx) { c.Latency(0) }

// chained reaches the leaf three packages away; the witness names every
// hop.
//
//lhws:nosuspend
func chained(c *runtime.Ctx) {
	c1.Top(c) // want `call may suspend the task inside a //lhws:nosuspend region: c1\.Top → c2\.Mid → c3\.Deep → \(\*runtime\.Ctx\)\.Latency`
}

// okPath shows what does NOT color a region: spawned bodies, escaping
// literals, and plain computation.
//
//lhws:nosuspend
func okPath(c *runtime.Ctx, xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	go helper(c) // the spawned body is outside this region
	f := func() { helper(c) }
	_ = f // the literal escapes; it runs elsewhere, on its own terms
	return sum
}

// invoked literals DO belong to the region.
//
//lhws:nosuspend
func inlineLit(c *runtime.Ctx) {
	func() {
		helper(c) // want `call may suspend the task inside a //lhws:nosuspend region`
	}()
}

// escaped acknowledges a deliberate exception.
//
//lhws:nosuspend
func escaped(c *runtime.Ctx) {
	helper(c) //lhws:allowsuspend fixture: the caller joins before the region returns
}

// targetScope shows WithTarget is suspension-free: stamping a latency
// target (and canceling the scope) never leaves the worker, so both are
// legal inside a no-suspend region — but suspending THROUGH the derived
// ctx colors the region like any other suspension.
//
//lhws:nosuspend
func targetScope(c *runtime.Ctx) {
	tc, cancel := c.WithTarget(0) // stamping a target does not suspend
	cancel()                      // nor does canceling the scope
	tc.Latency(0)                 // want `call may suspend the task inside a //lhws:nosuspend region: \(\*runtime\.Ctx\)\.Latency`
}

// extOp implements runtime.ExternalOp; Arm and CancelExternal run on
// completion/cancellation goroutines.
type extOp struct{}

func (o extOp) Arm(h runtime.ExternalHandle) {
	helper(nil) // want `call may suspend the task inside an ExternalOp callback`
}

func (o extOp) CancelExternal(h runtime.ExternalHandle, cause error) {}

// backend mirrors the io package's submission-backend interface; its
// implementations run on bridge and poller goroutines.
type backend interface {
	park() bool
	close()
}

type epollish struct{}

func (b *epollish) park() bool {
	helper(nil) // want `call may suspend the task inside an io backend method`
	return true
}

func (b *epollish) close() {}

// fired is registered as a timer-wheel callback below; it runs on the
// wheel goroutine.
func fired(arg any) {
	helper(nil) // want `call may suspend the task inside a timer-wheel callback`
}

// firedT is the Timer-carrying variant registered via AfterFuncT.
func firedT(t *timerwheel.Timer, arg any) {
	helper(nil) // want `call may suspend the task inside a timer-wheel callback`
}

func arm(w *timerwheel.Wheel) *timerwheel.Timer {
	w.AfterFuncT(0, firedT, nil)
	return w.AfterFunc(0, fired, nil)
}

var (
	_ = extOp{}
	_ = &epollish{}
	_ backend
)
