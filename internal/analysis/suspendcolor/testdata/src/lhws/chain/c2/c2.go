// Package c2 is the middle hop of the cross-package chain fixture.
package c2

import (
	"lhws/chain/c3"
	"lhws/internal/runtime"
)

func Mid(c *runtime.Ctx) { c3.Deep(c) }
