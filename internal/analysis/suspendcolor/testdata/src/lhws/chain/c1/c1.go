// Package c1 is the top hop of the cross-package chain fixture.
package c1

import (
	"lhws/chain/c2"
	"lhws/internal/runtime"
)

func Top(c *runtime.Ctx) { c2.Mid(c) }
