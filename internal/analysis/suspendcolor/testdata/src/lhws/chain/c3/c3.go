// Package c3 holds the deepest hop of the cross-package chain fixture:
// the function that actually touches a may-suspend leaf.
package c3

import (
	"time"

	"lhws/internal/runtime"
)

func Deep(c *runtime.Ctx) { c.Latency(time.Millisecond) }
