// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library only.
//
// Fixtures live under <testdata>/src/<pkg>/ and are loaded in GOPATH
// mode (GOPATH=<testdata>, modules off), so fixture packages can fake
// any import path — including this module's own paths such as
// lhws/internal/deque — without touching the real module. A line that
// should be flagged carries a trailing expectation comment:
//
//	d.q.PopBottom() // want `owner-only`
//
// The argument is a regular expression that must match the diagnostic's
// message; multiple expectations may follow one want. A fixture package
// with no want comments asserts the analyzer stays silent on it.
package analysistest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lhws/internal/analysis"
	"lhws/internal/analysis/load"
)

// TestData returns the absolute path of the ./testdata directory next
// to the calling test.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "src")); err != nil {
		t.Fatalf("analysistest: missing fixture tree: %v", err)
	}
	return dir
}

// Run applies the analyzer to each fixture package and reports
// unexpected diagnostics and unmatched expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	env := append(os.Environ(),
		"GO111MODULE=off",
		"GOPATH="+testdata,
		"GOFLAGS=",
	)
	pkgs, err := load.Load(load.Config{Dir: testdata, Env: env}, pkgPaths...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	// The whole-program call graph spans the named packages and their
	// fixture dependencies, so summary-based analyzers see cross-package
	// facts exactly as the real driver does.
	progPkgs := make([]*analysis.ProgramPackage, len(pkgs))
	for i, pkg := range pkgs {
		progPkgs[i] = &analysis.ProgramPackage{Pkg: pkg.Types, Files: pkg.Syntax, Info: pkg.TypesInfo}
	}
	prog := analysis.BuildProgram(pkgs[0].Fset, progPkgs)
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Prog:      prog,
		}
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			t.Errorf("analysistest: %s on %s: %v", a.Name, pkg.PkgPath, err)
			continue
		}
		check(t, pkg, diags)
	}
}

// expectation is one parsed want argument.
type expectation struct {
	re      *regexp.Regexp
	pos     token.Position // of the want comment, for failure messages
	matched bool
}

var wantRE = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

func check(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	// file -> line -> expectations
	wants := make(map[string]map[int][]*expectation)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				parseWants(t, pkg.Fset, c, wants)
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		var match *expectation
		for _, exp := range wants[pos.Filename][pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				match = exp
				break
			}
		}
		if match == nil {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
			continue
		}
		match.matched = true
	}
	for _, byLine := range wants {
		for _, exps := range byLine {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s: no diagnostic matched expectation %q", exp.pos, exp.re)
				}
			}
		}
	}
}

func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment, wants map[string]map[int][]*expectation) {
	t.Helper()
	// A want marker may be the whole comment (`// want "re"`) or ride at
	// the end of a directive comment (`//lhws:owner // want "re"`).
	idx := strings.Index(c.Text, "// want ")
	if idx < 0 {
		return
	}
	text := c.Text[idx+len("// want "):]
	pos := fset.Position(c.Pos())
	args := wantRE.FindAllStringSubmatch(text, -1)
	if len(args) == 0 {
		t.Errorf("%s: malformed want comment: %s", pos, c.Text)
		return
	}
	for _, m := range args {
		pattern := m[2] // backquoted form
		if m[1] != "" || m[2] == "" {
			unq, err := strconv.Unquote(`"` + m[1] + `"`)
			if err != nil {
				t.Errorf("%s: bad want pattern %q: %v", pos, m[1], err)
				continue
			}
			pattern = unq
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
			continue
		}
		byLine := wants[pos.Filename]
		if byLine == nil {
			byLine = make(map[int][]*expectation)
			wants[pos.Filename] = byLine
		}
		byLine[pos.Line] = append(byLine[pos.Line], &expectation{re: re, pos: pos})
	}
}
