package multichecker_test

import (
	"bytes"
	"go/ast"
	"strings"
	"testing"

	"lhws/internal/analysis"
	"lhws/internal/analysis/multichecker"
)

// TestModuleModeLoadAndReport drives the driver end-to-end in module
// mode against this very package, with a toy analyzer that flags every
// function named exactly "main" — exercising go list, export-data
// import, type-checking, diagnostic ordering, and exit codes.
func TestModuleModeLoadAndReport(t *testing.T) {
	toy := &analysis.Analyzer{
		Name: "toy",
		Doc:  "flags functions named main",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "main" && fd.Recv == nil {
						pass.Reportf(fd.Pos(), "found main in %s", pass.Pkg.Path())
					}
				}
			}
			return nil
		},
	}

	var out bytes.Buffer
	if code := multichecker.Run(&out, []string{"lhws/internal/analysis"}, []*analysis.Analyzer{toy}); code != 0 {
		t.Fatalf("clean package: exit %d, output:\n%s", code, out.String())
	}

	out.Reset()
	code := multichecker.Run(&out, []string{"lhws/cmd/lhws-vet"}, []*analysis.Analyzer{toy})
	if code != 1 {
		t.Fatalf("flagged package: exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "found main in lhws/cmd/lhws-vet (toy)") {
		t.Fatalf("missing diagnostic, got:\n%s", out.String())
	}
}
