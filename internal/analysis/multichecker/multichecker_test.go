package multichecker_test

import (
	"bytes"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lhws/internal/analysis"
	"lhws/internal/analysis/multichecker"
)

// TestModuleModeLoadAndReport drives the driver end-to-end in module
// mode against this very package, with a toy analyzer that flags every
// function named exactly "main" — exercising go list, export-data
// import, type-checking, diagnostic ordering, and exit codes.
func TestModuleModeLoadAndReport(t *testing.T) {
	toy := &analysis.Analyzer{
		Name: "toy",
		Doc:  "flags functions named main",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "main" && fd.Recv == nil {
						pass.Reportf(fd.Pos(), "found main in %s", pass.Pkg.Path())
					}
				}
			}
			return nil
		},
	}

	var out bytes.Buffer
	if code := multichecker.Run(&out, []string{"lhws/internal/analysis"}, []*analysis.Analyzer{toy}); code != 0 {
		t.Fatalf("clean package: exit %d, output:\n%s", code, out.String())
	}

	out.Reset()
	code := multichecker.Run(&out, []string{"lhws/cmd/lhws-vet"}, []*analysis.Analyzer{toy})
	if code != 1 {
		t.Fatalf("flagged package: exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "found main in lhws/cmd/lhws-vet (toy)") {
		t.Fatalf("missing diagnostic, got:\n%s", out.String())
	}
}

// TestJSONGolden locks down the -json output format: a toy analyzer
// flags every function in the jsonfix fixture, and the emitted array —
// file, line, col, analyzer, message, ordering, indentation — must
// match the golden file byte for byte (after making paths relative).
func TestJSONGolden(t *testing.T) {
	fns := &analysis.Analyzer{
		Name: "fns",
		Doc:  "flags every function declaration",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}

	var out bytes.Buffer
	code := multichecker.Run(&out, []string{"-json", "./testdata/jsonfix"}, []*analysis.Analyzer{fns})
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(out.String(), cwd+string(filepath.Separator), "")
	golden, err := os.ReadFile(filepath.Join("testdata", "json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(golden) {
		t.Errorf("-json output differs from testdata/json.golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// A clean run still emits a (valid, empty) JSON array and exits 0.
	out.Reset()
	silent := &analysis.Analyzer{Name: "silent", Doc: "never reports", Run: func(*analysis.Pass) error { return nil }}
	if code := multichecker.Run(&out, []string{"-json", "./testdata/jsonfix"}, []*analysis.Analyzer{silent}); code != 0 {
		t.Fatalf("clean run: exit %d, output:\n%s", code, out.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", out.String())
	}
}
