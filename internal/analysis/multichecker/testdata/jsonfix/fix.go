// Package jsonfix is the golden-file fixture for lhws-vet -json:
// deterministic findings at fixed positions. The go tool skips testdata
// directories in ./... expansion, so this package is only ever loaded
// by the multichecker test naming it explicitly.
package jsonfix

func alpha() int { return 1 }

func beta() int { return alpha() + 1 }

var _ = beta
