// Package multichecker composes analyzers into a vet-style command.
//
// It is the stdlib-only counterpart of
// golang.org/x/tools/go/analysis/multichecker: the driver loads the
// packages named on the command line, applies every analyzer to every
// package, prints diagnostics in file:line:col order, and exits
// non-zero when anything was flagged — which is what lets CI gate on
// the suite.
package multichecker

import (
	"fmt"
	"io"
	"os"

	"lhws/internal/analysis"
	"lhws/internal/analysis/load"
)

// Main runs the analyzers over the packages named by os.Args and exits
// with 0 (clean), 1 (diagnostics reported), or 2 (usage or load error).
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Stdout, os.Args[1:], analyzers))
}

// Run is Main with injectable output and arguments, for testing.
func Run(w io.Writer, args []string, analyzers []*analysis.Analyzer) int {
	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		printUsage(w, analyzers)
		return 2
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	total := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "%s: analyzer %s: %v\n", pkg.PkgPath, a.Name, err)
				return 2
			}
		}
		analysis.SortDiagnostics(pkg.Fset, diags)
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		total += len(diags)
	}
	if total > 0 {
		return 1
	}
	return 0
}

func printUsage(w io.Writer, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(w, "usage: lhws-vet [packages]\n\nRegistered analyzers:\n\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %s: %s\n", a.Name, a.Doc)
	}
}
