// Package multichecker composes analyzers into a vet-style command.
//
// It is the stdlib-only counterpart of
// golang.org/x/tools/go/analysis/multichecker: the driver loads the
// packages named on the command line (plus their non-standard
// dependencies, from source), builds the whole-program call graph
// (analysis.BuildProgram) every pass shares for interprocedural
// summaries, applies every analyzer to every target package, prints
// diagnostics in file:line:col order, and exits non-zero when anything
// was flagged — which is what lets CI gate on the suite.
//
// Flags:
//
//	-json        emit diagnostics as a JSON array of
//	             {file,line,col,analyzer,message} objects
//	-tags <t>    build-tag list forwarded to the go command, so
//	             tag-gated files (e.g. -tags lhwsepoll) are analyzed
//	-facts       after the diagnostics, emit the computed function
//	             summaries (the fact-export format) as JSON
package multichecker

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"lhws/internal/analysis"
	"lhws/internal/analysis/load"
)

// Main runs the analyzers over the packages named by os.Args and exits
// with 0 (clean), 1 (diagnostics reported), or 2 (usage or load error).
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Stdout, os.Args[1:], analyzers))
}

// jsonDiag is the machine-readable diagnostic record of -json mode.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Run is Main with injectable output and arguments, for testing.
func Run(w io.Writer, args []string, analyzers []*analysis.Analyzer) int {
	fs := flag.NewFlagSet("lhws-vet", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	tags := fs.String("tags", "", "comma-separated build tags for the load")
	factsOut := fs.Bool("facts", false, "emit computed function summaries as JSON")
	if err := fs.Parse(args); err != nil {
		printUsage(w, analyzers)
		if errors.Is(err, flag.ErrHelp) {
			return 2
		}
		fmt.Fprintf(os.Stderr, "lhws-vet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := load.Config{}
	if *tags != "" {
		cfg.BuildFlags = []string{"-tags", *tags}
	}
	pkgs, err := load.Load(cfg, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	progPkgs := make([]*analysis.ProgramPackage, len(pkgs))
	for i, pkg := range pkgs {
		progPkgs[i] = &analysis.ProgramPackage{Pkg: pkg.Types, Files: pkg.Syntax, Info: pkg.TypesInfo}
	}
	prog := analysis.BuildProgram(pkgs[0].Fset, progPkgs)

	total := 0
	var jsonDiags []jsonDiag
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Prog:      prog,
			}
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "%s: analyzer %s: %v\n", pkg.PkgPath, a.Name, err)
				return 2
			}
		}
		analysis.SortDiagnostics(pkg.Fset, diags)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if *jsonOut {
				jsonDiags = append(jsonDiags, jsonDiag{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			} else {
				fmt.Fprintf(w, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
			}
		}
		total += len(diags)
	}
	if *jsonOut {
		if jsonDiags == nil {
			jsonDiags = []jsonDiag{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if err := enc.Encode(jsonDiags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *factsOut {
		recs := prog.FactRecords()
		if recs == nil {
			recs = []analysis.FactRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if total > 0 {
		return 1
	}
	return 0
}

func printUsage(w io.Writer, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(w, "usage: lhws-vet [-json] [-facts] [-tags taglist] [packages]\n\nRegistered analyzers:\n\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %s: %s\n", a.Name, a.Doc)
	}
}
