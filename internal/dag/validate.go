package dag

import (
	"errors"
	"fmt"
)

// Validation errors returned by Graph.Validate. Errors are wrapped with
// positional detail; match with errors.Is.
var (
	ErrEmpty          = errors.New("dag: graph has no vertices")
	ErrMultipleRoots  = errors.New("dag: graph must have exactly one root")
	ErrMultipleFinals = errors.New("dag: graph must have exactly one final vertex")
	ErrOutDegree      = errors.New("dag: vertex out-degree exceeds two")
	ErrHeavyInDegree  = errors.New("dag: vertex with heavy in-edge must have in-degree one")
	ErrCycle          = errors.New("dag: graph contains a cycle")
	ErrUnreachable    = errors.New("dag: vertex unreachable from root")
	ErrDeadEnd        = errors.New("dag: vertex cannot reach final vertex")
	ErrBadWeight      = errors.New("dag: edge weight below one")
)

// Validate checks the structural assumptions of §2:
//
//  1. exactly one root (in-degree 0) and one final vertex (out-degree 0);
//  2. out-degree at most two;
//  3. a vertex with a heavy in-edge has in-degree one;
//  4. the graph is acyclic;
//  5. every vertex lies on some root→final path (reachability both ways),
//     so that Work counts only instructions the computation executes;
//  6. all edge weights are ≥ 1.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n == 0 {
		return ErrEmpty
	}

	roots, finals := 0, 0
	for v := 0; v < n; v++ {
		if g.inDeg[v] == 0 {
			roots++
		}
		if len(g.out[v]) == 0 {
			finals++
		}
		if len(g.out[v]) > 2 {
			return fmt.Errorf("vertex %d has out-degree %d: %w", v, len(g.out[v]), ErrOutDegree)
		}
	}
	if roots != 1 {
		return fmt.Errorf("found %d roots: %w", roots, ErrMultipleRoots)
	}
	if finals != 1 {
		return fmt.Errorf("found %d final vertices: %w", finals, ErrMultipleFinals)
	}

	heavyIn := make([]bool, n)
	for u := 0; u < n; u++ {
		for _, e := range g.out[u] {
			if e.Weight < 1 {
				return fmt.Errorf("edge %d->%d weight %d: %w", u, e.To, e.Weight, ErrBadWeight)
			}
			if e.Heavy() {
				heavyIn[e.To] = true
			}
		}
	}
	for v := 0; v < n; v++ {
		if heavyIn[v] && g.inDeg[v] != 1 {
			return fmt.Errorf("vertex %d has a heavy in-edge and in-degree %d: %w", v, g.inDeg[v], ErrHeavyInDegree)
		}
	}

	order, ok := g.TopoSort()
	if !ok {
		return ErrCycle
	}

	// Reachability from the root.
	root := g.Root()
	reach := make([]bool, n)
	reach[root] = true
	for _, v := range order {
		if !reach[v] {
			continue
		}
		for _, e := range g.out[v] {
			reach[e.To] = true
		}
	}
	for v := 0; v < n; v++ {
		if !reach[v] {
			return fmt.Errorf("vertex %d: %w", v, ErrUnreachable)
		}
	}

	// Co-reachability to the final vertex, scanning reverse topological
	// order.
	final := g.Final()
	coReach := make([]bool, n)
	coReach[final] = true
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range g.out[v] {
			if coReach[e.To] {
				coReach[v] = true
				break
			}
		}
	}
	for v := 0; v < n; v++ {
		if !coReach[v] {
			return fmt.Errorf("vertex %d: %w", v, ErrDeadEnd)
		}
	}
	return nil
}
