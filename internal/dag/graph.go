// Package dag implements the weighted Directed Acyclic Graph model of
// parallel computations from §2 of Muller & Acar, "Latency-Hiding Work
// Stealing" (SPAA 2016).
//
// Vertices represent single instructions, each performing one unit of work.
// Edges carry a positive integer latency δ: δ = 1 is a "light" edge (the
// child may run immediately after the parent), δ > 1 is a "heavy" edge (the
// child suspends and becomes ready only δ steps after the parent executes).
//
// The package provides the model's three measures —
//
//   - Work W: the number of vertices (edge weights excluded),
//   - Span S: the longest weighted path, counting one unit per vertex plus
//     the latencies of the edges along the path,
//   - Suspension width U: the maximum number of heavy edges crossing an
//     execution prefix (computed exactly in polynomial time via a
//     maximum-weight-closure reduction, see SuspensionWidth) —
//
// along with construction, validation of the paper's structural
// assumptions, topological utilities, and DOT export.
package dag

import (
	"fmt"
)

// VertexID identifies a vertex within a Graph. IDs are dense: a graph with
// n vertices uses IDs 0..n-1.
type VertexID int32

// None is the sentinel for "no vertex".
const None VertexID = -1

// OutEdge is a directed edge to a child vertex with latency Weight ≥ 1.
// Weight == 1 is a light edge; Weight > 1 is a heavy edge whose target
// suspends for Weight steps after the source executes.
type OutEdge struct {
	To     VertexID
	Weight int64
}

// Heavy reports whether the edge carries latency (δ > 1).
func (e OutEdge) Heavy() bool { return e.Weight > 1 }

// Graph is an immutable weighted computation dag. Construct one with a
// Builder; the zero value is an empty graph with no vertices.
//
// Children are ordered: index 0 is the left child (the continuation of the
// executing thread) and index 1, if present, the right child (the first
// instruction of a spawned thread), following the edge ordering convention
// of §2.
type Graph struct {
	out    [][]OutEdge
	inDeg  []int32
	labels []string
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.out) }

// Work returns W, the total computational work: the number of vertices.
// Edge weights do not contribute (latency is not work).
func (g *Graph) Work() int64 { return int64(len(g.out)) }

// OutEdges returns the ordered out-edges of v. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) OutEdges(v VertexID) []OutEdge { return g.out[v] }

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v VertexID) int { return int(g.inDeg[v]) }

// Label returns the optional human-readable label of v (may be empty).
func (g *Graph) Label(v VertexID) string {
	if int(v) < len(g.labels) {
		return g.labels[v]
	}
	return ""
}

// Root returns the unique vertex with in-degree zero. It panics on graphs
// that failed validation; use Validate first on untrusted input.
func (g *Graph) Root() VertexID {
	for v := range g.inDeg {
		if g.inDeg[v] == 0 {
			return VertexID(v)
		}
	}
	panic("dag: graph has no root")
}

// Final returns the unique vertex with out-degree zero. It panics on
// graphs that failed validation; use Validate first on untrusted input.
func (g *Graph) Final() VertexID {
	for v := range g.out {
		if len(g.out[v]) == 0 {
			return VertexID(v)
		}
	}
	panic("dag: graph has no final vertex")
}

// NumEdges returns the total number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// HeavyEdges returns the number of heavy edges (δ > 1). This is a trivial
// upper bound on the suspension width U.
func (g *Graph) HeavyEdges() int {
	n := 0
	for _, es := range g.out {
		for _, e := range es {
			if e.Heavy() {
				n++
			}
		}
	}
	return n
}

// TotalLatency returns the sum over heavy edges of (δ − 1): the aggregate
// latency present in the dag. Light edges contribute zero.
func (g *Graph) TotalLatency() int64 {
	var total int64
	for _, es := range g.out {
		for _, e := range es {
			if e.Heavy() {
				total += e.Weight - 1
			}
		}
	}
	return total
}

// Edge looks up the edge u→v and reports its weight.
func (g *Graph) Edge(u, v VertexID) (weight int64, ok bool) {
	for _, e := range g.out[u] {
		if e.To == v {
			return e.Weight, true
		}
	}
	return 0, false
}

// String returns a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("dag{V=%d E=%d heavy=%d}", g.NumVertices(), g.NumEdges(), g.HeavyEdges())
}
