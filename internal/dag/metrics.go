package dag

// Depths returns dG(v) for every vertex: the length of the longest
// weighted path from the root to v, where each edge contributes its
// latency weight. The root has depth 0.
func (g *Graph) Depths() []int64 {
	order, ok := g.TopoSort()
	if !ok {
		panic("dag: Depths on cyclic graph")
	}
	depth := make([]int64, g.NumVertices())
	for _, v := range order {
		for _, e := range g.out[v] {
			if d := depth[v] + e.Weight; d > depth[e.To] {
				depth[e.To] = d
			}
		}
	}
	return depth
}

// Span returns S, the span of the weighted dag: the longest weighted path,
// counting one unit of work per vertex on the path plus the latencies of
// its edges. A single-vertex graph has span 1. For a dag with only light
// edges this coincides with the traditional (vertex-counted) span.
func (g *Graph) Span() int64 {
	depths := g.Depths()
	var max int64
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	return max + 1
}

// UnweightedSpan returns the span ignoring latencies (every edge counted
// as 1) — the traditional span of the underlying unweighted dag.
func (g *Graph) UnweightedSpan() int64 {
	order, ok := g.TopoSort()
	if !ok {
		panic("dag: UnweightedSpan on cyclic graph")
	}
	depth := make([]int64, g.NumVertices())
	var max int64
	for _, v := range order {
		for _, e := range g.out[v] {
			if d := depth[v] + 1; d > depth[e.To] {
				depth[e.To] = d
				if d > max {
					max = d
				}
			}
		}
	}
	return max + 1
}

// CriticalPath returns one longest weighted path from root to final as a
// vertex sequence. Its weighted length plus one equals Span.
func (g *Graph) CriticalPath() []VertexID {
	order, _ := g.TopoSort()
	n := g.NumVertices()
	depth := make([]int64, n)
	pred := make([]VertexID, n)
	for i := range pred {
		pred[i] = None
	}
	for _, v := range order {
		for _, e := range g.out[v] {
			if d := depth[v] + e.Weight; d > depth[e.To] {
				depth[e.To] = d
				pred[e.To] = v
			}
		}
	}
	deepest := VertexID(0)
	for v := 1; v < n; v++ {
		if depth[v] > depth[deepest] {
			deepest = VertexID(v)
		}
	}
	var rev []VertexID
	for v := deepest; v != None; v = pred[v] {
		rev = append(rev, v)
	}
	path := make([]VertexID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// AvgParallelism returns W/S, the average parallelism of the dag: the
// maximum speedup any scheduler can achieve on it.
func (g *Graph) AvgParallelism() float64 {
	return float64(g.Work()) / float64(g.Span())
}
