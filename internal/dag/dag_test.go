package dag

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"lhws/internal/rng"
)

// figure1 builds the example dag of Figure 1: a fork where the right
// branch reads input (incurring latency delta) and doubles it, the left
// branch computes 6*7, and the branches join at an addition.
func figure1(delta int64) *Graph {
	b := NewBuilder()
	fork := b.Vertex("fork")
	mul := b.Vertex("y=6*7")    // left: continuation
	input := b.Vertex("input")  // right: spawned thread
	double := b.Vertex("x=2*x") // waits delta after input
	add := b.Vertex("x+y")
	b.Light(fork, mul)
	b.Light(fork, input)
	b.Heavy(input, double, delta)
	b.Light(mul, add)
	b.Light(double, add)
	return b.MustGraph()
}

func TestFigure1Metrics(t *testing.T) {
	g := figure1(10)
	if got := g.Work(); got != 5 {
		t.Errorf("Work = %d, want 5", got)
	}
	// Longest weighted path: fork ->1 input ->10 double ->1 add = 12 edges
	// weight, +1 vertex unit = 13.
	if got := g.Span(); got != 13 {
		t.Errorf("Span = %d, want 13", got)
	}
	if got := g.UnweightedSpan(); got != 4 {
		t.Errorf("UnweightedSpan = %d, want 4", got)
	}
	if got := g.SuspensionWidth(); got != 1 {
		t.Errorf("U = %d, want 1", got)
	}
	if got := g.HeavyEdges(); got != 1 {
		t.Errorf("HeavyEdges = %d, want 1", got)
	}
	if got := g.TotalLatency(); got != 9 {
		t.Errorf("TotalLatency = %d, want 9", got)
	}
}

func TestFigure1CriticalPath(t *testing.T) {
	g := figure1(10)
	path := g.CriticalPath()
	want := []string{"fork", "input", "x=2*x", "x+y"}
	if len(path) != len(want) {
		t.Fatalf("critical path %v, want labels %v", path, want)
	}
	for i, v := range path {
		if g.Label(v) != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, g.Label(v), want[i])
		}
	}
}

func TestSingleVertex(t *testing.T) {
	b := NewBuilder()
	b.Vertex("only")
	g := b.MustGraph()
	if g.Work() != 1 || g.Span() != 1 || g.SuspensionWidth() != 0 {
		t.Errorf("single vertex: W=%d S=%d U=%d, want 1,1,0", g.Work(), g.Span(), g.SuspensionWidth())
	}
	if g.Root() != g.Final() {
		t.Error("root and final should coincide")
	}
}

func TestChainMetrics(t *testing.T) {
	b := NewBuilder()
	first, last := b.Chain(None, 10)
	g := b.MustGraph()
	if g.Work() != 10 || g.Span() != 10 {
		t.Errorf("chain: W=%d S=%d, want 10,10", g.Work(), g.Span())
	}
	if g.Root() != first || g.Final() != last {
		t.Error("chain endpoints wrong")
	}
	if g.AvgParallelism() != 1.0 {
		t.Errorf("chain parallelism = %v, want 1", g.AvgParallelism())
	}
}

func TestForkJoinHelpers(t *testing.T) {
	b := NewBuilder()
	root := b.Vertex("root")
	l, r := b.Fork(root)
	b.Join(l, r)
	g := b.MustGraph()
	if g.Work() != 4 || g.Span() != 3 {
		t.Errorf("diamond: W=%d S=%d, want 4,3", g.Work(), g.Span())
	}
	// Left child ordering: first out-edge of root is the left child.
	if g.OutEdges(root)[0].To != l || g.OutEdges(root)[1].To != r {
		t.Error("fork child order violated")
	}
}

func TestValidationErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		_, err := NewBuilder().Graph()
		if !errors.Is(err, ErrEmpty) {
			t.Fatalf("err = %v, want ErrEmpty", err)
		}
	})
	t.Run("two roots", func(t *testing.T) {
		b := NewBuilder()
		a := b.Vertex("")
		c := b.Vertex("")
		j := b.Vertex("")
		b.Light(a, j)
		b.Light(c, j)
		_, err := b.Graph()
		if !errors.Is(err, ErrMultipleRoots) {
			t.Fatalf("err = %v, want ErrMultipleRoots", err)
		}
	})
	t.Run("two finals", func(t *testing.T) {
		b := NewBuilder()
		a := b.Vertex("")
		b.Fork(a)
		_, err := b.Graph()
		if !errors.Is(err, ErrMultipleFinals) {
			t.Fatalf("err = %v, want ErrMultipleFinals", err)
		}
	})
	t.Run("heavy in-degree", func(t *testing.T) {
		b := NewBuilder()
		root := b.Vertex("")
		l, r := b.Fork(root)
		j := b.Vertex("")
		b.Heavy(l, j, 5)
		b.Light(r, j)
		_, err := b.Graph()
		if !errors.Is(err, ErrHeavyInDegree) {
			t.Fatalf("err = %v, want ErrHeavyInDegree", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		// A cycle cannot be built with out-degree<=2 builder checks alone;
		// construct 3 vertices in a cycle plus root/final to pass degree
		// checks... a pure cycle has no root, caught as ErrMultipleRoots.
		// Build root -> a -> b -> a: b and a form a cycle; a has indeg 2.
		b := NewBuilder()
		root := b.Vertex("")
		a := b.Vertex("")
		c := b.Vertex("")
		fin := b.Vertex("")
		b.Light(root, a)
		b.Light(a, c)
		b.Light(c, a)
		b.Light(c, fin)
		_, err := b.Graph()
		if !errors.Is(err, ErrCycle) {
			t.Fatalf("err = %v, want ErrCycle", err)
		}
	})
	t.Run("unreachable", func(t *testing.T) {
		// Two disjoint chains: second chain's head is another root, caught
		// by the roots check; instead make an island that flows into the
		// main final but is not reachable from the main root... that is a
		// second root too. True unreachability without extra roots cannot
		// occur in a dag, so ErrUnreachable guards future mutations only.
		t.Skip("unreachable implies a second root in a dag; covered by roots check")
	})
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"weight zero", func() {
			b := NewBuilder()
			u, v := b.Vertex(""), b.Vertex("")
			b.Edge(u, v, 0)
		}},
		{"self edge", func() {
			b := NewBuilder()
			u := b.Vertex("")
			b.Edge(u, u, 1)
		}},
		{"out-degree three", func() {
			b := NewBuilder()
			u := b.Vertex("")
			b.Fork(u)
			w := b.Vertex("")
			b.Light(u, w)
		}},
		{"heavy with delta 1", func() {
			b := NewBuilder()
			u, v := b.Vertex(""), b.Vertex("")
			b.Heavy(u, v, 1)
		}},
		{"out of range", func() {
			b := NewBuilder()
			u := b.Vertex("")
			b.Edge(u, VertexID(99), 1)
		}},
		{"reuse after Graph", func() {
			b := NewBuilder()
			b.Vertex("")
			b.MustGraph()
			b.Vertex("")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := figure1(5)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("TopoSort reported cycle on dag")
	}
	pos := make(map[VertexID]int)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, e := range g.OutEdges(VertexID(u)) {
			if pos[VertexID(u)] >= pos[e.To] {
				t.Errorf("topo order violates edge %d->%d", u, e.To)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	g := figure1(5)
	levels := g.Levels()
	if len(levels) != 4 {
		t.Fatalf("got %d levels, want 4", len(levels))
	}
	if len(levels[0]) != 1 || g.Label(levels[0][0]) != "fork" {
		t.Errorf("level 0 = %v, want [fork]", levels[0])
	}
	total := 0
	for _, lv := range levels {
		total += len(lv)
	}
	if total != g.NumVertices() {
		t.Errorf("levels cover %d vertices, want %d", total, g.NumVertices())
	}
}

func TestParents(t *testing.T) {
	g := figure1(5)
	parents := g.Parents()
	add := g.Final()
	if len(parents[add]) != 2 {
		t.Errorf("final has %d parents, want 2", len(parents[add]))
	}
	if len(parents[g.Root()]) != 0 {
		t.Error("root has parents")
	}
}

// mapReduceDag builds the §5 distributed map-reduce dag shape directly:
// a balanced fork tree over n leaves, each leaf a getValue vertex with a
// heavy out-edge to a compute vertex, results joined by a reduction tree.
func mapReduceDag(t *testing.T, n int, delta int64) *Graph {
	t.Helper()
	b := NewBuilder()
	var rec func(count int) (first, last VertexID)
	rec = func(count int) (VertexID, VertexID) {
		if count == 1 {
			get := b.Vertex("get")
			f := b.Vertex("f")
			b.Heavy(get, f, delta)
			return get, f
		}
		half := count / 2
		fork := b.Vertex("fork")
		lf, ll := rec(half)
		rf, rl := rec(count - half)
		b.Light(fork, lf)
		b.Light(fork, rf)
		join := b.Join(ll, rl)
		return fork, join
	}
	rec(n)
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("mapReduceDag invalid: %v", err)
	}
	return g
}

func TestMapReduceSuspensionWidthIsN(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16, 33} {
		g := mapReduceDag(t, n, 50)
		if got := g.SuspensionWidth(); got != n {
			t.Errorf("n=%d: U = %d, want %d", n, got, n)
		}
	}
}

// serverDag builds the §5 server dag: a chain of getInput vertices, each
// with a heavy edge to the next stage; only one request is outstanding at
// a time, so U = 1.
func serverDag(t *testing.T, requests int, delta int64) *Graph {
	t.Helper()
	b := NewBuilder()
	prev := None
	var joins []VertexID
	for i := 0; i < requests; i++ {
		get := b.Vertex("get")
		if prev != None {
			b.Light(prev, get)
		}
		next := b.Vertex("recv")
		b.Heavy(get, next, delta)
		f1, f2 := b.Fork(next)
		joins = append(joins, f1) // f(input) work
		prev = f2                 // recursive server call
	}
	// Fold the f(x) branches and the tail into a join chain.
	acc := prev
	for i := len(joins) - 1; i >= 0; i-- {
		acc = b.Join(joins[i], acc)
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("serverDag invalid: %v", err)
	}
	return g
}

func TestServerSuspensionWidthIsOne(t *testing.T) {
	for _, reqs := range []int{1, 2, 5, 10} {
		g := serverDag(t, reqs, 100)
		if got := g.SuspensionWidth(); got != 1 {
			t.Errorf("requests=%d: U = %d, want 1", reqs, got)
		}
	}
}

// randomDag builds a small random fork-join dag with random heavy edges,
// valid per §2 by construction.
func randomDag(r *rng.RNG, maxVerts int) *Graph {
	b := NewBuilder()
	root := b.Vertex("")
	frontier := []VertexID{root}
	budget := 2 + r.Intn(maxVerts)
	for len(frontier) > 0 && budget > 0 {
		// Pick a frontier vertex and either extend, fork, or join.
		i := r.Intn(len(frontier))
		v := frontier[i]
		switch {
		case len(frontier) >= 2 && r.Float64() < 0.3:
			j := r.Intn(len(frontier) - 1)
			if j >= i {
				j++
			}
			u := frontier[j]
			jn := b.Join(v, u)
			// Remove v and u, add jn.
			nf := frontier[:0]
			for _, w := range frontier {
				if w != v && w != u {
					nf = append(nf, w)
				}
			}
			frontier = append(nf, jn)
			budget--
		case r.Float64() < 0.35:
			l, rgt := b.Fork(v)
			frontier[i] = l
			frontier = append(frontier, rgt)
			budget -= 2
		default:
			w := b.Vertex("")
			if r.Float64() < 0.4 {
				b.Heavy(v, w, int64(2+r.Intn(20)))
			} else {
				b.Light(v, w)
			}
			frontier[i] = w
			budget--
		}
	}
	// Join remaining frontier down to one final vertex.
	for len(frontier) > 1 {
		jn := b.Join(frontier[len(frontier)-1], frontier[len(frontier)-2])
		frontier = frontier[:len(frontier)-2]
		frontier = append(frontier, jn)
	}
	return b.MustGraph()
}

func TestRandomDagsValid(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		g := randomDag(r, 40)
		if err := g.Validate(); err != nil {
			t.Fatalf("random dag %d invalid: %v", i, err)
		}
	}
}

// TestSuspensionWidthMatchesBruteForce cross-checks the flow-based exact
// computation against exhaustive downset enumeration.
func TestSuspensionWidthMatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	checked := 0
	for i := 0; i < 400 && checked < 120; i++ {
		g := randomDag(r, 14)
		if g.NumVertices() > 22 {
			continue
		}
		checked++
		fast := g.SuspensionWidth()
		slow := g.suspensionWidthBrute()
		if fast != slow {
			t.Fatalf("dag %d (%s): flow U=%d brute U=%d\n%s", i, g, fast, slow, g.DOT(""))
		}
	}
	if checked < 50 {
		t.Fatalf("only %d dags small enough for brute force", checked)
	}
}

func TestMaxWidthPrefixIsConsistent(t *testing.T) {
	r := rng.New(123)
	for i := 0; i < 50; i++ {
		g := randomDag(r, 30)
		set, width := g.MaxWidthPrefix()
		if width != g.SuspensionWidth() {
			t.Fatalf("prefix width %d != U %d", width, g.SuspensionWidth())
		}
		// Verify the prefix is a downset and count crossing heavy edges.
		parents := g.Parents()
		crossing := 0
		for v := 0; v < g.NumVertices(); v++ {
			if set[v] {
				for _, p := range parents[v] {
					if !set[p] {
						t.Fatal("prefix not predecessor-closed")
					}
				}
				for _, e := range g.OutEdges(VertexID(v)) {
					if e.Heavy() && !set[e.To] {
						crossing++
					}
				}
			}
		}
		if crossing != width {
			t.Fatalf("prefix crossing %d != width %d", crossing, width)
		}
	}
}

// Property: span bounds. S >= UnweightedSpan, S <= UnweightedSpan + total
// latency, W >= S - totalLatency.
func TestSpanProperties(t *testing.T) {
	fn := func(seed uint64) bool {
		g := randomDag(rng.New(seed), 40)
		s, us := g.Span(), g.UnweightedSpan()
		if s < us {
			return false
		}
		if s > us+g.TotalLatency() {
			return false
		}
		return int64(len(g.CriticalPath())) <= us
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: U is between 0 and the number of heavy edges.
func TestSuspensionWidthBounds(t *testing.T) {
	fn := func(seed uint64) bool {
		g := randomDag(rng.New(seed), 40)
		u := g.SuspensionWidth()
		if u < 0 || u > g.HeavyEdges() {
			return false
		}
		// If there is at least one heavy edge, U >= 1 (the prefix of that
		// edge's ancestors realizes it).
		return g.HeavyEdges() == 0 || u >= 1
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthsMonotone(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		g := randomDag(r, 30)
		depths := g.Depths()
		for u := 0; u < g.NumVertices(); u++ {
			for _, e := range g.OutEdges(VertexID(u)) {
				if depths[e.To] < depths[u]+e.Weight {
					t.Fatalf("depth not monotone along edge %d->%d", u, e.To)
				}
			}
		}
		if depths[g.Root()] != 0 {
			t.Fatal("root depth nonzero")
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := figure1(7)
	dot := g.DOT("fig1")
	for _, want := range []string{"digraph \"fig1\"", "penwidth=2.5", "δ=7", "fork"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestSummaryMentionsMetrics(t *testing.T) {
	g := figure1(7)
	s := g.Summary()
	for _, want := range []string{"W=5", "U=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q: %s", want, s)
		}
	}
}

func TestEdgeLookup(t *testing.T) {
	g := figure1(7)
	// Edge from the input vertex to the double vertex has weight 7.
	var input VertexID = None
	for v := 0; v < g.NumVertices(); v++ {
		if g.Label(VertexID(v)) == "input" {
			input = VertexID(v)
		}
	}
	if input == None {
		t.Fatal("input vertex not found")
	}
	e := g.OutEdges(input)[0]
	w, ok := g.Edge(input, e.To)
	if !ok || w != 7 {
		t.Fatalf("Edge = %d,%v want 7,true", w, ok)
	}
	if _, ok := g.Edge(input, input); ok {
		t.Fatal("nonexistent edge reported present")
	}
}

func BenchmarkSuspensionWidthMapReduce(b *testing.B) {
	g := mapReduceDagBench(1000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.SuspensionWidth() != 1000 {
			b.Fatal("wrong U")
		}
	}
}

func mapReduceDagBench(n int, delta int64) *Graph {
	b := NewBuilder()
	var rec func(count int) (VertexID, VertexID)
	rec = func(count int) (VertexID, VertexID) {
		if count == 1 {
			get := b.Vertex("")
			f := b.Vertex("")
			b.Heavy(get, f, delta)
			return get, f
		}
		half := count / 2
		fork := b.Vertex("")
		lf, ll := rec(half)
		rf, rl := rec(count - half)
		b.Light(fork, lf)
		b.Light(fork, rf)
		return fork, b.Join(ll, rl)
	}
	rec(n)
	return b.MustGraph()
}

func BenchmarkValidate(b *testing.B) {
	g := mapReduceDagBench(1000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
