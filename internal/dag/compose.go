package dag

// Composition combinators: build larger computations from validated
// sub-dags. Vertices of the operands are copied into the result with their
// IDs offset; labels and edge weights are preserved.

// Sequence returns g1 ; g2 — the final vertex of g1 connected to the root
// of g2 by an edge of the given weight (1 for plain sequencing, >1 to
// model a latency-incurring handoff such as writing g1's result to remote
// storage that g2 reads).
func Sequence(g1, g2 *Graph, weight int64) *Graph {
	b := NewBuilder()
	off1 := copyInto(b, g1)
	off2 := copyInto(b, g2)
	b.Edge(off1+g1.Final(), off2+g2.Root(), weight)
	return b.MustGraph()
}

// Parallel returns g1 ∥ g2 — a new fork vertex spawning both dags (g1 as
// the left/continuation branch, g2 as the right/spawned branch) and a new
// join vertex awaiting both.
func Parallel(g1, g2 *Graph) *Graph {
	b := NewBuilder()
	fork := b.Vertex("fork")
	off1 := copyInto(b, g1)
	off2 := copyInto(b, g2)
	b.Light(fork, off1+g1.Root())
	b.Light(fork, off2+g2.Root())
	b.Join(off1+g1.Final(), off2+g2.Final())
	return b.MustGraph()
}

// ParallelAll folds Parallel over one or more dags, producing a balanced
// fork tree (left-leaning join order).
func ParallelAll(gs ...*Graph) *Graph {
	if len(gs) == 0 {
		panic("dag: ParallelAll requires at least one graph")
	}
	if len(gs) == 1 {
		return gs[0]
	}
	mid := len(gs) / 2
	return Parallel(ParallelAll(gs[:mid]...), ParallelAll(gs[mid:]...))
}

// WithEntryLatency prefixes g with a vertex whose heavy out-edge (weight
// delta) leads to g's root: "fetch, then compute" — the §5 leaf pattern as
// a combinator.
func WithEntryLatency(g *Graph, label string, delta int64) *Graph {
	b := NewBuilder()
	v := b.Vertex(label)
	off := copyInto(b, g)
	b.Edge(v, off+g.Root(), delta)
	return b.MustGraph()
}

// copyInto appends all of g's vertices and edges to the builder and
// returns the ID offset at which they were placed.
func copyInto(b *Builder, g *Graph) VertexID {
	off := VertexID(len(b.out))
	for v := 0; v < g.NumVertices(); v++ {
		b.Vertex(g.Label(VertexID(v)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.OutEdges(VertexID(v)) {
			b.Edge(off+VertexID(v), off+e.To, e.Weight)
		}
	}
	return off
}
