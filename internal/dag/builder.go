package dag

import "fmt"

// Builder incrementally constructs a Graph. The zero value is unusable;
// create one with NewBuilder. Builders are not safe for concurrent use.
//
// Edge order determines child roles: the first edge added from a vertex
// leads to its left child (the continuation), the second to its right child
// (the spawned thread), per the convention of §2. Use the explicit Fork
// helper when the distinction matters.
type Builder struct {
	out    [][]OutEdge
	inDeg  []int32
	labels []string
	frozen bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Vertex adds a vertex with an optional label and returns its ID.
func (b *Builder) Vertex(label string) VertexID {
	b.check()
	id := VertexID(len(b.out))
	b.out = append(b.out, nil)
	b.inDeg = append(b.inDeg, 0)
	b.labels = append(b.labels, label)
	return id
}

// Vertices adds n unlabeled vertices and returns their IDs.
func (b *Builder) Vertices(n int) []VertexID {
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = b.Vertex("")
	}
	return ids
}

// Edge adds an edge u→v with latency weight (≥ 1). A weight of 1 is a
// light edge; larger weights are heavy edges. It panics on invalid
// endpoints, weights < 1, or if u already has two out-edges.
func (b *Builder) Edge(u, v VertexID, weight int64) {
	b.check()
	if int(u) >= len(b.out) || int(v) >= len(b.out) || u < 0 || v < 0 {
		panic(fmt.Sprintf("dag: edge endpoint out of range (%d -> %d, %d vertices)", u, v, len(b.out)))
	}
	if weight < 1 {
		panic(fmt.Sprintf("dag: edge weight %d < 1", weight))
	}
	if u == v {
		panic("dag: self edge")
	}
	if len(b.out[u]) >= 2 {
		panic(fmt.Sprintf("dag: vertex %d would exceed out-degree 2", u))
	}
	b.out[u] = append(b.out[u], OutEdge{To: v, Weight: weight})
	b.inDeg[v]++
}

// Light adds a light (weight-1) edge u→v.
func (b *Builder) Light(u, v VertexID) { b.Edge(u, v, 1) }

// Heavy adds a heavy edge u→v with latency delta (> 1). Panics if
// delta ≤ 1, since that would be a light edge.
func (b *Builder) Heavy(u, v VertexID, delta int64) {
	if delta <= 1 {
		panic("dag: Heavy requires delta > 1")
	}
	b.Edge(u, v, delta)
}

// Chain adds a path of n new vertices connected by light edges, starting
// after the given predecessor (use None for a fresh chain). It returns the
// first and last vertex of the new chain.
func (b *Builder) Chain(after VertexID, n int) (first, last VertexID) {
	if n <= 0 {
		panic("dag: Chain requires n > 0")
	}
	prev := after
	for i := 0; i < n; i++ {
		v := b.Vertex("")
		if prev != None {
			b.Light(prev, v)
		} else {
			first = v
		}
		if i == 0 {
			first = v
		}
		prev = v
	}
	return first, prev
}

// Fork adds left and right children to u connected by light edges,
// encoding "u spawns right and continues as left".
func (b *Builder) Fork(u VertexID) (left, right VertexID) {
	left = b.Vertex("")
	right = b.Vertex("")
	b.Light(u, left)
	b.Light(u, right)
	return left, right
}

// Join adds a join vertex with light in-edges from both a and b.
func (b *Builder) Join(x, y VertexID) VertexID {
	j := b.Vertex("")
	b.Light(x, j)
	b.Light(y, j)
	return j
}

// Graph validates the constructed dag and returns it. After a successful
// call the Builder is frozen and must not be reused. Use MustGraph in
// code where the structure is known correct by construction.
func (b *Builder) Graph() (*Graph, error) {
	b.check()
	g := &Graph{out: b.out, inDeg: b.inDeg, labels: b.labels}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	b.frozen = true
	return g, nil
}

// MustGraph is Graph but panics on validation failure.
func (b *Builder) MustGraph() *Graph {
	g, err := b.Graph()
	if err != nil {
		panic(err)
	}
	return g
}

func (b *Builder) check() {
	if b.frozen {
		panic("dag: Builder reused after Graph()")
	}
}
