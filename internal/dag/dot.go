package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. Heavy edges are drawn bold
// and labeled with their latency, mirroring the paper's figures (light
// edges thin and unlabeled, heavy edges thick).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	if name == "" {
		name = "dag"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle, fontsize=10];\n")
	for v := 0; v < g.NumVertices(); v++ {
		label := g.Label(VertexID(v))
		if label == "" {
			label = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&b, "  v%d [label=%q];\n", v, label)
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, e := range g.out[u] {
			if e.Heavy() {
				fmt.Fprintf(&b, "  v%d -> v%d [penwidth=2.5, label=\"δ=%d\"];\n", u, e.To, e.Weight)
			} else {
				fmt.Fprintf(&b, "  v%d -> v%d;\n", u, e.To)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line metrics summary: work, span, suspension
// width, and average parallelism.
func (g *Graph) Summary() string {
	return fmt.Sprintf("W=%d S=%d U=%d heavy=%d parallelism=%.1f",
		g.Work(), g.Span(), g.SuspensionWidth(), g.HeavyEdges(), g.AvgParallelism())
}
