package dag

import "lhws/internal/flow"

// SuspensionWidth returns U, the suspension width of the dag (Definition 1
// of the paper): the maximum, over all execution prefixes, of the number of
// heavy edges crossing from the prefix to its complement — equivalently,
// the maximum number of simultaneously suspended vertices any schedule can
// produce.
//
// The paper defines U over connected source–sink partitions; the partitions
// realizable by an execution are exactly the predecessor-closed vertex sets
// ("downsets") containing the root, and those are connected with connected
// complements, so maximizing over downsets yields the scheduling-relevant
// width used throughout the paper's analysis (see the discussion after
// Definition 1, which identifies the crossing edges of the executed set
// S_i with the suspended vertices).
//
// Over downsets the problem is polynomial: the number of crossing heavy
// edges is Σ_{heavy (u,v)} ([u∈S] − [v∈S]) because a heavy edge's target
// has in-degree one and therefore v∈S implies u∈S. That makes the objective
// a linear function of membership under closure constraints
// (v∈S ⇒ parent∈S), i.e. a maximum-weight closure instance, solved exactly
// via min-cut in O(E·V²) worst case and far faster in practice.
func (g *Graph) SuspensionWidth() int {
	n := g.NumVertices()
	weights := make([]int64, n)
	var requires [][2]int
	heavy := 0
	for u := 0; u < n; u++ {
		for _, e := range g.out[u] {
			if e.Heavy() {
				weights[u]++
				weights[e.To]--
				heavy++
			}
			// Closure: membership of the child implies membership of the
			// parent (a vertex executes only after its parents).
			requires = append(requires, [2]int{int(e.To), u})
		}
	}
	if heavy == 0 {
		return 0
	}
	val, _ := flow.MaxWeightClosure(weights, requires)
	return int(val)
}

// MaxWidthPrefix returns an execution prefix (as a membership slice)
// achieving the suspension width, useful for visualization and testing.
// The second result is the width achieved.
func (g *Graph) MaxWidthPrefix() ([]bool, int) {
	n := g.NumVertices()
	weights := make([]int64, n)
	var requires [][2]int
	for u := 0; u < n; u++ {
		for _, e := range g.out[u] {
			if e.Heavy() {
				weights[u]++
				weights[e.To]--
			}
			requires = append(requires, [2]int{int(e.To), u})
		}
	}
	val, set := flow.MaxWeightClosure(weights, requires)
	return set, int(val)
}

// suspensionWidthBrute computes U by exhaustive enumeration of downsets.
// Exponential; intended only for cross-checking SuspensionWidth in tests
// on graphs with at most 30 vertices.
func (g *Graph) suspensionWidthBrute() int {
	n := g.NumVertices()
	if n > 30 {
		panic("dag: suspensionWidthBrute limited to 30 vertices")
	}
	parents := g.Parents()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		// Downset check: every member's parents are members.
		valid := true
		for v := 0; v < n && valid; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			for _, p := range parents[v] {
				if mask&(1<<p) == 0 {
					valid = false
					break
				}
			}
		}
		if !valid {
			continue
		}
		crossing := 0
		for u := 0; u < n; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			for _, e := range g.out[u] {
				if e.Heavy() && mask&(1<<e.To) == 0 {
					crossing++
				}
			}
		}
		if crossing > best {
			best = crossing
		}
	}
	return best
}
