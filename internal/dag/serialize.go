package dag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes the graph in a line-oriented text format:
//
//	# comment (ignored)
//	v <id> [label]        one line per vertex, ids dense and in order
//	e <from> <to> <weight> one line per edge, in child order
//
// The format round-trips exactly through Decode, including child order
// (left/right) and labels.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# lhws weighted dag: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		label := g.Label(VertexID(v))
		if label == "" {
			fmt.Fprintf(bw, "v %d\n", v)
		} else {
			fmt.Fprintf(bw, "v %d %s\n", v, label)
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, e := range g.out[u] {
			fmt.Fprintf(bw, "e %d %d %d\n", u, e.To, e.Weight)
		}
	}
	return bw.Flush()
}

// Text returns the Encode output as a string.
func (g *Graph) Text() string {
	var sb strings.Builder
	g.Encode(&sb) // strings.Builder writes cannot fail
	return sb.String()
}

// Decode parses the Encode format and validates the resulting graph.
// Vertex lines must appear before any edge that references them and carry
// dense, increasing ids.
func Decode(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	vertices := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		switch fields[0] {
		case "v":
			if len(fields) < 2 {
				return nil, fmt.Errorf("dag: line %d: vertex line needs an id", lineNo)
			}
			rest := strings.SplitN(fields[1], " ", 2)
			id, err := strconv.Atoi(rest[0])
			if err != nil {
				return nil, fmt.Errorf("dag: line %d: bad vertex id %q", lineNo, rest[0])
			}
			if id != vertices {
				return nil, fmt.Errorf("dag: line %d: vertex ids must be dense and increasing (got %d, want %d)", lineNo, id, vertices)
			}
			label := ""
			if len(rest) == 2 {
				label = rest[1]
			}
			b.Vertex(label)
			vertices++
		case "e":
			if len(fields) < 2 {
				return nil, fmt.Errorf("dag: line %d: edge line needs endpoints", lineNo)
			}
			parts := strings.Fields(fields[1])
			if len(parts) != 3 {
				return nil, fmt.Errorf("dag: line %d: edge needs 'from to weight'", lineNo)
			}
			from, err1 := strconv.Atoi(parts[0])
			to, err2 := strconv.Atoi(parts[1])
			weight, err3 := strconv.ParseInt(parts[2], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dag: line %d: malformed edge %q", lineNo, line)
			}
			if from < 0 || from >= vertices || to < 0 || to >= vertices {
				return nil, fmt.Errorf("dag: line %d: edge endpoint out of range", lineNo)
			}
			if weight < 1 {
				return nil, fmt.Errorf("dag: line %d: edge weight %d < 1", lineNo, weight)
			}
			if err := safeEdge(b, VertexID(from), VertexID(to), weight); err != nil {
				return nil, fmt.Errorf("dag: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("dag: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Graph()
}

// safeEdge adds an edge, converting Builder panics on structural errors
// into returned errors so Decode can report line numbers.
func safeEdge(b *Builder, from, to VertexID, weight int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	b.Edge(from, to, weight)
	return nil
}
