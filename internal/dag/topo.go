package dag

// TopoSort returns the vertices in a topological order (parents before
// children) using Kahn's algorithm. ok is false if the graph contains a
// cycle, in which case the returned slice is partial.
func (g *Graph) TopoSort() ([]VertexID, bool) {
	n := g.NumVertices()
	indeg := make([]int32, n)
	copy(indeg, g.inDeg)
	order := make([]VertexID, 0, n)
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, e := range g.out[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return order, len(order) == n
}

// Parents returns, for each vertex, the list of its parent vertices.
// The result is freshly allocated on each call.
func (g *Graph) Parents() [][]VertexID {
	n := g.NumVertices()
	parents := make([][]VertexID, n)
	for u := 0; u < n; u++ {
		for _, e := range g.out[u] {
			parents[e.To] = append(parents[e.To], VertexID(u))
		}
	}
	return parents
}

// Levels partitions vertices by unweighted depth (longest unweighted path
// from the root), the level structure used by Brent-style level-by-level
// schedules.
func (g *Graph) Levels() [][]VertexID {
	order, ok := g.TopoSort()
	if !ok {
		return nil
	}
	n := g.NumVertices()
	depth := make([]int, n)
	maxDepth := 0
	for _, v := range order {
		for _, e := range g.out[v] {
			if d := depth[v] + 1; d > depth[e.To] {
				depth[e.To] = d
				if d > maxDepth {
					maxDepth = d
				}
			}
		}
	}
	levels := make([][]VertexID, maxDepth+1)
	for v := 0; v < n; v++ {
		levels[depth[v]] = append(levels[depth[v]], VertexID(v))
	}
	return levels
}
