package dag

import (
	"testing"
	"testing/quick"

	"lhws/internal/rng"
)

func chainN(n int) *Graph {
	b := NewBuilder()
	b.Chain(None, n)
	return b.MustGraph()
}

func TestSequenceMetrics(t *testing.T) {
	g := Sequence(chainN(3), chainN(4), 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Work() != 7 || g.Span() != 7 {
		t.Fatalf("W=%d S=%d, want 7,7", g.Work(), g.Span())
	}
}

func TestSequenceWithLatency(t *testing.T) {
	g := Sequence(chainN(3), chainN(4), 10)
	if g.Work() != 7 {
		t.Fatalf("W = %d, want 7 (latency is not work)", g.Work())
	}
	// Span: 2 edges + 10 + 3 edges + 1 vertex unit = 16.
	if g.Span() != 16 {
		t.Fatalf("S = %d, want 16", g.Span())
	}
	if g.SuspensionWidth() != 1 {
		t.Fatalf("U = %d, want 1", g.SuspensionWidth())
	}
}

func TestParallelMetrics(t *testing.T) {
	g := Parallel(chainN(5), chainN(3))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Work() != 10 { // 5 + 3 + fork + join
		t.Fatalf("W = %d, want 10", g.Work())
	}
	if g.Span() != 7 { // fork + longest branch (5) + join
		t.Fatalf("S = %d, want 7", g.Span())
	}
}

func TestParallelChildOrder(t *testing.T) {
	g := Parallel(chainN(2), chainN(2))
	root := g.Root()
	edges := g.OutEdges(root)
	if len(edges) != 2 {
		t.Fatalf("fork out-degree %d", len(edges))
	}
	// Left branch (continuation) is g1, copied first, so its root has the
	// smaller ID.
	if edges[0].To > edges[1].To {
		t.Fatal("left/right child order not preserved")
	}
}

func TestParallelAll(t *testing.T) {
	gs := make([]*Graph, 7)
	for i := range gs {
		gs[i] = chainN(i + 1)
	}
	g := ParallelAll(gs...)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Work: Σ chains (28) + 6 forks + 6 joins.
	if g.Work() != 28+12 {
		t.Fatalf("W = %d, want 40", g.Work())
	}
}

func TestParallelAllSingle(t *testing.T) {
	g := chainN(4)
	if got := ParallelAll(g); got != g {
		t.Fatal("single-operand ParallelAll should return the operand")
	}
}

func TestParallelAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParallelAll()
}

func TestWithEntryLatency(t *testing.T) {
	g := WithEntryLatency(chainN(4), "fetch", 25)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Label(g.Root()) != "fetch" {
		t.Fatal("entry label lost")
	}
	// Path: fetch --25--> c1 -> c2 -> c3 -> c4: edge sum 28, plus one
	// vertex unit.
	if g.Span() != 29 {
		t.Fatalf("S = %d, want 29", g.Span())
	}
	if g.SuspensionWidth() != 1 {
		t.Fatalf("U = %d", g.SuspensionWidth())
	}
}

// TestComposeMapReduceEquivalent rebuilds the §5 map-reduce from
// combinators and checks it has the same metrics as the generator's shape:
// n parallel fetch+compute branches.
func TestComposeMapReduceEquivalent(t *testing.T) {
	const n = 16
	branches := make([]*Graph, n)
	for i := range branches {
		branches[i] = WithEntryLatency(chainN(5), "get", 40)
	}
	g := ParallelAll(branches...)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.SuspensionWidth(); got != n {
		t.Fatalf("U = %d, want %d", got, n)
	}
}

// TestComposePreservesLabelsAndWeights round-trips a random dag through
// Parallel with itself and checks both copies are intact.
func TestComposePreservesLabelsAndWeights(t *testing.T) {
	r := rng.New(13)
	for i := 0; i < 20; i++ {
		g := randomDag(r, 30)
		p := Parallel(g, g)
		if err := p.Validate(); err != nil {
			t.Fatalf("dag %d: %v", i, err)
		}
		if p.Work() != 2*g.Work()+2 {
			t.Fatalf("dag %d: W = %d, want %d", i, p.Work(), 2*g.Work()+2)
		}
		if p.HeavyEdges() != 2*g.HeavyEdges() {
			t.Fatalf("dag %d: heavy edges not duplicated", i)
		}
		if p.Span() != g.Span()+2 {
			t.Fatalf("dag %d: S = %d, want %d", i, p.Span(), g.Span()+2)
		}
	}
}

// TestComposedGraphsSchedule runs a composed dag end to end through
// validation; scheduling correctness is covered by the sched fuzzers,
// which consume arbitrary valid dags.
func TestComposedGraphsSchedule(t *testing.T) {
	g := Sequence(
		Parallel(chainN(6), WithEntryLatency(chainN(2), "get", 12)),
		chainN(3),
		9,
	)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SuspensionWidth() != 1 {
		t.Fatalf("U = %d, want 1 (two heavy edges, serialized)", g.SuspensionWidth())
	}
}

// Property tests: composition algebra identities over random operands.
func TestComposeAlgebraProperties(t *testing.T) {
	if err := quick.Check(func(seed1, seed2 uint64) bool {
		r1, r2 := rng.New(seed1), rng.New(seed2)
		g1, g2 := randomDag(r1, 25), randomDag(r2, 25)

		seq := Sequence(g1, g2, 1)
		if seq.Work() != g1.Work()+g2.Work() {
			return false
		}
		if seq.Span() != g1.Span()+g2.Span() {
			return false
		}
		// Sequential composition cannot widen suspensions.
		maxU := g1.SuspensionWidth()
		if u2 := g2.SuspensionWidth(); u2 > maxU {
			maxU = u2
		}
		if seq.SuspensionWidth() > maxU {
			return false
		}

		par := Parallel(g1, g2)
		if par.Work() != g1.Work()+g2.Work()+2 {
			return false
		}
		longer := g1.Span()
		if g2.Span() > longer {
			longer = g2.Span()
		}
		if par.Span() != longer+2 {
			return false
		}
		// Parallel composition adds suspension widths.
		if par.SuspensionWidth() != g1.SuspensionWidth()+g2.SuspensionWidth() {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
