package dag

import (
	"strings"
	"testing"

	"lhws/internal/rng"
)

// FuzzDecode throws arbitrary text at the dag parser: it must never panic,
// and anything it accepts must be a structurally valid graph that
// round-trips.
func FuzzDecode(f *testing.F) {
	f.Add("v 0\nv 1\ne 0 1 1\n")
	f.Add("# comment\nv 0 label here\nv 1\ne 0 1 9\n")
	f.Add(figure1(7).Text())
	f.Add("v 0\n")
	f.Add("e 0 1 1\n")
	f.Add("v x y z\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		g, err := Decode(strings.NewReader(text))
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("Decode accepted an invalid graph: %v", vErr)
		}
		g2, err := Decode(strings.NewReader(g.Text()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
		if g.Span() != g2.Span() {
			t.Fatal("round trip changed the span")
		}
	})
}

// FuzzMetricsConsistency generates random dags from a seed and checks the
// metric relationships that must always hold.
func FuzzMetricsConsistency(f *testing.F) {
	f.Add(uint64(1), uint8(20))
	f.Add(uint64(99), uint8(200))
	f.Fuzz(func(t *testing.T, seed uint64, sizeRaw uint8) {
		g := randomDag(rng.New(seed), 1+int(sizeRaw))
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced invalid dag: %v", err)
		}
		w, s, us := g.Work(), g.Span(), g.UnweightedSpan()
		if s < us {
			t.Fatalf("weighted span %d < unweighted %d", s, us)
		}
		if us > w {
			t.Fatalf("unweighted span %d > work %d", us, w)
		}
		u := g.SuspensionWidth()
		if u < 0 || u > g.HeavyEdges() {
			t.Fatalf("U = %d out of [0, %d]", u, g.HeavyEdges())
		}
		if path := g.CriticalPath(); int64(len(path)) > us {
			t.Fatalf("critical path longer than unweighted span")
		}
	})
}
