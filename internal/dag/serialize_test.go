package dag

import (
	"strings"
	"testing"

	"lhws/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := figure1(9)
	text := g.Text()
	g2, err := Decode(strings.NewReader(text))
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, text)
	}
	assertSameGraph(t, g, g2)
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertex count %d != %d", a.NumVertices(), b.NumVertices())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(VertexID(v)) != b.Label(VertexID(v)) {
			t.Fatalf("label mismatch at %d: %q != %q", v, a.Label(VertexID(v)), b.Label(VertexID(v)))
		}
		ea, eb := a.OutEdges(VertexID(v)), b.OutEdges(VertexID(v))
		if len(ea) != len(eb) {
			t.Fatalf("out-degree mismatch at %d", v)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("edge %d/%d mismatch: %+v != %+v", v, i, ea[i], eb[i])
			}
		}
	}
}

func TestRoundTripRandomDags(t *testing.T) {
	r := rng.New(77)
	for i := 0; i < 60; i++ {
		g := randomDag(r, 60)
		g2, err := Decode(strings.NewReader(g.Text()))
		if err != nil {
			t.Fatalf("dag %d: %v", i, err)
		}
		assertSameGraph(t, g, g2)
		if g.Span() != g2.Span() || g.SuspensionWidth() != g2.SuspensionWidth() {
			t.Fatalf("dag %d: metrics changed after round trip", i)
		}
	}
}

func TestDecodeWithCommentsAndBlanks(t *testing.T) {
	text := `
# a tiny chain
v 0 start

v 1
v 2 end
e 0 1 1
# heavy edge
e 1 2 5
`
	g, err := Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.HeavyEdges() != 1 {
		t.Fatalf("decoded %s", g)
	}
	if g.Label(0) != "start" || g.Label(2) != "end" {
		t.Fatal("labels lost")
	}
}

func TestDecodeLabelWithSpaces(t *testing.T) {
	text := "v 0 a label with spaces\nv 1\ne 0 1 1\n"
	g, err := Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.Label(0) != "a label with spaces" {
		t.Fatalf("label = %q", g.Label(0))
	}
	// Round-trip preserves it.
	g2, err := Decode(strings.NewReader(g.Text()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Label(0) != "a label with spaces" {
		t.Fatalf("round-trip label = %q", g2.Label(0))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"sparse ids":          "v 0\nv 2\n",
		"bad id":              "v x\n",
		"unknown directive":   "q 1 2\n",
		"short edge":          "v 0\nv 1\ne 0 1\n",
		"edge range":          "v 0\nv 1\ne 0 5 1\n",
		"zero weight":         "v 0\nv 1\ne 0 1 0\n",
		"edge before vertex":  "e 0 1 1\n",
		"overfull out-degree": "v 0\nv 1\nv 2\nv 3\ne 0 1 1\ne 0 2 1\ne 0 3 1\n",
		"invalid structure":   "v 0\nv 1\n", // two roots / two finals
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(text)); err == nil {
				t.Fatalf("decoded invalid input %q", text)
			}
		})
	}
}

func TestTextHeaderComment(t *testing.T) {
	g := figure1(3)
	if !strings.HasPrefix(g.Text(), "# lhws weighted dag: 5 vertices") {
		t.Fatalf("missing header: %q", g.Text()[:40])
	}
}
