package deque

import "sync"

// Locked is a mutex-protected slice-backed deque. It trades throughput for
// obviousness and is used by the round-based simulator (which serializes
// accesses anyway) and by tests as a reference implementation for
// differential testing against ChaseLev.
type Locked struct {
	mu    sync.Mutex
	items []Item
}

// NewLocked returns an empty mutex-based deque.
func NewLocked() *Locked { return &Locked{} }

// PushBottom adds an item at the owner end.
func (d *Locked) PushBottom(it Item) {
	d.mu.Lock()
	d.items = append(d.items, it)
	d.mu.Unlock()
}

// PopBottom removes and returns the item at the owner end.
func (d *Locked) PopBottom() (Item, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil, false
	}
	it := d.items[n-1]
	d.items[n-1] = nil // release for GC
	d.items = d.items[:n-1]
	return it, true
}

// PopTop removes and returns the item at the thief end.
func (d *Locked) PopTop() (Item, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil, false
	}
	it := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return it, true
}

// PopTopBatch removes up to max items from the thief end, at most half of
// the deque (a lone item is taken whole), oldest first — the same
// semantics as ChaseLev.PopTopBatch, arbitrated by the mutex instead of
// the claim protocol.
func (d *Locked) PopTopBatch(dst []Item, max int) int {
	if max > len(dst) {
		max = len(dst)
	}
	if max > MaxBatch {
		max = MaxBatch
	}
	if max <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return 0
	}
	take := n / 2
	if n == 1 {
		take = 1
	}
	if take > max {
		take = max
	}
	for i := 0; i < take; i++ {
		dst[i] = d.items[i]
		d.items[i] = nil
	}
	d.items = d.items[take:]
	return take
}

// Empty reports whether the deque is empty.
func (d *Locked) Empty() bool { return d.Len() == 0 }

// Len returns the number of items.
func (d *Locked) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

var _ Deque = (*Locked)(nil)
