// Package deque implements work-stealing double-ended queues.
//
// A work-stealing deque has an owner end (the bottom) and a thief end (the
// top). The owner pushes and pops at the bottom in LIFO order, preserving
// the sequential depth-first execution order that makes work stealing
// cache-friendly; thieves remove from the top, taking the oldest — and in
// fork-join programs, typically largest — piece of work.
//
// Two implementations are provided:
//
//   - Chase–Lev: the classic lock-free dynamic circular-array deque
//     (Chase & Lev, SPAA 2005), with the memory-ordering fixes from
//     Lê et al. (PPoPP 2013) expressed through Go's sync/atomic. This is
//     the deque used by the real runtime in internal/runtime.
//
//   - Locked: a mutex-protected slice-backed deque. The round-based
//     simulator arbitrates all accesses itself and the examples favour
//     clarity, so the locked deque's simplicity is a feature there.
//
// Both satisfy the Deque interface, and both are exercised by the same
// conformance and property-based test suites.
package deque

// Item is the element type stored in deques. The schedulers store
// scheduler-specific node pointers; using a minimal interface keeps this
// package free of dependencies on them.
type Item interface{}

// Deque is the contract shared by all work-stealing deque implementations.
//
// PushBottom and PopBottom may only be called by the owning worker.
// PopTop may be called by any worker (thieves). Empty and Len are advisory
// under concurrency: they may be stale by the time the caller acts on them.
type Deque interface {
	// PushBottom adds an item at the owner end.
	PushBottom(it Item)
	// PopBottom removes and returns the item at the owner end.
	// ok is false if the deque was observed empty.
	PopBottom() (it Item, ok bool)
	// PopTop removes and returns the item at the thief end.
	// ok is false if the deque was observed empty or the steal lost a race.
	PopTop() (it Item, ok bool)
	// PopTopBatch removes up to max items (at most half the deque, but a
	// lone item is taken whole) from the thief end into dst, oldest first,
	// and returns the count; 0 plays the role of a failed PopTop.
	PopTopBatch(dst []Item, max int) int
	// Empty reports whether the deque was observed empty.
	Empty() bool
	// Len returns the observed number of items.
	Len() int
}
