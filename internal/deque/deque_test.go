package deque

import (
	"sync"
	"testing"
	"testing/quick"
)

// implementations returns fresh instances of every Deque implementation for
// conformance testing.
func implementations() map[string]func() Deque {
	return map[string]func() Deque{
		"ChaseLev": func() Deque { return NewChaseLev() },
		"Locked":   func() Deque { return NewLocked() },
	}
}

func TestEmptyBehaviour(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			if !d.Empty() {
				t.Error("new deque not empty")
			}
			if d.Len() != 0 {
				t.Errorf("Len() = %d, want 0", d.Len())
			}
			if _, ok := d.PopBottom(); ok {
				t.Error("PopBottom on empty returned ok")
			}
			if _, ok := d.PopTop(); ok {
				t.Error("PopTop on empty returned ok")
			}
		})
	}
}

func TestLIFOAtBottom(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			for i := 0; i < 100; i++ {
				d.PushBottom(i)
			}
			for i := 99; i >= 0; i-- {
				it, ok := d.PopBottom()
				if !ok || it.(int) != i {
					t.Fatalf("PopBottom = %v,%v; want %d,true", it, ok, i)
				}
			}
		})
	}
}

func TestFIFOAtTop(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			for i := 0; i < 100; i++ {
				d.PushBottom(i)
			}
			for i := 0; i < 100; i++ {
				it, ok := d.PopTop()
				if !ok || it.(int) != i {
					t.Fatalf("PopTop = %v,%v; want %d,true", it, ok, i)
				}
			}
		})
	}
}

func TestMixedEnds(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			d.PushBottom(1)
			d.PushBottom(2)
			d.PushBottom(3)
			if it, _ := d.PopTop(); it.(int) != 1 {
				t.Fatalf("PopTop = %v, want 1", it)
			}
			if it, _ := d.PopBottom(); it.(int) != 3 {
				t.Fatalf("PopBottom = %v, want 3", it)
			}
			if it, _ := d.PopTop(); it.(int) != 2 {
				t.Fatalf("PopTop = %v, want 2", it)
			}
			if !d.Empty() {
				t.Fatal("deque should be empty")
			}
		})
	}
}

func TestGrowthBeyondInitialCapacity(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			const n = 10 * minCapacity
			for i := 0; i < n; i++ {
				d.PushBottom(i)
			}
			if d.Len() != n {
				t.Fatalf("Len = %d, want %d", d.Len(), n)
			}
			for i := 0; i < n; i++ {
				it, ok := d.PopTop()
				if !ok || it.(int) != i {
					t.Fatalf("PopTop = %v,%v; want %d,true", it, ok, i)
				}
			}
		})
	}
}

func TestInterleavedPushPop(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			// Repeatedly push two, pop one from bottom — exercises wrapping
			// of the circular array.
			next := 0
			for i := 0; i < 1000; i++ {
				d.PushBottom(next)
				next++
				d.PushBottom(next)
				next++
				if _, ok := d.PopBottom(); !ok {
					t.Fatal("unexpected empty")
				}
			}
			if d.Len() != 1000 {
				t.Fatalf("Len = %d, want 1000", d.Len())
			}
		})
	}
}

// TestPopTopBatchSemantics locks in the batch-transfer contract shared by
// both implementations: at most half the items move (a lone item moves
// whole), oldest first, capped by max and len(dst), with the victim
// keeping the bottom half in order.
func TestPopTopBatchSemantics(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			for _, tc := range []struct {
				n, max, want int
			}{
				{0, 8, 0},  // empty
				{1, 8, 1},  // lone item moves whole
				{2, 8, 1},  // half of two
				{3, 8, 1},  // floor(n/2)
				{8, 8, 4},  // half
				{9, 8, 4},  // floor(9/2) = 4
				{32, 8, 8}, // capped by max
				{8, 1, 1},  // max 1 degenerates to a single steal
				{8, 0, 0},  // max 0 is a no-op
			} {
				d := mk()
				for i := 0; i < tc.n; i++ {
					d.PushBottom(i)
				}
				dst := make([]Item, 16)
				got := d.PopTopBatch(dst, tc.max)
				if got != tc.want {
					t.Fatalf("n=%d max=%d: transferred %d items, want %d", tc.n, tc.max, got, tc.want)
				}
				for i := 0; i < got; i++ {
					if dst[i].(int) != i {
						t.Fatalf("n=%d: dst[%d] = %v, want %d (oldest first)", tc.n, i, dst[i], i)
					}
				}
				if d.Len() != tc.n-got {
					t.Fatalf("n=%d: victim keeps %d items, want %d", tc.n, d.Len(), tc.n-got)
				}
				for i := tc.n - 1; i >= got; i-- {
					it, ok := d.PopBottom()
					if !ok || it.(int) != i {
						t.Fatalf("n=%d: victim PopBottom = %v,%v, want %d,true", tc.n, it, ok, i)
					}
				}
			}
		})
	}
}

// TestPopTopBatchDifferential drives both implementations through random
// mixed sequences including batch steals and demands identical results.
func TestPopTopBatchDifferential(t *testing.T) {
	fn := func(ops []uint8) bool {
		cl := NewChaseLev()
		lk := NewLocked()
		next := 0
		bufA := make([]Item, MaxBatch)
		bufB := make([]Item, MaxBatch)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				cl.PushBottom(next)
				lk.PushBottom(next)
				next++
			case 2:
				a, aok := cl.PopBottom()
				b, bok := lk.PopBottom()
				if aok != bok || (aok && a.(int) != b.(int)) {
					return false
				}
			case 3:
				max := int(op)/4%5 + 1
				na := cl.PopTopBatch(bufA, max)
				nb := lk.PopTopBatch(bufB, max)
				if na != nb {
					return false
				}
				for i := 0; i < na; i++ {
					if bufA[i].(int) != bufB[i].(int) {
						return false
					}
				}
			}
			if cl.Len() != lk.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBatchSteals hammers one owner (push/pop) against batch
// thieves and single thieves simultaneously and verifies exactly-once
// consumption — the invariant the claim protocol exists to protect. The
// owner keeps the deque short so the contested window (owner fast-path
// pop inside a claimed range) is hit constantly.
func TestConcurrentBatchSteals(t *testing.T) {
	const (
		nItems       = 30000
		nBatchers    = 3
		nSingles     = 2
		ownerPopBias = 2 // owner pops every ownerPopBias pushes, keeping the deque short
	)
	d := NewChaseLev()
	var (
		mu   sync.Mutex
		seen = make(map[int]int, nItems)
	)
	record := func(it Item) {
		mu.Lock()
		seen[it.(int)]++
		mu.Unlock()
	}
	var thieves sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < nBatchers; i++ {
		thieves.Add(1)
		go func() {
			defer thieves.Done()
			buf := make([]Item, MaxBatch)
			for {
				if n := d.PopTopBatch(buf, 8); n > 0 {
					for j := 0; j < n; j++ {
						record(buf[j])
					}
					continue
				}
				select {
				case <-done:
					for {
						n := d.PopTopBatch(buf, 8)
						if n == 0 {
							return
						}
						for j := 0; j < n; j++ {
							record(buf[j])
						}
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < nSingles; i++ {
		thieves.Add(1)
		go func() {
			defer thieves.Done()
			for {
				if it, ok := d.PopTop(); ok {
					record(it)
					continue
				}
				select {
				case <-done:
					for {
						it, ok := d.PopTop()
						if !ok {
							return
						}
						record(it)
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < nItems; i++ {
		d.PushBottom(i)
		if i%ownerPopBias == 0 {
			if it, ok := d.PopBottom(); ok {
				record(it)
			}
		}
	}
	for {
		it, ok := d.PopBottom()
		if !ok {
			break
		}
		record(it)
	}
	close(done)
	thieves.Wait()
	for {
		it, ok := d.PopTop()
		if !ok {
			break
		}
		record(it)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < nItems; i++ {
		if seen[i] != 1 {
			t.Fatalf("item %d consumed %d times, want exactly 1", i, seen[i])
		}
	}
}

// TestDifferentialSequential drives ChaseLev and Locked with the same
// random single-threaded operation sequence and demands identical results.
func TestDifferentialSequential(t *testing.T) {
	fn := func(ops []uint8) bool {
		cl := NewChaseLev()
		lk := NewLocked()
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				cl.PushBottom(next)
				lk.PushBottom(next)
				next++
			case 1:
				a, aok := cl.PopBottom()
				b, bok := lk.PopBottom()
				if aok != bok || (aok && a.(int) != b.(int)) {
					return false
				}
			case 2:
				a, aok := cl.PopTop()
				b, bok := lk.PopTop()
				if aok != bok || (aok && a.(int) != b.(int)) {
					return false
				}
			}
			if cl.Len() != lk.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentOwnerThieves hammers a ChaseLev deque with one owner and
// several thieves and verifies that every pushed item is consumed exactly
// once.
func TestConcurrentOwnerThieves(t *testing.T) {
	const (
		nItems   = 20000
		nThieves = 4
	)
	d := NewChaseLev()
	var (
		mu   sync.Mutex
		seen = make(map[int]int, nItems)
	)
	record := func(it Item) {
		mu.Lock()
		seen[it.(int)]++
		mu.Unlock()
	}
	var consumed sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < nThieves; i++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				if it, ok := d.PopTop(); ok {
					record(it)
					continue
				}
				select {
				case <-done:
					// Drain anything left after the owner stops.
					for {
						it, ok := d.PopTop()
						if !ok {
							return
						}
						record(it)
					}
				default:
				}
			}
		}()
	}
	// Owner: push all items, popping some back.
	for i := 0; i < nItems; i++ {
		d.PushBottom(i)
		if i%3 == 0 {
			if it, ok := d.PopBottom(); ok {
				record(it)
			}
		}
	}
	for {
		it, ok := d.PopBottom()
		if !ok {
			break
		}
		record(it)
	}
	close(done)
	consumed.Wait()
	// One final drain from the owner side in case a thief lost a race and
	// exited while an item remained.
	for {
		it, ok := d.PopTop()
		if !ok {
			break
		}
		record(it)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < nItems; i++ {
		if seen[i] != 1 {
			t.Fatalf("item %d consumed %d times, want exactly 1", i, seen[i])
		}
	}
}

// TestConcurrentLockedSafety runs the same shape of test against the Locked
// deque under the race detector.
func TestConcurrentLockedSafety(t *testing.T) {
	const nItems = 5000
	d := NewLocked()
	var total sync.WaitGroup
	var count atomic64
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		total.Add(1)
		go func() {
			defer total.Done()
			for {
				if _, ok := d.PopTop(); ok {
					count.inc()
					continue
				}
				select {
				case <-done:
					for {
						if _, ok := d.PopTop(); !ok {
							return
						}
						count.inc()
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < nItems; i++ {
		d.PushBottom(i)
	}
	for {
		if _, ok := d.PopBottom(); !ok {
			break
		}
		count.inc()
	}
	close(done)
	total.Wait()
	if got := count.load(); got != nItems {
		t.Fatalf("consumed %d items, want %d", got, nItems)
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) inc() { a.mu.Lock(); a.n++; a.mu.Unlock() }
func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

func BenchmarkPushPopBottomChaseLev(b *testing.B) {
	d := NewChaseLev()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkPushPopBottomLocked(b *testing.B) {
	d := NewLocked()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkStealChaseLev(b *testing.B) {
	d := NewChaseLev()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PopTop()
	}
}
