package deque

import (
	goruntime "runtime"
	"sync/atomic"
)

// ChaseLev is a lock-free work-stealing deque backed by a growable circular
// array, after Chase & Lev (SPAA 2005). The owner operates on bottom; any
// number of thieves race on top with a compare-and-swap. The array grows
// geometrically and is replaced atomically; stale readers may read from an
// old array, which is safe because entries are immutable between publication
// (PushBottom's store) and consumption (the CAS on top).
//
// Beyond the classic single-item PopTop, thieves may take a batch of up to
// half the items with PopTopBatch, paying one committing CAS on top for
// the whole transfer (the steal-half amortization of Rito & Paulino,
// arXiv:1810.10615). Batch steals are coordinated with the owner's
// PopBottom fast path through the claim word; see PopTopBatch for the
// protocol and its correctness argument.
//
// The zero value is not usable; construct with NewChaseLev.
type ChaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64
	// claim is the in-flight batch-steal advertisement: zero when no batch
	// steal is running, otherwise the packed half-open index range
	// (start<<claimShift | length) a thief is about to commit. At most one
	// batch steal is in flight per deque (thieves serialize on the CAS from
	// zero); the owner consults it before a fast-path (CAS-free) PopBottom
	// so owner and batch thief can never both take the same item.
	claim atomic.Int64
	array atomic.Pointer[clArray]
}

const (
	// claimShift packs the claimed range as start<<claimShift|len.
	claimShift = 8
	// MaxBatch is the largest item count one PopTopBatch can transfer,
	// bounded so the claimed length always fits in claimShift bits.
	MaxBatch = 64
)

// clArray is a fixed-capacity circular buffer. size is always a power of
// two so index wrapping is a mask.
type clArray struct {
	size  int64
	mask  int64
	items []atomic.Value // holds Item
}

func newCLArray(size int64) *clArray {
	return &clArray{size: size, mask: size - 1, items: make([]atomic.Value, size)}
}

func (a *clArray) get(i int64) Item     { return a.items[i&a.mask].Load() }
func (a *clArray) put(i int64, it Item) { a.items[i&a.mask].Store(it) }

// grow returns a new array of twice the size holding elements [top, bottom).
func (a *clArray) grow(top, bottom int64) *clArray {
	na := newCLArray(a.size * 2)
	for i := top; i < bottom; i++ {
		na.put(i, a.get(i))
	}
	return na
}

// minCapacity is the initial circular-array capacity; small because
// schedulers allocate many deques (up to U+1 per worker).
const minCapacity = 8

// NewChaseLev returns an empty lock-free deque.
func NewChaseLev() *ChaseLev {
	d := &ChaseLev{}
	d.array.Store(newCLArray(minCapacity))
	return d
}

// PushBottom adds an item at the owner end. Only the owner may call it.
func (d *ChaseLev) PushBottom(it Item) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t >= a.size {
		a = a.grow(t, b)
		d.array.Store(a)
	}
	a.put(b, it)
	// Publish the item before publishing the new bottom. atomic.Store has
	// release semantics under the Go memory model, so thieves that observe
	// the new bottom also observe the item.
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the item at the owner end. Only the owner
// may call it. On the last-element race with a thief, the CAS on top
// arbitrates.
//
// The claim check makes the CAS-free fast path (more than one element
// left) safe against an in-flight batch steal: if the pending batch
// covers our index, the owner waits out the thief's short claim window —
// a bounded copy loop plus one CAS — and re-decides against the top the
// commit or abort leaves behind. Reading claim BEFORE top is load-bearing:
// a thief clears its claim only after the committing CAS on top, so an
// owner that reads claim == 0 either ran before the claim existed (and
// then the thief's post-claim re-read of bottom excludes our item from
// the batch) or after the commit (and then the top read below already
// reflects the stolen range).
func (d *ChaseLev) PopBottom() (Item, bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	for {
		if cl := d.claim.Load(); cl != 0 {
			s, k := cl>>claimShift, cl&(1<<claimShift-1)
			if b >= s && b < s+k {
				// A batch thief is mid-claim over our item; wait for its
				// commit or abort rather than double-taking.
				goruntime.Gosched()
				continue
			}
		}
		t := d.top.Load()
		if b < t {
			// Deque was empty; restore bottom.
			d.bottom.Store(t)
			return nil, false
		}
		it := a.get(b)
		if b > t {
			// More than one element; no race possible on this one.
			return it, true
		}
		// Exactly one element: race thieves via CAS on top.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return nil, false
		}
		return it, true
	}
}

// PopTopBatch removes up to max items from the thief end into dst with a
// single committing CAS on top, amortizing synchronization over the whole
// transfer. At most half the observed items are taken (floor(n/2), but a
// lone item is taken whole, matching PopTop); the victim keeps the bottom
// half. Items land in dst in deque order, oldest (topmost) first. Returns
// the number transferred; 0 means empty, a lost race, or another batch
// steal in flight (the caller retries elsewhere, like a failed PopTop).
//
// Protocol: the classic Chase–Lev CAS on top can hand a thief only the
// single index top, because the owner's PopBottom takes any index above
// top WITHOUT synchronization — a multi-index claim would race those
// CAS-free takes. So a batch thief first advertises its intended range in
// the claim word (one CAS from zero, which also serializes batch thieves
// per deque), re-reads bottom so the range excludes every item an
// unaware owner pop may already have taken, copies the items out, and
// only then commits with the CAS on top. Owners that pop inside the
// advertised range while the claim is live wait it out (see PopBottom);
// owner pops that never saw the claim are excluded by the post-claim
// bottom re-read, because their bottom store precedes their claim read.
// Cells in the committed range cannot have been recycled meanwhile: the
// owner reuses a cell only after bottom climbs past it again, which
// requires a push writing that cell, and pops below the re-read bottom
// wait on the claim.
func (d *ChaseLev) PopTopBatch(dst []Item, max int) int {
	if max > len(dst) {
		max = len(dst)
	}
	if max > MaxBatch {
		max = MaxBatch
	}
	if max <= 0 {
		return 0
	}
	t := d.top.Load()
	b := d.bottom.Load()
	n := b - t
	if n <= 0 {
		return 0
	}
	take := n / 2
	if take > int64(max) {
		take = int64(max)
	}
	if n == 1 || take <= 1 || max == 1 {
		// Single-item transfer: the plain CAS on top is claim-free safe.
		it, ok := d.PopTop()
		if !ok {
			return 0
		}
		dst[0] = it
		return 1
	}
	if !d.claim.CompareAndSwap(0, t<<claimShift|take) {
		// Another batch steal is mid-claim on this deque; take one item
		// instead of spinning on the claim word.
		it, ok := d.PopTop()
		if !ok {
			return 0
		}
		dst[0] = it
		return 1
	}
	// Re-validate bottom now that the claim is visible: any owner pop that
	// did not (and will not) see the claim stored its bottom before our
	// claim CAS, so shrinking to half of the re-read length keeps the
	// committed range strictly below every such pop.
	if b2 := d.bottom.Load(); b2-t < n {
		n = b2 - t
		if take = n / 2; take > int64(max) {
			take = int64(max)
		}
		if n == 1 {
			take = 1
		}
	}
	if take < 1 {
		d.claim.Store(0)
		return 0
	}
	a := d.array.Load()
	for i := int64(0); i < take; i++ {
		dst[i] = a.get(t + i)
	}
	if !d.top.CompareAndSwap(t, t+take) {
		// Lost to a single thief or the owner's last-item CAS.
		d.claim.Store(0)
		return 0
	}
	d.claim.Store(0)
	return int(take)
}

// PopTop removes and returns the item at the thief end. Any worker may call
// it. A lost race returns ok=false even if the deque is non-empty ("failed
// steal"); callers are expected to retry elsewhere, which is exactly the
// behaviour work-stealing analyses assume.
func (d *ChaseLev) PopTop() (Item, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.array.Load()
	it := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return it, true
}

// Empty reports whether the deque was observed empty.
func (d *ChaseLev) Empty() bool { return d.Len() <= 0 }

// Len returns the observed number of items. The value may be stale and,
// transiently during a concurrent PopBottom, negative is clamped to zero.
func (d *ChaseLev) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

var _ Deque = (*ChaseLev)(nil)
