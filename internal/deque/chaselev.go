package deque

import (
	"sync/atomic"
)

// ChaseLev is a lock-free work-stealing deque backed by a growable circular
// array, after Chase & Lev (SPAA 2005). The owner operates on bottom; any
// number of thieves race on top with a compare-and-swap. The array grows
// geometrically and is replaced atomically; stale readers may read from an
// old array, which is safe because entries are immutable between publication
// (PushBottom's store) and consumption (the CAS on top).
//
// The zero value is not usable; construct with NewChaseLev.
type ChaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64
	array  atomic.Pointer[clArray]
}

// clArray is a fixed-capacity circular buffer. size is always a power of
// two so index wrapping is a mask.
type clArray struct {
	size  int64
	mask  int64
	items []atomic.Value // holds Item
}

func newCLArray(size int64) *clArray {
	return &clArray{size: size, mask: size - 1, items: make([]atomic.Value, size)}
}

func (a *clArray) get(i int64) Item     { return a.items[i&a.mask].Load() }
func (a *clArray) put(i int64, it Item) { a.items[i&a.mask].Store(it) }

// grow returns a new array of twice the size holding elements [top, bottom).
func (a *clArray) grow(top, bottom int64) *clArray {
	na := newCLArray(a.size * 2)
	for i := top; i < bottom; i++ {
		na.put(i, a.get(i))
	}
	return na
}

// minCapacity is the initial circular-array capacity; small because
// schedulers allocate many deques (up to U+1 per worker).
const minCapacity = 8

// NewChaseLev returns an empty lock-free deque.
func NewChaseLev() *ChaseLev {
	d := &ChaseLev{}
	d.array.Store(newCLArray(minCapacity))
	return d
}

// PushBottom adds an item at the owner end. Only the owner may call it.
func (d *ChaseLev) PushBottom(it Item) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t >= a.size {
		a = a.grow(t, b)
		d.array.Store(a)
	}
	a.put(b, it)
	// Publish the item before publishing the new bottom. atomic.Store has
	// release semantics under the Go memory model, so thieves that observe
	// the new bottom also observe the item.
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the item at the owner end. Only the owner
// may call it. On the last-element race with a thief, the CAS on top
// arbitrates.
func (d *ChaseLev) PopBottom() (Item, bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t {
		// Deque was empty; restore bottom.
		d.bottom.Store(t)
		return nil, false
	}
	it := a.get(b)
	if b > t {
		// More than one element; no race possible on this one.
		return it, true
	}
	// Exactly one element: race thieves via CAS on top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return nil, false
	}
	return it, true
}

// PopTop removes and returns the item at the thief end. Any worker may call
// it. A lost race returns ok=false even if the deque is non-empty ("failed
// steal"); callers are expected to retry elsewhere, which is exactly the
// behaviour work-stealing analyses assume.
func (d *ChaseLev) PopTop() (Item, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.array.Load()
	it := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return it, true
}

// Empty reports whether the deque was observed empty.
func (d *ChaseLev) Empty() bool { return d.Len() <= 0 }

// Len returns the observed number of items. The value may be stale and,
// transiently during a concurrent PopBottom, negative is clamped to zero.
func (d *ChaseLev) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

var _ Deque = (*ChaseLev)(nil)
