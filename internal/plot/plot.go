// Package plot renders minimal SVG line charts with the standard library
// only. It exists to regenerate the paper's Figure 11 as actual plots
// (speedup vs. processors, one curve per scheduler) rather than tables;
// cmd/lhws-bench writes them with -svg.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a single line chart. Zero-valued dimensions default to 640×440.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int
	Height int
}

// palette holds the series colors (colorblind-safe hues).
var palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9"}

const (
	marginLeft   = 64.0
	marginRight  = 24.0
	marginTop    = 40.0
	marginBottom = 52.0
)

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := float64(c.Width), float64(c.Height)
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 440
	}
	plotW := w - marginLeft - marginRight
	plotH := h - marginTop - marginBottom

	xMin, xMax, yMin, yMax := c.bounds()
	xTicks := niceTicks(xMin, xMax, 7)
	yTicks := niceTicks(yMin, yMax, 6)
	// Expand the range to the tick extremes so curves stay inside.
	if len(xTicks) > 0 {
		xMin = math.Min(xMin, xTicks[0])
		xMax = math.Max(xMax, xTicks[len(xTicks)-1])
	}
	if len(yTicks) > 0 {
		yMin = math.Min(yMin, yTicks[0])
		yMax = math.Max(yMax, yTicks[len(yTicks)-1])
	}
	sx := func(x float64) float64 {
		if xMax == xMin {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-xMin)/(xMax-xMin)*plotW
	}
	sy := func(y float64) float64 {
		if yMax == yMin {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-yMin)/(yMax-yMin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="24" font-family="sans-serif" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`+"\n", w/2, escape(c.Title))

	// Gridlines and ticks.
	for _, t := range yTicks {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#e0e0e0"/>`+"\n", marginLeft, y, w-marginRight, y)
		fmt.Fprintf(&b, `<text x="%g" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n", marginLeft-6, y+4, formatTick(t))
	}
	for _, t := range xTicks {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%g" x2="%.1f" y2="%g" stroke="#e0e0e0"/>`+"\n", x, marginTop, x, h-marginBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n", x, h-marginBottom+16, formatTick(t))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginLeft, marginTop, marginLeft, h-marginBottom)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n", marginLeft+plotW/2, h-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n", marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", sx(s.X[i]), sy(s.Y[i]), color)
		}
		// Legend entry.
		lx := marginLeft + 12
		ly := marginTop + 10 + float64(si)*18
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n", lx, ly, lx+22, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n", lx+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// bounds returns the data extents across all series, defaulting the minima
// to zero (speedup plots anchor at the origin, like the paper's).
func (c *Chart) bounds() (xMin, xMax, yMin, yMax float64) {
	xMin, yMin = 0, 0
	xMax, yMax = 1, 1
	for _, s := range c.Series {
		for i := range s.X {
			xMax = math.Max(xMax, s.X[i])
			yMax = math.Max(yMax, s.Y[i])
			xMin = math.Min(xMin, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
		}
	}
	return
}

// niceTicks returns ~n human-friendly tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	rawStep := span / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch norm := rawStep / mag; {
	case norm <= 1:
		step = mag
	case norm <= 2:
		step = 2 * mag
	case norm <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Floor(lo/step) * step
	var ticks []float64
	for t := start; t <= hi+step/2; t += step {
		ticks = append(ticks, t)
	}
	return ticks
}

func formatTick(t float64) string {
	if t == math.Trunc(t) && math.Abs(t) < 1e7 {
		return fmt.Sprintf("%d", int64(t))
	}
	return fmt.Sprintf("%.2g", t)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
