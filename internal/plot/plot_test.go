package plot

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "δ = 500ms",
		XLabel: "proc",
		YLabel: "speedup",
		Series: []Series{
			{Name: "LHWS", X: []float64{1, 2, 4, 8}, Y: []float64{4, 8, 16, 33}},
			{Name: "WS", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 4, 8}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	svg := sampleChart().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"LHWS", "WS", "proc", "speedup", "δ = 500ms",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 8 {
		t.Errorf("markers = %d, want 8", got)
	}
}

// TestPointsInsideViewport parses every plotted coordinate and checks it
// lies within the chart dimensions.
func TestPointsInsideViewport(t *testing.T) {
	c := sampleChart()
	c.Width, c.Height = 500, 400
	svg := c.SVG()
	re := regexp.MustCompile(`c[xy]="([0-9.]+)"`)
	for _, m := range re.FindAllStringSubmatch(svg, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 500 {
			t.Fatalf("coordinate %v outside viewport", v)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	svg := (&Chart{Series: []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}}}).SVG()
	if !strings.Contains(svg, `width="640" height="440"`) {
		t.Error("default dimensions not applied")
	}
}

func TestEscaping(t *testing.T) {
	c := &Chart{Title: `a<b>&"c"`, Series: []Series{{Name: "x<y", X: []float64{1}, Y: []float64{1}}}}
	svg := c.SVG()
	if strings.Contains(svg, "a<b>") || strings.Contains(svg, "x<y") {
		t.Error("unescaped markup in output")
	}
	if !strings.Contains(svg, "a&lt;b&gt;") {
		t.Error("escape missing")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 30, 7)
	if len(ticks) < 4 {
		t.Fatalf("too few ticks: %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] > 0 || ticks[len(ticks)-1] < 30 {
		t.Fatalf("ticks %v do not cover [0,30]", ticks)
	}
}

func TestNiceTicksDegenerate(t *testing.T) {
	if got := niceTicks(5, 5, 5); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate ticks = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(30) != "30" {
		t.Errorf("formatTick(30) = %q", formatTick(30))
	}
	if formatTick(0.25) != "0.25" {
		t.Errorf("formatTick(0.25) = %q", formatTick(0.25))
	}
}

func TestManySeriesCycleColors(t *testing.T) {
	c := &Chart{}
	for i := 0; i < 8; i++ {
		c.Series = append(c.Series, Series{Name: fmt.Sprintf("s%d", i), X: []float64{0, 1}, Y: []float64{float64(i), float64(i + 1)}})
	}
	svg := c.SVG()
	if got := strings.Count(svg, "<polyline"); got != 8 {
		t.Errorf("polylines = %d, want 8", got)
	}
}
