// Package admit is the intake valve of an overloaded lhws server: a
// token/credit admission controller that decides, per request, between
// admitting at full parallelism, degrading (the request runs, but sheds
// its inner parallelism), and rejecting fast with a typed error.
//
// The paper's server scenario (§5) assumes every request eventually gets
// workers; past saturation that assumption fails in the worst way —
// steal-first scheduling spreads all P workers across every queued
// request, so all of them miss their targets together. The Gast et
// al. work-stealing-with-latency analyses make the production metric
// explicit: goodput, the fraction of requests finishing under their
// target T. Defending goodput under overload means refusing or shrinking
// work at the door, not queueing it: a fast ErrOverload costs the client
// a retry; an accepted-then-blown request costs P workers and still
// fails.
//
// The controller composes three mechanisms:
//
//   - Admit: a non-suspending decision sampling the runtime's load
//     signal (runtime.Ctx.LoadSignal) and the controller's in-flight
//     credit count. Thresholds map saturation to Admitted / Degraded /
//     Rejected.
//
//   - AcquireAccept: backpressure for the accept loop. Instead of
//     accepting connections it will immediately reject, the server
//     suspends its acceptor task while in-flight credits are exhausted —
//     connections wait in the kernel backlog, where they cost nothing.
//     It implements lhws/internal/io's Gate, so a Listener consults it
//     inside Accept.
//
//   - Drain: graceful shutdown. Stop intake (gate waiters and new
//     Admits fail with ErrDraining), let in-flight requests finish
//     under a grace deadline, then cancel stragglers through the cancel
//     functions their tickets were bound to, and report what happened.
package admit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lhws/internal/runtime"
)

// Typed intake errors. Both are rejected-fast outcomes: the request did
// not run at all.
var (
	// ErrOverload reports that admission was refused because the runtime
	// is saturated past Config.RejectAt or out of in-flight credits.
	ErrOverload = errors.New("admit: overloaded")
	// ErrDraining reports that admission was refused because the
	// controller is draining for shutdown.
	ErrDraining = errors.New("admit: draining")
)

// Policy is an admission decision.
type Policy int8

const (
	// Admitted runs the request at full parallelism.
	Admitted Policy = iota
	// Degraded runs the request with its inner parallelism shed: the
	// handler should consult Ticket.Degraded / Ticket.Parallelism and
	// run serial-ish at lower cost.
	Degraded
	// Rejected refuses the request without running it.
	Rejected
)

func (p Policy) String() string {
	switch p {
	case Admitted:
		return "admitted"
	case Degraded:
		return "degraded"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config configures a Controller.
type Config struct {
	// MaxInflight caps concurrently admitted requests (the credit pool).
	// At the cap, Admit rejects and AcquireAccept suspends. 0 means no
	// cap.
	MaxInflight int
	// DegradeAt is the saturation (runtime.Load.Saturation: ready work
	// per worker) at or above which admitted requests are Degraded.
	// 0 disables degradation.
	DegradeAt float64
	// RejectAt is the saturation at or above which requests are
	// Rejected with ErrOverload. 0 disables saturation-based rejection
	// (the MaxInflight cap still rejects). RejectAt should exceed
	// DegradeAt, giving the controller a band where it sheds parallelism
	// before it sheds requests.
	RejectAt float64
}

// Controller is a token/credit admission controller for one server. It
// is safe for concurrent use by any number of tasks.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	draining bool
	live     map[*Ticket]struct{} // admitted tickets, for straggler cancel
	waiters  []*gateWaiter        // suspended AcquireAccept callers, FIFO
	// drainDone counts requests that completed while draining.
	drainDone int
}

// New returns a Controller with the given configuration.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg, live: make(map[*Ticket]struct{})}
}

// Ticket is one admitted request's credit. Exactly one Done must
// eventually be made per admitted ticket (defer it in the handler; it is
// idempotent and runs fine during a cancellation unwind). Bind attaches
// the cancel function of the request's scope so Drain can cancel
// stragglers.
type Ticket struct {
	ctl    *Controller
	policy Policy

	mu     sync.Mutex
	done   bool
	cancel func()
}

// Policy returns the admission decision this ticket was issued under.
func (t *Ticket) Policy() Policy { return t.policy }

// Degraded reports whether the request should shed its inner
// parallelism.
func (t *Ticket) Degraded() bool { return t.policy == Degraded }

// Parallelism maps the request's natural fan-out n to the admitted one:
// n when Admitted, 1 when Degraded. Handlers that fan out with For/Spawn
// pass their width through this.
func (t *Ticket) Parallelism(n int) int {
	if t.policy == Degraded && n > 1 {
		return 1
	}
	return n
}

// Bind attaches the cancel function of the request's cancellation scope
// (WithCancel/WithDeadline/WithTarget) so a drain past its grace period
// can cancel the straggling request. Calling Bind after Done is a no-op.
func (t *Ticket) Bind(cancel func()) {
	t.mu.Lock()
	if !t.done {
		t.cancel = cancel
	}
	t.mu.Unlock()
}

// Done releases the ticket's credit, waking one suspended acceptor if
// the credit pool was exhausted. Idempotent.
func (t *Ticket) Done() {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.cancel = nil
	t.mu.Unlock()
	t.ctl.release(t)
}

// shed runs the bound cancel function, if any (drain stragglers).
func (t *Ticket) shed() bool {
	t.mu.Lock()
	cancel := t.cancel
	t.cancel = nil
	t.mu.Unlock()
	if cancel == nil {
		return false
	}
	cancel()
	return true
}

// Admit decides intake for one request. It never suspends: the decision
// is a load-signal sample plus a credit check. On Rejected the returned
// error is ErrOverload (or ErrDraining during shutdown), wrapped with
// the saturation that triggered it, and no ticket is issued.
func (a *Controller) Admit(c *runtime.Ctx) (*Ticket, error) {
	ld := c.LoadSignal()
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	if a.cfg.MaxInflight > 0 && a.inflight >= a.cfg.MaxInflight {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %d requests in flight (cap %d)",
			ErrOverload, a.inflight, a.cfg.MaxInflight)
	}
	if a.cfg.RejectAt > 0 && ld.Saturation >= a.cfg.RejectAt {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: saturation %.2f >= %.2f",
			ErrOverload, ld.Saturation, a.cfg.RejectAt)
	}
	policy := Admitted
	if a.cfg.DegradeAt > 0 && ld.Saturation >= a.cfg.DegradeAt {
		policy = Degraded
	}
	t := &Ticket{ctl: a, policy: policy}
	a.inflight++
	a.live[t] = struct{}{}
	a.mu.Unlock()
	return t, nil
}

// Inflight reports the number of admitted, not-yet-Done requests.
func (a *Controller) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// gateWaiter is one suspended AcquireAccept caller. complete is the
// idempotent completion callback of its AwaitExternal suspension;
// released marks that the controller handed it a credit wake (so a
// concurrent cancel does not double-remove).
type gateWaiter struct {
	complete func(struct{}, error)
}

// AcquireAccept is the accept-loop backpressure point: it returns nil
// immediately while credits remain, suspends the calling task while the
// pool is exhausted (the wake order is FIFO), and fails with ErrDraining
// once the controller is draining. It implements the Gate consulted by
// lhws/internal/io Listeners, so a saturated server stops pulling
// connections out of the kernel backlog instead of accepting and then
// rejecting them.
func (a *Controller) AcquireAccept(c *runtime.Ctx) error {
	for {
		w := &gateWaiter{}
		registered := false
		_, err := runtime.AwaitExternal[struct{}](c, "admit-gate",
			func(complete func(struct{}, error)) func(error) {
				a.mu.Lock()
				switch {
				case a.draining:
					a.mu.Unlock()
					complete(struct{}{}, ErrDraining)
				case a.cfg.MaxInflight <= 0 || a.inflight < a.cfg.MaxInflight:
					a.mu.Unlock()
					complete(struct{}{}, nil)
				default:
					w.complete = complete
					a.waiters = append(a.waiters, w)
					registered = true
					a.mu.Unlock()
				}
				return func(cause error) {
					a.dropWaiter(w)
					// The arm/complete contract requires exactly one
					// eventual completion even after a cancel (it releases
					// the completer's waiter reference); the unwinding
					// task never reads it.
					complete(struct{}{}, cause)
				}
			})
		if err != nil {
			return err
		}
		if !registered {
			// Decided without suspending: the fast path.
			return nil
		}
		// Woken by a released credit. The credit is not reserved for this
		// waiter — re-check, first-come-first-served with fresh arrivals.
	}
}

// dropWaiter removes a canceled waiter from the queue (its task is
// unwinding; waking it would be pointless). If the waiter is gone from
// the queue, a release already popped it and its credit wake is in
// flight at a task that will not use it — forward the wake to the next
// waiter so the free credit is not lost.
func (a *Controller) dropWaiter(w *gateWaiter) {
	a.mu.Lock()
	found := false
	for i, x := range a.waiters {
		if x == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			found = true
			break
		}
	}
	var next *gateWaiter
	if !found && w.complete != nil && !a.draining && len(a.waiters) > 0 &&
		(a.cfg.MaxInflight <= 0 || a.inflight < a.cfg.MaxInflight) {
		next = a.waiters[0]
		a.waiters = append(a.waiters[:0], a.waiters[1:]...)
	}
	a.mu.Unlock()
	if next != nil {
		next.complete(struct{}{}, nil)
	}
}

// release returns a ticket's credit and wakes the oldest gate waiter.
func (a *Controller) release(t *Ticket) {
	a.mu.Lock()
	a.inflight--
	delete(a.live, t)
	if a.draining {
		a.drainDone++
	}
	var w *gateWaiter
	if len(a.waiters) > 0 {
		w = a.waiters[0]
		a.waiters = append(a.waiters[:0], a.waiters[1:]...)
	}
	a.mu.Unlock()
	if w != nil {
		w.complete(struct{}{}, nil)
	}
}

// DrainReport describes a completed drain.
type DrainReport struct {
	// Completed is the number of in-flight requests that finished
	// (ticket Done) during the drain.
	Completed int
	// Canceled is the number of stragglers shed through their bound
	// cancel functions when the grace period expired.
	Canceled int
	// Remaining is the number of requests still in flight when Drain
	// returned — nonzero only if stragglers ignored cancellation for a
	// further grace period.
	Remaining int
	// Waited is how long the drain took.
	Waited time.Duration
}

// Drain gracefully shuts the controller down: intake stops (Admit and
// AcquireAccept fail with ErrDraining, suspended acceptors are woken
// with it), in-flight requests get grace to finish, and stragglers are
// then canceled through their Bind-ed cancel functions — their tasks
// unwind with the scope's typed cancellation error. Drain suspends
// rather than blocks, so it runs as an ordinary task. It returns when
// the controller is idle or shortly after canceling stragglers.
func (a *Controller) Drain(c *runtime.Ctx, grace time.Duration) *DrainReport {
	start := time.Now()
	a.mu.Lock()
	a.draining = true
	a.drainDone = 0
	waiters := a.waiters
	a.waiters = nil
	a.mu.Unlock()
	for _, w := range waiters {
		w.complete(struct{}{}, ErrDraining)
	}

	deadline := start.Add(grace)
	a.waitIdle(c, deadline)

	// Grace expired: shed the stragglers, then give their unwinds a
	// bounded second wait so Done-on-unwind can land.
	canceled := 0
	a.mu.Lock()
	stragglers := make([]*Ticket, 0, len(a.live))
	for t := range a.live {
		stragglers = append(stragglers, t)
	}
	a.mu.Unlock()
	for _, t := range stragglers {
		if t.shed() {
			canceled++
		}
	}
	if canceled > 0 {
		a.waitIdle(c, time.Now().Add(grace))
	}

	a.mu.Lock()
	rep := &DrainReport{
		Completed: a.drainDone - canceled,
		Canceled:  canceled,
		Remaining: a.inflight,
		Waited:    time.Since(start),
	}
	if rep.Completed < 0 {
		rep.Completed = 0
	}
	a.mu.Unlock()
	return rep
}

// waitIdle suspends (poll + Latency) until the controller has no
// in-flight requests or the deadline passes. Polling keeps the drain
// path trivially correct — shutdown is not a hot path.
func (a *Controller) waitIdle(c *runtime.Ctx, deadline time.Time) {
	const step = 2 * time.Millisecond
	for {
		a.mu.Lock()
		idle := a.inflight == 0
		a.mu.Unlock()
		if idle || !time.Now().Before(deadline) {
			return
		}
		d := time.Until(deadline)
		if d > step {
			d = step
		}
		c.Latency(d)
	}
}
