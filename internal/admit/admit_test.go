package admit

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lhws/internal/runtime"
)

func run(t *testing.T, workers int, f func(*runtime.Ctx)) *runtime.Stats {
	t.Helper()
	st, err := runtime.Run(runtime.Config{Workers: workers, Deadline: 30 * time.Second}, f)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

// TestInflightCap checks the credit pool: at MaxInflight, Admit rejects
// with ErrOverload, and Done frees a credit.
func TestInflightCap(t *testing.T) {
	run(t, 1, func(c *runtime.Ctx) {
		a := New(Config{MaxInflight: 2})
		t1, err := a.Admit(c)
		if err != nil {
			t.Fatalf("first Admit: %v", err)
		}
		if _, err := a.Admit(c); err != nil {
			t.Fatalf("second Admit: %v", err)
		}
		if _, err := a.Admit(c); !errors.Is(err, ErrOverload) {
			t.Fatalf("third Admit error = %v, want ErrOverload", err)
		}
		t1.Done()
		t1.Done() // idempotent
		if a.Inflight() != 1 {
			t.Fatalf("Inflight = %d after one Done, want 1", a.Inflight())
		}
		if _, err := a.Admit(c); err != nil {
			t.Fatalf("Admit after Done: %v", err)
		}
	})
}

// TestSaturationPolicies pins the saturation thresholds using the
// cooperative scheduler: with one worker, tasks spawned by the running
// task sit queued until it yields, so the load sample is deterministic.
func TestSaturationPolicies(t *testing.T) {
	run(t, 1, func(c *runtime.Ctx) {
		futs := make([]*runtime.Future, 0, 8)
		for i := 0; i < 8; i++ {
			futs = append(futs, c.Spawn(func(*runtime.Ctx) {}))
		}
		// Saturation is now 8 ready tasks / 1 worker = 8 (+ running).
		deg := New(Config{DegradeAt: 4, RejectAt: 100})
		tk, err := deg.Admit(c)
		if err != nil {
			t.Fatalf("Admit under degrade config: %v", err)
		}
		if !tk.Degraded() {
			t.Errorf("policy = %v, want Degraded at saturation ~8", tk.Policy())
		}
		if got := tk.Parallelism(16); got != 1 {
			t.Errorf("degraded Parallelism(16) = %d, want 1", got)
		}
		tk.Done()

		rej := New(Config{DegradeAt: 2, RejectAt: 4})
		if _, err := rej.Admit(c); !errors.Is(err, ErrOverload) {
			t.Errorf("Admit error = %v, want ErrOverload at saturation ~8", err)
		}

		ok := New(Config{DegradeAt: 100, RejectAt: 200})
		tk2, err := ok.Admit(c)
		if err != nil {
			t.Fatalf("Admit under loose config: %v", err)
		}
		if tk2.Policy() != Admitted {
			t.Errorf("policy = %v, want Admitted", tk2.Policy())
		}
		if got := tk2.Parallelism(16); got != 16 {
			t.Errorf("admitted Parallelism(16) = %d, want 16", got)
		}
		tk2.Done()
		for _, f := range futs {
			f.Await(c)
		}
	})
}

// TestAcquireAcceptBackpressure checks that an exhausted credit pool
// suspends the acceptor and a Done wakes it FIFO.
func TestAcquireAcceptBackpressure(t *testing.T) {
	run(t, 2, func(c *runtime.Ctx) {
		a := New(Config{MaxInflight: 1})
		tk, err := a.Admit(c)
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		var acquired atomic.Bool
		acceptor := c.Spawn(func(cc *runtime.Ctx) {
			if err := a.AcquireAccept(cc); err != nil {
				t.Errorf("AcquireAccept: %v", err)
			}
			acquired.Store(true)
		})
		c.Latency(20 * time.Millisecond)
		if acquired.Load() {
			t.Fatal("AcquireAccept returned while the pool was exhausted")
		}
		tk.Done()
		acceptor.Await(c)
		if !acquired.Load() {
			t.Fatal("AcquireAccept never woke after Done")
		}
	})
}

// TestDrainRejectsAndWakes checks that draining fails new intake and
// wakes suspended acceptors with ErrDraining.
func TestDrainRejectsAndWakes(t *testing.T) {
	run(t, 2, func(c *runtime.Ctx) {
		a := New(Config{MaxInflight: 1})
		tk, err := a.Admit(c)
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		var gateErr error
		acceptor := c.Spawn(func(cc *runtime.Ctx) {
			gateErr = a.AcquireAccept(cc)
		})
		c.Latency(10 * time.Millisecond) // let the acceptor suspend
		done := c.Spawn(func(cc *runtime.Ctx) {
			tk.Done() // completes "in flight" work during the drain
		})
		rep := a.Drain(c, time.Second)
		acceptor.Await(c)
		done.Await(c)
		if !errors.Is(gateErr, ErrDraining) {
			t.Errorf("gate error = %v, want ErrDraining", gateErr)
		}
		if _, err := a.Admit(c); !errors.Is(err, ErrDraining) {
			t.Errorf("Admit error = %v, want ErrDraining", err)
		}
		if rep.Remaining != 0 {
			t.Errorf("Remaining = %d, want 0", rep.Remaining)
		}
		if rep.Canceled != 0 {
			t.Errorf("Canceled = %d, want 0 (request finished in grace)", rep.Canceled)
		}
	})
}

// TestDrainCancelsStragglers checks the straggler path: a request that
// outlives the grace period is canceled through its bound scope cancel
// and unwinds with the scope's typed error.
func TestDrainCancelsStragglers(t *testing.T) {
	run(t, 2, func(c *runtime.Ctx) {
		a := New(Config{MaxInflight: 4})
		tk, err := a.Admit(c)
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		rc, cancel := c.WithCancel()
		tk.Bind(cancel)
		req := rc.Spawn(func(cc *runtime.Ctx) {
			defer tk.Done()
			cc.Latency(time.Hour) // straggler: never finishes on its own
		})
		c.Latency(5 * time.Millisecond) // let the straggler suspend
		rep := a.Drain(c, 30*time.Millisecond)
		if rep.Canceled != 1 {
			t.Errorf("Canceled = %d, want 1", rep.Canceled)
		}
		if err := req.AwaitErr(c); !errors.Is(err, runtime.ErrCanceled) {
			t.Errorf("straggler error = %v, want ErrCanceled", err)
		}
		if rep.Remaining != 0 {
			t.Errorf("Remaining = %d, want 0 (Done ran during unwind)", rep.Remaining)
		}
		if a.Inflight() != 0 {
			t.Errorf("Inflight = %d after drain, want 0", a.Inflight())
		}
	})
}

// TestCanceledGateWaiterForwardsCredit checks the handoff race fix: when
// a credit wake lands on a waiter whose task is being canceled, the
// credit must pass to the next waiter instead of being lost.
func TestCanceledGateWaiterForwardsCredit(t *testing.T) {
	run(t, 2, func(c *runtime.Ctx) {
		a := New(Config{MaxInflight: 1})
		tk, err := a.Admit(c)
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		wc, cancelFirst := c.WithCancel()
		first := wc.Spawn(func(cc *runtime.Ctx) {
			_ = a.AcquireAccept(cc)
		})
		c.Latency(5 * time.Millisecond) // first waiter parked
		var second atomic.Bool
		sec := c.Spawn(func(cc *runtime.Ctx) {
			if err := a.AcquireAccept(cc); err != nil {
				t.Errorf("second AcquireAccept: %v", err)
			}
			second.Store(true)
		})
		c.Latency(5 * time.Millisecond) // second waiter parked behind it
		cancelFirst()
		tk.Done()
		sec.Await(c)
		first.Await(c)
		if !second.Load() {
			t.Fatal("second waiter never acquired after first was canceled")
		}
	})
}
